package privacyscope

import (
	"context"
	"strings"
	"testing"
	"time"

	"privacyscope/internal/faultinject"
)

// A three-ECALL module: one leaky, one clean, one heavy (loop-bound work
// that needs hundreds of thousands of steps). The fail-soft tests degrade
// or kill exactly one of them and assert the others still analyze.
const failsoftC = `
int leaky(char *secrets, char *output) {
    output[0] = secrets[0];
    return 0;
}
int clean(char *secrets, char *output) {
    output[0] = 42;
    return 0;
}
int heavy(char *secrets, char *output) {
    int i = 0;
    int acc = 0;
    while (i < 2000) { acc = acc + i; i++; }
    output[0] = 7;
    return 0;
}
`

const failsoftEDL = `
enclave {
    trusted {
        public int leaky([in] char *secrets, [out] char *output);
        public int clean([in] char *secrets, [out] char *output);
        public int heavy([in] char *secrets, [out] char *output);
    };
};
`

// Secure but branchy: 16 paths, identical observables on every one.
const branchyC = `
int branchy(char *secrets, char *output) {
    int acc = 0;
    if (secrets[0] > 0) acc = acc + 1; else acc = acc - 1;
    if (secrets[1] > 0) acc = acc + 1; else acc = acc - 1;
    if (secrets[2] > 0) acc = acc + 1; else acc = acc - 1;
    if (secrets[3] > 0) acc = acc + 1; else acc = acc - 1;
    output[0] = 5;
    return 0;
}
`

const branchyEDL = `
enclave {
    trusted {
        public int branchy([in] char *secrets, [out] char *output);
    };
};
`

func reportByName(t *testing.T, rep *EnclaveReport, fn string) *Report {
	t.Helper()
	for _, r := range rep.Reports {
		if r.Function == fn {
			return r
		}
	}
	t.Fatalf("no report for %q", fn)
	return nil
}

// TestPanicIsolationSequential injects a panic into one entry point's
// exploration and requires the module analysis to survive: the panicking
// function becomes an error report, its siblings analyze normally.
func TestPanicIsolationSequential(t *testing.T) {
	m := NewMetrics()
	inj := faultinject.New(m).ScopeFunction("clean").PanicOn("symexec.steps", 1)
	rep, err := AnalyzeEnclave(failsoftC, failsoftEDL, WithObserver(inj))
	if err != nil {
		t.Fatalf("one panicking ECALL must not fail the module: %v", err)
	}
	if len(rep.Reports) != 3 {
		t.Fatalf("want 3 reports, got %d", len(rep.Reports))
	}

	crashed := reportByName(t, rep, "clean")
	if crashed.Err == "" || !strings.Contains(crashed.Err, "panic") {
		t.Errorf("clean.Err = %q, want a panic message", crashed.Err)
	}
	if crashed.Verdict() != VerdictError {
		t.Errorf("crashed verdict = %v, want error", crashed.Verdict())
	}
	if crashed.Secure() {
		t.Error("a crashed analysis must never read as secure")
	}

	if leaky := reportByName(t, rep, "leaky"); len(leaky.Findings) == 0 {
		t.Error("sibling 'leaky' must still produce its findings")
	}
	if heavy := reportByName(t, rep, "heavy"); heavy.Err != "" || len(heavy.Findings) != 0 {
		t.Errorf("sibling 'heavy' must still analyze cleanly: err=%q findings=%d",
			heavy.Err, len(heavy.Findings))
	}

	if got := rep.Errors(); len(got) != 1 || !strings.HasPrefix(got[0], "clean: ") {
		t.Errorf("Errors() = %v, want exactly [clean: ...]", got)
	}
	if rep.Verdict() != VerdictFindings {
		t.Errorf("module verdict = %v, want findings (leaky's findings dominate)", rep.Verdict())
	}
	if m.Counter("check.panics") != 1 {
		t.Errorf("check.panics = %d, want 1", m.Counter("check.panics"))
	}
	if !strings.Contains(rep.Render(), "ANALYSIS ERROR") {
		t.Error("Render must surface the per-function analysis error")
	}
}

// TestPanicIsolationParallel does the same under WithParallelism: the panic
// fires on one worker goroutine and must not escape the pool.
func TestPanicIsolationParallel(t *testing.T) {
	m := NewMetrics()
	inj := faultinject.New(m).PanicOn("symexec.steps", 50)
	rep, err := AnalyzeEnclave(failsoftC, failsoftEDL,
		WithObserver(inj), WithParallelism(3))
	if err != nil {
		t.Fatalf("a panicking worker must not fail the module: %v", err)
	}
	errored := 0
	for _, r := range rep.Reports {
		if r == nil {
			t.Fatal("every job slot must hold a report")
		}
		if r.Err != "" {
			errored++
		}
	}
	if errored != 1 {
		t.Errorf("want exactly 1 errored entry point, got %d", errored)
	}
	if m.Counter("check.panics") != 1 {
		t.Errorf("check.panics = %d, want 1", m.Counter("check.panics"))
	}
}

// TestPanicInPathWorkerDegrades injects a panic into the parallel path
// exploration of a branchy function: the panic fires on whichever pool
// goroutine evaluates the chosen statement, must be captured and re-raised
// through every runBranches join (no leaked goroutines, no deadlock), and
// must degrade that function to an error report exactly like a sequential
// panic.
func TestPanicInPathWorkerDegrades(t *testing.T) {
	m := NewMetrics()
	// Step 60 is deep inside the fork tree of branchy's 16 paths, so the
	// panic lands inside a branch capture — possibly on a spawned worker,
	// possibly on an inline branch; isolation must hold either way.
	inj := faultinject.New(m).PanicOn("symexec.steps", 60)
	rep, err := AnalyzeEnclave(branchyC, branchyEDL,
		WithObserver(inj), WithPathWorkers(4))
	if err != nil {
		t.Fatalf("a panicking path worker must not fail the module: %v", err)
	}
	r := reportByName(t, rep, "branchy")
	if r.Err == "" || !strings.Contains(r.Err, "panic") {
		t.Errorf("branchy.Err = %q, want a panic message", r.Err)
	}
	if r.Verdict() != VerdictError {
		t.Errorf("verdict = %v, want error", r.Verdict())
	}
	if r.Secure() {
		t.Error("a crashed analysis must never read as secure")
	}
	if m.Counter("check.panics") != 1 {
		t.Errorf("check.panics = %d, want 1 (panic must surface exactly once at the facade)",
			m.Counter("check.panics"))
	}
	if m.Counter("symexec.workers.panics") < 1 {
		t.Errorf("symexec.workers.panics = %d, want >= 1 (the pool must record the capture)",
			m.Counter("symexec.workers.panics"))
	}
}

// TestDeadlineUnderPathWorkers expires the wall-clock deadline while the
// worker pool is mid-exploration: every worker must observe the stop flag
// and join, degrading coverage instead of deadlocking or erroring.
func TestDeadlineUnderPathWorkers(t *testing.T) {
	// branchy evaluates ~78 statements; at 2ms per statement even a perfect
	// 4-way split needs ~39ms of wall clock, so the 20ms deadline always
	// expires mid-exploration regardless of scheduling.
	inj := faultinject.New(nil).DelayOn("symexec.steps", 2*time.Millisecond)
	rep, err := AnalyzeEnclave(branchyC, branchyEDL,
		WithObserver(inj), WithPathWorkers(4), WithDeadline(20*time.Millisecond))
	if err != nil {
		t.Fatalf("deadline expiry must degrade, not fail: %v", err)
	}
	r := reportByName(t, rep, "branchy")
	if r.Err != "" {
		t.Fatalf("deadline under workers must degrade, not error: %q", r.Err)
	}
	if !r.Coverage.Truncated || r.Coverage.Reason != TruncDeadline {
		t.Errorf("coverage = %+v, want deadline truncation", r.Coverage)
	}
	if r.Verdict() != VerdictInconclusive {
		t.Errorf("verdict = %v, want inconclusive", r.Verdict())
	}
}

// TestDeadlineDegradesOneFunction slows one entry point until its
// WithDeadline budget expires: that function degrades to partial coverage
// with an Inconclusive verdict; the siblings keep their full budgets.
func TestDeadlineDegradesOneFunction(t *testing.T) {
	m := NewMetrics()
	inj := faultinject.New(m).ScopeFunction("heavy").
		DelayOn("symexec.steps", time.Millisecond)
	rep, err := AnalyzeEnclave(failsoftC, failsoftEDL,
		WithObserver(inj), WithDeadline(25*time.Millisecond))
	if err != nil {
		t.Fatalf("deadline expiry must degrade, not fail: %v", err)
	}

	heavy := reportByName(t, rep, "heavy")
	if !heavy.Coverage.Truncated || heavy.Coverage.Reason != TruncDeadline {
		t.Errorf("heavy coverage = %+v, want deadline truncation", heavy.Coverage)
	}
	if heavy.Verdict() != VerdictInconclusive {
		t.Errorf("heavy verdict = %v, want inconclusive", heavy.Verdict())
	}
	if heavy.Secure() {
		t.Error("a deadline-truncated run must never read as secure")
	}

	if clean := reportByName(t, rep, "clean"); !clean.Secure() {
		t.Errorf("sibling 'clean' keeps its own budget and stays secure: %+v", clean.Coverage)
	}
	if leaky := reportByName(t, rep, "leaky"); len(leaky.Findings) == 0 {
		t.Error("sibling 'leaky' must still produce findings")
	}

	if got := rep.Degraded(); len(got) != 1 || got[0].Function != "heavy" {
		t.Errorf("Degraded() = %v, want exactly [heavy]", got)
	}
	if m.Counter("check.degraded") != 1 || m.Counter("check.cancelled") != 1 {
		t.Errorf("check.degraded=%d check.cancelled=%d, want 1/1",
			m.Counter("check.degraded"), m.Counter("check.cancelled"))
	}
	if !strings.Contains(rep.Render(), "coverage: PARTIAL") {
		t.Error("Render must surface partial coverage")
	}
}

// TestCancellationMidRun cancels the context at a known statement count and
// requires the engine to notice within one step-check interval.
func TestCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := faultinject.New(nil).ScopeFunction("heavy").
		HookOn("symexec.steps", 100, cancel)
	rep, err := AnalyzeEnclaveContext(ctx, failsoftC, failsoftEDL, WithObserver(inj))
	if err != nil {
		t.Fatalf("cancellation must degrade, not fail: %v", err)
	}
	heavy := reportByName(t, rep, "heavy")
	if !heavy.Coverage.Truncated || heavy.Coverage.Reason != TruncCancelled {
		t.Errorf("heavy coverage = %+v, want cancellation truncation", heavy.Coverage)
	}
	// The engine polls ctx every 32 steps (ctxCheckInterval); cancelling at
	// step 100 must stop it by step 132.
	if heavy.Coverage.StepsUsed > 132 {
		t.Errorf("cancelled at step 100, engine ran to %d (want <= 132)",
			heavy.Coverage.StepsUsed)
	}
	if rep.Secure() {
		t.Error("a cancelled module must never read as secure")
	}
}

// TestPreCancelledContext: an already-dead context still yields a report
// per entry point, every one degraded, none erroring.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := AnalyzeEnclaveContext(ctx, failsoftC, failsoftEDL)
	if err != nil {
		t.Fatalf("pre-cancelled ctx must degrade, not fail: %v", err)
	}
	if len(rep.Reports) != 3 {
		t.Fatalf("want 3 reports, got %d", len(rep.Reports))
	}
	heavy := reportByName(t, rep, "heavy")
	if !heavy.Coverage.Truncated || heavy.Coverage.Reason != TruncCancelled {
		t.Errorf("heavy coverage = %+v, want cancellation truncation", heavy.Coverage)
	}
	if heavy.Coverage.StepsUsed > 32 {
		t.Errorf("pre-cancelled ctx must stop within one check interval, used %d steps",
			heavy.Coverage.StepsUsed)
	}
}

// TestInconclusiveNeverSecure is the core soundness property of this layer:
// a truncated exploration that found nothing must not claim security.
func TestInconclusiveNeverSecure(t *testing.T) {
	full, err := AnalyzeEnclave(branchyC, branchyEDL)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Secure() || full.Verdict() != VerdictSecure {
		t.Fatalf("branchy module is secure under full exploration: %s", full.Render())
	}

	cut, err := AnalyzeEnclave(branchyC, branchyEDL, WithMaxPaths(2))
	if err != nil {
		t.Fatalf("path budget exhaustion must degrade, not fail: %v", err)
	}
	r := cut.Reports[0]
	if !r.Coverage.Truncated || r.Coverage.Reason != TruncPathBudget {
		t.Fatalf("coverage = %+v, want path-budget truncation", r.Coverage)
	}
	if r.Coverage.CompletedPaths != 2 {
		t.Errorf("CompletedPaths = %d, want 2", r.Coverage.CompletedPaths)
	}
	if cut.Secure() || r.Secure() {
		t.Error("truncated no-findings run must NOT read as secure")
	}
	if v := cut.Verdict(); v != VerdictInconclusive {
		t.Errorf("verdict = %v, want inconclusive", v)
	}
	out := r.Render()
	if !strings.Contains(out, "INCONCLUSIVE") {
		t.Errorf("render must say INCONCLUSIVE:\n%s", out)
	}
	if strings.Contains(out, "no nonreversibility violations detected") {
		t.Errorf("render must not claim a clean bill of health:\n%s", out)
	}
}

// TestFindingsDominateTruncation: findings already collected before the
// budget cut are reported, and the verdict is findings, not inconclusive.
func TestFindingsDominateTruncation(t *testing.T) {
	rep, err := AnalyzeEnclave(failsoftC, failsoftEDL, WithMaxSteps(40))
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not fail: %v", err)
	}
	leaky := reportByName(t, rep, "leaky")
	if len(leaky.Findings) == 0 {
		t.Fatal("leaky's single straight-line path fits 40 steps and must report its leak")
	}
	if leaky.Verdict() != VerdictFindings {
		t.Errorf("verdict = %v, want findings", leaky.Verdict())
	}
	if rep.Verdict() != VerdictFindings {
		t.Errorf("module verdict = %v, want findings (leaks dominate truncation)", rep.Verdict())
	}
}

// TestAnalyzeFunctionContextDegrades covers the single-function facade.
func TestAnalyzeFunctionContextDegrades(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := AnalyzeFunctionContext(ctx, failsoftC, "heavy",
		[]ParamSpec{{Name: "secrets", Class: ParamSecret}, {Name: "output", Class: ParamOut}})
	if err != nil {
		t.Fatalf("cancellation must degrade, not fail: %v", err)
	}
	if !rep.Coverage.Truncated || rep.Coverage.Reason != TruncCancelled {
		t.Errorf("coverage = %+v, want cancellation truncation", rep.Coverage)
	}
	if rep.Verdict() != VerdictInconclusive {
		t.Errorf("verdict = %v, want inconclusive", rep.Verdict())
	}
	// Module-level problems still error.
	if _, err := AnalyzeFunctionContext(context.Background(), "int f(", "f", nil); err == nil {
		t.Error("unparseable source must still return an error")
	}
	if _, err := AnalyzeFunctionContext(context.Background(), failsoftC, "missing", nil); err == nil {
		t.Error("unknown entry function must still return an error")
	}
}
