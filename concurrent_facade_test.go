package privacyscope

import (
	"context"
	"sync"
	"testing"

	"privacyscope/internal/mlsuite"
)

// TestConcurrentFacadeSharedOptions pins the facade's concurrency contract
// the privacyscoped daemon relies on: AnalyzeEnclaveContext may run from
// many goroutines at once — over a shared option slice and a shared
// Metrics observer — and every run of the same module must produce
// byte-identical reports. `make check` runs this under -race, so any write
// to shared state inside the engine fails the suite even if the reports
// happen to agree.
func TestConcurrentFacadeSharedOptions(t *testing.T) {
	metrics := NewMetrics()
	shared := []Option{
		WithLoopBound(6),
		WithPathWorkers(2),
		WithObserver(metrics),
	}
	modules := []struct {
		name string
		c    string
		edl  string
	}{
		{"Recommender", mlsuite.RecommenderC, mlsuite.RecommenderEDL},
		{"FixedRecommender", mlsuite.FixedRecommenderC, mlsuite.FixedRecommenderEDL},
		{"LinearRegression", mlsuite.LinRegC, mlsuite.LinRegEDL},
	}

	// Reference runs, sequentially.
	want := make(map[string]string, len(modules))
	for _, m := range modules {
		rep, err := AnalyzeEnclaveContext(context.Background(), m.c, m.edl, shared...)
		if err != nil {
			t.Fatalf("%s: reference run: %v", m.name, err)
		}
		want[m.name] = canonicalReport(rep)
	}

	// 4 goroutines per module, all on the same options slice and observer.
	const perModule = 4
	var wg sync.WaitGroup
	type outcome struct {
		name   string
		report string
		err    error
	}
	results := make(chan outcome, len(modules)*perModule)
	for _, m := range modules {
		for i := 0; i < perModule; i++ {
			wg.Add(1)
			go func(name, c, edl string) {
				defer wg.Done()
				rep, err := AnalyzeEnclaveContext(context.Background(), c, edl, shared...)
				if err != nil {
					results <- outcome{name: name, err: err}
					return
				}
				results <- outcome{name: name, report: canonicalReport(rep)}
			}(m.name, m.c, m.edl)
		}
	}
	wg.Wait()
	close(results)

	for r := range results {
		if r.err != nil {
			t.Errorf("%s: concurrent run: %v", r.name, r.err)
			continue
		}
		if r.report != want[r.name] {
			t.Errorf("%s: concurrent report diverged from sequential reference\n--- sequential ---\n%s--- concurrent ---\n%s",
				r.name, want[r.name], r.report)
		}
	}

	// The shared observer aggregated every run without losing counts: the
	// checker span completed once per ECALL per analysis, sequential and
	// concurrent alike.
	checks := metrics.Snapshot().Spans["check"].Count
	var ecalls int64
	for _, m := range modules {
		rep, err := AnalyzeEnclave(m.c, m.edl, shared...)
		if err != nil {
			t.Fatalf("%s: counting ECALLs: %v", m.name, err)
		}
		ecalls += int64(len(rep.Reports))
	}
	// perModule concurrent runs + 1 sequential reference per module.
	if want := ecalls * (perModule + 1); checks != want {
		t.Errorf("shared observer recorded %d checker spans, want %d", checks, want)
	}
}
