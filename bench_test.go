package privacyscope_test

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute times differ from Table V (the substrate is a Go simulator, not
// the authors' Clang/NUC testbed); the shape assertions (who is slowest,
// which analysis catches what) live in the unit tests.

import (
	"context"
	"testing"

	"privacyscope"
	"privacyscope/internal/baseline"
	"privacyscope/internal/bench"
	"privacyscope/internal/core"
	"privacyscope/internal/minic"
	"privacyscope/internal/mlsuite"
	"privacyscope/internal/priml"
	"privacyscope/internal/symexec"
	"privacyscope/internal/taint"
)

// BenchmarkFig1TaintLatticeJoin measures the semi-lattice join operation
// (Fig. 1), the innermost primitive of the taint policy.
func BenchmarkFig1TaintLatticeJoin(b *testing.B) {
	labels := []taint.Label{taint.Bottom(), taint.Single(1), taint.Single(2), taint.Top()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, x := range labels {
			for _, y := range labels {
				_ = x.Join(y)
			}
		}
	}
}

// BenchmarkFig2TaintPropagation measures the propagation policy of Fig. 2
// and Table I (P_const/P_unop/P_binop/P_cond).
func BenchmarkFig2TaintPropagation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var alloc taint.Allocator
		p := taint.NewPolicy(&alloc)
		t1 := p.GetSecret()
		t2 := p.GetSecret()
		_ = p.Const()
		_ = p.Unop(t1)
		_ = p.Assign(t2)
		_ = p.Binop(t1, t2)
		_ = p.Cond(t1, taint.Bottom())
	}
}

func benchPRIML(b *testing.B, src string) {
	prog, err := priml.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := priml.NewAnalyzer(priml.DefaultOptions()).Analyze(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIIExplicit measures the Table II simulation (Example 1).
func BenchmarkTableIIExplicit(b *testing.B) { benchPRIML(b, bench.Example1PRIML) }

// BenchmarkTableIIIImplicit measures the Table III simulation (Example 2).
func BenchmarkTableIIIImplicit(b *testing.B) { benchPRIML(b, bench.Example2PRIML) }

// BenchmarkTableIVListing1 measures the symbolic exploration of Listing 1
// (Table IV), tracing included.
func BenchmarkTableIVListing1(b *testing.B) {
	file := minic.MustParse(bench.Listing1C)
	params := []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := symexec.DefaultOptions()
		opts.TrackTrace = true
		if _, err := symexec.New(file, opts).AnalyzeFunction(context.Background(), "enclave_process_data", params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBox1Report measures the full checker on Listing 1 including the
// concrete witness replay (the Box 1 artifact).
func BenchmarkBox1Report(b *testing.B) {
	file := minic.MustParse(bench.Listing1C)
	params := []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		report, err := core.New(core.DefaultOptions()).CheckFunction(context.Background(), file, "enclave_process_data", params)
		if err != nil {
			b.Fatal(err)
		}
		_ = report.Render()
	}
}

func benchModule(b *testing.B, name string) {
	var mod mlsuite.Module
	for _, m := range mlsuite.Modules() {
		if m.Name == name {
			mod = m
		}
	}
	if mod.Name == "" {
		b.Fatalf("no module %s", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := privacyscope.AnalyzeEnclave(mod.C, mod.EDL)
		if err != nil {
			b.Fatal(err)
		}
		_ = rep.TotalFindings()
	}
}

// BenchmarkTableVLinearRegression measures the Table V row for
// LinearRegression (paper: 2.549 s on the authors' testbed).
func BenchmarkTableVLinearRegression(b *testing.B) { benchModule(b, "LinearRegression") }

// BenchmarkTableVKmeans measures the Table V row for Kmeans (paper:
// 4.654 s).
func BenchmarkTableVKmeans(b *testing.B) { benchModule(b, "Kmeans") }

// BenchmarkTableVRecommender measures the Table V row for Recommender
// (paper: 1.758 s).
func BenchmarkTableVRecommender(b *testing.B) { benchModule(b, "Recommender") }

// BenchmarkTableVIBaselines measures each analysis of the detection
// matrix over the shared suite (Table VI).
func BenchmarkTableVIBaselines(b *testing.B) {
	srcs := map[string]string{
		"explicit": `
int f(int *secrets, int *output) { output[0] = secrets[0] + 4; return 0; }`,
		"implicit": `
int f(int *secrets, int *output) {
    if (secrets[0] == 19) { output[0] = 0; } else { output[0] = 1; }
    return 0;
}`,
	}
	params := []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	}
	files := map[string]*minic.File{}
	for name, src := range srcs {
		files[name] = minic.MustParse(src)
	}
	b.Run("privacyscope", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, f := range files {
				if _, err := core.New(core.DefaultOptions()).CheckFunction(context.Background(), f, "f", params); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("noninterference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, f := range files {
				if _, err := baseline.NewNoninterference(symexec.DefaultOptions()).Check(f, "f", params); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("dfa", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, f := range files {
				if _, err := baseline.NewDFATaint().Check(f, "f", params); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("typesystem", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, f := range files {
				if _, err := baseline.NewTypeSystem().Check(f, "f", params); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkCaseStudyRecommender measures the §VI-D-1 sweep (3 ECALLs, 6
// violations).
func BenchmarkCaseStudyRecommender(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := privacyscope.AnalyzeEnclave(mlsuite.RecommenderC, mlsuite.RecommenderEDL)
		if err != nil {
			b.Fatal(err)
		}
		if rep.TotalFindings() != 6 {
			b.Fatalf("findings = %d", rep.TotalFindings())
		}
	}
}

// BenchmarkCaseStudyKmeansInjection measures the §VI-D-2 trojan detection.
func BenchmarkCaseStudyKmeansInjection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := privacyscope.AnalyzeEnclave(mlsuite.MaliciousKmeansC, mlsuite.MaliciousKmeansEDL)
		if err != nil {
			b.Fatal(err)
		}
		_ = rep.TotalFindings()
	}
}

// BenchmarkAblationPathSensitivity compares the path-sensitive engine
// against the path-insensitive DFA baseline on the same module — the cost
// the paper pays for implicit-leak detection (§II-B).
func BenchmarkAblationPathSensitivity(b *testing.B) {
	file := minic.MustParse(mlsuite.RecommenderC)
	params := []symexec.ParamSpec{
		{Name: "ratings", Class: symexec.ParamSecret},
		{Name: "model", Class: symexec.ParamOut},
	}
	b.Run("symbolic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.New(core.DefaultOptions()).CheckFunction(context.Background(), file, "recommender_train", params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dfa", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.NewDFATaint().Check(file, "recommender_train", params); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLoopBound sweeps the symbolic loop unrolling bound.
func BenchmarkAblationLoopBound(b *testing.B) {
	src := `
int f(int *secrets, int n, int *output) {
    int i = 0;
    while (i < n) { i++; }
    output[0] = i;
    return 0;
}`
	file := minic.MustParse(src)
	params := []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "n", Class: symexec.ParamPublic},
		{Name: "output", Class: symexec.ParamOut},
	}
	for _, bound := range []int{2, 4, 8, 16, 32} {
		b.Run(itoa(bound), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Engine.LoopBound = bound
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.New(opts).CheckFunction(context.Background(), file, "f", params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSolverPruning compares exploration with and without
// infeasible-path pruning.
func BenchmarkAblationSolverPruning(b *testing.B) {
	src := `
int f(int *secrets, int *output) {
    int a = secrets[0];
    if (a > 0) {
        if (a < 0) { output[0] = a; } else { output[0] = 0; }
    } else { output[0] = 0; }
    if (a > 10) {
        if (a < 5) { output[1] = a; } else { output[1] = 0; }
    } else { output[1] = 0; }
    return 0;
}`
	file := minic.MustParse(src)
	params := []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	}
	for _, on := range []bool{true, false} {
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Engine.PruneInfeasible = on
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.New(opts).CheckFunction(context.Background(), file, "f", params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationImplicitCheck compares Alg. 1's implicit detection
// on/off over Listing 1.
func BenchmarkAblationImplicitCheck(b *testing.B) {
	file := minic.MustParse(bench.Listing1C)
	params := []symexec.ParamSpec{
		{Name: "secrets", Class: symexec.ParamSecret},
		{Name: "output", Class: symexec.ParamOut},
	}
	for _, on := range []bool{true, false} {
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.ImplicitCheck = on
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.New(opts).CheckFunction(context.Background(), file, "enclave_process_data", params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkScalability measures the §VIII-C path-explosion study: analysis
// cost vs. number of sequential secret branches (2^n paths).
func BenchmarkScalability(b *testing.B) {
	for _, branches := range []int{2, 4, 6, 8} {
		src := bench.ScalabilityProgram(branches, 4)
		file := minic.MustParse(src)
		params := []symexec.ParamSpec{
			{Name: "secrets", Class: symexec.ParamSecret},
			{Name: "output", Class: symexec.ParamOut},
		}
		opts := core.DefaultOptions()
		opts.ReplayWitness = false
		b.Run("branches-"+itoa(branches), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.New(opts).CheckFunction(context.Background(), file, "f", params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionLogReg measures the logistic-regression extension
// workload: an iterative gradient-descent loop whose expressions form deep
// shared DAGs — the shape that motivated the memoized expression walks.
func BenchmarkExtensionLogReg(b *testing.B) {
	mods := mlsuite.ExtensionModules()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := privacyscope.AnalyzeEnclave(mods[0].C, mods[0].EDL)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Secure() {
			b.Fatal("logreg must be clean")
		}
	}
}

// BenchmarkDeepKmeans measures the two-iteration Kmeans (≈256 paths): the
// realistic §VIII-C scalability instance.
func BenchmarkDeepKmeans(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.DeepKmeans(); err != nil {
			b.Fatal(err)
		}
	}
}
