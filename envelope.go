package privacyscope

import "time"

// This file defines the machine-readable result envelope shared by the
// `privacyscope -json` CLI and the privacyscoped HTTP daemon. Both surfaces
// emit the identical shape so one decoder serves both, and the daemon's
// result cache can store the envelope verbatim.

// EnvelopeFinding is one violation in the envelope. Rule and Severity are
// the emitting detector's stamps (docs/DETECTORS.md), e.g. PS-OCPTR/high.
type EnvelopeFinding struct {
	Function string `json:"function"`
	Kind     string `json:"kind"`
	Sink     string `json:"sink"`
	Where    string `json:"where"`
	Secret   string `json:"secret"`
	Message  string `json:"message"`
	Rule     string `json:"rule,omitempty"`
	Severity string `json:"severity,omitempty"`
	Verified bool   `json:"witnessVerified"`
}

// EnvelopeFunction is the per-entry-point slice of the envelope: verdict,
// coverage, and the failure cause when the function's analysis died.
type EnvelopeFunction struct {
	Function string   `json:"function"`
	Verdict  string   `json:"verdict"`
	Error    string   `json:"error,omitempty"`
	Coverage Coverage `json:"coverage"`
}

// Envelope is the machine-readable module result: the findings plus
// run-level facts and, when telemetry is on, the full metrics snapshot.
// Secure means *proved* secure: a degraded (truncated/errored) run is not
// secure even with zero findings — check Verdict and the per-function
// Coverage.
type Envelope struct {
	Findings []EnvelopeFinding `json:"findings"`
	Secure   bool              `json:"secure"`
	Verdict  string            `json:"verdict"`
	// Engine is the build's engine fingerprint (see Fingerprint): the
	// same value the daemon folds into cache keys, so every envelope
	// names the engine semantics that produced it.
	Engine     string             `json:"engine"`
	Functions  []EnvelopeFunction `json:"functions"`
	DurationMs float64            `json:"durationMs"`
	Paths      int                `json:"paths"`
	States     int                `json:"states"`
	Metrics    *MetricsSnapshot   `json:"metrics,omitempty"`
	// TraceID identifies the analysis execution that produced this
	// envelope (the daemon echoes it in the traceparent response header
	// and serves the recorded trace at /debug/traces/<id>).
	TraceID string `json:"traceId,omitempty"`
	// Trace is the recorded span tree, embedded when the caller traced
	// the run (privacyscope -trace-out attaches it; the daemon serves it
	// out-of-band via /debug/traces instead of inflating every response).
	Trace *TraceSnapshot `json:"trace,omitempty"`
}

// NewEnvelope flattens an EnclaveReport into the envelope. The metrics
// snapshot is attached when metrics is non-nil.
func NewEnvelope(rep *EnclaveReport, elapsed time.Duration, metrics *Metrics) Envelope {
	env := Envelope{
		Findings:   []EnvelopeFinding{},
		Secure:     rep.Secure(),
		Verdict:    rep.Verdict().String(),
		Engine:     Fingerprint(),
		DurationMs: float64(elapsed.Nanoseconds()) / 1e6,
	}
	for _, r := range rep.Reports {
		env.Functions = append(env.Functions, EnvelopeFunction{
			Function: r.Function,
			Verdict:  r.Verdict().String(),
			Error:    r.Err,
			Coverage: r.Coverage,
		})
		env.Paths += r.Paths
		env.States += r.States
		for _, f := range r.Findings {
			ef := EnvelopeFinding{
				Function: r.Function,
				Kind:     f.Kind.String(),
				Sink:     f.Sink.String(),
				Where:    f.Where,
				Secret:   f.Secret,
				Message:  f.Message,
				Rule:     f.Rule,
				Severity: f.Severity,
			}
			if f.Witness != nil {
				ef.Verified = f.Witness.Verified
			}
			env.Findings = append(env.Findings, ef)
		}
	}
	if metrics != nil {
		snap := metrics.Snapshot()
		env.Metrics = &snap
	}
	return env
}

// Cancelled reports whether any entry point was cut by context
// cancellation (as opposed to its own budget or deadline) — the daemon
// refuses to cache such envelopes, since a re-submission without the
// cancellation would explore further.
func (e Envelope) Cancelled() bool {
	for _, f := range e.Functions {
		if f.Coverage.Reason == TruncCancelled {
			return true
		}
	}
	return false
}
