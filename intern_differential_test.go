package privacyscope

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacyscope/internal/mlsuite"
)

// This file is the interning differential gate (`make intern-smoke`): the
// hash-consing arena is a pure representation change, so interning on (the
// default) and off must produce byte-identical reports — findings,
// witnesses, verdicts, exploration accounting, warnings, and the rendered
// JSON envelope — over every corpus the repo ships, and the identity must
// be jobs-invariant (the same bytes under ECALL parallelism and path
// workers). Run under -race because the arena is shared across path-worker
// goroutines.

// internJSONEnvelope renders the report as its JSON envelope with the one
// wall-clock field (per-function Duration) zeroed, so two runs can be
// required to match byte for byte.
func internJSONEnvelope(t *testing.T, rep *EnclaveReport) string {
	t.Helper()
	clean := &EnclaveReport{Reports: make([]*Report, len(rep.Reports))}
	for i, r := range rep.Reports {
		cp := *r
		cp.Duration = 0
		clean.Reports[i] = &cp
	}
	b, err := json.MarshalIndent(clean, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// requireInternIdentical analyzes one module with interning on (default),
// off, and both again under ECALL parallelism, and requires all four
// renderings — the strict canonical form and the JSON envelope — to agree
// byte for byte with the default run.
func requireInternIdentical(t *testing.T, cSrc, edlSrc string, extra ...Option) {
	t.Helper()
	configs := []struct {
		name string
		opts []Option
	}{
		{"intern-off", []Option{WithInterning(false)}},
		{"intern-on+jobs=4", []Option{WithParallelism(4)}},
		{"intern-off+jobs=4", []Option{WithInterning(false), WithParallelism(4)}},
	}
	base, err := AnalyzeEnclave(cSrc, edlSrc, extra...)
	if err != nil {
		t.Fatal(err)
	}
	wantCanon := summaryCanonical(base)
	wantJSON := internJSONEnvelope(t, base)
	for _, cfg := range configs {
		rep, err := AnalyzeEnclave(cSrc, edlSrc, append(append([]Option(nil), cfg.opts...), extra...)...)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if got := summaryCanonical(rep); got != wantCanon {
			t.Errorf("%s diverges from interning-on default:\n--- default ---\n%s--- %s ---\n%s",
				cfg.name, wantCanon, cfg.name, got)
		}
		if got := internJSONEnvelope(t, rep); got != wantJSON {
			t.Errorf("%s JSON envelope diverges from interning-on default:\n--- default ---\n%s\n--- %s ---\n%s",
				cfg.name, wantJSON, cfg.name, got)
		}
	}
}

// TestInternDifferentialMLSuite runs the full ML evaluation corpus (Table V
// modules, the extension modules, and the malicious variants) with
// interning on and off.
func TestInternDifferentialMLSuite(t *testing.T) {
	type target struct {
		name   string
		c, edl string
	}
	var targets []target
	for _, m := range append(mlsuite.Modules(), mlsuite.ExtensionModules()...) {
		targets = append(targets, target{name: m.Name, c: m.C, edl: m.EDL})
	}
	targets = append(targets,
		target{name: "evil-linreg", c: mlsuite.MaliciousLinRegC, edl: mlsuite.MaliciousLinRegEDL},
		target{name: "evil-kmeans", c: mlsuite.MaliciousKmeansC, edl: mlsuite.MaliciousKmeansEDL},
		target{name: "fixed-recommender", c: mlsuite.FixedRecommenderC, edl: mlsuite.FixedRecommenderEDL},
	)
	for _, tgt := range targets {
		t.Run(tgt.name, func(t *testing.T) {
			requireInternIdentical(t, tgt.c, tgt.edl)
		})
	}
}

// TestInternDifferentialExamples walks every .c/.edl unit under
// examples/project and examples/leakpacks through both interning modes.
func TestInternDifferentialExamples(t *testing.T) {
	var units []string
	for _, root := range []string{
		filepath.Join("examples", "project"),
		filepath.Join("examples", "leakpacks"),
	} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".c") {
				units = append(units, path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(units) < 15 {
		t.Fatalf("found %d corpus units, want at least 15", len(units))
	}
	for _, cPath := range units {
		edlPath := strings.TrimSuffix(cPath, ".c") + ".edl"
		name := filepath.ToSlash(strings.TrimPrefix(cPath, "examples"+string(filepath.Separator)))
		t.Run(name, func(t *testing.T) {
			cSrc, err := os.ReadFile(cPath)
			if err != nil {
				t.Fatal(err)
			}
			edlSrc, err := os.ReadFile(edlPath)
			if err != nil {
				t.Fatal(err)
			}
			requireInternIdentical(t, string(cSrc), string(edlSrc))
		})
	}
}

// TestInternDifferentialSectionIV replays the §IV differential-stack MiniC
// programs with interning off: same findings, same inversion parameters,
// same verdicts as the interning-on default — including the infeasible
// branch case where the interned canonical path condition feeds the
// solver's feasibility memo.
func TestInternDifferentialSectionIV(t *testing.T) {
	cases := []struct {
		name, fn, src string
		opts          []Option
	}{
		{"insecure", "leak", `
int leak(char *secrets, char *output)
{
    output[0] = secrets[0] + 4;
    return 0;
}
`, nil},
		{"secure-masked", "masked", `
int masked(char *secrets, char *output)
{
    output[0] = secrets[0] + 4 + secrets[1];
    return 0;
}
`, nil},
		{"example2-feasible", "example2", `
int example2(char *secrets, char *output)
{
    int h = 2 * secrets[0];
    if (h - 5 == 15)
        output[0] = 0;
    else
        output[0] = 1;
    return 0;
}
`, nil},
		{"example2-infeasible", "example2", `
int example2(char *secrets, char *output)
{
    int h = 2 * secrets[0];
    if (h - 5 == 14)
        output[0] = 0;
    else
        output[0] = 1;
    return 0;
}
`, []Option{WithoutPruning()}},
		// The leak routed through pure helpers: summary skeleton replay
		// must intern through the same arena (InstantiateIn), and the
		// exact +4 inversion must survive either way.
		{"insecure-through-helpers", "leak", `
int twice(int x) { return 2 * x; }
int add4(int x) { return x + 4; }
int leak(char *secrets, char *output)
{
    output[0] = add4(secrets[0]);
    output[1] = twice(add4(secrets[1]));
    return 0;
}
`, []Option{WithSummaries()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			on := analyzeCSrc(t, tc.src, tc.fn, tc.opts...)
			off := analyzeCSrc(t, tc.src, tc.fn, append([]Option{WithInterning(false)}, tc.opts...)...)
			want, got := canonicalFunctionReport(on), canonicalFunctionReport(off)
			if got != want {
				t.Errorf("interning off diverges:\n--- intern-on ---\n%s--- intern-off ---\n%s", want, got)
			}
			for i := range on.Findings {
				wi, gi := on.Findings[i].Inversion, off.Findings[i].Inversion
				if (wi == nil) != (gi == nil) {
					t.Fatalf("finding %d inversion presence diverges: on=%v off=%v", i, wi, gi)
				}
				if wi != nil && (wi.Exact != gi.Exact || wi.Scale != gi.Scale || wi.Offset != gi.Offset) {
					t.Errorf("finding %d inversion diverges: on=%+v off=%+v", i, wi, gi)
				}
			}
		})
	}
}

// TestInternSharedTableUnderPathWorkers is the race-coverage satellite: one
// intern arena per engine, shared read-only across WithPathWorkers(8)
// goroutines, with summaries enabled so skeleton replay interns through the
// same table concurrently. The module fans out 2^10 paths across helper
// calls; the run must stay byte-identical to the sequential interning-off
// baseline. Run under -race by make intern-smoke.
func TestInternSharedTableUnderPathWorkers(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("int step(int x) { return 2 * x + 1; }\n")
	sb.WriteString("int fanout(char *secrets, char *output)\n{\n    int acc = 0;\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&sb, "    if (secrets[%d] > 0) acc = acc + step(acc); else acc = acc - 1;\n", i)
	}
	sb.WriteString("    output[0] = 7;\n    return 0;\n}\n")
	cSrc := sb.String()
	edlSrc := `
enclave {
    trusted {
        public int fanout([in] char *secrets, [out] char *output);
    };
};
`
	base, err := AnalyzeEnclave(cSrc, edlSrc, WithInterning(false))
	if err != nil {
		t.Fatal(err)
	}
	want := summaryCanonical(base)
	for round := 0; round < 3; round++ {
		rep, err := AnalyzeEnclave(cSrc, edlSrc, WithSummaries(), WithPathWorkers(8))
		if err != nil {
			t.Fatal(err)
		}
		if got := summaryCanonical(rep); got != want {
			t.Fatalf("round %d: shared-arena run diverges from sequential interning-off baseline:\n--- baseline ---\n%s--- workers=8 ---\n%s",
				round, want, got)
		}
	}
}
