package privacyscope

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"

	"privacyscope/internal/symexec"
)

// EngineVersion identifies the analysis semantics of this build. Bump it
// whenever a change can alter what the analyzer reports for the same input
// (new checks, changed defaults, IR or engine semantics): the version feeds
// the engine fingerprint, and the fingerprint keys every cached result, so
// a semantics change automatically invalidates stale cache entries.
const EngineVersion = "0.6.0"

// Fingerprint returns a short stable hash identifying the engine semantics
// of this build: the engine version plus the default exploration bounds.
// The privacyscoped result cache folds it into every cache key, and the
// CLI's -json envelope reports it, so a result can always be traced back to
// the engine that produced it.
func Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "privacyscope/%s loop=%d paths=%d steps=%d inline=%d",
		EngineVersion,
		symexec.DefaultLoopBound, symexec.DefaultMaxPaths,
		symexec.DefaultMaxSteps, symexec.DefaultInlineDepth)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// BuildInfo describes the analyzer build: the -version output of the CLIs.
type BuildInfo struct {
	// Version is EngineVersion.
	Version string `json:"version"`
	// Fingerprint is the cache-key engine fingerprint (see Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// GoVersion is the toolchain that compiled this binary.
	GoVersion string `json:"goVersion"`
}

// Build returns this binary's build information.
func Build() BuildInfo {
	return BuildInfo{
		Version:     EngineVersion,
		Fingerprint: Fingerprint(),
		GoVersion:   runtime.Version(),
	}
}

// String renders the build info as the one-line -version output.
func (b BuildInfo) String() string {
	return fmt.Sprintf("privacyscope %s (engine fingerprint %s, %s)",
		b.Version, b.Fingerprint, b.GoVersion)
}
