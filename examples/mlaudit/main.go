// mlaudit reproduces the paper's evaluation workflow (§VI-C): audit the
// three open-source ML enclave modules — LinearRegression, Kmeans and
// Recommender — and print a Table-V-style summary plus every violation.
//
//	go run ./examples/mlaudit
package main

import (
	"fmt"
	"log"
	"time"

	"privacyscope"
	"privacyscope/internal/mlsuite"
)

func main() {
	fmt.Println("PrivacyScope audit of the ML suite (paper §VI-C/D + extensions)")
	fmt.Printf("%-18s %6s %10s %9s %7s\n", "module", "LoC", "time", "findings", "paths")
	all := append(mlsuite.Modules(), mlsuite.ExtensionModules()...)
	for _, m := range all {
		start := time.Now()
		report, err := privacyscope.AnalyzeEnclave(m.C, m.EDL)
		if err != nil {
			log.Fatalf("%s: %v", m.Name, err)
		}
		paths := 0
		for _, r := range report.Reports {
			paths += r.Paths
		}
		fmt.Printf("%-18s %6d %10s %9d %7d\n",
			m.Name, mlsuite.CountLoC(m.C), time.Since(start).Round(time.Microsecond),
			report.TotalFindings(), paths)
		for _, f := range report.Findings() {
			fmt.Printf("    %s\n", f.Message)
		}
	}
	fmt.Println("\nNote: the Recommender's 6 violations reproduce the §VI-D-1 case")
	fmt.Println("study; the Kmeans findings are the genuine singleton-cluster")
	fmt.Println("nonreversibility violations discussed in DESIGN.md.")
}
