/* ocallptr_clean: the twin of ocallptr_leak with only public constants in
 * the escaping buffer — the ocall-pointer pack must stay quiet. */
int push_stats(int *secrets, int *output)
{
    int buf[2];
    buf[0] = 4;
    buf[1] = 5;
    ocall_send(buf);
    output[0] = 0;
    return 0;
}
