/* ocallptr_leak: copies a secret-derived value into a buffer and hands the
 * buffer POINTER to an OCALL. No scalar argument is tainted, so the
 * explicit policy stays quiet — the ocall-pointer pack walks the cells
 * reachable from the pointer at call time and flags the escape. */
int push_stats(int *secrets, int *output)
{
    int buf[2];
    buf[0] = secrets[0] * 2;
    buf[1] = 5;
    ocall_send(buf);
    output[0] = 0;
    return 0;
}
