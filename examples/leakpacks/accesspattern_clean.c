/* accesspattern_clean: the twin of accesspattern_leak with a fixed lookup
 * index — the address trace is the same for every secret value, so the
 * access-pattern pack must stay quiet. */
int probe(int *secrets, int *table, int *output)
{
    int x;
    x = table[3];
    output[0] = 7;
    return 0;
}
