/* orderliness_clean: the twin of orderliness_leak with the lifecycle gate
 * called FIRST — the same masked mix crosses the boundary, but only after
 * init_session ran, so the orderliness pack must stay quiet. */
void init_session(void)
{
    int ready;
    ready = 1;
}

int stream_out(int *secrets)
{
    init_session();
    ocall_push(secrets[0] + secrets[1]);
    return 0;
}
