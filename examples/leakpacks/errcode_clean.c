/* errcode_clean: the twin of errcode_leak returning a fixed status code;
 * the secret-masked aggregate goes to the [out] buffer, where the paper's
 * nonreversibility policy correctly accepts it. The errcode-channel pack
 * must stay quiet. */
int status_mix(int *secrets, int *output)
{
    output[0] = secrets[0] + secrets[1] + secrets[2];
    return 0;
}
