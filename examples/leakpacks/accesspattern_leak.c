/* accesspattern_leak: a table lookup indexed by a secret. The loaded value
 * never reaches any sink, so every data-flow policy is quiet — but the
 * ACCESS ADDRESS depends on the secret, which a controlled-channel
 * attacker reads from the page-granular access trace. */
int probe(int *secrets, int *table, int *output)
{
    int x;
    x = table[secrets[0]];
    output[0] = 7;
    return 0;
}
