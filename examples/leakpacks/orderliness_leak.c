/* orderliness_leak: the enclave pushes secret-derived data across the
 * boundary BEFORE its lifecycle init gate runs on the path — Guardian's
 * orderliness violation. The pushed mix masks each individual secret, so
 * the explicit policy is quiet; only the entry ORDER is wrong. */
void init_session(void)
{
    int ready;
    ready = 1;
}

int stream_out(int *secrets)
{
    ocall_push(secrets[0] + secrets[1]);
    init_session();
    return 0;
}
