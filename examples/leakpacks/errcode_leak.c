/* errcode_leak: the ecall status code computes over a mix of secrets. The
 * mix masks each individual secret, so the single-tag explicit policy is
 * (correctly) quiet — but the status code is still a covert channel:
 * repeated calls narrow the mix one comparison at a time. The
 * errcode-channel pack flags it. */
int status_mix(int *secrets)
{
    return secrets[0] + secrets[1];
}
