// enclave_e2e walks the full TEE-based secure computation workflow of §III
// on the simulated SGX platform:
//
//  1. the user audits the enclave code with PrivacyScope,
//  2. loads it and verifies an attestation quote,
//  3. receives the provisioned data-encryption key,
//  4. encrypts their private data and submits it via ECALL,
//  5. observes only what crosses the boundary back.
//
// The demo uses the *fixed* Recommender (post-disclosure), so the audit
// passes and the observable model reveals only masked aggregates.
//
//	go run ./examples/enclave_e2e
package main

import (
	"fmt"
	"log"

	"privacyscope"
	"privacyscope/internal/mlsuite"
	"privacyscope/internal/sgx"
)

func main() {
	// Step 1 — audit before trusting.
	fmt.Println("step 1: PrivacyScope audit of the enclave code")
	report, err := privacyscope.AnalyzeEnclave(mlsuite.FixedRecommenderC, mlsuite.FixedRecommenderEDL)
	if err != nil {
		log.Fatal(err)
	}
	if !report.Secure() {
		log.Fatalf("audit failed:\n%s", report.Render())
	}
	fmt.Println("  audit clean: no nonreversibility violations")

	// Step 2 — load and attest.
	platform := sgx.NewPlatform([]byte("e2e-demo"))
	enclave, err := platform.LoadEnclave(mlsuite.FixedRecommenderC, mlsuite.FixedRecommenderEDL)
	if err != nil {
		log.Fatal(err)
	}
	measurement := enclave.Measurement()
	fmt.Printf("step 2: enclave loaded, measurement %x…\n", measurement[:8])
	quote := enclave.Quote([]byte("user-session-42"))
	if err := platform.VerifyQuote(quote, enclave.Measurement()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  attestation quote verified")

	// Step 3 — key provisioning (only possible with a valid quote).
	dataKey, err := platform.ProvisionDataKey(quote, enclave.Measurement())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("step 3: data-encryption key provisioned")

	// Step 4 — encrypt private ratings and submit. Ratings are bytes
	// here (1–5 stars), encrypted under the provisioned key; only the
	// enclave runtime can decrypt them at the boundary.
	ratings := []byte{5, 3, 4, 2, 5, 4, 3, 4}
	ciphertext, err := sgx.EncryptInput(dataKey, 1, ratings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 4: %d private ratings encrypted (%d-byte ciphertext)\n",
		len(ratings), len(ciphertext))
	res, err := enclave.ECall("recommender_train", []sgx.Arg{
		{Encrypted: ciphertext},
		sgx.OutArg(6),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 5 — the host's complete view of the computation.
	fmt.Println("step 5: observable outputs (everything the host sees):")
	model := res.Outs["model"]
	fmt.Printf("  return       = %s\n", res.Return)
	fmt.Printf("  global mean  = %g\n", model[1].Float())
	fmt.Printf("  item offsets = %g, %g\n", model[2].Float(), model[5].Float())
	fmt.Println("  (aggregates over all 8 ratings — no single rating recoverable)")

	// Sanity: the aggregate matches a local recomputation.
	floats := make([]float64, len(ratings))
	for i, r := range ratings {
		floats[i] = float64(r)
	}
	golden, err := mlsuite.FitCF(floats, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  cross-check: local global mean = %g\n", golden.GlobalMean)
}
