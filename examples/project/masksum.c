/* masksum: an aggregate over several secrets — each addend masks the
 * others, so no single secret is recoverable (nonreversibility holds; a
 * plain noninterference check would still reject this, the paper's
 * motivating false positive). */
int mask_sum(int *secrets, int *output)
{
    output[0] = secrets[0] + secrets[1] + secrets[2];
    return 0;
}
