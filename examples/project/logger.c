/* logger: hands a raw secret to an OCALL — every OCALL argument escapes
 * the enclave and is observable, so this is an explicit leak through the
 * ocall sink. */
int log_reading(int *secrets)
{
    ocall_log(secrets[0]);
    return 0;
}
