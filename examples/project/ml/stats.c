/* ml/stats: two entry points sharing one module — a masked aggregate
 * (secure) and a constant-returning count (secure), exercising multi-ECALL
 * units and nested project directories. */
int stats_sum(int *secrets, int *output)
{
    output[0] = secrets[0] + secrets[1];
    return 0;
}

int stats_count(int *secrets, int *output)
{
    output[0] = 2;
    return 0;
}
