/* listing1: the paper's Listing 1 — one explicit leak (the +100/+1 chain
 * inverts exactly) and one implicit leak (the branch on secrets[1]). */
int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
