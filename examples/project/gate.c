/* gate: branches on a secret and writes distinguishable constants — the
 * implicit (control-flow) leak of the paper's Example 2. */
int gate_check(int *secrets, int *output)
{
    if (secrets[0] == 7) {
        output[0] = 1;
    } else {
        output[0] = 0;
    }
    return 0;
}
