/* vault: exports a stored secret with a constant offset — the textbook
 * explicit nonreversibility violation (the offset inverts trivially). */
int vault_export(int *secrets, int *output)
{
    output[0] = secrets[0] + 4;
    return 0;
}
