/* sanitizer: reads a secret but overwrites the value before anything
 * observable happens — dead secret reads must not be flagged. */
int sanitize(int *secrets, int *output)
{
    int t = secrets[0];
    t = 0;
    output[0] = t;
    return 0;
}
