// Quickstart: analyze the paper's Listing 1 with the public API and print
// the Box-1-style warning report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"privacyscope"
)

// enclaveC is Listing 1 of the paper: an SGX enclave entry point that
// explicitly leaks secrets[0] through output[0] and implicitly leaks
// secrets[1] through its return value.
const enclaveC = `
int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
`

// enclaveEDL declares the boundary: secrets flows in (private), output
// flows out (observable by the untrusted host).
const enclaveEDL = `
enclave {
    trusted {
        public int enclave_process_data([in] char *secrets, [out] char *output);
    };
};
`

func main() {
	report, err := privacyscope.AnalyzeEnclave(enclaveC, enclaveEDL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Render())

	fmt.Println("\n--- structured findings ---")
	for _, f := range report.Findings() {
		fmt.Printf("%-8s %-16s secret=%-12s", f.Kind, f.Where, f.Secret)
		if f.Witness != nil && f.Witness.Verified {
			fmt.Printf("  (confirmed by concrete replay: observed %g vs %g)",
				f.Witness.ObservedA, f.Witness.ObservedB)
		}
		fmt.Println()
	}
}
