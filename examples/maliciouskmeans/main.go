// maliciouskmeans reproduces the §VI-D-2 case study: a malicious enclave
// writer embeds explicit and implicit exfiltration logic in a Kmeans
// module; PrivacyScope detects both injections before the enclave is ever
// deployed, and the demo then runs the trojaned enclave concretely to show
// the leak is real.
//
//	go run ./examples/maliciouskmeans
package main

import (
	"fmt"
	"log"

	"privacyscope"
	"privacyscope/internal/interp"
	"privacyscope/internal/mlsuite"
	"privacyscope/internal/sgx"
)

func main() {
	fmt.Println("=== static detection (before deployment) ===")
	report, err := privacyscope.AnalyzeEnclave(mlsuite.MaliciousKmeansC, mlsuite.MaliciousKmeansEDL)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range report.Findings() {
		if f.Where == "centroids[4]" || f.Where == "centroids[5]" {
			fmt.Printf("INJECTED LEAK DETECTED: %s\n", f.Message)
			if f.Inversion != nil && f.Inversion.Exact {
				fmt.Printf("  attacker recovery: %s\n", f.Inversion.Formula())
			}
		}
	}

	fmt.Println("\n=== concrete confirmation (running the trojan) ===")
	platform := sgx.NewPlatform([]byte("demo"))
	enclave, err := platform.LoadEnclave(mlsuite.MaliciousKmeansC, mlsuite.MaliciousKmeansEDL)
	if err != nil {
		log.Fatal(err)
	}
	// Private training points (4 points × 2 dims); the first coordinate
	// is the victim's secret 7.25, and the last coordinate is the magic
	// beacon value 13.
	points := []float64{7.25, 1.0, 0.5, 0.9, 9.0, 9.5, 9.2, 13.0}
	cells := make([]interp.Value, len(points))
	for i, v := range points {
		cells[i] = interp.FloatValue(v)
	}
	res, err := enclave.ECall("enclave_train_kmeans", []sgx.Arg{
		sgx.BufArg(cells),
		sgx.OutArg(6), // 4 legit centroid slots + 2 injected
	})
	if err != nil {
		log.Fatal(err)
	}
	out := res.Outs["centroids"]
	observed := out[4].Float()
	recovered := (observed - 3) / 4
	fmt.Printf("host observes centroids[4] = %g → recovers secret %g (actual %g)\n",
		observed, recovered, points[0])
	fmt.Printf("host observes centroids[5] = %g → beacon says points[7]==13 is %v (actual %v)\n",
		out[5].Float(), out[5].Float() == 1, points[7] == 13)
}
