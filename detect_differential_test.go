package privacyscope

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacyscope/internal/core"
	"privacyscope/internal/detect"
	"privacyscope/internal/edl"
	"privacyscope/internal/minic"
	"privacyscope/internal/mlsuite"
)

// This file is the detector-registry differential gate (make detect-smoke):
// the registry-backed legacy detectors (explicit, implicit, timing) must be
// BYTE-IDENTICAL to the pre-refactor core.Checker on every corpus the repo
// ships — the ML evaluation suite, the §IV cross-stack programs, and the
// examples/project tree. The pre-refactor checker is kept unmodified in
// internal/core exactly so it can serve as this oracle. A companion suite
// validates the four scenario packs against the seeded examples/leakpacks
// units: every leak unit must be flagged with its pack's kind and rule ID,
// and every clean twin must stay quiet.

// detectCanonical renders one report with Duration zeroed (the only field
// that legitimately differs between two runs) plus the exploration
// accounting, so the comparison pins findings, verdicts, coverage, cost
// model and warnings all at once.
func detectCanonical(r *Report) string {
	clone := *r
	clone.Duration = 0
	var sb strings.Builder
	sb.WriteString(clone.Render())
	fmt.Fprintf(&sb, "verdict=%s paths=%d states=%d regions=%d secrets=%d warnings=%q\n",
		clone.Verdict(), clone.Paths, clone.States, clone.Regions, clone.Secrets, clone.Warnings)
	for i, f := range clone.Findings {
		fmt.Fprintf(&sb, "finding[%d] kind=%s sink=%s where=%s secret=%s rule=%q severity=%q msg=%q\n",
			i, f.Kind, f.Sink, f.Where, f.Secret, f.Rule, f.Severity, f.Message)
	}
	return sb.String()
}

// requireDetectIdentical analyzes every public ECALL of one module twice —
// through the pre-refactor core.Checker (the oracle) and through detect.Run
// with the default detector set — and requires the rendered reports to
// agree byte for byte. The only tolerated difference is the Rule/Severity
// stamp the registry adds to finding structs, which the kind-gated Render
// keeps out of the legacy report text; the canonical form therefore strips
// it before comparing and asserts it separately.
func requireDetectIdentical(t *testing.T, cSrc, edlSrc string) {
	t.Helper()
	file, err := minic.Parse(cSrc)
	if err != nil {
		t.Fatal(err)
	}
	iface, err := edl.Parse(edlSrc)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	if names := iface.OCallNames(); len(names) > 0 {
		merged := make(map[string]bool, len(names))
		for _, n := range names {
			merged[n] = true
		}
		opts.Engine.OCallFuncs = merged
	}
	set, err := detect.ResolveSet(opts, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, sig := range iface.Trusted {
		if !sig.Public {
			continue
		}
		ran++
		specs := edl.ParamSpecs(sig, nil)
		oracle, err := core.New(opts).CheckFunction(context.Background(), file, sig.Name, specs)
		if err != nil {
			t.Fatalf("oracle %s: %v", sig.Name, err)
		}
		reg, err := detect.Run(context.Background(), set, opts, file, sig.Name, specs)
		if err != nil {
			t.Fatalf("registry %s: %v", sig.Name, err)
		}
		want, got := detectCanonicalLegacy(oracle), detectCanonicalLegacy(reg)
		if got != want {
			t.Errorf("%s: registry diverges from pre-refactor checker:\n--- oracle ---\n%s--- registry ---\n%s",
				sig.Name, want, got)
		}
		// The registry stamps rule IDs the oracle never sets; beyond the
		// rendered identity above, pin that the stamps are the documented
		// ones for the legacy trio.
		for i, f := range reg.Findings {
			wantRule := map[core.LeakKind]string{
				core.ExplicitLeak:      "PS-EXPL",
				core.ImplicitLeak:      "PS-IMPL",
				core.TimingLeak:        "PS-TIME",
				core.ProbabilisticLeak: "PS-PROB",
			}[f.Kind]
			if f.Rule != wantRule {
				t.Errorf("%s finding[%d] kind=%s: rule %q, want %q",
					sig.Name, i, f.Kind, f.Rule, wantRule)
			}
		}
	}
	if ran == 0 {
		t.Fatal("module declared no public ECALLs — differential ran nothing")
	}
}

// detectCanonicalLegacy is detectCanonical with the Rule/Severity stamps
// cleared: the oracle checker predates them, so the struct-level comparison
// must not read the registry's stamping as a divergence. (The rendered text
// never contains them for legacy kinds — Render gates the rule line on the
// pack kinds — so Render() itself is compared verbatim.)
func detectCanonicalLegacy(r *Report) string {
	clone := *r
	clone.Findings = append([]Finding(nil), r.Findings...)
	for i := range clone.Findings {
		clone.Findings[i].Rule = ""
		clone.Findings[i].Severity = ""
	}
	return detectCanonical(&clone)
}

// TestDetectDifferentialMLSuite runs the full ML evaluation corpus (Table V
// modules, the extension modules, and the malicious variants) through the
// oracle and the registry.
func TestDetectDifferentialMLSuite(t *testing.T) {
	type target struct {
		name   string
		c, edl string
	}
	var targets []target
	for _, m := range append(mlsuite.Modules(), mlsuite.ExtensionModules()...) {
		targets = append(targets, target{name: m.Name, c: m.C, edl: m.EDL})
	}
	targets = append(targets,
		target{name: "evil-linreg", c: mlsuite.MaliciousLinRegC, edl: mlsuite.MaliciousLinRegEDL},
		target{name: "evil-kmeans", c: mlsuite.MaliciousKmeansC, edl: mlsuite.MaliciousKmeansEDL},
		target{name: "fixed-recommender", c: mlsuite.FixedRecommenderC, edl: mlsuite.FixedRecommenderEDL},
	)
	for _, tgt := range targets {
		t.Run(tgt.name, func(t *testing.T) {
			requireDetectIdentical(t, tgt.c, tgt.edl)
		})
	}
}

// TestDetectDifferentialExamples walks every .c/.edl unit under
// examples/project AND examples/leakpacks through the oracle and the
// registry. The leakpack units run with the DEFAULT set here (packs off),
// which doubles as the off-by-default pin: without the rule file's enable,
// the registry must report exactly what the pre-refactor checker reports.
func TestDetectDifferentialExamples(t *testing.T) {
	var units []string
	for _, root := range []string{
		filepath.Join("examples", "project"),
		filepath.Join("examples", "leakpacks"),
	} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".c") {
				units = append(units, path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(units) < 15 {
		t.Fatalf("found %d corpus units, want at least 15", len(units))
	}
	for _, cPath := range units {
		edlPath := strings.TrimSuffix(cPath, ".c") + ".edl"
		name := filepath.ToSlash(strings.TrimPrefix(cPath, "examples"+string(filepath.Separator)))
		t.Run(name, func(t *testing.T) {
			cSrc, err := os.ReadFile(cPath)
			if err != nil {
				t.Fatal(err)
			}
			edlSrc, err := os.ReadFile(edlPath)
			if err != nil {
				t.Fatal(err)
			}
			requireDetectIdentical(t, string(cSrc), string(edlSrc))
		})
	}
}

// TestDetectDifferentialSectionIV replays the §IV differential-stack MiniC
// programs through the oracle and the registry, with every legacy switch
// combination that changes the default set (ablations off, timing and
// probabilistic on).
func TestDetectDifferentialSectionIV(t *testing.T) {
	cases := []struct {
		name, fn, src string
		mut           func(*core.Options)
	}{
		{"insecure", "leak", sectionIVInsecure, nil},
		{"secure-masked", "masked", `
int masked(char *secrets, char *output)
{
    output[0] = secrets[0] + 4 + secrets[1];
    return 0;
}
`, nil},
		{"example2-feasible", "example2", `
int example2(char *secrets, char *output)
{
    int h = 2 * secrets[0];
    if (h - 5 == 15)
        output[0] = 0;
    else
        output[0] = 1;
    return 0;
}
`, nil},
		{"implicit-ablated", "example2", `
int example2(char *secrets, char *output)
{
    int h = 2 * secrets[0];
    if (h - 5 == 15)
        output[0] = 0;
    else
        output[0] = 1;
    return 0;
}
`, func(o *core.Options) { o.ImplicitCheck = false }},
		{"timing-on", "unbalanced", `
int unbalanced(char *secrets, char *output)
{
    int i = 0;
    if (secrets[0] > 10) {
        i = i + 1;
        i = i + 2;
        i = i + 3;
    }
    output[0] = 1;
    return 0;
}
`, func(o *core.Options) { o.TimingCheck = true }},
		{"no-witness-replay", "leak", sectionIVInsecure,
			func(o *core.Options) { o.ReplayWitness = false }},
	}
	specs := []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			file, err := minic.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			opts := core.DefaultOptions()
			if tc.mut != nil {
				tc.mut(&opts)
			}
			set, err := detect.ResolveSet(opts, nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := core.New(opts).CheckFunction(context.Background(), file, tc.fn, specs)
			if err != nil {
				t.Fatal(err)
			}
			reg, err := detect.Run(context.Background(), set, opts, file, tc.fn, specs)
			if err != nil {
				t.Fatal(err)
			}
			want, got := detectCanonicalLegacy(oracle), detectCanonicalLegacy(reg)
			if got != want {
				t.Errorf("registry diverges from pre-refactor checker:\n--- oracle ---\n%s--- registry ---\n%s", want, got)
			}
		})
	}
}

const sectionIVInsecure = `
int leak(char *secrets, char *output)
{
    output[0] = secrets[0] + 4;
    return 0;
}
`

// leakPack describes one seeded examples/leakpacks unit pair.
type leakPack struct {
	unit     string // file stem of the leaking unit
	clean    string // file stem of the clean twin
	detector string
	kind     core.LeakKind
	rule     string
	severity string
}

var leakPacks = []leakPack{
	{"ocallptr_leak", "ocallptr_clean", "ocall-pointer", core.OcallPtrLeak, "PS-OCPTR", "high"},
	{"errcode_leak", "errcode_clean", "errcode-channel", core.ErrCodeLeak, "PS-ERR", "medium"},
	{"orderliness_leak", "orderliness_clean", "orderliness", core.OrderlinessLeak, "PS-ORDER", "high"},
	{"accesspattern_leak", "accesspattern_clean", "access-pattern", core.AccessPatternLeak, "PS-ACCESS", "medium"},
}

func loadLeakPackUnit(t *testing.T, stem string) (c, edlSrc, xml string) {
	t.Helper()
	read := func(ext string) string {
		b, err := os.ReadFile(filepath.Join("examples", "leakpacks", stem+ext))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	return read(".c"), read(".edl"), read(".xml")
}

// TestDetectLeakPacksSeededUnits is the pack validation half of the gate:
// each seeded leak unit must be flagged by its pack — with the pack's kind,
// rule ID and severity — and each clean twin must come back provably
// secure. The packs are enabled the way a user enables them, through the
// unit's committed rule file.
func TestDetectLeakPacksSeededUnits(t *testing.T) {
	for _, p := range leakPacks {
		t.Run(p.unit, func(t *testing.T) {
			c, e, xml := loadLeakPackUnit(t, p.unit)
			rep, err := AnalyzeEnclave(c, e, WithConfigXML([]byte(xml)))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Verdict() != VerdictFindings {
				t.Fatalf("verdict %s, want findings; report:\n%s", rep.Verdict(), rep.Render())
			}
			matched := 0
			for _, f := range rep.Findings() {
				if f.Kind != p.kind {
					t.Errorf("unexpected %s finding (only %s should fire):\n%s",
						f.Kind, p.kind, rep.Render())
					continue
				}
				matched++
				if f.Rule != p.rule || f.Severity != p.severity {
					t.Errorf("finding stamped rule=%q severity=%q, want %q/%q",
						f.Rule, f.Severity, p.rule, p.severity)
				}
			}
			if matched == 0 {
				t.Fatalf("no %s finding; report:\n%s", p.kind, rep.Render())
			}
		})
		t.Run(p.clean, func(t *testing.T) {
			c, e, xml := loadLeakPackUnit(t, p.clean)
			rep, err := AnalyzeEnclave(c, e, WithConfigXML([]byte(xml)))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Secure() {
				t.Fatalf("clean twin not secure (verdict %s):\n%s", rep.Verdict(), rep.Render())
			}
		})
	}
}

// TestDetectLeakPacksWithDetectorsOption mirrors the rule-file enablement
// through the programmatic/CLI path: WithDetectors("default", pack) must
// behave exactly like the rule file's <enable>, and selecting only the pack
// (no "default") must still flag the seeded leak.
func TestDetectLeakPacksWithDetectorsOption(t *testing.T) {
	for _, p := range leakPacks {
		t.Run(p.unit, func(t *testing.T) {
			c, e, xml := loadLeakPackUnit(t, p.unit)
			viaRules, err := AnalyzeEnclave(c, e, WithConfigXML([]byte(xml)))
			if err != nil {
				t.Fatal(err)
			}
			// The orderliness pack needs the rule file's lifecycle gate even
			// when the selection comes from the option; keep the XML for the
			// gate but drive the selection from WithDetectors.
			viaOption, err := AnalyzeEnclave(c, e,
				WithConfigXML([]byte(xml)), WithDetectors("default", p.detector))
			if err != nil {
				t.Fatal(err)
			}
			want := detectCanonical(viaRules.Reports[0])
			if got := detectCanonical(viaOption.Reports[0]); got != want {
				t.Errorf("WithDetectors diverges from rule-file enable:\n--- rules ---\n%s--- option ---\n%s", want, got)
			}
			only, err := AnalyzeEnclave(c, e,
				WithConfigXML([]byte(xml)), WithDetectors(p.detector))
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, f := range only.Findings() {
				if f.Kind == p.kind {
					found = true
				}
			}
			if !found {
				t.Errorf("pack-only selection missed the seeded leak:\n%s", only.Render())
			}
		})
	}
}

// TestDetectUnknownDetectorName pins the error contract: an unknown name —
// via the option or the rule file — fails the analysis with an error that
// names the offender and the known set.
func TestDetectUnknownDetectorName(t *testing.T) {
	c, e, _ := loadLeakPackUnit(t, "errcode_leak")
	_, err := AnalyzeEnclave(c, e, WithDetectors("errcode"))
	if err == nil {
		t.Fatal("unknown detector name accepted")
	}
	for _, want := range []string{`"errcode"`, "errcode-channel", "explicit"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
	_, err = AnalyzeEnclave(c, e, WithConfigXML([]byte(
		"<privacyscope>\n<detectors>\n<enable name=\"bogus\"/>\n</detectors>\n</privacyscope>")))
	if err == nil {
		t.Fatal("unknown rule-file detector name accepted")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), `"bogus"`) {
		t.Errorf("rule-file error %q lacks the line-numbered offender", err)
	}
}

// TestDetectSummaryStoreKeySeparation pins the summary-store half of the
// cache-key participation contract: two runs over the same module with
// different detector selections must never share persisted summaries,
// because pack-bearing selections run the engine with different event
// recording. A warm store filled under the default set must yield zero
// hits under an all-packs selection.
func TestDetectSummaryStoreKeySeparation(t *testing.T) {
	const src = `
int helper(int x) { return x + 1; }
int f(int *secrets, int *output)
{
    output[0] = helper(secrets[0]) + secrets[1];
    return 0;
}
`
	const e = `
enclave {
    trusted {
        public int f([in] int *secrets, [out] int *output);
    };
};
`
	store := newMemSummaryStore()
	run := func(detectors ...string) *Metrics {
		t.Helper()
		m := NewMetrics()
		opts := []Option{WithSummaries(), WithSummaryStore(store), WithObserver(m)}
		if len(detectors) > 0 {
			opts = append(opts, WithDetectors(detectors...))
		}
		if _, err := AnalyzeEnclave(src, e, opts...); err != nil {
			t.Fatal(err)
		}
		return m
	}
	cold := run()
	if cold.Counter("summary.computed") == 0 {
		t.Fatal("cold run computed no summaries — store not exercised")
	}
	warm := run()
	if got := warm.Counter("summary.computed"); got != 0 {
		t.Fatalf("warm same-set rerun computed %d summaries, want 0", got)
	}
	// errcode-channel consumes no per-path events, so it keeps summary mode
	// — but its selection key differs, so the store must miss.
	other := run("default", "errcode-channel")
	if got := other.Counter("summary.cache.hits"); got != 0 {
		t.Fatalf("different detector set got %d summary cache hits, want 0", got)
	}
}
