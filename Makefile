# `make help` lists the targets; see the comments above each for detail.
.PHONY: help
help:
	@echo "test            build + full test suite (the tier-1 gate)"
	@echo "check           vet + race tests + fuzz/examples/batch smokes"
	@echo "fuzz-smoke      short native-fuzzer runs (parsers, fail-soft, traceparent)"
	@echo "examples-smoke  run the runnable examples"
	@echo "batch-smoke     cold + warm project run over examples/project"
	@echo "summary-smoke   summary-vs-inline differential over every corpus (-race)"
	@echo "intern-smoke    hash-consing differential: interning on vs off must be"
	@echo "                byte-identical over every corpus, jobs-invariant, plus"
	@echo "                the arena property/race/alloc pins (-race)"
	@echo "detect-smoke    detector-registry differential: legacy detectors must be"
	@echo "                byte-identical to the pre-refactor checker over every"
	@echo "                corpus; scenario packs must flag the seeded leakpacks (-race)"
	@echo "chaos-smoke     kill a worker mid-batch; the fleet must fail soft (-race)"
	@echo "bench-report    regenerate the paper's evaluation report"
	@echo "bench-check     compare a fresh run against the committed BENCH_N.json;"
	@echo "                deterministic engine columns must match exactly (CI fails"
	@echo "                on drift), timing columns only warn inside tolerance"
	@echo "bench-snapshot  refresh the committed BENCH_N.json in place — run this"
	@echo "                (and commit the result) when an INTENDED engine change"
	@echo "                shifts the deterministic counters and bench-check fails"
	@echo "bench           go test -bench over everything"

# Tier 1: the seed gate — everything must build and pass.
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier 1.5: vet + race detector (exercises the concurrent telemetry paths,
# WithParallelism, and the privacyscoped daemon), a short fuzz pass over the
# parsers and the fail-soft engine invariant, and the runnable examples.
.PHONY: check
check: fuzz-smoke examples-smoke batch-smoke summary-smoke detect-smoke intern-smoke
	go vet ./...
	go test -race ./...

# Short native-fuzzer runs: the parsers must never crash on arbitrary bytes
# (the EDL parser doubly so — the daemon exposes it over HTTP), budget
# exhaustion must always degrade coverage instead of erroring
# (docs/ROBUSTNESS.md), and the W3C traceparent codec the daemon and
# coordinator ingest off the wire must never crash or mangle a round trip.
# The go tool runs one target per invocation.
.PHONY: fuzz-smoke
fuzz-smoke:
	go test ./internal/minic -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 10s
	go test ./internal/symexec -run '^$$' -fuzz '^FuzzFailSoft$$' -fuzztime 10s
	go test ./internal/edl -run '^$$' -fuzz '^FuzzEDL$$' -fuzztime 10s
	go test ./internal/obs -run '^$$' -fuzz '^FuzzTraceparent$$' -fuzztime 10s
	go test ./internal/symexec -run '^$$' -fuzz '^FuzzSummaryRoundtrip$$' -fuzztime 10s
	go test ./internal/edl -run '^$$' -fuzz '^FuzzRuleConfig$$' -fuzztime 10s
	go test ./internal/sym -run '^$$' -fuzz '^FuzzIntern$$' -fuzztime 10s

# Chaos smoke: the distributed fail-soft gate (docs/ROBUSTNESS.md). A
# coordinator fans examples/project across three in-process worker daemons
# while deterministic fault injection kills the busiest worker mid-batch;
# the run must re-route every pending unit to the survivors and match a
# single-daemon run byte for byte — verified under the race detector.
.PHONY: chaos-smoke
chaos-smoke:
	go test ./internal/coord -race -count=1 -v -run '^TestChaos'

# The examples double as living documentation — run them so they cannot rot.
.PHONY: examples-smoke
examples-smoke:
	go run ./examples/quickstart
	go run ./examples/enclave_e2e

# Batch smoke: a cold project run over examples/project followed by a warm
# rerun on the same cache dir. The tree contains leaking units, so exit
# status 2 (findings) is the expected outcome of both runs; anything else
# fails the smoke. The cold run also exports its project timeline as a
# Chrome trace-event file (batch-smoke-trace.json, one lane per worker —
# load it in Perfetto); CI uploads it as an artifact. See docs/BATCH.md.
.PHONY: batch-smoke
batch-smoke:
	rm -rf .pscache-smoke bin/privacyscope-smoke batch-smoke-trace.json
	go build -o bin/privacyscope-smoke ./cmd/privacyscope
	./bin/privacyscope-smoke -dir examples/project -cache-dir .pscache-smoke -trace-out batch-smoke-trace.json; test $$? -eq 2
	grep -q '"traceEvents"' batch-smoke-trace.json
	./bin/privacyscope-smoke -dir examples/project -cache-dir .pscache-smoke | grep -Eq 'verdict: .* \([1-9][0-9]* cached, 0 analyzed, 0 errors\)'
	rm -rf .pscache-smoke bin/privacyscope-smoke

# Summary smoke: the compositional-analysis differential gate. Summary mode
# (-summaries) must be byte-identical to inline mode — the differential
# oracle — over the ML suite, the §IV cross-stack programs, the
# examples/project tree and the batch goldens, with the summary-store
# invalidation pins included; run under the race detector because the
# summary table is shared read-only across parallel per-ECALL jobs.
.PHONY: summary-smoke
summary-smoke:
	go test -race -count=1 -run '^TestSummary' . ./internal/symexec ./internal/batch

# Intern smoke: the hash-consing differential gate. Interning (the default)
# is a pure representation change, so -intern=false must produce
# byte-identical JSON envelopes over the ML suite, the §IV stacks,
# examples/project and examples/leakpacks, invariant under ECALL
# parallelism and path workers; the arena's property/fuzz-regression/alloc
# pins ride in ./internal/sym. Run under the race detector because one
# arena is shared read-only across path-worker goroutines.
.PHONY: intern-smoke
intern-smoke:
	go test -race -count=1 -run '^TestIntern' . ./internal/sym

# Detector-registry differential gate (docs/DETECTORS.md): the registry's
# legacy detectors (explicit, implicit, timing) must render byte-identically
# to the pre-refactor core.Checker — kept unmodified as the oracle — over
# the ML suite, the §IV stacks and the examples trees; the four scenario
# packs must flag every seeded examples/leakpacks unit and stay quiet on the
# clean twins; the detector selection must partition every cache tier (rule
# config errors and fuzz coverage ride in ./internal/edl).
.PHONY: detect-smoke
detect-smoke:
	go test -race -count=1 -run '^TestDetect' . ./internal/edl ./internal/server ./internal/bench

# Regenerate the paper's evaluation report.
.PHONY: bench-report
bench-report:
	go run ./cmd/benchreport

# Compare a fresh measured run against the latest committed BENCH_N.json
# snapshot: deterministic engine counters must match exactly — this is a
# FAILING gate, in CI too; timing columns only warn inside a 50% host
# tolerance. When an intended engine change shifts the counters, refresh
# the snapshot with `make bench-snapshot` and commit the result.
.PHONY: bench-check
bench-check:
	go run ./cmd/benchreport -check "$$(ls BENCH_*.json | sort -V | tail -1)"

.PHONY: bench-snapshot
bench-snapshot:
	go run ./cmd/benchreport -json > "$$(ls BENCH_*.json | sort -V | tail -1)"

.PHONY: bench
bench:
	go test -bench=. -benchmem ./...
