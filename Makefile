# Tier 1: the seed gate — everything must build and pass.
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier 1.5: vet + race detector (exercises the concurrent telemetry paths
# and WithParallelism).
.PHONY: check
check:
	go vet ./...
	go test -race ./...

# Regenerate the paper's evaluation report.
.PHONY: bench-report
bench-report:
	go run ./cmd/benchreport

.PHONY: bench
bench:
	go test -bench=. -benchmem ./...
