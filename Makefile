# Tier 1: the seed gate — everything must build and pass.
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier 1.5: vet + race detector (exercises the concurrent telemetry paths,
# WithParallelism, and the privacyscoped daemon), a short fuzz pass over the
# parsers and the fail-soft engine invariant, and the runnable examples.
.PHONY: check
check: fuzz-smoke examples-smoke batch-smoke
	go vet ./...
	go test -race ./...

# Short native-fuzzer runs: the parsers must never crash on arbitrary bytes
# (the EDL parser doubly so — the daemon exposes it over HTTP), and budget
# exhaustion must always degrade coverage instead of erroring
# (docs/ROBUSTNESS.md). The go tool runs one target per invocation.
.PHONY: fuzz-smoke
fuzz-smoke:
	go test ./internal/minic -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 10s
	go test ./internal/symexec -run '^$$' -fuzz '^FuzzFailSoft$$' -fuzztime 10s
	go test ./internal/edl -run '^$$' -fuzz '^FuzzEDL$$' -fuzztime 10s

# The examples double as living documentation — run them so they cannot rot.
.PHONY: examples-smoke
examples-smoke:
	go run ./examples/quickstart
	go run ./examples/enclave_e2e

# Batch smoke: a cold project run over examples/project followed by a warm
# rerun on the same cache dir. The tree contains leaking units, so exit
# status 2 (findings) is the expected outcome of both runs; anything else
# fails the smoke. The cold run also exports its project timeline as a
# Chrome trace-event file (batch-smoke-trace.json, one lane per worker —
# load it in Perfetto); CI uploads it as an artifact. See docs/BATCH.md.
.PHONY: batch-smoke
batch-smoke:
	rm -rf .pscache-smoke bin/privacyscope-smoke batch-smoke-trace.json
	go build -o bin/privacyscope-smoke ./cmd/privacyscope
	./bin/privacyscope-smoke -dir examples/project -cache-dir .pscache-smoke -trace-out batch-smoke-trace.json; test $$? -eq 2
	grep -q '"traceEvents"' batch-smoke-trace.json
	./bin/privacyscope-smoke -dir examples/project -cache-dir .pscache-smoke | grep -Eq 'verdict: .* \([1-9][0-9]* cached, 0 analyzed, 0 errors\)'
	rm -rf .pscache-smoke bin/privacyscope-smoke

# Regenerate the paper's evaluation report.
.PHONY: bench-report
bench-report:
	go run ./cmd/benchreport

# Compare a fresh measured run against the latest committed BENCH_N.json
# snapshot: deterministic engine counters must match exactly; timing columns
# only warn inside a 50% host tolerance. Regenerate the snapshot with
# bench-snapshot when an intended engine change shifts the counters.
.PHONY: bench-check
bench-check:
	go run ./cmd/benchreport -check "$$(ls BENCH_*.json | sort -V | tail -1)"

.PHONY: bench-snapshot
bench-snapshot:
	go run ./cmd/benchreport -json > "$$(ls BENCH_*.json | sort -V | tail -1)"

.PHONY: bench
bench:
	go test -bench=. -benchmem ./...
