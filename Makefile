# Tier 1: the seed gate — everything must build and pass.
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier 1.5: vet + race detector (exercises the concurrent telemetry paths
# and WithParallelism), plus a short fuzz pass over the parser and the
# fail-soft engine invariant.
.PHONY: check
check: fuzz-smoke
	go vet ./...
	go test -race ./...

# Short native-fuzzer runs: the parser must never crash on arbitrary bytes,
# and budget exhaustion must always degrade coverage instead of erroring
# (docs/ROBUSTNESS.md). The go tool runs one target per invocation.
.PHONY: fuzz-smoke
fuzz-smoke:
	go test ./internal/minic -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 10s
	go test ./internal/symexec -run '^$$' -fuzz '^FuzzFailSoft$$' -fuzztime 10s

# Regenerate the paper's evaluation report.
.PHONY: bench-report
bench-report:
	go run ./cmd/benchreport

.PHONY: bench
bench:
	go test -bench=. -benchmem ./...
