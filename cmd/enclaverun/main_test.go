package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const demoC = `
int add_bias(int *xs, int *output, int bias) {
    output[0] = xs[0] + xs[1] + bias;
    printf("bias was %d", bias);
    return 0;
}
`

const demoEDL = `
enclave {
    trusted {
        public int add_bias([in] int *xs, [out] int *output, int bias);
    };
};
`

func writeFiles(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	cPath := filepath.Join(dir, "e.c")
	edlPath := filepath.Join(dir, "e.edl")
	if err := os.WriteFile(cPath, []byte(demoC), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(edlPath, []byte(demoEDL), 0o600); err != nil {
		t.Fatal(err)
	}
	return cPath, edlPath
}

func TestRunECall(t *testing.T) {
	cPath, edlPath := writeFiles(t)
	var out bytes.Buffer
	err := run([]string{
		"-c", cPath, "-edl", edlPath, "-call", "add_bias",
		"-arg", "in:10,20", "-arg", "out:1", "-arg", "scalar:5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"attestation quote verified",
		"return = 0",
		"[out] output = [35]",
		"ocall output: bias was 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunEncrypted(t *testing.T) {
	cPath, edlPath := writeFiles(t)
	var out bytes.Buffer
	err := run([]string{
		"-c", cPath, "-edl", edlPath, "-call", "add_bias", "-encrypt",
		"-arg", "in:3,4", "-arg", "out:1", "-arg", "scalar:0",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "[out] output = [7]") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cPath, edlPath := writeFiles(t)
	var out bytes.Buffer
	cases := [][]string{
		{"-c", cPath}, // missing flags
		{"-c", "nope.c", "-edl", edlPath, "-call", "f"},   // bad C path
		{"-c", cPath, "-edl", "nope.edl", "-call", "f"},   // bad EDL path
		{"-c", cPath, "-edl", edlPath, "-call", "nosuch"}, // unknown ECALL
		{"-c", cPath, "-edl", edlPath, "-call", "add_bias", "-arg", "bogus"},
		{"-c", cPath, "-edl", edlPath, "-call", "add_bias", "-arg", "weird:1"},
		{"-c", cPath, "-edl", edlPath, "-call", "add_bias", "-arg", "out:x"},
		{"-c", cPath, "-edl", edlPath, "-call", "add_bias", "-arg", "scalar:x"},
		{"-c", cPath, "-edl", edlPath, "-call", "add_bias", "-arg", "in:1,zz"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestParseCellsFloats(t *testing.T) {
	cells, err := parseCells("1,2.5, 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 || cells[1].Float() != 2.5 || cells[0].Int() != 1 {
		t.Errorf("cells = %v", cells)
	}
	empty, err := parseCells("")
	if err != nil || empty != nil {
		t.Errorf("empty = %v, %v", empty, err)
	}
}
