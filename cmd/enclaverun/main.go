// Command enclaverun loads an enclave module into the SGX simulator,
// performs attestation, and dispatches one ECALL with the given buffers —
// the untrusted host's view of a TEE computation.
//
// Usage:
//
//	enclaverun -c enclave.c -edl enclave.edl -call name \
//	           -arg in:1,2,3 -arg out:4 [-arg scalar:7] [-encrypt]
//
// Each -arg describes one parameter in order: "in:<csv>" marshals values
// in, "out:<n>" allocates an observable buffer of n cells, "scalar:<v>"
// passes a scalar. With -encrypt, "in:" data is encrypted under the
// provisioned data key before crossing the boundary (the §III workflow).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"privacyscope/internal/interp"
	"privacyscope/internal/sgx"
)

type argList []string

// String implements flag.Value.
func (a *argList) String() string { return strings.Join(*a, " ") }

// Set implements flag.Value.
func (a *argList) Set(v string) error {
	*a = append(*a, v)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "enclaverun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("enclaverun", flag.ContinueOnError)
	var (
		cPath   = fs.String("c", "", "enclave C source (required)")
		edlPath = fs.String("edl", "", "EDL interface file (required)")
		call    = fs.String("call", "", "ECALL to dispatch (required)")
		encrypt = fs.Bool("encrypt", false, "encrypt [in] buffers under the provisioned key")
		seed    = fs.String("seed", "demo-platform", "platform seed")
	)
	var rawArgs argList
	fs.Var(&rawArgs, "arg", "parameter spec: in:<csv> | out:<n> | scalar:<v> (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cPath == "" || *edlPath == "" || *call == "" {
		fs.Usage()
		return fmt.Errorf("-c, -edl and -call are required")
	}
	cSrc, err := os.ReadFile(*cPath)
	if err != nil {
		return err
	}
	edlSrc, err := os.ReadFile(*edlPath)
	if err != nil {
		return err
	}

	platform := sgx.NewPlatform([]byte(*seed))
	enclave, err := platform.LoadEnclave(string(cSrc), string(edlSrc))
	if err != nil {
		return err
	}
	measurement := enclave.Measurement()
	fmt.Fprintf(out, "enclave loaded, measurement %x…\n", measurement[:8])

	quote := enclave.Quote([]byte("enclaverun-session"))
	if err := platform.VerifyQuote(quote, enclave.Measurement()); err != nil {
		return fmt.Errorf("attestation: %w", err)
	}
	fmt.Fprintln(out, "attestation quote verified")
	dataKey, err := platform.ProvisionDataKey(quote, enclave.Measurement())
	if err != nil {
		return err
	}

	ecallArgs := make([]sgx.Arg, 0, len(rawArgs))
	for i, raw := range rawArgs {
		kind, payload, found := strings.Cut(raw, ":")
		if !found {
			return fmt.Errorf("arg %d: want kind:payload, got %q", i, raw)
		}
		switch kind {
		case "in":
			cells, err := parseCells(payload)
			if err != nil {
				return fmt.Errorf("arg %d: %w", i, err)
			}
			if *encrypt {
				plain := make([]byte, len(cells))
				for j, c := range cells {
					plain[j] = byte(c.Int())
				}
				ct, err := sgx.EncryptInput(dataKey, uint64(i)+1, plain)
				if err != nil {
					return err
				}
				ecallArgs = append(ecallArgs, sgx.Arg{Encrypted: ct})
				continue
			}
			ecallArgs = append(ecallArgs, sgx.BufArg(cells))
		case "out":
			n, err := strconv.Atoi(payload)
			if err != nil {
				return fmt.Errorf("arg %d: bad out length %q", i, payload)
			}
			ecallArgs = append(ecallArgs, sgx.OutArg(n))
		case "scalar":
			v, err := strconv.ParseFloat(payload, 64)
			if err != nil {
				return fmt.Errorf("arg %d: bad scalar %q", i, payload)
			}
			if v == float64(int64(v)) {
				ecallArgs = append(ecallArgs, sgx.ScalarArg(interp.IntValue(int64(v))))
			} else {
				ecallArgs = append(ecallArgs, sgx.ScalarArg(interp.FloatValue(v)))
			}
		default:
			return fmt.Errorf("arg %d: unknown kind %q", i, kind)
		}
	}

	res, err := enclave.ECall(*call, ecallArgs)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "return = %s\n", res.Return)
	for name, cells := range res.Outs {
		parts := make([]string, len(cells))
		for j, c := range cells {
			parts[j] = c.String()
		}
		fmt.Fprintf(out, "[out] %s = [%s]\n", name, strings.Join(parts, " "))
	}
	for _, line := range res.Printed {
		fmt.Fprintf(out, "ocall output: %s\n", line)
	}
	return nil
}

func parseCells(csv string) ([]interp.Value, error) {
	if csv == "" {
		return nil, nil
	}
	parts := strings.Split(csv, ",")
	cells := make([]interp.Value, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		if v == float64(int64(v)) {
			cells[i] = interp.IntValue(int64(v))
		} else {
			cells[i] = interp.FloatValue(v)
		}
	}
	return cells, nil
}
