package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEdlgenDraft(t *testing.T) {
	dir := t.TempDir()
	cPath := filepath.Join(dir, "m.c")
	src := `
int process(char *secrets, char *output) {
    output[0] = secrets[0] + 1;
    return 0;
}
`
	if err := os.WriteFile(cPath, []byte(src), 0o600); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-c", cPath}, &out); err != nil {
		t.Fatal(err)
	}
	draft := out.String()
	if !strings.Contains(draft, "public int process([in] char* secrets, [out] char* output);") {
		t.Errorf("draft:\n%s", draft)
	}

	// -fn selection.
	out.Reset()
	if err := run([]string{"-c", cPath, "-fn", "process"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "process") {
		t.Errorf("draft:\n%s", out.String())
	}
}

func TestEdlgenErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -c must error")
	}
	if err := run([]string{"-c", "nope.c"}, &out); err == nil {
		t.Error("missing file must error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.c")
	_ = os.WriteFile(bad, []byte("int f("), 0o600)
	if err := run([]string{"-c", bad}, &out); err == nil {
		t.Error("parse error must surface")
	}
	good := filepath.Join(dir, "g.c")
	_ = os.WriteFile(good, []byte("int f(void) { return 0; }"), 0o600)
	if err := run([]string{"-c", good, "-fn", "missing"}, &out); err == nil {
		t.Error("unknown -fn must error")
	}
}
