// Command edlgen drafts an EDL interface file for plain C code by
// inferring [in]/[out] marshalling attributes from how each function uses
// its pointer parameters — the enclave-porting step the paper's authors
// performed by hand when moving open-source ML code into SGX (§VI-C).
//
// Usage:
//
//	edlgen -c module.c [-fn name,name...]
//
// The draft is printed to stdout; review the attributes (an unused pointer
// defaults to [in]) and feed the pair to cmd/privacyscope.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"privacyscope/internal/edl"
	"privacyscope/internal/minic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edlgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("edlgen", flag.ContinueOnError)
	cPath := fs.String("c", "", "C source file (required)")
	fnList := fs.String("fn", "", "comma-separated functions to export (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cPath == "" {
		fs.Usage()
		return fmt.Errorf("-c is required")
	}
	src, err := os.ReadFile(*cPath)
	if err != nil {
		return err
	}
	file, err := minic.Parse(string(src))
	if err != nil {
		return err
	}
	var names []string
	if *fnList != "" {
		for _, n := range strings.Split(*fnList, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	draft, err := edl.GenerateEDL(file, names)
	if err != nil {
		return err
	}
	fmt.Fprint(out, draft)
	return nil
}
