package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.priml")
	if err := os.WriteFile(path, []byte(src), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeModeInsecure(t *testing.T) {
	path := writeProg(t, `h := 2 * get_secret(secret);
if h - 5 == 14 then declassify(0) else declassify(1)`)
	var out bytes.Buffer
	code, err := run([]string{"analyze", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	text := out.String()
	if !strings.Contains(text, "WARNING:") || !strings.Contains(text, "implicit") {
		t.Errorf("output:\n%s", text)
	}
	if !strings.Contains(text, "paths explored: 2") {
		t.Errorf("output missing path count:\n%s", text)
	}
}

func TestAnalyzeModeSecure(t *testing.T) {
	path := writeProg(t, "l := get_secret(secret) + get_secret(secret); declassify(l)")
	var out bytes.Buffer
	code, err := run([]string{"analyze", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "no nonreversibility violations") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunMode(t *testing.T) {
	path := writeProg(t, `h1 := 2 * get_secret(secret);
declassify(h1 + 1)`)
	var out bytes.Buffer
	code, err := run([]string{"run", path, "-secrets", "20"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d", code)
	}
	if !strings.Contains(out.String(), "declassify(site 1) = 41") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"analyze"}, &out); err == nil {
		t.Error("missing file must error")
	}
	if _, err := run([]string{"analyze", "nope.priml"}, &out); err == nil {
		t.Error("unreadable file must error")
	}
	bad := writeProg(t, "x :=")
	if _, err := run([]string{"analyze", bad}, &out); err == nil {
		t.Error("parse error must surface")
	}
	good := writeProg(t, "skip")
	if _, err := run([]string{"frobnicate", good}, &out); err == nil {
		t.Error("unknown mode must error")
	}
	if _, err := run([]string{"run", good, "-secrets", "x"}, &out); err == nil {
		t.Error("bad secret value must error")
	}
}
