// Command primlrun interprets or analyzes PRIML programs (§V of the
// paper).
//
// Usage:
//
//	primlrun analyze prog.priml          # PrivacyScope analysis + trace
//	primlrun run prog.priml -secrets 1,2 # concrete execution
//
// Exit status: 0 secure/successful, 2 when the analysis found violations,
// 1 on errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"privacyscope/internal/priml"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "primlrun:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	if len(args) < 2 {
		return 1, fmt.Errorf("usage: primlrun analyze|run <file.priml> [-secrets v1,v2,...]")
	}
	mode, path := args[0], args[1]
	src, err := os.ReadFile(path)
	if err != nil {
		return 1, err
	}
	prog, err := priml.Parse(string(src))
	if err != nil {
		return 1, err
	}
	switch mode {
	case "analyze":
		res, err := priml.NewAnalyzer(priml.DefaultOptions()).Analyze(prog)
		if err != nil {
			return 1, err
		}
		fmt.Fprint(out, res.Trace.Render())
		fmt.Fprintf(out, "\npaths explored: %d\n", res.Paths)
		if res.Secure() {
			fmt.Fprintln(out, "no nonreversibility violations detected")
			return 0, nil
		}
		for _, f := range res.Findings {
			fmt.Fprintln(out, "WARNING:", f.Message)
		}
		return 2, nil
	case "run":
		fs := flag.NewFlagSet("run", flag.ContinueOnError)
		secretsFlag := fs.String("secrets", "", "comma-separated secret input stream")
		if err := fs.Parse(args[2:]); err != nil {
			return 1, err
		}
		var secrets []int32
		if *secretsFlag != "" {
			for _, part := range strings.Split(*secretsFlag, ",") {
				v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
				if err != nil {
					return 1, fmt.Errorf("bad secret %q: %w", part, err)
				}
				secrets = append(secrets, int32(v))
			}
		}
		res, err := priml.NewInterp().Run(prog, secrets)
		if err != nil {
			return 1, err
		}
		for i, v := range res.Declassified {
			fmt.Fprintf(out, "declassify(site %d) = %d\n", res.DeclassifySites[i], v)
		}
		fmt.Fprintf(out, "final Δ: %v\n", res.Delta)
		return 0, nil
	default:
		return 1, fmt.Errorf("unknown mode %q (want analyze or run)", mode)
	}
}
