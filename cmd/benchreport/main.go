// Command benchreport regenerates every table and figure of the paper's
// evaluation (Fig. 1/2, Tables II–VI, Box 1, the two case studies, and the
// design-choice ablations) and prints them, paper numbers alongside the
// measured ones. See EXPERIMENTS.md for the reading guide.
//
// With -json, the measured rows (Table V with engine counters, the §VIII-C
// scalability study, the privacyscoped daemon throughput table) are written
// as a machine-readable report instead of the rendered text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"privacyscope/internal/bench"
	"privacyscope/internal/server"
)

// jsonReport is the -json payload: the quantitative rows of the evaluation
// with their engine-level counter snapshots.
type jsonReport struct {
	TableV        []bench.TableVRow        `json:"tableV"`
	Scalability   []bench.ScalabilityRow   `json:"scalability"`
	WorkerScaling []bench.WorkerScalingRow `json:"workerScaling"`
	ServerBench   []server.ServerBenchRow  `json:"serverBench"`
	BatchBench    []bench.BatchBenchRow    `json:"batchBench"`
}

func main() {
	asJSON := flag.Bool("json", false, "emit the measured rows as JSON")
	flag.Parse()
	if err := run(*asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(asJSON bool) error {
	if !asJSON {
		out, err := bench.RunAll()
		if err != nil {
			return err
		}
		fmt.Print(out)
		sb, err := server.ServerBench()
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(server.RenderServerBench(sb))
		return nil
	}
	rows, err := bench.TableV()
	if err != nil {
		return err
	}
	sc, err := bench.Scalability()
	if err != nil {
		return err
	}
	deep, err := bench.DeepKmeans()
	if err != nil {
		return err
	}
	ws, err := bench.WorkerScaling()
	if err != nil {
		return err
	}
	sb, err := server.ServerBench()
	if err != nil {
		return err
	}
	bb, err := bench.BatchBench()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{
		TableV:        rows,
		Scalability:   append(sc, deep),
		WorkerScaling: ws,
		ServerBench:   sb,
		BatchBench:    bb,
	})
}
