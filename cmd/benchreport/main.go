// Command benchreport regenerates every table and figure of the paper's
// evaluation (Fig. 1/2, Tables II–VI, Box 1, the two case studies, and the
// design-choice ablations) and prints them, paper numbers alongside the
// measured ones. See EXPERIMENTS.md for the reading guide.
//
// With -json, the measured rows (Table V with engine counters, the §VIII-C
// scalability study, the privacyscoped daemon throughput table) are written
// as a machine-readable report instead of the rendered text.
//
// With -check FILE, a fresh measured run is compared against a committed
// snapshot (a previous -json output, e.g. BENCH_6.json): deterministic
// columns — findings, paths, states, solver queries, cache traffic — must
// match exactly, while timing columns (seconds, ms/request, speedup) only
// warn when they drift past -tolerance (they depend on the host). Exit
// status is 1 on deterministic drift, and on timing drift only with
// -strict.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"privacyscope/internal/bench"
	"privacyscope/internal/server"
)

// jsonReport is the -json payload: the quantitative rows of the evaluation
// with their engine-level counter snapshots.
type jsonReport struct {
	TableV        []bench.TableVRow        `json:"tableV"`
	Scalability   []bench.ScalabilityRow   `json:"scalability"`
	WorkerScaling []bench.WorkerScalingRow `json:"workerScaling"`
	ServerBench   []server.ServerBenchRow  `json:"serverBench"`
	BatchBench    []bench.BatchBenchRow    `json:"batchBench"`
	SummaryBench  []bench.SummaryBenchRow  `json:"summaryBench"`
	DetectorBench []bench.DetectorBenchRow `json:"detectorBench"`
}

func main() {
	asJSON := flag.Bool("json", false, "emit the measured rows as JSON")
	check := flag.String("check", "", "compare a fresh run against this committed -json snapshot")
	tol := flag.Float64("tolerance", 0.5, "relative tolerance for timing columns in -check mode")
	strict := flag.Bool("strict", false, "fail -check on timing drift too, not just deterministic drift")
	flag.Parse()
	if err := run(*asJSON, *check, *tol, *strict); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(asJSON bool, check string, tol float64, strict bool) error {
	if check != "" {
		return runCheck(check, tol, strict)
	}
	if !asJSON {
		out, err := bench.RunAll()
		if err != nil {
			return err
		}
		fmt.Print(out)
		sb, err := server.ServerBench()
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(server.RenderServerBench(sb))
		return nil
	}
	rep, err := measure()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// measure runs the machine-readable slice of the evaluation.
func measure() (jsonReport, error) {
	rows, err := bench.TableV()
	if err != nil {
		return jsonReport{}, err
	}
	sc, err := bench.Scalability()
	if err != nil {
		return jsonReport{}, err
	}
	deep, err := bench.DeepKmeans()
	if err != nil {
		return jsonReport{}, err
	}
	ws, err := bench.WorkerScaling()
	if err != nil {
		return jsonReport{}, err
	}
	sb, err := server.ServerBench()
	if err != nil {
		return jsonReport{}, err
	}
	bb, err := bench.BatchBench()
	if err != nil {
		return jsonReport{}, err
	}
	sr, err := bench.SummaryBench()
	if err != nil {
		return jsonReport{}, err
	}
	dr, err := bench.DetectorBench()
	if err != nil {
		return jsonReport{}, err
	}
	return jsonReport{
		TableV:        rows,
		Scalability:   append(sc, deep),
		WorkerScaling: ws,
		ServerBench:   sb,
		BatchBench:    bb,
		SummaryBench:  sr,
		DetectorBench: dr,
	}, nil
}

// runCheck measures fresh rows and diffs them against the snapshot file.
func runCheck(path string, tol float64, strict bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want interface{}
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("snapshot %s: %w", path, err)
	}
	rep, err := measure()
	if err != nil {
		return err
	}
	// Round-trip the fresh report through JSON so both sides are the same
	// generic shape (maps/slices/float64).
	raw, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	var got interface{}
	if err := json.Unmarshal(raw, &got); err != nil {
		return err
	}

	var hard, soft []string
	compare("", want, got, tol, &hard, &soft)
	for _, w := range soft {
		fmt.Printf("WARN  %s\n", w)
	}
	for _, h := range hard {
		fmt.Printf("DRIFT %s\n", h)
	}
	fmt.Printf("benchreport -check vs %s: %d deterministic drift(s), %d timing warning(s) (tolerance %.0f%%)\n",
		path, len(hard), len(soft), tol*100)
	if len(hard) > 0 || (strict && len(soft) > 0) {
		return fmt.Errorf("measured run drifted from snapshot %s — regenerate it (make bench-snapshot) if the change is intended", path)
	}
	return nil
}

// schedulingColumn reports columns whose value depends on request arrival
// order rather than engine behavior: the daemon bench's cacheHits counts how
// many identical concurrent submissions landed after the leader finished
// (cache hit) instead of during it (singleflight join) — a race the invariant
// engineRuns column already pins. Skipped entirely.
func schedulingColumn(path string) bool {
	return strings.HasPrefix(path, "serverBench[") && strings.HasSuffix(path, ".cacheHits")
}

// timingColumn reports whether the JSON path names a host-dependent timing
// measurement rather than a deterministic engine count.
func timingColumn(path string) bool {
	seg := path
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		seg = path[i+1:]
	}
	seg = strings.ToLower(seg)
	return strings.Contains(seg, "seconds") || strings.Contains(seg, "ms") ||
		strings.Contains(seg, "speedup")
}

// compare walks two decoded-JSON values, appending human-readable drift
// lines: timing columns past tol go to soft, everything else to hard.
func compare(path string, want, got interface{}, tol float64, hard, soft *[]string) {
	switch w := want.(type) {
	case map[string]interface{}:
		g, ok := got.(map[string]interface{})
		if !ok {
			*hard = append(*hard, fmt.Sprintf("%s: shape changed (was object)", path))
			return
		}
		keys := make(map[string]bool)
		for k := range w {
			keys[k] = true
		}
		for k := range g {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		// Spawned/Inline split branch totals by pool availability at the
		// instant of each fork — scheduling-dependent. Their sum (total
		// branches) is the deterministic quantity; check that instead.
		scheduling := map[string]bool{}
		if ws, ok1 := numField(w, "Spawned"); ok1 {
			if wi, ok2 := numField(w, "Inline"); ok2 {
				gs, ok3 := numField(g, "Spawned")
				gi, ok4 := numField(g, "Inline")
				if ok3 && ok4 {
					scheduling["Spawned"], scheduling["Inline"] = true, true
					if ws+wi != gs+gi {
						*hard = append(*hard, fmt.Sprintf("%s.Spawned+Inline: %v → %v", path, ws+wi, gs+gi))
					}
				}
			}
		}
		for _, k := range sorted {
			if scheduling[k] {
				continue
			}
			sub := k
			if path != "" {
				sub = path + "." + k
			}
			wv, wok := w[k]
			gv, gok := g[k]
			switch {
			case !gok:
				*hard = append(*hard, fmt.Sprintf("%s: column gone from measured run", sub))
			case !wok:
				// New column the snapshot predates — not drift; the next
				// snapshot regeneration picks it up.
			default:
				compare(sub, wv, gv, tol, hard, soft)
			}
		}
	case []interface{}:
		g, ok := got.([]interface{})
		if !ok || len(g) != len(w) {
			*hard = append(*hard, fmt.Sprintf("%s: row count %d → %d", path, len(w), len(g)))
			return
		}
		for i := range w {
			compare(fmt.Sprintf("%s[%d]", path, i), w[i], g[i], tol, hard, soft)
		}
	case float64:
		g, ok := got.(float64)
		if !ok {
			*hard = append(*hard, fmt.Sprintf("%s: shape changed (was number)", path))
			return
		}
		if schedulingColumn(path) {
			return
		}
		if timingColumn(path) {
			base := math.Max(math.Abs(w), 1e-9)
			if math.Abs(g-w)/base > tol {
				*soft = append(*soft, fmt.Sprintf("%s: %.4g → %.4g (%.0f%% drift)", path, w, g, math.Abs(g-w)/base*100))
			}
			return
		}
		if g != w {
			*hard = append(*hard, fmt.Sprintf("%s: %v → %v", path, w, g))
		}
	default:
		if !jsonEqual(want, got) {
			*hard = append(*hard, fmt.Sprintf("%s: %v → %v", path, want, got))
		}
	}
}

func numField(m map[string]interface{}, key string) (float64, bool) {
	v, ok := m[key].(float64)
	return v, ok
}

func jsonEqual(a, b interface{}) bool {
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return string(ja) == string(jb)
}
