// Command benchreport regenerates every table and figure of the paper's
// evaluation (Fig. 1/2, Tables II–VI, Box 1, the two case studies, and the
// design-choice ablations) and prints them, paper numbers alongside the
// measured ones. See EXPERIMENTS.md for the reading guide.
package main

import (
	"fmt"
	"os"

	"privacyscope/internal/bench"
)

func main() {
	out, err := bench.RunAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
