package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacyscope/internal/batch"
)

const batchSecureC = `
int mask_sum(int *secrets, int *output)
{
    output[0] = secrets[0] + secrets[1] + secrets[2];
    return 0;
}
`

const batchSecureEDL = `
enclave {
    trusted {
        public int mask_sum([in] int *secrets, [out] int *output);
    };
};
`

// batchHeavyC needs thousands of engine steps, so an interrupt lands
// mid-exploration instead of after a completed analysis.
const batchHeavyC = `
int heavy(int *secrets, int *output)
{
    int i = 0;
    int acc = 0;
    while (i < 2000) { acc = acc + i; i++; }
    output[0] = 7;
    return 0;
}
`

const batchHeavyEDL = `
enclave {
    trusted {
        public int heavy([in] int *secrets, [out] int *output);
    };
};
`

// writeBatchTree lays out a two-unit project: one leaking, one secure.
func writeBatchTree(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"proc.c":       testC,
		"proc.edl":     testEDL,
		"sub/mask.c":   batchSecureC,
		"sub/mask.edl": batchSecureEDL,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunBatchMode(t *testing.T) {
	dir := writeBatchTree(t)
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-dir", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d, want 2 (project has findings)", code)
	}
	text := out.String()
	for _, want := range []string{"2 units", "proc", "sub/mask", "verdict: findings"} {
		if !strings.Contains(text, want) {
			t.Errorf("batch report missing %q:\n%s", want, text)
		}
	}
}

func TestRunBatchJSON(t *testing.T) {
	dir := writeBatchTree(t)
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-dir", dir, "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	var env batch.ProjectEnvelope
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if env.Verdict != "findings" || env.Secure {
		t.Errorf("envelope verdict = %q secure = %v", env.Verdict, env.Secure)
	}
	if env.Stats.Units != 2 || env.Stats.Analyzed != 2 {
		t.Errorf("stats = %+v, want 2 units analyzed", env.Stats)
	}
	if len(env.Units) != 2 || env.Units[0].Name != "proc" || env.Units[1].Name != "sub/mask" {
		t.Errorf("units out of order or missing: %+v", env.Units)
	}
	if env.Units[1].Envelope == nil || env.Units[1].Verdict != "secure" {
		t.Errorf("secure unit not carried in full: %+v", env.Units[1])
	}
}

func TestRunBatchWarmRerun(t *testing.T) {
	dir := writeBatchTree(t)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	args := []string{"-dir", dir, "-cache-dir", cacheDir}

	var cold bytes.Buffer
	if _, err := run(context.Background(), args, &cold); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cold.String(), "[cached]") {
		t.Errorf("cold run rendered cached tags:\n%s", cold.String())
	}

	var warm bytes.Buffer
	code, err := run(context.Background(), args, &warm)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("warm exit code = %d, want 2", code)
	}
	if got := strings.Count(warm.String(), "[cached]"); got != 2 {
		t.Errorf("warm run rendered %d [cached] tags, want 2:\n%s", got, warm.String())
	}
	if !strings.Contains(warm.String(), "(2 cached, 0 analyzed, 0 errors)") {
		t.Errorf("warm trailer wrong:\n%s", warm.String())
	}
}

func TestRunBatchFlagValidation(t *testing.T) {
	dir := writeBatchTree(t)
	cPath := writeTemp(t, "e.c", testC)
	cases := [][]string{
		{"-dir", dir, "-c", cPath},
		{"-dir", dir, "-fn", "mask_sum"},
		{"-dir", t.TempDir()}, // no units
	}
	for _, args := range cases {
		var out bytes.Buffer
		code, err := run(context.Background(), args, &out)
		if err == nil || code != 1 {
			t.Errorf("run(%v) = %d, %v; want code 1 and an error", args, code, err)
		}
	}
}

// TestRunBatchInterruptFlushesMetrics is the regression pin for the
// SIGINT flush bug: a batch run cancelled mid-flight (the CLI's signal
// path) must still write -metrics-json before exiting. Before the fix the
// degraded paths returned without flushing and the snapshot was lost.
func TestRunBatchInterruptFlushesMetrics(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"heavy.c": batchHeavyC, "heavy.edl": batchHeavyEDL,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the "signal" arrives before exploration starts

	var out bytes.Buffer
	code, err := run(ctx, []string{"-dir", dir, "-metrics-json", metricsPath}, &out)
	if err != nil {
		t.Fatalf("interrupt must degrade, not fail: %v", err)
	}
	if code != 3 {
		t.Errorf("exit code = %d, want 3 (inconclusive)", code)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("interrupted batch run did not flush -metrics-json: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("flushed metrics are not valid JSON: %v", err)
	}
	if _, ok := snap["counters"]; !ok {
		t.Errorf("metrics snapshot missing counters: %s", data)
	}
}

// TestRunErrorStillFlushesMetrics extends the same pin to the module-error
// path: a run that fails outright still owes its telemetry.
func TestRunErrorStillFlushesMetrics(t *testing.T) {
	cPath := writeTemp(t, "bad.c", "int broken( {{{\n")
	edlPath := writeTemp(t, "e.edl", testEDL)
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")

	var out bytes.Buffer
	code, err := run(context.Background(),
		[]string{"-c", cPath, "-edl", edlPath, "-metrics-json", metricsPath}, &out)
	if err == nil || code != 1 {
		t.Fatalf("run = %d, %v; want code 1 and a parse error", code, err)
	}
	if _, serr := os.Stat(metricsPath); serr != nil {
		t.Fatalf("errored run did not flush -metrics-json: %v", serr)
	}
}
