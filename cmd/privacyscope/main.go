// Command privacyscope analyzes an SGX enclave module (C source + EDL
// interface file, optionally an XML rule file) for nonreversibility
// violations and prints the Box-1-style report.
//
// Usage:
//
//	privacyscope -c enclave.c -edl enclave.edl [-config rules.xml]
//	             [-fn name] [-loop-bound n] [-path-workers n] [-timeout d]
//	             [-no-witness] [-json] [-metrics-json metrics.json]
//	             [-verbose] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	privacyscope -version
//
// Exit status encodes the module verdict: 0 when the module is proved
// secure with full coverage, 2 when violations were found, 3 when the
// analysis was inconclusive (a timeout or budget cut left paths unexplored
// without finding a leak — see docs/ROBUSTNESS.md), and 1 on usage errors,
// module-level analysis errors, or a failed (panicked/errored) entry point
// that found nothing.
//
// SIGINT/SIGTERM cancel the analysis context instead of killing the
// process: the run degrades fail-soft, prints the partial-coverage report
// (Inconclusive when nothing was found on the explored paths) and exits
// with the verdict's code. A second signal terminates immediately.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"privacyscope"
)

func main() {
	// First signal: cancel the analysis context so the run degrades to a
	// partial-coverage report instead of dying mid-write. A second signal
	// falls back to the default handler (immediate termination).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privacyscope:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(ctx context.Context, args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("privacyscope", flag.ContinueOnError)
	var (
		cPath      = fs.String("c", "", "enclave C source file (required)")
		edlPath    = fs.String("edl", "", "EDL interface file (required)")
		configPath = fs.String("config", "", "XML rule file (optional)")
		fnName     = fs.String("fn", "", "analyze only this ECALL")
		loopBound  = fs.Int("loop-bound", 0, "symbolic loop unrolling bound (0 = default)")
		timeout    = fs.Duration("timeout", 0, "wall-clock budget for the whole module, e.g. 30s (0 = none); expiry degrades coverage instead of failing")
		noWitness  = fs.Bool("no-witness", false, "skip concrete witness replay")
		noImplicit = fs.Bool("no-implicit", false, "disable implicit-leak detection")
		timing     = fs.Bool("timing", false, "enable the timing-channel extension (§VIII-A)")
		prob       = fs.Bool("probabilistic", false, "enable the probabilistic-channel extension (§VIII-A)")
		conserv    = fs.Bool("conservative-externs", false, "treat unmodeled extern results as secrets")
		pathWork   = fs.Int("path-workers", 0, "goroutines exploring each ECALL's paths concurrently (<=1 = sequential; results are deterministic)")
		asJSON     = fs.Bool("json", false, "emit findings as JSON")
		metricsOut = fs.String("metrics-json", "", "write a metrics snapshot (counters, spans, dists) to this file")
		verbose    = fs.Bool("verbose", false, "stream structured JSON telemetry events to stderr")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file")
		version    = fs.Bool("version", false, "print build info (engine version, fingerprint) and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *version {
		fmt.Fprintln(out, privacyscope.Build())
		return 0, nil
	}
	if *cPath == "" || *edlPath == "" {
		fs.Usage()
		return 1, fmt.Errorf("-c and -edl are required")
	}
	cSrc, err := os.ReadFile(*cPath)
	if err != nil {
		return 1, err
	}
	edlSrc, err := os.ReadFile(*edlPath)
	if err != nil {
		return 1, err
	}
	var opts []privacyscope.Option
	if *configPath != "" {
		cfg, err := os.ReadFile(*configPath)
		if err != nil {
			return 1, err
		}
		opts = append(opts, privacyscope.WithConfigXML(cfg))
	}
	if *loopBound > 0 {
		opts = append(opts, privacyscope.WithLoopBound(*loopBound))
	}
	if *noWitness {
		opts = append(opts, privacyscope.WithoutWitnessReplay())
	}
	if *noImplicit {
		opts = append(opts, privacyscope.WithoutImplicitCheck())
	}
	if *timing {
		opts = append(opts, privacyscope.WithTimingCheck())
	}
	if *prob {
		opts = append(opts, privacyscope.WithProbabilisticCheck())
	}
	if *conserv {
		opts = append(opts, privacyscope.WithConservativeExterns())
	}
	if *pathWork > 1 {
		opts = append(opts, privacyscope.WithPathWorkers(*pathWork))
	}

	// Telemetry: one Metrics observer serves -json, -metrics-json and
	// -verbose; absent all three the analysis runs with the no-op observer.
	var metrics *privacyscope.Metrics
	if *asJSON || *metricsOut != "" || *verbose {
		var mopts []privacyscope.MetricsOption
		if *verbose {
			mopts = append(mopts, privacyscope.WithEventWriter(os.Stderr))
		}
		metrics = privacyscope.NewMetrics(mopts...)
		opts = append(opts, privacyscope.WithObserver(metrics))
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return 1, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return 1, err
		}
		defer pprof.StopCPUProfile()
	}

	if ctx == nil {
		ctx = context.Background()
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	rep, err := privacyscope.AnalyzeEnclaveContext(ctx, string(cSrc), string(edlSrc), opts...)
	elapsed := time.Since(start)
	if err != nil {
		return 1, err
	}
	if *fnName != "" {
		var filtered []*privacyscope.Report
		for _, r := range rep.Reports {
			if r.Function == *fnName {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			return 1, fmt.Errorf("no public ECALL named %s", *fnName)
		}
		rep.Reports = filtered
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return 1, err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return 1, err
		}
		if err := f.Close(); err != nil {
			return 1, err
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return 1, err
		}
		if err := metrics.WriteJSON(f); err != nil {
			f.Close()
			return 1, err
		}
		if err := f.Close(); err != nil {
			return 1, err
		}
	}

	if *asJSON {
		env := privacyscope.NewEnvelope(rep, elapsed, metrics)
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(env); err != nil {
			return 1, err
		}
	} else {
		fmt.Fprint(out, rep.Render())
	}
	switch rep.Verdict() {
	case privacyscope.VerdictSecure:
		return 0, nil
	case privacyscope.VerdictFindings:
		return 2, nil
	case privacyscope.VerdictError:
		return 1, nil
	default: // VerdictInconclusive
		return 3, nil
	}
}
