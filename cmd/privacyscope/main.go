// Command privacyscope analyzes an SGX enclave module (C source + EDL
// interface file, optionally an XML rule file) for nonreversibility
// violations and prints the Box-1-style report.
//
// Usage:
//
//	privacyscope -c enclave.c -edl enclave.edl [-config rules.xml]
//	             [-fn name] [-detectors list] [-loop-bound n]
//	             [-path-workers n] [-timeout d]
//	             [-no-witness] [-json] [-metrics-json metrics.json]
//	             [-verbose] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	privacyscope -dir project/ [-cache-dir .pscache] [-jobs n] [...]
//	privacyscope -version
//
// With -dir, the CLI runs in batch mode: it discovers every analysis unit
// under the tree (each *.c with a same-basename *.edl sibling, plus an
// optional *.xml rule file), analyzes them across a bounded worker pool,
// and prints one project report with an aggregate verdict. -cache-dir
// enables the persistent result cache, making reruns incremental: only
// changed units re-run the engine. See docs/BATCH.md.
//
// Exit status encodes the module (or project) verdict: 0 when proved
// secure with full coverage, 2 when violations were found, 3 when the
// analysis was inconclusive (a timeout or budget cut left paths unexplored
// without finding a leak — see docs/ROBUSTNESS.md), and 1 on usage errors,
// module-level analysis errors, or a failed (panicked/errored) entry point
// that found nothing.
//
// SIGINT/SIGTERM cancel the analysis context instead of killing the
// process: the run degrades fail-soft, prints the partial-coverage report
// (Inconclusive when nothing was found on the explored paths), flushes
// -metrics-json, and exits with the verdict's code. A second signal
// terminates immediately.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"privacyscope"
	"privacyscope/internal/batch"
	"privacyscope/internal/diskcache"
)

func main() {
	// First signal: cancel the analysis context so the run degrades to a
	// partial-coverage report instead of dying mid-write. A second signal
	// falls back to the default handler (immediate termination).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privacyscope:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(ctx context.Context, args []string, out io.Writer) (code int, err error) {
	fs := flag.NewFlagSet("privacyscope", flag.ContinueOnError)
	var (
		cPath      = fs.String("c", "", "enclave C source file (single-module mode)")
		edlPath    = fs.String("edl", "", "EDL interface file (single-module mode)")
		dirRoot    = fs.String("dir", "", "batch mode: analyze every (c, edl[, xml]) unit under this tree")
		cacheDir   = fs.String("cache-dir", "", "batch mode: persistent result-cache directory (reruns only re-analyze changed units)")
		cacheMax   = fs.Int64("cache-max-bytes", diskcache.DefaultMaxBytes, "size cap for -cache-dir; oldest entries evict past it")
		jobs       = fs.Int("jobs", 0, "batch mode: units analyzed concurrently (0 = GOMAXPROCS, capped at 8)")
		configPath = fs.String("config", "", "XML rule file (batch mode: default for units without their own)")
		fnName     = fs.String("fn", "", "analyze only this ECALL (single-module mode)")
		loopBound  = fs.Int("loop-bound", 0, "symbolic loop unrolling bound (0 = default)")
		timeout    = fs.Duration("timeout", 0, "wall-clock budget for the whole run, e.g. 30s (0 = none); expiry degrades coverage instead of failing")
		noWitness  = fs.Bool("no-witness", false, "skip concrete witness replay")
		noImplicit = fs.Bool("no-implicit", false, "disable implicit-leak detection")
		timing     = fs.Bool("timing", false, "enable the timing-channel extension (§VIII-A)")
		prob       = fs.Bool("probabilistic", false, "enable the probabilistic-channel extension (§VIII-A)")
		conserv    = fs.Bool("conservative-externs", false, "treat unmodeled extern results as secrets")
		intern     = fs.Bool("intern", true, "hash-cons symbolic expressions (canonical nodes, identity-keyed solver caches); -intern=false disables, findings are byte-identical either way")
		summaries  = fs.Bool("summaries", false, "resolve calls through compositional function summaries instead of re-inlining (byte-identical results; shared helpers explored once); with -cache-dir, summaries persist per function")
		detectors  = fs.String("detectors", "", "comma-separated detector selection replacing the defaults; 'default' and 'all' expand in place (e.g. default,ocall-pointer) — see docs/DETECTORS.md")
		pathWork   = fs.Int("path-workers", 0, "goroutines exploring each ECALL's paths concurrently (<=1 = sequential; results are deterministic)")
		asJSON     = fs.Bool("json", false, "emit findings as JSON")
		traceOut   = fs.String("trace-out", "", "record the run and write a Chrome trace-event file (load in chrome://tracing or Perfetto); -json also embeds the span tree")
		metricsOut = fs.String("metrics-json", "", "write a metrics snapshot (counters, spans, dists) to this file")
		verbose    = fs.Bool("verbose", false, "stream structured JSON telemetry events to stderr")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file")
		version    = fs.Bool("version", false, "print build info (engine version, fingerprint) and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *version {
		fmt.Fprintln(out, privacyscope.Build())
		return 0, nil
	}
	if *dirRoot == "" && (*cPath == "" || *edlPath == "") {
		fs.Usage()
		return 1, fmt.Errorf("either -dir (batch) or both -c and -edl (single module) are required")
	}
	if *dirRoot != "" && (*cPath != "" || *edlPath != "" || *fnName != "") {
		return 1, fmt.Errorf("-dir is exclusive with -c/-edl/-fn")
	}

	aopts := privacyscope.AnalysisOptions{
		LoopBound:           *loopBound,
		PathWorkers:         *pathWork,
		NoWitness:           *noWitness,
		NoImplicit:          *noImplicit,
		Timing:              *timing,
		Probabilistic:       *prob,
		ConservativeExterns: *conserv,
		Summaries:           *summaries,
		NoIntern:            !*intern,
	}
	if *detectors != "" {
		aopts.Detectors = strings.Split(*detectors, ",")
	}

	// Telemetry: one Metrics observer serves -json, -metrics-json and
	// -verbose; absent all three the analysis runs with the no-op observer.
	var metrics *privacyscope.Metrics
	if *asJSON || *metricsOut != "" || *verbose {
		var mopts []privacyscope.MetricsOption
		if *verbose {
			mopts = append(mopts, privacyscope.WithEventWriter(os.Stderr))
		}
		metrics = privacyscope.NewMetrics(mopts...)
	}
	// -trace-out adds a per-run Tracer next to the Metrics (obs.Multi); the
	// analysis itself never knows whether it is being traced.
	var tracer *privacyscope.Tracer
	if *traceOut != "" {
		tracer = privacyscope.NewTracer()
	}
	// Flush the trace on every exit path, like -metrics-json below: a run
	// interrupted mid-batch still owes the caller its partial timeline.
	defer func() {
		if tracer == nil {
			return
		}
		if ferr := writeTrace(*traceOut, tracer); ferr != nil && err == nil {
			code, err = 1, ferr
		}
	}()
	// Flush -metrics-json on EVERY exit path from here on — the degraded
	// ones included. A run interrupted by SIGINT mid-batch, or failed by a
	// module-level error, still owes the caller whatever telemetry it
	// gathered; losing the snapshot on the sad paths was a real bug.
	defer func() {
		if *metricsOut == "" || metrics == nil {
			return
		}
		if ferr := writeMetrics(*metricsOut, metrics); ferr != nil && err == nil {
			code, err = 1, ferr
		}
	}()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return 1, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return 1, err
		}
		defer pprof.StopCPUProfile()
	}

	if ctx == nil {
		ctx = context.Background()
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *dirRoot != "" {
		code, err = runBatch(ctx, batchArgs{
			root:     *dirRoot,
			cacheDir: *cacheDir,
			cacheMax: *cacheMax,
			jobs:     *jobs,
			config:   *configPath,
			options:  aopts,
			asJSON:   *asJSON,
			metrics:  metrics,
			tracer:   tracer,
		}, out)
	} else {
		code, err = runSingle(ctx, singleArgs{
			cPath:   *cPath,
			edlPath: *edlPath,
			config:  *configPath,
			fnName:  *fnName,
			options: aopts,
			asJSON:  *asJSON,
			metrics: metrics,
			tracer:  tracer,
		}, out)
	}
	if err != nil {
		return code, err
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return 1, err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return 1, err
		}
		if err := f.Close(); err != nil {
			return 1, err
		}
	}
	return code, nil
}

// writeTrace dumps the recorded timeline as a Chrome trace-event file;
// shared by all exit paths via the defer in run.
func writeTrace(path string, tracer *privacyscope.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps the snapshot; shared by all exit paths via the defer
// in run.
func writeMetrics(path string, metrics *privacyscope.Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := metrics.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exitCode maps the aggregate verdict onto the CLI's exit-status contract.
func exitCode(v privacyscope.Verdict) int {
	switch v {
	case privacyscope.VerdictSecure:
		return 0
	case privacyscope.VerdictFindings:
		return 2
	case privacyscope.VerdictError:
		return 1
	default: // VerdictInconclusive
		return 3
	}
}

type singleArgs struct {
	cPath, edlPath, config, fnName string
	options                        privacyscope.AnalysisOptions
	asJSON                         bool
	metrics                        *privacyscope.Metrics
	tracer                         *privacyscope.Tracer
}

func runSingle(ctx context.Context, a singleArgs, out io.Writer) (int, error) {
	cSrc, err := os.ReadFile(a.cPath)
	if err != nil {
		return 1, err
	}
	edlSrc, err := os.ReadFile(a.edlPath)
	if err != nil {
		return 1, err
	}
	opts := a.options.FacadeOptions()
	if a.config != "" {
		cfg, err := os.ReadFile(a.config)
		if err != nil {
			return 1, err
		}
		opts = append(opts, privacyscope.WithConfigXML(cfg))
	}
	var obList []privacyscope.Observer
	if a.metrics != nil {
		obList = append(obList, a.metrics)
	}
	if a.tracer != nil {
		obList = append(obList, a.tracer)
	}
	if len(obList) > 0 {
		opts = append(opts, privacyscope.WithObserver(privacyscope.MultiObserver(obList...)))
	}
	start := time.Now()
	rep, err := privacyscope.AnalyzeEnclaveContext(ctx, string(cSrc), string(edlSrc), opts...)
	elapsed := time.Since(start)
	if err != nil {
		return 1, err
	}
	if a.fnName != "" {
		var filtered []*privacyscope.Report
		for _, r := range rep.Reports {
			if r.Function == a.fnName {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			return 1, fmt.Errorf("no public ECALL named %s", a.fnName)
		}
		rep.Reports = filtered
	}

	if a.asJSON {
		env := privacyscope.NewEnvelope(rep, elapsed, a.metrics)
		if a.tracer != nil {
			env.TraceID = a.tracer.TraceID()
			env.Trace = a.tracer.Snapshot()
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(env); err != nil {
			return 1, err
		}
	} else {
		fmt.Fprint(out, rep.Render())
	}
	return exitCode(rep.Verdict()), nil
}

type batchArgs struct {
	root, cacheDir, config string
	cacheMax               int64
	jobs                   int
	options                privacyscope.AnalysisOptions
	asJSON                 bool
	metrics                *privacyscope.Metrics
	tracer                 *privacyscope.Tracer
}

func runBatch(ctx context.Context, a batchArgs, out io.Writer) (int, error) {
	units, err := batch.Discover(a.root)
	if err != nil {
		return 1, err
	}
	if len(units) == 0 {
		return 1, fmt.Errorf("no analysis units under %s (need *.c with a same-basename *.edl)", a.root)
	}
	var defaultRules string
	if a.config != "" {
		rules, err := os.ReadFile(a.config)
		if err != nil {
			return 1, err
		}
		defaultRules = string(rules)
	}
	var cache *diskcache.Cache
	if a.cacheDir != "" {
		var ob privacyscope.Observer
		if a.metrics != nil {
			ob = a.metrics
		}
		cache, err = diskcache.Open(diskcache.Config{
			Dir: a.cacheDir, MaxBytes: a.cacheMax, Observer: ob,
		})
		if err != nil {
			return 1, err
		}
	}
	cfg := batch.Config{
		Jobs:         a.jobs,
		Cache:        cache,
		Options:      a.options,
		DefaultRules: defaultRules,
		Tracer:       a.tracer,
	}
	if a.metrics != nil {
		cfg.Observer = a.metrics
	}
	rep := batch.Run(ctx, a.root, units, cfg)

	if a.asJSON {
		env := rep.Envelope(a.metrics)
		if a.tracer != nil {
			env.TraceID = a.tracer.TraceID()
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(env); err != nil {
			return 1, err
		}
	} else {
		fmt.Fprint(out, rep.Render())
	}
	return exitCode(rep.Verdict()), nil
}
