// Command privacyscope analyzes an SGX enclave module (C source + EDL
// interface file, optionally an XML rule file) for nonreversibility
// violations and prints the Box-1-style report.
//
// Usage:
//
//	privacyscope -c enclave.c -edl enclave.edl [-config rules.xml]
//	             [-fn name] [-loop-bound n] [-no-witness] [-json]
//
// Exit status is 0 when the module is secure, 2 when violations were
// found, and 1 on usage or analysis errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"privacyscope"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privacyscope:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

type jsonFinding struct {
	Function string `json:"function"`
	Kind     string `json:"kind"`
	Sink     string `json:"sink"`
	Where    string `json:"where"`
	Secret   string `json:"secret"`
	Message  string `json:"message"`
	Verified bool   `json:"witnessVerified"`
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("privacyscope", flag.ContinueOnError)
	var (
		cPath      = fs.String("c", "", "enclave C source file (required)")
		edlPath    = fs.String("edl", "", "EDL interface file (required)")
		configPath = fs.String("config", "", "XML rule file (optional)")
		fnName     = fs.String("fn", "", "analyze only this ECALL")
		loopBound  = fs.Int("loop-bound", 0, "symbolic loop unrolling bound (0 = default)")
		noWitness  = fs.Bool("no-witness", false, "skip concrete witness replay")
		noImplicit = fs.Bool("no-implicit", false, "disable implicit-leak detection")
		timing     = fs.Bool("timing", false, "enable the timing-channel extension (§VIII-A)")
		prob       = fs.Bool("probabilistic", false, "enable the probabilistic-channel extension (§VIII-A)")
		conserv    = fs.Bool("conservative-externs", false, "treat unmodeled extern results as secrets")
		asJSON     = fs.Bool("json", false, "emit findings as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *cPath == "" || *edlPath == "" {
		fs.Usage()
		return 1, fmt.Errorf("-c and -edl are required")
	}
	cSrc, err := os.ReadFile(*cPath)
	if err != nil {
		return 1, err
	}
	edlSrc, err := os.ReadFile(*edlPath)
	if err != nil {
		return 1, err
	}
	var opts []privacyscope.Option
	if *configPath != "" {
		cfg, err := os.ReadFile(*configPath)
		if err != nil {
			return 1, err
		}
		opts = append(opts, privacyscope.WithConfigXML(cfg))
	}
	if *loopBound > 0 {
		opts = append(opts, privacyscope.WithLoopBound(*loopBound))
	}
	if *noWitness {
		opts = append(opts, privacyscope.WithoutWitnessReplay())
	}
	if *noImplicit {
		opts = append(opts, privacyscope.WithoutImplicitCheck())
	}
	if *timing {
		opts = append(opts, privacyscope.WithTimingCheck())
	}
	if *prob {
		opts = append(opts, privacyscope.WithProbabilisticCheck())
	}
	if *conserv {
		opts = append(opts, privacyscope.WithConservativeExterns())
	}

	rep, err := privacyscope.AnalyzeEnclave(string(cSrc), string(edlSrc), opts...)
	if err != nil {
		return 1, err
	}
	if *fnName != "" {
		var filtered []*privacyscope.Report
		for _, r := range rep.Reports {
			if r.Function == *fnName {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			return 1, fmt.Errorf("no public ECALL named %s", *fnName)
		}
		rep.Reports = filtered
	}

	if *asJSON {
		var all []jsonFinding
		for _, r := range rep.Reports {
			for _, f := range r.Findings {
				jf := jsonFinding{
					Function: r.Function,
					Kind:     f.Kind.String(),
					Sink:     f.Sink.String(),
					Where:    f.Where,
					Secret:   f.Secret,
					Message:  f.Message,
				}
				if f.Witness != nil {
					jf.Verified = f.Witness.Verified
				}
				all = append(all, jf)
			}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			return 1, err
		}
	} else {
		fmt.Fprint(out, rep.Render())
	}
	if rep.Secure() {
		return 0, nil
	}
	return 2, nil
}
