package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testC = `
int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
`

const testEDL = `
enclave {
    trusted {
        public int enclave_process_data([in] char *secrets, [out] char *output);
    };
};
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReportsViolations(t *testing.T) {
	cPath := writeTemp(t, "e.c", testC)
	edlPath := writeTemp(t, "e.edl", testEDL)
	var out bytes.Buffer
	code, err := run([]string{"-c", cPath, "-edl", edlPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d, want 2 (violations)", code)
	}
	text := out.String()
	for _, want := range []string{"explicit", "implicit", "recovery", "secrets[0]"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	cPath := writeTemp(t, "e.c", testC)
	edlPath := writeTemp(t, "e.edl", testEDL)
	var out bytes.Buffer
	code, err := run([]string{"-c", cPath, "-edl", edlPath, "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d", code)
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %+v", findings)
	}
	var verified bool
	for _, f := range findings {
		if f.Function != "enclave_process_data" {
			t.Errorf("function = %q", f.Function)
		}
		if f.Verified {
			verified = true
		}
	}
	if !verified {
		t.Error("no witness-verified finding in JSON")
	}
}

func TestRunSecureExitsZero(t *testing.T) {
	cPath := writeTemp(t, "e.c", `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + secrets[1];
    return 0;
}`)
	edlPath := writeTemp(t, "e.edl",
		"enclave { trusted { public int f([in] int *secrets, [out] int *output); }; };")
	var out bytes.Buffer
	code, err := run([]string{"-c", cPath, "-edl", edlPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "no nonreversibility violations") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunWithConfig(t *testing.T) {
	cPath := writeTemp(t, "e.c", testC)
	edlPath := writeTemp(t, "e.edl", testEDL)
	cfgPath := writeTemp(t, "rules.xml", `
<privacyscope>
  <function name="enclave_process_data">
    <public param="secrets"/>
  </function>
</privacyscope>`)
	var out bytes.Buffer
	code, err := run([]string{"-c", cPath, "-edl", edlPath, "-config", cfgPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0 (secrets declassified by config)", code)
	}
}

func TestRunFlagsAndErrors(t *testing.T) {
	cPath := writeTemp(t, "e.c", testC)
	edlPath := writeTemp(t, "e.edl", testEDL)

	var out bytes.Buffer
	if _, err := run([]string{"-c", cPath}, &out); err == nil {
		t.Error("missing -edl must error")
	}
	if _, err := run([]string{"-c", "nope.c", "-edl", edlPath}, &out); err == nil {
		t.Error("missing C file must error")
	}
	if _, err := run([]string{"-c", cPath, "-edl", "nope.edl"}, &out); err == nil {
		t.Error("missing EDL file must error")
	}
	if _, err := run([]string{"-c", cPath, "-edl", edlPath, "-fn", "missing"}, &out); err == nil {
		t.Error("unknown -fn must error")
	}
	if _, err := run([]string{"-c", cPath, "-edl", edlPath, "-config", "nope.xml"}, &out); err == nil {
		t.Error("missing config must error")
	}
	// -no-implicit drops the implicit finding.
	out.Reset()
	code, err := run([]string{"-c", cPath, "-edl", edlPath, "-no-implicit", "-json"}, &out)
	if err != nil || code != 2 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Kind != "explicit" {
		t.Errorf("findings = %+v", findings)
	}
	// -no-witness skips replay.
	out.Reset()
	if _, err := run([]string{"-c", cPath, "-edl", edlPath, "-no-witness", "-loop-bound", "4", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	findings = nil
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Verified {
			t.Error("witness built despite -no-witness")
		}
	}
	// -fn filter narrows to one function.
	out.Reset()
	code, err = run([]string{"-c", cPath, "-edl", edlPath, "-fn", "enclave_process_data"}, &out)
	if err != nil || code != 2 {
		t.Errorf("code=%d err=%v", code, err)
	}
}

func TestRunTimingFlag(t *testing.T) {
	cPath := writeTemp(t, "e.c", `
int f(int *secrets, int *output) {
    int acc = 0;
    if (secrets[0] > 0) {
        for (int i = 0; i < 8; i++) { acc += i; }
    }
    output[0] = 0;
    return 0;
}`)
	edlPath := writeTemp(t, "e.edl",
		"enclave { trusted { public int f([in] int *secrets, [out] int *output); }; };")
	var out bytes.Buffer
	code, err := run([]string{"-c", cPath, "-edl", edlPath, "-timing", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d", code)
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatal(err)
	}
	var timing bool
	for _, f := range findings {
		if f.Kind == "timing-channel" {
			timing = true
		}
	}
	if !timing {
		t.Errorf("no timing finding: %+v", findings)
	}
}

func TestRunProbabilisticFlag(t *testing.T) {
	cPath := writeTemp(t, "e.c", `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + rand();
    return 0;
}`)
	edlPath := writeTemp(t, "e.edl",
		"enclave { trusted { public int f([in] int *secrets, [out] int *output); }; };")
	var out bytes.Buffer
	// Without the flag: secure.
	code, err := run([]string{"-c", cPath, "-edl", edlPath}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, out.String())
	}
	// With it: probabilistic finding.
	out.Reset()
	code, err = run([]string{"-c", cPath, "-edl", edlPath, "-probabilistic", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Kind != "probabilistic-channel" {
		t.Errorf("findings = %+v", findings)
	}
}
