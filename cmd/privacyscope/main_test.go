package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacyscope"
	"privacyscope/internal/mlsuite"
)

const testC = `
int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
`

const testEDL = `
enclave {
    trusted {
        public int enclave_process_data([in] char *secrets, [out] char *output);
    };
};
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReportsViolations(t *testing.T) {
	cPath := writeTemp(t, "e.c", testC)
	edlPath := writeTemp(t, "e.edl", testEDL)
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d, want 2 (violations)", code)
	}
	text := out.String()
	for _, want := range []string{"explicit", "implicit", "recovery", "secrets[0]"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	cPath := writeTemp(t, "e.c", testC)
	edlPath := writeTemp(t, "e.edl", testEDL)
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d", code)
	}
	var env privacyscope.Envelope
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(env.Findings) != 2 {
		t.Fatalf("findings = %+v", env.Findings)
	}
	var verified bool
	for _, f := range env.Findings {
		if f.Function != "enclave_process_data" {
			t.Errorf("function = %q", f.Function)
		}
		if f.Verified {
			verified = true
		}
	}
	if !verified {
		t.Error("no witness-verified finding in JSON")
	}
	if env.Secure {
		t.Error("secure = true despite findings")
	}
	if env.Paths == 0 || env.States == 0 {
		t.Errorf("envelope paths=%d states=%d, want non-zero", env.Paths, env.States)
	}
	if env.DurationMs <= 0 {
		t.Errorf("durationMs = %v, want > 0", env.DurationMs)
	}
	if env.Metrics == nil {
		t.Fatal("envelope missing metrics snapshot")
	}
	if env.Metrics.Counters["symexec.paths.completed"] == 0 {
		t.Errorf("metrics counters = %+v, want non-zero symexec.paths.completed",
			env.Metrics.Counters)
	}
}

func TestRunSecureExitsZero(t *testing.T) {
	cPath := writeTemp(t, "e.c", `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + secrets[1];
    return 0;
}`)
	edlPath := writeTemp(t, "e.edl",
		"enclave { trusted { public int f([in] int *secrets, [out] int *output); }; };")
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "no nonreversibility violations") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunWithConfig(t *testing.T) {
	cPath := writeTemp(t, "e.c", testC)
	edlPath := writeTemp(t, "e.edl", testEDL)
	cfgPath := writeTemp(t, "rules.xml", `
<privacyscope>
  <function name="enclave_process_data">
    <public param="secrets"/>
  </function>
</privacyscope>`)
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-config", cfgPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0 (secrets declassified by config)", code)
	}
}

func TestRunFlagsAndErrors(t *testing.T) {
	cPath := writeTemp(t, "e.c", testC)
	edlPath := writeTemp(t, "e.edl", testEDL)

	var out bytes.Buffer
	if _, err := run(context.Background(), []string{"-c", cPath}, &out); err == nil {
		t.Error("missing -edl must error")
	}
	if _, err := run(context.Background(), []string{"-c", "nope.c", "-edl", edlPath}, &out); err == nil {
		t.Error("missing C file must error")
	}
	if _, err := run(context.Background(), []string{"-c", cPath, "-edl", "nope.edl"}, &out); err == nil {
		t.Error("missing EDL file must error")
	}
	if _, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-fn", "missing"}, &out); err == nil {
		t.Error("unknown -fn must error")
	}
	if _, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-config", "nope.xml"}, &out); err == nil {
		t.Error("missing config must error")
	}
	// -no-implicit drops the implicit finding.
	out.Reset()
	code, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-no-implicit", "-json"}, &out)
	if err != nil || code != 2 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	var env privacyscope.Envelope
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Findings) != 1 || env.Findings[0].Kind != "explicit" {
		t.Errorf("findings = %+v", env.Findings)
	}
	// -no-witness skips replay.
	out.Reset()
	if _, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-no-witness", "-loop-bound", "4", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	env = privacyscope.Envelope{}
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	for _, f := range env.Findings {
		if f.Verified {
			t.Error("witness built despite -no-witness")
		}
	}
	// -fn filter narrows to one function.
	out.Reset()
	code, err = run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-fn", "enclave_process_data"}, &out)
	if err != nil || code != 2 {
		t.Errorf("code=%d err=%v", code, err)
	}
}

func TestRunTimingFlag(t *testing.T) {
	cPath := writeTemp(t, "e.c", `
int f(int *secrets, int *output) {
    int acc = 0;
    if (secrets[0] > 0) {
        for (int i = 0; i < 8; i++) { acc += i; }
    }
    output[0] = 0;
    return 0;
}`)
	edlPath := writeTemp(t, "e.edl",
		"enclave { trusted { public int f([in] int *secrets, [out] int *output); }; };")
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-timing", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d", code)
	}
	var env privacyscope.Envelope
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	var timing bool
	for _, f := range env.Findings {
		if f.Kind == "timing-channel" {
			timing = true
		}
	}
	if !timing {
		t.Errorf("no timing finding: %+v", env.Findings)
	}
}

func TestRunProbabilisticFlag(t *testing.T) {
	cPath := writeTemp(t, "e.c", `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + rand();
    return 0;
}`)
	edlPath := writeTemp(t, "e.edl",
		"enclave { trusted { public int f([in] int *secrets, [out] int *output); }; };")
	var out bytes.Buffer
	// Without the flag: secure.
	code, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, out.String())
	}
	// With it: probabilistic finding.
	out.Reset()
	code, err = run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-probabilistic", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	var env privacyscope.Envelope
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Findings) != 1 || env.Findings[0].Kind != "probabilistic-channel" {
		t.Errorf("findings = %+v", env.Findings)
	}
}

// TestRunMetricsJSON drives the full Recommender case study and checks the
// -metrics-json snapshot: per-phase spans and non-zero engine counters.
func TestRunMetricsJSON(t *testing.T) {
	cPath := writeTemp(t, "rec.c", mlsuite.RecommenderC)
	edlPath := writeTemp(t, "rec.edl", mlsuite.RecommenderEDL)
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-metrics-json", metricsPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d, want 2 (Recommender leaks)", code)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Spans    map[string]struct {
			Count      int64 `json:"count"`
			TotalNanos int64 `json:"totalNanos"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v\n%s", err, data)
	}
	for _, span := range []string{"parse", "check", "check/symexec", "check/explicit", "check/implicit", "check/witness"} {
		s, ok := snap.Spans[span]
		if !ok || s.Count == 0 {
			t.Errorf("span %q missing or empty (spans: %v)", span, snap.Spans)
		}
	}
	for _, counter := range []string{
		"symexec.paths.completed", "symexec.forks", "symexec.steps",
		"symexec.states", "solver.queries", "core.witness.replays",
	} {
		if snap.Counters[counter] == 0 {
			t.Errorf("counter %q is zero", counter)
		}
	}
}

// TestRunVerboseStreamsEvents checks that -verbose emits JSON event lines on
// stderr without corrupting stdout.
func TestRunVerboseStreamsEvents(t *testing.T) {
	cPath := writeTemp(t, "e.c", testC)
	edlPath := writeTemp(t, "e.edl", testEDL)

	// -verbose writes to os.Stderr; capture it via a pipe.
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	var out bytes.Buffer
	code, runErr := run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-verbose", "-json"}, &out)
	w.Close()
	os.Stderr = old
	captured, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if code != 2 {
		t.Errorf("exit code = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(string(captured)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no event lines on stderr")
	}
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event line is not JSON: %v\n%s", err, line)
		}
		if ev["kind"] == nil || ev["name"] == nil {
			t.Errorf("event missing kind/name: %s", line)
		}
	}
	var env privacyscope.Envelope
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatalf("stdout corrupted by -verbose: %v", err)
	}
}

// branchySecureC has 16 paths with identical observables: secure under full
// exploration, inconclusive under a tight budget or timeout.
const branchySecureC = `
int branchy(char *secrets, char *output) {
    int acc = 0;
    if (secrets[0] > 0) acc = acc + 1; else acc = acc - 1;
    if (secrets[1] > 0) acc = acc + 1; else acc = acc - 1;
    if (secrets[2] > 0) acc = acc + 1; else acc = acc - 1;
    if (secrets[3] > 0) acc = acc + 1; else acc = acc - 1;
    output[0] = 5;
    return 0;
}
`

const branchySecureEDL = `
enclave {
    trusted {
        public int branchy([in] char *secrets, [out] char *output);
    };
};
`

// TestRunInconclusiveExitCode: a truncated clean run exits 3, not 0, and
// the JSON envelope carries the verdict and per-function coverage.
func TestRunInconclusiveExitCode(t *testing.T) {
	cPath := writeTemp(t, "e.c", branchySecureC)
	edlPath := writeTemp(t, "e.edl", branchySecureEDL)

	// Full exploration: secure, exit 0, and the envelope says so.
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-json"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	var env privacyscope.Envelope
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Verdict != "secure" || !env.Secure {
		t.Errorf("verdict=%q secure=%v, want secure/true", env.Verdict, env.Secure)
	}
	if len(env.Functions) != 1 || env.Functions[0].Coverage.Truncated {
		t.Errorf("functions = %+v, want one fully-covered entry", env.Functions)
	}

	// Immediate timeout: degraded, exit 3, never 0.
	out.Reset()
	code, err = run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-timeout", "1ns", "-json"}, &out)
	if err != nil {
		t.Fatalf("timeout must degrade, not fail: %v", err)
	}
	if code != 3 {
		t.Errorf("exit code = %d, want 3 (inconclusive)", code)
	}
	env = privacyscope.Envelope{}
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Verdict != "inconclusive" || env.Secure {
		t.Errorf("verdict=%q secure=%v, want inconclusive/false", env.Verdict, env.Secure)
	}
	f := env.Functions[0]
	if f.Verdict != "inconclusive" || !f.Coverage.Truncated || f.Coverage.Reason == "" {
		t.Errorf("function entry = %+v, want truncated coverage with a reason", f)
	}

	// Human-readable mode surfaces the partial coverage too.
	out.Reset()
	code, err = run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-timeout", "1ns"}, &out)
	if err != nil || code != 3 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	text := out.String()
	if !strings.Contains(text, "INCONCLUSIVE") || !strings.Contains(text, "coverage: PARTIAL") {
		t.Errorf("text report must flag partial coverage:\n%s", text)
	}
	if strings.Contains(text, "no nonreversibility violations detected") {
		t.Errorf("truncated run must not claim a clean bill of health:\n%s", text)
	}
}

// TestRunTimeoutKeepsFindings: findings collected before the cut still
// dominate — exit 2, not 3.
func TestRunTimeoutKeepsFindings(t *testing.T) {
	cPath := writeTemp(t, "e.c", testC)
	edlPath := writeTemp(t, "e.edl", testEDL)
	var out bytes.Buffer
	// A generous timeout that won't fire: behavior identical to no flag.
	code, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-timeout", "1m", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	var env privacyscope.Envelope
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Verdict != "findings" {
		t.Errorf("verdict = %q, want findings", env.Verdict)
	}
}

// TestRunProfiles checks -cpuprofile/-memprofile produce non-empty files.
func TestRunProfiles(t *testing.T) {
	cPath := writeTemp(t, "e.c", testC)
	edlPath := writeTemp(t, "e.edl", testEDL)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	if _, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestRunVersionFlag: -version prints the build info and exits 0 without
// requiring -c/-edl.
func TestRunVersionFlag(t *testing.T) {
	var out bytes.Buffer
	code, err := run(context.Background(), []string{"-version"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	text := out.String()
	b := privacyscope.Build()
	for _, want := range []string{privacyscope.EngineVersion, b.Fingerprint} {
		if !strings.Contains(text, want) {
			t.Errorf("-version output missing %q:\n%s", want, text)
		}
	}
}

// TestRunEnvelopeCarriesFingerprint: the -json envelope names the engine
// fingerprint — the same value the privacyscoped cache keys on.
func TestRunEnvelopeCarriesFingerprint(t *testing.T) {
	cPath := writeTemp(t, "e.c", testC)
	edlPath := writeTemp(t, "e.edl", testEDL)
	var out bytes.Buffer
	if _, err := run(context.Background(), []string{"-c", cPath, "-edl", edlPath, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var env privacyscope.Envelope
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Engine != privacyscope.Fingerprint() {
		t.Errorf("envelope engine = %q, want fingerprint %q", env.Engine, privacyscope.Fingerprint())
	}
}

// TestRunInterruptedContext: an interrupt (the SIGINT/SIGTERM path of
// main, modeled here by a context cancelled mid-analysis) still prints the
// partial-coverage Inconclusive report and exits 3 instead of dying.
func TestRunInterruptedContext(t *testing.T) {
	cPath := writeTemp(t, "e.c", branchySecureC)
	edlPath := writeTemp(t, "e.edl", branchySecureEDL)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the "signal" arrives before exploration starts
	var out bytes.Buffer
	code, err := run(ctx, []string{"-c", cPath, "-edl", edlPath, "-json"}, &out)
	if err != nil {
		t.Fatalf("interrupt must degrade, not fail: %v", err)
	}
	if code != 3 {
		t.Errorf("exit code = %d, want 3 (inconclusive)", code)
	}
	var env privacyscope.Envelope
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Verdict != "inconclusive" {
		t.Errorf("verdict = %q, want inconclusive", env.Verdict)
	}
	f := env.Functions[0]
	if !f.Coverage.Truncated || f.Coverage.Reason != privacyscope.TruncCancelled {
		t.Errorf("coverage = %+v, want truncated by cancellation", f.Coverage)
	}
}
