package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"privacyscope"
	"privacyscope/internal/mlsuite"
)

// lineWriter records output and signals each completed line, letting the
// test wait for the daemon's address announcement.
type lineWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	lines chan string
	part  string
}

func newLineWriter() *lineWriter {
	return &lineWriter{lines: make(chan string, 16)}
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	w.part += string(p)
	for {
		i := strings.IndexByte(w.part, '\n')
		if i < 0 {
			break
		}
		select {
		case w.lines <- w.part[:i]:
		default:
		}
		w.part = w.part[i+1:]
	}
	return len(p), nil
}

func (w *lineWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// startDaemon runs the daemon on a random port and returns its base URL, a
// cancel function triggering graceful drain, and the channel run's error
// arrives on.
func startDaemon(t *testing.T, extraArgs ...string) (string, *lineWriter, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := newLineWriter()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, args, out) }()

	select {
	case line := <-out.lines:
		const prefix = "privacyscoped listening on "
		if !strings.HasPrefix(line, prefix) {
			cancel()
			t.Fatalf("unexpected first output line: %q", line)
		}
		addr := strings.Fields(strings.TrimPrefix(line, prefix))[0]
		return "http://" + addr, out, cancel, errCh
	case err := <-errCh:
		cancel()
		t.Fatalf("daemon exited before announcing address: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon did not announce its address")
	}
	panic("unreachable")
}

func postModule(t *testing.T, base, source, edl string) (*http.Response, privacyscope.Envelope) {
	t.Helper()
	body, err := json.Marshal(map[string]string{"source": source, "edl": edl})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/analyze: %v", err)
	}
	defer resp.Body.Close()
	var env privacyscope.Envelope
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusPartialContent {
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("decode envelope: %v", err)
		}
	}
	return resp, env
}

// TestDaemonEndToEnd boots the real binary entry point on a loopback port,
// drives the paper's ML suite through it, exercises the cache, and drains
// it gracefully.
func TestDaemonEndToEnd(t *testing.T) {
	base, out, cancel, errCh := startDaemon(t, "-workers", "2", "-queue-depth", "4", "-cache-entries", "8")
	defer cancel()

	// The leaky Recommender module reports its 6 findings through HTTP
	// exactly as the CLI does.
	resp, env := postModule(t, base, mlsuite.RecommenderC, mlsuite.RecommenderEDL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Recommender: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Privacyscope-Cache") != "" {
		t.Fatalf("first submission unexpectedly cached: %q", resp.Header.Get("X-Privacyscope-Cache"))
	}
	if env.Verdict != "findings" || len(env.Findings) != 6 {
		t.Fatalf("Recommender: verdict=%q findings=%d, want findings/6", env.Verdict, len(env.Findings))
	}
	if env.Engine != privacyscope.Fingerprint() {
		t.Fatalf("envelope engine %q != local fingerprint %q", env.Engine, privacyscope.Fingerprint())
	}

	// Repeat submission is served from the content-addressed cache.
	resp, env2 := postModule(t, base, mlsuite.RecommenderC, mlsuite.RecommenderEDL)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Privacyscope-Cache") != "hit" {
		t.Fatalf("repeat submission: status=%d cache=%q, want 200/hit", resp.StatusCode, resp.Header.Get("X-Privacyscope-Cache"))
	}
	if len(env2.Findings) != len(env.Findings) {
		t.Fatalf("cached envelope differs: %d vs %d findings", len(env2.Findings), len(env.Findings))
	}

	// The fixed module is proved secure.
	resp, env = postModule(t, base, mlsuite.FixedRecommenderC, mlsuite.FixedRecommenderEDL)
	if resp.StatusCode != http.StatusOK || !env.Secure {
		t.Fatalf("FixedRecommender: status=%d secure=%v, want 200/true", resp.StatusCode, env.Secure)
	}

	// Health and metrics respond while serving.
	hr, err := http.Get(base + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v status=%v", err, hr)
	}
	hr.Body.Close()
	mr, err := http.Get(base + "/metrics")
	if err != nil || mr.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v", err)
	}
	var mb bytes.Buffer
	mb.ReadFrom(mr.Body)
	mr.Body.Close()
	for _, want := range []string{"privacyscope_server_cache_hits", "privacyscope_server_analyses_executed"} {
		if !strings.Contains(mb.String(), want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}

	// Graceful drain: cancel the daemon context (what SIGINT does) and the
	// process exits cleanly after announcing the drain.
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if got := out.String(); !strings.Contains(got, "privacyscoped: draining") || !strings.Contains(got, "drained, exiting") {
		t.Fatalf("missing drain announcements in output:\n%s", got)
	}

	// After drain the port is closed.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after drain")
	}
}

// TestDaemonVersionFlag checks -version prints build info and exits
// without binding a port.
func TestDaemonVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &buf); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	want := fmt.Sprintf("engine fingerprint %s", privacyscope.Fingerprint())
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("version output %q missing %q", buf.String(), want)
	}
}

// TestDaemonBadAddr pins the startup failure path.
func TestDaemonBadAddr(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-addr", "256.256.256.256:0"}, &buf); err == nil {
		t.Fatal("expected listen error for invalid address")
	}
}

// TestDaemonCoordinatorMode boots two real worker daemons plus a
// coordinator fronting them through the same entry point a user runs, and
// drives an analysis through the coordinator: the envelope must be the
// worker's verbatim, routing headers must name the serving worker, a
// repeat must hit that worker's cache (placement stickiness), and the
// fleet /healthz must list both workers up.
func TestDaemonCoordinatorMode(t *testing.T) {
	w1, _, cancel1, _ := startDaemon(t, "-workers", "1")
	defer cancel1()
	w2, _, cancel2, _ := startDaemon(t, "-workers", "1")
	defer cancel2()

	coord, _, cancelC, errCh := startDaemon(t,
		"-coordinator", "w1="+w1+",w2="+w2,
		"-health-interval", "100ms")
	defer cancelC()

	resp, env := postModule(t, coord, mlsuite.RecommenderC, mlsuite.RecommenderEDL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze via coordinator: status %d", resp.StatusCode)
	}
	if env.Verdict != "findings" || env.Engine != privacyscope.Fingerprint() {
		t.Fatalf("envelope verdict=%q engine=%q", env.Verdict, env.Engine)
	}
	served := resp.Header.Get("X-Privacyscope-Worker")
	if served != "w1" && served != "w2" {
		t.Fatalf("X-Privacyscope-Worker = %q", served)
	}
	if resp.Header.Get("X-Privacyscope-Rerouted") != "" {
		t.Fatal("healthy-fleet dispatch claimed a reroute")
	}

	// The repeat routes to the same worker and hits its cache.
	resp2, _ := postModule(t, coord, mlsuite.RecommenderC, mlsuite.RecommenderEDL)
	if got := resp2.Header.Get("X-Privacyscope-Worker"); got != served {
		t.Fatalf("repeat served by %q, first by %q — placement not sticky", got, served)
	}
	if got := resp2.Header.Get("X-Privacyscope-Cache"); got != "hit" {
		t.Fatalf("repeat cache header = %q, want hit", got)
	}

	// Fleet health through the coordinator's own surface.
	hr, err := http.Get(coord + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("coordinator healthz: %v status=%v", err, hr)
	}
	var view struct {
		Role     string `json:"role"`
		Routable int    `json:"routable"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if view.Role != "coordinator" || view.Routable != 2 {
		t.Fatalf("fleet view = %+v, want coordinator with 2 routable workers", view)
	}

	// Coordinator drains cleanly too.
	cancelC()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("coordinator drain returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not drain")
	}
}
