// Command privacyscoped runs the privacyscope analysis engine as a
// long-lived HTTP/JSON daemon: clients POST modules to /v1/analyze and
// receive the same result envelope the `privacyscope -json` CLI emits,
// backed by a bounded worker-pool scheduler, a content-addressed result
// cache, and singleflight deduplication of identical in-flight jobs.
//
// Usage:
//
//	privacyscoped [-addr :8321] [-workers n] [-queue-depth n]
//	              [-cache-entries n] [-cache-dir dir] [-cache-max-bytes n]
//	              [-deadline d] [-max-deadline d] [-verbose]
//	              [-flight-entries n] [-slow-threshold d]
//	privacyscoped -coordinator w1=http://host1:8321,w2=http://host2:8321
//	              [-health-interval d] [-max-attempts n] [-breaker-cooldown d]
//	privacyscoped -version
//
// With -coordinator, the daemon runs no engine of its own: it
// consistent-hash-routes every submission across the listed worker daemons
// (placement follows each unit's cache key, so repeats land where the
// result is warm), probes their /healthz to gate routing, retries
// transient failures with exponential backoff, and re-routes units off
// workers that die mid-batch. See docs/SERVER.md for the coordinator API
// and docs/ROBUSTNESS.md for the distributed fail-soft semantics.
//
// -cache-dir persists cacheable results below the in-memory LRU (the
// internal/diskcache tier), so a restarted daemon serves repeat
// submissions warm instead of re-running the engine. See docs/BATCH.md for
// the on-disk layout and invalidation rules.
//
// The HTTP listener is hardened in both modes: header/read/write/idle
// timeouts (-http-read-timeout and friends) bound slow-loris clients, and
// request bodies past the source limit are cut with 413 + a JSON error.
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, queued
// and in-flight analyses are cancelled so they complete fail-soft (their
// clients receive 206 partial-coverage envelopes), and the process exits
// once the drain finishes or -drain-timeout expires. See docs/SERVER.md
// for the API and status-code contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"privacyscope"
	"privacyscope/internal/coord"
	"privacyscope/internal/diskcache"
	"privacyscope/internal/obs"
	"privacyscope/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "privacyscoped:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled (or startup
// fails). It announces the bound address on out as its first line so
// callers binding :0 can discover the port.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("privacyscoped", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8321", "listen address (host:port; :0 picks a free port)")
		workers      = fs.Int("workers", 4, "analysis worker-pool size")
		queueDepth   = fs.Int("queue-depth", 16, "jobs that may wait for a worker before submissions get 429")
		cacheEntries = fs.Int("cache-entries", 256, "result-cache capacity in entries (0 disables caching)")
		cacheDir     = fs.String("cache-dir", "", "persist cacheable results in this directory so restarts come back warm (empty = memory only)")
		cacheMax     = fs.Int64("cache-max-bytes", diskcache.DefaultMaxBytes, "size cap for -cache-dir; oldest entries evict past it")
		deadline     = fs.Duration("deadline", 30*time.Second, "per-job wall-clock budget when the request sets none (0 = unlimited); expiry degrades coverage, it does not kill the job")
		maxDeadline  = fs.Duration("max-deadline", 2*time.Minute, "cap on any per-request deadlineMs (0 = uncapped)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs to deliver their fail-soft results")
		flightN      = fs.Int("flight-entries", 64, "executed analyses retained in the flight recorder (GET /debug/traces)")
		slowAfter    = fs.Duration("slow-threshold", 10*time.Second, "log a server.job.slow event when an executed analysis exceeds this (0 disables)")
		verbose      = fs.Bool("verbose", false, "stream structured JSON telemetry events to stderr")
		version      = fs.Bool("version", false, "print build info (engine version, fingerprint) and exit")

		// Coordinator mode.
		coordWorkers = fs.String("coordinator", "", "run as a coordinator over this comma-separated worker fleet (name=http://host:port,...); no local engine")
		healthEvery  = fs.Duration("health-interval", 2*time.Second, "coordinator: background /healthz probe period per worker (0 disables)")
		maxAttempts  = fs.Int("max-attempts", 0, "coordinator: total dispatch attempts per unit across the fleet (0 = auto)")
		breakerCool  = fs.Duration("breaker-cooldown", 5*time.Second, "coordinator: how long an opened circuit breaker ejects a worker before a half-open trial")

		// HTTP hardening (both modes). Write must outlast the longest
		// analysis a worker may run (-max-deadline), so its default is
		// deliberately generous.
		readTimeout  = fs.Duration("http-read-timeout", 2*time.Minute, "bound on reading one full request (slow-loris guard)")
		writeTimeout = fs.Duration("http-write-timeout", 5*time.Minute, "bound on writing one full response (must exceed -max-deadline)")
		idleTimeout  = fs.Duration("http-idle-timeout", 2*time.Minute, "how long an idle keep-alive connection is retained")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, privacyscope.Build())
		return nil
	}

	var mopts []obs.MetricsOption
	if *verbose {
		mopts = append(mopts, obs.WithEventWriter(os.Stderr))
	}
	metrics := obs.NewMetrics(mopts...)

	var handler http.Handler
	var shutdown func(context.Context) error
	var announce string
	if *coordWorkers != "" {
		c, err := coord.New(coord.Config{
			Workers:         strings.Split(*coordWorkers, ","),
			HealthInterval:  *healthEvery,
			MaxAttempts:     *maxAttempts,
			BreakerCooldown: *breakerCool,
			RequestTimeout:  *maxDeadline + 30*time.Second,
			Observer:        metrics,
		})
		if err != nil {
			return err
		}
		defer c.Close()
		handler = c.Handler(coord.HandlerConfig{})
		shutdown = func(context.Context) error { c.Close(); return nil }
		announce = fmt.Sprintf("coordinating %d workers", len(strings.Split(*coordWorkers, ",")))
	} else {
		var disk *diskcache.Cache
		if *cacheDir != "" {
			var derr error
			disk, derr = diskcache.Open(diskcache.Config{
				Dir: *cacheDir, MaxBytes: *cacheMax, Observer: metrics,
			})
			if derr != nil {
				return derr
			}
		}
		srv := server.New(server.Config{
			Workers:         *workers,
			QueueDepth:      *queueDepth,
			CacheEntries:    *cacheEntries,
			DiskCache:       disk,
			DefaultDeadline: *deadline,
			MaxDeadline:     *maxDeadline,
			Metrics:         metrics,
			FlightEntries:   *flightN,
			SlowThreshold:   *slowAfter,
		})
		handler = srv.Handler()
		shutdown = srv.Shutdown
		announce = "serving"
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "privacyscoped listening on %s (%s, %s)\n", ln.Addr(), announce, privacyscope.Build())

	// Hardened listener: every phase of a connection is bounded, so a
	// client that trickles headers or never reads its response cannot pin
	// a connection (and its worker-pool slot) forever.
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case err := <-serveErr:
		shutdown(context.Background())
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop the listener first so no new connections land,
	// then cancel in-flight analyses so each degrades fail-soft and its
	// response is still delivered before the connection closes.
	fmt.Fprintln(out, "privacyscoped: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	schedErr := shutdown(drainCtx)
	httpErr := httpSrv.Shutdown(drainCtx)
	if schedErr != nil {
		return fmt.Errorf("drain incomplete: %w", schedErr)
	}
	if httpErr != nil {
		return fmt.Errorf("drain incomplete: %w", httpErr)
	}
	fmt.Fprintln(out, "privacyscoped: drained, exiting")
	return nil
}
