// Command sgxbuild is the PrivacyScope-gated enclave build pipeline of
// §V-C: it takes enclave C code (drafting the EDL interface if none is
// given), runs the nonreversibility analysis, and only when the module is
// clean "builds" it — loading it into the SGX simulator and emitting a
// deployment manifest with the enclave measurement. A module with
// violations fails the build with the full report, so leaky enclaves never
// reach deployment.
//
// Usage:
//
//	sgxbuild -c enclave.c [-edl enclave.edl] [-config rules.xml] \
//	         [-manifest out.json] [-allow-timing]
//
// Exit status: 0 build succeeded, 2 analysis found violations, 1 errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"privacyscope"
	"privacyscope/internal/edl"
	"privacyscope/internal/minic"
	"privacyscope/internal/sgx"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgxbuild:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// Manifest is the deployment artifact: everything a relying party needs to
// attest the enclave and reconstruct what was audited.
type Manifest struct {
	Measurement string   `json:"measurement"`
	ECalls      []string `json:"ecalls"`
	OCalls      []string `json:"ocalls,omitempty"`
	Audited     bool     `json:"audited"`
	Findings    int      `json:"findings"`
	EDLInferred bool     `json:"edlInferred"`
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("sgxbuild", flag.ContinueOnError)
	var (
		cPath        = fs.String("c", "", "enclave C source (required)")
		edlPath      = fs.String("edl", "", "EDL interface (default: inferred from usage)")
		configPath   = fs.String("config", "", "XML rule file")
		manifestPath = fs.String("manifest", "", "write the deployment manifest to this file")
		seed         = fs.String("seed", "sgxbuild", "platform seed for the measurement run")
		timing       = fs.Bool("check-timing", false, "also run the timing-channel extension")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *cPath == "" {
		fs.Usage()
		return 1, fmt.Errorf("-c is required")
	}
	cSrc, err := os.ReadFile(*cPath)
	if err != nil {
		return 1, err
	}

	// Obtain the interface: read it, or draft it from usage (edlgen).
	var edlSrc string
	inferred := false
	if *edlPath != "" {
		raw, err := os.ReadFile(*edlPath)
		if err != nil {
			return 1, err
		}
		edlSrc = string(raw)
	} else {
		file, err := minic.Parse(string(cSrc))
		if err != nil {
			return 1, err
		}
		edlSrc, err = edl.GenerateEDL(file, nil)
		if err != nil {
			return 1, err
		}
		inferred = true
		fmt.Fprintf(out, "inferred EDL interface:\n%s\n", edlSrc)
	}

	// Audit.
	var opts []privacyscope.Option
	if *configPath != "" {
		cfg, err := os.ReadFile(*configPath)
		if err != nil {
			return 1, err
		}
		opts = append(opts, privacyscope.WithConfigXML(cfg))
	}
	if *timing {
		opts = append(opts, privacyscope.WithTimingCheck())
	}
	report, err := privacyscope.AnalyzeEnclave(string(cSrc), edlSrc, opts...)
	if err != nil {
		return 1, err
	}
	if !report.Secure() {
		fmt.Fprintln(out, "BUILD REFUSED — nonreversibility violations:")
		fmt.Fprint(out, report.Render())
		return 2, nil
	}
	fmt.Fprintln(out, "audit clean: no nonreversibility violations")

	// Build: load into the simulator and measure.
	platform := sgx.NewPlatform([]byte(*seed))
	enclave, err := platform.LoadEnclave(string(cSrc), edlSrc)
	if err != nil {
		return 1, err
	}
	measurement := enclave.Measurement()
	iface := enclave.Interface()
	manifest := Manifest{
		Measurement: fmt.Sprintf("%x", measurement),
		Audited:     true,
		EDLInferred: inferred,
	}
	for _, sig := range iface.Trusted {
		manifest.ECalls = append(manifest.ECalls, sig.Name)
	}
	manifest.OCalls = iface.OCallNames()

	blob, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return 1, err
	}
	if *manifestPath != "" {
		if err := os.WriteFile(*manifestPath, append(blob, '\n'), 0o600); err != nil {
			return 1, err
		}
		fmt.Fprintf(out, "manifest written to %s\n", *manifestPath)
	} else {
		fmt.Fprintf(out, "%s\n", blob)
	}
	fmt.Fprintf(out, "build ok, measurement %x…\n", measurement[:8])
	return 0, nil
}
