package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cleanC = `
int train(float *data, float *model) {
    float total = 0.0;
    for (int i = 0; i < 4; i++) { total += data[i]; }
    model[0] = total / 4;
    return 0;
}
`

const leakyC = `
int train(float *data, float *model) {
    model[0] = data[0];
    return 0;
}
`

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildCleanModuleWithInferredEDL(t *testing.T) {
	cPath := write(t, "e.c", cleanC)
	manifest := filepath.Join(t.TempDir(), "m.json")
	var out bytes.Buffer
	code, err := run([]string{"-c", cPath, "-manifest", manifest}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{"inferred EDL", "audit clean", "build ok"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if !m.Audited || !m.EDLInferred || m.Findings != 0 {
		t.Errorf("manifest = %+v", m)
	}
	if len(m.ECalls) != 1 || m.ECalls[0] != "train" {
		t.Errorf("ecalls = %v", m.ECalls)
	}
	if len(m.Measurement) != 64 {
		t.Errorf("measurement = %q", m.Measurement)
	}
}

func TestBuildRefusedOnLeak(t *testing.T) {
	cPath := write(t, "e.c", leakyC)
	var out bytes.Buffer
	code, err := run([]string{"-c", cPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(out.String(), "BUILD REFUSED") {
		t.Errorf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "data[0]") {
		t.Errorf("report missing the leaking secret:\n%s", out.String())
	}
}

func TestBuildWithExplicitEDLAndConfig(t *testing.T) {
	cPath := write(t, "e.c", leakyC)
	edlPath := write(t, "e.edl",
		"enclave { trusted { public int train([in] float *data, [out] float *model); }; };")
	// Config declassifies the input → clean build.
	cfgPath := write(t, "rules.xml", `
<privacyscope>
  <function name="train"><public param="data"/></function>
</privacyscope>`)
	var out bytes.Buffer
	code, err := run([]string{"-c", cPath, "-edl", edlPath, "-config", cfgPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "inferred EDL") {
		t.Error("explicit EDL must not be re-inferred")
	}
}

func TestBuildErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(nil, &out); err == nil {
		t.Error("missing -c must error")
	}
	if _, err := run([]string{"-c", "nope.c"}, &out); err == nil {
		t.Error("missing file must error")
	}
	bad := write(t, "bad.c", "int f(")
	if _, err := run([]string{"-c", bad}, &out); err == nil {
		t.Error("parse error must surface")
	}
	cPath := write(t, "e.c", cleanC)
	if _, err := run([]string{"-c", cPath, "-edl", "nope.edl"}, &out); err == nil {
		t.Error("missing EDL must error")
	}
	if _, err := run([]string{"-c", cPath, "-config", "nope.xml"}, &out); err == nil {
		t.Error("missing config must error")
	}
}

func TestBuildTimingGate(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int acc = 0;
    if (secrets[0] > 0) {
        for (int i = 0; i < 8; i++) { acc += i; }
    }
    output[0] = 0;
    return 0;
}
`
	cPath := write(t, "e.c", src)
	edlPath := write(t, "e.edl",
		"enclave { trusted { public int f([in] int *secrets, [out] int *output); }; };")
	var out bytes.Buffer
	// Without the timing gate the module builds.
	code, err := run([]string{"-c", cPath, "-edl", edlPath}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	// With it, the unbalanced branch blocks the build.
	out.Reset()
	code, err = run([]string{"-c", cPath, "-edl", edlPath, "-check-timing"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit = %d, want 2 under -check-timing", code)
	}
}
