package privacyscope_test

import (
	"fmt"
	"log"

	"privacyscope"
)

// ExampleAnalyzeEnclave analyzes the paper's Listing 1 and prints the
// violations: the explicit leak of secrets[0] through output[0] and the
// implicit leak of secrets[1] through the return value.
func ExampleAnalyzeEnclave() {
	const cSource = `
int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
`
	const edlSource = `
enclave {
    trusted {
        public int enclave_process_data([in] char *secrets, [out] char *output);
    };
};
`
	report, err := privacyscope.AnalyzeEnclave(cSource, edlSource)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range report.Findings() {
		fmt.Printf("%s leak at %s reveals %s\n", f.Kind, f.Where, f.Secret)
		if f.Inversion != nil && f.Inversion.Exact {
			fmt.Printf("  recovery: %s\n", f.Inversion.Formula())
		}
	}
	// Output:
	// explicit leak at output[0] reveals secrets[0]
	//   recovery: secrets[0] = (observed - 101) / 1
	// implicit leak at return reveals secrets[1]
}

// ExampleAnalyzePRIML runs the PS-* instrumented semantics over the
// paper's Example 2 and reports the implicit leak of Table III.
func ExampleAnalyzePRIML() {
	res, err := privacyscope.AnalyzePRIML(`h := 2 * get_secret(secret);
if h - 5 == 14 then declassify(0) else declassify(1)`)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range res.Findings {
		fmt.Println(f.Message)
	}
	// Output:
	// implicit nonreversibility violation at site 2: paths branching on secret t1 declassify different values (0 vs 1)
}

// ExampleAnalyzeFunction classifies parameters directly, without an EDL
// file, and shows the secure verdict for a masked aggregate.
func ExampleAnalyzeFunction() {
	report, err := privacyscope.AnalyzeFunction(`
int train(int *data, int *model) {
    model[0] = data[0] + data[1] + data[2];
    return 0;
}`, "train", []privacyscope.ParamSpec{
		{Name: "data", Class: privacyscope.ParamSecret},
		{Name: "model", Class: privacyscope.ParamOut},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("secure:", report.Secure())
	// Output:
	// secure: true
}
