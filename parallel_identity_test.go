package privacyscope

import (
	"fmt"
	"strings"
	"testing"

	"privacyscope/internal/mlsuite"
)

// canonicalReport renders everything observable about a module analysis
// except wall-clock timing, so sequential and parallel runs can be compared
// byte for byte.
func canonicalReport(rep *EnclaveReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "secure=%v verdict=%s findings=%d\n",
		rep.Secure(), rep.Verdict(), rep.TotalFindings())
	for _, r := range rep.Reports {
		fmt.Fprintf(&sb, "fn=%s verdict=%s paths=%d err=%q coverage={completed=%d pruned=%d truncated=%v reason=%s}\n",
			r.Function, r.Verdict(), r.Paths, r.Err,
			r.Coverage.CompletedPaths, r.Coverage.PrunedPaths,
			r.Coverage.Truncated, r.Coverage.Reason)
		for i, f := range r.Findings {
			fmt.Fprintf(&sb, "  finding[%d] kind=%s sink=%s where=%s secret=%s msg=%q\n",
				i, f.Kind, f.Sink, f.Where, f.Secret, f.Message)
			if f.Witness != nil {
				fmt.Fprintf(&sb, "    witness verified=%v inA=%v inB=%v obsA=%v obsB=%v recA=%v recB=%v note=%q\n",
					f.Witness.Verified, f.Witness.InputsA, f.Witness.InputsB,
					f.Witness.ObservedA, f.Witness.ObservedB,
					f.Witness.RecoveredA, f.Witness.RecoveredB, f.Witness.Note)
			}
		}
	}
	return sb.String()
}

// TestPathWorkersIdenticalOnMLSuite is the PR's acceptance gate for parallel
// path exploration: WithPathWorkers(4) must yield byte-identical findings to
// sequential analysis on the full ML evaluation suite (Table V modules, the
// extension module, and the malicious variants).
func TestPathWorkersIdenticalOnMLSuite(t *testing.T) {
	type target struct {
		name   string
		c, edl string
	}
	var targets []target
	for _, m := range append(mlsuite.Modules(), mlsuite.ExtensionModules()...) {
		targets = append(targets, target{name: m.Name, c: m.C, edl: m.EDL})
	}
	targets = append(targets,
		target{name: "evil-linreg", c: mlsuite.MaliciousLinRegC, edl: mlsuite.MaliciousLinRegEDL},
		target{name: "evil-kmeans", c: mlsuite.MaliciousKmeansC, edl: mlsuite.MaliciousKmeansEDL},
		target{name: "fixed-recommender", c: mlsuite.FixedRecommenderC, edl: mlsuite.FixedRecommenderEDL},
	)
	for _, tgt := range targets {
		t.Run(tgt.name, func(t *testing.T) {
			seq, err := AnalyzeEnclave(tgt.c, tgt.edl)
			if err != nil {
				t.Fatal(err)
			}
			par, err := AnalyzeEnclave(tgt.c, tgt.edl, WithPathWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			want, got := canonicalReport(seq), canonicalReport(par)
			if got != want {
				t.Errorf("WithPathWorkers(4) diverges from sequential:\n--- sequential ---\n%s--- workers=4 ---\n%s", want, got)
			}
		})
	}
}
