// Package privacyscope is the public API of the PrivacyScope reproduction:
// a static analyzer that detects leakage of private data by code intended
// to run inside a TEE (Intel SGX) enclave, by finding violations of the
// nonreversibility property (ICDCS 2020).
//
// Quick start:
//
//	report, err := privacyscope.AnalyzeEnclave(cSource, edlSource)
//	if err != nil { ... }
//	fmt.Print(report.Render())
//
// AnalyzeEnclave parses the enclave C code and its EDL interface file,
// symbolically executes every public ECALL with [in] parameters treated as
// secrets and [out] parameters (plus return values and OCALLs) treated as
// observable, and reports every explicit and implicit nonreversibility
// violation, each with a recovery formula and — where possible — a
// concretely replayed two-run witness.
package privacyscope

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"privacyscope/internal/core"
	"privacyscope/internal/detect"
	"privacyscope/internal/edl"
	"privacyscope/internal/minic"
	"privacyscope/internal/obs"
	"privacyscope/internal/priml"
	"privacyscope/internal/symexec"
)

// Re-exported result types. See the internal/core documentation for field
// details.
type (
	// Report is the per-entry-point analysis outcome.
	Report = core.Report
	// Finding is one nonreversibility violation.
	Finding = core.Finding
	// Witness is a replayed two-run leak confirmation.
	Witness = core.Witness
	// ParamSpec classifies one entry parameter.
	ParamSpec = symexec.ParamSpec
	// Verdict is the four-valued per-function outcome; see the constants
	// below and docs/ROBUSTNESS.md.
	Verdict = core.Verdict
	// Coverage summarizes how much of the path space an analysis explored
	// and why it stopped early, when it did.
	Coverage = symexec.Coverage
	// TruncReason says why an exploration was cut (path budget, step
	// budget, deadline, cancellation).
	TruncReason = symexec.TruncReason
	// SummaryStore persists computed function summaries across runs —
	// pass one via WithSummaryStore. internal/diskcache's Cache satisfies
	// it, so the daemon and batch driver reuse their disk tier.
	SummaryStore = symexec.SummaryStore
)

// Verdicts, re-exported. A truncated exploration that found nothing is
// Inconclusive, never Secure.
const (
	VerdictSecure       = core.VerdictSecure
	VerdictInconclusive = core.VerdictInconclusive
	VerdictError        = core.VerdictError
	VerdictFindings     = core.VerdictFindings
)

// Truncation reasons, re-exported.
const (
	TruncNone       = symexec.TruncNone
	TruncPathBudget = symexec.TruncPathBudget
	TruncStepBudget = symexec.TruncStepBudget
	TruncDeadline   = symexec.TruncDeadline
	TruncCancelled  = symexec.TruncCancelled
	// TruncInlineDepth: a call chain exceeded the inline depth and a
	// callee was skipped; TruncSummaryHavoc: a call was resolved by a
	// havoc summary. Both under-approximate the program, so a clean run
	// reads Inconclusive.
	TruncInlineDepth  = symexec.TruncInlineDepth
	TruncSummaryHavoc = symexec.TruncSummaryHavoc
)

// Telemetry types, re-exported from internal/obs so callers can receive
// spans, counters and events without importing internal packages. See
// docs/OBSERVABILITY.md for the metric-name registry.
type (
	// Observer receives analysis telemetry; pass one via WithObserver.
	Observer = obs.Observer
	// Span is one timed phase of the analysis.
	Span = obs.Span
	// Field is a key/value attachment on an event.
	Field = obs.Field
	// Metrics is the standard in-memory Observer implementation.
	Metrics = obs.Metrics
	// MetricsOption configures NewMetrics.
	MetricsOption = obs.MetricsOption
	// MetricsSnapshot is a point-in-time JSON-marshalable metrics view.
	MetricsSnapshot = obs.Snapshot
	// Tracer records span instances of one analysis; run it next to a
	// Metrics via Multi and export with Snapshot or WriteChromeTrace.
	Tracer = obs.Tracer
	// TracerOption configures NewTracer.
	TracerOption = obs.TracerOption
	// TraceSnapshot is the compact JSON span tree of one traced analysis.
	TraceSnapshot = obs.TraceSnapshot
	// TraceSpan is one node of a TraceSnapshot.
	TraceSpan = obs.TraceSpan
)

// NewMetrics returns a concurrency-safe in-memory Observer that aggregates
// counters, span timings and distributions.
func NewMetrics(opts ...MetricsOption) *Metrics { return obs.NewMetrics(opts...) }

// WithEventWriter makes a Metrics observer stream structured JSON event
// lines to w as the analysis runs.
func WithEventWriter(w io.Writer) MetricsOption { return obs.WithEventWriter(w) }

// NewTracer returns a per-analysis tracer: where Metrics aggregates by
// span name, the Tracer records every span instance with parent links into
// a bounded buffer, exportable as a span tree or a Chrome trace-event file.
func NewTracer(opts ...TracerOption) *Tracer { return obs.NewTracer(opts...) }

// WithTraceCap bounds a Tracer's span buffer; past it spans are counted
// as dropped rather than recorded (n ≤ 0 keeps the default).
func WithTraceCap(n int) TracerOption { return obs.WithTraceCap(n) }

// WithTraceID pins a Tracer's trace ID (e.g. one taken from an incoming
// W3C traceparent header) instead of generating a fresh one.
func WithTraceID(id string) TracerOption { return obs.WithTraceID(id) }

// MultiObserver fans telemetry out to several observers — the way to run
// Metrics aggregation and a Tracer side by side on one analysis.
func MultiObserver(os ...Observer) Observer { return obs.Multi(os...) }

// Leak kinds and sink kinds, re-exported. The last four kinds are the
// scenario packs of the detector registry (docs/DETECTORS.md); enable them
// with WithDetectors or the rule file's <detectors> block.
const (
	ExplicitLeak      = core.ExplicitLeak
	ImplicitLeak      = core.ImplicitLeak
	TimingLeak        = core.TimingLeak
	ProbabilisticLeak = core.ProbabilisticLeak
	OcallPtrLeak      = core.OcallPtrLeak
	ErrCodeLeak       = core.ErrCodeLeak
	OrderlinessLeak   = core.OrderlinessLeak
	AccessPatternLeak = core.AccessPatternLeak

	SinkOutParam = core.SinkOutParam
	SinkReturn   = core.SinkReturn
	SinkOCall    = core.SinkOCall
	SinkBranch   = core.SinkBranch
	SinkMemory   = core.SinkMemory
)

// DetectorNames lists every registered leak detector in execution order:
// the three built-in checks ("explicit", "implicit", "timing") and the
// scenario packs ("ocall-pointer", "errcode-channel", "orderliness",
// "access-pattern").
func DetectorNames() []string { return detect.Names() }

// Parameter classes, re-exported.
const (
	ParamPublic = symexec.ParamPublic
	ParamSecret = symexec.ParamSecret
	ParamOut    = symexec.ParamOut
	ParamInOut  = symexec.ParamInOut
)

// ErrNoECalls is returned when the EDL declares no public trusted calls.
var ErrNoECalls = errors.New("privacyscope: EDL declares no public ECALLs")

// Option configures an analysis.
type Option func(*config)

type config struct {
	checker      core.Options
	configXML    []byte
	parallelism  int
	summaryStore symexec.SummaryStore
	detectors    []string
}

func defaultConfig() *config {
	return &config{checker: core.DefaultOptions(), parallelism: 1}
}

// WithConfigXML supplies the user rule file (§V-C): per-function parameter
// overrides, extra decrypt functions, extra OCALL sinks.
func WithConfigXML(data []byte) Option {
	return func(c *config) { c.configXML = append([]byte(nil), data...) }
}

// WithLoopBound overrides the symbolic loop unrolling bound.
func WithLoopBound(n int) Option {
	return func(c *config) { c.checker.Engine.LoopBound = n }
}

// WithMaxPaths overrides the path budget. Exhausting it degrades the
// affected function's report (partial Coverage, Inconclusive verdict when
// nothing was found) instead of failing the analysis.
func WithMaxPaths(n int) Option {
	return func(c *config) { c.checker.Engine.MaxPaths = n }
}

// WithMaxSteps overrides the statement-evaluation budget, with the same
// fail-soft behavior as WithMaxPaths.
func WithMaxSteps(n int) Option {
	return func(c *config) { c.checker.Engine.MaxSteps = n }
}

// WithDeadline bounds each entry point's analysis wall-clock time. A
// function that exceeds it keeps every path completed so far and is
// reported as Inconclusive (or with its findings, if any were already
// detected) — the remaining entry points still analyze with their own full
// budget.
func WithDeadline(d time.Duration) Option {
	return func(c *config) { c.checker.Deadline = d }
}

// WithoutWitnessReplay disables concrete witness construction.
func WithoutWitnessReplay() Option {
	return func(c *config) { c.checker.ReplayWitness = false }
}

// WithoutImplicitCheck disables the hashmap-hm implicit detection (the
// ablation of Alg. 1).
func WithoutImplicitCheck() Option {
	return func(c *config) { c.checker.ImplicitCheck = false }
}

// WithoutPruning disables solver-based infeasible-path pruning.
func WithoutPruning() Option {
	return func(c *config) { c.checker.Engine.PruneInfeasible = false }
}

// WithKnownInputs declares secrets the attacker already knows (the §VIII-B
// prior-knowledge extension), by display name (e.g. "secrets[1]").
func WithKnownInputs(names ...string) Option {
	return func(c *config) {
		c.checker.KnownInputs = append(c.checker.KnownInputs, names...)
	}
}

// WithTrace enables Table-IV-style exploration snapshots.
func WithTrace() Option {
	return func(c *config) { c.checker.Engine.TrackTrace = true }
}

// WithTimingCheck enables the §VIII-A timing-channel extension: paths that
// differ only in one secret's branch constraints but execute a different
// number of statements are reported as timing leaks.
func WithTimingCheck() Option {
	return func(c *config) { c.checker.TimingCheck = true }
}

// WithProbabilisticCheck enables the §VIII-A probabilistic channel:
// observable single-secret values masked only by in-enclave entropy are
// reported (the output distribution over repeated calls reveals the
// secret, even though no single run does).
func WithProbabilisticCheck() Option {
	return func(c *config) { c.checker.ProbabilisticCheck = true }
}

// WithConservativeExterns treats results of unmodeled external functions as
// fresh secrets, so unmodeled code cannot launder taint (high-assurance
// mode; expect additional findings wherever extern results reach sinks).
func WithConservativeExterns() Option {
	return func(c *config) { c.checker.Engine.ConservativeExterns = true }
}

// WithObserver attaches a telemetry observer to the analysis: per-phase
// spans (parse, check/symexec, check/explicit, check/implicit,
// check/witness), engine and solver counters, and structured events. Use
// NewMetrics for the standard implementation; the observer must be safe for
// concurrent use when combined with WithParallelism (Metrics is).
func WithObserver(o Observer) Option {
	return func(c *config) { c.checker.Observer = o }
}

// WithPathWorkers explores up to n execution paths of each entry point
// concurrently (intra-function parallelism, complementing the per-ECALL
// parallelism of WithParallelism). Findings and their order are
// deterministic and identical to sequential exploration; features that
// require strict sequential path order (WithTrace, decrypt intrinsics)
// fall back to one worker for the affected function. n ≤ 1 keeps
// sequential exploration.
func WithPathWorkers(n int) Option {
	return func(c *config) { c.checker.Engine.PathWorkers = n }
}

// WithSummaries switches call resolution from inline-everything to
// compositional per-function summaries: before exploration, every defined
// call target gets a bottom-up summary (pure skeleton, inline fallback, or
// havoc for recursion and over-budget callees), and call sites apply
// summaries instead of re-inlining. Findings, verdicts, warnings and
// coverage are byte-identical to inline mode — inline mode remains the
// differential oracle — but shared helpers are explored once instead of
// once per call site per path. Trace recording (WithTrace) forces inline
// mode for the affected analysis.
func WithSummaries() Option {
	return func(c *config) { c.checker.Engine.Summaries = true }
}

// WithInterning toggles the hash-consing arena of the symbolic layer
// (on by default): structurally equal expressions intern to one canonical
// node, path conditions are canonicalized at fork time, and the solver
// keys its feasibility memo and per-atom analysis on node identity.
// Findings are byte-identical either way — the `make intern-smoke`
// differential gate pins that — so the switch exists for debugging and as
// the gate's own oracle, not as a semantic knob.
func WithInterning(enabled bool) Option {
	return func(c *config) { c.checker.Engine.NoIntern = !enabled }
}

// WithSummaryBudget bounds the steps one function's summary construction
// may spend before the function is classified havoc (n ≤ 0 keeps the
// default).
func WithSummaryBudget(n int) Option {
	return func(c *config) { c.checker.Engine.SummaryBudget = n }
}

// WithSummaryStore persists computed summaries in s, keyed on the engine
// fingerprint plus each function's transitive body hash — so a warm rerun
// recomputes only functions whose code (or whose callees' code) changed.
// Only consulted when WithSummaries is also set.
func WithSummaryStore(s SummaryStore) Option {
	return func(c *config) { c.summaryStore = s }
}

// WithDetectors replaces the detector selection outright (the -detectors
// CLI flag): only the named detectors run. The keywords "default" (the
// option-implied set) and "all" expand inside the list, so
// WithDetectors("default", "ocall-pointer") adds one pack on top of the
// defaults. Unknown names fail the analysis with an error naming the known
// set. Without this option the defaults apply, adjusted by the rule file's
// <detectors> block.
func WithDetectors(names ...string) Option {
	return func(c *config) { c.detectors = append(c.detectors, names...) }
}

// WithParallelism analyzes up to n ECALLs concurrently (each entry point
// gets an independent engine, so this is safe); n ≤ 1 keeps sequential
// analysis.
func WithParallelism(n int) Option {
	return func(c *config) {
		if n > 1 {
			c.parallelism = n
		}
	}
}

// EnclaveReport aggregates the per-ECALL reports of one enclave module.
type EnclaveReport struct {
	// Reports holds one entry per analyzed public ECALL, in EDL order. An
	// entry point whose analysis failed (panic, hard error) keeps its slot
	// as an error report (Err non-empty) rather than aborting the module.
	Reports []*Report
}

// Secure reports whether every ECALL was *proved* free of violations: no
// findings anywhere, no analysis failures, and exhaustive coverage. A
// module with a truncated, cancelled or panicked entry point is not secure
// — its verdict is Inconclusive or Error, never Secure.
func (e *EnclaveReport) Secure() bool {
	for _, r := range e.Reports {
		if !r.Secure() {
			return false
		}
	}
	return true
}

// Verdict aggregates the per-function verdicts: findings anywhere dominate
// (a leak is a leak no matter what happened to sibling functions), then
// error, then inconclusive, then secure.
func (e *EnclaveReport) Verdict() Verdict {
	agg := VerdictSecure
	for _, r := range e.Reports {
		if v := r.Verdict(); v > agg {
			agg = v
		}
	}
	return agg
}

// Errors lists the entry points whose analysis failed, as "function: cause"
// strings. Empty when every entry point produced an analysis result.
func (e *EnclaveReport) Errors() []string {
	var out []string
	for _, r := range e.Reports {
		if r.Err != "" {
			out = append(out, r.Function+": "+r.Err)
		}
	}
	return out
}

// Degraded lists the entry points with partial coverage (budget, deadline
// or cancellation truncation).
func (e *EnclaveReport) Degraded() []*Report {
	var out []*Report
	for _, r := range e.Reports {
		if r.Coverage.Truncated {
			out = append(out, r)
		}
	}
	return out
}

// TotalFindings counts violations across all entry points.
func (e *EnclaveReport) TotalFindings() int {
	n := 0
	for _, r := range e.Reports {
		n += len(r.Findings)
	}
	return n
}

// Findings returns all violations across all entry points.
func (e *EnclaveReport) Findings() []Finding {
	var out []Finding
	for _, r := range e.Reports {
		out = append(out, r.Findings...)
	}
	return out
}

// Render concatenates the per-ECALL Box-1-style reports.
func (e *EnclaveReport) Render() string {
	var sb strings.Builder
	for i, r := range e.Reports {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(r.Render())
	}
	return sb.String()
}

// AnalyzeEnclave analyzes every public ECALL of an enclave module. The EDL
// attributes provide the default classification ([in]→secret, [out]→sink);
// an XML rule file supplied via WithConfigXML overrides it. It is
// AnalyzeEnclaveContext with a background context.
func AnalyzeEnclave(cSource, edlSource string, opts ...Option) (*EnclaveReport, error) {
	return AnalyzeEnclaveContext(context.Background(), cSource, edlSource, opts...)
}

// AnalyzeEnclaveContext is AnalyzeEnclave under a cancellation context.
//
// The per-function pipeline is fail-soft: ctx cancellation, deadline expiry
// (the ctx's or WithDeadline's) and budget exhaustion degrade the affected
// function's report instead of failing the call, and a panicking or
// hard-failing entry point is isolated — it yields an error entry naming
// the function while every other ECALL still analyzes. Only module-level
// problems (unparseable C or EDL, a bad rule file, no public ECALLs) return
// an error.
func AnalyzeEnclaveContext(ctx context.Context, cSource, edlSource string, opts ...Option) (*EnclaveReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(cfg)
	}
	ob := obs.Or(cfg.checker.Observer)
	parseSpan := ob.StartSpan("parse")
	file, err := minic.Parse(cSource)
	if err != nil {
		parseSpan.End()
		return nil, fmt.Errorf("privacyscope: %w", err)
	}
	iface, err := edl.Parse(edlSource)
	if err != nil {
		parseSpan.End()
		return nil, fmt.Errorf("privacyscope: %w", err)
	}
	// Enclave code may call any EDL-declared untrusted function.
	builtins := append(append([]string(nil), minic.DefaultBuiltins...), iface.OCallNames()...)
	if err := minic.NewChecker(builtins).Check(file); err != nil {
		parseSpan.End()
		return nil, fmt.Errorf("privacyscope: %w", err)
	}
	parseSpan.End()
	ob.Add("parse.functions", int64(len(file.Functions)))
	var rules *edl.Config
	if len(cfg.configXML) > 0 {
		rules, err = edl.ParseConfig(cfg.configXML)
		if err != nil {
			return nil, fmt.Errorf("privacyscope: %w", err)
		}
		cfg.checker.Engine = rules.EngineOptions(cfg.checker.Engine)
	}
	// Every EDL-declared untrusted function is an OCALL: its arguments
	// escape the enclave and are observable sinks.
	if names := iface.OCallNames(); len(names) > 0 {
		merged := make(map[string]bool, len(cfg.checker.Engine.OCallFuncs)+len(names))
		for k, v := range cfg.checker.Engine.OCallFuncs {
			merged[k] = v
		}
		for _, n := range names {
			merged[n] = true
		}
		cfg.checker.Engine.OCallFuncs = merged
	}
	set, err := resolveDetectors(cfg, rules)
	if err != nil {
		return nil, err
	}
	// Summary tables are built once per module, after the rule file and the
	// EDL have settled the engine's sink/declassify sets (they feed each
	// summary's obligations and cache key), and shared read-only across
	// per-ECALL jobs — the skeletons are builder-independent.
	if cfg.checker.Engine.Summaries {
		cfg.checker.Engine.SummaryTable = symexec.BuildSummaryTable(ctx, file, cfg.checker.Engine, symexec.SummaryBuildConfig{
			Store:       cfg.summaryStore,
			Fingerprint: summaryFingerprint(set),
			Obs:         ob,
		})
	}
	// Collect the public ECALLs to analyze.
	type job struct {
		name  string
		specs []ParamSpec
	}
	var jobs []job
	for _, sig := range iface.Trusted {
		if !sig.Public {
			continue
		}
		var rule *edl.FunctionRule
		if rules != nil {
			if r, ok := rules.Rule(sig.Name); ok {
				rule = r
			}
		}
		jobs = append(jobs, job{name: sig.Name, specs: edl.ParamSpecs(sig, rule)})
	}
	if len(jobs) == 0 {
		return nil, ErrNoECalls
	}

	out := &EnclaveReport{Reports: make([]*Report, len(jobs))}
	runJob := func(i int) {
		// Panic isolation: a crashing entry point (engine bug, pathological
		// input) must not take down the sibling analyses or the caller. Its
		// slot becomes an error report instead.
		defer func() {
			if p := recover(); p != nil {
				ob.Add("check.panics", 1)
				ob.Event("check.panic",
					obs.F("function", jobs[i].name),
					obs.F("panic", fmt.Sprint(p)))
				out.Reports[i] = core.ErrorReport(jobs[i].name,
					fmt.Sprintf("panic during analysis: %v", p))
			}
		}()
		// Each job parses its own file: engines annotate nothing on the
		// AST, but an independent parse removes any possibility of
		// shared mutable state between concurrent analyses.
		jfile := file
		if cfg.parallelism > 1 {
			var perr error
			jfile, perr = minic.Parse(cSource)
			if perr != nil {
				ob.Add("check.errors", 1)
				out.Reports[i] = core.ErrorReport(jobs[i].name, perr.Error())
				return
			}
		}
		rep, err := detect.Run(ctx, set, cfg.checker, jfile, jobs[i].name, jobs[i].specs)
		if err != nil {
			ob.Add("check.errors", 1)
			out.Reports[i] = core.ErrorReport(jobs[i].name, err.Error())
			return
		}
		out.Reports[i] = rep
	}
	if cfg.parallelism <= 1 || len(jobs) == 1 {
		for i := range jobs {
			runJob(i)
		}
	} else {
		sem := make(chan struct{}, cfg.parallelism)
		var wg sync.WaitGroup
		for i := range jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				runJob(i)
			}(i)
		}
		wg.Wait()
	}
	return out, nil
}

// AnalyzeFunction analyzes a single C function with an explicit parameter
// classification (no EDL required). It is AnalyzeFunctionContext with a
// background context.
func AnalyzeFunction(cSource, fn string, params []ParamSpec, opts ...Option) (*Report, error) {
	return AnalyzeFunctionContext(context.Background(), cSource, fn, params, opts...)
}

// AnalyzeFunctionContext is AnalyzeFunction under a cancellation context:
// cancellation, deadline expiry and budget exhaustion degrade the report
// (partial Coverage, Inconclusive verdict) instead of returning an error.
// Errors are reserved for module-level problems: unparseable source or an
// unknown entry function.
func AnalyzeFunctionContext(ctx context.Context, cSource, fn string, params []ParamSpec, opts ...Option) (*Report, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(cfg)
	}
	ob := obs.Or(cfg.checker.Observer)
	parseSpan := ob.StartSpan("parse")
	file, err := minic.Parse(cSource)
	parseSpan.End()
	if err != nil {
		return nil, fmt.Errorf("privacyscope: %w", err)
	}
	// The rule file applies in function mode too: extra decrypt/OCALL
	// registrations, detector toggles and lifecycle gates all configure the
	// engine the same way they do for a full enclave module.
	var rules *edl.Config
	if len(cfg.configXML) > 0 {
		rules, err = edl.ParseConfig(cfg.configXML)
		if err != nil {
			return nil, fmt.Errorf("privacyscope: %w", err)
		}
		cfg.checker.Engine = rules.EngineOptions(cfg.checker.Engine)
	}
	set, err := resolveDetectors(cfg, rules)
	if err != nil {
		return nil, err
	}
	if cfg.checker.Engine.Summaries {
		cfg.checker.Engine.SummaryTable = symexec.BuildSummaryTable(ctx, file, cfg.checker.Engine, symexec.SummaryBuildConfig{
			Store:       cfg.summaryStore,
			Fingerprint: summaryFingerprint(set),
			Obs:         ob,
		})
	}
	report, err := detect.Run(ctx, set, cfg.checker, file, fn, params)
	if err != nil {
		return nil, fmt.Errorf("privacyscope: %w", err)
	}
	return report, nil
}

// resolveDetectors computes the effective detector selection from the
// checker options, the rule file's <detectors>/<lifecycle> entries and the
// WithDetectors override, then switches on the engine event streams the
// selection consumes. Pointer-escape, lifecycle and secret-access events
// are per-path state that function summaries do not replay, so selections
// needing them force inline call resolution.
func resolveDetectors(cfg *config, rules *edl.Config) (detect.Set, error) {
	var enable, disable []string
	if rules != nil {
		known := func(n string) bool { _, ok := detect.Lookup(n); return ok }
		if err := rules.ValidateDetectors(known); err != nil {
			return detect.Set{}, fmt.Errorf("privacyscope: %w", err)
		}
		enable, disable = rules.DetectorToggles()
		if inits := rules.InitFuncs(); inits != nil {
			cfg.checker.Engine.InitFuncs = inits
		}
	}
	set, err := detect.ResolveSet(cfg.checker, enable, disable, cfg.detectors)
	if err != nil {
		return detect.Set{}, fmt.Errorf("privacyscope: %w", err)
	}
	if set.NeedsPtrEscapes() {
		cfg.checker.Engine.RecordPtrEscapes = true
	}
	if set.NeedsSecretAccess() {
		cfg.checker.Engine.RecordSecretAccess = true
	}
	if set.NeedsInline() {
		cfg.checker.Engine.Summaries = false
	}
	return set, nil
}

// summaryFingerprint salts the engine fingerprint with the detector
// selection so persisted summary-store entries never cross detector sets —
// the same participation rule the disk cache and the server LRU follow via
// AnalysisOptions.Detectors.
func summaryFingerprint(set detect.Set) string {
	return Fingerprint() + ";detectors=" + set.Key()
}

// PRIMLAnalysis is the result of analyzing a PRIML program.
type PRIMLAnalysis = priml.Analysis

// AnalyzePRIML parses and analyzes a PRIML program with the PS-*
// instrumented semantics of §V, producing the Tables II/III-style trace and
// the findings of declassify_check.
func AnalyzePRIML(src string) (*PRIMLAnalysis, error) {
	prog, err := priml.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("privacyscope: %w", err)
	}
	res, err := priml.NewAnalyzer(priml.DefaultOptions()).Analyze(prog)
	if err != nil {
		return nil, fmt.Errorf("privacyscope: %w", err)
	}
	return res, nil
}
