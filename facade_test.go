package privacyscope

import (
	"errors"
	"strings"
	"testing"

	"privacyscope/internal/mlsuite"
)

const listing1C = `
int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
`

const listing1EDL = `
enclave {
    trusted {
        public int enclave_process_data([in] char *secrets, [out] char *output);
    };
};
`

func TestAnalyzeEnclaveListing1(t *testing.T) {
	rep, err := AnalyzeEnclave(listing1C, listing1EDL)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Secure() {
		t.Fatal("Listing 1 must be insecure")
	}
	if rep.TotalFindings() != 2 {
		t.Fatalf("findings = %d: %s", rep.TotalFindings(), rep.Render())
	}
	kinds := map[string]int{}
	for _, f := range rep.Findings() {
		kinds[f.Kind.String()]++
	}
	if kinds["explicit"] != 1 || kinds["implicit"] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
	out := rep.Render()
	if !strings.Contains(out, "recovery:") || !strings.Contains(out, "secrets[1]") {
		t.Errorf("render:\n%s", out)
	}
}

func TestAnalyzeEnclaveErrors(t *testing.T) {
	if _, err := AnalyzeEnclave("int f(", listing1EDL); err == nil {
		t.Error("bad C must fail")
	}
	if _, err := AnalyzeEnclave(listing1C, "nope"); err == nil {
		t.Error("bad EDL must fail")
	}
	if _, err := AnalyzeEnclave(listing1C, "enclave { trusted { }; };"); !errors.Is(err, ErrNoECalls) {
		t.Errorf("err = %v, want ErrNoECalls", err)
	}
	// Sema failure.
	if _, err := AnalyzeEnclave("int f(void) { return g(); }",
		"enclave { trusted { public int f(); }; };"); err == nil {
		t.Error("sema failure must fail")
	}
	if _, err := AnalyzeEnclave(listing1C, listing1EDL, WithConfigXML([]byte("<bad"))); err == nil {
		t.Error("bad XML must fail")
	}
}

func TestAnalyzeEnclaveWithConfigOverride(t *testing.T) {
	// The XML flips the classification: nothing is secret → secure.
	xml := []byte(`
<privacyscope>
  <function name="enclave_process_data">
    <public param="secrets"/>
  </function>
</privacyscope>`)
	rep, err := AnalyzeEnclave(listing1C, listing1EDL, WithConfigXML(xml))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Secure() {
		t.Errorf("with secrets declassified the module is secure:\n%s", rep.Render())
	}
}

func TestAnalyzeFunctionDirect(t *testing.T) {
	rep, err := AnalyzeFunction(listing1C, "enclave_process_data", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 2 {
		t.Errorf("findings = %+v", rep.Findings)
	}
	if _, err := AnalyzeFunction("int f(", "f", nil); err == nil {
		t.Error("bad C must fail")
	}
	if _, err := AnalyzeFunction(listing1C, "missing", nil); err == nil {
		t.Error("missing function must fail")
	}
}

func TestOptionsPlumbing(t *testing.T) {
	// Implicit off: only the explicit finding remains.
	rep, err := AnalyzeEnclave(listing1C, listing1EDL, WithoutImplicitCheck())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalFindings() != 1 {
		t.Errorf("findings = %d", rep.TotalFindings())
	}
	// Witness off: explicit finding has no witness.
	rep, err = AnalyzeEnclave(listing1C, listing1EDL, WithoutWitnessReplay())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings() {
		if f.Witness != nil {
			t.Error("witness built despite WithoutWitnessReplay")
		}
	}
	// Prior knowledge turns a masked sum into a leak.
	masked := `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + secrets[1];
    return 0;
}`
	maskedEDL := `enclave { trusted { public int f([in] int *secrets, [out] int *output); }; };`
	rep, err = AnalyzeEnclave(masked, maskedEDL, WithKnownInputs("secrets[1]"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Secure() {
		t.Error("prior knowledge must expose the leak")
	}
	// Loop bound / max paths plumb through without error.
	if _, err := AnalyzeEnclave(listing1C, listing1EDL, WithLoopBound(2), WithMaxPaths(64), WithTrace(), WithoutPruning()); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzePRIMLFacade(t *testing.T) {
	res, err := AnalyzePRIML(`h := 2 * get_secret(secret);
if h - 5 == 14 then declassify(0) else declassify(1)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Secure() || !res.HasImplicit() {
		t.Errorf("findings = %+v", res.Findings)
	}
	if _, err := AnalyzePRIML("x :="); err == nil {
		t.Error("bad PRIML must fail")
	}
}

// TestFullMLSuiteThroughFacade runs the paper's three modules end to end
// through the public API.
func TestFullMLSuiteThroughFacade(t *testing.T) {
	for _, m := range mlsuite.Modules() {
		t.Run(m.Name, func(t *testing.T) {
			rep, err := AnalyzeEnclave(m.C, m.EDL)
			if err != nil {
				t.Fatal(err)
			}
			switch m.Name {
			case "Recommender":
				if rep.TotalFindings() != 6 {
					t.Errorf("Recommender findings = %d, want 6:\n%s", rep.TotalFindings(), rep.Render())
				}
			case "LinearRegression":
				// The training ECALL is clean; the predict ECALL takes
				// the (already public) model as [in] — its output is a
				// masked combination, also clean.
				for _, r := range rep.Reports {
					if r.Function == "enclave_train_linreg" && !r.Secure() {
						t.Errorf("train flagged:\n%s", r.Render())
					}
				}
			}
		})
	}
}

func TestTimingCheckOption(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    int acc = 0;
    if (secrets[0] > 0) {
        for (int i = 0; i < 8; i++) { acc += i; }
    }
    output[0] = 0;
    return 0;
}`
	edl := `enclave { trusted { public int f([in] int *secrets, [out] int *output); }; };`
	rep, err := AnalyzeEnclave(src, edl, WithTimingCheck())
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, f := range rep.Findings() {
		if f.Kind == TimingLeak {
			found = true
		}
	}
	if !found {
		t.Errorf("timing leak not reported:\n%s", rep.Render())
	}
}

func TestEDLUntrustedFunctionsAreSinks(t *testing.T) {
	// An EDL-declared OCALL taking a secret-derived argument is an
	// explicit leak, with no XML configuration needed.
	src := `
int f(int *secrets) {
    report_metric(secrets[0] * 2);
    return 0;
}`
	edl := `
enclave {
    trusted { public int f([in] int *secrets); };
    untrusted { void report_metric(int v); };
};`
	rep, err := AnalyzeEnclave(src, edl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Secure() {
		t.Fatal("OCALL of secret-derived value must be flagged")
	}
	f := rep.Findings()[0]
	if f.Sink != SinkOCall || !strings.Contains(f.Where, "report_metric") {
		t.Errorf("finding = %+v", f)
	}
}

// TestConcurrentAnalyses runs independent analyses in parallel to catch any
// accidental shared state between checker instances.
func TestConcurrentAnalyses(t *testing.T) {
	t.Parallel()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			rep, err := AnalyzeEnclave(listing1C, listing1EDL)
			if err != nil {
				done <- err
				return
			}
			if rep.TotalFindings() != 2 {
				done <- errors.New("wrong finding count under concurrency")
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestParallelAnalysisMatchesSequential(t *testing.T) {
	seq, err := AnalyzeEnclave(mlsuite.RecommenderC, mlsuite.RecommenderEDL)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AnalyzeEnclave(mlsuite.RecommenderC, mlsuite.RecommenderEDL, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Reports) != len(par.Reports) {
		t.Fatalf("report counts differ: %d vs %d", len(seq.Reports), len(par.Reports))
	}
	for i := range seq.Reports {
		if seq.Reports[i].Function != par.Reports[i].Function {
			t.Errorf("report order differs at %d", i)
		}
		if len(seq.Reports[i].Findings) != len(par.Reports[i].Findings) {
			t.Errorf("%s: findings %d vs %d", seq.Reports[i].Function,
				len(seq.Reports[i].Findings), len(par.Reports[i].Findings))
		}
	}
	if par.TotalFindings() != 6 {
		t.Errorf("parallel total = %d, want 6", par.TotalFindings())
	}
}

func TestConservativeExternsOption(t *testing.T) {
	src := `
int oracle(int x);
int f(int *secrets, int *output) {
    output[0] = oracle(3);
    return 0;
}`
	edl := `enclave { trusted { public int f([in] int *secrets, [out] int *output); }; };`
	// Default: extern results are public → secure. But sema rejects
	// unknown externs at the facade, so use AnalyzeFunction (no sema).
	rep, err := AnalyzeFunction(src, "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Secure() {
		t.Errorf("default extern handling must be permissive: %+v", rep.Findings)
	}
	rep2, err := AnalyzeFunction(src, "f", []ParamSpec{
		{Name: "secrets", Class: ParamSecret},
		{Name: "output", Class: ParamOut},
	}, WithConservativeExterns())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Secure() {
		t.Error("conservative mode must flag the extern result at the sink")
	}
	_ = edl
}

func TestAnalysisDeterminism(t *testing.T) {
	// Two independent runs must produce byte-identical reports (modulo
	// the timing line) — map iteration anywhere in the pipeline must not
	// leak into the output.
	strip := func(s string) string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "time:") {
				continue
			}
			out = append(out, line)
		}
		return strings.Join(out, "\n")
	}
	a, err := AnalyzeEnclave(mlsuite.KmeansC, mlsuite.KmeansEDL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeEnclave(mlsuite.KmeansC, mlsuite.KmeansEDL)
	if err != nil {
		t.Fatal(err)
	}
	if strip(a.Render()) != strip(b.Render()) {
		t.Error("reports differ across runs — nondeterminism in the pipeline")
	}
}

func TestProbabilisticCheckOption(t *testing.T) {
	src := `
int f(int *secrets, int *output) {
    output[0] = secrets[0] + rand();
    return 0;
}`
	edl := `enclave { trusted { public int f([in] int *secrets, [out] int *output); }; };`
	rep, err := AnalyzeEnclave(src, edl)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Secure() {
		t.Errorf("default must be secure:\n%s", rep.Render())
	}
	rep2, err := AnalyzeEnclave(src, edl, WithProbabilisticCheck())
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, f := range rep2.Findings() {
		if f.Kind == ProbabilisticLeak {
			found = true
		}
	}
	if !found {
		t.Errorf("probabilistic leak not reported:\n%s", rep2.Render())
	}
}
