package privacyscope

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"privacyscope/internal/mlsuite"
	"privacyscope/internal/obs"
)

// This file is the summary-mode differential suite: WithSummaries must be
// byte-identical to inline mode (the differential oracle) on every corpus
// the repo ships — the ML evaluation suite, the §IV cross-stack programs,
// and the examples/project tree — and the identity must hold under ECALL
// parallelism too. A companion test pins the function-granular warm-cache
// property at the facade level: a rerun with a warm summary store
// recomputes only the functions whose bodies (or whose callees' bodies)
// changed.

// summaryCanonical is canonicalReport plus the exploration accounting and
// warnings: summary mode must reproduce not just findings and verdicts but
// the cost model (states, regions) and every degradation note, so the
// stricter rendering is the right comparison key here.
func summaryCanonical(rep *EnclaveReport) string {
	var sb strings.Builder
	sb.WriteString(canonicalReport(rep))
	for _, r := range rep.Reports {
		fmt.Fprintf(&sb, "fn=%s states=%d regions=%d secrets=%d warnings=%q\n",
			r.Function, r.States, r.Regions, r.Secrets, r.Warnings)
	}
	return sb.String()
}

// canonicalFunctionReport is the single-function analogue for
// AnalyzeFunction results (the §IV differential stack entry point).
func canonicalFunctionReport(r *Report) string {
	return summaryCanonical(&EnclaveReport{Reports: []*Report{r}})
}

// requireSummaryIdentical analyzes one module inline, with summaries, and
// with summaries under ECALL parallelism, and requires all three renderings
// to agree byte for byte.
func requireSummaryIdentical(t *testing.T, cSrc, edlSrc string, extra ...Option) {
	t.Helper()
	inline, err := AnalyzeEnclave(cSrc, edlSrc, extra...)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := AnalyzeEnclave(cSrc, edlSrc, append([]Option{WithSummaries()}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AnalyzeEnclave(cSrc, edlSrc,
		append([]Option{WithSummaries(), WithParallelism(4)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	want := summaryCanonical(inline)
	if got := summaryCanonical(sum); got != want {
		t.Errorf("summary mode diverges from inline:\n--- inline ---\n%s--- summaries ---\n%s", want, got)
	}
	if got := summaryCanonical(par); got != want {
		t.Errorf("summary mode under WithParallelism(4) diverges from inline:\n--- inline ---\n%s--- summaries+jobs=4 ---\n%s", want, got)
	}
}

// TestSummaryDifferentialMLSuite runs the full ML evaluation corpus (Table V
// modules, the extension modules, and the malicious variants) through both
// call-resolution modes.
func TestSummaryDifferentialMLSuite(t *testing.T) {
	type target struct {
		name   string
		c, edl string
	}
	var targets []target
	for _, m := range append(mlsuite.Modules(), mlsuite.ExtensionModules()...) {
		targets = append(targets, target{name: m.Name, c: m.C, edl: m.EDL})
	}
	targets = append(targets,
		target{name: "evil-linreg", c: mlsuite.MaliciousLinRegC, edl: mlsuite.MaliciousLinRegEDL},
		target{name: "evil-kmeans", c: mlsuite.MaliciousKmeansC, edl: mlsuite.MaliciousKmeansEDL},
		target{name: "fixed-recommender", c: mlsuite.FixedRecommenderC, edl: mlsuite.FixedRecommenderEDL},
	)
	for _, tgt := range targets {
		t.Run(tgt.name, func(t *testing.T) {
			requireSummaryIdentical(t, tgt.c, tgt.edl)
		})
	}
}

// TestSummaryDifferentialExamplesProject walks every .c/.edl unit under
// examples/project (the batch corpus, including the nested ml/ unit) through
// both modes.
func TestSummaryDifferentialExamplesProject(t *testing.T) {
	root := filepath.Join("examples", "project")
	var units []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".c") {
			units = append(units, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) < 7 {
		t.Fatalf("found %d units under %s, want at least 7", len(units), root)
	}
	for _, cPath := range units {
		edlPath := strings.TrimSuffix(cPath, ".c") + ".edl"
		name, _ := filepath.Rel(root, cPath)
		t.Run(name, func(t *testing.T) {
			cSrc, err := os.ReadFile(cPath)
			if err != nil {
				t.Fatal(err)
			}
			edlSrc, err := os.ReadFile(edlPath)
			if err != nil {
				t.Fatal(err)
			}
			requireSummaryIdentical(t, string(cSrc), string(edlSrc))
		})
	}
}

// TestSummaryDifferentialSectionIV replays the §IV differential-stack MiniC
// programs (differential_stacks_test.go) with summaries on: same findings,
// same inversion parameters, same verdicts as inline mode.
func TestSummaryDifferentialSectionIV(t *testing.T) {
	cases := []struct {
		name, fn, src string
		opts          []Option
	}{
		{"insecure", "leak", `
int leak(char *secrets, char *output)
{
    output[0] = secrets[0] + 4;
    return 0;
}
`, nil},
		{"secure-masked", "masked", `
int masked(char *secrets, char *output)
{
    output[0] = secrets[0] + 4 + secrets[1];
    return 0;
}
`, nil},
		{"example1", "example1", `
int example1(char *secrets, char *output)
{
    int h1 = 2 * secrets[0];
    int h2 = 3 * secrets[1];
    int x = h1 + h2;
    output[0] = x;
    output[1] = h1;
    return 0;
}
`, nil},
		{"example2-feasible", "example2", `
int example2(char *secrets, char *output)
{
    int h = 2 * secrets[0];
    if (h - 5 == 15)
        output[0] = 0;
    else
        output[0] = 1;
    return 0;
}
`, nil},
		{"example2-infeasible", "example2", `
int example2(char *secrets, char *output)
{
    int h = 2 * secrets[0];
    if (h - 5 == 14)
        output[0] = 0;
    else
        output[0] = 1;
    return 0;
}
`, []Option{WithoutPruning()}},
		// The §IV insecure program routed through pure helpers: the leak
		// crosses two summarized call sites and the exact +4 inversion must
		// survive skeleton replay.
		{"insecure-through-helpers", "leak", `
int twice(int x) { return 2 * x; }
int add4(int x) { return x + 4; }
int leak(char *secrets, char *output)
{
    output[0] = add4(secrets[0]);
    output[1] = twice(add4(secrets[1]));
    return 0;
}
`, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inline := analyzeCSrc(t, tc.src, tc.fn, tc.opts...)
			sum := analyzeCSrc(t, tc.src, tc.fn, append([]Option{WithSummaries()}, tc.opts...)...)
			want, got := canonicalFunctionReport(inline), canonicalFunctionReport(sum)
			if got != want {
				t.Errorf("summary mode diverges from inline:\n--- inline ---\n%s--- summaries ---\n%s", want, got)
			}
			for i := range inline.Findings {
				wi, gi := inline.Findings[i].Inversion, sum.Findings[i].Inversion
				if (wi == nil) != (gi == nil) {
					t.Fatalf("finding %d inversion presence diverges: inline=%v summaries=%v", i, wi, gi)
				}
				if wi != nil && (wi.Exact != gi.Exact || wi.Scale != gi.Scale || wi.Offset != gi.Offset) {
					t.Errorf("finding %d inversion diverges: inline=%+v summaries=%+v", i, wi, gi)
				}
			}
		})
	}
}

// memSummaryStore is an in-memory SummaryStore for the warm-rerun pin.
type memSummaryStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemSummaryStore() *memSummaryStore {
	return &memSummaryStore{m: map[string][]byte{}}
}

func (s *memSummaryStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.m[key]
	return p, ok
}

func (s *memSummaryStore) Put(key string, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), payload...)
}

// TestSummaryStoreWarmRerunRecomputesOnlyChanged pins the function-granular
// invalidation contract at the facade level (the batch incremental pin's
// summary-tier mirror): a warm rerun computes nothing, and after editing one
// leaf helper only that helper and its transitive callers recompute while
// unrelated helpers stay warm.
func TestSummaryStoreWarmRerunRecomputesOnlyChanged(t *testing.T) {
	const edl = `
enclave {
    trusted {
        public int enclave_f([in] int *secrets, [out] int *output);
    };
};
`
	src := func(leafBody string) string {
		return `
int leaf(int x) { return ` + leafBody + `; }
int mid(int x) { return leaf(x) * 2; }
int unrelated(int x) { return x - 3; }
int enclave_f(int *secrets, int *output)
{
    output[0] = mid(secrets[0]) + unrelated(secrets[1]);
    return 0;
}
`
	}
	store := newMemSummaryStore()
	run := func(body string) *obs.Metrics {
		t.Helper()
		m := obs.NewMetrics()
		if _, err := AnalyzeEnclave(src(body), edl,
			WithSummaries(), WithSummaryStore(store), WithObserver(m)); err != nil {
			t.Fatal(err)
		}
		return m
	}

	cold := run("x + 1")
	if got := cold.Counter("summary.computed"); got != 3 {
		t.Fatalf("cold run computed %d summaries, want 3 (leaf, mid, unrelated)", got)
	}
	if got := cold.Counter("summary.cache.hits"); got != 0 {
		t.Fatalf("cold run had %d cache hits, want 0", got)
	}

	warm := run("x + 1")
	if got := warm.Counter("summary.computed"); got != 0 {
		t.Fatalf("warm rerun computed %d summaries, want 0", got)
	}
	if got := warm.Counter("summary.cache.hits"); got != 3 {
		t.Fatalf("warm rerun had %d cache hits, want 3", got)
	}

	// Editing leaf's body invalidates leaf and its caller mid (whose key
	// folds leaf's source), but unrelated must stay warm.
	edited := run("x + 2")
	if got := edited.Counter("summary.computed"); got != 2 {
		t.Fatalf("edited rerun computed %d summaries, want 2 (leaf + mid)", got)
	}
	if got := edited.Counter("summary.cache.hits"); got != 1 {
		t.Fatalf("edited rerun had %d cache hits, want 1 (unrelated)", got)
	}
}
