module privacyscope

go 1.22
