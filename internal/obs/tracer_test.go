package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func findSpan(spans []*TraceSpan, name string) *TraceSpan {
	for _, s := range spans {
		if s.Name == name {
			return s
		}
		if c := findSpan(s.Spans, name); c != nil {
			return c
		}
	}
	return nil
}

func TestTracerSpanTree(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("check")
	root.Annotate(F("function", "ecall_process"))
	child := root.Child("symexec")
	grand := child.Child("solver")
	grand.End()
	child.End()
	sibling := root.Child("explicit")
	sibling.End()
	root.End()

	snap := tr.Snapshot()
	if snap.TraceID == "" || len(snap.TraceID) != 32 {
		t.Fatalf("TraceID = %q, want 32 hex chars", snap.TraceID)
	}
	if len(snap.Spans) != 1 {
		t.Fatalf("want 1 root span, got %d", len(snap.Spans))
	}
	r := snap.Spans[0]
	if r.Name != "check" {
		t.Fatalf("root name = %q", r.Name)
	}
	if len(r.Fields) != 1 || r.Fields[0].Key != "function" {
		t.Fatalf("root fields = %v", r.Fields)
	}
	if len(r.Spans) != 2 {
		t.Fatalf("want 2 children of root, got %d", len(r.Spans))
	}
	// Children sort by start offset: symexec began first.
	if r.Spans[0].Name != "symexec" || r.Spans[1].Name != "explicit" {
		t.Fatalf("children = %q, %q", r.Spans[0].Name, r.Spans[1].Name)
	}
	if findSpan(r.Spans[0].Spans, "solver") == nil {
		t.Fatalf("grandchild solver not under symexec: %+v", r.Spans[0])
	}
}

func TestTracerOrphanBecomesRoot(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("check")
	child := root.Child("symexec")
	child.End()
	// Root never ends (e.g. snapshot taken mid-analysis): the child has no
	// completed parent record and must surface as a root, not vanish.
	snap := tr.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "symexec" {
		t.Fatalf("orphan child not promoted to root: %+v", snap.Spans)
	}
	_ = root
}

func TestTracerBufferCapCountsDrops(t *testing.T) {
	tr := NewTracer(WithTraceCap(4))
	for i := 0; i < 10; i++ {
		tr.StartSpan("s").End()
		tr.Event("m")
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("recorded %d spans, want cap 4", len(snap.Spans))
	}
	if snap.DroppedSpans != 6 {
		t.Fatalf("DroppedSpans = %d, want 6", snap.DroppedSpans)
	}
	if len(snap.Marks) != 4 || snap.DroppedMarks != 6 {
		t.Fatalf("marks = %d dropped = %d, want 4/6", len(snap.Marks), snap.DroppedMarks)
	}
}

func TestTracerConcurrentForks(t *testing.T) {
	// Forked children start on one goroutine and end on others — the
	// path-worker pool's pattern. Parent links must survive.
	tr := NewTracer()
	root := tr.StartSpan("symexec")
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		sp := root.Child("worker")
		wg.Add(1)
		go func(sp Span, i int) {
			defer wg.Done()
			sp.Annotate(F("fork", fmt.Sprint(i)))
			sp.End()
		}(sp, i)
	}
	wg.Wait()
	root.End()
	snap := tr.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("want single root, got %d", len(snap.Spans))
	}
	if got := len(snap.Spans[0].Spans); got != n {
		t.Fatalf("want %d children under root, got %d", n, got)
	}
	for _, c := range snap.Spans[0].Spans {
		if c.Name != "worker" || len(c.Fields) != 1 {
			t.Fatalf("child %+v malformed", c)
		}
	}
}

func TestTracerLanes(t *testing.T) {
	tr := NewTracer()
	w1 := tr.Lane(1, "worker 1")
	w2 := tr.Lane(2, "worker 2")
	s1 := w1.StartSpan("unit")
	s1.End()
	w2.Event("cache.hit", F("unit", "a"))
	snap := tr.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Lane != 1 {
		t.Fatalf("span lane = %+v", snap.Spans)
	}
	if len(snap.Marks) != 1 || snap.Marks[0].Lane != 2 {
		t.Fatalf("mark lane = %+v", snap.Marks)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	lane := tr.Lane(1, "worker 1")
	sp := lane.StartSpan("unit")
	sp.Annotate(F("verdict", "secure"))
	sp.End()
	lane.Event("cache.miss", F("unit", "a.c"))

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.OtherData["traceId"] != tr.TraceID() {
		t.Fatalf("otherData traceId = %v", doc.OtherData)
	}
	phases := map[string]int{}
	var sawThreadName bool
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if ph == "M" {
			if ev["name"] != "thread_name" {
				t.Fatalf("metadata event name = %v", ev["name"])
			}
			args := ev["args"].(map[string]any)
			if args["name"] == "worker 1" {
				sawThreadName = true
			}
		}
		if ph == "X" {
			if ev["name"] != "unit" {
				t.Fatalf("span event name = %v", ev["name"])
			}
			args := ev["args"].(map[string]any)
			if args["verdict"] != "secure" {
				t.Fatalf("span args = %v", args)
			}
		}
		if ph == "i" && ev["s"] != "t" {
			t.Fatalf("instant event missing scope: %v", ev)
		}
	}
	if phases["X"] != 1 || phases["i"] != 1 || phases["M"] == 0 {
		t.Fatalf("phase counts = %v", phases)
	}
	if !sawThreadName {
		t.Fatalf("no thread_name metadata for worker lane")
	}
}

func TestMultiFansOut(t *testing.T) {
	m := NewMetrics()
	tr := NewTracer()
	ob := Multi(m, tr)
	sp := ob.StartSpan("check")
	sp.Annotate(F("function", "f"))
	child := sp.Child("symexec")
	child.End()
	sp.End()
	ob.Add("steps", 3)
	ob.Event("done")

	if m.Counter("steps") != 3 {
		t.Fatalf("metrics counter = %d", m.Counter("steps"))
	}
	ms := m.Snapshot()
	if ms.Spans["check"].Count != 1 || ms.Spans["check/symexec"].Count != 1 {
		t.Fatalf("metrics spans = %v", ms.Spans)
	}
	ts := tr.Snapshot()
	if len(ts.Spans) != 1 || len(ts.Spans[0].Spans) != 1 {
		t.Fatalf("tracer tree = %+v", ts.Spans)
	}
	if len(ts.Marks) != 1 {
		t.Fatalf("tracer marks = %+v", ts.Marks)
	}
}

func TestMultiCollapses(t *testing.T) {
	if Multi() != Nop() {
		t.Fatal("Multi() should collapse to Nop")
	}
	if Multi(nil, Nop()) != Nop() {
		t.Fatal("Multi(nil, Nop) should collapse to Nop")
	}
	m := NewMetrics()
	if got := Multi(nil, m, Nop()); got != Observer(m) {
		t.Fatalf("Multi with one live observer should pass through, got %T", got)
	}
}

func TestParseTraceparent(t *testing.T) {
	tid := strings.Repeat("ab", 16)
	pid := strings.Repeat("cd", 8)
	good := "00-" + tid + "-" + pid + "-01"
	gotT, gotP, ok := ParseTraceparent(good)
	if !ok || gotT != tid || gotP != pid {
		t.Fatalf("ParseTraceparent(%q) = %q,%q,%v", good, gotT, gotP, ok)
	}
	bad := []string{
		"",
		"00-" + tid + "-" + pid,         // missing flags
		"ff-" + tid + "-" + pid + "-01", // forbidden version
		"00-" + strings.Repeat("0", 32) + "-" + pid + "-01", // zero trace id
		"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", // zero span id
		"00-" + strings.ToUpper(tid) + "-" + pid + "-01",    // uppercase hex
		"00-" + tid[:30] + "-" + pid + "-01",                // short trace id
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Fatalf("ParseTraceparent(%q) accepted malformed header", h)
		}
	}
}

func TestFormatTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	h := FormatTraceparent(tid, sid)
	gotT, gotP, ok := ParseTraceparent(h)
	if !ok || gotT != tid || gotP != sid {
		t.Fatalf("round trip failed: %q -> %q,%q,%v", h, gotT, gotP, ok)
	}
}

func TestTracerWithTraceID(t *testing.T) {
	tr := NewTracer(WithTraceID("feedfacefeedfacefeedfacefeedface"))
	if tr.TraceID() != "feedfacefeedfacefeedfacefeedface" {
		t.Fatalf("TraceID = %q", tr.TraceID())
	}
}
