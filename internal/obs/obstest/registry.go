// Package obstest holds test-only helpers for the packages that gate their
// telemetry against the docs/OBSERVABILITY.md registry: every counter,
// gauge, span or distribution a package emits must have a registry row, or
// its drift test fails. Keeping the parser here means the server and the
// coordinator enforce the same reading of the registry.
package obstest

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

var backtickRe = regexp.MustCompile("`([^`]+)`")
var registryTokenRe = regexp.MustCompile(`^\.?[a-z][a-z0-9._/-]*$`)

// DocRegistry extracts every registry-style name the markdown file at path
// mentions in backticks: counters, gauges, span paths, events. Combined
// table rows like "`server.cache.hits` / `.misses`" expand the dotted
// suffixes against the preceding full name. Fenced code blocks are skipped
// (they show example output, not registry rows).
func DocRegistry(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	var last string
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		// Single-word names (the bare `parse` / `check` spans) only count
		// inside registry table rows; in prose they are too ambiguous.
		tableRow := strings.HasPrefix(strings.TrimSpace(line), "|")
		for _, m := range backtickRe.FindAllStringSubmatch(line, -1) {
			tok := m[1]
			if !registryTokenRe.MatchString(tok) {
				continue
			}
			if strings.HasPrefix(tok, ".") {
				// Suffix shorthand: ".misses" after "server.cache.hits"
				// means server.cache.misses — replace as many trailing
				// segments as the suffix carries.
				if last == "" {
					continue
				}
				sfx := strings.Split(tok[1:], ".")
				base := strings.Split(last, ".")
				if len(base) > len(sfx) {
					names[strings.Join(append(base[:len(base)-len(sfx)], sfx...), ".")] = true
				}
				continue
			}
			if strings.ContainsAny(tok, "./") || tableRow {
				names[tok] = true
				last = tok
			}
		}
	}
	if len(names) < 20 {
		t.Fatalf("%s registry extraction found only %d names — parser broken?", path, len(names))
	}
	return names
}
