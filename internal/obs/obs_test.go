package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	m := NewMetrics()
	m.Add("a", 1)
	m.Add("a", 2)
	m.Add("b", 5)
	if got := m.Counter("a"); got != 3 {
		t.Errorf("a = %d, want 3", got)
	}
	if got := m.Counter("b"); got != 5 {
		t.Errorf("b = %d, want 5", got)
	}
	if got := m.Counter("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
	names := m.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

// TestCounterConcurrent exercises counter atomicity; run under -race (the
// tier-1.5 target) to catch unsynchronized access.
func TestCounterConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Add("hits", 1)
				m.Observe("dist", int64(i))
				sp := m.StartSpan("work")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("hits"); got != workers*perWorker {
		t.Errorf("hits = %d, want %d", got, workers*perWorker)
	}
	snap := m.Snapshot()
	if snap.Dists["dist"].Count != workers*perWorker {
		t.Errorf("dist count = %d", snap.Dists["dist"].Count)
	}
	if snap.Spans["work"].Count != workers*perWorker {
		t.Errorf("span count = %d", snap.Spans["work"].Count)
	}
}

func TestSpanNesting(t *testing.T) {
	m := NewMetrics()
	check := m.StartSpan("check")
	sx := check.Child("symexec")
	inner := sx.Child("solver")
	inner.End()
	sx.End()
	check.End()
	snap := m.Snapshot()
	for _, name := range []string{"check", "check/symexec", "check/symexec/solver"} {
		st, ok := snap.Spans[name]
		if !ok {
			t.Fatalf("missing span %q in %v", name, snap.Spans)
		}
		if st.Count != 1 {
			t.Errorf("%s count = %d, want 1", name, st.Count)
		}
		if st.TotalNanos < 0 || st.MinNanos > st.MaxNanos {
			t.Errorf("%s stats inconsistent: %+v", name, st)
		}
	}
}

func TestDistStats(t *testing.T) {
	m := NewMetrics()
	for _, v := range []int64{4, -2, 9, 9} {
		m.Observe("depth", v)
	}
	d := m.Snapshot().Dists["depth"]
	if d.Count != 4 || d.Sum != 20 || d.Min != -2 || d.Max != 9 {
		t.Errorf("dist = %+v", d)
	}
}

// TestNopAllocationFree pins the tentpole's "pays ~nothing when off"
// property: every no-op observer call is allocation-free.
func TestNopAllocationFree(t *testing.T) {
	o := Nop()
	allocs := testing.AllocsPerRun(200, func() {
		o.Add("symexec.steps", 1)
		o.Observe("symexec.path.depth", 7)
		sp := o.StartSpan("check")
		sp.Child("symexec").End()
		sp.End()
		o.Event("warning")
	})
	if allocs != 0 {
		t.Errorf("no-op observer allocates %v per run, want 0", allocs)
	}
}

func TestOr(t *testing.T) {
	if Or(nil) == nil {
		t.Fatal("Or(nil) must return the no-op observer")
	}
	m := NewMetrics()
	if Or(m) != Observer(m) {
		t.Error("Or must pass a non-nil observer through")
	}
	// The nil-wrapped observer must behave as a no-op, not panic.
	Or(nil).Add("x", 1)
	Or(nil).StartSpan("x").End()
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Add("solver.queries", 42)
	m.Observe("symexec.path.depth", 3)
	sp := m.StartSpan("check")
	sp.End()
	m.Event("done", F("fn", "f"))

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["solver.queries"] != 42 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Dists["symexec.path.depth"].Count != 1 {
		t.Errorf("dists = %v", snap.Dists)
	}
	if snap.Spans["check"].Count != 1 {
		t.Errorf("spans = %v", snap.Spans)
	}
	if snap.Events != 1 {
		t.Errorf("events = %d", snap.Events)
	}
}

func TestEventWriterStream(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetrics(WithEventWriter(&buf))
	m.Event("phase", F("name", "parse"))
	sp := m.StartSpan("check")
	sp.End()

	sc := bufio.NewScanner(&buf)
	var lines []eventLine
	for sc.Scan() {
		var l eventLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	if lines[0].Kind != "event" || lines[0].Name != "phase" ||
		len(lines[0].Fields) != 1 || lines[0].Fields[0].Value != "parse" {
		t.Errorf("event line = %+v", lines[0])
	}
	if lines[1].Kind != "span" || lines[1].Name != "check" {
		t.Errorf("span line = %+v", lines[1])
	}
}

func TestEventWithoutWriterDoesNotPanic(t *testing.T) {
	m := NewMetrics()
	m.Event("x", F("k", strings.Repeat("v", 10)))
	if m.Snapshot().Events != 1 {
		t.Error("event not counted")
	}
}

func TestGauges(t *testing.T) {
	m := NewMetrics()
	if got := m.Gauge("queue.depth"); got != 0 {
		t.Fatalf("unset gauge = %d, want 0", got)
	}
	m.SetGauge("queue.depth", 7)
	m.SetGauge("queue.depth", 3) // gauges move both ways
	m.SetGauge("inflight", 1)
	if got := m.Gauge("queue.depth"); got != 3 {
		t.Errorf("gauge = %d, want 3", got)
	}
	snap := m.Snapshot()
	if snap.Gauges["queue.depth"] != 3 || snap.Gauges["inflight"] != 1 {
		t.Errorf("snapshot gauges = %v", snap.Gauges)
	}
}

func TestWritePrometheus(t *testing.T) {
	m := NewMetrics()
	m.Add("server.cache.hits", 5)
	m.SetGauge("server.queue.depth", 2)
	m.StartSpan("check/symexec").End()
	m.Observe("path.depth", 4)
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE privacyscope_server_cache_hits counter",
		"privacyscope_server_cache_hits 5",
		"# TYPE privacyscope_server_queue_depth gauge",
		"privacyscope_server_queue_depth 2",
		"privacyscope_check_symexec_count 1",
		"privacyscope_check_symexec_seconds_total",
		"privacyscope_path_depth_count 1",
		"privacyscope_path_depth_sum 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
}
