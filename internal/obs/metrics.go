package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the aggregating Observer: counters, span durations and value
// distributions accumulate in memory and export as a Snapshot. Safe for
// concurrent use. The zero value is not ready; use NewMetrics.
type Metrics struct {
	start    time.Time
	counters sync.Map // string → *int64
	gauges   sync.Map // string → *int64

	mu    sync.Mutex
	dists map[string]*Dist
	spans map[string]*SpanStats

	evMu   sync.Mutex
	events io.Writer
	nEv    int64
}

// MetricsOption configures a Metrics.
type MetricsOption func(*Metrics)

// WithEventWriter mirrors structured events and span completions to w as
// JSON lines — the -verbose progress stream of cmd/privacyscope. Writes are
// serialized; w need not be concurrency-safe.
func WithEventWriter(w io.Writer) MetricsOption {
	return func(m *Metrics) { m.events = w }
}

// NewMetrics returns an empty aggregating observer.
func NewMetrics(opts ...MetricsOption) *Metrics {
	m := &Metrics{
		start: time.Now(),
		dists: make(map[string]*Dist),
		spans: make(map[string]*SpanStats),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Add bumps a monotonic counter.
func (m *Metrics) Add(name string, delta int64) {
	if c, ok := m.counters.Load(name); ok {
		atomic.AddInt64(c.(*int64), delta)
		return
	}
	c, _ := m.counters.LoadOrStore(name, new(int64))
	atomic.AddInt64(c.(*int64), delta)
}

// Counter returns the current value of a counter (0 when never bumped).
func (m *Metrics) Counter(name string) int64 {
	if c, ok := m.counters.Load(name); ok {
		return atomic.LoadInt64(c.(*int64))
	}
	return 0
}

// SetGauge records the current value of a point-in-time quantity (queue
// depth, jobs in flight). Unlike counters, gauges move both ways; they are
// not part of the Observer interface — only components that own a concrete
// Metrics (the privacyscoped daemon) publish them.
func (m *Metrics) SetGauge(name string, value int64) {
	if g, ok := m.gauges.Load(name); ok {
		atomic.StoreInt64(g.(*int64), value)
		return
	}
	g, _ := m.gauges.LoadOrStore(name, new(int64))
	atomic.StoreInt64(g.(*int64), value)
}

// Gauge returns the last value set for a gauge (0 when never set).
func (m *Metrics) Gauge(name string) int64 {
	if g, ok := m.gauges.Load(name); ok {
		return atomic.LoadInt64(g.(*int64))
	}
	return 0
}

// Observe records one sample of a value distribution.
func (m *Metrics) Observe(name string, value int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.dists[name]
	if !ok {
		d = &Dist{Min: value, Max: value}
		m.dists[name] = d
	}
	d.Count++
	d.Sum += value
	if value < d.Min {
		d.Min = value
	}
	if value > d.Max {
		d.Max = value
	}
}

// StartSpan begins a timed operation.
func (m *Metrics) StartSpan(name string) Span {
	return &metricsSpan{m: m, name: name, start: time.Now()}
}

// Event emits a structured event: counted, and mirrored to the event
// writer when one is configured.
func (m *Metrics) Event(name string, fields ...Field) {
	atomic.AddInt64(&m.nEv, 1)
	m.emit("event", name, 0, fields)
}

type metricsSpan struct {
	m     *Metrics
	name  string
	start time.Time

	fieldMu sync.Mutex
	fields  []Field
}

func (s *metricsSpan) Child(name string) Span {
	return &metricsSpan{m: s.m, name: s.name + "/" + name, start: time.Now()}
}

// Annotate attaches fields to this span instance. Metrics aggregates by
// name, so the fields do not fragment the stats — they only enrich the
// span's completion line on the event stream (-verbose).
func (s *metricsSpan) Annotate(fields ...Field) {
	if len(fields) == 0 {
		return
	}
	s.fieldMu.Lock()
	s.fields = append(s.fields, fields...)
	s.fieldMu.Unlock()
}

func (s *metricsSpan) End() {
	dur := time.Since(s.start).Nanoseconds()
	m := s.m
	m.mu.Lock()
	st, ok := m.spans[s.name]
	if !ok {
		st = &SpanStats{MinNanos: dur, MaxNanos: dur}
		m.spans[s.name] = st
	}
	st.Count++
	st.TotalNanos += dur
	if dur < st.MinNanos {
		st.MinNanos = dur
	}
	if dur > st.MaxNanos {
		st.MaxNanos = dur
	}
	m.mu.Unlock()
	s.fieldMu.Lock()
	fields := s.fields
	s.fieldMu.Unlock()
	m.emit("span", s.name, dur, fields)
}

// eventLine is one JSON line of the -verbose stream.
type eventLine struct {
	// T is the offset since observer creation, in milliseconds.
	T float64 `json:"tMs"`
	// Kind is "event" or "span".
	Kind string `json:"kind"`
	Name string `json:"name"`
	// DurMs is the span duration (spans only).
	DurMs  float64 `json:"durMs,omitempty"`
	Fields []Field `json:"fields,omitempty"`
}

func (m *Metrics) emit(kind, name string, durNanos int64, fields []Field) {
	if m.events == nil {
		return
	}
	line := eventLine{
		T:      float64(time.Since(m.start).Microseconds()) / 1000,
		Kind:   kind,
		Name:   name,
		DurMs:  float64(durNanos) / 1e6,
		Fields: fields,
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	m.evMu.Lock()
	m.events.Write(append(buf, '\n'))
	m.evMu.Unlock()
}

// SpanStats aggregates the completions of one span name.
type SpanStats struct {
	Count      int64 `json:"count"`
	TotalNanos int64 `json:"totalNanos"`
	MinNanos   int64 `json:"minNanos"`
	MaxNanos   int64 `json:"maxNanos"`
}

// Dist aggregates the samples of one value distribution.
type Dist struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// Snapshot is a point-in-time copy of every aggregate, suitable for JSON
// export (the -metrics-json file and the -json envelope's "metrics" key).
type Snapshot struct {
	// Counters maps counter name → value.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps gauge name → last set value.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Spans maps slash-path span name → duration stats.
	Spans map[string]SpanStats `json:"spans"`
	// Dists maps distribution name → sample stats.
	Dists map[string]Dist `json:"distributions,omitempty"`
	// Events counts structured events emitted.
	Events int64 `json:"events"`
}

// Snapshot copies the current aggregates.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters: make(map[string]int64),
		Gauges:   make(map[string]int64),
		Spans:    make(map[string]SpanStats),
		Dists:    make(map[string]Dist),
		Events:   atomic.LoadInt64(&m.nEv),
	}
	m.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = atomic.LoadInt64(v.(*int64))
		return true
	})
	m.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = atomic.LoadInt64(v.(*int64))
		return true
	})
	m.mu.Lock()
	for k, v := range m.spans {
		s.Spans[k] = *v
	}
	for k, v := range m.dists {
		s.Dists[k] = *v
	}
	m.mu.Unlock()
	return s
}

// WriteJSON writes the current snapshot as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}

// CounterNames returns the sorted names of all counters bumped so far —
// convenient for tests and table renderers.
func (m *Metrics) CounterNames() []string {
	var names []string
	m.counters.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}
