package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer is the per-analysis tracing Observer: where Metrics folds span
// completions into per-name aggregates, the Tracer records every span
// *instance* — span ID, parent link (carried by the Span handle, so
// parent/child stays correct when forks end spans on different goroutines),
// start offset, duration, and annotated fields — into a bounded per-trace
// buffer. Events record as zero-duration marks on the same timeline (the
// batch driver's cache-hit/verdict markers).
//
// A Tracer observes ONE analysis (one trace); it is cheap to create, safe
// for concurrent use, and runs next to a Metrics via Multi:
//
//	tr := obs.NewTracer()
//	ob := obs.Multi(metrics, tr)
//	... analyze with ob ...
//	tr.WriteChromeTrace(f) // chrome://tracing / Perfetto loadable
//	tree := tr.Snapshot()  // compact JSON span tree for the envelope
//
// The buffer is bounded (TracerCap by default): past the cap, completions
// degrade to a counted drop (Snapshot.DroppedSpans), never an error and
// never unbounded memory. Counters and distributions are Metrics' business —
// the Tracer ignores Add/Observe for free.
type Tracer struct {
	start   time.Time
	traceID string
	cap     int

	nextID atomic.Int64

	mu      sync.Mutex
	spans   []SpanRecord
	marks   []TraceMark
	lanes   map[int]string
	dropped int64
	mDrop   int64
}

// TracerCap is the default bound on recorded span instances (and,
// separately, marks) per trace.
const TracerCap = 16384

// TracerOption configures a Tracer.
type TracerOption func(*Tracer)

// WithTraceCap overrides the span-buffer bound (n ≤ 0 keeps the default).
func WithTraceCap(n int) TracerOption {
	return func(t *Tracer) {
		if n > 0 {
			t.cap = n
		}
	}
}

// WithTraceID pins the trace ID (e.g. one ingested from a W3C traceparent
// header) instead of generating a fresh one.
func WithTraceID(id string) TracerOption {
	return func(t *Tracer) {
		if id != "" {
			t.traceID = id
		}
	}
}

// NewTracer returns an empty per-analysis tracer with a fresh trace ID.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{
		start: time.Now(),
		cap:   TracerCap,
		lanes: map[int]string{},
	}
	for _, o := range opts {
		o(t)
	}
	if t.traceID == "" {
		t.traceID = NewTraceID()
	}
	return t
}

// TraceID returns the trace's 32-hex-digit identifier.
func (t *Tracer) TraceID() string { return t.traceID }

// SpanRecord is one completed span instance.
type SpanRecord struct {
	// ID identifies the instance within the trace; Parent is 0 for roots.
	ID     int64 `json:"id"`
	Parent int64 `json:"parent,omitempty"`
	// Lane is the timeline lane (Chrome trace tid); 0 unless the span was
	// started through a Lane observer (the batch driver's worker lanes).
	Lane int    `json:"lane,omitempty"`
	Name string `json:"name"`
	// StartUs is the offset since trace start, DurUs the duration, both in
	// microseconds.
	StartUs int64   `json:"startUs"`
	DurUs   int64   `json:"durUs"`
	Fields  []Field `json:"fields,omitempty"`
}

// TraceMark is one instant event on the trace timeline.
type TraceMark struct {
	Name   string  `json:"name"`
	Lane   int     `json:"lane,omitempty"`
	AtUs   int64   `json:"atUs"`
	Fields []Field `json:"fields,omitempty"`
}

// StartSpan begins a root span on lane 0.
func (t *Tracer) StartSpan(name string) Span { return t.startSpan(name, 0, 0) }

// Add is a no-op: counters are aggregate state, the Metrics side of a
// Multi. Keeping it free means a Tracer never taxes the statement loop.
func (t *Tracer) Add(string, int64) {}

// Observe is a no-op, like Add.
func (t *Tracer) Observe(string, int64) {}

// Event records an instant mark at the current offset, bounded like spans.
func (t *Tracer) Event(name string, fields ...Field) { t.mark(name, 0, fields) }

// Lane returns a view of the tracer whose root spans and marks land on the
// given timeline lane (Chrome trace "thread"). The batch driver hands each
// pool worker its own lane, which is what makes pool occupancy and
// stragglers visible in the exported timeline. Lane 0 is the tracer itself.
func (t *Tracer) Lane(id int, name string) Observer {
	t.mu.Lock()
	if name != "" {
		t.lanes[id] = name
	}
	t.mu.Unlock()
	return laneObserver{t: t, lane: id}
}

type laneObserver struct {
	t    *Tracer
	lane int
}

func (l laneObserver) StartSpan(name string) Span { return l.t.startSpan(name, 0, l.lane) }
func (l laneObserver) Add(string, int64)          {}
func (l laneObserver) Observe(string, int64)      {}
func (l laneObserver) Event(name string, fields ...Field) {
	l.t.mark(name, l.lane, fields)
}

func (t *Tracer) startSpan(name string, parent int64, lane int) Span {
	return &tracerSpan{
		t:      t,
		id:     t.nextID.Add(1),
		parent: parent,
		lane:   lane,
		name:   name,
		start:  time.Now(),
	}
}

func (t *Tracer) mark(name string, lane int, fields []Field) {
	at := time.Since(t.start).Microseconds()
	t.mu.Lock()
	if len(t.marks) >= t.cap {
		t.mDrop++
	} else {
		t.marks = append(t.marks, TraceMark{
			Name: name, Lane: lane, AtUs: at, Fields: cloneFields(fields),
		})
	}
	t.mu.Unlock()
}

// tracerSpan is one in-flight span instance. The handle carries the parent
// link, so Child spans stay correctly parented no matter which goroutine
// ends them (the path-worker pool routinely ends forks off-thread).
type tracerSpan struct {
	t      *Tracer
	id     int64
	parent int64
	lane   int
	name   string
	start  time.Time

	mu     sync.Mutex
	fields []Field
}

func (s *tracerSpan) Child(name string) Span {
	return s.t.startSpan(s.name+"/"+name, s.id, s.lane)
}

func (s *tracerSpan) Annotate(fields ...Field) {
	if len(fields) == 0 {
		return
	}
	s.mu.Lock()
	s.fields = append(s.fields, fields...)
	s.mu.Unlock()
}

func (s *tracerSpan) End() {
	dur := time.Since(s.start).Microseconds()
	startUs := s.start.Sub(s.t.start).Microseconds()
	s.mu.Lock()
	fields := s.fields
	s.fields = nil
	s.mu.Unlock()
	name := s.name
	if s.parent != 0 {
		name = lastSeg(name)
	}
	t := s.t
	t.mu.Lock()
	if len(t.spans) >= t.cap {
		t.dropped++
	} else {
		t.spans = append(t.spans, SpanRecord{
			ID: s.id, Parent: s.parent, Lane: s.lane, Name: name,
			StartUs: startUs, DurUs: dur, Fields: fields,
		})
	}
	t.mu.Unlock()
}

// lastSeg strips the aggregate slash-path prefix from child spans: trace
// records carry real parent links, so "check/symexec" records as "symexec"
// under its parent. Root spans keep their full name — a span started cold
// with a slash-path (Metrics-style aggregation naming, e.g.
// "check/witness") stays self-describing when it roots itself.
func lastSeg(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func cloneFields(fields []Field) []Field {
	if len(fields) == 0 {
		return nil
	}
	return append([]Field(nil), fields...)
}

// TraceSpan is one node of the exported span tree.
type TraceSpan struct {
	Name    string       `json:"name"`
	Lane    int          `json:"lane,omitempty"`
	StartUs int64        `json:"startUs"`
	DurUs   int64        `json:"durUs"`
	Fields  []Field      `json:"fields,omitempty"`
	Spans   []*TraceSpan `json:"spans,omitempty"`
}

// TraceSnapshot is the compact JSON form of one trace: the span forest (a
// span whose parent is still open — or was dropped at the cap — roots
// itself), the instant marks, and the drop counts.
type TraceSnapshot struct {
	TraceID string       `json:"traceId"`
	Spans   []*TraceSpan `json:"spans"`
	Marks   []TraceMark  `json:"marks,omitempty"`
	// DroppedSpans / DroppedMarks count records lost to the buffer cap —
	// the bounded buffer's fail-soft: a hot trace loses detail, never
	// correctness and never memory.
	DroppedSpans int64 `json:"droppedSpans,omitempty"`
	DroppedMarks int64 `json:"droppedMarks,omitempty"`
}

// Snapshot assembles the span tree from the records completed so far.
func (t *Tracer) Snapshot() *TraceSnapshot {
	t.mu.Lock()
	records := append([]SpanRecord(nil), t.spans...)
	marks := append([]TraceMark(nil), t.marks...)
	snap := &TraceSnapshot{
		TraceID:      t.traceID,
		Marks:        marks,
		DroppedSpans: t.dropped,
		DroppedMarks: t.mDrop,
	}
	t.mu.Unlock()

	nodes := make(map[int64]*TraceSpan, len(records))
	for _, r := range records {
		nodes[r.ID] = &TraceSpan{
			Name: r.Name, Lane: r.Lane, StartUs: r.StartUs, DurUs: r.DurUs, Fields: r.Fields,
		}
	}
	snap.Spans = []*TraceSpan{}
	for _, r := range records {
		if parent, ok := nodes[r.Parent]; ok && r.Parent != r.ID {
			parent.Spans = append(parent.Spans, nodes[r.ID])
		} else {
			snap.Spans = append(snap.Spans, nodes[r.ID])
		}
	}
	var sortTree func([]*TraceSpan)
	sortTree = func(ss []*TraceSpan) {
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].StartUs < ss[j].StartUs })
		for _, s := range ss {
			sortTree(s.Spans)
		}
	}
	sortTree(snap.Spans)
	return snap
}

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// chrome://tracing and Perfetto load). "X" = complete span, "i" = instant,
// "M" = metadata (lane names).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TsUs  int64          `json:"ts"`
	DurUs int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the trace in Chrome trace-event format:
// `{"traceEvents": [...]}` with one complete ("X") event per span record,
// one instant ("i") event per mark, and thread-name metadata naming each
// lane. Load the file in chrome://tracing or https://ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	records := append([]SpanRecord(nil), t.spans...)
	marks := append([]TraceMark(nil), t.marks...)
	laneNames := make(map[int]string, len(t.lanes))
	for id, name := range t.lanes {
		laneNames[id] = name
	}
	t.mu.Unlock()

	events := make([]chromeEvent, 0, len(records)+len(marks)+len(laneNames)+1)
	usedLanes := map[int]bool{}
	for _, r := range records {
		usedLanes[r.Lane] = true
		events = append(events, chromeEvent{
			Name: r.Name, Cat: "span", Phase: "X",
			TsUs: r.StartUs, DurUs: maxI64(r.DurUs, 1),
			Pid: 1, Tid: r.Lane, Args: fieldArgs(r.Fields),
		})
	}
	for _, m := range marks {
		usedLanes[m.Lane] = true
		events = append(events, chromeEvent{
			Name: m.Name, Cat: "mark", Phase: "i",
			TsUs: m.AtUs, Pid: 1, Tid: m.Lane, Scope: "t",
			Args: fieldArgs(m.Fields),
		})
	}
	// Every registered lane gets its metadata row even when it recorded
	// nothing — an idle pool worker is information, not noise.
	for lane := range laneNames {
		usedLanes[lane] = true
	}
	for lane := range usedLanes {
		name, ok := laneNames[lane]
		if !ok {
			if lane == 0 {
				name = "main"
			} else {
				name = fmt.Sprintf("lane %d", lane)
			}
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: lane,
			Args: map[string]any{"name": name},
		})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Phase == "M" != (events[j].Phase == "M") {
			return events[i].Phase == "M"
		}
		return events[i].TsUs < events[j].TsUs
	})
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData":       map[string]string{"traceId": t.traceID},
	})
}

func fieldArgs(fields []Field) map[string]any {
	if len(fields) == 0 {
		return nil
	}
	args := make(map[string]any, len(fields))
	for _, f := range fields {
		args[f.Key] = f.Value
	}
	return args
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// NewTraceID returns a fresh 16-byte trace ID in lowercase hex — the W3C
// trace-context format.
func NewTraceID() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// Degrade to a time-derived ID rather than failing: trace IDs need
		// uniqueness-in-practice, not cryptographic strength.
		return fmt.Sprintf("%032x", time.Now().UnixNano())
	}
	return hex.EncodeToString(buf[:])
}

// NewSpanID returns a fresh 8-byte span ID in lowercase hex.
func NewSpanID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(buf[:])
}

// ParseTraceparent extracts the trace ID and parent span ID from a W3C
// traceparent header ("00-<32 hex>-<16 hex>-<2 hex>"). ok is false for
// anything malformed (including the all-zero trace ID the spec forbids) —
// callers then mint their own trace ID.
func ParseTraceparent(header string) (traceID, parentID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(header), "-")
	if len(parts) != 4 {
		return "", "", false
	}
	version, tid, pid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || len(tid) != 32 || len(pid) != 16 || len(flags) != 2 {
		return "", "", false
	}
	for _, s := range []string{version, tid, pid, flags} {
		if !isLowerHex(s) {
			return "", "", false
		}
	}
	if version == "ff" || tid == strings.Repeat("0", 32) || pid == strings.Repeat("0", 16) {
		return "", "", false
	}
	return tid, pid, true
}

// FormatTraceparent renders a traceparent header for the given trace and
// span IDs, with the sampled flag set.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

func isLowerHex(s string) bool {
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return len(s) > 0
}
