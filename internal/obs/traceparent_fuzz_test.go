package obs

import (
	"strings"
	"testing"
)

// FuzzTraceparent fuzzes the W3C traceparent codec: Parse must never panic
// on arbitrary header bytes, and every header it accepts must survive a
// Format round-trip — re-rendering the extracted IDs yields a header that
// parses back to exactly the same IDs. The daemon and the coordinator both
// ingest this header straight off the wire, so "never crash, never mangle"
// is a hard requirement.
func FuzzTraceparent(f *testing.F) {
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-00000000000000000000000000000000-b7ad6b7169203331-01")
	f.Add("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add(FormatTraceparent(NewTraceID(), NewSpanID()))
	f.Add("")
	f.Add("00-short-ids-01")
	f.Add("00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01") // uppercase: rejected
	f.Add(strings.Repeat("-", 64))

	f.Fuzz(func(t *testing.T, header string) {
		tid, pid, ok := ParseTraceparent(header)
		if !ok {
			if tid != "" || pid != "" {
				t.Fatalf("rejected header %q still returned IDs (%q, %q)", header, tid, pid)
			}
			return
		}
		if len(tid) != 32 || len(pid) != 16 {
			t.Fatalf("accepted IDs with wrong lengths: trace %q (%d), span %q (%d)", tid, len(tid), pid, len(pid))
		}
		rendered := FormatTraceparent(tid, pid)
		tid2, pid2, ok2 := ParseTraceparent(rendered)
		if !ok2 {
			t.Fatalf("round-trip render %q of accepted header %q does not parse", rendered, header)
		}
		if tid2 != tid || pid2 != pid {
			t.Fatalf("round trip mangled IDs: (%q, %q) -> (%q, %q)", tid, pid, tid2, pid2)
		}
	})
}
