// Package obs is the analyzer's telemetry layer: a lightweight,
// dependency-free observer with wall-clock spans, monotonic counters, value
// distributions, and structured events.
//
// Instrumented code talks to the Observer interface only. The default
// observer is a no-op that costs one interface dispatch and zero
// allocations per call, so the engine's hot paths (one counter bump per
// evaluated statement) pay ~nothing when observability is off. The Metrics
// implementation aggregates everything in memory, is safe for concurrent
// use (WithParallelism analyses share one observer), and exports a
// JSON-serializable Snapshot.
//
// Span hierarchy is encoded in the span name: a child span started with
// Span.Child("symexec") under a span named "check" aggregates under
// "check/symexec". Names are slash-paths rather than an in-memory tree so
// spans may start and end on different goroutines without shared stacks.
//
// See docs/OBSERVABILITY.md for the metric-name registry.
package obs

// Field is one key/value attribute of a structured event.
type Field struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// F constructs a Field.
func F(key, value string) Field { return Field{Key: key, Value: value} }

// Span is an in-flight timed operation. End records the duration under the
// span's slash-path name; Child starts a nested span named
// "<parent>/<name>".
type Span interface {
	Child(name string) Span
	End()
}

// Observer receives telemetry from the analyzer. Implementations must be
// safe for concurrent use. All methods must be cheap enough to call from
// the symbolic engine's statement loop.
type Observer interface {
	// StartSpan begins a timed operation. The returned Span must be
	// ended exactly once.
	StartSpan(name string) Span
	// Add bumps a monotonic counter.
	Add(name string, delta int64)
	// Observe records one sample of a value distribution (count, sum,
	// min, max).
	Observe(name string, value int64)
	// Event emits a structured progress event.
	Event(name string, fields ...Field)
}

// Nop returns the shared no-op observer: every method does nothing and
// allocates nothing.
func Nop() Observer { return nop{} }

// Or returns o, or the no-op observer when o is nil, so instrumented code
// never needs a nil check at the call site.
func Or(o Observer) Observer {
	if o == nil {
		return nop{}
	}
	return o
}

type nop struct{}

type nopSpan struct{}

func (nop) StartSpan(string) Span  { return nopSpan{} }
func (nop) Add(string, int64)      {}
func (nop) Observe(string, int64)  {}
func (nop) Event(string, ...Field) {}

func (nopSpan) Child(string) Span { return nopSpan{} }
func (nopSpan) End()              {}
