// Package obs is the analyzer's telemetry layer: a lightweight,
// dependency-free observer with wall-clock spans, monotonic counters, value
// distributions, and structured events.
//
// Instrumented code talks to the Observer interface only. The default
// observer is a no-op that costs one interface dispatch and zero
// allocations per call, so the engine's hot paths (one counter bump per
// evaluated statement) pay ~nothing when observability is off. The Metrics
// implementation aggregates everything in memory, is safe for concurrent
// use (WithParallelism analyses share one observer), and exports a
// JSON-serializable Snapshot.
//
// Span hierarchy is encoded in the span name: a child span started with
// Span.Child("symexec") under a span named "check" aggregates under
// "check/symexec". Names are slash-paths rather than an in-memory tree so
// spans may start and end on different goroutines without shared stacks.
//
// See docs/OBSERVABILITY.md for the metric-name registry.
package obs

// Field is one key/value attribute of a structured event.
type Field struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// F constructs a Field.
func F(key, value string) Field { return Field{Key: key, Value: value} }

// Span is an in-flight timed operation. End records the duration under the
// span's slash-path name; Child starts a nested span named
// "<parent>/<name>"; Annotate attaches key/value fields to this span
// *instance* — the Metrics observer mirrors them onto the span's event line,
// the Tracer records them on the span record, and the no-op observer
// discards them for free.
type Span interface {
	Child(name string) Span
	Annotate(fields ...Field)
	End()
}

// Observer receives telemetry from the analyzer. Implementations must be
// safe for concurrent use. All methods must be cheap enough to call from
// the symbolic engine's statement loop.
type Observer interface {
	// StartSpan begins a timed operation. The returned Span must be
	// ended exactly once.
	StartSpan(name string) Span
	// Add bumps a monotonic counter.
	Add(name string, delta int64)
	// Observe records one sample of a value distribution (count, sum,
	// min, max).
	Observe(name string, value int64)
	// Event emits a structured progress event.
	Event(name string, fields ...Field)
}

// Nop returns the shared no-op observer: every method does nothing and
// allocates nothing.
func Nop() Observer { return nop{} }

// Or returns o, or the no-op observer when o is nil, so instrumented code
// never needs a nil check at the call site.
func Or(o Observer) Observer {
	if o == nil {
		return nop{}
	}
	return o
}

type nop struct{}

type nopSpan struct{}

func (nop) StartSpan(string) Span  { return nopSpan{} }
func (nop) Add(string, int64)      {}
func (nop) Observe(string, int64)  {}
func (nop) Event(string, ...Field) {}

func (nopSpan) Child(string) Span { return nopSpan{} }
func (nopSpan) Annotate(...Field) {}
func (nopSpan) End()              {}

// Multi fans every Observer call out to each of the given observers — the
// way a run attaches aggregation (Metrics) and per-instance tracing (Tracer)
// side by side without the instrumented code knowing. Nil and no-op entries
// are dropped; zero live observers collapse to Nop() and one passes through
// unchanged, so the fan-out costs nothing unless it is actually fanning out.
func Multi(os ...Observer) Observer {
	live := make([]Observer, 0, len(os))
	for _, o := range os {
		if o == nil || o == Observer(nop{}) {
			continue
		}
		live = append(live, o)
	}
	switch len(live) {
	case 0:
		return nop{}
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Observer

func (m multi) StartSpan(name string) Span {
	sp := make(multiSpan, len(m))
	for i, o := range m {
		sp[i] = o.StartSpan(name)
	}
	return sp
}

func (m multi) Add(name string, delta int64) {
	for _, o := range m {
		o.Add(name, delta)
	}
}

func (m multi) Observe(name string, value int64) {
	for _, o := range m {
		o.Observe(name, value)
	}
}

func (m multi) Event(name string, fields ...Field) {
	for _, o := range m {
		o.Event(name, fields...)
	}
}

type multiSpan []Span

func (s multiSpan) Child(name string) Span {
	c := make(multiSpan, len(s))
	for i, sp := range s {
		c[i] = sp.Child(name)
	}
	return c
}

func (s multiSpan) Annotate(fields ...Field) {
	for _, sp := range s {
		sp.Annotate(fields...)
	}
}

func (s multiSpan) End() {
	for _, sp := range s {
		sp.End()
	}
}
