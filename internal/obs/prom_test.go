package obs

import (
	"bufio"
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// validatePromExposition checks text against the Prometheus 0.0.4 text
// format: legal metric names, a single TYPE declaration per metric (before
// its sample), one parseable float value per sample line.
func validatePromExposition(t *testing.T, text string) (samples map[string]float64) {
	t.Helper()
	samples = make(map[string]float64)
	typed := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			name, kind := parts[2], parts[3]
			if !promNameRe.MatchString(name) {
				t.Fatalf("illegal metric name %q", name)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" && kind != "summary" && kind != "untyped" {
				t.Fatalf("illegal TYPE %q in %q", kind, line)
			}
			if prev, dup := typed[name]; dup {
				t.Fatalf("duplicate TYPE for %s (%s then %s) — invalid exposition", name, prev, kind)
			}
			typed[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := fields[0]
		if !promNameRe.MatchString(name) {
			t.Fatalf("illegal metric name in sample %q", line)
		}
		if _, ok := typed[name]; !ok {
			t.Fatalf("sample %q has no preceding TYPE", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if _, dup := samples[name]; dup {
			t.Fatalf("metric %s sampled twice", name)
		}
		samples[name] = v
	}
	return samples
}

// TestWritePrometheusValidExposition feeds the exposition writer the real
// registry shapes — slashes in span paths, dots and dashes in counter
// names — and validates the output against Prometheus naming rules.
func TestWritePrometheusValidExposition(t *testing.T) {
	m := NewMetrics()
	m.Add("symexec.steps", 41)
	m.Add("core.findings.timing-channel", 2)
	m.Add("server.cache.hits", 7)
	m.SetGauge("server.queue.depth", 3)
	sp := m.StartSpan("check")
	sp.Child("symexec").End()
	sp.End()
	m.StartSpan("server/analyze").End()
	m.Observe("solver.model.width", 17)

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := validatePromExposition(t, buf.String())

	for name, want := range map[string]float64{
		"privacyscope_symexec_steps":                41,
		"privacyscope_core_findings_timing_channel": 2,
		"privacyscope_server_cache_hits":            7,
		"privacyscope_server_queue_depth":           3,
		"privacyscope_check_count":                  1,
		"privacyscope_check_symexec_count":          1,
		"privacyscope_server_analyze_count":         1,
		"privacyscope_solver_model_width_count":     1,
		"privacyscope_solver_model_width_sum":       17,
	} {
		if got, ok := samples[name]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
}

// TestWritePrometheusCollisions: registry names that fold to the same
// Prometheus name must not emit duplicate series — the second claimant gets
// a _2 suffix. Cross-family too: a counter occupying a span's derived
// _count name pushes the span family to a suffixed base.
func TestWritePrometheusCollisions(t *testing.T) {
	m := NewMetrics()
	m.Add("check.degraded", 1)
	m.Add("check/degraded", 2) // folds identically
	m.Add("check_count", 5)    // occupies span "check"'s _count series
	m.StartSpan("check").End()

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := validatePromExposition(t, buf.String())

	if samples["privacyscope_check_degraded"]+samples["privacyscope_check_degraded_2"] != 3 {
		t.Errorf("folded twins missing: %v", samples)
	}
	if samples["privacyscope_check_count"] != 5 {
		t.Errorf("counter check_count = %v, want 5", samples["privacyscope_check_count"])
	}
	// The span family moved wholesale to a suffixed base.
	if _, ok := samples["privacyscope_check_2_count"]; !ok {
		t.Errorf("span family not re-based: %v", samples)
	}
	if _, ok := samples["privacyscope_check_2_seconds_total"]; !ok {
		t.Errorf("span family seconds_total missing: %v", samples)
	}
}

// TestWritePrometheusRealRun validates the exposition of an actual daemon
// metrics object exercised by the obs package tests' helpers.
func TestWritePrometheusEmptyIsValid(t *testing.T) {
	var buf bytes.Buffer
	if err := NewMetrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	validatePromExposition(t, buf.String())
}
