package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition of a Metrics: the /metrics endpoint of the
// privacyscoped daemon. Counters map to prometheus counters, gauges to
// gauges, spans to a count/sum(seconds)/max(seconds) triple (the per-phase
// latency view), and distributions to a count/sum/min/max quadruple. Metric
// names are the registry names of docs/OBSERVABILITY.md with a
// "privacyscope_" prefix and non-alphanumeric runes folded to '_':
// "server.cache.hits" → privacyscope_server_cache_hits.

// promName folds a registry name into a legal Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*; the "privacyscope_" prefix also covers names
// that would otherwise start with a digit).
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("privacyscope_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promNamer hands out folded names while guaranteeing no two registry names
// collide after folding ('.', '/', '-' all fold to '_', so "check.degraded"
// and "check/degraded" would otherwise emit the same series with two TYPE
// lines — invalid exposition). A collision takes a _2/_3… suffix; families
// with derived series (spans, dists) reserve every derived name too, so a
// counter named "check_count" cannot collide with span "check"'s _count.
type promNamer struct {
	used map[string]bool
}

func newPromNamer() *promNamer { return &promNamer{used: make(map[string]bool)} }

func (pn *promNamer) claim(name string, suffixes ...string) string {
	base := promName(name)
	cand := base
	for n := 2; ; n++ {
		free := !pn.used[cand]
		for _, sfx := range suffixes {
			if pn.used[cand+sfx] {
				free = false
			}
		}
		if free {
			break
		}
		cand = fmt.Sprintf("%s_%d", base, n)
	}
	pn.used[cand] = true
	for _, sfx := range suffixes {
		pn.used[cand+sfx] = true
	}
	return cand
}

// WritePrometheus writes the current snapshot in the Prometheus text
// exposition format (version 0.0.4).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()
	pn := newPromNamer()
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := pn.claim(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := pn.claim(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", p, p, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Spans {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st := s.Spans[n]
		p := pn.claim(n, "_count", "_seconds_total", "_seconds_max")
		if _, err := fmt.Fprintf(w,
			"# TYPE %s_count counter\n%s_count %d\n"+
				"# TYPE %s_seconds_total counter\n%s_seconds_total %g\n"+
				"# TYPE %s_seconds_max gauge\n%s_seconds_max %g\n",
			p, p, st.Count,
			p, p, float64(st.TotalNanos)/1e9,
			p, p, float64(st.MaxNanos)/1e9); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Dists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := s.Dists[n]
		p := pn.claim(n, "_count", "_sum", "_min", "_max")
		if _, err := fmt.Fprintf(w,
			"# TYPE %s_count counter\n%s_count %d\n"+
				"# TYPE %s_sum counter\n%s_sum %d\n"+
				"# TYPE %s_min gauge\n%s_min %d\n"+
				"# TYPE %s_max gauge\n%s_max %d\n",
			p, p, d.Count, p, p, d.Sum, p, p, d.Min, p, p, d.Max); err != nil {
			return err
		}
	}
	return nil
}
