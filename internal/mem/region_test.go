package mem

import (
	"testing"

	"privacyscope/internal/sym"
	"privacyscope/internal/taint"
)

func newSymBuilder() *sym.Builder {
	var alloc taint.Allocator
	return sym.NewBuilder(&alloc)
}

func TestManagerHashConsing(t *testing.T) {
	m := NewManager()
	a := m.Var("x", 0)
	b := m.Var("x", 0)
	if a != b {
		t.Error("same variable must yield same region")
	}
	if m.Var("x", 1) == a {
		t.Error("different frame must yield different region")
	}
	if m.Var("y", 0) == a {
		t.Error("different name must yield different region")
	}

	e1 := m.Element(a, 0)
	e2 := m.Element(a, 0)
	if e1 != e2 {
		t.Error("same element must be hash-consed")
	}
	if m.Element(a, 1) == e1 {
		t.Error("different index must differ")
	}

	f1 := m.Field(a, "weight")
	f2 := m.Field(a, "weight")
	if f1 != f2 {
		t.Error("same field must be hash-consed")
	}

	sb := newSymBuilder()
	p := sb.FreshSecret("secrets")
	s1 := m.SymBlock(p, "secrets", true)
	s2 := m.SymBlock(p, "secrets", true)
	if s1 != s2 {
		t.Error("same pointee must yield same SymRegion")
	}
	if !s1.SecretSource {
		t.Error("SecretSource lost")
	}
	if m.RegionCount() != 7 {
		t.Errorf("RegionCount = %d, want 7", m.RegionCount())
	}
}

func TestRegionStringsAndKeys(t *testing.T) {
	m := NewManager()
	sb := newSymBuilder()
	p := sb.FreshSecret("secrets")
	blk := m.SymBlock(p, "secrets", true)
	el := m.Element(blk, 1)
	if el.String() != "reg0[1]" {
		t.Errorf("element String = %q, want reg0[1]", el.String())
	}
	v := m.Var("temporary", 0)
	fl := m.Field(v, "bias")
	if fl.Key() == el.Key() {
		t.Error("distinct regions must have distinct keys")
	}
	if Root(el) != blk {
		t.Error("Root of element must be the block")
	}
	if Root(v) != v {
		t.Error("Root of var is itself")
	}
	if el.Super() != blk || fl.Super() != v {
		t.Error("Super links wrong")
	}
	if v.Super() != nil || blk.Super() != nil {
		t.Error("roots must have nil Super")
	}
}

func TestStoreBasics(t *testing.T) {
	m := NewManager()
	st := NewStore()
	x := m.Var("x", 0)
	if _, ok := st.Lookup(x); ok {
		t.Error("empty store must miss")
	}
	st.Bind(x, Scalar{E: sym.IntConst{V: 42}})
	v, ok := st.Lookup(x)
	if !ok {
		t.Fatal("Lookup after Bind failed")
	}
	if v.String() != "42" {
		t.Errorf("value = %q", v.String())
	}
	st.Bind(x, Undefined{})
	v, _ = st.Lookup(x)
	if _, isUndef := v.(Undefined); !isUndef {
		t.Error("rebind must overwrite")
	}
	st.Remove(x)
	if st.Len() != 0 {
		t.Error("Remove failed")
	}
}

func TestStoreCloneIndependent(t *testing.T) {
	m := NewManager()
	st := NewStore()
	x := m.Var("x", 0)
	st.Bind(x, Scalar{E: sym.IntConst{V: 1}})
	c := st.Clone()
	c.Bind(x, Scalar{E: sym.IntConst{V: 2}})
	v, _ := st.Lookup(x)
	if v.String() != "1" {
		t.Error("clone mutation leaked into original")
	}
}

func TestStoreBindingsSorted(t *testing.T) {
	m := NewManager()
	st := NewStore()
	sb := newSymBuilder()
	blk := m.SymBlock(sb.FreshPublic("p"), "p", false)
	st.Bind(m.Element(blk, 2), Scalar{E: sym.IntConst{V: 2}})
	st.Bind(m.Element(blk, 0), Scalar{E: sym.IntConst{V: 0}})
	st.Bind(m.Element(blk, 1), Scalar{E: sym.IntConst{V: 1}})
	bs := st.Bindings()
	if len(bs) != 3 {
		t.Fatalf("Bindings len = %d", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i-1].Region.Key() > bs[i].Region.Key() {
			t.Error("Bindings not sorted")
		}
	}
}

func TestSubRegionsOf(t *testing.T) {
	m := NewManager()
	st := NewStore()
	sb := newSymBuilder()
	blk := m.SymBlock(sb.FreshSecret("secrets"), "secrets", true)
	other := m.Var("x", 0)
	st.Bind(m.Element(blk, 0), Scalar{E: sym.IntConst{V: 1}})
	st.Bind(m.Element(blk, 1), Scalar{E: sym.IntConst{V: 2}})
	st.Bind(other, Scalar{E: sym.IntConst{V: 3}})
	subs := st.SubRegionsOf(blk)
	if len(subs) != 2 {
		t.Fatalf("SubRegionsOf = %v", subs)
	}
	for _, r := range subs {
		if Root(r) != blk {
			t.Error("wrong root in SubRegionsOf result")
		}
	}
}

func TestEnv(t *testing.T) {
	m := NewManager()
	env := NewEnv()
	r := m.Var("secrets", 0)
	env.Bind("secrets", r)
	got, ok := env.Lookup("secrets")
	if !ok || got != r {
		t.Error("env Lookup failed")
	}
	if _, ok := env.Lookup("missing"); ok {
		t.Error("missing lvalue should miss")
	}
	c := env.Clone()
	c.Bind("x", m.Var("x", 0))
	if env.Len() != 1 || c.Len() != 2 {
		t.Error("clone independence broken")
	}
	bs := c.Bindings()
	if len(bs) != 2 || bs[0].LValue > bs[1].LValue {
		t.Error("Bindings not sorted")
	}
}

func TestSValStrings(t *testing.T) {
	m := NewManager()
	r := m.Var("x", 0)
	if (Loc{R: r}).String() != "&reg0" {
		t.Errorf("Loc String = %q", Loc{R: r}.String())
	}
	if (Undefined{}).String() != "undef" {
		t.Error("Undefined String wrong")
	}
	if (Scalar{E: sym.IntConst{V: 7}}).String() != "7" {
		t.Error("Scalar String wrong")
	}
}
