// Package mem implements the region-based memory model used by the MiniC
// symbolic execution engine, following the Clang Static Analyzer design the
// paper describes in §VI-B: lvalue expressions map to memory regions via an
// environment, regions map to (symbolic) values via a store, and regions can
// be structured — an ElementRegion is a subregion of its array's region, a
// FieldRegion of its struct's region, and a SymRegion stands for the unknown
// block a symbolic pointer points to.
package mem

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"privacyscope/internal/sym"
)

// Region is an abstract memory object. Regions are hash-consed by a Manager,
// so two regions are the same object iff they denote the same memory.
type Region interface {
	// Key is a stable identifier usable as a map key.
	Key() string
	// String renders the region in the paper's Table IV notation
	// (reg0, reg0[1], …).
	String() string
	// Super returns the parent region (nil for roots).
	Super() Region
}

// VarRegion is the region of a named program variable in some frame.
type VarRegion struct {
	id    int
	Name  string
	Frame int // call-frame depth, distinguishing recursive locals
}

// Key implements Region.
func (r *VarRegion) Key() string { return "v" + strconv.Itoa(r.id) }

// String implements Region.
func (r *VarRegion) String() string { return "reg" + strconv.Itoa(r.id) }

// Super implements Region; variable regions are roots.
func (r *VarRegion) Super() Region { return nil }

// SymRegion represents the unknown memory block pointed to by a symbolic
// pointer (e.g. an [in] pointer parameter of an ECALL). Its Pointee symbol
// identifies the block; element reads produce fresh symbols per index.
type SymRegion struct {
	id      int
	Pointee *sym.Symbol // identity of the unknown block
	// SecretSource is non-zero when the block holds secret input; element
	// reads then mint secret symbols.
	SecretSource bool
	DisplayName  string // e.g. "secrets" — used in Table IV style output
}

// Key implements Region.
func (r *SymRegion) Key() string { return "sym" + strconv.Itoa(r.id) }

// String implements Region.
func (r *SymRegion) String() string { return "SymRegion{" + r.DisplayName + "}" }

// Super implements Region; symbolic regions are roots.
func (r *SymRegion) Super() Region { return nil }

// ElementRegion is the subregion for array element super[index].
type ElementRegion struct {
	super Region
	Index int // concrete element index
}

// Key implements Region.
func (r *ElementRegion) Key() string {
	return r.super.Key() + "[" + strconv.Itoa(r.Index) + "]"
}

// String implements Region.
func (r *ElementRegion) String() string {
	return regionBase(r.super) + "[" + strconv.Itoa(r.Index) + "]"
}

// Super implements Region.
func (r *ElementRegion) Super() Region { return r.super }

// FieldRegion is the subregion for struct field super.Field.
type FieldRegion struct {
	super Region
	Field string
}

// Key implements Region.
func (r *FieldRegion) Key() string { return r.super.Key() + "." + r.Field }

// String implements Region.
func (r *FieldRegion) String() string { return regionBase(r.super) + "." + r.Field }

// Super implements Region.
func (r *FieldRegion) Super() Region { return r.super }

// regionBase renders the super-region part of a derived region's name in
// Table IV notation (the paper writes reg0[1] even when reg0 is symbolic).
func regionBase(r Region) string {
	switch v := r.(type) {
	case *VarRegion:
		return v.String()
	case *SymRegion:
		return "reg" + strconv.Itoa(v.id)
	default:
		return r.String()
	}
}

// Root walks Super links up to the root region.
func Root(r Region) Region {
	for r.Super() != nil {
		r = r.Super()
	}
	return r
}

// Manager hash-conses regions so identical denotations share one object.
// It is safe for concurrent use: parallel path workers exploring one entry
// point share a single manager, and region identity (pointer equality)
// must hold across workers.
// Manager hash-conses regions, mirroring the sym.Interner contract: one
// canonical *Region per key, so region equality throughout the engine is
// pointer equality. Reads are lock-free (sync.Map, shared read-mostly
// across path workers); creation takes a short mutex so numeric region IDs
// stay dense and deterministic under sequential exploration.
type Manager struct {
	mu     sync.Mutex // guards nextID and the create path
	nextID int
	count  atomic.Int64
	vars   sync.Map // key → *VarRegion
	symRgs sync.Map // key → *SymRegion
	elems  sync.Map // key → *ElementRegion
	fields sync.Map // key → *FieldRegion
}

// NewManager returns an empty region manager.
func NewManager() *Manager {
	return &Manager{}
}

// Var returns the region of variable name in the given frame.
func (m *Manager) Var(name string, frame int) *VarRegion {
	k := name + "@" + strconv.Itoa(frame)
	if r, ok := m.vars.Load(k); ok {
		return r.(*VarRegion)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.vars.Load(k); ok {
		return r.(*VarRegion)
	}
	r := &VarRegion{id: m.nextID, Name: name, Frame: frame}
	m.nextID++
	m.vars.Store(k, r)
	m.count.Add(1)
	return r
}

// SymBlock returns the SymRegion for the block identified by pointee.
func (m *Manager) SymBlock(pointee *sym.Symbol, display string, secret bool) *SymRegion {
	k := strconv.Itoa(pointee.ID)
	if r, ok := m.symRgs.Load(k); ok {
		return r.(*SymRegion)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.symRgs.Load(k); ok {
		return r.(*SymRegion)
	}
	r := &SymRegion{id: m.nextID, Pointee: pointee, DisplayName: display, SecretSource: secret}
	m.nextID++
	m.symRgs.Store(k, r)
	m.count.Add(1)
	return r
}

// Element returns the ElementRegion super[index].
func (m *Manager) Element(super Region, index int) *ElementRegion {
	k := super.Key() + "[" + strconv.Itoa(index) + "]"
	if r, ok := m.elems.Load(k); ok {
		return r.(*ElementRegion)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.elems.Load(k); ok {
		return r.(*ElementRegion)
	}
	r := &ElementRegion{super: super, Index: index}
	m.elems.Store(k, r)
	m.count.Add(1)
	return r
}

// Field returns the FieldRegion super.field.
func (m *Manager) Field(super Region, field string) *FieldRegion {
	k := super.Key() + "." + field
	if r, ok := m.fields.Load(k); ok {
		return r.(*FieldRegion)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.fields.Load(k); ok {
		return r.(*FieldRegion)
	}
	r := &FieldRegion{super: super, Field: field}
	m.fields.Store(k, r)
	m.count.Add(1)
	return r
}

// RegionCount returns how many distinct regions have been created, a metric
// the Table IV bench reports.
func (m *Manager) RegionCount() int {
	return int(m.count.Load())
}

// SVal is a symbolic value stored in the store or produced by expression
// evaluation: a scalar symbolic expression, a location (region address), or
// undefined.
type SVal interface {
	isSVal()
	String() string
}

// Scalar wraps a symbolic scalar expression.
type Scalar struct {
	E sym.Expr
}

func (Scalar) isSVal() {}

// String implements SVal.
func (s Scalar) String() string { return s.E.String() }

// Loc is the address of a region (a pointer value).
type Loc struct {
	R Region
}

func (Loc) isSVal() {}

// String implements SVal.
func (l Loc) String() string { return "&" + l.R.String() }

// Undefined is the value of uninitialized memory.
type Undefined struct{}

func (Undefined) isSVal() {}

// String implements SVal.
func (Undefined) String() string { return "undef" }

// Store maps regions to SVals (σ in the paper's state 4-tuple). It is a
// persistent copy-on-write structure: Clone is O(1) in the number of
// bindings, making state forks cheap enough for parallel path exploration.
//
// Internally a store is a chain of frozen layers (oldest first, shared
// between forked states, never mutated again) plus one private mutable top
// layer. Lookups scan top-down; deletions shadow older layers with a
// tombstone (an entry with a nil val). A single store value is still owned
// by exactly one exploration state at a time — only the *frozen* layers are
// shared — so per-store operations need no lock.
type Store struct {
	frozen []map[string]entry // immutable layers, oldest first
	top    map[string]entry   // private mutable layer
	count  int                // live bindings visible through all layers
}

type entry struct {
	region Region
	val    SVal // nil marks a tombstone shadowing a frozen binding
}

// flattenDepth is the frozen-chain length past which Clone collapses the
// layers into one map, bounding lookup cost on deeply forked paths.
const flattenDepth = 32

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{top: make(map[string]entry)}
}

// lookupEntry finds the visible entry for key, newest layer first.
func (s *Store) lookupEntry(k string) (entry, bool) {
	if e, ok := s.top[k]; ok {
		return e, true
	}
	for i := len(s.frozen) - 1; i >= 0; i-- {
		if e, ok := s.frozen[i][k]; ok {
			return e, true
		}
	}
	return entry{}, false
}

// Bind records region → val.
func (s *Store) Bind(r Region, v SVal) {
	k := r.Key()
	if e, ok := s.lookupEntry(k); !ok || e.val == nil {
		s.count++
	}
	s.top[k] = entry{region: r, val: v}
}

// Lookup returns the value bound to r, or (nil, false).
func (s *Store) Lookup(r Region) (SVal, bool) {
	e, ok := s.lookupEntry(r.Key())
	if !ok || e.val == nil {
		return nil, false
	}
	return e.val, true
}

// Remove deletes any binding for r.
func (s *Store) Remove(r Region) {
	k := r.Key()
	e, ok := s.lookupEntry(k)
	if !ok || e.val == nil {
		return
	}
	s.count--
	delete(s.top, k)
	// A frozen layer may still hold the binding; shadow it.
	for i := len(s.frozen) - 1; i >= 0; i-- {
		if fe, ok := s.frozen[i][k]; ok {
			if fe.val != nil {
				s.top[k] = entry{region: r, val: nil}
			}
			return
		}
	}
}

// Len returns the number of bindings.
func (s *Store) Len() int { return s.count }

// Clone returns an independent copy for state forking. The receiver's top
// layer is frozen (both stores keep reading it; neither writes it again)
// and each store gets a fresh private top, so cloning costs O(layers)
// rather than O(bindings).
func (s *Store) Clone() *Store {
	if len(s.frozen) >= flattenDepth {
		s.flatten()
	}
	if len(s.top) > 0 {
		chain := make([]map[string]entry, len(s.frozen), len(s.frozen)+1)
		copy(chain, s.frozen)
		s.frozen = append(chain, s.top)
		s.top = make(map[string]entry)
	}
	c := &Store{
		frozen: make([]map[string]entry, len(s.frozen)),
		top:    make(map[string]entry),
		count:  s.count,
	}
	copy(c.frozen, s.frozen)
	return c
}

// flatten merges the frozen chain into a single layer, applying tombstones.
func (s *Store) flatten() {
	merged := make(map[string]entry)
	for _, layer := range s.frozen {
		for k, e := range layer {
			if e.val == nil {
				delete(merged, k)
			} else {
				merged[k] = e
			}
		}
	}
	s.frozen = []map[string]entry{merged}
}

// visible merges all layers into the currently visible binding set.
func (s *Store) visible() map[string]entry {
	m := make(map[string]entry, s.count)
	for _, layer := range s.frozen {
		for k, e := range layer {
			if e.val == nil {
				delete(m, k)
			} else {
				m[k] = e
			}
		}
	}
	for k, e := range s.top {
		if e.val == nil {
			delete(m, k)
		} else {
			m[k] = e
		}
	}
	return m
}

// Bindings returns all (region, value) pairs sorted by region key, for
// deterministic rendering of Table IV rows.
func (s *Store) Bindings() []struct {
	Region Region
	Val    SVal
} {
	vals := s.visible()
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct {
		Region Region
		Val    SVal
	}, 0, len(keys))
	for _, k := range keys {
		e := vals[k]
		out = append(out, struct {
			Region Region
			Val    SVal
		}{e.region, e.val})
	}
	return out
}

// SubRegionsOf returns the bound regions whose root is the given root,
// used to smear taint over a region when a symbolic index is written.
func (s *Store) SubRegionsOf(root Region) []Region {
	var out []Region
	for _, e := range s.visible() {
		if Root(e.region) == root && e.region != root {
			out = append(out, e.region)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Env is the environment mapping lvalue expressions (by display text) to
// regions, as in the paper's state 4-tuple. It exists for rendering Table IV
// and for debugging; the engine itself resolves lvalues structurally. One
// Env is shared across all path workers of an entry point, so it is
// internally locked.
type Env struct {
	mu sync.Mutex
	m  map[string]Region
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{m: make(map[string]Region)}
}

// Bind records lvalue text → region.
func (e *Env) Bind(lvalue string, r Region) {
	e.mu.Lock()
	e.m[lvalue] = r
	e.mu.Unlock()
}

// Lookup returns the region for an lvalue.
func (e *Env) Lookup(lvalue string) (Region, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.m[lvalue]
	return r, ok
}

// Len returns the number of bindings.
func (e *Env) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.m)
}

// Clone returns an independent copy.
func (e *Env) Clone() *Env {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := &Env{m: make(map[string]Region, len(e.m))}
	for k, v := range e.m {
		c.m[k] = v
	}
	return c
}

// Bindings returns (lvalue, region) pairs sorted by lvalue.
func (e *Env) Bindings() []struct {
	LValue string
	Region Region
} {
	e.mu.Lock()
	defer e.mu.Unlock()
	keys := make([]string, 0, len(e.m))
	for k := range e.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct {
		LValue string
		Region Region
	}, 0, len(keys))
	for _, k := range keys {
		out = append(out, struct {
			LValue string
			Region Region
		}{k, e.m[k]})
	}
	return out
}

// String renders a compact description.
func (e *Env) String() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return fmt.Sprintf("env(%d lvalues)", len(e.m))
}
