// Package mlsuite holds the evaluation workloads of the paper: MiniC ports
// of the three open-source ML modules analyzed in §VI (LinearRegression,
// Kmeans, Recommender — paper refs [27]–[29]), their EDL interface files,
// deliberately injected malicious variants (the §VI-D-2 case study), Go
// reference implementations of the same algorithms, and deterministic
// synthetic workload generators.
//
// The ports are sized to match Table V (LinearRegression ≈161 LoC,
// Kmeans ≈179 LoC, Recommender ≈117 LoC) and written against the MiniC
// subset: fixed #define problem sizes, no dynamic allocation.
package mlsuite

// LinRegC is the LinearRegression enclave module: ordinary least squares
// over N training pairs. Its outputs — intercept, slope and the training
// error — are aggregates over all inputs (⊤ in the taint lattice), so the
// module satisfies nonreversibility; the paper reports no pre-existing
// violations in it.
const LinRegC = `/*
 * LinearRegression — simple (univariate) ordinary least squares,
 * ported into an SGX enclave module from the open-source C
 * implementation the paper evaluates ([28]).
 *
 * The enclave receives the private training set through the [in]
 * parameters xs and ys, fits y = b0 + b1*x, and returns the model
 * through the [out] parameter:
 *
 *   model[0] = b0   (intercept)
 *   model[1] = b1   (slope)
 *   model[2] = SSE  (sum of squared residuals on the training set)
 *
 * All reported values are aggregates over the full training set, so no
 * single training point is recoverable from them.
 */

#define N 8

/* lr_sum accumulates a column. */
float lr_sum(float *xs)
{
    float total = 0.0;
    for (int i = 0; i < N; i++) {
        total += xs[i];
    }
    return total;
}

/* lr_mean is the column average. */
float lr_mean(float *xs)
{
    return lr_sum(xs) / N;
}

/* lr_sq_dev is the sum of squared deviations from m. */
float lr_sq_dev(float *xs, float m)
{
    float total = 0.0;
    for (int i = 0; i < N; i++) {
        float d = xs[i] - m;
        total += d * d;
    }
    return total;
}

/* lr_co_dev is the sum of co-deviations of the two columns. */
float lr_co_dev(float *xs, float *ys, float mx, float my)
{
    float total = 0.0;
    for (int i = 0; i < N; i++) {
        total += (xs[i] - mx) * (ys[i] - my);
    }
    return total;
}

/* lr_slope computes b1 = cov(x, y) / var(x). */
float lr_slope(float *xs, float *ys, float mx, float my)
{
    float cov = lr_co_dev(xs, ys, mx, my);
    float var = lr_sq_dev(xs, mx);
    return cov / var;
}

/* lr_intercept computes b0 = mean(y) - b1 * mean(x). */
float lr_intercept(float mx, float my, float b1)
{
    return my - b1 * mx;
}

/* lr_predict evaluates the fitted line at x. */
float lr_predict(float b0, float b1, float x)
{
    return b0 + b1 * x;
}

/* lr_sse is the residual sum of squares of the fit. */
float lr_sse(float *xs, float *ys, float b0, float b1)
{
    float total = 0.0;
    for (int i = 0; i < N; i++) {
        float r = ys[i] - lr_predict(b0, b1, xs[i]);
        total += r * r;
    }
    return total;
}

/* lr_sst is the total sum of squares of the response column. */
float lr_sst(float *ys, float my)
{
    return lr_sq_dev(ys, my);
}

/* lr_r2 is the coefficient of determination, 1 - SSE/SST. */
float lr_r2(float sse, float sst)
{
    return 1.0 - sse / sst;
}

/* lr_stddev is the (population) standard deviation of a column. */
float lr_stddev(float *xs, float m)
{
    return sqrt(lr_sq_dev(xs, m) / N);
}

/* lr_rmse is the root mean squared training error. */
float lr_rmse(float sse)
{
    return sqrt(sse / N);
}

/* lr_standardize rescales a column in place to zero mean, unit sd. */
void lr_standardize(float *xs)
{
    float m = lr_mean(xs);
    float sd = lr_stddev(xs, m);
    for (int i = 0; i < N; i++) {
        xs[i] = (xs[i] - m) / sd;
    }
}

/* ECALL: train on the private data and emit the model. */
int enclave_train_linreg(float *xs, float *ys, float *model)
{
    float mx = lr_mean(xs);
    float my = lr_mean(ys);
    float b1 = lr_slope(xs, ys, mx, my);
    float b0 = lr_intercept(mx, my, b1);
    float sse = lr_sse(xs, ys, b0, b1);
    float sst = lr_sst(ys, my);
    model[0] = b0;
    model[1] = b1;
    model[2] = sse;
    model[3] = lr_r2(sse, sst);
    model[4] = lr_rmse(sse);
    return 0;
}

/* ECALL: score a public query point against the trained model. */
float enclave_predict_linreg(float *model, float x)
{
    return lr_predict(model[0], model[1], x);
}
`

// LinRegEDL is the interface file for the LinearRegression enclave.
const LinRegEDL = `
enclave {
    trusted {
        public int enclave_train_linreg([in] float *xs, [in] float *ys, [out] float *model);
        public float enclave_predict_linreg([in] float *model, float x);
    };
    untrusted {
        void ocall_print([in, string] const char *str);
    };
};
`

// LinRegN is the training-set size baked into the port.
const LinRegN = 8

// MaliciousLinRegC adds an intentionally injected exfiltration to the
// clean module: the first raw training point is copied into a spare model
// slot. PrivacyScope must flag model[3] and nothing new elsewhere.
const MaliciousLinRegC = LinRegC + `
/* ECALL: the same training entry point with injected exfiltration. */
int enclave_train_linreg_evil(float *xs, float *ys, float *model)
{
    enclave_train_linreg(xs, ys, model);
    /* injected: smuggle a raw sample through an unused model slot */
    model[5] = xs[0];
    return 0;
}
`

// MaliciousLinRegEDL extends the interface with the trojaned entry point.
const MaliciousLinRegEDL = `
enclave {
    trusted {
        public int enclave_train_linreg([in] float *xs, [in] float *ys, [out] float *model);
        public int enclave_train_linreg_evil([in] float *xs, [in] float *ys, [out] float *model);
        public float enclave_predict_linreg([in] float *model, float x);
    };
};
`
