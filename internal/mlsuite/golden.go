package mlsuite

import (
	"errors"
	"fmt"
)

// This file holds Go reference implementations of the three algorithms.
// They serve two purposes: realistic workloads for the examples, and
// differential-testing oracles for the MiniC ports (same formulas, same
// seeding, same tie-breaking).

// ErrBadInput reports malformed training data.
var ErrBadInput = errors.New("mlsuite: bad input")

// LinearModel is a fitted univariate OLS model.
type LinearModel struct {
	Intercept float64
	Slope     float64
	SSE       float64
}

// FitLinear fits y = b0 + b1·x by ordinary least squares, mirroring the
// MiniC port exactly.
func FitLinear(xs, ys []float64) (*LinearModel, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return nil, fmt.Errorf("%w: need ≥2 paired samples", ErrBadInput)
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, varx float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		varx += (xs[i] - mx) * (xs[i] - mx)
	}
	if varx == 0 {
		return nil, fmt.Errorf("%w: zero variance in x", ErrBadInput)
	}
	m := &LinearModel{Slope: cov / varx}
	m.Intercept = my - m.Slope*mx
	for i := range xs {
		r := ys[i] - m.Predict(xs[i])
		m.SSE += r * r
	}
	return m, nil
}

// Predict evaluates the fitted line.
func (m *LinearModel) Predict(x float64) float64 {
	return m.Intercept + m.Slope*x
}

// KMeans runs Lloyd's algorithm with the same conventions as the MiniC
// port: centroids seeded from the first k points, strict-< nearest
// assignment (ties to the later centroid), empty clusters keep their
// centroid. Points are row vectors; all rows must share a dimension.
func KMeans(points [][]float64, k, iters int) ([][]float64, []int, error) {
	if k <= 0 || len(points) < k {
		return nil, nil, fmt.Errorf("%w: need ≥k points", ErrBadInput)
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, nil, fmt.Errorf("%w: ragged points", ErrBadInput)
		}
	}
	cents := make([][]float64, k)
	for i := range cents {
		cents[i] = append([]float64(nil), points[i]...)
	}
	labels := make([]int, len(points))
	for it := 0; it < iters; it++ {
		for i, p := range points {
			best, bestK := dist2(p, cents[0]), 0
			for c := 1; c < k; c++ {
				if d := dist2(p, cents[c]); !(best < d) {
					// Matches the port's "if (d0 < d1) 0 else 1"
					// tie-breaking toward the later centroid.
					best, bestK = d, c
				}
			}
			labels[i] = bestK
		}
		for c := 0; c < k; c++ {
			sum := make([]float64, dim)
			count := 0
			for i, p := range points {
				if labels[i] != c {
					continue
				}
				count++
				for j, v := range p {
					sum[j] += v
				}
			}
			if count == 0 {
				continue
			}
			for j := range sum {
				cents[c][j] = sum[j] / float64(count)
			}
		}
	}
	return cents, labels, nil
}

func dist2(a, b []float64) float64 {
	var total float64
	for i := range a {
		d := a[i] - b[i]
		total += d * d
	}
	return total
}

// CFModel is the collaborative-filtering predictor of the Recommender
// port: global mean plus per-item offsets.
type CFModel struct {
	GlobalMean  float64
	ItemOffsets []float64
}

// FitCF fits the predictor over a flat ratings array where rating i
// belongs to item i mod nItems — the layout of the MiniC port.
func FitCF(ratings []float64, nItems int) (*CFModel, error) {
	if nItems <= 0 || len(ratings) < nItems {
		return nil, fmt.Errorf("%w: need ≥1 rating per item", ErrBadInput)
	}
	m := &CFModel{ItemOffsets: make([]float64, nItems)}
	for _, r := range ratings {
		m.GlobalMean += r
	}
	m.GlobalMean /= float64(len(ratings))
	counts := make([]int, nItems)
	for i, r := range ratings {
		item := i % nItems
		m.ItemOffsets[item] += r
		counts[item]++
	}
	for item := range m.ItemOffsets {
		if counts[item] == 0 {
			return nil, fmt.Errorf("%w: item %d has no ratings", ErrBadInput, item)
		}
		m.ItemOffsets[item] = m.ItemOffsets[item]/float64(counts[item]) - m.GlobalMean
	}
	return m, nil
}

// Predict scores one item.
func (m *CFModel) Predict(item int) (float64, error) {
	if item < 0 || item >= len(m.ItemOffsets) {
		return 0, fmt.Errorf("%w: item %d out of range", ErrBadInput, item)
	}
	return m.GlobalMean + m.ItemOffsets[item], nil
}
