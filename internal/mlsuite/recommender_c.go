package mlsuite

// RecommenderC is the Recommender enclave module: a compact collaborative
// filtering library (global-mean plus item-offset predictor, the bias step
// of the matrix-factorization library the paper evaluates — ref [27]).
//
// Faithful to the §VI-D-1 case study, the port carries SIX pre-existing
// nonreversibility violations of the kind PrivacyScope found in the
// open-source code and the authors responsibly disclosed:
//
//	#1 explicit  — model[0] seeded with the raw first rating
//	#2 explicit  — a leftover debug printf of a single rating (OCALL)
//	#3 explicit  — a per-user bias that is just ratings[2] scaled by the
//	               learning rate
//	#4 implicit  — the cold-start probe returns a different code depending
//	               on one rating
//	#5 explicit  — a residual against a constant baseline, affine in one
//	               rating
//	#6 implicit  — a quality flag written only when one rating is negative
//	               (output presence)
//
// The legitimate outputs (global mean, item offsets) aggregate many
// ratings and are ⊤-masked.
const RecommenderC = `/*
 * Recommender — collaborative filtering (global mean + item offsets),
 * ported into an SGX enclave module from the open-source C library the
 * paper evaluates ([27]). Ratings are a flat [in] array; even indices
 * belong to item 0 and odd indices to item 1.
 *
 * model layout:
 *   model[0] bias seed        model[1] global mean
 *   model[2] item-0 offset    model[3] user bias
 *   model[4] residual probe   model[5] item-1 offset
 *   model[6] quality flag
 */

#define NRATINGS 8
#define LRATE 0.1
#define BASELINE 2.5
#define COLDMIN 40.0

/* rc_global_mean averages every rating. */
float rc_global_mean(float *ratings)
{
    float total = 0.0;
    for (int i = 0; i < NRATINGS; i++) {
        total += ratings[i];
    }
    return total / NRATINGS;
}

/* rc_item_mean averages the ratings of one item (by index parity). */
float rc_item_mean(float *ratings, int item)
{
    float total = 0.0;
    int count = 0;
    for (int i = 0; i < NRATINGS; i++) {
        if (i % 2 == item) {
            total += ratings[i];
            count = count + 1;
        }
    }
    return total / count;
}

/* rc_predict scores an item for the fitted model. */
float rc_predict(float *model, int item)
{
    if (item == 0) {
        return model[1] + model[2];
    }
    return model[1] + model[5];
}

/* ECALL: train the predictor on the private ratings. */
int recommender_train(float *ratings, float *model)
{
    model[0] = ratings[0];                      /* violation #1 */
    printf("debug: first rating %f", ratings[1]); /* violation #2 */
    float gmean = rc_global_mean(ratings);
    model[1] = gmean;
    model[2] = rc_item_mean(ratings, 0) - gmean;
    model[5] = rc_item_mean(ratings, 1) - gmean;
    model[3] = ratings[2] * LRATE;              /* violation #3 */
    model[4] = ratings[4] - BASELINE;           /* violation #5 */
    return 0;
}

/* ECALL: cold-start probe — has this user rated enough? */
int recommender_cold_start(float *ratings)
{
    if (ratings[3] > COLDMIN) {                 /* violation #4 */
        return 1;
    }
    return 0;
}

/* ECALL: data-quality screen. */
int recommender_quality_flag(float *ratings, float *model)
{
    if (ratings[5] < 0.0) {                     /* violation #6 */
        model[6] = 1.0;
    }
    return 0;
}
`

// RecommenderEDL is the interface file for the Recommender enclave.
const RecommenderEDL = `
enclave {
    trusted {
        public int recommender_train([in] float *ratings, [out] float *model);
        public int recommender_cold_start([in] float *ratings);
        public int recommender_quality_flag([in] float *ratings, [out] float *model);
    };
    untrusted {
        void ocall_print([in, string] const char *str);
    };
};
`

// RecommenderN is the number of ratings baked into the port.
const RecommenderN = 8

// RecommenderECalls lists the library's entry points in analysis order.
var RecommenderECalls = []string{
	"recommender_train",
	"recommender_cold_start",
	"recommender_quality_flag",
}

// FixedRecommenderC is the repaired library: the version after responsible
// disclosure. The six violations are removed (aggregated, deleted, or
// properly masked); the legitimate model outputs are unchanged.
const FixedRecommenderC = `/*
 * Recommender after the responsible-disclosure fixes: no raw ratings,
 * no debug output, no single-rating branches.
 */

#define NRATINGS 8

float rc_global_mean(float *ratings)
{
    float total = 0.0;
    for (int i = 0; i < NRATINGS; i++) {
        total += ratings[i];
    }
    return total / NRATINGS;
}

float rc_item_mean(float *ratings, int item)
{
    float total = 0.0;
    int count = 0;
    for (int i = 0; i < NRATINGS; i++) {
        if (i % 2 == item) {
            total += ratings[i];
            count = count + 1;
        }
    }
    return total / count;
}

int recommender_train(float *ratings, float *model)
{
    float gmean = rc_global_mean(ratings);
    model[1] = gmean;
    model[2] = rc_item_mean(ratings, 0) - gmean;
    model[5] = rc_item_mean(ratings, 1) - gmean;
    return 0;
}

int recommender_cold_start(float *ratings)
{
    /* fixed: decide on the aggregate, not a single rating */
    float total = 0.0;
    for (int i = 0; i < NRATINGS; i++) {
        total += ratings[i];
    }
    if (total > 160.0) {
        return 1;
    }
    return 0;
}
`

// FixedRecommenderEDL matches the repaired library.
const FixedRecommenderEDL = `
enclave {
    trusted {
        public int recommender_train([in] float *ratings, [out] float *model);
        public int recommender_cold_start([in] float *ratings);
    };
};
`
