package mlsuite

import "strings"

// Deterministic synthetic workload generation. The paper's evaluation used
// private user data the authors cannot publish; these generators produce
// the same *shapes* (linear data with noise, separable clusters, item-
// biased ratings) from a seeded xorshift PRNG so every example, test and
// bench is reproducible.

// Rand is a small deterministic PRNG (xorshift64*).
type Rand struct {
	state uint64
}

// NewRand seeds a generator; seed 0 is mapped to 1.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 1
	}
	return &Rand{state: seed}
}

// Uint64 returns the next raw value.
func (r *Rand) Uint64() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// LinearData generates n points on slope·x + intercept with ±noise.
func LinearData(seed uint64, n int, intercept, slope, noise float64) (xs, ys []float64) {
	rng := NewRand(seed)
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		xs[i] = rng.Range(0, 10)
		ys[i] = intercept + slope*xs[i] + rng.Range(-noise, noise)
	}
	return xs, ys
}

// ClusteredPoints generates n points in dim dimensions around k well-
// separated centers.
func ClusteredPoints(seed uint64, n, dim, k int) [][]float64 {
	rng := NewRand(seed)
	points := make([][]float64, n)
	for i := range points {
		center := float64(i%k) * 10
		p := make([]float64, dim)
		for j := range p {
			p[j] = center + rng.Range(-1, 1)
		}
		points[i] = p
	}
	return points
}

// Ratings generates n ratings in [1, 5] with a per-item bias (item = index
// parity when nItems is 2, matching the Recommender port).
func Ratings(seed uint64, n, nItems int) []float64 {
	rng := NewRand(seed)
	out := make([]float64, n)
	for i := range out {
		bias := 0.5 * float64(i%nItems)
		v := 3 + bias + rng.Range(-1, 1)
		if v < 1 {
			v = 1
		}
		if v > 5 {
			v = 5
		}
		out[i] = v
	}
	return out
}

// CountLoC counts non-blank source lines, the metric of Table V.
func CountLoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// Module bundles one evaluation target as Table V lists it.
type Module struct {
	// Name as printed in Table V.
	Name string
	// C is the enclave source; EDL its interface.
	C, EDL string
	// Entry points to analyze, in order.
	ECalls []string
	// PaperLoC is the size the paper reports (Table V).
	PaperLoC int
	// PaperSeconds is the analysis time the paper reports (Table V).
	PaperSeconds float64
}

// ExtensionModules returns workloads beyond the paper's evaluation
// (analyzed and tested, but not part of Table V).
func ExtensionModules() []Module {
	return []Module{
		{
			Name: "LogisticRegression", C: LogRegC, EDL: LogRegEDL,
			ECalls: []string{"enclave_train_logreg"},
		},
	}
}

// Modules returns the three Table V targets.
func Modules() []Module {
	return []Module{
		{
			Name: "LinearRegression", C: LinRegC, EDL: LinRegEDL,
			ECalls:   []string{"enclave_train_linreg"},
			PaperLoC: 161, PaperSeconds: 2.549,
		},
		{
			Name: "Kmeans", C: KmeansC, EDL: KmeansEDL,
			ECalls:   []string{"enclave_train_kmeans"},
			PaperLoC: 179, PaperSeconds: 4.654,
		},
		{
			Name: "Recommender", C: RecommenderC, EDL: RecommenderEDL,
			ECalls:   RecommenderECalls,
			PaperLoC: 117, PaperSeconds: 1.758,
		},
	}
}
