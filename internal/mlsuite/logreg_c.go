package mlsuite

import "math"

// LogRegC is an extension workload beyond the paper's three modules:
// binary logistic regression trained by full-batch gradient descent. It
// exercises the analyzer on an iterative training loop with a nonlinear
// link function (sigmoid via exp) — the shape §VIII-C worries about — and
// is clean under nonreversibility: both trained parameters aggregate every
// sample through three epochs.
const LogRegC = `/*
 * LogisticRegression — binary classifier trained by batch gradient
 * descent (extension workload; not part of the paper's Table V).
 *
 * model[0] = weight, model[1] = bias, model[2] = final training loss
 * surrogate (sum of |p - y|).
 */

#define N 8
#define EPOCHS 3
#define LR 0.1

/* sigmoid is the logistic link. */
float lg_sigmoid(float z)
{
    return 1.0 / (1.0 + exp(0.0 - z));
}

/* lg_predict scores one sample. */
float lg_predict(float w, float b, float x)
{
    return lg_sigmoid(w * x + b);
}

/* ECALL: train on the private samples. */
int enclave_train_logreg(float *xs, float *ys, float *model)
{
    float w = 0.0;
    float b = 0.0;
    for (int e = 0; e < EPOCHS; e++) {
        for (int i = 0; i < N; i++) {
            float p = lg_predict(w, b, xs[i]);
            float g = p - ys[i];
            w = w - LR * g * xs[i];
            b = b - LR * g;
        }
    }
    float loss = 0.0;
    for (int i = 0; i < N; i++) {
        float d = lg_predict(w, b, xs[i]) - ys[i];
        if (d < 0.0) {
            d = 0.0 - d;
        }
        loss += d;
    }
    model[0] = w;
    model[1] = b;
    model[2] = loss;
    return 0;
}

/* ECALL: classify one public query point. */
int enclave_classify_logreg(float *model, float x)
{
    if (lg_predict(model[0], model[1], x) > 0.5) {
        return 1;
    }
    return 0;
}
`

// LogRegEDL is the interface file for the LogisticRegression enclave.
const LogRegEDL = `
enclave {
    trusted {
        public int enclave_train_logreg([in] float *xs, [in] float *ys, [out] float *model);
        public int enclave_classify_logreg([in] float *model, float x);
    };
};
`

// LogReg problem sizes baked into the port.
const (
	LogRegN      = 8
	LogRegEpochs = 3
	LogRegRate   = 0.1
)

// LogRegModel is the Go reference classifier.
type LogRegModel struct {
	Weight float64
	Bias   float64
}

// FitLogReg mirrors the MiniC port exactly: full-batch gradient descent,
// same epoch and rate constants.
func FitLogReg(xs, ys []float64) (*LogRegModel, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return nil, ErrBadInput
	}
	m := &LogRegModel{}
	for e := 0; e < LogRegEpochs; e++ {
		for i := range xs {
			p := m.Predict(xs[i])
			g := p - ys[i]
			m.Weight -= LogRegRate * g * xs[i]
			m.Bias -= LogRegRate * g
		}
	}
	return m, nil
}

// Predict returns the positive-class probability.
func (m *LogRegModel) Predict(x float64) float64 {
	return 1 / (1 + expApprox(-(m.Weight*x + m.Bias)))
}

// expApprox delegates to math.Exp; kept as a named hook so the MiniC port
// and the Go reference share one definition site in documentation.
func expApprox(z float64) float64 { return math.Exp(z) }
