package mlsuite

import (
	"context"
	"math"
	"testing"

	"privacyscope/internal/core"
	"privacyscope/internal/edl"
	"privacyscope/internal/interp"
	"privacyscope/internal/minic"
	"privacyscope/internal/sgx"
	"privacyscope/internal/symexec"
)

func TestModulesParseAndCheck(t *testing.T) {
	sources := map[string]string{
		"linreg":            LinRegC,
		"kmeans":            KmeansC,
		"recommender":       RecommenderC,
		"evil-linreg":       MaliciousLinRegC,
		"evil-kmeans":       MaliciousKmeansC,
		"fixed-recommender": FixedRecommenderC,
		"logreg":            LogRegC,
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			f, err := minic.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			if err := minic.NewChecker(minic.DefaultBuiltins).Check(f); err != nil {
				t.Fatal(err)
			}
		})
	}
	for name, src := range map[string]string{
		"linreg": LinRegEDL, "kmeans": KmeansEDL, "recommender": RecommenderEDL,
		"evil-linreg": MaliciousLinRegEDL, "evil-kmeans": MaliciousKmeansEDL,
		"fixed-recommender": FixedRecommenderEDL, "logreg": LogRegEDL,
	} {
		t.Run(name+"-edl", func(t *testing.T) {
			if _, err := edl.Parse(src); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTableVLoCShape(t *testing.T) {
	// Absolute LoC need not match the archived repos, but the sizes must
	// be in the paper's ballpark and preserve the ordering
	// Kmeans > LinearRegression > Recommender (Table V).
	locs := map[string]int{}
	for _, m := range Modules() {
		loc := CountLoC(m.C)
		locs[m.Name] = loc
		lo, hi := m.PaperLoC*6/10, m.PaperLoC*15/10
		if loc < lo || loc > hi {
			t.Errorf("%s LoC = %d, outside [%d, %d] (paper: %d)", m.Name, loc, lo, hi, m.PaperLoC)
		}
	}
	if !(locs["Kmeans"] > locs["LinearRegression"] && locs["LinearRegression"] > locs["Recommender"]) {
		t.Errorf("LoC ordering broken: %v", locs)
	}
}

func analyzeModule(t *testing.T, cSrc, edlSrc, ecall string) *core.Report {
	t.Helper()
	file, err := minic.Parse(cSrc)
	if err != nil {
		t.Fatal(err)
	}
	iface, err := edl.Parse(edlSrc)
	if err != nil {
		t.Fatal(err)
	}
	sig, ok := iface.ECall(ecall)
	if !ok {
		t.Fatalf("no ECALL %s", ecall)
	}
	report, err := core.New(core.DefaultOptions()).CheckFunction(context.Background(), file, ecall, edl.ParamSpecs(sig, nil))
	if err != nil {
		t.Fatal(err)
	}
	return report
}

func TestLinRegClean(t *testing.T) {
	report := analyzeModule(t, LinRegC, LinRegEDL, "enclave_train_linreg")
	if !report.Secure() {
		t.Fatalf("clean LinearRegression flagged: %s", report.Render())
	}
	if report.Secrets != 2*LinRegN {
		t.Errorf("secrets = %d, want %d", report.Secrets, 2*LinRegN)
	}
}

func TestLinRegMaliciousDetected(t *testing.T) {
	report := analyzeModule(t, MaliciousLinRegC, MaliciousLinRegEDL, "enclave_train_linreg_evil")
	exp := report.Explicit()
	if len(exp) != 1 {
		t.Fatalf("explicit findings = %+v", exp)
	}
	f := exp[0]
	if f.Where != "model[5]" || f.Secret != "xs[0]" {
		t.Errorf("finding = %+v", f)
	}
}

// TestCaseStudyRecommenderSixViolations reproduces §VI-D-1: analyzing the
// Recommender library's entry points finds exactly 6 nonreversibility
// violations — 4 explicit and 2 implicit — at the documented sinks.
func TestCaseStudyRecommenderSixViolations(t *testing.T) {
	type want struct {
		kind   core.LeakKind
		secret string
	}
	wants := map[string]want{
		"model[0]": {core.ExplicitLeak, "ratings[0]"},
		"model[3]": {core.ExplicitLeak, "ratings[2]"},
		"model[4]": {core.ExplicitLeak, "ratings[4]"},
		"model[6]": {core.ImplicitLeak, "ratings[5]"},
		"return":   {core.ImplicitLeak, "ratings[3]"},
	}
	total := 0
	var ocallLeaks int
	for _, ecall := range RecommenderECalls {
		report := analyzeModule(t, RecommenderC, RecommenderEDL, ecall)
		total += len(report.Findings)
		for _, f := range report.Findings {
			if f.Sink == core.SinkOCall {
				ocallLeaks++
				if f.Secret != "ratings[1]" {
					t.Errorf("OCALL leak secret = %s, want ratings[1]", f.Secret)
				}
				continue
			}
			w, ok := wants[f.Where]
			if !ok {
				t.Errorf("unexpected finding at %s: %+v", f.Where, f)
				continue
			}
			if f.Kind != w.kind || f.Secret != w.secret {
				t.Errorf("finding at %s = %v/%s, want %v/%s", f.Where, f.Kind, f.Secret, w.kind, w.secret)
			}
		}
	}
	if ocallLeaks != 1 {
		t.Errorf("OCALL leaks = %d, want 1 (the debug printf)", ocallLeaks)
	}
	if total != 6 {
		t.Errorf("total violations = %d, want 6 (as in the paper's case study)", total)
	}
}

func TestFixedRecommenderClean(t *testing.T) {
	for _, ecall := range []string{"recommender_train", "recommender_cold_start"} {
		report := analyzeModule(t, FixedRecommenderC, FixedRecommenderEDL, ecall)
		if !report.Secure() {
			t.Errorf("fixed recommender %s flagged:\n%s", ecall, report.Render())
		}
	}
}

// TestCaseStudyKmeansInjection reproduces §VI-D-2: the injected explicit
// and implicit leaks in the malicious Kmeans are both detected, at exactly
// the injected sinks, with the right secrets; the clean module has no
// findings at those sinks.
func TestCaseStudyKmeansInjection(t *testing.T) {
	evil := analyzeModule(t, MaliciousKmeansC, MaliciousKmeansEDL, "enclave_train_kmeans")

	var explicitAt4, implicitAt5 *core.Finding
	for i := range evil.Findings {
		f := &evil.Findings[i]
		switch f.Where {
		case "centroids[4]":
			if f.Kind == core.ExplicitLeak {
				explicitAt4 = f
			}
		case "centroids[5]":
			if f.Kind == core.ImplicitLeak {
				implicitAt5 = f
			}
		}
	}
	if explicitAt4 == nil {
		t.Fatalf("injected explicit leak not found:\n%s", evil.Render())
	}
	if explicitAt4.Secret != "points[0]" {
		t.Errorf("explicit secret = %s, want points[0]", explicitAt4.Secret)
	}
	// The obfuscation 4·x+3 must be inverted.
	if explicitAt4.Inversion == nil || explicitAt4.Inversion.Scale != 4 || explicitAt4.Inversion.Offset != 3 {
		t.Errorf("inversion = %+v", explicitAt4.Inversion)
	}
	if implicitAt5 == nil {
		t.Fatalf("injected implicit leak not found:\n%s", evil.Render())
	}
	if implicitAt5.Secret != "points[7]" {
		t.Errorf("implicit secret = %s, want points[7]", implicitAt5.Secret)
	}

	// The clean module must not report anything at the injected sinks.
	clean := analyzeModule(t, KmeansC, KmeansEDL, "enclave_train_kmeans")
	for _, f := range clean.Findings {
		if f.Where == "centroids[4]" || f.Where == "centroids[5]" {
			t.Errorf("clean kmeans finding at injected sink: %+v", f)
		}
	}
}

func TestKmeansSingletonClusterPathsAreReported(t *testing.T) {
	// Design note in kmeans_c.go: paths with singleton/empty clusters
	// emit raw points as centroids and ARE nonreversibility violations.
	report := analyzeModule(t, KmeansC, KmeansEDL, "enclave_train_kmeans")
	if report.Secure() {
		t.Skip("engine found no singleton-cluster paths; acceptable under pruning")
	}
	for _, f := range report.Findings {
		if f.Kind != core.ExplicitLeak && f.Kind != core.ImplicitLeak {
			t.Errorf("unexpected finding kind: %+v", f)
		}
	}
}

func TestGoldenLinReg(t *testing.T) {
	xs, ys := LinearData(7, 32, 2.0, 3.0, 0.1)
	m, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-2.0) > 0.2 || math.Abs(m.Slope-3.0) > 0.1 {
		t.Errorf("fit = %+v", m)
	}
	if m.Predict(0) != m.Intercept {
		t.Error("Predict(0) != intercept")
	}
	if _, err := FitLinear([]float64{1}, []float64{2}); err == nil {
		t.Error("short input must fail")
	}
	if _, err := FitLinear([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance must fail")
	}
}

func TestGoldenKMeans(t *testing.T) {
	points := ClusteredPoints(3, 12, 2, 2)
	cents, labels, err := KMeans(points, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cents) != 2 || len(labels) != 12 {
		t.Fatalf("cents/labels = %d/%d", len(cents), len(labels))
	}
	// Points generated around centers 0 and 10 must separate.
	for i, p := range points {
		other := 1 - labels[i]
		if dist2(p, cents[labels[i]]) > dist2(p, cents[other]) {
			t.Errorf("point %d not assigned to nearest centroid", i)
		}
	}
	if _, _, err := KMeans(points[:1], 2, 1); err == nil {
		t.Error("k > n must fail")
	}
	if _, _, err := KMeans([][]float64{{1, 2}, {3}}, 1, 1); err == nil {
		t.Error("ragged input must fail")
	}
}

func TestGoldenCF(t *testing.T) {
	ratings := Ratings(11, 64, 2)
	m, err := FitCF(ratings, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Item 1 carries a +0.5 bias by construction.
	if m.ItemOffsets[1] <= m.ItemOffsets[0] {
		t.Errorf("offsets = %v, want item1 > item0", m.ItemOffsets)
	}
	p0, err := m.Predict(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p0-(m.GlobalMean+m.ItemOffsets[0])) > 1e-12 {
		t.Error("Predict formula wrong")
	}
	if _, err := m.Predict(5); err == nil {
		t.Error("out-of-range item must fail")
	}
	if _, err := FitCF(nil, 2); err == nil {
		t.Error("empty ratings must fail")
	}
}

// TestDifferentialLinRegEnclaveVsGolden runs the MiniC port inside the SGX
// simulator and compares the trained model against the Go reference on the
// same data.
func TestDifferentialLinRegEnclaveVsGolden(t *testing.T) {
	xs, ys := LinearData(5, LinRegN, 1.5, -2.0, 0.05)
	p := sgx.NewPlatform([]byte("mltest"))
	enc, err := p.LoadEnclave(LinRegC, LinRegEDL)
	if err != nil {
		t.Fatal(err)
	}
	toCells := func(vals []float64) []interp.Value {
		out := make([]interp.Value, len(vals))
		for i, v := range vals {
			out[i] = interp.FloatValue(v)
		}
		return out
	}
	res, err := enc.ECall("enclave_train_linreg", []sgx.Arg{
		sgx.BufArg(toCells(xs)),
		sgx.BufArg(toCells(ys)),
		sgx.OutArg(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	model := res.Outs["model"]
	if math.Abs(model[0].Float()-golden.Intercept) > 1e-9 {
		t.Errorf("intercept: enclave %g vs golden %g", model[0].Float(), golden.Intercept)
	}
	if math.Abs(model[1].Float()-golden.Slope) > 1e-9 {
		t.Errorf("slope: enclave %g vs golden %g", model[1].Float(), golden.Slope)
	}
	if math.Abs(model[2].Float()-golden.SSE) > 1e-9 {
		t.Errorf("sse: enclave %g vs golden %g", model[2].Float(), golden.SSE)
	}
}

// TestDifferentialKmeansEnclaveVsGolden does the same for Kmeans.
func TestDifferentialKmeansEnclaveVsGolden(t *testing.T) {
	points := ClusteredPoints(9, KmeansN, KmeansD, KmeansK)
	flat := make([]interp.Value, 0, KmeansN*KmeansD)
	for _, pt := range points {
		for _, v := range pt {
			flat = append(flat, interp.FloatValue(v))
		}
	}
	p := sgx.NewPlatform([]byte("mltest"))
	enc, err := p.LoadEnclave(KmeansC, KmeansEDL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := enc.ECall("enclave_train_kmeans", []sgx.Arg{
		sgx.BufArg(flat),
		sgx.OutArg(KmeansK * KmeansD),
	})
	if err != nil {
		t.Fatal(err)
	}
	golden, _, err := KMeans(points, KmeansK, KmeansIters)
	if err != nil {
		t.Fatal(err)
	}
	cells := res.Outs["centroids"]
	for k := 0; k < KmeansK; k++ {
		for j := 0; j < KmeansD; j++ {
			got := cells[k*KmeansD+j].Float()
			want := golden[k][j]
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("centroid[%d][%d]: enclave %g vs golden %g", k, j, got, want)
			}
		}
	}
}

// TestDifferentialRecommenderEnclaveVsGolden compares the legitimate model
// slots (the buggy slots are the case study's subject, not the oracle's).
func TestDifferentialRecommenderEnclaveVsGolden(t *testing.T) {
	ratings := Ratings(13, RecommenderN, 2)
	cells := make([]interp.Value, len(ratings))
	for i, v := range ratings {
		cells[i] = interp.FloatValue(v)
	}
	p := sgx.NewPlatform([]byte("mltest"))
	enc, err := p.LoadEnclave(RecommenderC, RecommenderEDL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := enc.ECall("recommender_train", []sgx.Arg{
		sgx.BufArg(cells),
		sgx.OutArg(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := FitCF(ratings, 2)
	if err != nil {
		t.Fatal(err)
	}
	model := res.Outs["model"]
	if math.Abs(model[1].Float()-golden.GlobalMean) > 1e-9 {
		t.Errorf("global mean: %g vs %g", model[1].Float(), golden.GlobalMean)
	}
	if math.Abs(model[2].Float()-golden.ItemOffsets[0]) > 1e-9 {
		t.Errorf("item0 offset: %g vs %g", model[2].Float(), golden.ItemOffsets[0])
	}
	if math.Abs(model[5].Float()-golden.ItemOffsets[1]) > 1e-9 {
		t.Errorf("item1 offset: %g vs %g", model[5].Float(), golden.ItemOffsets[1])
	}
	// The debug printf (violation #2) is observable in the OCALL stream.
	if len(res.Printed) != 1 {
		t.Errorf("printed = %v", res.Printed)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	r := NewRand(0)
	if r.Uint64() == 0 {
		t.Error("zero seed must still produce output")
	}
	v := NewRand(1).Range(2, 5)
	if v < 2 || v >= 5 {
		t.Errorf("Range out of bounds: %g", v)
	}
}

func TestWorkloadShapes(t *testing.T) {
	xs, ys := LinearData(1, 16, 0, 1, 0)
	if len(xs) != 16 || len(ys) != 16 {
		t.Error("LinearData size wrong")
	}
	for i := range xs {
		if ys[i] != xs[i] {
			t.Error("noise-free y must equal x for slope 1")
		}
	}
	pts := ClusteredPoints(1, 6, 3, 2)
	if len(pts) != 6 || len(pts[0]) != 3 {
		t.Error("ClusteredPoints shape wrong")
	}
	rs := Ratings(1, 10, 2)
	for _, v := range rs {
		if v < 1 || v > 5 {
			t.Errorf("rating %g out of [1,5]", v)
		}
	}
}

func TestParamSpecsFromEDLForModules(t *testing.T) {
	for _, m := range Modules() {
		iface, err := edl.Parse(m.EDL)
		if err != nil {
			t.Fatal(err)
		}
		for _, ecall := range m.ECalls {
			sig, ok := iface.ECall(ecall)
			if !ok {
				t.Fatalf("%s: no ECALL %s", m.Name, ecall)
			}
			specs := edl.ParamSpecs(sig, nil)
			var hasSecret bool
			for _, s := range specs {
				if s.Class == symexec.ParamSecret || s.Class == symexec.ParamInOut {
					hasSecret = true
				}
			}
			if !hasSecret {
				t.Errorf("%s/%s: no secret param derived", m.Name, ecall)
			}
		}
	}
}

func TestLogRegExtensionCleanAndDifferential(t *testing.T) {
	// Static: the trained model aggregates everything — secure.
	report := analyzeModule(t, LogRegC, LogRegEDL, "enclave_train_logreg")
	if !report.Secure() {
		t.Fatalf("logreg flagged:\n%s", report.Render())
	}
	if report.Secrets != 2*LogRegN {
		t.Errorf("secrets = %d, want %d", report.Secrets, 2*LogRegN)
	}

	// Concrete: the enclave run matches the Go reference.
	xs := make([]float64, LogRegN)
	ys := make([]float64, LogRegN)
	rng := NewRand(31)
	for i := range xs {
		xs[i] = rng.Range(-2, 2)
		if xs[i] > 0 {
			ys[i] = 1
		}
	}
	toCells := func(vals []float64) []interp.Value {
		out := make([]interp.Value, len(vals))
		for i, v := range vals {
			out[i] = interp.FloatValue(v)
		}
		return out
	}
	p := sgx.NewPlatform([]byte("logreg"))
	enc, err := p.LoadEnclave(LogRegC, LogRegEDL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := enc.ECall("enclave_train_logreg", []sgx.Arg{
		sgx.BufArg(toCells(xs)), sgx.BufArg(toCells(ys)), sgx.OutArg(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := FitLogReg(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	model := res.Outs["model"]
	if math.Abs(model[0].Float()-golden.Weight) > 1e-9 {
		t.Errorf("weight: enclave %g vs golden %g", model[0].Float(), golden.Weight)
	}
	if math.Abs(model[1].Float()-golden.Bias) > 1e-9 {
		t.Errorf("bias: enclave %g vs golden %g", model[1].Float(), golden.Bias)
	}
	// The classifier separates the training data reasonably.
	correct := 0
	for i := range xs {
		p := golden.Predict(xs[i])
		if (p > 0.5) == (ys[i] == 1) {
			correct++
		}
	}
	if correct < LogRegN/2 {
		t.Errorf("classifier fits %d/%d", correct, LogRegN)
	}
}

func TestFitLogRegErrors(t *testing.T) {
	if _, err := FitLogReg(nil, nil); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := FitLogReg([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must fail")
	}
}
