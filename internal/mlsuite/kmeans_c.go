package mlsuite

// KmeansC is the Kmeans enclave module: Lloyd's algorithm over N points in
// D dimensions with K clusters, seeded from the first K points (paper ref
// [29]). The sizes are compile-time constants so the symbolic exploration
// forks only on the genuinely data-dependent cluster-assignment branches
// (2^N paths per iteration).
//
// Note on nonreversibility: k-means is not unconditionally secure. On
// paths where a cluster ends up with a single member (or empty, keeping
// its raw seed point), the emitted centroid IS a raw training point, and
// PrivacyScope correctly reports those paths. The injected-malice case
// study (§VI-D-2) therefore asserts on the *additional* sinks its
// injections create, not on a clean baseline being violation-free.
const KmeansC = `/*
 * Kmeans — Lloyd's algorithm ported into an SGX enclave module from the
 * open-source C implementation the paper evaluates ([29]).
 *
 * Layout: points is a flat [in] array of N*D floats (point i occupies
 * points[i*D] .. points[i*D+D-1]); centroids is a flat [out] array of
 * K*D floats.
 */

#define N 4
#define D 2
#define K 2
#define ITERS 1
#define NPOINTS 8
#define NCENTS 4

/* km_dist2 is the squared euclidean distance between point i and
 * centroid k. */
float km_dist2(float *points, int i, float *cents, int k)
{
    float total = 0.0;
    for (int j = 0; j < D; j++) {
        float diff = points[i * D + j] - cents[k * D + j];
        total += diff * diff;
    }
    return total;
}

/* km_seed copies the first K points as the initial centroids. */
void km_seed(float *points, float *cents)
{
    for (int k = 0; k < K; k++) {
        for (int j = 0; j < D; j++) {
            cents[k * D + j] = points[k * D + j];
        }
    }
}

/* km_assign labels each point with its nearest centroid. */
void km_assign(float *points, float *cents, int *labels)
{
    for (int i = 0; i < N; i++) {
        float d0 = km_dist2(points, i, cents, 0);
        float d1 = km_dist2(points, i, cents, 1);
        if (d0 < d1) {
            labels[i] = 0;
        } else {
            labels[i] = 1;
        }
    }
}

/* km_update recomputes each centroid as the mean of its members; an
 * empty cluster keeps its previous centroid. */
void km_update(float *points, float *cents, int *labels)
{
    for (int k = 0; k < K; k++) {
        float sum0 = 0.0;
        float sum1 = 0.0;
        int count = 0;
        for (int i = 0; i < N; i++) {
            if (labels[i] == k) {
                sum0 += points[i * D];
                sum1 += points[i * D + 1];
                count = count + 1;
            }
        }
        if (count > 0) {
            cents[k * D] = sum0 / count;
            cents[k * D + 1] = sum1 / count;
        }
    }
}

/* ECALL: cluster the private points and emit the centroids. */
int enclave_train_kmeans(float *points, float *centroids)
{
    int labels[4];
    km_seed(points, centroids);
    for (int it = 0; it < ITERS; it++) {
        km_assign(points, centroids, labels);
        km_update(points, centroids, labels);
    }
    return 0;
}

/* km_copy duplicates a centroid set (for convergence checks). */
void km_copy(float *src, float *dst)
{
    for (int k = 0; k < K; k++) {
        for (int j = 0; j < D; j++) {
            dst[k * D + j] = src[k * D + j];
        }
    }
}

/* km_count returns the population of one cluster. */
int km_count(int *labels, int k)
{
    int count = 0;
    for (int i = 0; i < N; i++) {
        if (labels[i] == k) {
            count = count + 1;
        }
    }
    return count;
}

/* km_inertia is the total within-cluster squared distance, the usual
 * k-means convergence metric. */
float km_inertia(float *points, float *cents, int *labels)
{
    float total = 0.0;
    for (int i = 0; i < N; i++) {
        total += km_dist2(points, i, cents, labels[i]);
    }
    return total;
}

/* km_converged reports whether two centroid sets agree within eps. */
int km_converged(float *a, float *b, float eps)
{
    for (int k = 0; k < K; k++) {
        for (int j = 0; j < D; j++) {
            float d = a[k * D + j] - b[k * D + j];
            if (d < 0.0) {
                d = 0.0 - d;
            }
            if (d > eps) {
                return 0;
            }
        }
    }
    return 1;
}

/* ECALL: classify one public query point with the trained centroids. */
int enclave_classify_kmeans(float *centroids, float x0, float x1)
{
    float best = 0.0;
    int bestk = 0;
    for (int k = 0; k < K; k++) {
        float d0 = x0 - centroids[k * D];
        float d1 = x1 - centroids[k * D + 1];
        float d = d0 * d0 + d1 * d1;
        if (k == 0) {
            best = d;
        } else {
            if (d < best) {
                best = d;
                bestk = k;
            }
        }
    }
    return bestk;
}
`

// KmeansEDL is the interface file for the Kmeans enclave.
const KmeansEDL = `
enclave {
    trusted {
        public int enclave_train_kmeans([in] float *points, [out] float *centroids);
        public int enclave_classify_kmeans([in] float *centroids, float x0, float x1);
    };
};
`

// Kmeans problem sizes baked into the port.
const (
	KmeansN     = 4 // points
	KmeansD     = 2 // dimensions
	KmeansK     = 2 // clusters
	KmeansIters = 1
)

// MaliciousKmeansC is the §VI-D-2 case study: the clean module with two
// intentionally injected leaks —
//
//   - explicit: a raw coordinate of the first point, lightly obfuscated as
//     4·x+3, written to the spare centroid slot centroids[4];
//   - implicit: a magic-value beacon on the last coordinate, writing 1/0 to
//     centroids[5] depending on whether points[7] equals 13.
//
// PrivacyScope must report both, with the correct secrets, at exactly
// those sinks.
const MaliciousKmeansC = `/*
 * Kmeans with intentionally embedded sensitive-data leakage logic
 * (mimicking a malicious enclave writer, §VI-D-2).
 */

#define N 4
#define D 2
#define K 2
#define ITERS 1

float km_dist2(float *points, int i, float *cents, int k)
{
    float total = 0.0;
    for (int j = 0; j < D; j++) {
        float diff = points[i * D + j] - cents[k * D + j];
        total += diff * diff;
    }
    return total;
}

void km_seed(float *points, float *cents)
{
    for (int k = 0; k < K; k++) {
        for (int j = 0; j < D; j++) {
            cents[k * D + j] = points[k * D + j];
        }
    }
}

void km_assign(float *points, float *cents, int *labels)
{
    for (int i = 0; i < N; i++) {
        float d0 = km_dist2(points, i, cents, 0);
        float d1 = km_dist2(points, i, cents, 1);
        if (d0 < d1) {
            labels[i] = 0;
        } else {
            labels[i] = 1;
        }
    }
}

void km_update(float *points, float *cents, int *labels)
{
    for (int k = 0; k < K; k++) {
        float sum0 = 0.0;
        float sum1 = 0.0;
        int count = 0;
        for (int i = 0; i < N; i++) {
            if (labels[i] == k) {
                sum0 += points[i * D];
                sum1 += points[i * D + 1];
                count = count + 1;
            }
        }
        if (count > 0) {
            cents[k * D] = sum0 / count;
            cents[k * D + 1] = sum1 / count;
        }
    }
}

int enclave_train_kmeans(float *points, float *centroids)
{
    int labels[4];
    /* injected: exfiltrate a raw coordinate, lightly obfuscated */
    centroids[4] = points[0] * 4.0 + 3.0;
    /* injected: magic-value beacon on the last coordinate */
    if (points[7] == 13.0) {
        centroids[5] = 1.0;
    } else {
        centroids[5] = 0.0;
    }
    km_seed(points, centroids);
    for (int it = 0; it < ITERS; it++) {
        km_assign(points, centroids, labels);
        km_update(points, centroids, labels);
    }
    return 0;
}
`

// MaliciousKmeansEDL is the interface for the trojaned Kmeans (the extra
// centroid slots ride along in the same [out] buffer).
const MaliciousKmeansEDL = `
enclave {
    trusted {
        public int enclave_train_kmeans([in] float *points, [out] float *centroids);
    };
};
`
