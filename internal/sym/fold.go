package sym

// This file implements constant folding and algebraic simplification. The
// constructors NewBinary and NewUnary simplify on construction, so the
// engine always holds expressions in a lightly-normalized form; the paper's
// trace tables (e.g. "2*s1 + 3*s2") come out of String() directly.

// NewBinary builds op(l, r), folding constants and applying cheap algebraic
// identities. Integer arithmetic wraps at 32 bits; division by a concrete
// zero is left symbolic (the engine reports it as a path error separately).
func NewBinary(op Op, l, r Expr) Expr {
	if lc, ok := l.(IntConst); ok {
		if rc, ok := r.(IntConst); ok {
			if v, ok := foldInt(op, lc.V, rc.V); ok {
				return IntConst{V: v}
			}
		}
		if rc, ok := r.(FloatConst); ok {
			if v, ok := foldFloat(op, float64(lc.V), rc.V); ok {
				return v
			}
		}
	}
	if lc, ok := l.(FloatConst); ok {
		switch rv := r.(type) {
		case FloatConst:
			if v, ok := foldFloat(op, lc.V, rv.V); ok {
				return v
			}
		case IntConst:
			if v, ok := foldFloat(op, lc.V, float64(rv.V)); ok {
				return v
			}
		}
	}
	if e, ok := identity(op, l, r); ok {
		return e
	}
	return &Binary{Op: op, L: l, R: r}
}

// NewUnary builds op(x) with constant folding.
func NewUnary(op Op, x Expr) Expr {
	switch v := x.(type) {
	case IntConst:
		switch op {
		case OpNeg:
			return IntConst{V: -v.V}
		case OpNot:
			return IntConst{V: ^v.V}
		case OpLNot:
			if v.V == 0 {
				return IntConst{V: 1}
			}
			return IntConst{V: 0}
		}
	case FloatConst:
		switch op {
		case OpNeg:
			return FloatConst{V: -v.V}
		case OpLNot:
			if v.V == 0 {
				return IntConst{V: 1}
			}
			return IntConst{V: 0}
		}
	case *Unary:
		// --x = x, ~~x = x, but !!x is NOT x (it normalizes to 0/1).
		if v.Op == op && (op == OpNeg || op == OpNot) {
			return v.X
		}
	}
	return &Unary{Op: op, X: x}
}

func boolInt(b bool) (int32, bool) {
	if b {
		return 1, true
	}
	return 0, true
}

func foldInt(op Op, a, b int32) (int32, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case OpAnd:
		return a & b, true
	case OpOr:
		return a | b, true
	case OpXor:
		return a ^ b, true
	case OpShl:
		return a << (uint32(b) & 31), true
	case OpShr:
		return a >> (uint32(b) & 31), true
	case OpEq:
		return boolInt(a == b)
	case OpNe:
		return boolInt(a != b)
	case OpLt:
		return boolInt(a < b)
	case OpLe:
		return boolInt(a <= b)
	case OpGt:
		return boolInt(a > b)
	case OpGe:
		return boolInt(a >= b)
	case OpLAnd:
		return boolInt(a != 0 && b != 0)
	case OpLOr:
		return boolInt(a != 0 || b != 0)
	}
	return 0, false
}

func foldFloat(op Op, a, b float64) (Expr, bool) {
	switch op {
	case OpAdd:
		return FloatConst{V: a + b}, true
	case OpSub:
		return FloatConst{V: a - b}, true
	case OpMul:
		return FloatConst{V: a * b}, true
	case OpDiv:
		if b == 0 {
			return nil, false
		}
		return FloatConst{V: a / b}, true
	case OpEq:
		v, _ := boolInt(a == b)
		return IntConst{V: v}, true
	case OpNe:
		v, _ := boolInt(a != b)
		return IntConst{V: v}, true
	case OpLt:
		v, _ := boolInt(a < b)
		return IntConst{V: v}, true
	case OpLe:
		v, _ := boolInt(a <= b)
		return IntConst{V: v}, true
	case OpGt:
		v, _ := boolInt(a > b)
		return IntConst{V: v}, true
	case OpGe:
		v, _ := boolInt(a >= b)
		return IntConst{V: v}, true
	}
	return nil, false
}

func isIntZero(e Expr) bool {
	c, ok := e.(IntConst)
	return ok && c.V == 0
}

// isAnyZero matches both integer and float zero constants (additive
// identities are safe for either).
func isAnyZero(e Expr) bool {
	if isIntZero(e) {
		return true
	}
	c, ok := e.(FloatConst)
	return ok && c.V == 0
}

func isIntOne(e Expr) bool {
	c, ok := e.(IntConst)
	return ok && c.V == 1
}

// identity applies algebraic identities that are safe for both symbolic and
// concrete operands. Returns the simplified expression and true on a hit.
func identity(op Op, l, r Expr) (Expr, bool) {
	switch op {
	case OpAdd:
		if isAnyZero(l) {
			return r, true
		}
		if isAnyZero(r) {
			return l, true
		}
		// Reassociate trailing constants: (x ± c1) + c2 → x + (c1±…+c2),
		// so Listing 1's temporary+1 renders as secrets[0] + 101.
		if rc, ok := r.(IntConst); ok {
			if lb, ok := l.(*Binary); ok {
				if lc, ok := lb.R.(IntConst); ok {
					switch lb.Op {
					case OpAdd:
						return NewBinary(OpAdd, lb.L, IntConst{V: lc.V + rc.V}), true
					case OpSub:
						return NewBinary(OpAdd, lb.L, IntConst{V: rc.V - lc.V}), true
					}
				}
			}
		}
		if lc, ok := l.(IntConst); ok {
			if rb, ok := r.(*Binary); ok && rb.Op == OpAdd {
				if rc, ok := rb.R.(IntConst); ok {
					return NewBinary(OpAdd, rb.L, IntConst{V: lc.V + rc.V}), true
				}
			}
		}
	case OpSub:
		if isAnyZero(r) {
			return l, true
		}
		if Equal(l, r) && !containsFloat(l) {
			return IntConst{V: 0}, true
		}
		// (x + c1) - c2 → x + (c1-c2).
		if rc, ok := r.(IntConst); ok {
			if lb, ok := l.(*Binary); ok {
				if lc, ok := lb.R.(IntConst); ok {
					switch lb.Op {
					case OpAdd:
						return NewBinary(OpAdd, lb.L, IntConst{V: lc.V - rc.V}), true
					case OpSub:
						return NewBinary(OpSub, lb.L, IntConst{V: lc.V + rc.V}), true
					}
				}
			}
		}
	case OpMul:
		if isIntZero(l) || isIntZero(r) {
			// x*0 = 0 is safe here: expressions are side-effect
			// free (PRIML §V-A) and float operands cannot be NaN
			// sources in this domain.
			return IntConst{V: 0}, true
		}
		if isIntOne(l) {
			return r, true
		}
		if isIntOne(r) {
			return l, true
		}
	case OpDiv:
		if isIntOne(r) {
			return l, true
		}
	case OpXor:
		if isIntZero(l) {
			return r, true
		}
		if isIntZero(r) {
			return l, true
		}
		if Equal(l, r) {
			return IntConst{V: 0}, true
		}
	case OpOr:
		if isIntZero(l) {
			return r, true
		}
		if isIntZero(r) {
			return l, true
		}
	case OpAnd:
		if isIntZero(l) || isIntZero(r) {
			return IntConst{V: 0}, true
		}
	case OpEq:
		if Equal(l, r) {
			return IntConst{V: 1}, true
		}
	case OpNe:
		if Equal(l, r) {
			return IntConst{V: 0}, true
		}
	case OpLAnd:
		if isIntZero(l) || isIntZero(r) {
			return IntConst{V: 0}, true
		}
		if c, ok := l.(IntConst); ok && c.V != 0 {
			return truthOf(r), true
		}
		if c, ok := r.(IntConst); ok && c.V != 0 {
			return truthOf(l), true
		}
	case OpLOr:
		if c, ok := l.(IntConst); ok {
			if c.V != 0 {
				return IntConst{V: 1}, true
			}
			return truthOf(r), true
		}
		if c, ok := r.(IntConst); ok {
			if c.V != 0 {
				return IntConst{V: 1}, true
			}
			return truthOf(l), true
		}
	}
	return nil, false
}

// truthOf normalizes an expression used in boolean position: comparisons
// pass through, everything else becomes (e != 0).
func truthOf(e Expr) Expr {
	if b, ok := e.(*Binary); ok && (b.Op.IsComparison() || b.Op.IsLogical()) {
		return e
	}
	if u, ok := e.(*Unary); ok && u.Op == OpLNot {
		return e
	}
	return NewBinary(OpNe, e, IntConst{V: 0})
}

// Truth exposes truthOf for engine callers that need to coerce a value into
// a path-condition formula.
func Truth(e Expr) Expr { return truthOf(e) }

// Negate returns the logical negation of a boolean-position expression,
// flipping comparison operators where possible so path conditions stay
// readable (reg0[1] == 0 vs reg0[1] != 0, as in Table IV).
func Negate(e Expr) Expr {
	if b, ok := e.(*Binary); ok {
		var flipped Op
		switch b.Op {
		case OpEq:
			flipped = OpNe
		case OpNe:
			flipped = OpEq
		case OpLt:
			flipped = OpGe
		case OpLe:
			flipped = OpGt
		case OpGt:
			flipped = OpLe
		case OpGe:
			flipped = OpLt
		default:
			return NewUnary(OpLNot, truthOf(e))
		}
		return NewBinary(flipped, b.L, b.R)
	}
	if u, ok := e.(*Unary); ok && u.Op == OpLNot {
		return truthOf(u.X)
	}
	return NewUnary(OpLNot, truthOf(e))
}

func containsFloat(e Expr) bool {
	switch v := e.(type) {
	case FloatConst:
		return true
	case *Binary:
		return containsFloat(v.L) || containsFloat(v.R)
	case *Unary:
		return containsFloat(v.X)
	case *Call:
		return true // math builtins return floats
	default:
		return false
	}
}
