package sym

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExtractAffineBasics(t *testing.T) {
	b := newTestBuilder()
	s1 := b.FreshSecret("")
	s2 := b.FreshSecret("")

	// 2*s1 + 3*s2 + 7
	e := NewBinary(OpAdd,
		NewBinary(OpAdd,
			NewBinary(OpMul, IntConst{V: 2}, s1),
			NewBinary(OpMul, IntConst{V: 3}, s2)),
		IntConst{V: 7})
	a := ExtractAffine(e)
	if a == nil {
		t.Fatal("affine extraction failed")
	}
	if a.Const != 7 || a.Coef[s1.ID] != 2 || a.Coef[s2.ID] != 3 {
		t.Errorf("form = %+v", a)
	}
	if len(a.Symbols()) != 2 {
		t.Errorf("Symbols = %v", a.Symbols())
	}
}

func TestExtractAffineCancellation(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	// (s + 5) - s = 5 — coefficient cancels to zero.
	e := &Binary{Op: OpSub, L: &Binary{Op: OpAdd, L: s, R: IntConst{V: 5}}, R: s}
	a := ExtractAffine(e)
	if a == nil {
		t.Fatal("extraction failed")
	}
	if !a.IsConstant() || a.Const != 5 {
		t.Errorf("form = %+v, want constant 5", a)
	}
}

func TestExtractAffineRejectsNonLinear(t *testing.T) {
	b := newTestBuilder()
	s1 := b.FreshSecret("")
	s2 := b.FreshSecret("")
	tests := []struct {
		name string
		e    Expr
	}{
		{"sym*sym", &Binary{Op: OpMul, L: s1, R: s2}},
		{"div-by-sym", &Binary{Op: OpDiv, L: IntConst{V: 1}, R: s1}},
		{"bitand", &Binary{Op: OpAnd, L: s1, R: IntConst{V: 3}}},
		{"comparison", NewBinary(OpLt, s1, IntConst{V: 3})},
		{"lnot", NewUnary(OpLNot, s1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if a := ExtractAffine(tt.e); a != nil {
				t.Errorf("ExtractAffine(%s) = %+v, want nil", tt.e, a)
			}
		})
	}
}

func TestExtractAffineDivByConst(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	e := &Binary{Op: OpDiv, L: NewBinary(OpMul, IntConst{V: 4}, s), R: IntConst{V: 2}}
	a := ExtractAffine(e)
	if a == nil || a.Coef[s.ID] != 2 {
		t.Fatalf("form = %+v, want coef 2", a)
	}
}

func TestInvertForExample1(t *testing.T) {
	// Paper Example 1: h1 = 2*s1 leaks; x = 2*s1 + 3*s2 does not leak
	// deterministically but is invertible given s2.
	b := newTestBuilder()
	s1 := b.FreshSecret("")
	s2 := b.FreshSecret("")

	h1 := NewBinary(OpMul, IntConst{V: 2}, s1)
	inv, ok := InvertFor(h1, s1.ID)
	if !ok {
		t.Fatal("h1 must be invertible for s1")
	}
	if !inv.Exact || inv.Scale != 2 || inv.Offset != 0 {
		t.Errorf("inversion = %+v", inv)
	}

	x := NewBinary(OpAdd, h1, NewBinary(OpMul, IntConst{V: 3}, s2))
	inv, ok = InvertFor(x, s1.ID)
	if !ok {
		t.Fatal("x must be affine in s1")
	}
	if inv.Exact {
		t.Error("x involves s2, inversion must not be Exact")
	}
	if len(inv.Masking) != 1 || inv.Masking[0] != s2 {
		t.Errorf("Masking = %v, want [s2]", inv.Masking)
	}
}

func TestInvertForListing1(t *testing.T) {
	// output[0] = secrets[0] + 101 from the paper's Listing 1.
	b := newTestBuilder()
	s0 := b.FreshSecret("secrets[0]")
	e := NewBinary(OpAdd, s0, IntConst{V: 101})
	inv, ok := InvertFor(e, s0.ID)
	if !ok || !inv.Exact {
		t.Fatalf("inversion = %+v, %v", inv, ok)
	}
	if inv.Scale != 1 || inv.Offset != 101 {
		t.Errorf("scale/offset = %g/%g, want 1/101", inv.Scale, inv.Offset)
	}
	if inv.Formula() != "secrets[0] = (observed - 101) / 1" {
		t.Errorf("Formula = %q", inv.Formula())
	}
}

func TestInvertForFailures(t *testing.T) {
	b := newTestBuilder()
	s1 := b.FreshSecret("")
	s2 := b.FreshSecret("")
	if _, ok := InvertFor(NewBinary(OpMul, s1, s2), s1.ID); ok {
		t.Error("non-linear expression must not invert")
	}
	if _, ok := InvertFor(NewBinary(OpMul, IntConst{V: 2}, s2), s1.ID); ok {
		t.Error("expression without s1 must not invert for s1")
	}
}

// Property: for a random affine expression a·s + b (a ≠ 0), InvertFor
// recovers s from the evaluated output.
func TestInversionRoundTrip(t *testing.T) {
	f := func(a int8, bb int16, secret int16) bool {
		if a == 0 {
			return true
		}
		builder := newTestBuilder()
		s := builder.FreshSecret("")
		e := NewBinary(OpAdd,
			NewBinary(OpMul, IntConst{V: int32(a)}, s),
			IntConst{V: int32(bb)})
		inv, ok := InvertFor(e, s.ID)
		if !ok || !inv.Exact {
			return false
		}
		out, err := Eval(e, Binding{s.ID: IntVal(int32(secret))})
		if err != nil {
			return false
		}
		recovered := (out.AsFloat() - inv.Offset) / inv.Scale
		return math.Abs(recovered-float64(secret)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
