package sym

import (
	"testing"
)

// skel builds a skeleton from an expression over two placeholder symbols.
func skelFixture(t *testing.T) (*SumExpr, *Builder, Expr) {
	t.Helper()
	b := newTestBuilder()
	p0 := b.FreshPublic("x")
	p1 := b.FreshPublic("y")
	// (x + y) * 3 - (x + y)  — shares the (x + y) subtree.
	sum := NewBinary(OpAdd, p0, p1)
	e := NewBinary(OpSub, NewBinary(OpMul, sum, IntConst{V: 3}), sum)
	s, err := Abstract(e, map[int]int{p0.ID: 0, p1.ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s, b, e
}

func TestAbstractInstantiateRoundtrip(t *testing.T) {
	s, b, orig := skelFixture(t)
	// Instantiating with the original placeholders must rebuild the exact
	// expression (folds replay identically).
	got, err := s.Instantiate([]Expr{b.Lookup(1), b.Lookup(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, orig) {
		t.Errorf("roundtrip: got %s, want %s", got, orig)
	}
}

func TestAbstractSharingPreserved(t *testing.T) {
	s, _, _ := skelFixture(t)
	// The shared (x + y) subtree must be one skeleton node, not two.
	if s.Kind != SumBin || s.Args[0].Kind != SumBin {
		t.Fatalf("unexpected skeleton shape")
	}
	mul := s.Args[0]
	if mul.Args[0] != s.Args[1] {
		t.Errorf("shared subtree duplicated in skeleton")
	}
}

func TestAbstractRejectsFreeSymbol(t *testing.T) {
	b := newTestBuilder()
	p := b.FreshPublic("x")
	stray := b.FreshSecret("conjured")
	e := NewBinary(OpAdd, p, stray)
	if _, err := Abstract(e, map[int]int{p.ID: 0}); err == nil {
		t.Errorf("free symbol accepted")
	}
}

func TestInstantiateSubstitutesArguments(t *testing.T) {
	b := newTestBuilder()
	p := b.FreshPublic("x")
	s, err := Abstract(NewBinary(OpMul, p, IntConst{V: 2}), map[int]int{p.ID: 0})
	if err != nil {
		t.Fatal(err)
	}
	sec := b.FreshSecret("s")
	got, err := s.Instantiate([]Expr{NewBinary(OpAdd, sec, IntConst{V: 1})})
	if err != nil {
		t.Fatal(err)
	}
	want := NewBinary(OpMul, NewBinary(OpAdd, sec, IntConst{V: 1}), IntConst{V: 2})
	if !Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
	if _, err := s.Instantiate(nil); err == nil {
		t.Errorf("out-of-range slot accepted")
	}
}

func TestArgSafe(t *testing.T) {
	b := newTestBuilder()
	x := b.FreshSecret("x")
	cases := []struct {
		e    Expr
		want bool
	}{
		{x, true},
		{IntConst{V: 7}, true},
		{NewBinary(OpAdd, x, IntConst{V: 1}), true},
		{FloatConst{V: 1.5}, false},
		{NewBinary(OpAdd, x, FloatConst{V: 1}), false},
		{NewBinary(OpLt, x, IntConst{V: 3}), false},
		{NewUnary(OpLNot, x), false},
		{NewCall("sqrt", []Expr{x}), false},
	}
	for _, c := range cases {
		if got := ArgSafe(c.e); got != c.want {
			t.Errorf("ArgSafe(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestSumCodecRoundtrip(t *testing.T) {
	s, _, _ := skelFixture(t)
	payload := EncodeSum(s)
	got, err := DecodeSum(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Structural equality via re-instantiation with fresh placeholders.
	b := newTestBuilder()
	args := []Expr{b.FreshPublic("a"), b.FreshPublic("b")}
	e1, err1 := s.Instantiate(args)
	e2, err2 := got.Instantiate(args)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !Equal(e1, e2) {
		t.Errorf("decoded skeleton differs: %s vs %s", e1, e2)
	}
}

func TestDecodeSumRejectsCorruption(t *testing.T) {
	s, _, _ := skelFixture(t)
	payload := EncodeSum(s)
	if _, err := DecodeSum(nil); err == nil {
		t.Errorf("empty payload accepted")
	}
	if _, err := DecodeSum(payload[:len(payload)-1]); err == nil {
		t.Errorf("truncated payload accepted")
	}
	if _, err := DecodeSum(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Errorf("trailing garbage accepted")
	}
	for i := range payload {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0xFF
		// Must not panic; errors are fine, and a silently "valid" decode is
		// fine too as long as it terminates (the engine cross-checks arity
		// at instantiation time).
		DecodeSum(mut)
	}
}
