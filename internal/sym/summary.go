package sym

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file defines the serializable skeleton of a function summary: a
// builder-independent expression form where engine-minted symbols are
// replaced by parameter slots. A skeleton is captured once from a scratch
// symbolic run of the callee (Abstract), persisted (EncodeSum/DecodeSum),
// and replayed at every call site by substituting the actual argument
// expressions (Instantiate). Instantiate rebuilds the expression bottom-up
// through the same folding constructors (NewBinary, NewUnary, NewCall) the
// inline engine uses, so a summary application produces the byte-identical
// expression an inlined execution of the callee would have produced —
// provided the arguments satisfy ArgSafe.

// SumKind discriminates SumExpr nodes.
type SumKind uint8

// SumExpr node kinds.
const (
	SumInt   SumKind = iota + 1 // integer constant
	SumFloat                    // float constant
	SumParam                    // parameter slot (Param = index)
	SumBin                      // binary operation (Args[0], Args[1])
	SumUn                       // unary operation (Args[0])
	SumApp                      // uninterpreted/math call (Name, Args)
)

// SumExpr is one node of a summary skeleton. Unlike Expr it references no
// Builder and no symbol IDs, so a table of skeletons keyed by function name
// is shareable across independently parsed copies of a module (the
// WithParallelism per-job re-parse) and across processes via the codec.
type SumExpr struct {
	Kind  SumKind
	Int   int32
	Float float64
	Param int
	Op    Op
	Name  string
	Args  []*SumExpr
}

// ErrFreeSymbol is returned by Abstract when the expression references a
// symbol that is not one of the declared parameter placeholders — i.e. the
// callee conjured state the summary cannot account for.
var ErrFreeSymbol = errors.New("sym: expression references a non-parameter symbol")

// Abstract converts a scratch-run return expression over placeholder
// symbols into a skeleton over parameter slots. paramOf maps placeholder
// symbol IDs to parameter indices; any other symbol fails with
// ErrFreeSymbol. Shared subtrees map to shared SumExpr nodes (the memo
// keeps the walk — and the skeleton — linear in the DAG).
func Abstract(e Expr, paramOf map[int]int) (*SumExpr, error) {
	return abstract(e, paramOf, make(map[Expr]*SumExpr))
}

func abstract(e Expr, paramOf map[int]int, memo map[Expr]*SumExpr) (*SumExpr, error) {
	if s, ok := memo[e]; ok {
		return s, nil
	}
	var s *SumExpr
	switch v := e.(type) {
	case IntConst:
		s = &SumExpr{Kind: SumInt, Int: v.V}
	case FloatConst:
		s = &SumExpr{Kind: SumFloat, Float: v.V}
	case *Symbol:
		idx, ok := paramOf[v.ID]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrFreeSymbol, v.Name)
		}
		s = &SumExpr{Kind: SumParam, Param: idx}
	case *Binary:
		l, err := abstract(v.L, paramOf, memo)
		if err != nil {
			return nil, err
		}
		r, err := abstract(v.R, paramOf, memo)
		if err != nil {
			return nil, err
		}
		s = &SumExpr{Kind: SumBin, Op: v.Op, Args: []*SumExpr{l, r}}
	case *Unary:
		x, err := abstract(v.X, paramOf, memo)
		if err != nil {
			return nil, err
		}
		s = &SumExpr{Kind: SumUn, Op: v.Op, Args: []*SumExpr{x}}
	case *Call:
		args := make([]*SumExpr, len(v.Args))
		for i, a := range v.Args {
			sa, err := abstract(a, paramOf, memo)
			if err != nil {
				return nil, err
			}
			args[i] = sa
		}
		s = &SumExpr{Kind: SumApp, Name: v.Name, Args: args}
	default:
		return nil, fmt.Errorf("sym: cannot abstract %T", e)
	}
	memo[e] = s
	return s, nil
}

// Instantiate substitutes args for the skeleton's parameter slots and
// rebuilds the expression through the folding constructors. Shared skeleton
// nodes instantiate once (per-node memo), preserving the DAG sharing the
// original expression had — without it a deeply shared skeleton would
// explode into a tree. Errors (out-of-range slot, unknown node kind) are
// the caller's signal to fall back to inlining.
func (s *SumExpr) Instantiate(args []Expr) (Expr, error) {
	return s.instantiate(nil, args, make(map[*SumExpr]Expr))
}

// InstantiateIn is Instantiate with the replay routed through an intern
// arena: every rebuilt node is canonicalized in it, so summary-mode
// expressions share identity with inline-mode ones and downstream
// pointer-keyed caches stay hot. A nil arena degrades to plain Instantiate.
func (s *SumExpr) InstantiateIn(in *Interner, args []Expr) (Expr, error) {
	return s.instantiate(in, args, make(map[*SumExpr]Expr))
}

func (s *SumExpr) instantiate(in *Interner, args []Expr, memo map[*SumExpr]Expr) (Expr, error) {
	if e, ok := memo[s]; ok {
		return e, nil
	}
	var e Expr
	switch s.Kind {
	case SumInt:
		e = IntConst{V: s.Int}
	case SumFloat:
		e = FloatConst{V: s.Float}
	case SumParam:
		if s.Param < 0 || s.Param >= len(args) || args[s.Param] == nil {
			return nil, fmt.Errorf("sym: summary parameter slot %d out of range (%d args)", s.Param, len(args))
		}
		e = args[s.Param]
	case SumBin:
		if len(s.Args) != 2 {
			return nil, errors.New("sym: malformed binary skeleton node")
		}
		l, err := s.Args[0].instantiate(in, args, memo)
		if err != nil {
			return nil, err
		}
		r, err := s.Args[1].instantiate(in, args, memo)
		if err != nil {
			return nil, err
		}
		e = in.NewBinary(s.Op, l, r)
	case SumUn:
		if len(s.Args) != 1 {
			return nil, errors.New("sym: malformed unary skeleton node")
		}
		x, err := s.Args[0].instantiate(in, args, memo)
		if err != nil {
			return nil, err
		}
		e = in.NewUnary(s.Op, x)
	case SumApp:
		ca := make([]Expr, len(s.Args))
		for i, a := range s.Args {
			ce, err := a.instantiate(in, args, memo)
			if err != nil {
				return nil, err
			}
			ca[i] = ce
		}
		e = in.NewCall(s.Name, ca)
	default:
		return nil, fmt.Errorf("sym: unknown skeleton kind %d", s.Kind)
	}
	memo[s] = e
	return e, nil
}

// ArgSafe reports whether substituting e for a pure-summary parameter slot
// preserves constructor-fold equality with inline execution. Two
// constructor folds inspect operand *shape* and would fire differently
// under an opaque placeholder than under the actual argument:
//
//   - the Equal-operand identities (x-x → 0, x^x → 0, x==x → 1, …) are
//     gated on !containsFloat, so a float-carrying or call-carrying
//     argument would suppress at a call site a fold the skeleton already
//     committed to;
//   - the logical identities route operands through truthOf, which passes
//     comparison/logical shapes through unchanged but wraps everything else
//     (including a bare placeholder) in `(e != 0)`.
//
// Rejecting those argument shapes keeps every other fold confluent between
// skeleton capture and call-site instantiation.
func ArgSafe(e Expr) bool {
	if containsFloat(e) {
		return false
	}
	switch v := e.(type) {
	case *Binary:
		if v.Op.IsComparison() || v.Op.IsLogical() {
			return false
		}
	case *Unary:
		if v.Op == OpLNot {
			return false
		}
	}
	return true
}

// Codec. The skeleton DAG is flattened into a node table in child-first
// order; children are referenced by index, which must be strictly smaller
// than the referencing node's own index — DecodeSum enforces this, so a
// corrupted payload can produce an error but never a cycle or a panic.
const (
	sumMagicByte byte = 0xA7
	sumVersion   byte = 1
)

// Codec hard limits: a payload exceeding them is rejected as corrupt
// rather than allocated.
const (
	maxSumNodes   = 1 << 20
	maxSumName    = 1 << 12
	maxSumArity   = 1 << 12
	maxSumPayload = 1 << 26
)

// EncodeSum serializes a skeleton. The format is versioned; DecodeSum
// rejects anything it does not recognize.
func EncodeSum(s *SumExpr) []byte {
	var nodes []*SumExpr
	index := make(map[*SumExpr]int)
	var flatten func(n *SumExpr) int
	flatten = func(n *SumExpr) int {
		if i, ok := index[n]; ok {
			return i
		}
		for _, a := range n.Args {
			flatten(a)
		}
		i := len(nodes)
		index[n] = i
		nodes = append(nodes, n)
		return i
	}
	flatten(s)

	buf := []byte{sumMagicByte, sumVersion}
	buf = binary.AppendUvarint(buf, uint64(len(nodes)))
	for _, n := range nodes {
		buf = append(buf, byte(n.Kind))
		switch n.Kind {
		case SumInt:
			buf = binary.AppendVarint(buf, int64(n.Int))
		case SumFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.Float))
		case SumParam:
			buf = binary.AppendUvarint(buf, uint64(n.Param))
		case SumBin, SumUn:
			buf = append(buf, byte(n.Op))
			for _, a := range n.Args {
				buf = binary.AppendUvarint(buf, uint64(index[a]))
			}
		case SumApp:
			buf = binary.AppendUvarint(buf, uint64(len(n.Name)))
			buf = append(buf, n.Name...)
			buf = binary.AppendUvarint(buf, uint64(len(n.Args)))
			for _, a := range n.Args {
				buf = binary.AppendUvarint(buf, uint64(index[a]))
			}
		}
	}
	return buf
}

var errCorrupt = errors.New("sym: corrupt summary skeleton")

type sumReader struct {
	data []byte
	off  int
}

func (r *sumReader) byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, errCorrupt
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *sumReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, errCorrupt
	}
	r.off += n
	return v, nil
}

func (r *sumReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, errCorrupt
	}
	r.off += n
	return v, nil
}

func (r *sumReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, errCorrupt
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

// DecodeSum parses an EncodeSum payload. Every length, index and operator
// is bounds-checked; malformed input returns an error (the caller degrades
// to recomputing the summary) and never panics.
func DecodeSum(data []byte) (*SumExpr, error) {
	if len(data) > maxSumPayload {
		return nil, errCorrupt
	}
	r := &sumReader{data: data}
	magic, err := r.byte()
	if err != nil || magic != sumMagicByte {
		return nil, errCorrupt
	}
	ver, err := r.byte()
	if err != nil || ver != sumVersion {
		return nil, errCorrupt
	}
	count, err := r.uvarint()
	if err != nil || count == 0 || count > maxSumNodes {
		return nil, errCorrupt
	}
	child := func(self uint64) (*SumExpr, error) { return nil, errCorrupt } // replaced below
	nodes := make([]*SumExpr, 0, min(int(count), 1024))
	child = func(self uint64) (*SumExpr, error) {
		i, err := r.uvarint()
		if err != nil || i >= self {
			return nil, errCorrupt
		}
		return nodes[i], nil
	}
	for i := uint64(0); i < count; i++ {
		kb, err := r.byte()
		if err != nil {
			return nil, errCorrupt
		}
		n := &SumExpr{Kind: SumKind(kb)}
		switch n.Kind {
		case SumInt:
			v, err := r.varint()
			if err != nil || v < math.MinInt32 || v > math.MaxInt32 {
				return nil, errCorrupt
			}
			n.Int = int32(v)
		case SumFloat:
			b, err := r.bytes(8)
			if err != nil {
				return nil, errCorrupt
			}
			n.Float = math.Float64frombits(binary.LittleEndian.Uint64(b))
		case SumParam:
			v, err := r.uvarint()
			if err != nil || v > maxSumArity {
				return nil, errCorrupt
			}
			n.Param = int(v)
		case SumBin, SumUn:
			ob, err := r.byte()
			if err != nil {
				return nil, errCorrupt
			}
			n.Op = Op(ob)
			if n.Op < OpAdd || n.Op > OpLNot {
				return nil, errCorrupt
			}
			arity := 2
			if n.Kind == SumUn {
				arity = 1
			}
			for j := 0; j < arity; j++ {
				c, err := child(i)
				if err != nil {
					return nil, err
				}
				n.Args = append(n.Args, c)
			}
		case SumApp:
			nl, err := r.uvarint()
			if err != nil || nl > maxSumName {
				return nil, errCorrupt
			}
			nb, err := r.bytes(int(nl))
			if err != nil {
				return nil, errCorrupt
			}
			n.Name = string(nb)
			argc, err := r.uvarint()
			if err != nil || argc > maxSumArity {
				return nil, errCorrupt
			}
			for j := uint64(0); j < argc; j++ {
				c, err := child(i)
				if err != nil {
					return nil, err
				}
				n.Args = append(n.Args, c)
			}
		default:
			return nil, errCorrupt
		}
		nodes = append(nodes, n)
	}
	if r.off != len(data) {
		return nil, errCorrupt
	}
	return nodes[len(nodes)-1], nil
}
