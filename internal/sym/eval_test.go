package sym

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEvalBasics(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	bind := Binding{s.ID: IntVal(10)}

	tests := []struct {
		name string
		e    Expr
		want Value
	}{
		{"const", IntConst{V: 5}, IntVal(5)},
		{"float-const", FloatConst{V: 2.5}, FloatVal(2.5)},
		{"symbol", s, IntVal(10)},
		{"affine", &Binary{Op: OpAdd, L: &Binary{Op: OpMul, L: IntConst{V: 2}, R: s}, R: IntConst{V: 1}}, IntVal(21)},
		{"cmp-true", &Binary{Op: OpGt, L: s, R: IntConst{V: 5}}, IntVal(1)},
		{"cmp-false", &Binary{Op: OpLt, L: s, R: IntConst{V: 5}}, IntVal(0)},
		{"neg", &Unary{Op: OpNeg, X: s}, IntVal(-10)},
		{"lnot", &Unary{Op: OpLNot, X: s}, IntVal(0)},
		{"mixed-float", &Binary{Op: OpMul, L: s, R: FloatConst{V: 0.5}}, FloatVal(5)},
		{"rem", &Binary{Op: OpRem, L: s, R: IntConst{V: 3}}, IntVal(1)},
		{"shift", &Binary{Op: OpShl, L: s, R: IntConst{V: 2}}, IntVal(40)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Eval(tt.e, bind)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(tt.want) {
				t.Errorf("Eval(%s) = %v, want %v", tt.e, got, tt.want)
			}
		})
	}
}

func TestEvalErrors(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	if _, err := Eval(s, Binding{}); !errors.Is(err, ErrUnbound) {
		t.Errorf("unbound symbol err = %v", err)
	}
	e := &Binary{Op: OpDiv, L: IntConst{V: 1}, R: IntConst{V: 0}}
	if _, err := Eval(e, Binding{}); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("div-by-zero err = %v", err)
	}
	m := &Binary{Op: OpRem, L: IntConst{V: 1}, R: IntConst{V: 0}}
	if _, err := Eval(m, Binding{}); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("rem-by-zero err = %v", err)
	}
}

func TestEvalShortCircuit(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("") // deliberately unbound

	and := &Binary{Op: OpLAnd, L: IntConst{V: 0}, R: s}
	got, err := Eval(and, Binding{})
	if err != nil || !got.Equal(IntVal(0)) {
		t.Errorf("0 && s = %v, %v; want 0", got, err)
	}
	or := &Binary{Op: OpLOr, L: IntConst{V: 1}, R: s}
	got, err = Eval(or, Binding{})
	if err != nil || !got.Equal(IntVal(1)) {
		t.Errorf("1 || s = %v, %v; want 1", got, err)
	}
}

func TestValueHelpers(t *testing.T) {
	if !IntVal(0).IsZero() || IntVal(1).IsZero() {
		t.Error("IsZero on ints wrong")
	}
	if !FloatVal(0).IsZero() || FloatVal(0.5).IsZero() {
		t.Error("IsZero on floats wrong")
	}
	if IntVal(3).AsFloat() != 3 || FloatVal(3.7).AsInt() != 3 {
		t.Error("conversions wrong")
	}
	if !IntVal(3).Equal(FloatVal(3)) {
		t.Error("int 3 must equal float 3")
	}
	if IntVal(3).String() != "3" || FloatVal(1.5).String() != "1.5" {
		t.Error("String wrong")
	}
}

func TestSubstitute(t *testing.T) {
	b := newTestBuilder()
	s1 := b.FreshSecret("")
	s2 := b.FreshSecret("")
	e := &Binary{Op: OpAdd, L: &Binary{Op: OpMul, L: IntConst{V: 2}, R: s1}, R: s2}

	partial := Substitute(e, Binding{s1.ID: IntVal(5)})
	// 2*5 + s2 = 10 + s2; s2 remains free.
	syms := FreeSymbols(partial)
	if len(syms) != 1 || syms[0] != s2 {
		t.Errorf("partial substitution free syms = %v", syms)
	}

	full := Substitute(e, Binding{s1.ID: IntVal(5), s2.ID: IntVal(1)})
	c, ok := full.(IntConst)
	if !ok || c.V != 11 {
		t.Errorf("full substitution = %s, want 11", full)
	}
}

// Property: folding (via NewBinary) and direct evaluation agree on concrete
// integer expressions for non-trapping operators.
func TestFoldEvalAgreement(t *testing.T) {
	ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLAnd, OpLOr}
	f := func(a, b int32, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		folded := NewBinary(op, IntConst{V: a}, IntConst{V: b})
		fc, ok := folded.(IntConst)
		if !ok {
			return false
		}
		evaluated, err := evalBinary(op, IntVal(a), IntVal(b))
		if err != nil {
			return false
		}
		return evaluated.I == fc.V
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Substitute with a full binding agrees with Eval.
func TestSubstituteEvalAgreement(t *testing.T) {
	f := func(x, y int16) bool {
		b := newTestBuilder()
		s1 := b.FreshSecret("")
		s2 := b.FreshSecret("")
		e := &Binary{
			Op: OpAdd,
			L:  &Binary{Op: OpMul, L: s1, R: IntConst{V: 3}},
			R:  &Binary{Op: OpSub, L: s2, R: IntConst{V: 7}},
		}
		bind := Binding{s1.ID: IntVal(int32(x)), s2.ID: IntVal(int32(y))}
		sub := Substitute(e, bind)
		c, ok := sub.(IntConst)
		if !ok {
			return false
		}
		ev, err := Eval(e, bind)
		if err != nil {
			return false
		}
		return ev.I == c.V
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
