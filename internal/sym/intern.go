package sym

import (
	"math"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
)

// Interner is a hash-consing arena for expression nodes: structurally equal
// composites interned through the same arena are the same pointer, so
// equality on canonical nodes is a pointer comparison and downstream caches
// (the solver's feasibility memo and per-atom analysis) can key on identity
// instead of re-walking DAGs.
//
// The arena is shared read-only across path workers: lookups go through
// sync.Map with no lock on the read path, and a losing racer on insert
// simply adopts the winner's node. Leaves need no table — IntConst and
// FloatConst are comparable values, *Symbol is already canonical per
// Builder. For the same reason an arena must only see expressions built
// over a single Builder's symbols (two Builders reuse IDs, which would
// break the "distinct canonical nodes are structurally unequal"
// invariant); the engine owns exactly one of each, which satisfies this.
//
// NaN constants are deliberately never canonicalized: sym.Equal treats
// NaN != NaN (matching C semantics), and a NaN inside a map key can never
// be looked up again, so composites with a direct NaN child are returned
// as fresh un-tagged nodes. That keeps the intern invariant exact — two
// NaN-bearing composites are distinct pointers AND structurally unequal.
// ±0.0 float children, conversely, intern to one node: Go map keys and
// sym.Equal both consider +0.0 == -0.0.
type Interner struct {
	nextID atomic.Uint64

	bins  sync.Map // binKey  -> *Binary
	uns   sync.Map // unKey   -> *Unary
	calls sync.Map // string  -> *Call
	// symIDs assigns arena-local dense IDs to symbols for call-key tokens,
	// so call keys never depend on Builder ID uniqueness across arenas.
	symIDs    sync.Map // *Symbol -> uint64
	nextSymID atomic.Uint64

	hits   atomic.Int64
	misses atomic.Int64
	size   atomic.Int64
}

// binKey and unKey are comparable: children are canonical, so interface
// equality (value equality for consts, pointer equality for composites and
// symbols) is exactly structural equality.
type binKey struct {
	op   Op
	l, r Expr
}

type unKey struct {
	op Op
	x  Expr
}

// internTag is carried (unexported) by composite nodes: the owning arena
// and a per-arena dense ID used for cheap canonical cache keys.
type internTag struct {
	arena *Interner
	id    uint64
}

// NewInterner returns an empty arena.
func NewInterner() *Interner { return &Interner{} }

// Stats returns the cumulative table hits, misses (fresh inserts), and the
// current table size (distinct canonical composites).
func (in *Interner) Stats() (hits, misses, size int64) {
	if in == nil {
		return 0, 0, 0
	}
	return in.hits.Load(), in.misses.Load(), in.size.Load()
}

// Intern returns the canonical representative of e in this arena,
// rebuilding bottom-up. Already-canonical nodes return themselves in O(1).
// A nil receiver is the identity, so call sites need no interning branch.
func (in *Interner) Intern(e Expr) Expr {
	if in == nil || e == nil {
		return e
	}
	switch v := e.(type) {
	case IntConst, FloatConst, *Symbol:
		return e
	case *Binary:
		if v.tag.arena == in {
			return e
		}
		l, r := in.Intern(v.L), in.Intern(v.R)
		if n, ok := in.binary(v.Op, l, r); ok {
			return n
		}
		// Un-internable (direct NaN child): Intern is the identity. Any
		// rebuild would be intern-equivalent to v yet not Equal to it
		// (NaN != NaN), breaking the iff property — a NaN-bearing node is
		// canonical only of itself.
		return v
	case *Unary:
		if v.tag.arena == in {
			return e
		}
		x := in.Intern(v.X)
		if n, ok := in.unary(v.Op, x); ok {
			return n
		}
		return v
	case *Call:
		if v.tag.arena == in {
			return e
		}
		args := make([]Expr, len(v.Args))
		for i, a := range v.Args {
			args[i] = in.Intern(a)
		}
		if n, ok := in.call(v.Name, args); ok {
			return n
		}
		return v
	}
	return e
}

// NewBinary folds like sym.NewBinary, then interns the result. Folding
// semantics are unchanged — the fold runs first on the interned operands,
// and only the constructed node is canonicalized.
func (in *Interner) NewBinary(op Op, l, r Expr) Expr {
	if in == nil {
		return NewBinary(op, l, r)
	}
	// Interning the operands first lets the fold's Equal calls (x-x, x==x,
	// …) take the pointer fast path, and makes the folded node internable
	// by table lookup instead of a recursive walk.
	return in.Intern(NewBinary(op, in.Intern(l), in.Intern(r)))
}

// NewUnary folds like sym.NewUnary, then interns the result.
func (in *Interner) NewUnary(op Op, x Expr) Expr {
	if in == nil {
		return NewUnary(op, x)
	}
	return in.Intern(NewUnary(op, in.Intern(x)))
}

// NewCall folds like sym.NewCall, then interns the result.
func (in *Interner) NewCall(name string, args []Expr) Expr {
	if in == nil {
		return NewCall(name, args)
	}
	for i, a := range args {
		args[i] = in.Intern(a)
	}
	return in.Intern(NewCall(name, args))
}

// Truth is sym.Truth followed by interning.
func (in *Interner) Truth(e Expr) Expr {
	if in == nil {
		return Truth(e)
	}
	return in.Intern(Truth(in.Intern(e)))
}

// Negate is sym.Negate followed by interning.
func (in *Interner) Negate(e Expr) Expr {
	if in == nil {
		return Negate(e)
	}
	return in.Intern(Negate(in.Intern(e)))
}

// nanConst reports a direct NaN float constant — the one leaf whose map-key
// round trip is broken (NaN != NaN), so composites with such a child skip
// the tables: each build is a fresh node, which matches Equal (NaN != NaN
// makes them structurally unequal anyway). Composite children are always
// keyed — interned ones by canonical pointer, and the only composites left
// un-interned after a child Intern pass are themselves NaN-bearers, whose
// pointer identity IS their structural identity (two distinct NaN-bearing
// nodes are never Equal), so interface equality on the key stays exactly
// structural equality.
func nanConst(e Expr) bool {
	c, ok := e.(FloatConst)
	return ok && math.IsNaN(c.V)
}

func (in *Interner) binary(op Op, l, r Expr) (Expr, bool) {
	if nanConst(l) || nanConst(r) {
		return nil, false
	}
	k := binKey{op: op, l: l, r: r}
	if got, ok := in.bins.Load(k); ok {
		in.hits.Add(1)
		return got.(*Binary), true
	}
	n := &Binary{Op: op, L: l, R: r, tag: internTag{arena: in, id: in.nextID.Add(1)}}
	if got, loaded := in.bins.LoadOrStore(k, n); loaded {
		in.hits.Add(1)
		return got.(*Binary), true
	}
	in.misses.Add(1)
	in.size.Add(1)
	return n, true
}

func (in *Interner) unary(op Op, x Expr) (Expr, bool) {
	if nanConst(x) {
		return nil, false
	}
	k := unKey{op: op, x: x}
	if got, ok := in.uns.Load(k); ok {
		in.hits.Add(1)
		return got.(*Unary), true
	}
	n := &Unary{Op: op, X: x, tag: internTag{arena: in, id: in.nextID.Add(1)}}
	if got, loaded := in.uns.LoadOrStore(k, n); loaded {
		in.hits.Add(1)
		return got.(*Unary), true
	}
	in.misses.Add(1)
	in.size.Add(1)
	return n, true
}

// call interns a Call through a string key (Args is a slice, so no
// comparable struct key exists). Tokens uniquely name children — canonical
// composites by arena ID, NaN-bearing (un-interned) composites by address
// (pinned alive by the table entry itself, so the address cannot be
// recycled into a false alias) — making key equality exactly structural
// equality. Only a direct NaN leaf argument defeats interning.
func (in *Interner) call(name string, args []Expr) (Expr, bool) {
	// Length-prefix the name so a '|' inside it cannot alias an argument
	// boundary.
	var sb []byte
	sb = append(sb, strconv.Itoa(len(name))...)
	sb = append(sb, ':')
	sb = append(sb, name...)
	for _, a := range args {
		tok, ok := in.childToken(a)
		if !ok {
			return nil, false
		}
		sb = append(sb, '|')
		sb = append(sb, tok...)
	}
	k := string(sb)
	if got, ok := in.calls.Load(k); ok {
		in.hits.Add(1)
		return got.(*Call), true
	}
	n := &Call{Name: name, Args: args, tag: internTag{arena: in, id: in.nextID.Add(1)}}
	if got, loaded := in.calls.LoadOrStore(k, n); loaded {
		in.hits.Add(1)
		return got.(*Call), true
	}
	in.misses.Add(1)
	in.size.Add(1)
	return n, true
}

func (in *Interner) childToken(e Expr) (string, bool) {
	switch v := e.(type) {
	case IntConst:
		return "i" + strconv.FormatInt(int64(v.V), 10), true
	case FloatConst:
		if math.IsNaN(v.V) {
			return "", false
		}
		if v.V == 0 { // merge ±0 like the map keys (and sym.Equal) do
			return "f0", true
		}
		return "f" + strconv.FormatUint(math.Float64bits(v.V), 16), true
	case *Symbol:
		id, ok := in.symIDs.Load(v)
		if !ok {
			id, _ = in.symIDs.LoadOrStore(v, in.nextSymID.Add(1))
		}
		return "$" + strconv.FormatUint(id.(uint64), 10), true
	case *Binary:
		if v.tag.arena != in {
			return "p" + strconv.FormatUint(uint64(reflect.ValueOf(v).Pointer()), 16), true
		}
		return "#" + strconv.FormatUint(v.tag.id, 36), true
	case *Unary:
		if v.tag.arena != in {
			return "p" + strconv.FormatUint(uint64(reflect.ValueOf(v).Pointer()), 16), true
		}
		return "#" + strconv.FormatUint(v.tag.id, 36), true
	case *Call:
		if v.tag.arena != in {
			return "p" + strconv.FormatUint(uint64(reflect.ValueOf(v).Pointer()), 16), true
		}
		return "#" + strconv.FormatUint(v.tag.id, 36), true
	}
	return "", false
}

// arenaOf returns the arena a composite node is canonical in, or nil.
func arenaOf(e Expr) *Interner {
	switch v := e.(type) {
	case *Binary:
		return v.tag.arena
	case *Unary:
		return v.tag.arena
	case *Call:
		return v.tag.arena
	}
	return nil
}

// Interned reports whether e is safe to use as an identity cache key: a
// canonical composite of some arena. (Leaves are excluded on purpose —
// callers key caches on composite identity.)
func Interned(e Expr) bool { return arenaOf(e) != nil }

// InternID returns the arena-local dense ID of a canonical composite.
// IDs are unique within one arena, so per-engine caches (the solver's
// canonical path-condition key) can use them as cheap stable tokens.
func InternID(e Expr) (uint64, bool) {
	switch v := e.(type) {
	case *Binary:
		if v.tag.arena != nil {
			return v.tag.id, true
		}
	case *Unary:
		if v.tag.arena != nil {
			return v.tag.id, true
		}
	case *Call:
		if v.tag.arena != nil {
			return v.tag.id, true
		}
	}
	return 0, false
}

// distinctInterned reports that a and b are distinct canonical composites
// of the same arena — by the interning invariant they are structurally
// unequal, so Equal can answer false without a walk. Callers have already
// ruled out a == b.
func distinctInterned(a, b Expr) bool {
	aa := arenaOf(a)
	if aa == nil {
		return false
	}
	return aa == arenaOf(b)
}
