package sym

import (
	"fmt"
	"sort"
)

// This file implements affine (linear) form extraction over symbolic
// expressions. The nonreversibility checker uses it to produce the concrete
// inversion witness for an explicit leak: if a sink value is a·s + b with
// a ≠ 0 and s the only secret involved, the attacker recovers
// s = (out − b) / a — exactly the "divide the observed value by 2" argument
// of Example 1 in the paper.

// Affine is Σ coefᵢ·symᵢ + Const with float64 coefficients (exact for the
// small integer coefficients appearing in practice).
type Affine struct {
	Coef  map[int]float64 // symbol ID → coefficient (non-zero entries only)
	Const float64
	syms  map[int]*Symbol
}

func newAffine() *Affine {
	return &Affine{Coef: make(map[int]float64), syms: make(map[int]*Symbol)}
}

func (a *Affine) addSym(s *Symbol, c float64) {
	a.Coef[s.ID] += c
	a.syms[s.ID] = s
	if a.Coef[s.ID] == 0 {
		delete(a.Coef, s.ID)
		delete(a.syms, s.ID)
	}
}

func (a *Affine) scale(k float64) {
	for id := range a.Coef {
		a.Coef[id] *= k
		if a.Coef[id] == 0 {
			delete(a.Coef, id)
			delete(a.syms, id)
		}
	}
	a.Const *= k
}

func (a *Affine) add(b *Affine, sign float64) {
	for id, c := range b.Coef {
		a.Coef[id] += sign * c
		a.syms[id] = b.syms[id]
		if a.Coef[id] == 0 {
			delete(a.Coef, id)
			delete(a.syms, id)
		}
	}
	a.Const += sign * b.Const
}

// Symbols returns the symbols with non-zero coefficients, ordered by ID.
func (a *Affine) Symbols() []*Symbol {
	out := make([]*Symbol, 0, len(a.syms))
	for _, s := range a.syms {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IsConstant reports whether the form has no symbolic part.
func (a *Affine) IsConstant() bool { return len(a.Coef) == 0 }

// clone returns an independent copy (callers mutate forms in place).
func (a *Affine) clone() *Affine {
	c := newAffine()
	c.Const = a.Const
	for id, coef := range a.Coef {
		c.Coef[id] = coef
		c.syms[id] = a.syms[id]
	}
	return c
}

// ExtractAffine attempts to view e as an affine combination of symbols.
// It returns nil when e contains a non-linear construct (symbol·symbol,
// division by a symbol, bitwise/comparison operators, …). Shared subtrees
// are extracted once (the memo keeps the walk linear in the DAG).
func ExtractAffine(e Expr) *Affine {
	return affineMemo(e, make(map[Expr]*Affine), make(map[Expr]bool))
}

func affineMemo(e Expr, memo map[Expr]*Affine, seen map[Expr]bool) *Affine {
	switch e.(type) {
	case *Binary, *Unary:
		if seen[e] {
			if f := memo[e]; f != nil {
				return f.clone()
			}
			return nil
		}
		f := extractAffineNode(e, memo, seen)
		seen[e] = true
		if f != nil {
			memo[e] = f.clone()
		}
		return f
	default:
		return extractAffineNode(e, memo, seen)
	}
}

func extractAffineNode(e Expr, memo map[Expr]*Affine, seen map[Expr]bool) *Affine {
	switch v := e.(type) {
	case IntConst:
		a := newAffine()
		a.Const = float64(v.V)
		return a
	case FloatConst:
		a := newAffine()
		a.Const = v.V
		return a
	case *Symbol:
		a := newAffine()
		a.addSym(v, 1)
		return a
	case *Unary:
		if v.Op != OpNeg {
			return nil
		}
		a := affineMemo(v.X, memo, seen)
		if a == nil {
			return nil
		}
		a.scale(-1)
		return a
	case *Binary:
		switch v.Op {
		case OpAdd, OpSub:
			l := affineMemo(v.L, memo, seen)
			r := affineMemo(v.R, memo, seen)
			if l == nil || r == nil {
				return nil
			}
			sign := 1.0
			if v.Op == OpSub {
				sign = -1
			}
			l.add(r, sign)
			return l
		case OpMul:
			l := affineMemo(v.L, memo, seen)
			r := affineMemo(v.R, memo, seen)
			if l == nil || r == nil {
				return nil
			}
			switch {
			case l.IsConstant():
				r.scale(l.Const)
				return r
			case r.IsConstant():
				l.scale(r.Const)
				return l
			default:
				return nil
			}
		case OpDiv:
			l := affineMemo(v.L, memo, seen)
			r := affineMemo(v.R, memo, seen)
			if l == nil || r == nil || !r.IsConstant() || r.Const == 0 {
				return nil
			}
			l.scale(1 / r.Const)
			return l
		}
		return nil
	default:
		return nil
	}
}

// Inversion describes how an attacker recovers a secret from an observed
// output value: secret = (observed − Offset) / Scale.
type Inversion struct {
	Secret  *Symbol
	Scale   float64 // never zero
	Offset  float64
	Exact   bool // true when no other symbols appear in the expression
	Masking []*Symbol
}

// Formula renders the inversion in human-readable form for the Box-1 style
// report, e.g. "s1 = (observed - 101) / 1".
func (inv *Inversion) Formula() string {
	return fmt.Sprintf("%s = (observed - %g) / %g", inv.Secret.Name, inv.Offset, inv.Scale)
}

// InvertFor attempts to derive the inversion recovering the secret with the
// given taint tag from expression e. It succeeds when e is affine and the
// target secret's coefficient is non-zero. Exact is true when the secret is
// the only symbol in e (deterministic recovery); otherwise Masking lists the
// other symbols the attacker would additionally need to know.
func InvertFor(e Expr, secretID int) (*Inversion, bool) {
	a := ExtractAffine(e)
	if a == nil {
		return nil, false
	}
	coef, ok := a.Coef[secretID]
	if !ok || coef == 0 {
		return nil, false
	}
	inv := &Inversion{
		Secret: a.syms[secretID],
		Scale:  coef,
		Offset: a.Const,
	}
	for _, s := range a.Symbols() {
		if s.ID != secretID {
			inv.Masking = append(inv.Masking, s)
		}
	}
	inv.Exact = len(inv.Masking) == 0
	return inv, true
}
