package sym

import (
	"testing"

	"privacyscope/internal/taint"
)

func newTestBuilder() *Builder {
	var alloc taint.Allocator
	return NewBuilder(&alloc)
}

func TestBuilderNaming(t *testing.T) {
	b := newTestBuilder()
	s1 := b.FreshSecret("")
	s2 := b.FreshSecret("")
	if s1.Name != "s1" || s2.Name != "s2" {
		t.Errorf("secret names = %q, %q; want s1, s2", s1.Name, s2.Name)
	}
	if !s1.Secret() || !s2.Secret() {
		t.Error("secrets must carry tags")
	}
	if s1.Tag == s2.Tag {
		t.Error("secret tags must be distinct")
	}
	named := b.FreshSecret("ratings[0]")
	if named.Name != "ratings[0]" {
		t.Errorf("named secret = %q", named.Name)
	}
	pub := b.FreshPublic("n")
	if pub.Secret() {
		t.Error("public symbol must not be secret")
	}
	if got := b.Lookup(s1.ID); got != s1 {
		t.Error("Lookup mismatch")
	}
	if b.Lookup(999) != nil {
		t.Error("Lookup of unknown ID should be nil")
	}
	if len(b.Symbols()) != 4 {
		t.Errorf("Symbols len = %d, want 4", len(b.Symbols()))
	}
}

func TestTaintOfDerivation(t *testing.T) {
	b := newTestBuilder()
	s1 := b.FreshSecret("")
	s2 := b.FreshSecret("")
	pub := b.FreshPublic("p")

	tests := []struct {
		name string
		e    Expr
		want taint.Label
	}{
		{"const", IntConst{V: 5}, taint.Bottom()},
		{"public-sym", pub, taint.Bottom()},
		{"one-secret", s1, taint.Single(s1.Tag)},
		{"scaled-secret", NewBinary(OpMul, IntConst{V: 2}, s1), taint.Single(s1.Tag)},
		{"two-secrets", NewBinary(OpAdd, s1, s2), taint.Top()},
		{"secret-plus-public", NewBinary(OpAdd, s1, pub), taint.Single(s1.Tag)},
		{"same-secret-twice", NewBinary(OpAdd, s1, NewBinary(OpMul, IntConst{V: 3}, s1)), taint.Single(s1.Tag)},
		{
			"example1-x",
			NewBinary(OpAdd,
				NewBinary(OpMul, IntConst{V: 2}, s1),
				NewBinary(OpMul, IntConst{V: 3}, s2)),
			taint.Top(),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TaintOf(tt.e); !got.Equal(tt.want) {
				t.Errorf("TaintOf(%s) = %v, want %v", tt.e, got, tt.want)
			}
		})
	}
}

func TestStringRendering(t *testing.T) {
	b := newTestBuilder()
	s1 := b.FreshSecret("")
	e := NewBinary(OpMul, IntConst{V: 2}, s1)
	if e.String() != "(2 * s1)" {
		t.Errorf("String = %q", e.String())
	}
	u := NewUnary(OpLNot, s1)
	if u.String() != "!s1" {
		t.Errorf("unary String = %q", u.String())
	}
}

func TestFreeSymbolsOrderedDistinct(t *testing.T) {
	b := newTestBuilder()
	s1 := b.FreshSecret("")
	s2 := b.FreshSecret("")
	e := NewBinary(OpAdd, NewBinary(OpAdd, s2, s1), s1)
	syms := FreeSymbols(e)
	if len(syms) != 2 || syms[0] != s1 || syms[1] != s2 {
		t.Errorf("FreeSymbols = %v", syms)
	}
}

func TestIsConcrete(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	if !IsConcrete(NewBinary(OpAdd, IntConst{V: 1}, FloatConst{V: 2})) {
		t.Error("const expr must be concrete")
	}
	if IsConcrete(NewBinary(OpAdd, IntConst{V: 1}, s)) {
		t.Error("symbolic expr must not be concrete")
	}
}

func TestEqualAndKey(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	e1 := NewBinary(OpAdd, s, IntConst{V: 4})
	e2 := NewBinary(OpAdd, s, IntConst{V: 4})
	e3 := NewBinary(OpAdd, s, IntConst{V: 5})
	if !Equal(e1, e2) {
		t.Error("structurally equal expressions must be Equal")
	}
	if Equal(e1, e3) {
		t.Error("different constants must not be Equal")
	}
	if Key(e1) != Key(e2) {
		t.Error("equal expressions must share a Key")
	}
	if Key(e1) == Key(e3) {
		t.Error("different expressions must have different Keys")
	}
}

func TestConstantFolding(t *testing.T) {
	tests := []struct {
		name string
		e    Expr
		want Expr
	}{
		{"add", NewBinary(OpAdd, IntConst{V: 2}, IntConst{V: 3}), IntConst{V: 5}},
		{"mul", NewBinary(OpMul, IntConst{V: 4}, IntConst{V: 5}), IntConst{V: 20}},
		{"div", NewBinary(OpDiv, IntConst{V: 7}, IntConst{V: 2}), IntConst{V: 3}},
		{"rem", NewBinary(OpRem, IntConst{V: 7}, IntConst{V: 2}), IntConst{V: 1}},
		{"eq-true", NewBinary(OpEq, IntConst{V: 3}, IntConst{V: 3}), IntConst{V: 1}},
		{"eq-false", NewBinary(OpEq, IntConst{V: 3}, IntConst{V: 4}), IntConst{V: 0}},
		{"lt", NewBinary(OpLt, IntConst{V: 3}, IntConst{V: 4}), IntConst{V: 1}},
		{"neg", NewUnary(OpNeg, IntConst{V: 3}), IntConst{V: -3}},
		{"lnot-zero", NewUnary(OpLNot, IntConst{V: 0}), IntConst{V: 1}},
		{"lnot-nonzero", NewUnary(OpLNot, IntConst{V: 9}), IntConst{V: 0}},
		{"float-add", NewBinary(OpAdd, FloatConst{V: 1.5}, FloatConst{V: 2.5}), FloatConst{V: 4}},
		{"int-float-mix", NewBinary(OpMul, IntConst{V: 2}, FloatConst{V: 1.5}), FloatConst{V: 3}},
		{"overflow-wraps", NewBinary(OpAdd, IntConst{V: 2147483647}, IntConst{V: 1}), IntConst{V: -2147483648}},
		{"shl", NewBinary(OpShl, IntConst{V: 1}, IntConst{V: 4}), IntConst{V: 16}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !Equal(tt.e, tt.want) {
				t.Errorf("got %s, want %s", tt.e, tt.want)
			}
		})
	}
}

func TestDivideByZeroStaysSymbolic(t *testing.T) {
	e := NewBinary(OpDiv, IntConst{V: 5}, IntConst{V: 0})
	if _, ok := e.(IntConst); ok {
		t.Error("x/0 must not fold to a constant")
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	zero, one := IntConst{V: 0}, IntConst{V: 1}
	tests := []struct {
		name string
		e    Expr
		want Expr
	}{
		{"x+0", NewBinary(OpAdd, s, zero), s},
		{"0+x", NewBinary(OpAdd, zero, s), s},
		{"x-0", NewBinary(OpSub, s, zero), s},
		{"x-x", NewBinary(OpSub, s, s), zero},
		{"x*1", NewBinary(OpMul, s, one), s},
		{"1*x", NewBinary(OpMul, one, s), s},
		{"x*0", NewBinary(OpMul, s, zero), zero},
		{"x/1", NewBinary(OpDiv, s, one), s},
		{"x^x", NewBinary(OpXor, s, s), zero},
		{"x^0", NewBinary(OpXor, s, zero), s},
		{"x&0", NewBinary(OpAnd, s, zero), zero},
		{"x|0", NewBinary(OpOr, s, zero), s},
		{"x==x", NewBinary(OpEq, s, s), one},
		{"x!=x", NewBinary(OpNe, s, s), zero},
		{"x&&0", NewBinary(OpLAnd, s, zero), zero},
		{"1||x", NewBinary(OpLOr, one, s), one},
		{"neg-neg", NewUnary(OpNeg, NewUnary(OpNeg, s)), s},
		{"not-not", NewUnary(OpNot, NewUnary(OpNot, s)), s},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !Equal(tt.e, tt.want) {
				t.Errorf("got %s, want %s", tt.e, tt.want)
			}
		})
	}
}

func TestTruthNormalization(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	cmp := NewBinary(OpEq, s, IntConst{V: 3})
	if Truth(cmp) != cmp {
		t.Error("comparison must pass through Truth unchanged")
	}
	tr := Truth(s)
	bin, ok := tr.(*Binary)
	if !ok || bin.Op != OpNe {
		t.Errorf("Truth(s) = %s, want (s != 0)", tr)
	}
}

func TestNegateFlipsComparisons(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	tests := []struct {
		in     Op
		wantOp Op
	}{
		{OpEq, OpNe}, {OpNe, OpEq}, {OpLt, OpGe}, {OpLe, OpGt}, {OpGt, OpLe}, {OpGe, OpLt},
	}
	for _, tt := range tests {
		e := NewBinary(tt.in, s, IntConst{V: 3})
		n := Negate(e)
		bin, ok := n.(*Binary)
		if !ok || bin.Op != tt.wantOp {
			t.Errorf("Negate(%v) = %s, want op %v", tt.in, n, tt.wantOp)
		}
	}
	// Negating a non-comparison wraps in !(e != 0).
	n := Negate(s)
	if _, ok := n.(*Unary); !ok {
		t.Errorf("Negate(s) = %s, want unary", n)
	}
	// Double negation of a comparison returns the original operator.
	e := NewBinary(OpEq, s, IntConst{V: 0})
	nn := Negate(Negate(e))
	if !Equal(nn, e) {
		t.Errorf("Negate∘Negate = %s, want %s", nn, e)
	}
}

func TestFloatFoldingMatrix(t *testing.T) {
	a, b := FloatConst{V: 7.5}, FloatConst{V: 2.5}
	tests := []struct {
		op   Op
		want Expr
	}{
		{OpAdd, FloatConst{V: 10}},
		{OpSub, FloatConst{V: 5}},
		{OpMul, FloatConst{V: 18.75}},
		{OpDiv, FloatConst{V: 3}},
		{OpEq, IntConst{V: 0}},
		{OpNe, IntConst{V: 1}},
		{OpLt, IntConst{V: 0}},
		{OpLe, IntConst{V: 0}},
		{OpGt, IntConst{V: 1}},
		{OpGe, IntConst{V: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.op.String(), func(t *testing.T) {
			got := NewBinary(tt.op, a, b)
			if !Equal(got, tt.want) {
				t.Errorf("%v: got %s, want %s", tt.op, got, tt.want)
			}
		})
	}
	// Division by float zero stays symbolic.
	if _, ok := NewBinary(OpDiv, a, FloatConst{V: 0}).(*Binary); !ok {
		t.Error("x/0.0 must stay symbolic")
	}
	if (FloatConst{V: 2.5}).String() != "2.5" {
		t.Error("FloatConst String wrong")
	}
	if !OpLAnd.IsLogical() || !OpLOr.IsLogical() || OpAdd.IsLogical() {
		t.Error("IsLogical wrong")
	}
}

func TestEvalFloatBinaryMatrix(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	bind := Binding{s.ID: FloatVal(4)}
	tests := []struct {
		op   Op
		want Value
	}{
		{OpAdd, FloatVal(6)},
		{OpSub, FloatVal(2)},
		{OpMul, FloatVal(8)},
		{OpDiv, FloatVal(2)},
		{OpEq, IntVal(0)},
		{OpNe, IntVal(1)},
		{OpLt, IntVal(0)},
		{OpLe, IntVal(0)},
		{OpGt, IntVal(1)},
		{OpGe, IntVal(1)},
		{OpLAnd, IntVal(1)},
		{OpLOr, IntVal(1)},
	}
	for _, tt := range tests {
		t.Run(tt.op.String(), func(t *testing.T) {
			got, err := Eval(&Binary{Op: tt.op, L: s, R: FloatConst{V: 2}}, bind)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(tt.want) {
				t.Errorf("%v: got %v, want %v", tt.op, got, tt.want)
			}
		})
	}
	// Float division by zero errors; bad float op errors.
	if _, err := Eval(&Binary{Op: OpDiv, L: s, R: FloatConst{V: 0}}, bind); err == nil {
		t.Error("float div by zero must error")
	}
	if _, err := Eval(&Binary{Op: OpRem, L: s, R: FloatConst{V: 2}}, bind); err == nil {
		t.Error("float %% must error")
	}
	// Unary on float values.
	neg, err := Eval(&Unary{Op: OpNeg, X: s}, bind)
	if err != nil || neg.AsFloat() != -4 {
		t.Errorf("neg = %v, %v", neg, err)
	}
	not, err := Eval(&Unary{Op: OpLNot, X: s}, bind)
	if err != nil || not.AsInt() != 0 {
		t.Errorf("lnot = %v, %v", not, err)
	}
}

func TestContainsFloatThroughCall(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	// x - x with a Call inside must NOT fold to 0 (float semantics).
	c := NewCall("sqrt", []Expr{s})
	e := NewBinary(OpSub, c, c)
	if _, ok := e.(IntConst); ok {
		t.Error("float-bearing x-x must not fold to integer 0")
	}
}
