package sym

import (
	"math"
	"math/rand"
	"testing"
)

// genExprs builds a deterministic pool of expressions over one builder,
// mixing plain construction with interned construction, duplicates with
// distinct shapes, and the float edge cases (NaN, ±0) the folding matrix
// covers. Returned pairs of structurally equal expressions are guaranteed
// to exist (each shape is built twice through different routes).
func genExprs(in *Interner, b *Builder, rng *rand.Rand, n int) []Expr {
	leaves := []Expr{
		IntConst{V: 0}, IntConst{V: 1}, IntConst{V: -7},
		FloatConst{V: 0.0}, FloatConst{V: math.Copysign(0, -1)},
		FloatConst{V: 2.5}, FloatConst{V: math.NaN()},
		b.FreshSecret("s"), b.FreshPublic("p"), b.FreshEntropy("e"),
	}
	pool := append([]Expr(nil), leaves...)
	ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpLt, OpEq, OpLAnd, OpXor}
	for len(pool) < n {
		l := pool[rng.Intn(len(pool))]
		r := pool[rng.Intn(len(pool))]
		op := ops[rng.Intn(len(ops))]
		switch rng.Intn(4) {
		case 0:
			pool = append(pool, NewBinary(op, l, r), in.NewBinary(op, l, r))
		case 1:
			pool = append(pool, NewUnary(OpNeg, l), in.NewUnary(OpNeg, l))
		case 2:
			pool = append(pool, NewCall("sqrt", []Expr{l}), in.NewCall("sqrt", []Expr{l}))
		default:
			pool = append(pool, Negate(l), in.Negate(l))
		}
	}
	return pool
}

// TestInternPropertyPairs is the satellite property test: for every pair in
// a generated pool, Intern(a) == Intern(b) (pointer/value identity) holds
// exactly when sym.Equal(a, b) (structural) does — including the NaN and
// ±0 edge cases of TestFloatFoldingMatrix.
func TestInternPropertyPairs(t *testing.T) {
	in := NewInterner()
	b := newTestBuilder()
	pool := genExprs(in, b, rand.New(rand.NewSource(1)), 300)
	canon := make([]Expr, len(pool))
	for i, e := range pool {
		canon[i] = in.Intern(e)
		if !Equal(e, canon[i]) && !structuralNaN(e) {
			t.Fatalf("Intern changed structure: %s vs %s", e, canon[i])
		}
	}
	for i := range pool {
		for j := range pool {
			same := canon[i] == canon[j]
			eq := Equal(pool[i], pool[j])
			if same != eq {
				t.Fatalf("iff violated: Intern(%s)==Intern(%s) is %v but Equal is %v",
					pool[i], pool[j], same, eq)
			}
		}
	}
}

// structuralNaN reports whether e contains a NaN constant — the one case
// where Equal(e, e') is false even for an identical rebuild, matching C
// semantics (NaN != NaN). Intern never merges such nodes.
func structuralNaN(e Expr) bool {
	switch v := e.(type) {
	case FloatConst:
		return math.IsNaN(v.V)
	case *Binary:
		return structuralNaN(v.L) || structuralNaN(v.R)
	case *Unary:
		return structuralNaN(v.X)
	case *Call:
		for _, a := range v.Args {
			if structuralNaN(a) {
				return true
			}
		}
	}
	return false
}

// TestInternFloatEdgeCases pins the two deliberate float decisions: ±0
// children intern to one canonical node (sym.Equal and Go map keys agree
// that +0 == -0), while NaN-bearing composites are never canonicalized —
// each build is a fresh pointer AND structurally unequal, keeping the iff
// property exact.
func TestInternFloatEdgeCases(t *testing.T) {
	in := NewInterner()
	b := newTestBuilder()
	s := b.FreshSecret("s")

	plusZero := in.NewBinary(OpAdd, s, FloatConst{V: 0.5})
	negZero := in.NewBinary(OpMul, s, FloatConst{V: math.Copysign(0, -1)})
	posZero := in.NewBinary(OpMul, s, FloatConst{V: 0.0})
	_ = plusZero
	if negZero != posZero {
		t.Errorf("±0 children must intern to one node: %s vs %s", negZero, posZero)
	}
	if !Equal(negZero, posZero) {
		t.Errorf("Equal must agree that ±0 composites are equal")
	}

	nan := FloatConst{V: math.NaN()}
	n1 := in.NewBinary(OpAdd, s, nan)
	n2 := in.NewBinary(OpAdd, s, nan)
	if n1 == n2 {
		t.Error("NaN-bearing composites must not be merged")
	}
	if Equal(n1, n2) {
		t.Error("Equal(NaN composite, NaN composite) must be false (NaN != NaN)")
	}
	if Interned(n1) || Interned(n2) {
		t.Error("NaN-bearing composites must not claim canonical status")
	}

	// The folding matrix cases fold to constants; interned construction
	// must fold identically (constructor semantics unchanged).
	a, c := FloatConst{V: 7.5}, FloatConst{V: 2.5}
	for _, op := range []Op{OpAdd, OpSub, OpMul, OpDiv, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		plain := NewBinary(op, a, c)
		interned := in.NewBinary(op, a, c)
		if !Equal(plain, interned) {
			t.Errorf("%v: interned fold %s differs from plain fold %s", op, interned, plain)
		}
	}
}

// TestInternSharedAcrossGoroutines hammers one arena from many goroutines
// building the same expressions; every goroutine must converge on the same
// canonical pointers. Run under -race by make check.
func TestInternSharedAcrossGoroutines(t *testing.T) {
	in := NewInterner()
	b := newTestBuilder()
	s := b.FreshSecret("s")
	p := b.FreshPublic("p")

	const goroutines = 8
	results := make(chan Expr, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			var e Expr = s
			for i := 0; i < 64; i++ {
				e = in.NewBinary(OpAdd, e, in.NewBinary(OpMul, p, IntConst{V: int32(i)}))
			}
			results <- e
		}()
	}
	first := <-results
	for g := 1; g < goroutines; g++ {
		if got := <-results; got != first {
			t.Fatalf("goroutines diverged on canonical node: %p vs %p", got, first)
		}
	}
	hits, misses, size := in.Stats()
	if size == 0 || misses == 0 {
		t.Fatalf("stats not tracking: hits=%d misses=%d size=%d", hits, misses, size)
	}
	if hits == 0 {
		t.Fatalf("8 goroutines building identical chains must share nodes: hits=%d", hits)
	}
}

// TestInternEqualFastPathAllocs pins the satellite fix: Equal must not
// allocate its memo map when the answer is decidable at the root —
// identical pointers, or two distinct canonical nodes of one arena.
func TestInternEqualFastPathAllocs(t *testing.T) {
	in := NewInterner()
	b := newTestBuilder()
	s := b.FreshSecret("s")
	x := in.NewBinary(OpAdd, s, IntConst{V: 1})
	y := in.NewBinary(OpMul, s, IntConst{V: 3})

	if n := testing.AllocsPerRun(100, func() {
		if !Equal(x, x) {
			t.Fatal("Equal(x, x) = false")
		}
	}); n != 0 {
		t.Errorf("Equal(x, x) allocates %.0f objects per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if Equal(x, y) {
			t.Fatal("Equal(x, y) = true")
		}
	}); n != 0 {
		t.Errorf("interned Equal(x, y) allocates %.0f objects per run, want 0", n)
	}
}

// BenchmarkEqualRootPointer is the regression benchmark for the memo-map
// fast path: comparing a node with itself must be O(1) and allocation-free.
func BenchmarkEqualRootPointer(b *testing.B) {
	bl := newTestBuilder()
	s := bl.FreshSecret("s")
	var e Expr = s
	for i := 0; i < 32; i++ {
		e = NewBinary(OpAdd, e, NewBinary(OpMul, s, IntConst{V: int32(i)}))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Equal(e, e) {
			b.Fatal("Equal(e, e) = false")
		}
	}
}

// BenchmarkEqualInterned measures the arena fast path on structurally
// distinct canonical nodes (the common solver-cache comparison).
func BenchmarkEqualInterned(b *testing.B) {
	in := NewInterner()
	bl := newTestBuilder()
	s := bl.FreshSecret("s")
	x := in.NewBinary(OpAdd, s, IntConst{V: 1})
	y := in.NewBinary(OpAdd, s, IntConst{V: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Equal(x, y) {
			b.Fatal("Equal(x, y) = true")
		}
	}
}

// FuzzIntern drives random construction sequences through one arena and
// checks the invariant the whole design rests on: interned identity and
// structural equality never disagree. Wired into make fuzz-smoke.
func FuzzIntern(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 0x01, 0xfe})
	f.Add([]byte("interning"))
	f.Fuzz(func(t *testing.T, data []byte) {
		in := NewInterner()
		b := newTestBuilder()
		leaves := []Expr{
			IntConst{V: 0}, IntConst{V: 1},
			FloatConst{V: 0}, FloatConst{V: math.Copysign(0, -1)}, FloatConst{V: math.NaN()},
			b.FreshSecret("s"), b.FreshPublic("p"),
		}
		ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpRem, OpLt, OpLe, OpEq, OpNe, OpLAnd, OpLOr, OpXor, OpShl}
		pool := append([]Expr(nil), leaves...)
		for i := 0; i+2 < len(data) && len(pool) < 96; i += 3 {
			l := pool[int(data[i])%len(pool)]
			r := pool[int(data[i+1])%len(pool)]
			op := ops[int(data[i+2])%len(ops)]
			switch data[i] % 5 {
			case 0:
				pool = append(pool, NewBinary(op, l, r))
			case 1:
				pool = append(pool, in.NewBinary(op, l, r))
			case 2:
				pool = append(pool, in.NewUnary(OpLNot, l), NewUnary(OpNeg, r))
			case 3:
				pool = append(pool, in.NewCall("pow", []Expr{l, r}))
			default:
				pool = append(pool, in.Intern(NewBinary(op, l, r)))
			}
		}
		canon := make([]Expr, len(pool))
		for i, e := range pool {
			canon[i] = in.Intern(e)
		}
		for i := range pool {
			for j := range pool {
				same := canon[i] == canon[j]
				eq := Equal(pool[i], pool[j])
				if same != eq {
					t.Fatalf("intern/structural equality disagree on %s vs %s: interned=%v structural=%v",
						pool[i], pool[j], same, eq)
				}
			}
		}
	})
}
