// Package sym implements the symbolic value domain shared by the PRIML
// analyzer and the MiniC symbolic execution engine.
//
// A symbolic expression is a tree over 32-bit integer constants, floating
// point constants, and symbols. Symbols are created for program inputs; a
// symbol created for a secret input (the result of get_secret, an [in] EDL
// parameter, or the output of a recognized decryption function) carries a
// taint tag. The taint label of any expression is derived from its free
// secret symbols (see DESIGN.md, design decision 1), which makes the
// propagation tables of Fig. 2 hold by construction.
package sym

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"privacyscope/internal/taint"
)

// Op enumerates the operators of symbolic expressions. The set mirrors the
// "typical binary and unary operators" of PRIML plus the C operators MiniC
// supports.
type Op int

// Binary and unary operators.
const (
	OpAdd Op = iota + 1
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd // bitwise &
	OpOr  // bitwise |
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLAnd // logical &&
	OpLOr  // logical ||

	OpNeg  // unary -
	OpNot  // unary ~ (bitwise complement)
	OpLNot // unary !
)

var opStrings = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpLAnd: "&&", OpLOr: "||",
	OpNeg: "-", OpNot: "~", OpLNot: "!",
}

// String returns the C spelling of the operator.
func (o Op) String() string {
	if s, ok := opStrings[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsComparison reports whether the operator yields a boolean (0/1) result.
func (o Op) IsComparison() bool {
	switch o {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// IsLogical reports whether the operator is && or ||.
func (o Op) IsLogical() bool { return o == OpLAnd || o == OpLOr }

// Expr is a symbolic expression. Implementations are immutable; share
// freely.
type Expr interface {
	// String renders the expression in C-like syntax, with secret
	// symbols shown as s1, s2, … as in the paper's trace tables.
	String() string
	isExpr()
}

// IntConst is a concrete 32-bit integer value. PRIML's value domain is
// 32-bit integers; MiniC int/char values also land here.
type IntConst struct {
	V int32
}

func (IntConst) isExpr() {}

// String renders the literal in decimal.
func (c IntConst) String() string { return strconv.FormatInt(int64(c.V), 10) }

// FloatConst is a concrete floating point value (MiniC float/double).
type FloatConst struct {
	V float64
}

func (FloatConst) isExpr() {}

// String renders the literal in shortest decimal form.
func (c FloatConst) String() string {
	return strconv.FormatFloat(c.V, 'g', -1, 64)
}

// Symbol is a symbolic atom: an unknown program input. A secret symbol
// carries a non-zero taint tag.
// An entropy symbol stands for randomness generated inside the enclave
// (rand, sgx_read_rand): unknown to the attacker, but not a user secret —
// it masks secrets only probabilistically (§VIII-A).
type Symbol struct {
	ID      int       // unique per Builder
	Name    string    // display name, e.g. "s1" or "reg0[0]"
	Tag     taint.Tag // non-zero iff the symbol is a secret source
	Entropy bool      // true for in-enclave randomness
}

func (*Symbol) isExpr() {}

// String returns the display name of the symbol.
func (s *Symbol) String() string { return s.Name }

// Secret reports whether the symbol was introduced by a secret source.
func (s *Symbol) Secret() bool { return s.Tag != 0 }

// Binary is a binary operation over two symbolic expressions.
type Binary struct {
	Op   Op
	L, R Expr

	tag internTag // set only by an Interner; zero for structurally built nodes
}

func (*Binary) isExpr() {}

// String renders the operation in parenthesized C syntax.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Unary is a unary operation over a symbolic expression.
type Unary struct {
	Op Op
	X  Expr

	tag internTag // set only by an Interner; zero for structurally built nodes
}

func (*Unary) isExpr() {}

// String renders the operation in C syntax.
func (u *Unary) String() string { return u.Op.String() + u.X.String() }

// Builder allocates symbols with unique IDs and, for secrets, fresh taint
// tags. The zero value is not ready; use NewBuilder. Allocation and lookup
// are safe for concurrent use by parallel path workers.
type Builder struct {
	mu     sync.Mutex
	nextID int
	alloc  *taint.Allocator
	syms   map[int]*Symbol
}

// NewBuilder returns a Builder drawing taint tags from alloc.
func NewBuilder(alloc *taint.Allocator) *Builder {
	return &Builder{alloc: alloc, syms: make(map[int]*Symbol)}
}

// FreshSecret allocates a secret symbol with a fresh taint tag. If name is
// empty the symbol is named after its tag ("s1", "s2", …), matching the
// paper's notation.
func (b *Builder) FreshSecret(name string) *Symbol {
	b.mu.Lock()
	defer b.mu.Unlock()
	tag := b.alloc.Fresh()
	if name == "" {
		name = "s" + strconv.Itoa(int(tag))
	}
	b.nextID++
	s := &Symbol{ID: b.nextID, Name: name, Tag: tag}
	b.syms[s.ID] = s
	return s
}

// FreshPublic allocates a non-secret (low input) symbol.
func (b *Builder) FreshPublic(name string) *Symbol {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.freshPublicLocked(name)
}

func (b *Builder) freshPublicLocked(name string) *Symbol {
	b.nextID++
	if name == "" {
		name = "v" + strconv.Itoa(b.nextID)
	}
	s := &Symbol{ID: b.nextID, Name: name}
	b.syms[s.ID] = s
	return s
}

// FreshEntropy allocates an in-enclave randomness symbol.
func (b *Builder) FreshEntropy(name string) *Symbol {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.freshPublicLocked(name)
	s.Entropy = true
	return s
}

// HasEntropy reports whether e contains any in-enclave randomness.
func HasEntropy(e Expr) bool {
	for _, s := range FreeSymbols(e) {
		if s.Entropy {
			return true
		}
	}
	return false
}

// Lookup returns the symbol with the given ID, or nil.
func (b *Builder) Lookup(id int) *Symbol {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.syms[id]
}

// Symbols returns all allocated symbols ordered by ID.
func (b *Builder) Symbols() []*Symbol {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Symbol, 0, len(b.syms))
	for _, s := range b.syms {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FreeSymbols returns the distinct symbols occurring in e, ordered by ID.
// Traversal is memoized on node identity: expressions built by the engine
// are DAGs with heavy subtree sharing (ML aggregates reuse the same mean
// and variance terms), and an unmemoized walk would be exponential in the
// sharing depth.
func FreeSymbols(e Expr) []*Symbol {
	seen := make(map[int]*Symbol)
	visited := make(map[Expr]bool)
	collectSymbols(e, seen, visited)
	out := make([]*Symbol, 0, len(seen))
	for _, s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func collectSymbols(e Expr, seen map[int]*Symbol, visited map[Expr]bool) {
	switch v := e.(type) {
	case *Symbol:
		seen[v.ID] = v
	case *Binary:
		if visited[v] {
			return
		}
		visited[v] = true
		collectSymbols(v.L, seen, visited)
		collectSymbols(v.R, seen, visited)
	case *Unary:
		if visited[v] {
			return
		}
		visited[v] = true
		collectSymbols(v.X, seen, visited)
	case *Call:
		if visited[v] {
			return
		}
		visited[v] = true
		for _, a := range v.Args {
			collectSymbols(a, seen, visited)
		}
	}
}

// SecretTags returns the distinct taint tags of the secret symbols in e.
func SecretTags(e Expr) []taint.Tag {
	var tags []taint.Tag
	seen := make(map[taint.Tag]bool)
	for _, s := range FreeSymbols(e) {
		if s.Secret() && !seen[s.Tag] {
			seen[s.Tag] = true
			tags = append(tags, s.Tag)
		}
	}
	return tags
}

// TaintOf derives the taint label of an expression from its free secret
// symbols: ⊥ for none, tᵢ for exactly one source, ⊤ for several. This is
// the representation-level statement of Fig. 2.
func TaintOf(e Expr) taint.Label {
	return taint.FromTags(SecretTags(e))
}

// IsConcrete reports whether e contains no symbols.
func IsConcrete(e Expr) bool {
	switch v := e.(type) {
	case IntConst, FloatConst:
		return true
	case *Binary:
		return IsConcrete(v.L) && IsConcrete(v.R)
	case *Unary:
		return IsConcrete(v.X)
	case *Call:
		for _, a := range v.Args {
			if !IsConcrete(a) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Equal reports structural equality of two expressions. Identical node
// pointers short-circuit and compared pairs are memoized, so the walk stays
// polynomial on shared DAGs.
func Equal(a, b Expr) bool {
	// Fast paths before the memo map is allocated: identical values (or
	// pointers), and distinct canonical nodes of one intern arena — both
	// answer without a walk and without allocating.
	if a == b {
		return true
	}
	if distinctInterned(a, b) {
		return false
	}
	return equalMemo(a, b, make(map[[2]Expr]bool))
}

func equalMemo(a, b Expr, memo map[[2]Expr]bool) bool {
	if a == b {
		return true
	}
	if distinctInterned(a, b) {
		return false
	}
	var pair [2]Expr
	memoizable := false
	switch a.(type) {
	case *Binary, *Unary, *Call:
		switch b.(type) {
		case *Binary, *Unary, *Call:
			memoizable = true
			pair = [2]Expr{a, b}
			if v, ok := memo[pair]; ok {
				return v
			}
			// Optimistically assume equal while comparing, which is
			// safe for acyclic DAGs and prevents re-walking the pair.
			memo[pair] = true
		}
	}
	eq := equalNode(a, b, memo)
	if memoizable {
		memo[pair] = eq
	}
	return eq
}

func equalNode(a, b Expr, memo map[[2]Expr]bool) bool {
	switch x := a.(type) {
	case IntConst:
		y, ok := b.(IntConst)
		return ok && x.V == y.V
	case FloatConst:
		y, ok := b.(FloatConst)
		return ok && x.V == y.V
	case *Symbol:
		y, ok := b.(*Symbol)
		return ok && x.ID == y.ID
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && equalMemo(x.L, y.L, memo) && equalMemo(x.R, y.R, memo)
	case *Unary:
		y, ok := b.(*Unary)
		return ok && x.Op == y.Op && equalMemo(x.X, y.X, memo)
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !equalMemo(x.Args[i], y.Args[i], memo) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Key returns a canonical structural key for hashing expressions (used by
// the implicit-leak hashmap hm and by dedupe caches). Structurally equal
// expressions share a key regardless of subtree sharing. Internal nodes are
// keyed by a memoized Merkle-style FNV-64 hash, so the cost is linear in
// the DAG and the key has constant size — a plain structural string would
// be exponential on the expression DAGs iterative training loops build.
// (Hash collisions would only merge dedupe entries, never unsoundly.)
func Key(e Expr) string {
	return keyMemo(e, make(map[Expr]string))
}

func keyMemo(e Expr, memo map[Expr]string) string {
	switch e.(type) {
	case *Binary, *Unary, *Call:
		if k, ok := memo[e]; ok {
			return k
		}
	}
	var k string
	switch v := e.(type) {
	case IntConst:
		return "i" + strconv.FormatInt(int64(v.V), 10)
	case FloatConst:
		return "f" + strconv.FormatFloat(v.V, 'b', -1, 64)
	case *Symbol:
		return "$" + strconv.Itoa(v.ID)
	case *Binary:
		k = "h" + fnvHash("b", v.Op.String(), keyMemo(v.L, memo), keyMemo(v.R, memo))
	case *Unary:
		k = "h" + fnvHash("u", v.Op.String(), keyMemo(v.X, memo))
	case *Call:
		parts := make([]string, 0, len(v.Args)+2)
		parts = append(parts, "c", v.Name)
		for _, a := range v.Args {
			parts = append(parts, keyMemo(a, memo))
		}
		k = "h" + fnvHash(parts...)
	case nil:
		return "nil"
	default:
		return fmt.Sprintf("?%T", e)
	}
	memo[e] = k
	return k
}

// fnvHash combines parts with FNV-1a 64.
func fnvHash(parts ...string) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
		h ^= 0xFF // separator
		h *= prime64
	}
	return strconv.FormatUint(h, 16)
}
