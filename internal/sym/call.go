package sym

import (
	"fmt"
	"math"
	"strings"
)

// Call is an uninterpreted (or math-library) function application over
// symbolic arguments, e.g. sqrt(s1 + 1). It preserves the taint of its
// arguments: FreeSymbols descends into Args, so a single-secret argument
// keeps its single tag through the call — sqrt(2*s1) is still recoverable.
type Call struct {
	Name string
	Args []Expr

	tag internTag // set only by an Interner; zero for structurally built nodes
}

func (*Call) isExpr() {}

// String renders the application in C syntax.
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// NewCall builds an application, folding when every argument is a known
// constant and the function is a recognized math builtin.
func NewCall(name string, args []Expr) Expr {
	for _, a := range args {
		if !IsConcrete(a) {
			return &Call{Name: name, Args: args}
		}
	}
	vals := make([]Value, len(args))
	for i, a := range args {
		v, err := Eval(a, nil)
		if err != nil {
			return &Call{Name: name, Args: args}
		}
		vals[i] = v
	}
	if out, err := evalMath(name, vals); err == nil {
		return FloatConst{V: out}
	}
	return &Call{Name: name, Args: args}
}

// evalMath evaluates recognized math builtins on concrete values.
func evalMath(name string, args []Value) (float64, error) {
	one := func() (float64, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("sym: %s expects 1 arg", name)
		}
		return args[0].AsFloat(), nil
	}
	switch name {
	case "sqrt":
		x, err := one()
		if err != nil {
			return 0, err
		}
		if x < 0 {
			return 0, fmt.Errorf("sym: sqrt of negative")
		}
		return math.Sqrt(x), nil
	case "fabs", "abs":
		x, err := one()
		if err != nil {
			return 0, err
		}
		return math.Abs(x), nil
	case "exp":
		x, err := one()
		if err != nil {
			return 0, err
		}
		return math.Exp(x), nil
	case "log":
		x, err := one()
		if err != nil {
			return 0, err
		}
		if x <= 0 {
			return 0, fmt.Errorf("sym: log of non-positive")
		}
		return math.Log(x), nil
	case "floor":
		x, err := one()
		if err != nil {
			return 0, err
		}
		return math.Floor(x), nil
	case "ceil":
		x, err := one()
		if err != nil {
			return 0, err
		}
		return math.Ceil(x), nil
	case "pow":
		if len(args) != 2 {
			return 0, fmt.Errorf("sym: pow expects 2 args")
		}
		return math.Pow(args[0].AsFloat(), args[1].AsFloat()), nil
	}
	return 0, fmt.Errorf("sym: unknown math builtin %s", name)
}
