package sym

import (
	"testing"

	"privacyscope/internal/taint"
)

func TestCallPreservesTaint(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	e := NewCall("sqrt", []Expr{NewBinary(OpMul, IntConst{V: 2}, s)})
	if !TaintOf(e).Equal(taint.Single(s.Tag)) {
		t.Errorf("TaintOf(sqrt(2*s1)) = %v, want t1", TaintOf(e))
	}
	if e.String() != "sqrt((2 * s1))" {
		t.Errorf("String = %q", e.String())
	}
}

func TestCallConstantFolding(t *testing.T) {
	tests := []struct {
		name string
		args []Expr
		want float64
	}{
		{"sqrt", []Expr{IntConst{V: 16}}, 4},
		{"fabs", []Expr{FloatConst{V: -2.5}}, 2.5},
		{"pow", []Expr{IntConst{V: 2}, IntConst{V: 10}}, 1024},
		{"floor", []Expr{FloatConst{V: 1.9}}, 1},
		{"ceil", []Expr{FloatConst{V: 1.1}}, 2},
		{"exp", []Expr{IntConst{V: 0}}, 1},
		{"log", []Expr{IntConst{V: 1}}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := NewCall(tt.name, tt.args)
			c, ok := e.(FloatConst)
			if !ok {
				t.Fatalf("NewCall did not fold: %s", e)
			}
			if c.V != tt.want {
				t.Errorf("= %g, want %g", c.V, tt.want)
			}
		})
	}
}

func TestCallDomainErrorsStaySymbolic(t *testing.T) {
	e := NewCall("sqrt", []Expr{IntConst{V: -1}})
	if _, ok := e.(*Call); !ok {
		t.Errorf("sqrt(-1) must stay symbolic, got %T", e)
	}
	u := NewCall("mystery", []Expr{IntConst{V: 1}})
	if _, ok := u.(*Call); !ok {
		t.Errorf("unknown function must stay symbolic, got %T", u)
	}
}

func TestCallEqualKeySubstituteEval(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	e1 := NewCall("sqrt", []Expr{s})
	e2 := NewCall("sqrt", []Expr{s})
	e3 := NewCall("fabs", []Expr{s})
	if !Equal(e1, e2) || Equal(e1, e3) {
		t.Error("Call equality wrong")
	}
	if Key(e1) != Key(e2) || Key(e1) == Key(e3) {
		t.Error("Call keys wrong")
	}
	sub := Substitute(e1, Binding{s.ID: IntVal(25)})
	c, ok := sub.(FloatConst)
	if !ok || c.V != 5 {
		t.Errorf("Substitute = %v", sub)
	}
	v, err := Eval(e1, Binding{s.ID: IntVal(9)})
	if err != nil || v.AsFloat() != 3 {
		t.Errorf("Eval = %v, %v", v, err)
	}
	if _, err := Eval(e3, Binding{}); err == nil {
		t.Error("Eval with unbound symbol must fail")
	}
}

func TestCallNotAffine(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	if a := ExtractAffine(NewCall("sqrt", []Expr{s})); a != nil {
		t.Error("sqrt(s) must not be affine")
	}
}

func TestCallNotConcreteWithSymbols(t *testing.T) {
	b := newTestBuilder()
	s := b.FreshSecret("")
	if IsConcrete(NewCall("sqrt", []Expr{s})) {
		t.Error("sqrt(s) must not be concrete")
	}
	if !IsConcrete(&Call{Name: "mystery", Args: []Expr{IntConst{V: 1}}}) {
		t.Error("mystery(1) is concrete (all args concrete)")
	}
}
