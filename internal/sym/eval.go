package sym

import (
	"errors"
	"fmt"
)

// This file implements concrete evaluation of symbolic expressions under a
// binding of symbols to values. The checker uses it to replay leak
// witnesses: two concrete runs whose inputs differ in exactly one secret
// must produce observably different outputs, and applying the reported
// inversion must recover the secret.

// ErrUnbound is returned when evaluation reaches a symbol with no binding.
var ErrUnbound = errors.New("sym: unbound symbol")

// ErrDivideByZero is returned when evaluation divides by zero.
var ErrDivideByZero = errors.New("sym: division by zero")

// Binding assigns concrete values to symbols by ID.
type Binding map[int]Value

// Value is a concrete scalar: either a 32-bit integer or a float64.
type Value struct {
	IsFloat bool
	I       int32
	F       float64
}

// IntVal wraps a 32-bit integer value.
func IntVal(v int32) Value { return Value{I: v} }

// FloatVal wraps a floating point value.
func FloatVal(v float64) Value { return Value{IsFloat: true, F: v} }

// AsFloat returns the value as float64 regardless of kind.
func (v Value) AsFloat() float64 {
	if v.IsFloat {
		return v.F
	}
	return float64(v.I)
}

// AsInt returns the value as int32 (floats truncate toward zero).
func (v Value) AsInt() int32 {
	if v.IsFloat {
		return int32(v.F)
	}
	return v.I
}

// IsZero reports whether the value is numerically zero.
func (v Value) IsZero() bool {
	if v.IsFloat {
		return v.F == 0
	}
	return v.I == 0
}

// Equal reports numeric equality (an int and a float compare by value).
func (v Value) Equal(o Value) bool {
	if v.IsFloat || o.IsFloat {
		return v.AsFloat() == o.AsFloat()
	}
	return v.I == o.I
}

// String formats the value.
func (v Value) String() string {
	if v.IsFloat {
		return fmt.Sprintf("%g", v.F)
	}
	return fmt.Sprintf("%d", v.I)
}

// Eval evaluates e under the binding. Shared subtrees are evaluated once:
// the engine builds expression DAGs with heavy sharing (means and distances
// reused across aggregate terms), and an unmemoized walk would be
// exponential in the sharing depth.
func Eval(e Expr, b Binding) (Value, error) {
	return evalMemo(e, b, make(map[Expr]Value))
}

func evalMemo(e Expr, b Binding, cache map[Expr]Value) (Value, error) {
	switch e.(type) {
	case *Binary, *Unary, *Call:
		if v, ok := cache[e]; ok {
			return v, nil
		}
	}
	v, err := evalNode(e, b, cache)
	if err != nil {
		return Value{}, err
	}
	switch e.(type) {
	case *Binary, *Unary, *Call:
		cache[e] = v
	}
	return v, nil
}

func evalNode(e Expr, b Binding, cache map[Expr]Value) (Value, error) {
	switch v := e.(type) {
	case IntConst:
		return IntVal(v.V), nil
	case FloatConst:
		return FloatVal(v.V), nil
	case *Symbol:
		val, ok := b[v.ID]
		if !ok {
			return Value{}, fmt.Errorf("%w: %s", ErrUnbound, v.Name)
		}
		return val, nil
	case *Unary:
		x, err := evalMemo(v.X, b, cache)
		if err != nil {
			return Value{}, err
		}
		return evalUnary(v.Op, x)
	case *Binary:
		l, err := evalMemo(v.L, b, cache)
		if err != nil {
			return Value{}, err
		}
		// Short-circuit logical operators.
		if v.Op == OpLAnd && l.IsZero() {
			return IntVal(0), nil
		}
		if v.Op == OpLOr && !l.IsZero() {
			return IntVal(1), nil
		}
		r, err := evalMemo(v.R, b, cache)
		if err != nil {
			return Value{}, err
		}
		return evalBinary(v.Op, l, r)
	case *Call:
		args := make([]Value, len(v.Args))
		for i, a := range v.Args {
			av, err := evalMemo(a, b, cache)
			if err != nil {
				return Value{}, err
			}
			args[i] = av
		}
		out, err := evalMath(v.Name, args)
		if err != nil {
			return Value{}, err
		}
		return FloatVal(out), nil
	default:
		return Value{}, fmt.Errorf("sym: cannot evaluate %T", e)
	}
}

func evalUnary(op Op, x Value) (Value, error) {
	switch op {
	case OpNeg:
		if x.IsFloat {
			return FloatVal(-x.F), nil
		}
		return IntVal(-x.I), nil
	case OpNot:
		return IntVal(^x.AsInt()), nil
	case OpLNot:
		if x.IsZero() {
			return IntVal(1), nil
		}
		return IntVal(0), nil
	default:
		return Value{}, fmt.Errorf("sym: bad unary op %v", op)
	}
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func evalBinary(op Op, l, r Value) (Value, error) {
	if l.IsFloat || r.IsFloat {
		return evalFloatBinary(op, l.AsFloat(), r.AsFloat())
	}
	a, c := l.I, r.I
	switch op {
	case OpAdd:
		return IntVal(a + c), nil
	case OpSub:
		return IntVal(a - c), nil
	case OpMul:
		return IntVal(a * c), nil
	case OpDiv:
		if c == 0 {
			return Value{}, ErrDivideByZero
		}
		return IntVal(a / c), nil
	case OpRem:
		if c == 0 {
			return Value{}, ErrDivideByZero
		}
		return IntVal(a % c), nil
	case OpAnd:
		return IntVal(a & c), nil
	case OpOr:
		return IntVal(a | c), nil
	case OpXor:
		return IntVal(a ^ c), nil
	case OpShl:
		return IntVal(a << (uint32(c) & 31)), nil
	case OpShr:
		return IntVal(a >> (uint32(c) & 31)), nil
	case OpEq:
		return boolVal(a == c), nil
	case OpNe:
		return boolVal(a != c), nil
	case OpLt:
		return boolVal(a < c), nil
	case OpLe:
		return boolVal(a <= c), nil
	case OpGt:
		return boolVal(a > c), nil
	case OpGe:
		return boolVal(a >= c), nil
	case OpLAnd:
		return boolVal(a != 0 && c != 0), nil
	case OpLOr:
		return boolVal(a != 0 || c != 0), nil
	default:
		return Value{}, fmt.Errorf("sym: bad binary op %v", op)
	}
}

func evalFloatBinary(op Op, a, c float64) (Value, error) {
	switch op {
	case OpAdd:
		return FloatVal(a + c), nil
	case OpSub:
		return FloatVal(a - c), nil
	case OpMul:
		return FloatVal(a * c), nil
	case OpDiv:
		if c == 0 {
			return Value{}, ErrDivideByZero
		}
		return FloatVal(a / c), nil
	case OpEq:
		return boolVal(a == c), nil
	case OpNe:
		return boolVal(a != c), nil
	case OpLt:
		return boolVal(a < c), nil
	case OpLe:
		return boolVal(a <= c), nil
	case OpGt:
		return boolVal(a > c), nil
	case OpGe:
		return boolVal(a >= c), nil
	case OpLAnd:
		return boolVal(a != 0 && c != 0), nil
	case OpLOr:
		return boolVal(a != 0 || c != 0), nil
	default:
		return Value{}, fmt.Errorf("sym: bad float binary op %v", op)
	}
}

// Substitute replaces bound symbols in e with constants and re-simplifies.
// Unbound symbols are left symbolic. Shared subtrees are rewritten once
// (and stay shared in the result).
func Substitute(e Expr, b Binding) Expr {
	return substMemo(e, b, make(map[Expr]Expr))
}

func substMemo(e Expr, b Binding, memo map[Expr]Expr) Expr {
	switch e.(type) {
	case *Binary, *Unary, *Call:
		if out, ok := memo[e]; ok {
			return out
		}
	}
	out := substNode(e, b, memo)
	switch e.(type) {
	case *Binary, *Unary, *Call:
		memo[e] = out
	}
	return out
}

func substNode(e Expr, b Binding, memo map[Expr]Expr) Expr {
	switch v := e.(type) {
	case IntConst, FloatConst:
		return e
	case *Symbol:
		val, ok := b[v.ID]
		if !ok {
			return e
		}
		if val.IsFloat {
			return FloatConst{V: val.F}
		}
		return IntConst{V: val.I}
	case *Unary:
		return NewUnary(v.Op, substMemo(v.X, b, memo))
	case *Binary:
		return NewBinary(v.Op, substMemo(v.L, b, memo), substMemo(v.R, b, memo))
	case *Call:
		args := make([]Expr, len(v.Args))
		for i, a := range v.Args {
			args[i] = substMemo(a, b, memo)
		}
		return NewCall(v.Name, args)
	default:
		return e
	}
}
