package interp

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"privacyscope/internal/minic"
	"privacyscope/internal/sym"
)

// applyBinary applies an arithmetic/bitwise/comparison operator to two
// concrete values with C-style usual arithmetic conversions.
func applyBinary(op sym.Op, l, r Value) (Value, error) {
	// Pointer comparisons.
	if l.Kind() == CellPtr || r.Kind() == CellPtr {
		switch op {
		case sym.OpEq, sym.OpNe:
			same := l.Ptr() == r.Ptr()
			if (op == sym.OpEq) == same {
				return IntValue(1), nil
			}
			return IntValue(0), nil
		}
		return Value{}, fmt.Errorf("interp: bad pointer operation %v", op)
	}
	if l.IsFloat() || r.IsFloat() {
		a, b := l.Float(), r.Float()
		switch op {
		case sym.OpAdd:
			return FloatValue(a + b), nil
		case sym.OpSub:
			return FloatValue(a - b), nil
		case sym.OpMul:
			return FloatValue(a * b), nil
		case sym.OpDiv:
			if b == 0 {
				return Value{}, ErrDivideByZero
			}
			return FloatValue(a / b), nil
		case sym.OpEq:
			return boolValue(a == b), nil
		case sym.OpNe:
			return boolValue(a != b), nil
		case sym.OpLt:
			return boolValue(a < b), nil
		case sym.OpLe:
			return boolValue(a <= b), nil
		case sym.OpGt:
			return boolValue(a > b), nil
		case sym.OpGe:
			return boolValue(a >= b), nil
		default:
			return Value{}, fmt.Errorf("interp: bad float operation %v", op)
		}
	}
	a, b := l.Int(), r.Int()
	switch op {
	case sym.OpAdd:
		return IntValue(a + b), nil
	case sym.OpSub:
		return IntValue(a - b), nil
	case sym.OpMul:
		return IntValue(a * b), nil
	case sym.OpDiv:
		if b == 0 {
			return Value{}, ErrDivideByZero
		}
		return IntValue(a / b), nil
	case sym.OpRem:
		if b == 0 {
			return Value{}, ErrDivideByZero
		}
		return IntValue(a % b), nil
	case sym.OpAnd:
		return IntValue(a & b), nil
	case sym.OpOr:
		return IntValue(a | b), nil
	case sym.OpXor:
		return IntValue(a ^ b), nil
	case sym.OpShl:
		return IntValue(a << (uint64(b) & 63)), nil
	case sym.OpShr:
		return IntValue(a >> (uint64(b) & 63)), nil
	case sym.OpEq:
		return boolValue(a == b), nil
	case sym.OpNe:
		return boolValue(a != b), nil
	case sym.OpLt:
		return boolValue(a < b), nil
	case sym.OpLe:
		return boolValue(a <= b), nil
	case sym.OpGt:
		return boolValue(a > b), nil
	case sym.OpGe:
		return boolValue(a >= b), nil
	}
	return Value{}, fmt.Errorf("interp: bad int operation %v", op)
}

func boolValue(b bool) Value {
	if b {
		return IntValue(1)
	}
	return IntValue(0)
}

// builtin dispatches library calls the machine gives semantics to.
func (m *Machine) builtin(fr *frame, v *minic.CallExpr) (Value, minic.Type, error) {
	intTy := minic.Type(minic.Basic{Kind: minic.Int})
	dblTy := minic.Type(minic.Basic{Kind: minic.Double})

	evalArgs := func() ([]Value, error) {
		args := make([]Value, len(v.Args))
		for i, a := range v.Args {
			val, _, err := m.eval(fr, a)
			if err != nil {
				return nil, err
			}
			args[i] = val
		}
		return args, nil
	}
	need := func(n int) error {
		if len(v.Args) != n {
			return &minic.Error{Pos: v.Pos, Msg: fmt.Sprintf("%s expects %d args, got %d", v.Fun, n, len(v.Args))}
		}
		return nil
	}

	switch v.Fun {
	case "sqrt", "fabs", "exp", "log", "floor", "ceil":
		if err := need(1); err != nil {
			return Value{}, nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return Value{}, nil, err
		}
		x := args[0].Float()
		var out float64
		switch v.Fun {
		case "sqrt":
			if x < 0 {
				return Value{}, nil, &minic.Error{Pos: v.Pos, Msg: "sqrt of negative value"}
			}
			out = math.Sqrt(x)
		case "fabs":
			out = math.Abs(x)
		case "exp":
			out = math.Exp(x)
		case "log":
			if x <= 0 {
				return Value{}, nil, &minic.Error{Pos: v.Pos, Msg: "log of non-positive value"}
			}
			out = math.Log(x)
		case "floor":
			out = math.Floor(x)
		case "ceil":
			out = math.Ceil(x)
		}
		return FloatValue(out), dblTy, nil
	case "pow":
		if err := need(2); err != nil {
			return Value{}, nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return Value{}, nil, err
		}
		return FloatValue(math.Pow(args[0].Float(), args[1].Float())), dblTy, nil
	case "abs":
		if err := need(1); err != nil {
			return Value{}, nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return Value{}, nil, err
		}
		x := args[0].Int()
		if x < 0 {
			x = -x
		}
		return IntValue(x), intTy, nil
	case "rand":
		// xorshift64*: deterministic and seedable, standing in for
		// libc rand.
		m.rng ^= m.rng >> 12
		m.rng ^= m.rng << 25
		m.rng ^= m.rng >> 27
		return IntValue(int64((m.rng * 0x2545F4914F6CDD1D) >> 33)), intTy, nil
	case "srand":
		if err := need(1); err != nil {
			return Value{}, nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return Value{}, nil, err
		}
		m.Seed(uint64(args[0].Int()))
		return IntValue(0), intTy, nil
	case "printf", "ocall_print":
		args, err := evalArgs()
		if err != nil {
			return Value{}, nil, err
		}
		m.Printed = append(m.Printed, formatPrintf(args))
		return IntValue(0), intTy, nil
	case "memcpy", "sgx_rijndael128GCM_decrypt", "sgx_rijndael128GCM_encrypt":
		// Cell-wise copy dst ← src of n cells. The SGX crypto
		// intrinsics behave as plaintext copies inside the simulator;
		// real sealing happens in internal/sgx outside the enclave
		// body. Argument order follows memcpy(dst, src, n).
		if err := need(3); err != nil {
			return Value{}, nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return Value{}, nil, err
		}
		dst, src := args[0].Ptr(), args[1].Ptr()
		n := int(args[2].Int())
		if dst.IsNil() || src.IsNil() {
			return Value{}, nil, fmt.Errorf("%w in %s", ErrNilDeref, v.Fun)
		}
		for i := 0; i < n; i++ {
			val, err := src.Obj.Load(src.Off + i)
			if err != nil {
				return Value{}, nil, err
			}
			if err := dst.Obj.Store(dst.Off+i, val); err != nil {
				return Value{}, nil, err
			}
		}
		return IntValue(0), intTy, nil
	case "memset":
		if err := need(3); err != nil {
			return Value{}, nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return Value{}, nil, err
		}
		dst := args[0].Ptr()
		if dst.IsNil() {
			return Value{}, nil, fmt.Errorf("%w in memset", ErrNilDeref)
		}
		n := int(args[2].Int())
		for i := 0; i < n; i++ {
			if err := dst.Obj.Store(dst.Off+i, args[1]); err != nil {
				return Value{}, nil, err
			}
		}
		return IntValue(0), intTy, nil
	case "sgx_read_rand":
		// Fill buffer with deterministic pseudo-random cells.
		if err := need(2); err != nil {
			return Value{}, nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return Value{}, nil, err
		}
		dst := args[0].Ptr()
		if dst.IsNil() {
			return Value{}, nil, fmt.Errorf("%w in sgx_read_rand", ErrNilDeref)
		}
		n := int(args[1].Int())
		for i := 0; i < n; i++ {
			m.rng ^= m.rng >> 12
			m.rng ^= m.rng << 25
			m.rng ^= m.rng >> 27
			if err := dst.Obj.Store(dst.Off+i, IntValue(int64(m.rng&0xFF))); err != nil {
				return Value{}, nil, err
			}
		}
		return IntValue(0), intTy, nil
	}
	if m.OCallHandler != nil {
		args, err := evalArgs()
		if err != nil {
			return Value{}, nil, err
		}
		result, handled, err := m.OCallHandler(v.Fun, args)
		if err != nil {
			return Value{}, nil, fmt.Errorf("ocall %s: %w", v.Fun, err)
		}
		if handled {
			return result, intTy, nil
		}
	}
	return Value{}, nil, fmt.Errorf("%w: %s", ErrNoSuchFunc, v.Fun)
}

// formatPrintf renders a printf call: the first argument (a char buffer)
// is the format; %d/%f/%g/%c/%s verbs consume subsequent arguments. The
// output is collected, not written to stdout — the machine is a library.
func formatPrintf(args []Value) string {
	if len(args) == 0 {
		return ""
	}
	format := cString(args[0])
	rest := args[1:]
	var sb strings.Builder
	argIdx := 0
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' || i+1 >= len(format) {
			sb.WriteByte(c)
			continue
		}
		i++
		// Skip width/precision.
		for i < len(format) && (format[i] == '.' || (format[i] >= '0' && format[i] <= '9')) {
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		if verb == '%' {
			sb.WriteByte('%')
			continue
		}
		if argIdx >= len(rest) {
			sb.WriteString("%!missing")
			continue
		}
		arg := rest[argIdx]
		argIdx++
		switch verb {
		case 'd', 'i', 'u', 'l':
			sb.WriteString(strconv.FormatInt(arg.Int(), 10))
		case 'f', 'g', 'e':
			sb.WriteString(strconv.FormatFloat(arg.Float(), 'g', -1, 64))
		case 'c':
			sb.WriteByte(byte(arg.Int()))
		case 's':
			sb.WriteString(cString(arg))
		default:
			sb.WriteByte('%')
			sb.WriteByte(verb)
		}
	}
	return sb.String()
}

// cString reads a NUL-terminated char buffer through a pointer value.
func cString(v Value) string {
	p := v.Ptr()
	if p.IsNil() {
		return ""
	}
	var sb strings.Builder
	for off := p.Off; off < p.Obj.Len(); off++ {
		cell, err := p.Obj.Load(off)
		if err != nil || cell.Int() == 0 {
			break
		}
		sb.WriteByte(byte(cell.Int()))
	}
	return sb.String()
}
