package interp

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"privacyscope/internal/minic"
)

func run(t *testing.T, src, fn string, args ...Value) Value {
	t.Helper()
	m, err := NewMachine(minic.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Call(fn, args)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int sum_to(int n) {
    int total = 0;
    for (int i = 1; i <= n; i++) total += i;
    return total;
}
int count_down(int n) {
    int steps = 0;
    while (n > 0) { n--; steps++; }
    return steps;
}
`
	if got := run(t, src, "fib", IntValue(10)); got.Int() != 55 {
		t.Errorf("fib(10) = %v", got)
	}
	if got := run(t, src, "sum_to", IntValue(100)); got.Int() != 5050 {
		t.Errorf("sum_to(100) = %v", got)
	}
	if got := run(t, src, "count_down", IntValue(7)); got.Int() != 7 {
		t.Errorf("count_down(7) = %v", got)
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
int f(void) {
    int total = 0;
    for (int i = 0; i < 10; i++) {
        if (i == 3) continue;
        if (i == 6) break;
        total += i;
    }
    return total;
}
`
	// 0+1+2+4+5 = 12.
	if got := run(t, src, "f"); got.Int() != 12 {
		t.Errorf("f() = %v, want 12", got)
	}
}

func TestListing1Concrete(t *testing.T) {
	f := minic.MustParse(`
int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
`)
	m, err := NewMachine(f)
	if err != nil {
		t.Fatal(err)
	}
	secrets := NewBuffer("secrets", CellChar, 2)
	output := NewBuffer("output", CellChar, 2)
	_ = secrets.SetCells([]Value{CharValue(7), CharValue(0)})

	ret, err := m.Call("enclave_process_data",
		[]Value{PtrValue(Pointer{Obj: secrets}), PtrValue(Pointer{Obj: output})})
	if err != nil {
		t.Fatal(err)
	}
	if ret.Int() != 0 {
		t.Errorf("return = %v, want 0 (secrets[1]==0)", ret)
	}
	out, _ := output.Load(0)
	// output[0] = secrets[0] + 101 = 108, as a char.
	if out.Int() != 108 {
		t.Errorf("output[0] = %v, want 108", out)
	}

	// Flip secrets[1] → return 1 (the implicit leak observable).
	_ = secrets.SetCells([]Value{CharValue(7), CharValue(5)})
	ret, err = m.Call("enclave_process_data",
		[]Value{PtrValue(Pointer{Obj: secrets}), PtrValue(Pointer{Obj: output})})
	if err != nil {
		t.Fatal(err)
	}
	if ret.Int() != 1 {
		t.Errorf("return = %v, want 1", ret)
	}
}

func TestPointersAndArrays(t *testing.T) {
	src := `
int f(void) {
    int a[5];
    int *p = a;
    for (int i = 0; i < 5; i++) a[i] = i * i;
    p = p + 2;
    return *p + p[1];
}
`
	// a[2] + a[3] = 4 + 9 = 13.
	if got := run(t, src, "f"); got.Int() != 13 {
		t.Errorf("f() = %v, want 13", got)
	}
}

func TestAddressOfAndDeref(t *testing.T) {
	src := `
void bump(int *x) { *x = *x + 1; }
int f(void) {
    int v = 41;
    bump(&v);
    return v;
}
`
	if got := run(t, src, "f"); got.Int() != 42 {
		t.Errorf("f() = %v, want 42", got)
	}
}

func TestStructsAndMembers(t *testing.T) {
	src := `
struct Point { int x; int y; };
struct Rect { struct Point a; struct Point b; };
int area(struct Rect *r) {
    return (r->b.x - r->a.x) * (r->b.y - r->a.y);
}
int f(void) {
    struct Rect r;
    r.a.x = 1; r.a.y = 2;
    r.b.x = 4; r.b.y = 6;
    return area(&r);
}
`
	if got := run(t, src, "f"); got.Int() != 12 {
		t.Errorf("f() = %v, want 12", got)
	}
}

func Test2DArrays(t *testing.T) {
	src := `
float f(void) {
    float m[2][3];
    for (int i = 0; i < 2; i++)
        for (int j = 0; j < 3; j++)
            m[i][j] = i * 10 + j;
    return m[1][2];
}
`
	if got := run(t, src, "f"); got.Float() != 12 {
		t.Errorf("f() = %v, want 12", got)
	}
}

func TestFloatsAndCasts(t *testing.T) {
	src := `
float mean(float *xs, int n) {
    float total = 0.0;
    for (int i = 0; i < n; i++) total += xs[i];
    return total / n;
}
int truncate(float x) { return (int)x; }
`
	f := minic.MustParse(src)
	m, err := NewMachine(f)
	if err != nil {
		t.Fatal(err)
	}
	buf := NewBuffer("xs", CellFloat, 4)
	_ = buf.SetCells([]Value{FloatValue(1), FloatValue(2), FloatValue(3), FloatValue(6)})
	got, err := m.Call("mean", []Value{PtrValue(Pointer{Obj: buf}), IntValue(4)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Float() != 3 {
		t.Errorf("mean = %v, want 3", got)
	}
	tr, err := m.Call("truncate", []Value{FloatValue(3.9)})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Int() != 3 {
		t.Errorf("truncate(3.9) = %v", tr)
	}
}

func TestCharNarrowing(t *testing.T) {
	src := `
int f(void) {
    char c = 300;
    return c;
}
`
	// 300 wraps to 44 in a signed char.
	if got := run(t, src, "f"); got.Int() != 44 {
		t.Errorf("f() = %v, want 44", got)
	}
}

func TestIntWrap32(t *testing.T) {
	src := `
int f(void) {
    int x = 2147483647;
    x = x + 1;
    return x;
}
`
	if got := run(t, src, "f"); got.Int() != -2147483648 {
		t.Errorf("f() = %v, want int32 wraparound", got)
	}
}

func TestTernaryIncDec(t *testing.T) {
	src := `
int f(int x) {
    int a = x > 0 ? 1 : -1;
    int b = x++;
    int c = ++x;
    return a + b + c;
}
`
	// x=5: a=1, b=5 (x→6), c=7 (x→7) ⇒ 13.
	if got := run(t, src, "f", IntValue(5)); got.Int() != 13 {
		t.Errorf("f(5) = %v, want 13", got)
	}
}

func TestGlobals(t *testing.T) {
	src := `
int counter = 10;
int bump(void) { counter += 5; return counter; }
`
	f := minic.MustParse(src)
	m, err := NewMachine(f)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := m.Call("bump", nil)
	v2, _ := m.Call("bump", nil)
	if v1.Int() != 15 || v2.Int() != 20 {
		t.Errorf("bump twice = %v, %v", v1, v2)
	}
}

func TestErrors(t *testing.T) {
	t.Run("divide-by-zero", func(t *testing.T) {
		m, _ := NewMachine(minic.MustParse("int f(int x) { return 1 / x; }"))
		if _, err := m.Call("f", []Value{IntValue(0)}); !errors.Is(err, ErrDivideByZero) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("out-of-bounds", func(t *testing.T) {
		m, _ := NewMachine(minic.MustParse("int f(void) { int a[2]; return a[5]; }"))
		if _, err := m.Call("f", nil); !errors.Is(err, ErrOutOfBounds) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("nil-deref", func(t *testing.T) {
		m, _ := NewMachine(minic.MustParse("int f(int *p) { return *p; }"))
		if _, err := m.Call("f", []Value{PtrValue(Pointer{})}); !errors.Is(err, ErrNilDeref) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("infinite-loop", func(t *testing.T) {
		m, _ := NewMachine(minic.MustParse("int f(void) { while (1) {} return 0; }"))
		m.MaxSteps = 10_000
		if _, err := m.Call("f", nil); !errors.Is(err, ErrStepBudget) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("no-such-function", func(t *testing.T) {
		m, _ := NewMachine(minic.MustParse("int f(void) { return 0; }"))
		if _, err := m.Call("g", nil); !errors.Is(err, ErrNoSuchFunc) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("missing-return", func(t *testing.T) {
		m, _ := NewMachine(minic.MustParse("int f(int x) { if (x) return 1; }"))
		if _, err := m.Call("f", []Value{IntValue(0)}); !errors.Is(err, ErrMissingReturn) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestBuiltinsMath(t *testing.T) {
	src := `
float f(float x) { return sqrt(x) + fabs(0.0 - 1.5) + pow(2.0, 3.0) + floor(1.9) + ceil(0.1); }
int g(int x) { return abs(x); }
`
	got := run(t, src, "f", FloatValue(16))
	// 4 + 1.5 + 8 + 1 + 1 = 15.5
	if got.Float() != 15.5 {
		t.Errorf("f(16) = %v, want 15.5", got)
	}
	if got := run(t, src, "g", IntValue(-9)); got.Int() != 9 {
		t.Errorf("abs(-9) = %v", got)
	}
}

func TestBuiltinRandDeterministic(t *testing.T) {
	src := "int f(void) { srand(42); return rand(); }"
	a := run(t, src, "f")
	b := run(t, src, "f")
	if a.Int() != b.Int() {
		t.Error("seeded rand must be deterministic")
	}
	if a.Int() < 0 {
		t.Error("rand must be non-negative")
	}
}

func TestBuiltinPrintf(t *testing.T) {
	src := `
int f(void) {
    printf("x=%d y=%f s=%s c=%c pct=%%", 42, 1.5, "hello", 65);
    return 0;
}
`
	m, _ := NewMachine(minic.MustParse(src))
	if _, err := m.Call("f", nil); err != nil {
		t.Fatal(err)
	}
	if len(m.Printed) != 1 {
		t.Fatalf("Printed = %v", m.Printed)
	}
	want := "x=42 y=1.5 s=hello c=A pct=%"
	if m.Printed[0] != want {
		t.Errorf("printf = %q, want %q", m.Printed[0], want)
	}
}

func TestBuiltinMemOps(t *testing.T) {
	src := `
int f(int *src, int *dst) {
    memcpy(dst, src, 3);
    memset(src, 9, 2);
    return dst[0] + dst[1] + dst[2] + src[0] + src[1] + src[2];
}
`
	f := minic.MustParse(src)
	m, err := NewMachine(f)
	if err != nil {
		t.Fatal(err)
	}
	srcBuf := NewBuffer("src", CellInt, 3)
	dstBuf := NewBuffer("dst", CellInt, 3)
	_ = srcBuf.SetCells([]Value{IntValue(1), IntValue(2), IntValue(3)})
	got, err := m.Call("f", []Value{PtrValue(Pointer{Obj: srcBuf}), PtrValue(Pointer{Obj: dstBuf})})
	if err != nil {
		t.Fatal(err)
	}
	// dst = 1+2+3 = 6; src after memset = 9+9+3 = 21.
	if got.Int() != 27 {
		t.Errorf("f = %v, want 27", got)
	}
}

func TestSgxDecryptIntrinsicCopies(t *testing.T) {
	src := `
int f(char *ct, char *pt) {
    sgx_rijndael128GCM_decrypt(pt, ct, 2);
    return pt[0] + pt[1];
}
`
	m, _ := NewMachine(minic.MustParse(src))
	ct := NewBuffer("ct", CellChar, 2)
	pt := NewBuffer("pt", CellChar, 2)
	_ = ct.SetCells([]Value{CharValue(10), CharValue(20)})
	got, err := m.Call("f", []Value{PtrValue(Pointer{Obj: ct}), PtrValue(Pointer{Obj: pt})})
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 30 {
		t.Errorf("f = %v, want 30", got)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	src := `
int calls = 0;
int bump(void) { calls = calls + 1; return 1; }
int f(void) {
    int a = 0 && bump();
    int b = 1 || bump();
    return calls * 10 + a + b;
}
`
	// bump never runs: calls=0, a=0, b=1 → 1.
	if got := run(t, src, "f"); got.Int() != 1 {
		t.Errorf("f = %v, want 1", got)
	}
}

func TestStringFormatting(t *testing.T) {
	if got := IntValue(3).String(); got != "3" {
		t.Errorf("IntValue String = %q", got)
	}
	if got := FloatValue(2.5).String(); got != "2.5" {
		t.Errorf("FloatValue String = %q", got)
	}
	if got := PtrValue(Pointer{}).String(); got != "NULL" {
		t.Errorf("nil ptr String = %q", got)
	}
	o := NewBuffer("buf", CellInt, 1)
	if got := PtrValue(Pointer{Obj: o}).String(); !strings.Contains(got, "buf") {
		t.Errorf("ptr String = %q", got)
	}
}

// Property: sum over an int buffer computed by MiniC equals the Go sum.
func TestDifferentialSum(t *testing.T) {
	src := `
int sum(int *xs, int n) {
    int total = 0;
    for (int i = 0; i < n; i++) total += xs[i];
    return total;
}
`
	f := minic.MustParse(src)
	prop := func(xs []int16) bool {
		if len(xs) > 32 {
			xs = xs[:32]
		}
		m, err := NewMachine(f)
		if err != nil {
			return false
		}
		buf := NewBuffer("xs", CellInt, len(xs)+1)
		var want int64
		for i, x := range xs {
			_ = buf.Store(i, IntValue(int64(x)))
			want += int64(x)
		}
		got, err := m.Call("sum", []Value{PtrValue(Pointer{Obj: buf}), IntValue(int64(len(xs)))})
		if err != nil {
			return false
		}
		return got.Int() == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatComparisonsAndLogic(t *testing.T) {
	src := `
int f(float a, float b) {
    int r = 0;
    if (a == b) r += 1;
    if (a != b) r += 2;
    if (a <= b) r += 4;
    if (a >= b) r += 8;
    if (a > b) r += 16;
    if (a < b) r += 32;
    return r;
}
`
	m, _ := NewMachine(minic.MustParse(src))
	got, err := m.Call("f", []Value{FloatValue(1.5), FloatValue(2.5)})
	if err != nil {
		t.Fatal(err)
	}
	// a<b: ne(2) + le(4) + lt(32) = 38.
	if got.Int() != 38 {
		t.Errorf("f(1.5, 2.5) = %v, want 38", got)
	}
	got, _ = m.Call("f", []Value{FloatValue(2), FloatValue(2)})
	// eq(1) + le(4) + ge(8) = 13.
	if got.Int() != 13 {
		t.Errorf("f(2, 2) = %v, want 13", got)
	}
}

func TestFloatDivideByZero(t *testing.T) {
	m, _ := NewMachine(minic.MustParse("float f(float x) { return 1.0 / x; }"))
	if _, err := m.Call("f", []Value{FloatValue(0)}); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("err = %v", err)
	}
}

func TestPointerEquality(t *testing.T) {
	src := `
int f(int *p, int *q) {
    int r = 0;
    if (p == q) r += 1;
    if (p != q) r += 2;
    return r;
}
`
	m, _ := NewMachine(minic.MustParse(src))
	buf := NewBuffer("b", CellInt, 2)
	same := PtrValue(Pointer{Obj: buf})
	other := PtrValue(Pointer{Obj: buf, Off: 1})
	got, err := m.Call("f", []Value{same, same})
	if err != nil || got.Int() != 1 {
		t.Errorf("same pointers: %v, %v", got, err)
	}
	got, err = m.Call("f", []Value{same, other})
	if err != nil || got.Int() != 2 {
		t.Errorf("diff pointers: %v, %v", got, err)
	}
}

func TestUnaryOnFloats(t *testing.T) {
	src := `
float f(float x) { return -x; }
int g(float x) { return !x; }
`
	m, _ := NewMachine(minic.MustParse(src))
	v, _ := m.Call("f", []Value{FloatValue(2.5)})
	if v.Float() != -2.5 {
		t.Errorf("-2.5 = %v", v)
	}
	b, _ := m.Call("g", []Value{FloatValue(0)})
	if b.Int() != 1 {
		t.Errorf("!0.0 = %v", b)
	}
}

func TestCellsSnapshotIsCopy(t *testing.T) {
	buf := NewBuffer("b", CellInt, 2)
	_ = buf.Store(0, IntValue(5))
	cells := buf.Cells()
	cells[0] = IntValue(99)
	got, _ := buf.Load(0)
	if got.Int() != 5 {
		t.Error("Cells must return a copy")
	}
}

func TestSeedZeroMapped(t *testing.T) {
	m, _ := NewMachine(minic.MustParse("int f(void) { return rand(); }"))
	m.Seed(0)
	if _, err := m.Call("f", nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftOps(t *testing.T) {
	src := "int f(int a, int b) { return (a << b) + (a >> 1); }"
	if got := run(t, src, "f", IntValue(8), IntValue(2)); got.Int() != 36 {
		t.Errorf("got %v, want 36", got)
	}
}

func TestSizeofExprOnValue(t *testing.T) {
	src := "int f(void) { double d = 1.0; return sizeof d; }"
	if got := run(t, src, "f"); got.Int() != 8 {
		t.Errorf("sizeof d = %v, want 8", got)
	}
}

func TestVoidFunctionReturn(t *testing.T) {
	src := `
void bump(int *p) { p[0] = p[0] + 1; }
int f(void) {
    int v = 1;
    bump(&v);
    bump(&v);
    return v;
}
`
	if got := run(t, src, "f"); got.Int() != 3 {
		t.Errorf("got %v, want 3", got)
	}
}

func TestStringLitIndexing(t *testing.T) {
	src := `int f(void) { char *s = "AB"; return s[0] + s[1]; }`
	if got := run(t, src, "f"); got.Int() != 'A'+'B' {
		t.Errorf("got %v", got)
	}
}

func TestDoWhileExecution(t *testing.T) {
	src := `
int f(int n) {
    int total = 0;
    do {
        total += n;
        n--;
    } while (n > 0);
    return total;
}
`
	// n=3: 3+2+1 = 6; n=0: body runs once → 0.
	if got := run(t, src, "f", IntValue(3)); got.Int() != 6 {
		t.Errorf("f(3) = %v, want 6", got)
	}
	if got := run(t, src, "f", IntValue(0)); got.Int() != 0 {
		t.Errorf("f(0) = %v, want 0 (body runs once)", got)
	}
}

func TestDoWhileBreak(t *testing.T) {
	src := `
int f(void) {
    int i = 0;
    do {
        i++;
        if (i == 3) break;
    } while (1);
    return i;
}
`
	if got := run(t, src, "f"); got.Int() != 3 {
		t.Errorf("f() = %v, want 3", got)
	}
}

func TestSwitchExecution(t *testing.T) {
	src := `
int f(int x) {
    int r = 0;
    switch (x) {
    case 1:
        r = 10;
        break;
    case 2:
    case 3:
        r = 20;
        break;
    default:
        r = 30;
    }
    return r;
}
`
	tests := []struct{ in, want int64 }{
		{1, 10}, {2, 20}, {3, 20}, {4, 30}, {-1, 30},
	}
	for _, tt := range tests {
		if got := run(t, src, "f", IntValue(tt.in)); got.Int() != tt.want {
			t.Errorf("f(%d) = %v, want %d", tt.in, got, tt.want)
		}
	}
}

func TestSwitchFallthroughAndNoDefault(t *testing.T) {
	src := `
int f(int x) {
    int r = 0;
    switch (x) {
    case 1:
        r += 1;
    case 2:
        r += 2;
        break;
    case 3:
        r += 4;
    }
    return r;
}
`
	tests := []struct{ in, want int64 }{
		{1, 3}, // falls through into case 2
		{2, 2},
		{3, 4},
		{9, 0}, // no match, no default
	}
	for _, tt := range tests {
		if got := run(t, src, "f", IntValue(tt.in)); got.Int() != tt.want {
			t.Errorf("f(%d) = %v, want %d", tt.in, got, tt.want)
		}
	}
}

func TestSwitchReturnAndContinue(t *testing.T) {
	src := `
int f(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        switch (i % 3) {
        case 0:
            continue;
        case 1:
            total += 10;
            break;
        default:
            return total + 100;
        }
    }
    return total;
}
`
	// i=0: continue; i=1: +10; i=2: return 10+100.
	if got := run(t, src, "f", IntValue(5)); got.Int() != 110 {
		t.Errorf("f(5) = %v, want 110", got)
	}
}

func TestAllCompoundAssignOps(t *testing.T) {
	src := `
int f(int a) {
    a += 3;
    a -= 1;
    a *= 2;
    a /= 3;
    a %= 7;
    a ^= 5;
    a &= 6;
    a |= 9;
    a <<= 2;
    a >>= 1;
    return a;
}
`
	// a=10: +3=13, -1=12, *2=24, /3=8, %7=1, ^5=4, &6=4, |9=13, <<2=52, >>1=26.
	if got := run(t, src, "f", IntValue(10)); got.Int() != 26 {
		t.Errorf("f(10) = %v, want 26", got)
	}
}
