// Package interp implements a concrete interpreter for MiniC. The SGX
// enclave simulator uses it to actually run enclave code end-to-end, and
// the checker uses it to replay leak witnesses: two concrete executions
// differing in a single secret must produce observably different outputs.
package interp

import (
	"errors"
	"fmt"
	"strconv"

	"privacyscope/internal/minic"
)

// Interpreter errors.
var (
	ErrStepBudget    = errors.New("interp: step budget exhausted")
	ErrNilDeref      = errors.New("interp: nil pointer dereference")
	ErrOutOfBounds   = errors.New("interp: index out of bounds")
	ErrDivideByZero  = errors.New("interp: division by zero")
	ErrNoSuchFunc    = errors.New("interp: no such function")
	ErrMissingReturn = errors.New("interp: function fell off the end without returning a value")
)

// CellKind is the storage class of one memory cell.
type CellKind int

// Cell kinds.
const (
	CellInt CellKind = iota + 1
	CellChar
	CellFloat // float and double both store float64
	CellPtr
)

// Value is a concrete MiniC value: an integer, a float, or a pointer.
type Value struct {
	kind CellKind
	i    int64
	f    float64
	ptr  Pointer
}

// Pointer references a cell inside an object.
type Pointer struct {
	Obj *Object
	Off int
}

// IsNil reports whether the pointer is null.
func (p Pointer) IsNil() bool { return p.Obj == nil }

// IntValue wraps an int.
func IntValue(v int64) Value { return Value{kind: CellInt, i: v} }

// CharValue wraps a char.
func CharValue(v int64) Value { return Value{kind: CellChar, i: int64(int8(v))} }

// FloatValue wraps a float.
func FloatValue(v float64) Value { return Value{kind: CellFloat, f: v} }

// PtrValue wraps a pointer.
func PtrValue(p Pointer) Value { return Value{kind: CellPtr, ptr: p} }

// Kind returns the value's storage class.
func (v Value) Kind() CellKind { return v.kind }

// Int returns the value as int64 (floats truncate).
func (v Value) Int() int64 {
	if v.kind == CellFloat {
		return int64(v.f)
	}
	return v.i
}

// Float returns the value as float64.
func (v Value) Float() float64 {
	if v.kind == CellFloat {
		return v.f
	}
	return float64(v.i)
}

// Ptr returns the pointer payload (zero Pointer when not a pointer).
func (v Value) Ptr() Pointer { return v.ptr }

// IsZero reports numeric zero or nil pointer.
func (v Value) IsZero() bool {
	switch v.kind {
	case CellFloat:
		return v.f == 0
	case CellPtr:
		return v.ptr.IsNil()
	default:
		return v.i == 0
	}
}

// IsFloat reports whether the value is floating point.
func (v Value) IsFloat() bool { return v.kind == CellFloat }

// String formats the value.
func (v Value) String() string {
	switch v.kind {
	case CellFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case CellPtr:
		if v.ptr.IsNil() {
			return "NULL"
		}
		return fmt.Sprintf("&%s+%d", v.ptr.Obj.Name, v.ptr.Off)
	default:
		return strconv.FormatInt(v.i, 10)
	}
}

// Object is a contiguous block of typed cells: a variable, array, struct or
// heap buffer.
type Object struct {
	Name  string
	cells []Value
	kinds []CellKind
}

// NewObject allocates an object with the cell layout of the given type.
func NewObject(name string, t minic.Type) *Object {
	kinds := layout(t)
	o := &Object{Name: name, cells: make([]Value, len(kinds)), kinds: kinds}
	for i, k := range kinds {
		o.cells[i] = zeroOf(k)
	}
	return o
}

// NewBuffer allocates a flat buffer of n cells of one kind (for ECALL
// marshalling).
func NewBuffer(name string, kind CellKind, n int) *Object {
	o := &Object{Name: name, cells: make([]Value, n), kinds: make([]CellKind, n)}
	for i := range o.cells {
		o.kinds[i] = kind
		o.cells[i] = zeroOf(kind)
	}
	return o
}

// Len returns the number of cells.
func (o *Object) Len() int { return len(o.cells) }

// Load reads cell off.
func (o *Object) Load(off int) (Value, error) {
	if off < 0 || off >= len(o.cells) {
		return Value{}, fmt.Errorf("%w: %s[%d] (len %d)", ErrOutOfBounds, o.Name, off, len(o.cells))
	}
	return o.cells[off], nil
}

// Store writes cell off, coercing v to the cell's kind (C-style narrowing).
func (o *Object) Store(off int, v Value) error {
	if off < 0 || off >= len(o.cells) {
		return fmt.Errorf("%w: %s[%d] (len %d)", ErrOutOfBounds, o.Name, off, len(o.cells))
	}
	o.cells[off] = coerce(v, o.kinds[off])
	return nil
}

// Cells returns a copy of the raw cells (for reading [out] buffers).
func (o *Object) Cells() []Value {
	out := make([]Value, len(o.cells))
	copy(out, o.cells)
	return out
}

// SetCells overwrites the first len(vals) cells with coercion (for filling
// [in] buffers).
func (o *Object) SetCells(vals []Value) error {
	if len(vals) > len(o.cells) {
		return fmt.Errorf("%w: writing %d cells into %s (len %d)", ErrOutOfBounds, len(vals), o.Name, len(o.cells))
	}
	for i, v := range vals {
		o.cells[i] = coerce(v, o.kinds[i])
	}
	return nil
}

func zeroOf(k CellKind) Value {
	switch k {
	case CellFloat:
		return FloatValue(0)
	case CellPtr:
		return PtrValue(Pointer{})
	case CellChar:
		return CharValue(0)
	default:
		return IntValue(0)
	}
}

// coerce converts v to cell kind k with C semantics: floats truncate to
// ints, chars wrap to 8 bits, ints widen to floats exactly.
func coerce(v Value, k CellKind) Value {
	switch k {
	case CellInt:
		return IntValue(int64(int32(v.Int())))
	case CellChar:
		return CharValue(v.Int())
	case CellFloat:
		return FloatValue(v.Float())
	case CellPtr:
		if v.kind == CellPtr {
			return v
		}
		return PtrValue(Pointer{}) // storing a non-pointer nulls the cell
	}
	return v
}

// layout flattens a type into its cell kinds.
func layout(t minic.Type) []CellKind {
	switch v := t.(type) {
	case minic.Basic:
		switch v.Kind {
		case minic.Char:
			return []CellKind{CellChar}
		case minic.Float, minic.Double:
			return []CellKind{CellFloat}
		case minic.Void:
			return nil
		default:
			return []CellKind{CellInt}
		}
	case minic.Pointer:
		return []CellKind{CellPtr}
	case minic.Array:
		n := v.Len
		if n < 0 {
			n = 0
		}
		elem := layout(v.Elem)
		out := make([]CellKind, 0, n*len(elem))
		for i := 0; i < n; i++ {
			out = append(out, elem...)
		}
		return out
	case *minic.StructType:
		var out []CellKind
		for _, f := range v.Fields {
			out = append(out, layout(f.Type)...)
		}
		return out
	}
	return nil
}

// cellsOf returns the number of cells a type occupies.
func cellsOf(t minic.Type) int { return len(layout(t)) }

// fieldOffset returns the cell offset of field name within struct st.
func fieldOffset(st *minic.StructType, name string) (int, minic.Type, bool) {
	off := 0
	for _, f := range st.Fields {
		if f.Name == name {
			return off, f.Type, true
		}
		off += cellsOf(f.Type)
	}
	return 0, nil, false
}
