package interp

import (
	"fmt"

	"privacyscope/internal/minic"
)

// Machine executes MiniC programs concretely. It is single-threaded; create
// one per run or guard externally.
type Machine struct {
	file *minic.File
	// MaxSteps bounds execution; 0 means DefaultMaxSteps.
	MaxSteps int
	steps    int
	rng      uint64
	// Printed collects printf/ocall_print output lines.
	Printed []string
	// OCallHandler, when set, intercepts calls to functions the machine
	// has no native model for (before the unknown-function error). The
	// SGX simulator uses it to dispatch EDL-declared OCALLs to host
	// code. Return handled=false to fall through to the error.
	OCallHandler func(name string, args []Value) (result Value, handled bool, err error)
	globals      *scopeStack
}

// DefaultMaxSteps is the default execution budget.
const DefaultMaxSteps = 5_000_000

// NewMachine returns a machine for the file, with globals allocated and
// initialized.
func NewMachine(file *minic.File) (*Machine, error) {
	m := &Machine{file: file, MaxSteps: DefaultMaxSteps, rng: 0x2545F4914F6CDD1D}
	m.globals = newScopeStack(nil)
	for _, g := range file.Globals {
		b := &binding{obj: NewObject(g.Name, g.Type), ty: g.Type}
		m.globals.declare(g.Name, b)
		if g.Init != nil {
			fr := &frame{scopes: m.globals}
			v, _, err := m.eval(fr, g.Init)
			if err != nil {
				return nil, fmt.Errorf("init global %s: %w", g.Name, err)
			}
			if err := b.obj.Store(0, v); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// Call invokes a defined function with the given argument values.
func (m *Machine) Call(name string, args []Value) (Value, error) {
	fn, ok := m.file.Function(name)
	if !ok || fn.Body == nil {
		return Value{}, fmt.Errorf("%w: %s", ErrNoSuchFunc, name)
	}
	if len(args) != len(fn.Params) {
		return Value{}, fmt.Errorf("interp: %s expects %d args, got %d", name, len(fn.Params), len(args))
	}
	fr := &frame{fn: fn, scopes: newScopeStack(m.globals)}
	for i, p := range fn.Params {
		obj := NewObject(p.Name, p.Type)
		if err := obj.Store(0, args[i]); err != nil {
			return Value{}, err
		}
		fr.scopes.declare(p.Name, &binding{obj: obj, ty: p.Type})
	}
	ctl, err := m.execBlock(fr, fn.Body)
	if err != nil {
		return Value{}, err
	}
	if ctl.kind == ctlReturn {
		return ctl.val, nil
	}
	if b, ok := fn.Return.(minic.Basic); ok && b.Kind == minic.Void {
		return IntValue(0), nil
	}
	return Value{}, fmt.Errorf("%w: %s", ErrMissingReturn, name)
}

// Seed sets the PRNG state used by rand().
func (m *Machine) Seed(s uint64) {
	if s == 0 {
		s = 1
	}
	m.rng = s
}

type binding struct {
	obj *Object
	ty  minic.Type
}

type scopeStack struct {
	parent *scopeStack
	maps   []map[string]*binding
}

func newScopeStack(parent *scopeStack) *scopeStack {
	return &scopeStack{parent: parent, maps: []map[string]*binding{make(map[string]*binding)}}
}

func (s *scopeStack) push() { s.maps = append(s.maps, make(map[string]*binding)) }
func (s *scopeStack) pop()  { s.maps = s.maps[:len(s.maps)-1] }

func (s *scopeStack) declare(name string, b *binding) {
	s.maps[len(s.maps)-1][name] = b
}

func (s *scopeStack) lookup(name string) (*binding, bool) {
	for st := s; st != nil; st = st.parent {
		for i := len(st.maps) - 1; i >= 0; i-- {
			if b, ok := st.maps[i][name]; ok {
				return b, true
			}
		}
	}
	return nil, false
}

type frame struct {
	fn     *minic.FuncDecl
	scopes *scopeStack
}

type ctlKind int

const (
	ctlNext ctlKind = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

type control struct {
	kind ctlKind
	val  Value
}

var next = control{}

func (m *Machine) step() error {
	m.steps++
	limit := m.MaxSteps
	if limit <= 0 {
		limit = DefaultMaxSteps
	}
	if m.steps > limit {
		return ErrStepBudget
	}
	return nil
}

func (m *Machine) execBlock(fr *frame, b *minic.Block) (control, error) {
	fr.scopes.push()
	defer fr.scopes.pop()
	for _, s := range b.Stmts {
		ctl, err := m.exec(fr, s)
		if err != nil {
			return next, err
		}
		if ctl.kind != ctlNext {
			return ctl, nil
		}
	}
	return next, nil
}

func (m *Machine) exec(fr *frame, s minic.Stmt) (control, error) {
	if err := m.step(); err != nil {
		return next, err
	}
	switch v := s.(type) {
	case *minic.Block:
		return m.execBlock(fr, v)
	case *minic.EmptyStmt:
		return next, nil
	case *minic.DeclStmt:
		for _, d := range v.Decls {
			obj := NewObject(d.Name, d.Type)
			fr.scopes.declare(d.Name, &binding{obj: obj, ty: d.Type})
			if d.Init != nil {
				val, _, err := m.eval(fr, d.Init)
				if err != nil {
					return next, err
				}
				if err := obj.Store(0, val); err != nil {
					return next, err
				}
			}
		}
		return next, nil
	case *minic.ExprStmt:
		_, _, err := m.eval(fr, v.X)
		return next, err
	case *minic.IfStmt:
		cond, _, err := m.eval(fr, v.Cond)
		if err != nil {
			return next, err
		}
		if !cond.IsZero() {
			return m.exec(fr, v.Then)
		}
		if v.Else != nil {
			return m.exec(fr, v.Else)
		}
		return next, nil
	case *minic.WhileStmt:
		for {
			if err := m.step(); err != nil {
				return next, err
			}
			cond, _, err := m.eval(fr, v.Cond)
			if err != nil {
				return next, err
			}
			if cond.IsZero() {
				return next, nil
			}
			ctl, err := m.exec(fr, v.Body)
			if err != nil {
				return next, err
			}
			switch ctl.kind {
			case ctlReturn:
				return ctl, nil
			case ctlBreak:
				return next, nil
			}
		}
	case *minic.ForStmt:
		fr.scopes.push()
		defer fr.scopes.pop()
		if v.Init != nil {
			if _, err := m.exec(fr, v.Init); err != nil {
				return next, err
			}
		}
		for {
			if err := m.step(); err != nil {
				return next, err
			}
			if v.Cond != nil {
				cond, _, err := m.eval(fr, v.Cond)
				if err != nil {
					return next, err
				}
				if cond.IsZero() {
					return next, nil
				}
			}
			ctl, err := m.exec(fr, v.Body)
			if err != nil {
				return next, err
			}
			if ctl.kind == ctlReturn {
				return ctl, nil
			}
			if ctl.kind == ctlBreak {
				return next, nil
			}
			if v.Post != nil {
				if _, _, err := m.eval(fr, v.Post); err != nil {
					return next, err
				}
			}
		}
	case *minic.DoWhileStmt:
		for {
			if err := m.step(); err != nil {
				return next, err
			}
			ctl, err := m.exec(fr, v.Body)
			if err != nil {
				return next, err
			}
			if ctl.kind == ctlReturn {
				return ctl, nil
			}
			if ctl.kind == ctlBreak {
				return next, nil
			}
			cond, _, err := m.eval(fr, v.Cond)
			if err != nil {
				return next, err
			}
			if cond.IsZero() {
				return next, nil
			}
		}
	case *minic.SwitchStmt:
		return m.execSwitch(fr, v)
	case *minic.ReturnStmt:
		if v.X == nil {
			return control{kind: ctlReturn, val: IntValue(0)}, nil
		}
		val, _, err := m.eval(fr, v.X)
		if err != nil {
			return next, err
		}
		if fr.fn != nil {
			val = coerceToType(val, fr.fn.Return)
		}
		return control{kind: ctlReturn, val: val}, nil
	case *minic.BreakStmt:
		return control{kind: ctlBreak}, nil
	case *minic.ContinueStmt:
		return control{kind: ctlContinue}, nil
	}
	return next, fmt.Errorf("interp: unknown statement %T", s)
}

func coerceToType(v Value, t minic.Type) Value {
	switch ty := t.(type) {
	case minic.Basic:
		switch ty.Kind {
		case minic.Int:
			return IntValue(int64(int32(v.Int())))
		case minic.Char:
			return CharValue(v.Int())
		case minic.Float, minic.Double:
			return FloatValue(v.Float())
		}
	case minic.Pointer:
		return v
	}
	return v
}

// place is a resolved lvalue.
type place struct {
	obj *Object
	off int
	ty  minic.Type
}

func (m *Machine) lvalue(fr *frame, e minic.Expr) (place, error) {
	switch v := e.(type) {
	case *minic.IdentExpr:
		b, ok := fr.scopes.lookup(v.Name)
		if !ok {
			return place{}, &minic.Error{Pos: v.Pos, Msg: "undeclared identifier " + v.Name}
		}
		return place{obj: b.obj, off: 0, ty: b.ty}, nil
	case *minic.IndexExpr:
		return m.indexPlace(fr, v)
	case *minic.DerefExpr:
		val, ty, err := m.eval(fr, v.X)
		if err != nil {
			return place{}, err
		}
		p := val.Ptr()
		if p.IsNil() {
			return place{}, fmt.Errorf("%w at %s", ErrNilDeref, v.Pos)
		}
		elem, _ := minic.ElemType(ty)
		if elem == nil {
			elem = minic.Basic{Kind: minic.Int}
		}
		return place{obj: p.Obj, off: p.Off, ty: elem}, nil
	case *minic.MemberExpr:
		return m.memberPlace(fr, v)
	default:
		return place{}, fmt.Errorf("interp: not an lvalue: %T", e)
	}
}

func (m *Machine) indexPlace(fr *frame, v *minic.IndexExpr) (place, error) {
	idxVal, _, err := m.eval(fr, v.Index)
	if err != nil {
		return place{}, err
	}
	idx := int(idxVal.Int())

	// Array lvalue: index within the same object.
	if base, err := m.lvalue(fr, v.X); err == nil {
		if arr, ok := base.ty.(minic.Array); ok {
			sz := cellsOf(arr.Elem)
			return place{obj: base.obj, off: base.off + idx*sz, ty: arr.Elem}, nil
		}
	}
	// Pointer rvalue: index through the pointer.
	val, ty, err := m.eval(fr, v.X)
	if err != nil {
		return place{}, err
	}
	ptr := val.Ptr()
	if ptr.IsNil() {
		return place{}, fmt.Errorf("%w at %s", ErrNilDeref, v.Pos)
	}
	elem, ok := minic.ElemType(ty)
	if !ok {
		return place{}, &minic.Error{Pos: v.Pos, Msg: "indexing a non-pointer"}
	}
	sz := cellsOf(elem)
	return place{obj: ptr.Obj, off: ptr.Off + idx*sz, ty: elem}, nil
}

func (m *Machine) memberPlace(fr *frame, v *minic.MemberExpr) (place, error) {
	var base place
	if v.Arrow {
		val, ty, err := m.eval(fr, v.X)
		if err != nil {
			return place{}, err
		}
		ptr := val.Ptr()
		if ptr.IsNil() {
			return place{}, fmt.Errorf("%w at %s", ErrNilDeref, v.Pos)
		}
		elem, _ := minic.ElemType(ty)
		base = place{obj: ptr.Obj, off: ptr.Off, ty: elem}
	} else {
		b, err := m.lvalue(fr, v.X)
		if err != nil {
			return place{}, err
		}
		base = b
	}
	st, ok := base.ty.(*minic.StructType)
	if !ok {
		return place{}, &minic.Error{Pos: v.Pos, Msg: "member access on non-struct"}
	}
	off, fty, ok := fieldOffset(st, v.Field)
	if !ok {
		return place{}, &minic.Error{Pos: v.Pos, Msg: "no field " + v.Field + " in " + st.Name}
	}
	return place{obj: base.obj, off: base.off + off, ty: fty}, nil
}

// eval evaluates an expression, returning its value and static type.
func (m *Machine) eval(fr *frame, e minic.Expr) (Value, minic.Type, error) {
	if err := m.step(); err != nil {
		return Value{}, nil, err
	}
	switch v := e.(type) {
	case *minic.IntLitExpr:
		return IntValue(v.V), minic.Basic{Kind: minic.Int}, nil
	case *minic.FloatLitExpr:
		return FloatValue(v.V), minic.Basic{Kind: minic.Double}, nil
	case *minic.StringLitExpr:
		// Strings materialize as char buffers.
		obj := NewBuffer("strlit", CellChar, len(v.V)+1)
		for i, c := range []byte(v.V) {
			_ = obj.Store(i, CharValue(int64(c)))
		}
		return PtrValue(Pointer{Obj: obj}), minic.Pointer{Elem: minic.Basic{Kind: minic.Char}}, nil
	case *minic.IdentExpr, *minic.IndexExpr, *minic.MemberExpr, *minic.DerefExpr:
		pl, err := m.lvalue(fr, e)
		if err != nil {
			return Value{}, nil, err
		}
		// Arrays decay to a pointer to their first element.
		if arr, ok := pl.ty.(minic.Array); ok {
			return PtrValue(Pointer{Obj: pl.obj, Off: pl.off}), minic.Pointer{Elem: arr.Elem}, nil
		}
		if st, ok := pl.ty.(*minic.StructType); ok {
			// Struct rvalue: a pointer to it (no struct copying in
			// this model).
			return PtrValue(Pointer{Obj: pl.obj, Off: pl.off}), minic.Pointer{Elem: st}, nil
		}
		val, err := pl.obj.Load(pl.off)
		if err != nil {
			return Value{}, nil, err
		}
		return val, pl.ty, nil
	case *minic.AddrExpr:
		pl, err := m.lvalue(fr, v.X)
		if err != nil {
			return Value{}, nil, err
		}
		return PtrValue(Pointer{Obj: pl.obj, Off: pl.off}), minic.Pointer{Elem: pl.ty}, nil
	case *minic.AssignExpr:
		return m.evalAssign(fr, v)
	case *minic.IncDecExpr:
		return m.evalIncDec(fr, v)
	case *minic.UnExpr:
		return m.evalUnary(fr, v)
	case *minic.BinExpr:
		return m.evalBinary(fr, v)
	case *minic.CondExpr:
		cond, _, err := m.eval(fr, v.Cond)
		if err != nil {
			return Value{}, nil, err
		}
		if !cond.IsZero() {
			return m.eval(fr, v.Then)
		}
		return m.eval(fr, v.Else)
	case *minic.CastExpr:
		val, _, err := m.eval(fr, v.X)
		if err != nil {
			return Value{}, nil, err
		}
		return coerceToType(val, v.To), v.To, nil
	case *minic.SizeofExpr:
		if v.Ty != nil {
			return IntValue(int64(minic.SizeOf(v.Ty))), minic.Basic{Kind: minic.Int}, nil
		}
		_, ty, err := m.eval(fr, v.X)
		if err != nil {
			return Value{}, nil, err
		}
		return IntValue(int64(minic.SizeOf(ty))), minic.Basic{Kind: minic.Int}, nil
	case *minic.CallExpr:
		return m.evalCall(fr, v)
	}
	return Value{}, nil, fmt.Errorf("interp: unknown expression %T", e)
}

func (m *Machine) evalAssign(fr *frame, v *minic.AssignExpr) (Value, minic.Type, error) {
	pl, err := m.lvalue(fr, v.LHS)
	if err != nil {
		return Value{}, nil, err
	}
	rhs, _, err := m.eval(fr, v.RHS)
	if err != nil {
		return Value{}, nil, err
	}
	if v.Op != 0 {
		cur, err := pl.obj.Load(pl.off)
		if err != nil {
			return Value{}, nil, err
		}
		rhs, err = applyBinary(v.Op, cur, rhs)
		if err != nil {
			return Value{}, nil, fmt.Errorf("%w at %s", err, v.Pos)
		}
	}
	if err := pl.obj.Store(pl.off, rhs); err != nil {
		return Value{}, nil, err
	}
	stored, err := pl.obj.Load(pl.off)
	if err != nil {
		return Value{}, nil, err
	}
	return stored, pl.ty, nil
}

func (m *Machine) evalIncDec(fr *frame, v *minic.IncDecExpr) (Value, minic.Type, error) {
	pl, err := m.lvalue(fr, v.X)
	if err != nil {
		return Value{}, nil, err
	}
	old, err := pl.obj.Load(pl.off)
	if err != nil {
		return Value{}, nil, err
	}
	delta := int64(1)
	if v.Decr {
		delta = -1
	}
	var updated Value
	if old.IsFloat() {
		updated = FloatValue(old.Float() + float64(delta))
	} else {
		updated = IntValue(old.Int() + delta)
	}
	if err := pl.obj.Store(pl.off, updated); err != nil {
		return Value{}, nil, err
	}
	if v.Prefix {
		stored, err := pl.obj.Load(pl.off)
		return stored, pl.ty, err
	}
	return old, pl.ty, nil
}

func (m *Machine) evalUnary(fr *frame, v *minic.UnExpr) (Value, minic.Type, error) {
	x, ty, err := m.eval(fr, v.X)
	if err != nil {
		return Value{}, nil, err
	}
	switch v.Op.String() {
	case "-":
		if x.IsFloat() {
			return FloatValue(-x.Float()), ty, nil
		}
		return IntValue(-x.Int()), ty, nil
	case "~":
		return IntValue(^x.Int()), minic.Basic{Kind: minic.Int}, nil
	case "!":
		if x.IsZero() {
			return IntValue(1), minic.Basic{Kind: minic.Int}, nil
		}
		return IntValue(0), minic.Basic{Kind: minic.Int}, nil
	}
	return Value{}, nil, fmt.Errorf("interp: bad unary %v", v.Op)
}

func (m *Machine) evalBinary(fr *frame, v *minic.BinExpr) (Value, minic.Type, error) {
	l, lty, err := m.eval(fr, v.L)
	if err != nil {
		return Value{}, nil, err
	}
	op := v.Op.String()
	// Short-circuit.
	if op == "&&" {
		if l.IsZero() {
			return IntValue(0), minic.Basic{Kind: minic.Int}, nil
		}
		r, _, err := m.eval(fr, v.R)
		if err != nil {
			return Value{}, nil, err
		}
		if r.IsZero() {
			return IntValue(0), minic.Basic{Kind: minic.Int}, nil
		}
		return IntValue(1), minic.Basic{Kind: minic.Int}, nil
	}
	if op == "||" {
		if !l.IsZero() {
			return IntValue(1), minic.Basic{Kind: minic.Int}, nil
		}
		r, _, err := m.eval(fr, v.R)
		if err != nil {
			return Value{}, nil, err
		}
		if r.IsZero() {
			return IntValue(0), minic.Basic{Kind: minic.Int}, nil
		}
		return IntValue(1), minic.Basic{Kind: minic.Int}, nil
	}
	r, rty, err := m.eval(fr, v.R)
	if err != nil {
		return Value{}, nil, err
	}
	// Pointer arithmetic: p + i / p - i scale by element size (cells).
	if l.Kind() == CellPtr && (op == "+" || op == "-") {
		elem, _ := minic.ElemType(lty)
		sz := 1
		if elem != nil {
			sz = cellsOf(elem)
		}
		delta := int(r.Int()) * sz
		if op == "-" {
			delta = -delta
		}
		p := l.Ptr()
		return PtrValue(Pointer{Obj: p.Obj, Off: p.Off + delta}), lty, nil
	}
	out, err := applyBinary(v.Op, l, r)
	if err != nil {
		return Value{}, nil, fmt.Errorf("%w at %s", err, v.Pos)
	}
	ty := minic.Type(minic.Basic{Kind: minic.Int})
	if out.IsFloat() {
		ty = minic.Basic{Kind: minic.Double}
	}
	_ = rty
	return out, ty, nil
}

func (m *Machine) evalCall(fr *frame, v *minic.CallExpr) (Value, minic.Type, error) {
	if fn, ok := m.file.Function(v.Fun); ok && fn.Body != nil {
		args := make([]Value, len(v.Args))
		for i, a := range v.Args {
			val, _, err := m.eval(fr, a)
			if err != nil {
				return Value{}, nil, err
			}
			args[i] = val
		}
		ret, err := m.Call(v.Fun, args)
		if err != nil {
			return Value{}, nil, err
		}
		return ret, fn.Return, nil
	}
	return m.builtin(fr, v)
}

// execSwitch evaluates a C switch with fallthrough: execution starts at the
// first matching case (or default) and runs through subsequent cases until
// a break.
func (m *Machine) execSwitch(fr *frame, v *minic.SwitchStmt) (control, error) {
	tag, _, err := m.eval(fr, v.Tag)
	if err != nil {
		return next, err
	}
	entry := -1
	defaultIdx := -1
	for i, c := range v.Cases {
		if c.IsDefault {
			defaultIdx = i
			continue
		}
		cv, _, err := m.eval(fr, c.Value)
		if err != nil {
			return next, err
		}
		if cv.Int() == tag.Int() {
			entry = i
			break
		}
	}
	if entry < 0 {
		entry = defaultIdx
	}
	if entry < 0 {
		return next, nil
	}
	for i := entry; i < len(v.Cases); i++ {
		for _, s := range v.Cases[i].Body {
			ctl, err := m.exec(fr, s)
			if err != nil {
				return next, err
			}
			switch ctl.kind {
			case ctlReturn, ctlContinue:
				// continue binds to the enclosing loop.
				return ctl, nil
			case ctlBreak:
				return next, nil
			}
		}
	}
	return next, nil
}
