package minic

import (
	"fmt"

	"privacyscope/internal/sym"
)

// Parse parses a MiniC translation unit.
func Parse(src string) (*File, error) {
	toks, err := NewLexer(src).Tokens()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, structs: make(map[string]*StructType)}
	return p.parseFile()
}

// MustParse parses src and panics on error; for fixed fixtures and tests.
func MustParse(src string) *File {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	toks    []Token
	off     int
	structs map[string]*StructType
}

func (p *parser) cur() Token { return p.toks[p.off] }
func (p *parser) la(n int) Token {
	if p.off+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.off+n]
}
func (p *parser) advance() Token {
	t := p.toks[p.off]
	if t.Kind != EOF {
		p.off++
	}
	return t
}
func (p *parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf("expected %v, found %v %q", k, p.cur().Kind, p.cur().Text)}
	}
	return p.advance(), nil
}

func (p *parser) parseFile() (*File, error) {
	f := &File{}
	for !p.at(EOF) {
		if p.at(KwStruct) && p.la(1).Kind == Ident && p.la(2).Kind == LBrace {
			st, err := p.parseStructDef()
			if err != nil {
				return nil, err
			}
			f.Structs = append(f.Structs, st)
			continue
		}
		if p.at(Semi) {
			p.advance()
			continue
		}
		// A declaration: type declarator ...
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(Ident)
		if err != nil {
			return nil, err
		}
		if p.at(LParen) {
			fn, err := p.parseFuncRest(ty, name)
			if err != nil {
				return nil, err
			}
			if fn != nil {
				f.Functions = append(f.Functions, fn)
			}
			continue
		}
		decls, err := p.parseVarDeclRest(ty, name)
		if err != nil {
			return nil, err
		}
		f.Globals = append(f.Globals, decls...)
	}
	return f, nil
}

func (p *parser) parseStructDef() (*StructType, error) {
	p.advance() // struct
	nameTok, err := p.expect(Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	st := &StructType{Name: nameTok.Text}
	p.structs[st.Name] = st
	for !p.at(RBrace) {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		for {
			fty := ty
			for p.at(Star) {
				p.advance()
				fty = Pointer{Elem: fty}
			}
			fieldTok, err := p.expect(Ident)
			if err != nil {
				return nil, err
			}
			fty, err = p.parseArraySuffix(fty)
			if err != nil {
				return nil, err
			}
			st.Fields = append(st.Fields, Field{Name: fieldTok.Text, Type: fty})
			if p.at(Comma) {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	p.advance() // }
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return st, nil
}

// parseType parses a base type with pointer stars (declarator-level stars
// and array suffixes are handled by callers).
func (p *parser) parseType() (Type, error) {
	for p.at(KwConst) {
		p.advance()
	}
	var base Type
	switch p.cur().Kind {
	case KwVoid:
		p.advance()
		base = Basic{Kind: Void}
	case KwInt:
		p.advance()
		base = Basic{Kind: Int}
	case KwChar:
		p.advance()
		base = Basic{Kind: Char}
	case KwFloat:
		p.advance()
		base = Basic{Kind: Float}
	case KwDouble:
		p.advance()
		base = Basic{Kind: Double}
	case KwLong, KwUnsigned:
		// long / unsigned [int|long|char|double] collapse onto int or
		// double in this model.
		p.advance()
		for p.at(KwLong) || p.at(KwUnsigned) || p.at(KwInt) || p.at(KwChar) {
			p.advance()
		}
		if p.at(KwDouble) {
			p.advance()
			base = Basic{Kind: Double}
		} else {
			base = Basic{Kind: Int}
		}
	case KwStruct:
		p.advance()
		nameTok, err := p.expect(Ident)
		if err != nil {
			return nil, err
		}
		st, ok := p.structs[nameTok.Text]
		if !ok {
			return nil, &Error{Pos: nameTok.Pos, Msg: "unknown struct " + nameTok.Text}
		}
		base = st
	default:
		return nil, &Error{Pos: p.cur().Pos, Msg: "expected type, found " + p.cur().Kind.String()}
	}
	for p.at(Star) {
		p.advance()
		for p.at(KwConst) {
			p.advance()
		}
		base = Pointer{Elem: base}
	}
	return base, nil
}

// isTypeStart reports whether the current token can begin a type.
func (p *parser) isTypeStart() bool {
	switch p.cur().Kind {
	case KwVoid, KwInt, KwChar, KwFloat, KwDouble, KwLong, KwUnsigned, KwConst:
		return true
	case KwStruct:
		return true
	}
	return false
}

func (p *parser) parseArraySuffix(ty Type) (Type, error) {
	var lens []int
	for p.at(LBracket) {
		p.advance()
		n := -1
		if p.at(IntLit) {
			n = int(p.advance().Int)
		} else if p.at(Ident) {
			return nil, &Error{Pos: p.cur().Pos, Msg: "array length must be an integer constant (use #define)"}
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		lens = append(lens, n)
	}
	for i := len(lens) - 1; i >= 0; i-- {
		ty = Array{Elem: ty, Len: lens[i]}
	}
	return ty, nil
}

func (p *parser) parseFuncRest(ret Type, name Token) (*FuncDecl, error) {
	p.advance() // (
	fn := &FuncDecl{Name: name.Text, Return: ret, Pos: name.Pos}
	if p.at(KwVoid) && p.la(1).Kind == RParen {
		p.advance()
	}
	for !p.at(RParen) {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pname := ""
		var ppos Pos
		if p.at(Ident) {
			t := p.advance()
			pname = t.Text
			ppos = t.Pos
		}
		ty, err = p.parseArraySuffix(ty)
		if err != nil {
			return nil, err
		}
		// Array parameters decay to pointers.
		if arr, ok := ty.(Array); ok {
			ty = Pointer{Elem: arr.Elem}
		}
		fn.Params = append(fn.Params, &VarDecl{Name: pname, Type: ty, Pos: ppos})
		if p.at(Comma) {
			p.advance()
		}
	}
	p.advance() // )
	if p.at(Semi) {
		p.advance() // prototype: record with nil body
		fn.Body = nil
		return fn, nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseVarDeclRest(ty Type, name Token) ([]*VarDecl, error) {
	var decls []*VarDecl
	cur := name
	curTy := ty
	for {
		dty, err := p.parseArraySuffix(curTy)
		if err != nil {
			return nil, err
		}
		d := &VarDecl{Name: cur.Text, Type: dty, Pos: cur.Pos}
		if p.at(Assign) {
			p.advance()
			init, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		decls = append(decls, d)
		if p.at(Comma) {
			p.advance()
			extraTy := ty
			for p.at(Star) {
				p.advance()
				extraTy = Pointer{Elem: extraTy}
			}
			nt, err := p.expect(Ident)
			if err != nil {
				return nil, err
			}
			cur = nt
			curTy = extraTy
			continue
		}
		break
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return decls, nil
}

func (p *parser) parseBlock() (*Block, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for !p.at(RBrace) {
		if p.at(EOF) {
			return nil, &Error{Pos: p.cur().Pos, Msg: "unterminated block"}
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // }
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	tok := p.cur()
	switch tok.Kind {
	case LBrace:
		return p.parseBlock()
	case Semi:
		p.advance()
		return &EmptyStmt{Pos: tok.Pos}, nil
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwFor:
		return p.parseFor()
	case KwDo:
		return p.parseDoWhile()
	case KwSwitch:
		return p.parseSwitch()
	case KwReturn:
		p.advance()
		var x Expr
		if !p.at(Semi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			x = e
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x, Pos: tok.Pos}, nil
	case KwBreak:
		p.advance()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: tok.Pos}, nil
	case KwContinue:
		p.advance()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: tok.Pos}, nil
	}
	if p.isTypeStart() {
		return p.parseDeclStmt()
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &ExprStmt{X: e, Pos: tok.Pos}, nil
}

func (p *parser) parseDeclStmt() (Stmt, error) {
	pos := p.cur().Pos
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(Ident)
	if err != nil {
		return nil, err
	}
	decls, err := p.parseVarDeclRest(ty, name)
	if err != nil {
		return nil, err
	}
	return &DeclStmt{Decls: decls, Pos: pos}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.advance().Pos // if
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	thenS, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	var elseS Stmt
	if p.at(KwElse) {
		p.advance()
		elseS, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Cond: cond, Then: thenS, Else: elseS, Pos: pos}, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	pos := p.advance().Pos // while
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: pos}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	pos := p.advance().Pos // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: pos}
	if !p.at(Semi) {
		if p.isTypeStart() {
			init, err := p.parseDeclStmt() // consumes the semicolon
			if err != nil {
				return nil, err
			}
			st.Init = init
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{X: e, Pos: e.Position()}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
		}
	} else {
		p.advance()
	}
	if !p.at(Semi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(RParen) {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// Expression parsing, C precedence.

func (p *parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

var compoundOps = map[Kind]sym.Op{
	PlusAssign:    sym.OpAdd,
	MinusAssign:   sym.OpSub,
	StarAssign:    sym.OpMul,
	SlashAssign:   sym.OpDiv,
	PercentAssign: sym.OpRem,
	CaretAssign:   sym.OpXor,
	AmpAssign:     sym.OpAnd,
	PipeAssign:    sym.OpOr,
	ShlAssign:     sym.OpShl,
	ShrAssign:     sym.OpShr,
}

func (p *parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	tok := p.cur()
	if tok.Kind == Assign {
		p.advance()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{LHS: lhs, RHS: rhs, Pos: tok.Pos}, nil
	}
	if op, ok := compoundOps[tok.Kind]; ok {
		p.advance()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Op: op, LHS: lhs, RHS: rhs, Pos: tok.Pos}, nil
	}
	return lhs, nil
}

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBin(1)
	if err != nil {
		return nil, err
	}
	if !p.at(Question) {
		return cond, nil
	}
	pos := p.advance().Pos
	thenE, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Colon); err != nil {
		return nil, err
	}
	elseE, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: thenE, Else: elseE, Pos: pos}, nil
}

var cBinPrec = map[Kind]int{
	OrOr:   1,
	AndAnd: 2,
	Pipe:   3,
	Caret:  4,
	Amp:    5,
	Eq:     6, Ne: 6,
	Lt: 7, Le: 7, Gt: 7, Ge: 7,
	Shl: 8, Shr: 8,
	Plus: 9, Minus: 9,
	Star: 10, Slash: 10, Percent: 10,
}

var cBinOps = map[Kind]sym.Op{
	OrOr: sym.OpLOr, AndAnd: sym.OpLAnd,
	Pipe: sym.OpOr, Caret: sym.OpXor, Amp: sym.OpAnd,
	Eq: sym.OpEq, Ne: sym.OpNe,
	Lt: sym.OpLt, Le: sym.OpLe, Gt: sym.OpGt, Ge: sym.OpGe,
	Shl: sym.OpShl, Shr: sym.OpShr,
	Plus: sym.OpAdd, Minus: sym.OpSub,
	Star: sym.OpMul, Slash: sym.OpDiv, Percent: sym.OpRem,
}

func (p *parser) parseBin(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.cur()
		prec, ok := cBinPrec[tok.Kind]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.advance()
		right, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: cBinOps[tok.Kind], L: left, R: right, Pos: tok.Pos}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case Minus:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: sym.OpNeg, X: x, Pos: tok.Pos}, nil
	case Bang:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: sym.OpLNot, X: x, Pos: tok.Pos}, nil
	case Tilde:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: sym.OpNot, X: x, Pos: tok.Pos}, nil
	case Star:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &DerefExpr{X: x, Pos: tok.Pos}, nil
	case Amp:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &AddrExpr{X: x, Pos: tok.Pos}, nil
	case Inc, Dec:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDecExpr{X: x, Decr: tok.Kind == Dec, Prefix: true, Pos: tok.Pos}, nil
	case Plus:
		p.advance()
		return p.parseUnary()
	case KwSizeof:
		p.advance()
		if p.at(LParen) && p.typeStartsAt(1) {
			p.advance()
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return &SizeofExpr{Ty: ty, Pos: tok.Pos}, nil
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &SizeofExpr{X: x, Pos: tok.Pos}, nil
	case LParen:
		// Cast: (type) unary.
		if p.typeStartsAt(1) {
			p.advance()
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{To: ty, X: x, Pos: tok.Pos}, nil
		}
	}
	return p.parsePostfix()
}

// typeStartsAt reports whether the token at lookahead n begins a type.
func (p *parser) typeStartsAt(n int) bool {
	switch p.la(n).Kind {
	case KwVoid, KwInt, KwChar, KwFloat, KwDouble, KwLong, KwUnsigned, KwConst, KwStruct:
		return true
	}
	return false
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.cur()
		switch tok.Kind {
		case LBracket:
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Index: idx, Pos: tok.Pos}
		case Dot:
			p.advance()
			f, err := p.expect(Ident)
			if err != nil {
				return nil, err
			}
			x = &MemberExpr{X: x, Field: f.Text, Pos: tok.Pos}
		case Arrow:
			p.advance()
			f, err := p.expect(Ident)
			if err != nil {
				return nil, err
			}
			x = &MemberExpr{X: x, Field: f.Text, Arrow: true, Pos: tok.Pos}
		case Inc, Dec:
			p.advance()
			x = &IncDecExpr{X: x, Decr: tok.Kind == Dec, Pos: tok.Pos}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case IntLit, CharLit:
		p.advance()
		return &IntLitExpr{V: tok.Int, Pos: tok.Pos}, nil
	case FloatLit:
		p.advance()
		return &FloatLitExpr{V: tok.Float, Pos: tok.Pos}, nil
	case StringLit:
		p.advance()
		return &StringLitExpr{V: tok.Text, Pos: tok.Pos}, nil
	case Ident:
		name := p.advance()
		if p.at(LParen) {
			p.advance()
			call := &CallExpr{Fun: name.Text, Pos: name.Pos}
			for !p.at(RParen) {
				arg, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.at(Comma) {
					p.advance()
				}
			}
			p.advance() // )
			return call, nil
		}
		return &IdentExpr{Name: name.Text, Pos: name.Pos}, nil
	case LParen:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, &Error{Pos: tok.Pos, Msg: fmt.Sprintf("expected expression, found %v %q", tok.Kind, tok.Text)}
	}
}

func (p *parser) parseDoWhile() (Stmt, error) {
	pos := p.advance().Pos // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &DoWhileStmt{Body: body, Cond: cond, Pos: pos}, nil
}

func (p *parser) parseSwitch() (Stmt, error) {
	pos := p.advance().Pos // switch
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	st := &SwitchStmt{Tag: tag, Pos: pos}
	for !p.at(RBrace) {
		var c SwitchCase
		tok := p.cur()
		switch tok.Kind {
		case KwCase:
			p.advance()
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c = SwitchCase{Value: v, Pos: tok.Pos}
		case KwDefault:
			p.advance()
			c = SwitchCase{IsDefault: true, Pos: tok.Pos}
		default:
			return nil, &Error{Pos: tok.Pos, Msg: "expected case or default in switch"}
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		for !p.at(KwCase) && !p.at(KwDefault) && !p.at(RBrace) {
			if p.at(EOF) {
				return nil, &Error{Pos: p.cur().Pos, Msg: "unterminated switch"}
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			c.Body = append(c.Body, s)
		}
		st.Cases = append(st.Cases, c)
	}
	p.advance() // }
	return st, nil
}
