package minic

import (
	"fmt"
	"strings"
)

// DefaultBuiltins lists library functions the analysis engines give
// semantics to (math, memory and the SGX/IPP intrinsics of §VI-B). Code may
// call them without defining them.
var DefaultBuiltins = []string{
	"sqrt", "fabs", "abs", "exp", "log", "pow", "floor", "ceil",
	"memcpy", "memset", "malloc", "free", "rand", "srand", "printf",
	"sgx_rijndael128GCM_decrypt", "sgx_rijndael128GCM_encrypt",
	"sgx_read_rand", "ocall_print",
}

// CheckError aggregates semantic errors found in one file.
type CheckError struct {
	Errs []*Error
}

// Error implements error.
func (e *CheckError) Error() string {
	msgs := make([]string, len(e.Errs))
	for i, err := range e.Errs {
		msgs[i] = err.Error()
	}
	return strings.Join(msgs, "; ")
}

// Checker performs name resolution and structural checks over a parsed
// file: undeclared identifiers, unknown call targets, duplicate
// declarations in a scope, and break/continue outside loops. It is
// deliberately lenient about numeric conversions, as C is.
type Checker struct {
	builtins map[string]bool
}

// NewChecker returns a checker that accepts calls to the given builtin
// functions in addition to functions defined in the file.
func NewChecker(builtins []string) *Checker {
	m := make(map[string]bool, len(builtins))
	for _, b := range builtins {
		m[b] = true
	}
	return &Checker{builtins: m}
}

// Check validates the file; it returns a *CheckError listing every problem
// found, or nil.
func (c *Checker) Check(f *File) error {
	cc := &checkCtx{
		checker: c,
		file:    f,
		funcs:   make(map[string]*FuncDecl, len(f.Functions)),
	}
	for _, fn := range f.Functions {
		if prev, dup := cc.funcs[fn.Name]; dup && prev.Body != nil && fn.Body != nil {
			cc.errorf(fn.Pos, "duplicate function %s", fn.Name)
		}
		cc.funcs[fn.Name] = fn
	}
	globals := newScope(nil)
	for _, g := range f.Globals {
		if !globals.declare(g) {
			cc.errorf(g.Pos, "duplicate global %s", g.Name)
		}
		if g.Init != nil {
			cc.expr(g.Init, globals, 0)
		}
	}
	for _, fn := range f.Functions {
		if fn.Body == nil {
			continue
		}
		sc := newScope(globals)
		for _, p := range fn.Params {
			if p.Name == "" {
				continue
			}
			if !sc.declare(p) {
				cc.errorf(p.Pos, "duplicate parameter %s in %s", p.Name, fn.Name)
			}
		}
		cc.block(fn.Body, sc, 0)
	}
	if len(cc.errs) > 0 {
		return &CheckError{Errs: cc.errs}
	}
	return nil
}

type scope struct {
	parent *scope
	vars   map[string]*VarDecl
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: make(map[string]*VarDecl)}
}

func (s *scope) declare(d *VarDecl) bool {
	if _, exists := s.vars[d.Name]; exists {
		return false
	}
	s.vars[d.Name] = d
	return true
}

func (s *scope) lookup(name string) (*VarDecl, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if d, ok := sc.vars[name]; ok {
			return d, true
		}
	}
	return nil, false
}

type checkCtx struct {
	checker *Checker
	file    *File
	funcs   map[string]*FuncDecl
	errs    []*Error
}

func (c *checkCtx) errorf(pos Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checkCtx) block(b *Block, outer *scope, loopDepth int) {
	sc := newScope(outer)
	for _, s := range b.Stmts {
		c.stmt(s, sc, loopDepth)
	}
}

func (c *checkCtx) stmt(s Stmt, sc *scope, loopDepth int) {
	switch v := s.(type) {
	case *Block:
		c.block(v, sc, loopDepth)
	case *EmptyStmt:
	case *DeclStmt:
		for _, d := range v.Decls {
			if d.Init != nil {
				c.expr(d.Init, sc, loopDepth)
			}
			if !sc.declare(d) {
				c.errorf(d.Pos, "duplicate declaration of %s", d.Name)
			}
		}
	case *ExprStmt:
		c.expr(v.X, sc, loopDepth)
	case *IfStmt:
		c.expr(v.Cond, sc, loopDepth)
		c.stmt(v.Then, sc, loopDepth)
		if v.Else != nil {
			c.stmt(v.Else, sc, loopDepth)
		}
	case *WhileStmt:
		c.expr(v.Cond, sc, loopDepth)
		c.stmt(v.Body, sc, loopDepth+1)
	case *DoWhileStmt:
		c.stmt(v.Body, sc, loopDepth+1)
		c.expr(v.Cond, sc, loopDepth)
	case *SwitchStmt:
		c.expr(v.Tag, sc, loopDepth)
		defaults := 0
		for _, cs := range v.Cases {
			if cs.IsDefault {
				defaults++
				if defaults > 1 {
					c.errorf(cs.Pos, "multiple default cases in switch")
				}
			} else {
				c.expr(cs.Value, sc, loopDepth)
			}
			inner := newScope(sc)
			for _, s := range cs.Body {
				// break binds to the switch: allow it in case bodies.
				c.stmt(s, inner, loopDepth+1)
			}
		}
	case *ForStmt:
		inner := newScope(sc)
		if v.Init != nil {
			c.stmt(v.Init, inner, loopDepth)
		}
		if v.Cond != nil {
			c.expr(v.Cond, inner, loopDepth)
		}
		if v.Post != nil {
			c.expr(v.Post, inner, loopDepth)
		}
		c.stmt(v.Body, inner, loopDepth+1)
	case *ReturnStmt:
		if v.X != nil {
			c.expr(v.X, sc, loopDepth)
		}
	case *BreakStmt:
		if loopDepth == 0 {
			c.errorf(v.Pos, "break outside loop")
		}
	case *ContinueStmt:
		if loopDepth == 0 {
			c.errorf(v.Pos, "continue outside loop")
		}
	}
}

func (c *checkCtx) expr(e Expr, sc *scope, loopDepth int) {
	switch v := e.(type) {
	case *IdentExpr:
		if _, ok := sc.lookup(v.Name); !ok {
			if _, isFn := c.funcs[v.Name]; !isFn {
				c.errorf(v.Pos, "undeclared identifier %s", v.Name)
			}
		}
	case *IntLitExpr, *FloatLitExpr, *StringLitExpr:
	case *BinExpr:
		c.expr(v.L, sc, loopDepth)
		c.expr(v.R, sc, loopDepth)
	case *UnExpr:
		c.expr(v.X, sc, loopDepth)
	case *AssignExpr:
		if !isLValue(v.LHS) {
			c.errorf(v.Pos, "assignment target is not an lvalue")
		}
		c.expr(v.LHS, sc, loopDepth)
		c.expr(v.RHS, sc, loopDepth)
	case *IncDecExpr:
		if !isLValue(v.X) {
			c.errorf(v.Pos, "++/-- target is not an lvalue")
		}
		c.expr(v.X, sc, loopDepth)
	case *IndexExpr:
		c.expr(v.X, sc, loopDepth)
		c.expr(v.Index, sc, loopDepth)
	case *CallExpr:
		if _, defined := c.funcs[v.Fun]; !defined && !c.checker.builtins[v.Fun] {
			c.errorf(v.Pos, "call to unknown function %s", v.Fun)
		}
		if fn, defined := c.funcs[v.Fun]; defined && len(v.Args) != len(fn.Params) {
			c.errorf(v.Pos, "%s expects %d arguments, got %d", v.Fun, len(fn.Params), len(v.Args))
		}
		for _, a := range v.Args {
			c.expr(a, sc, loopDepth)
		}
	case *MemberExpr:
		c.expr(v.X, sc, loopDepth)
	case *DerefExpr:
		c.expr(v.X, sc, loopDepth)
	case *AddrExpr:
		c.expr(v.X, sc, loopDepth)
	case *CastExpr:
		c.expr(v.X, sc, loopDepth)
	case *CondExpr:
		c.expr(v.Cond, sc, loopDepth)
		c.expr(v.Then, sc, loopDepth)
		c.expr(v.Else, sc, loopDepth)
	case *SizeofExpr:
		if v.X != nil {
			c.expr(v.X, sc, loopDepth)
		}
	}
}

// isLValue reports whether e designates a memory location.
func isLValue(e Expr) bool {
	switch e.(type) {
	case *IdentExpr, *IndexExpr, *MemberExpr, *DerefExpr:
		return true
	}
	return false
}

// SizeOf returns the byte size of a scalar/struct type in this model
// (char 1, int/float 4, double 8, pointer 8).
func SizeOf(t Type) int {
	switch v := t.(type) {
	case Basic:
		switch v.Kind {
		case Char:
			return 1
		case Int, Float:
			return 4
		case Double:
			return 8
		default:
			return 0
		}
	case Pointer:
		return 8
	case Array:
		if v.Len < 0 {
			return 8
		}
		return v.Len * SizeOf(v.Elem)
	case *StructType:
		n := 0
		for _, f := range v.Fields {
			n += SizeOf(f.Type)
		}
		return n
	}
	return 0
}
