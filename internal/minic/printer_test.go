package minic

import "testing"

func exprOf(t *testing.T, src string) Expr {
	t.Helper()
	f := MustParse("int f(int a, int b, int *p) { return " + src + "; }")
	fn, _ := f.Function("f")
	return fn.Body.Stmts[0].(*ReturnStmt).X
}

func TestExprString(t *testing.T) {
	tests := []struct{ src, want string }{
		{"a + b * 2", "a + b * 2"},
		{"-a", "-a"},
		{"!a", "!a"},
		{"~a", "~a"},
		{"p[3]", "p[3]"},
		{"*p", "*p"},
		{"a > b ? a : b", "a > b ? a : b"},
		{"(int)a", "(int)a"},
		{"sizeof(int)", "sizeof(int)"},
		{"sizeof a", "sizeof a"},
		{"a == b && a != 2", "a == b && a != 2"},
	}
	for _, tt := range tests {
		if got := ExprString(exprOf(t, tt.src)); got != tt.want {
			t.Errorf("ExprString(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
	if ExprString(nil) != "" {
		t.Error("nil expr must render empty")
	}
}

func TestExprStringEffects(t *testing.T) {
	f := MustParse(`
struct S { int v; };
int f(int a, int *p, struct S *s) {
    a = 1;
    a += 2;
    a++;
    --a;
    p[0] = a;
    s->v = 3;
    g(a, 4);
    return a;
}
int g(int x, int y) { return x + y; }
`)
	fn, _ := f.Function("f")
	wants := []string{
		"a = 1", "a += 2", "a++", "--a", "p[0] = a", "s->v = 3", "g(a, 4)",
	}
	for i, want := range wants {
		got := ExprString(fn.Body.Stmts[i].(*ExprStmt).X)
		if got != want {
			t.Errorf("stmt %d = %q, want %q", i, got, want)
		}
	}
}

func TestExprStringLiterals(t *testing.T) {
	f := MustParse(`int f(void) { printf("hi %d", 1); return 0; }`)
	fn, _ := f.Function("f")
	got := ExprString(fn.Body.Stmts[0].(*ExprStmt).X)
	if got != `printf("hi %d", 1)` {
		t.Errorf("call = %q", got)
	}
	lit := exprOf(t, "1")
	if ExprString(lit) != "1" {
		t.Error("int literal wrong")
	}
}

func TestStmtStringForms(t *testing.T) {
	f := MustParse(`
int f(int a) {
    int x = 1;
    if (a > 0) { x = 2; }
    while (x < 10) x++;
    for (int i = 0; i < 3; i++) { x += i; }
    ;
    return x;
}
`)
	fn, _ := f.Function("f")
	wants := []string{
		"int x = 1",
		"if (a > 0)",
		"while (x < 10)",
		"for (int i = 0; i < 3; i++)",
		";",
		"return x",
	}
	for i, want := range wants {
		if got := StmtString(fn.Body.Stmts[i]); got != want {
			t.Errorf("stmt %d = %q, want %q", i, got, want)
		}
	}
	if StmtString(nil) != "" {
		t.Error("nil stmt must render empty")
	}
	if StmtString(fn.Body) != "{...}" {
		t.Error("block renders as {...}")
	}
	loop := fn.Body.Stmts[1].(*IfStmt)
	if StmtString(loop.Then) != "{...}" {
		t.Error("nested block wrong")
	}
}

func TestStmtStringBreakContinueReturn(t *testing.T) {
	f := MustParse(`
int f(void) {
    for (;;) { break; }
    while (1) { continue; }
    return 0;
}
void g(void) { return; }
`)
	fn, _ := f.Function("f")
	forStmt := fn.Body.Stmts[0].(*ForStmt)
	if got := StmtString(forStmt); got != "for (; ; )" {
		t.Errorf("empty for = %q", got)
	}
	inner := forStmt.Body.(*Block).Stmts[0]
	if StmtString(inner) != "break" {
		t.Error("break wrong")
	}
	whileStmt := fn.Body.Stmts[1].(*WhileStmt)
	if StmtString(whileStmt.Body.(*Block).Stmts[0]) != "continue" {
		t.Error("continue wrong")
	}
	g, _ := f.Function("g")
	if StmtString(g.Body.Stmts[0]) != "return" {
		t.Error("bare return wrong")
	}
}

func TestLexStringLiteral(t *testing.T) {
	f := MustParse(`int f(void) { printf("a\n\t\"q\"\\z"); return 0; }`)
	fn, _ := f.Function("f")
	call := fn.Body.Stmts[0].(*ExprStmt).X.(*CallExpr)
	lit := call.Args[0].(*StringLitExpr)
	if lit.V != "a\n\t\"q\"\\z" {
		t.Errorf("string = %q", lit.V)
	}
	if _, err := Parse(`int f(void) { printf("unterminated`); err == nil {
		t.Error("unterminated string must error")
	}
}

func TestDescribeStruct(t *testing.T) {
	f := MustParse("struct P { int x; float y; }; int f(void) { return 0; }")
	st, _ := f.Struct("P")
	want := "struct P { int x; float y; }"
	if got := st.Describe(); got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	if !(Basic{Kind: Int}).IsInteger() || (Basic{Kind: Float}).IsInteger() {
		t.Error("IsInteger wrong")
	}
}

func TestLexHexLiterals(t *testing.T) {
	f := MustParse(`int f(void) { int a = 0xFF; int b = 0x10; return a + b; }`)
	fn, _ := f.Function("f")
	a := fn.Body.Stmts[0].(*DeclStmt).Decls[0].Init.(*IntLitExpr)
	b := fn.Body.Stmts[1].(*DeclStmt).Decls[0].Init.(*IntLitExpr)
	if a.V != 255 || b.V != 16 {
		t.Errorf("hex literals = %d, %d", a.V, b.V)
	}
	if _, err := Parse("int f(void) { return 0x; }"); err == nil {
		t.Error("bare 0x must error")
	}
}
