package minic

import (
	"strings"
	"testing"
)

// listing1 is the paper's Listing 1, the illustrative C enclave example.
const listing1 = `
int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
`

func TestParseListing1(t *testing.T) {
	f, err := Parse(listing1)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := f.Function("enclave_process_data")
	if !ok {
		t.Fatal("function not found")
	}
	if len(fn.Params) != 2 {
		t.Fatalf("params = %d", len(fn.Params))
	}
	for _, p := range fn.Params {
		ptr, ok := p.Type.(Pointer)
		if !ok {
			t.Fatalf("param %s type = %v, want pointer", p.Name, p.Type)
		}
		if b, ok := ptr.Elem.(Basic); !ok || b.Kind != Char {
			t.Errorf("param %s elem = %v, want char", p.Name, ptr.Elem)
		}
	}
	if b, ok := fn.Return.(Basic); !ok || b.Kind != Int {
		t.Errorf("return = %v, want int", fn.Return)
	}
	if len(fn.Body.Stmts) != 3 {
		t.Fatalf("body statements = %d, want 3", len(fn.Body.Stmts))
	}
	if _, ok := fn.Body.Stmts[0].(*DeclStmt); !ok {
		t.Errorf("stmt 0 = %T", fn.Body.Stmts[0])
	}
	ifStmt, ok := fn.Body.Stmts[2].(*IfStmt)
	if !ok {
		t.Fatalf("stmt 2 = %T", fn.Body.Stmts[2])
	}
	if _, ok := ifStmt.Else.(*ReturnStmt); !ok {
		t.Errorf("else = %T", ifStmt.Else)
	}
}

func TestLexPreprocessor(t *testing.T) {
	src := `
#include <stdio.h>
#define N 5
#define RATE 0.5
int f(void) { int a[N]; return N; }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := f.Function("f")
	decl := fn.Body.Stmts[0].(*DeclStmt).Decls[0]
	arr, ok := decl.Type.(Array)
	if !ok || arr.Len != 5 {
		t.Errorf("a type = %v, want int[5]", decl.Type)
	}
	ret := fn.Body.Stmts[1].(*ReturnStmt)
	lit, ok := ret.X.(*IntLitExpr)
	if !ok || lit.V != 5 {
		t.Errorf("return expr = %#v", ret.X)
	}
}

func TestLexRejectsFunctionMacros(t *testing.T) {
	if _, err := Parse("#define SQ(x) ((x)*(x))\nint f(void){return 0;}"); err == nil {
		t.Error("function-like macro must be rejected")
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment
/* block
   comment */
int f(void) { return 1; /* inline */ }
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse("/* unterminated"); err == nil {
		t.Error("unterminated comment must error")
	}
}

func TestLexLiterals(t *testing.T) {
	src := `int f(void) {
  int a = 'x';
  int b = '\n';
  float c = 1.5f;
  double d = 2e3;
  double e = .25;
  int g = 100L;
  return 0;
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := f.Function("f")
	inits := []struct {
		idx   int
		check func(Expr) bool
	}{
		{0, func(e Expr) bool { l, ok := e.(*IntLitExpr); return ok && l.V == 'x' }},
		{1, func(e Expr) bool { l, ok := e.(*IntLitExpr); return ok && l.V == '\n' }},
		{2, func(e Expr) bool { l, ok := e.(*FloatLitExpr); return ok && l.V == 1.5 }},
		{3, func(e Expr) bool { l, ok := e.(*FloatLitExpr); return ok && l.V == 2000 }},
		{4, func(e Expr) bool { l, ok := e.(*FloatLitExpr); return ok && l.V == 0.25 }},
		{5, func(e Expr) bool { l, ok := e.(*IntLitExpr); return ok && l.V == 100 }},
	}
	for _, tt := range inits {
		d := fn.Body.Stmts[tt.idx].(*DeclStmt).Decls[0]
		if !tt.check(d.Init) {
			t.Errorf("decl %d init = %#v", tt.idx, d.Init)
		}
	}
}

func TestParseStruct(t *testing.T) {
	src := `
struct Model {
    float weights[4];
    float bias;
    int n, m;
    struct Model *next;
};
float get_bias(struct Model *m) { return m->bias; }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := f.Struct("Model")
	if !ok {
		t.Fatal("struct not found")
	}
	if len(st.Fields) != 5 {
		t.Fatalf("fields = %d: %s", len(st.Fields), st.Describe())
	}
	wty, _ := st.FieldType("weights")
	if arr, ok := wty.(Array); !ok || arr.Len != 4 {
		t.Errorf("weights = %v", wty)
	}
	if _, ok := st.FieldType("nope"); ok {
		t.Error("unknown field must miss")
	}
	fn, _ := f.Function("get_bias")
	ret := fn.Body.Stmts[0].(*ReturnStmt)
	mem, ok := ret.X.(*MemberExpr)
	if !ok || !mem.Arrow || mem.Field != "bias" {
		t.Errorf("member expr = %#v", ret.X)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
int f(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) continue;
        total += i;
        if (total > 100) break;
    }
    while (total > 0) total--;
    return total;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := f.Function("f")
	if len(fn.Body.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(fn.Body.Stmts))
	}
	forStmt := fn.Body.Stmts[1].(*ForStmt)
	if forStmt.Init == nil || forStmt.Cond == nil || forStmt.Post == nil {
		t.Error("for clauses missing")
	}
	if _, ok := fn.Body.Stmts[2].(*WhileStmt); !ok {
		t.Errorf("stmt 2 = %T", fn.Body.Stmts[2])
	}
}

func TestParseExpressions(t *testing.T) {
	src := `
int f(int x, int *p, float y) {
    x = x + 2 * 3;
    x += 1;
    x *= 2;
    *p = x;
    p[1] = x;
    x = p[0] > 3 ? 1 : 0;
    x = (int)y;
    x = -x + !x - ~x;
    x++;
    --x;
    x = sizeof(int);
    x = sizeof x;
    return x & 3 | 4 ^ 5;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := f.Function("f")
	if len(fn.Body.Stmts) != 13 {
		t.Fatalf("stmts = %d", len(fn.Body.Stmts))
	}
	// x + 2*3: check precedence.
	first := fn.Body.Stmts[0].(*ExprStmt).X.(*AssignExpr)
	bin := first.RHS.(*BinExpr)
	if bin.Op.String() != "+" {
		t.Errorf("top op = %v", bin.Op)
	}
	// Ternary.
	tern := fn.Body.Stmts[5].(*ExprStmt).X.(*AssignExpr)
	if _, ok := tern.RHS.(*CondExpr); !ok {
		t.Errorf("ternary = %#v", tern.RHS)
	}
	// Cast.
	cast := fn.Body.Stmts[6].(*ExprStmt).X.(*AssignExpr)
	if c, ok := cast.RHS.(*CastExpr); !ok {
		t.Errorf("cast = %#v", cast.RHS)
	} else if b, ok := c.To.(Basic); !ok || b.Kind != Int {
		t.Errorf("cast type = %v", c.To)
	}
}

func TestParseCalls(t *testing.T) {
	src := `
float helper(float a, float b) { return a + b; }
float f(float x) { return helper(x, 2.0) + sqrt(x); }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := f.Function("f")
	ret := fn.Body.Stmts[0].(*ReturnStmt)
	add := ret.X.(*BinExpr)
	call, ok := add.L.(*CallExpr)
	if !ok || call.Fun != "helper" || len(call.Args) != 2 {
		t.Errorf("call = %#v", add.L)
	}
}

func TestParsePrototypeAndGlobals(t *testing.T) {
	src := `
int helper(int x);
int counter = 0;
float rates[3];
int helper(int x) { return x + counter; }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals) != 2 {
		t.Errorf("globals = %d", len(f.Globals))
	}
	var defs int
	for _, fn := range f.Functions {
		if fn.Name == "helper" && fn.Body != nil {
			defs++
		}
	}
	if defs != 1 {
		t.Errorf("helper definitions = %d", defs)
	}
}

func TestParse2DArray(t *testing.T) {
	src := `void f(void) { float m[3][4]; m[1][2] = 1.0; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := f.Function("f")
	d := fn.Body.Stmts[0].(*DeclStmt).Decls[0]
	outer, ok := d.Type.(Array)
	if !ok || outer.Len != 3 {
		t.Fatalf("type = %v", d.Type)
	}
	inner, ok := outer.Elem.(Array)
	if !ok || inner.Len != 4 {
		t.Fatalf("inner = %v", outer.Elem)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int f( { }",
		"int f(void) { return }",
		"int f(void) { x = ; }",
		"struct S { int; };",
		"int f(void) { if x return 0; }",
		"int f(void) { int a[n]; }",
		"int 3x;",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	tests := []struct {
		t    Type
		want string
	}{
		{Basic{Kind: Int}, "int"},
		{Basic{Kind: Double}, "double"},
		{Pointer{Elem: Basic{Kind: Char}}, "char*"},
		{Array{Elem: Basic{Kind: Float}, Len: 3}, "float[3]"},
		{Array{Elem: Basic{Kind: Float}, Len: -1}, "float[]"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestSizeOf(t *testing.T) {
	st := &StructType{Name: "S", Fields: []Field{
		{Name: "a", Type: Basic{Kind: Int}},
		{Name: "b", Type: Basic{Kind: Double}},
	}}
	tests := []struct {
		t    Type
		want int
	}{
		{Basic{Kind: Char}, 1},
		{Basic{Kind: Int}, 4},
		{Basic{Kind: Float}, 4},
		{Basic{Kind: Double}, 8},
		{Pointer{Elem: Basic{Kind: Int}}, 8},
		{Array{Elem: Basic{Kind: Int}, Len: 3}, 12},
		{st, 12},
	}
	for _, tt := range tests {
		if got := SizeOf(tt.t); got != tt.want {
			t.Errorf("SizeOf(%v) = %d, want %d", tt.t, got, tt.want)
		}
	}
}

func TestCheckerAcceptsListing1(t *testing.T) {
	f := MustParse(listing1)
	if err := NewChecker(DefaultBuiltins).Check(f); err != nil {
		t.Fatal(err)
	}
}

func TestCheckerFindsErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"undeclared", "int f(void) { return x; }", "undeclared identifier x"},
		{"unknown-call", "int f(void) { return g(); }", "unknown function g"},
		{"arity", "int g(int a) { return a; } int f(void) { return g(); }", "expects 1 arguments"},
		{"dup-local", "int f(void) { int a; int a; return 0; }", "duplicate declaration"},
		{"dup-param", "int f(int a, int a) { return a; }", "duplicate parameter"},
		{"break-outside", "int f(void) { break; return 0; }", "break outside loop"},
		{"continue-outside", "int f(void) { continue; return 0; }", "continue outside loop"},
		{"bad-lvalue", "int f(void) { 3 = 4; return 0; }", "not an lvalue"},
		{"dup-global", "int a; int a;", "duplicate global"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f, err := Parse(tt.src)
			if err != nil {
				t.Fatal(err)
			}
			err = NewChecker(DefaultBuiltins).Check(f)
			if err == nil {
				t.Fatal("Check succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error = %q, want substring %q", err, tt.want)
			}
		})
	}
}

func TestCheckerScopes(t *testing.T) {
	src := `
int g;
int f(int a) {
    int b = a + g;
    { int b = 2; b = b + 1; }
    for (int i = 0; i < 3; i++) { b += i; }
    return b;
}
`
	f := MustParse(src)
	if err := NewChecker(DefaultBuiltins).Check(f); err != nil {
		t.Fatal(err)
	}
	// Loop variable does not escape.
	src2 := `int f(void) { for (int i = 0; i < 3; i++) {} return i; }`
	f2 := MustParse(src2)
	if err := NewChecker(DefaultBuiltins).Check(f2); err == nil {
		t.Error("loop variable must not escape")
	}
}

func TestElemTypeAndScalars(t *testing.T) {
	if e, ok := ElemType(Pointer{Elem: Basic{Kind: Char}}); !ok || e.String() != "char" {
		t.Error("ElemType pointer failed")
	}
	if e, ok := ElemType(Array{Elem: Basic{Kind: Int}, Len: 2}); !ok || e.String() != "int" {
		t.Error("ElemType array failed")
	}
	if _, ok := ElemType(Basic{Kind: Int}); ok {
		t.Error("ElemType of scalar must fail")
	}
	if !IsScalar(Basic{Kind: Int}) || !IsScalar(Pointer{Elem: Basic{Kind: Int}}) {
		t.Error("IsScalar wrong")
	}
	if IsScalar(Basic{Kind: Void}) || IsScalar(Array{Elem: Basic{Kind: Int}, Len: 1}) {
		t.Error("IsScalar wrong for void/array")
	}
	if !IsFloatType(Basic{Kind: Double}) || IsFloatType(Basic{Kind: Int}) {
		t.Error("IsFloatType wrong")
	}
}
