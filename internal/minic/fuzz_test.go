package minic

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary bytes at the parser and, when they parse, at
// the semantic checker: neither may panic or hang, whatever the input. The
// seed corpus covers the syntax the analyzer's frontend accepts. Run via
// `make fuzz-smoke`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"int f(void) { return 0; }",
		"int f(int *secrets, int *output) { output[0] = secrets[0] + 1; return 0; }",
		`int f(int *s, int *o) {
    int acc = 0;
    if (s[0] > 3) { acc += 2; } else { acc -= 2; }
    while (acc < 10) { acc++; }
    for (int i = 0; i < 4; i++) { o[i] = acc * i; }
    return acc > 0 ? acc : -acc;
}`,
		"#define N 4\nint f(int *o) { o[0] = N; return N; }",
		"char g(char *p) { return p[1]; }\nint f(char *p) { return g(p); }",
		"int f(", // unbalanced: must error, not crash
		"int f(void) { int x = 077; return x ^ 0x1f; }",
		strings.Repeat("((((", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return // rejecting garbage is correct; crashing is not
		}
		if file == nil {
			t.Fatal("nil file with nil error")
		}
		// Accepted programs must also survive semantic checking.
		_ = NewChecker(DefaultBuiltins).Check(file)
	})
}
