// Package minic implements a C-subset front end ("MiniC"): lexer, parser,
// AST and a light semantic checker. It plays the role of the Clang front
// end in the paper's prototype, covering the C features the evaluated
// SGX/ML code uses: functions, pointers, one- and two-dimensional arrays,
// structs, int/char/float/double scalars, control flow (if/while/for),
// assignment operators, a minimal #define/#include-tolerant preprocessor,
// and line/block comments.
package minic

import "fmt"

// Kind enumerates MiniC token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota + 1
	Ident
	IntLit
	FloatLit
	CharLit
	StringLit

	// Keywords.
	KwInt
	KwChar
	KwFloat
	KwDouble
	KwVoid
	KwLong
	KwUnsigned
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwSwitch
	KwCase
	KwDefault
	KwReturn
	KwStruct
	KwBreak
	KwContinue
	KwConst
	KwSizeof

	// Punctuation.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semi
	Dot
	Arrow // ->

	// Operators.
	Assign // =
	PlusAssign
	MinusAssign
	StarAssign
	SlashAssign
	PercentAssign
	CaretAssign
	AmpAssign
	PipeAssign
	ShlAssign
	ShrAssign
	Plus
	Minus
	Star
	Slash
	Percent
	Inc // ++
	Dec // --
	Amp
	Pipe
	Caret
	Tilde
	Shl
	Shr
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	AndAnd
	OrOr
	Bang
	Question
	Colon
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "int literal", FloatLit: "float literal",
	CharLit: "char literal", StringLit: "string literal",
	KwInt: "int", KwChar: "char", KwFloat: "float", KwDouble: "double",
	KwVoid: "void", KwLong: "long", KwUnsigned: "unsigned",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for",
	KwDo: "do", KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	KwReturn: "return", KwStruct: "struct", KwBreak: "break",
	KwContinue: "continue", KwConst: "const", KwSizeof: "sizeof",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Comma: ",", Semi: ";", Dot: ".", Arrow: "->",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=", PercentAssign: "%=", CaretAssign: "^=",
	AmpAssign: "&=", PipeAssign: "|=", ShlAssign: "<<=", ShrAssign: ">>=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Inc: "++", Dec: "--",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Shl: "<<", Shr: ">>",
	Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	AndAnd: "&&", OrOr: "||", Bang: "!", Question: "?", Colon: ":",
}

// String names the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var keywordKinds = map[string]Kind{
	"int": KwInt, "char": KwChar, "float": KwFloat, "double": KwDouble,
	"void": KwVoid, "long": KwLong, "unsigned": KwUnsigned,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"do": KwDo, "switch": KwSwitch, "case": KwCase, "default": KwDefault,
	"return": KwReturn, "struct": KwStruct, "break": KwBreak,
	"continue": KwContinue, "const": KwConst, "sizeof": KwSizeof,
}

// Token is a lexed MiniC token.
type Token struct {
	Kind  Kind
	Text  string
	Int   int64
	Float float64
	Pos   Pos
}

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }
