package minic

import "testing"

func TestParseDoWhile(t *testing.T) {
	f := MustParse(`
int f(int n) {
    int total = 0;
    do {
        total += n;
        n--;
    } while (n > 0);
    return total;
}
`)
	fn, _ := f.Function("f")
	dw, ok := fn.Body.Stmts[1].(*DoWhileStmt)
	if !ok {
		t.Fatalf("stmt 1 = %T", fn.Body.Stmts[1])
	}
	if ExprString(dw.Cond) != "n > 0" {
		t.Errorf("cond = %q", ExprString(dw.Cond))
	}
	if StmtString(dw) != "do ... while (n > 0)" {
		t.Errorf("StmtString = %q", StmtString(dw))
	}
	// Missing semicolon after while(...) is an error.
	if _, err := Parse("int f(void) { do {} while (1) return 0; }"); err == nil {
		t.Error("missing ; must error")
	}
}

func TestParseSwitch(t *testing.T) {
	f := MustParse(`
int f(int x) {
    int r = 0;
    switch (x) {
    case 1:
        r = 10;
        break;
    case 2:
    case 3:
        r = 20;
        break;
    default:
        r = 30;
    }
    return r;
}
`)
	fn, _ := f.Function("f")
	sw, ok := fn.Body.Stmts[1].(*SwitchStmt)
	if !ok {
		t.Fatalf("stmt 1 = %T", fn.Body.Stmts[1])
	}
	if len(sw.Cases) != 4 {
		t.Fatalf("cases = %d", len(sw.Cases))
	}
	if !sw.Cases[3].IsDefault {
		t.Error("last case must be default")
	}
	if len(sw.Cases[1].Body) != 0 {
		t.Error("case 2 falls through with empty body")
	}
	if StmtString(sw) != "switch (x)" {
		t.Errorf("StmtString = %q", StmtString(sw))
	}
}

func TestParseSwitchErrors(t *testing.T) {
	bad := []string{
		"int f(int x) { switch (x) { foo: ; } return 0; }",
		"int f(int x) { switch (x) { case 1 } return 0; }",
		"int f(int x) { switch (x) { case 1:",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestSemaSwitch(t *testing.T) {
	// break inside switch is legal even outside loops.
	ok := `
int f(int x) {
    switch (x) {
    case 1: break;
    default: x = 0;
    }
    return x;
}
`
	if err := NewChecker(DefaultBuiltins).Check(MustParse(ok)); err != nil {
		t.Errorf("valid switch rejected: %v", err)
	}
	// Two defaults are rejected.
	dup := `
int f(int x) {
    switch (x) {
    default: x = 1;
    default: x = 2;
    }
    return x;
}
`
	if err := NewChecker(DefaultBuiltins).Check(MustParse(dup)); err == nil {
		t.Error("duplicate default must be rejected")
	}
	// Case-scope declarations resolve.
	scoped := `
int f(int x) {
    switch (x) {
    case 1: {
        int y = 2;
        x = y;
    }
    }
    return x;
}
`
	if err := NewChecker(DefaultBuiltins).Check(MustParse(scoped)); err != nil {
		t.Errorf("scoped case rejected: %v", err)
	}
}
