package minic

import (
	"fmt"
	"strings"
)

// ExprString renders an expression in compact C syntax, used by trace
// tables and diagnostics.
func ExprString(e Expr) string {
	switch v := e.(type) {
	case nil:
		return ""
	case *IdentExpr:
		return v.Name
	case *IntLitExpr:
		return fmt.Sprintf("%d", v.V)
	case *FloatLitExpr:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%g", v.V), "0"), ".")
	case *StringLitExpr:
		return fmt.Sprintf("%q", v.V)
	case *BinExpr:
		return ExprString(v.L) + " " + v.Op.String() + " " + ExprString(v.R)
	case *UnExpr:
		return v.Op.String() + ExprString(v.X)
	case *AssignExpr:
		op := "="
		if v.Op != 0 {
			op = v.Op.String() + "="
		}
		return ExprString(v.LHS) + " " + op + " " + ExprString(v.RHS)
	case *IncDecExpr:
		op := "++"
		if v.Decr {
			op = "--"
		}
		if v.Prefix {
			return op + ExprString(v.X)
		}
		return ExprString(v.X) + op
	case *IndexExpr:
		return ExprString(v.X) + "[" + ExprString(v.Index) + "]"
	case *CallExpr:
		parts := make([]string, len(v.Args))
		for i, a := range v.Args {
			parts[i] = ExprString(a)
		}
		return v.Fun + "(" + strings.Join(parts, ", ") + ")"
	case *MemberExpr:
		sep := "."
		if v.Arrow {
			sep = "->"
		}
		return ExprString(v.X) + sep + v.Field
	case *DerefExpr:
		return "*" + ExprString(v.X)
	case *AddrExpr:
		return "&" + ExprString(v.X)
	case *CastExpr:
		return "(" + v.To.String() + ")" + ExprString(v.X)
	case *CondExpr:
		return ExprString(v.Cond) + " ? " + ExprString(v.Then) + " : " + ExprString(v.Else)
	case *SizeofExpr:
		if v.Ty != nil {
			return "sizeof(" + v.Ty.String() + ")"
		}
		return "sizeof " + ExprString(v.X)
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// StmtStringDeep renders the full statement tree in compact C syntax —
// unlike StmtString, bodies are not elided. Two statements with different
// semantics render differently, which is what makes the rendering usable
// as a canonical form for content hashing (the summary cache keys function
// bodies with it).
func StmtStringDeep(s Stmt) string {
	switch v := s.(type) {
	case nil:
		return ""
	case *Block:
		parts := make([]string, len(v.Stmts))
		for i, st := range v.Stmts {
			parts[i] = StmtStringDeep(st)
		}
		return "{" + strings.Join(parts, " ") + "}"
	case *IfStmt:
		out := "if (" + ExprString(v.Cond) + ") " + StmtStringDeep(v.Then)
		if v.Else != nil {
			out += " else " + StmtStringDeep(v.Else)
		}
		return out
	case *WhileStmt:
		return "while (" + ExprString(v.Cond) + ") " + StmtStringDeep(v.Body)
	case *DoWhileStmt:
		return "do " + StmtStringDeep(v.Body) + " while (" + ExprString(v.Cond) + ");"
	case *ForStmt:
		return "for (" + StmtString(v.Init) + "; " + ExprString(v.Cond) + "; " +
			ExprString(v.Post) + ") " + StmtStringDeep(v.Body)
	case *SwitchStmt:
		var sb strings.Builder
		sb.WriteString("switch (" + ExprString(v.Tag) + ") {")
		for _, c := range v.Cases {
			if c.IsDefault {
				sb.WriteString(" default:")
			} else {
				sb.WriteString(" case " + ExprString(c.Value) + ":")
			}
			for _, st := range c.Body {
				sb.WriteByte(' ')
				sb.WriteString(StmtStringDeep(st))
			}
		}
		sb.WriteString("}")
		return sb.String()
	default:
		// Leaf statements render fully in StmtString already.
		return StmtString(s) + ";"
	}
}

// StmtString renders a one-line summary of a statement (bodies elided).
func StmtString(s Stmt) string {
	switch v := s.(type) {
	case nil:
		return ""
	case *Block:
		return "{...}"
	case *EmptyStmt:
		return ";"
	case *DeclStmt:
		parts := make([]string, len(v.Decls))
		for i, d := range v.Decls {
			p := d.Type.String() + " " + d.Name
			if d.Init != nil {
				p += " = " + ExprString(d.Init)
			}
			parts[i] = p
		}
		return strings.Join(parts, ", ")
	case *ExprStmt:
		return ExprString(v.X)
	case *IfStmt:
		return "if (" + ExprString(v.Cond) + ")"
	case *WhileStmt:
		return "while (" + ExprString(v.Cond) + ")"
	case *DoWhileStmt:
		return "do ... while (" + ExprString(v.Cond) + ")"
	case *SwitchStmt:
		return "switch (" + ExprString(v.Tag) + ")"
	case *ForStmt:
		return "for (" + StmtString(v.Init) + "; " + ExprString(v.Cond) + "; " + ExprString(v.Post) + ")"
	case *ReturnStmt:
		if v.X == nil {
			return "return"
		}
		return "return " + ExprString(v.X)
	case *BreakStmt:
		return "break"
	case *ContinueStmt:
		return "continue"
	default:
		return fmt.Sprintf("<%T>", s)
	}
}
