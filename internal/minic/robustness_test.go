package minic

import (
	"testing"
	"testing/quick"
)

// TestParserNeverPanicsOnMutations mutates valid source bytes and checks
// the parser fails gracefully (error, not panic) on arbitrary input.
func TestParserNeverPanicsOnMutations(t *testing.T) {
	base := []byte(`
struct S { int v; float w[2]; };
int helper(int x) { return x * 2; }
int f(int *secrets, int *output) {
    struct S s;
    s.v = secrets[0];
    for (int i = 0; i < 4; i++) { output[i] = helper(s.v) + i; }
    if (s.v > 0 && s.v < 100) { return 1; }
    return 0;
}
`)
	prop := func(pos uint16, b byte, cut uint16) bool {
		mutated := append([]byte(nil), base...)
		mutated[int(pos)%len(mutated)] = b
		if int(cut)%4 == 0 {
			mutated = mutated[:int(cut)%len(mutated)]
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parser panicked on %q: %v", mutated, r)
			}
		}()
		_, _ = Parse(string(mutated))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestLexerNeverPanicsOnGarbage feeds raw random bytes.
func TestLexerNeverPanicsOnGarbage(t *testing.T) {
	prop := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("lexer panicked on %q: %v", data, r)
			}
		}()
		_, _ = NewLexer(string(data)).Tokens()
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCheckerNeverPanicsOnParsedInput: anything that parses must be
// checkable without panicking.
func TestCheckerNeverPanicsOnParsedInput(t *testing.T) {
	srcs := []string{
		"int f(void) { return f() + f(); }",
		"struct A { int x; }; struct B { struct A a; }; int f(struct B *b) { return b->a.x; }",
		"int f(void) { int a[1][1][1]; a[0][0][0] = 1; return a[0][0][0]; }",
		"void f(void) {}",
		"int x; int y = 3; int f(void) { return x + y; }",
		"int f(int a) { return a ? a : a ? 1 : 2; }",
	}
	for _, src := range srcs {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		_ = NewChecker(DefaultBuiltins).Check(f)
	}
}
