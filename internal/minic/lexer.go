package minic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Error reports a lexical, syntactic or semantic MiniC error.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("minic: %s: %s", e.Pos, e.Msg) }

// Lexer tokenizes MiniC source. It implements a one-line preprocessor:
// "#define NAME token" records a substitution applied to later identifiers,
// and any other "#" line (e.g. #include) is skipped.
type Lexer struct {
	src     []rune
	off     int
	line    int
	col     int
	defines map[string][]Token
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1, defines: make(map[string][]Token)}
}

// Tokens lexes the entire input, applying #define substitutions.
func (l *Lexer) Tokens() ([]Token, error) {
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		if t.Kind == Ident {
			if repl, ok := l.defines[t.Text]; ok {
				out = append(out, repl...)
				continue
			}
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) rune {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() rune {
	r := l.src[l.off]
	l.off++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipTrivia() error {
	for l.off < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return &Error{Pos: start, Msg: "unterminated block comment"}
				}
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		case r == '#':
			if err := l.directive(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
	return nil
}

// directive handles a "#" line: #define records a substitution; everything
// else (#include, #pragma, …) is skipped to end of line.
func (l *Lexer) directive() error {
	start := l.pos()
	var line []rune
	for l.off < len(l.src) && l.peek() != '\n' {
		line = append(line, l.advance())
	}
	text := string(line)
	fields := strings.Fields(text)
	if len(fields) >= 3 && fields[0] == "#define" {
		name := fields[1]
		if strings.ContainsRune(name, '(') {
			// Function-like macros are out of scope.
			return &Error{Pos: start, Msg: "function-like macros are not supported: " + name}
		}
		body := strings.Join(fields[2:], " ")
		sub := NewLexer(body)
		toks, err := sub.Tokens()
		if err != nil {
			return &Error{Pos: start, Msg: "bad #define body: " + err.Error()}
		}
		l.defines[name] = toks[:len(toks)-1] // strip EOF
	}
	return nil
}

func (l *Lexer) next() (Token, error) {
	if err := l.skipTrivia(); err != nil {
		return Token{}, err
	}
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		var text []rune
		for l.off < len(l.src) {
			c := l.peek()
			if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
				break
			}
			text = append(text, l.advance())
		}
		s := string(text)
		if kw, ok := keywordKinds[s]; ok {
			return Token{Kind: kw, Text: s, Pos: start}, nil
		}
		return Token{Kind: Ident, Text: s, Pos: start}, nil
	case unicode.IsDigit(r) || (r == '.' && unicode.IsDigit(l.peekAt(1))):
		return l.number(start)
	case r == '\'':
		return l.charLit(start)
	case r == '"':
		return l.stringLit(start)
	}
	return l.operator(start)
}

func (l *Lexer) number(start Pos) (Token, error) {
	// Hex literals: 0x / 0X prefix.
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		var digits []rune
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			digits = append(digits, l.advance())
		}
		if len(digits) == 0 {
			return Token{}, &Error{Pos: start, Msg: "bad hex literal"}
		}
		v, err := strconv.ParseUint(string(digits), 16, 64)
		if err != nil {
			return Token{}, &Error{Pos: start, Msg: "bad hex literal"}
		}
		return Token{Kind: IntLit, Text: "0x" + string(digits), Int: int64(v), Pos: start}, nil
	}
	var text []rune
	isFloat := false
	for l.off < len(l.src) {
		c := l.peek()
		if unicode.IsDigit(c) {
			text = append(text, l.advance())
			continue
		}
		if c == '.' && !isFloat {
			isFloat = true
			text = append(text, l.advance())
			continue
		}
		if (c == 'e' || c == 'E') && len(text) > 0 {
			nxt := l.peekAt(1)
			if unicode.IsDigit(nxt) || ((nxt == '+' || nxt == '-') && unicode.IsDigit(l.peekAt(2))) {
				isFloat = true
				text = append(text, l.advance()) // e
				text = append(text, l.advance()) // sign or digit
				continue
			}
		}
		break
	}
	// Swallow suffixes like f, L, u.
	for l.off < len(l.src) {
		c := l.peek()
		if c == 'f' || c == 'F' || c == 'l' || c == 'L' || c == 'u' || c == 'U' {
			if c == 'f' || c == 'F' {
				isFloat = true
			}
			l.advance()
			continue
		}
		break
	}
	s := string(text)
	if isFloat {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Token{}, &Error{Pos: start, Msg: "bad float literal " + s}
		}
		return Token{Kind: FloatLit, Text: s, Float: v, Pos: start}, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Token{}, &Error{Pos: start, Msg: "bad int literal " + s}
	}
	return Token{Kind: IntLit, Text: s, Int: v, Pos: start}, nil
}

func isHexDigit(r rune) bool {
	return (r >= '0' && r <= '9') || (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F')
}

func (l *Lexer) charLit(start Pos) (Token, error) {
	l.advance() // '
	if l.off >= len(l.src) {
		return Token{}, &Error{Pos: start, Msg: "unterminated char literal"}
	}
	var v rune
	c := l.advance()
	if c == '\\' {
		if l.off >= len(l.src) {
			return Token{}, &Error{Pos: start, Msg: "unterminated escape"}
		}
		e := l.advance()
		switch e {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			return Token{}, &Error{Pos: start, Msg: "unknown escape \\" + string(e)}
		}
	} else {
		v = c
	}
	if l.off >= len(l.src) || l.peek() != '\'' {
		return Token{}, &Error{Pos: start, Msg: "unterminated char literal"}
	}
	l.advance()
	return Token{Kind: CharLit, Text: string(v), Int: int64(v), Pos: start}, nil
}

func (l *Lexer) stringLit(start Pos) (Token, error) {
	l.advance() // "
	var text []rune
	for {
		if l.off >= len(l.src) {
			return Token{}, &Error{Pos: start, Msg: "unterminated string literal"}
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' && l.off < len(l.src) {
			e := l.advance()
			switch e {
			case 'n':
				c = '\n'
			case 't':
				c = '\t'
			case '"':
				c = '"'
			case '\\':
				c = '\\'
			default:
				c = e
			}
		}
		text = append(text, c)
	}
	return Token{Kind: StringLit, Text: string(text), Pos: start}, nil
}

func (l *Lexer) operator(start Pos) (Token, error) {
	two := func(k Kind, s string) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Text: s, Pos: start}, nil
	}
	one := func(k Kind, s string) (Token, error) {
		l.advance()
		return Token{Kind: k, Text: s, Pos: start}, nil
	}
	r := l.peek()
	n := l.peekAt(1)
	switch r {
	case '(':
		return one(LParen, "(")
	case ')':
		return one(RParen, ")")
	case '{':
		return one(LBrace, "{")
	case '}':
		return one(RBrace, "}")
	case '[':
		return one(LBracket, "[")
	case ']':
		return one(RBracket, "]")
	case ',':
		return one(Comma, ",")
	case ';':
		return one(Semi, ";")
	case '?':
		return one(Question, "?")
	case ':':
		return one(Colon, ":")
	case '.':
		return one(Dot, ".")
	case '+':
		switch n {
		case '+':
			return two(Inc, "++")
		case '=':
			return two(PlusAssign, "+=")
		}
		return one(Plus, "+")
	case '-':
		switch n {
		case '-':
			return two(Dec, "--")
		case '=':
			return two(MinusAssign, "-=")
		case '>':
			return two(Arrow, "->")
		}
		return one(Minus, "-")
	case '*':
		if n == '=' {
			return two(StarAssign, "*=")
		}
		return one(Star, "*")
	case '/':
		if n == '=' {
			return two(SlashAssign, "/=")
		}
		return one(Slash, "/")
	case '%':
		if n == '=' {
			return two(PercentAssign, "%=")
		}
		return one(Percent, "%")
	case '&':
		if n == '&' {
			return two(AndAnd, "&&")
		}
		if n == '=' {
			return two(AmpAssign, "&=")
		}
		return one(Amp, "&")
	case '|':
		if n == '|' {
			return two(OrOr, "||")
		}
		if n == '=' {
			return two(PipeAssign, "|=")
		}
		return one(Pipe, "|")
	case '^':
		if n == '=' {
			return two(CaretAssign, "^=")
		}
		return one(Caret, "^")
	case '~':
		return one(Tilde, "~")
	case '<':
		switch n {
		case '<':
			if l.peekAt(2) == '=' {
				l.advance()
				return two(ShlAssign, "<<=")
			}
			return two(Shl, "<<")
		case '=':
			return two(Le, "<=")
		}
		return one(Lt, "<")
	case '>':
		switch n {
		case '>':
			if l.peekAt(2) == '=' {
				l.advance()
				return two(ShrAssign, ">>=")
			}
			return two(Shr, ">>")
		case '=':
			return two(Ge, ">=")
		}
		return one(Gt, ">")
	case '=':
		if n == '=' {
			return two(Eq, "==")
		}
		return one(Assign, "=")
	case '!':
		if n == '=' {
			return two(Ne, "!=")
		}
		return one(Bang, "!")
	}
	return Token{}, &Error{Pos: start, Msg: fmt.Sprintf("unexpected character %q", r)}
}
