package minic

import "privacyscope/internal/sym"

// File is a parsed MiniC translation unit.
type File struct {
	Structs   []*StructType
	Globals   []*VarDecl
	Functions []*FuncDecl
}

// Function returns the function with the given name.
func (f *File) Function(name string) (*FuncDecl, bool) {
	for _, fn := range f.Functions {
		if fn.Name == name {
			return fn, true
		}
	}
	return nil, false
}

// Struct returns the struct type with the given name.
func (f *File) Struct(name string) (*StructType, bool) {
	for _, s := range f.Structs {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Return Type
	Params []*VarDecl
	Body   *Block
	Pos    Pos
}

// VarDecl declares a variable (global, local or parameter).
type VarDecl struct {
	Name string
	Type Type
	Init Expr // optional
	Pos  Pos
}

// Stmt is a MiniC statement.
type Stmt interface{ isStmt() }

// Block is { stmts }.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

func (*Block) isStmt() {}

// DeclStmt is a local declaration; C allows multiple declarators per line,
// which the parser splits into one VarDecl each.
type DeclStmt struct {
	Decls []*VarDecl
	Pos   Pos
}

func (*DeclStmt) isStmt() {}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*ExprStmt) isStmt() {}

// IfStmt is if (Cond) Then else Else; Else may be nil.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt
	Pos  Pos
}

func (*IfStmt) isStmt() {}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

func (*WhileStmt) isStmt() {}

// ForStmt is for (Init; Cond; Post) Body; any clause may be nil.
type ForStmt struct {
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
	Pos  Pos
}

func (*ForStmt) isStmt() {}

// DoWhileStmt is do Body while (Cond);.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
	Pos  Pos
}

func (*DoWhileStmt) isStmt() {}

// SwitchStmt is switch (Tag) { cases }. Each case's statements run until a
// break (C fallthrough is honored).
type SwitchStmt struct {
	Tag   Expr
	Cases []SwitchCase
	Pos   Pos
}

// SwitchCase is one case (or the default when IsDefault).
type SwitchCase struct {
	// Value is the case constant expression (nil for default).
	Value     Expr
	IsDefault bool
	Body      []Stmt
	Pos       Pos
}

func (*SwitchStmt) isStmt() {}

// ReturnStmt is return X; X may be nil.
type ReturnStmt struct {
	X   Expr
	Pos Pos
}

func (*ReturnStmt) isStmt() {}

// BreakStmt is break.
type BreakStmt struct {
	Pos Pos
}

func (*BreakStmt) isStmt() {}

// ContinueStmt is continue.
type ContinueStmt struct {
	Pos Pos
}

func (*ContinueStmt) isStmt() {}

// EmptyStmt is a bare semicolon.
type EmptyStmt struct {
	Pos Pos
}

func (*EmptyStmt) isStmt() {}

// Expr is a MiniC expression.
type Expr interface {
	isExpr()
	// Position returns the source position of the expression.
	Position() Pos
}

// IdentExpr references a variable or function by name.
type IdentExpr struct {
	Name string
	Pos  Pos
}

func (*IdentExpr) isExpr() {}

// Position implements Expr.
func (e *IdentExpr) Position() Pos { return e.Pos }

// IntLitExpr is an integer (or char) literal.
type IntLitExpr struct {
	V   int64
	Pos Pos
}

func (*IntLitExpr) isExpr() {}

// Position implements Expr.
func (e *IntLitExpr) Position() Pos { return e.Pos }

// FloatLitExpr is a floating literal.
type FloatLitExpr struct {
	V   float64
	Pos Pos
}

func (*FloatLitExpr) isExpr() {}

// Position implements Expr.
func (e *FloatLitExpr) Position() Pos { return e.Pos }

// StringLitExpr is a string literal (used only as opaque data, e.g. format
// strings of recognized output functions).
type StringLitExpr struct {
	V   string
	Pos Pos
}

func (*StringLitExpr) isExpr() {}

// Position implements Expr.
func (e *StringLitExpr) Position() Pos { return e.Pos }

// BinExpr is L op R (arithmetic, bitwise, comparison or logical).
type BinExpr struct {
	Op   sym.Op
	L, R Expr
	Pos  Pos
}

func (*BinExpr) isExpr() {}

// Position implements Expr.
func (e *BinExpr) Position() Pos { return e.Pos }

// UnExpr is op X for unary -, ~, !.
type UnExpr struct {
	Op  sym.Op
	X   Expr
	Pos Pos
}

func (*UnExpr) isExpr() {}

// Position implements Expr.
func (e *UnExpr) Position() Pos { return e.Pos }

// AssignExpr is LHS = RHS, or a compound assignment when Op != 0
// (LHS op= RHS).
type AssignExpr struct {
	Op  sym.Op // 0 for plain =
	LHS Expr
	RHS Expr
	Pos Pos
}

func (*AssignExpr) isExpr() {}

// Position implements Expr.
func (e *AssignExpr) Position() Pos { return e.Pos }

// IncDecExpr is X++ / X-- / ++X / --X.
type IncDecExpr struct {
	X      Expr
	Decr   bool
	Prefix bool
	Pos    Pos
}

func (*IncDecExpr) isExpr() {}

// Position implements Expr.
func (e *IncDecExpr) Position() Pos { return e.Pos }

// IndexExpr is X[Index].
type IndexExpr struct {
	X     Expr
	Index Expr
	Pos   Pos
}

func (*IndexExpr) isExpr() {}

// Position implements Expr.
func (e *IndexExpr) Position() Pos { return e.Pos }

// CallExpr is Fun(Args...).
type CallExpr struct {
	Fun  string
	Args []Expr
	Pos  Pos
}

func (*CallExpr) isExpr() {}

// Position implements Expr.
func (e *CallExpr) Position() Pos { return e.Pos }

// MemberExpr is X.Field (Arrow false) or X->Field (Arrow true).
type MemberExpr struct {
	X     Expr
	Field string
	Arrow bool
	Pos   Pos
}

func (*MemberExpr) isExpr() {}

// Position implements Expr.
func (e *MemberExpr) Position() Pos { return e.Pos }

// DerefExpr is *X.
type DerefExpr struct {
	X   Expr
	Pos Pos
}

func (*DerefExpr) isExpr() {}

// Position implements Expr.
func (e *DerefExpr) Position() Pos { return e.Pos }

// AddrExpr is &X.
type AddrExpr struct {
	X   Expr
	Pos Pos
}

func (*AddrExpr) isExpr() {}

// Position implements Expr.
func (e *AddrExpr) Position() Pos { return e.Pos }

// CastExpr is (Type) X.
type CastExpr struct {
	To  Type
	X   Expr
	Pos Pos
}

func (*CastExpr) isExpr() {}

// Position implements Expr.
func (e *CastExpr) Position() Pos { return e.Pos }

// CondExpr is Cond ? Then : Else.
type CondExpr struct {
	Cond, Then, Else Expr
	Pos              Pos
}

func (*CondExpr) isExpr() {}

// Position implements Expr.
func (e *CondExpr) Position() Pos { return e.Pos }

// SizeofExpr is sizeof(Type) or sizeof expr; it evaluates to a constant and
// is treated as opaque size 1/4/8 per scalar kind.
type SizeofExpr struct {
	Ty  Type // nil when applied to an expression
	X   Expr // nil when applied to a type
	Pos Pos
}

func (*SizeofExpr) isExpr() {}

// Position implements Expr.
func (e *SizeofExpr) Position() Pos { return e.Pos }
