package minic

import (
	"fmt"
	"strings"
)

// Type is a MiniC type.
type Type interface {
	isType()
	String() string
}

// BasicKind enumerates scalar types.
type BasicKind int

// Scalar type kinds.
const (
	Void BasicKind = iota + 1
	Int
	Char
	Float  // C float
	Double // C double
)

// Basic is a scalar type.
type Basic struct {
	Kind BasicKind
}

func (Basic) isType() {}

// String implements Type.
func (b Basic) String() string {
	switch b.Kind {
	case Void:
		return "void"
	case Int:
		return "int"
	case Char:
		return "char"
	case Float:
		return "float"
	case Double:
		return "double"
	}
	return fmt.Sprintf("basic(%d)", int(b.Kind))
}

// IsFloat reports whether the scalar is a floating type.
func (b Basic) IsFloat() bool { return b.Kind == Float || b.Kind == Double }

// IsInteger reports whether the scalar is an integer type.
func (b Basic) IsInteger() bool { return b.Kind == Int || b.Kind == Char }

// Pointer is *Elem.
type Pointer struct {
	Elem Type
}

func (Pointer) isType() {}

// String implements Type.
func (p Pointer) String() string { return p.Elem.String() + "*" }

// Array is Elem[Len]; Len < 0 means unknown length (e.g. parameter decay).
type Array struct {
	Elem Type
	Len  int
}

func (Array) isType() {}

// String implements Type.
func (a Array) String() string {
	if a.Len < 0 {
		return a.Elem.String() + "[]"
	}
	return fmt.Sprintf("%s[%d]", a.Elem.String(), a.Len)
}

// StructType is a named struct with ordered fields.
type StructType struct {
	Name   string
	Fields []Field
}

// Field is one struct member.
type Field struct {
	Name string
	Type Type
}

func (*StructType) isType() {}

// String implements Type.
func (s *StructType) String() string { return "struct " + s.Name }

// FieldType returns the type of the named field.
func (s *StructType) FieldType(name string) (Type, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f.Type, true
		}
	}
	return nil, false
}

// Describe renders the full struct layout.
func (s *StructType) Describe() string {
	var sb strings.Builder
	sb.WriteString("struct " + s.Name + " { ")
	for _, f := range s.Fields {
		sb.WriteString(f.Type.String() + " " + f.Name + "; ")
	}
	sb.WriteString("}")
	return sb.String()
}

// IsFloatType reports whether t is a floating scalar.
func IsFloatType(t Type) bool {
	b, ok := t.(Basic)
	return ok && b.IsFloat()
}

// IsScalar reports whether t is a basic non-void type or a pointer.
func IsScalar(t Type) bool {
	switch v := t.(type) {
	case Basic:
		return v.Kind != Void
	case Pointer:
		return true
	}
	return false
}

// ElemType returns the element type of an array or pointer.
func ElemType(t Type) (Type, bool) {
	switch v := t.(type) {
	case Pointer:
		return v.Elem, true
	case Array:
		return v.Elem, true
	}
	return nil, false
}
