package detect

import (
	"context"
	"fmt"
	"strings"
	"time"

	"privacyscope/internal/core"
	"privacyscope/internal/minic"
	"privacyscope/internal/obs"
	"privacyscope/internal/symexec"
)

// Run analyzes one entry point with the selected detectors. It is the
// registry-backed replacement for core.Checker.CheckFunction: one engine
// exploration shared by every detector, the same fail-soft degradation
// (budget, deadline, cancellation → partial coverage, never an error), and
// — for the default detector set — telemetry and report output
// byte-identical to the pre-refactor checker, which the differential gate
// (make detect-smoke) pins.
func Run(ctx context.Context, set Set, opts core.Options, file *minic.File, fn string, params []symexec.ParamSpec) (*core.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	o := obs.Or(opts.Observer)
	if opts.Engine.Obs == nil {
		opts.Engine.Obs = o
	}
	start := time.Now()
	o.Add("detect.runs", 1)
	o.Event("check.start", obs.F("function", fn))
	span := o.StartSpan("check")
	span.Annotate(obs.F("function", fn))
	defer span.End()

	sx := span.Child("symexec")
	engine := symexec.New(file, opts.Engine)
	res, err := engine.AnalyzeFunction(ctx, fn, params)
	if res != nil {
		sx.Annotate(
			obs.F("paths", fmt.Sprint(len(res.Paths))),
			obs.F("states", fmt.Sprint(res.States)))
	}
	sx.End()
	if err != nil {
		return nil, fmt.Errorf("check %s: %w", fn, err)
	}
	report := &core.Report{
		Function: fn,
		Paths:    len(res.Paths),
		States:   res.States,
		Regions:  res.Regions,
		Secrets:  len(res.SecretSymbols),
		Coverage: res.Coverage,
		Warnings: res.Warnings,
	}
	if res.Coverage.Truncated {
		o.Add("check.degraded", 1)
		span.Annotate(obs.F("truncated", string(res.Coverage.Reason)))
		switch res.Coverage.Reason {
		case symexec.TruncCancelled, symexec.TruncDeadline:
			o.Add("check.cancelled", 1)
		case symexec.TruncInlineDepth, symexec.TruncSummaryHavoc:
			// A skipped call or a havoc'd summary under-approximates the
			// program itself: obligations the elided callee carried went
			// unchecked.
			o.Add("check.underapprox", 1)
		}
	}
	rc := &Context{
		Checker:   core.New(opts),
		Opts:      opts,
		File:      file,
		Params:    params,
		Res:       res,
		Report:    report,
		Obs:       o,
		InitFuncs: opts.Engine.InitFuncs,
	}
	for _, d := range set.Detectors() {
		ph := span.Child(d.Name())
		d.Detect(rc)
		ph.End()
	}
	core.SortFindings(report.Findings)
	report.Duration = time.Since(start)
	packFindings := 0
	for _, f := range report.Findings {
		o.Add("core.findings."+f.Kind.String(), 1)
		switch f.Kind {
		case core.OcallPtrLeak, core.ErrCodeLeak, core.OrderlinessLeak, core.AccessPatternLeak:
			packFindings++
		}
	}
	if packFindings > 0 {
		o.Add("detect.findings", int64(packFindings))
	}
	span.Annotate(
		obs.F("detectors", strings.Join(set.Names(), ",")),
		obs.F("findings", fmt.Sprint(len(report.Findings))),
		obs.F("verdict", report.Verdict().String()))
	o.Event("check.done",
		obs.F("function", fn),
		obs.F("findings", fmt.Sprint(len(report.Findings))),
		obs.F("verdict", report.Verdict().String()))
	return report, nil
}
