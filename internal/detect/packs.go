package detect

import (
	"fmt"

	"privacyscope/internal/core"
	"privacyscope/internal/sym"
	"privacyscope/internal/symexec"
)

// This file holds the four scenario packs — enclave leak classes from the
// related work that the paper's core policy does not cover. All packs are
// off by default and opt in via the XML rule config or the -detectors
// flag; enabling one that needs engine events (pointer escapes, lifecycle
// order, secret branches/indices) switches those recording options on and
// forces inline mode, since function summaries replay effects but not the
// per-path event streams.

// ocallPtrDetector flags secret-tainted data escaping through an OCALL
// pointer argument into untrusted memory (STELLA's pointer-leak pattern).
// The explicit policy only inspects scalar OCALL arguments; this pack
// walks every memory cell reachable from a pointer argument at call time.
type ocallPtrDetector struct{}

func (ocallPtrDetector) Name() string                { return "ocall-pointer" }
func (ocallPtrDetector) Rule() string                { return "PS-OCPTR" }
func (ocallPtrDetector) Severity() string            { return "high" }
func (ocallPtrDetector) DefaultOn(core.Options) bool { return false }

func (d ocallPtrDetector) Detect(rc *Context) {
	for _, p := range rc.Res.Paths {
		for _, oc := range p.Ocalls {
			site := ocallWhere(oc)
			for _, pa := range oc.PtrArgs {
				for _, cell := range pa.Cells {
					label, viaPrior := rc.effectiveTaint(cell.Value)
					if label.IsBottom() || sym.HasEntropy(cell.Value) {
						continue
					}
					// Single-tag cells get the full Alg. 1 treatment
					// (inversion formula); multi-tag cells still escape and
					// are reported as a mix.
					secret, tag := rc.secretNames(cell.Value)
					var inv *sym.Inversion
					if t, inversion, leak := core.SingleTagLeak(cell.Value, label, rc.symbolForTag); leak {
						secret, tag, inv = rc.secretName(t), t, inversion
					}
					where := fmt.Sprintf("%s[%s]", site, cell.Display)
					if rc.dedupe(fmt.Sprintf("OC|%s|%s", where, secret)) {
						continue
					}
					f := core.Finding{
						Kind:           core.OcallPtrLeak,
						Sink:           core.SinkOCall,
						Where:          where,
						Pos:            oc.Pos,
						Secret:         secret,
						Tag:            tag,
						Value:          cell.Value,
						Path:           oc.PC,
						PriorKnowledge: viaPrior,
						Inversion:      inv,
					}
					f.Message = fmt.Sprintf(
						"ocall-pointer leak: cell %s escapes through pointer arg %d of OCALL %s carrying secret %s (value %s)",
						cell.Display, pa.Arg, site, secret, core.Trim(cell.Value.String()))
					rc.emit(d, f)
				}
			}
		}
	}
}

// errCodeDetector flags the status-code covert channel: a secret-dependent
// value reaching the ecall return code (sgx_status_t style). Two modes:
// a return value data-tainted by secrets — including multi-secret mixes the
// single-tag explicit policy skips — and sibling paths returning distinct
// untainted status codes selected by a secret branch.
type errCodeDetector struct{}

func (errCodeDetector) Name() string                { return "errcode-channel" }
func (errCodeDetector) Rule() string                { return "PS-ERR" }
func (errCodeDetector) Severity() string            { return "medium" }
func (errCodeDetector) DefaultOn(core.Options) bool { return false }

func (d errCodeDetector) Detect(rc *Context) {
	// Mode 1: data dependence — the returned code computes over secrets.
	for _, p := range rc.Res.Paths {
		if p.Return == nil {
			continue
		}
		label, viaPrior := rc.effectiveTaint(p.Return)
		if label.IsBottom() || sym.HasEntropy(p.Return) {
			continue
		}
		secret, tag := rc.secretNames(p.Return)
		if rc.dedupe(fmt.Sprintf("EC|return|%s", secret)) {
			continue
		}
		f := core.Finding{
			Kind:           core.ErrCodeLeak,
			Sink:           core.SinkReturn,
			Where:          "return",
			Pos:            p.ReturnPos,
			Secret:         secret,
			Tag:            tag,
			Value:          p.Return,
			Path:           p.PC,
			PriorKnowledge: viaPrior,
		}
		f.Message = fmt.Sprintf(
			"errcode channel: ecall status code computes over secret %s (value %s)",
			secret, core.Trim(p.Return.String()))
		rc.emit(d, f)
	}
	// Mode 2: control dependence — distinct concrete status codes selected
	// by a secret branch (the classic error-oracle).
	paths := rc.Res.Paths
	const pairBudget = 100_000
	comparisons := 0
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if comparisons++; comparisons > pairBudget {
				return
			}
			a, b := paths[i], paths[j]
			if a.Return == nil || b.Return == nil {
				continue
			}
			if !sym.TaintOf(a.Return).IsBottom() || !sym.TaintOf(b.Return).IsBottom() {
				continue // data dependence is mode 1's business
			}
			if exprEqual(a.Return, b.Return) {
				continue
			}
			tag, single := rc.pcDiffTaint(a.PC, b.PC)
			if !single {
				continue
			}
			secret := rc.secretName(tag)
			if rc.dedupe(fmt.Sprintf("ECP|return|%s", secret)) {
				continue
			}
			f := core.Finding{
				Kind:   core.ErrCodeLeak,
				Sink:   core.SinkReturn,
				Where:  "return",
				Pos:    a.ReturnPos,
				Secret: secret,
				Tag:    tag,
				Values: [2]sym.Expr{a.Return, b.Return},
				Path:   a.PC,
			}
			f.Message = fmt.Sprintf(
				"errcode channel: ecall status code %s vs %s depends on secret %s",
				core.Trim(a.Return.String()), core.Trim(b.Return.String()), secret)
			rc.emit(d, f)
		}
	}
}

// orderlinessDetector checks the per-path ecall/ocall lifecycle state
// machine (uninit → inited → entered; Guardian's orderliness property):
// secret-carrying data must not cross the enclave boundary before the
// configured init/declassify gate ran on that path. Requires lifecycle
// gates configured via the XML rule config (<lifecycle init="..."/>);
// with none configured the detector stays quiet.
type orderlinessDetector struct{}

func (orderlinessDetector) Name() string                { return "orderliness" }
func (orderlinessDetector) Rule() string                { return "PS-ORDER" }
func (orderlinessDetector) Severity() string            { return "high" }
func (orderlinessDetector) DefaultOn(core.Options) bool { return false }

func (d orderlinessDetector) Detect(rc *Context) {
	if len(rc.InitFuncs) == 0 {
		return
	}
	for _, p := range rc.Res.Paths {
		firstInit := -1
		for _, iv := range p.Inits {
			if firstInit < 0 || iv.Seq < firstInit {
				firstInit = iv.Seq
			}
		}
		for _, oc := range p.Ocalls {
			if firstInit >= 0 && oc.Seq > firstInit {
				continue // the gate ran before this boundary crossing
			}
			value, ok := firstTainted(oc)
			if !ok {
				continue // public data may cross in any order
			}
			secret, tag := rc.secretNames(value)
			where := ocallWhere(oc)
			if rc.dedupe(fmt.Sprintf("OR|%s|%s", where, secret)) {
				continue
			}
			f := core.Finding{
				Kind:   core.OrderlinessLeak,
				Sink:   core.SinkOCall,
				Where:  where,
				Pos:    oc.Pos,
				Secret: secret,
				Tag:    tag,
				Value:  value,
				Path:   oc.PC,
			}
			f.Message = fmt.Sprintf(
				"orderliness violation: OCALL %s carries secret %s before the lifecycle init gate ran on this path",
				where, secret)
			rc.emit(d, f)
		}
	}
}

// firstTainted returns the first secret-tainted value crossing with the
// OCALL: scalar arguments first, then escaped pointer cells.
func firstTainted(oc symexec.SinkEvent) (sym.Expr, bool) {
	for _, a := range oc.Args {
		if !sym.TaintOf(a).IsBottom() {
			return a, true
		}
	}
	for _, pa := range oc.PtrArgs {
		for _, cell := range pa.Cells {
			if !sym.TaintOf(cell.Value).IsBottom() {
				return cell.Value, true
			}
		}
	}
	return nil, false
}

// accessPatternDetector flags secret-dependent control flow and
// secret-indexed memory accesses — the signals a controlled-channel
// attacker reads from page-granular access traces even when no data value
// ever reaches a sink.
type accessPatternDetector struct{}

func (accessPatternDetector) Name() string                { return "access-pattern" }
func (accessPatternDetector) Rule() string                { return "PS-ACCESS" }
func (accessPatternDetector) Severity() string            { return "medium" }
func (accessPatternDetector) DefaultOn(core.Options) bool { return false }

func (d accessPatternDetector) Detect(rc *Context) {
	for _, p := range rc.Res.Paths {
		for _, ae := range p.SecretAccesses {
			secret, tag := rc.secretNames(ae.Index)
			where := fmt.Sprintf("%s@%s", ae.Display, ae.Pos)
			if rc.dedupe(fmt.Sprintf("AP|%s|%s", where, secret)) {
				continue
			}
			f := core.Finding{
				Kind:   core.AccessPatternLeak,
				Sink:   core.SinkMemory,
				Where:  where,
				Pos:    ae.Pos,
				Secret: secret,
				Tag:    tag,
				Value:  ae.Index,
				Path:   p.PC,
			}
			f.Message = fmt.Sprintf(
				"access-pattern leak: memory access %s is indexed by secret %s",
				where, secret)
			rc.emit(d, f)
		}
		for _, be := range p.SecretBranches {
			secret, tag := rc.secretNames(be.Cond)
			where := fmt.Sprintf("branch@%s", be.Pos)
			if rc.dedupe(fmt.Sprintf("AB|%s|%s", where, secret)) {
				continue
			}
			f := core.Finding{
				Kind:   core.AccessPatternLeak,
				Sink:   core.SinkBranch,
				Where:  where,
				Pos:    be.Pos,
				Secret: secret,
				Tag:    tag,
				Value:  be.Cond,
				Path:   p.PC,
			}
			f.Message = fmt.Sprintf(
				"access-pattern leak: branch at %s is steered by secret %s",
				be.Pos, secret)
			rc.emit(d, f)
		}
	}
}
