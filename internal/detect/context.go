package detect

import (
	"strings"

	"privacyscope/internal/core"
	"privacyscope/internal/minic"
	"privacyscope/internal/obs"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
	"privacyscope/internal/symexec"
	"privacyscope/internal/taint"
)

// Context carries the shared analysis state every detector consumes: the
// engine result (one IR walk, reused by all detectors), the report being
// built, and the cross-detector dedupe table. Detectors must not re-run
// the engine; everything they need is here.
type Context struct {
	// Checker performs two-run witness replay for the legacy detectors.
	Checker *core.Checker
	// Opts are the checker options the run was configured with.
	Opts core.Options
	// File and Params identify the unit under analysis (witness replay).
	File   *minic.File
	Params []symexec.ParamSpec
	// Res is the shared symbolic-execution result.
	Res *symexec.Result
	// Report accumulates findings across detectors.
	Report *core.Report
	// Obs receives detector telemetry.
	Obs obs.Observer
	// InitFuncs names the configured lifecycle init/declassify gates
	// (orderliness pack); mirrors symexec.Options.InitFuncs.
	InitFuncs map[string]bool

	known map[int]bool
	seen  map[string]bool
}

// emit stamps the detector's rule ID and severity on the finding and
// appends it to the report.
func (rc *Context) emit(d Detector, f core.Finding) {
	f.Rule = d.Rule()
	f.Severity = d.Severity()
	rc.Report.Findings = append(rc.Report.Findings, f)
}

// dedupe returns true when key was already reported. The table is shared
// across detectors with per-detector key prefixes — the exact behavior of
// the pre-refactor checker's single seen map.
func (rc *Context) dedupe(key string) bool {
	if rc.seen == nil {
		rc.seen = make(map[string]bool)
	}
	if rc.seen[key] {
		return true
	}
	rc.seen[key] = true
	return false
}

// knownIDs resolves Opts.KnownInputs display names to symbol IDs.
func (rc *Context) knownIDs() map[int]bool {
	if rc.known == nil {
		rc.known = make(map[int]bool)
		for _, name := range rc.Opts.KnownInputs {
			if s, ok := rc.Res.SecretSymbols[name]; ok {
				rc.known[s.ID] = true
			}
		}
	}
	return rc.known
}

// effectiveTaint computes the taint of an observable value, optionally
// discounting attacker-known inputs (§VIII-B). It returns the label and
// whether prior knowledge was needed to reach a single tag.
func (rc *Context) effectiveTaint(e sym.Expr) (taint.Label, bool) {
	known := rc.knownIDs()
	full := taint.FromTagsObserved(rc.Obs, sym.SecretTags(e))
	if full.IsSingle() || full.IsBottom() || len(known) == 0 {
		return full, false
	}
	var tags []taint.Tag
	for _, s := range sym.FreeSymbols(e) {
		if s.Secret() && !known[s.ID] {
			tags = append(tags, s.Tag)
		}
	}
	eff := taint.FromTagsObserved(rc.Obs, tags)
	return eff, eff.IsSingle()
}

// symbolForTag adapts the engine result to the Alg. 1 kernel's resolver.
func (rc *Context) symbolForTag(tag taint.Tag) *sym.Symbol {
	return rc.Res.SecretSymbolByTag(int(tag))
}

// secretName renders the display name of the secret carrying tag.
func (rc *Context) secretName(tag taint.Tag) string {
	if s := rc.Res.SecretSymbolByTag(int(tag)); s != nil {
		return s.Name
	}
	return "?"
}

// secretNames renders the display names of every secret tainting e, in tag
// order, joined for multi-secret findings (errcode/orderliness packs flag
// mixes the single-tag explicit policy skips). The second result is the
// first tag, for Finding.Tag.
func (rc *Context) secretNames(e sym.Expr) (string, taint.Tag) {
	tags := sym.SecretTags(e)
	if len(tags) == 0 {
		return "?", 0
	}
	names := make([]string, len(tags))
	for i, tg := range tags {
		names[i] = rc.secretName(tg)
	}
	return strings.Join(names, ", "), tags[0]
}

// pcDiffTaint computes the taint of the conjuncts on which two path
// conditions disagree. A single tag means the two executions differ only
// in how one secret steered control flow.
func (rc *Context) pcDiffTaint(a, b *solver.PathCondition) (taint.Tag, bool) {
	inA := make(map[string]sym.Expr)
	for _, c := range a.Conjuncts() {
		inA[sym.Key(c)] = c
	}
	inB := make(map[string]sym.Expr)
	for _, c := range b.Conjuncts() {
		inB[sym.Key(c)] = c
	}
	var tags []taint.Tag
	seen := make(map[taint.Tag]bool)
	collect := func(c sym.Expr) {
		for _, tg := range sym.SecretTags(c) {
			if !seen[tg] {
				seen[tg] = true
				tags = append(tags, tg)
			}
		}
	}
	diff := false
	for k, c := range inA {
		if _, ok := inB[k]; !ok {
			diff = true
			collect(c)
		}
	}
	for k, c := range inB {
		if _, ok := inA[k]; !ok {
			diff = true
			collect(c)
		}
	}
	if !diff {
		return 0, false
	}
	return taint.FromTagsObserved(rc.Obs, tags).Tag()
}

func exprEqual(a, b sym.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return sym.Equal(a, b)
}

// ocallWhere renders an OCALL sink location exactly like the built-in
// checks: "func@pos".
func ocallWhere(oc symexec.SinkEvent) string {
	return oc.Func + "@" + posString(oc.Pos)
}

func posString(p minic.Pos) string { return p.String() }
