package detect

import (
	"fmt"

	"privacyscope/internal/core"
	"privacyscope/internal/minic"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
	"privacyscope/internal/taint"
)

// This file holds the registry-backed ports of the three pre-refactor
// core.Checker passes. Their traversal order, dedupe keys, message strings
// and witness-replay gating are copied verbatim: the differential gate
// (make detect-smoke) compares their rendered reports byte-for-byte
// against the original checker over the whole corpus, so any drift here is
// a test failure, not a judgment call.

// explicitDetector is the out-parameter / return / OCALL single-tag taint
// policy of Alg. 1 (declassify_check), including the §VIII-A probabilistic
// channel when Options.ProbabilisticCheck is set.
type explicitDetector struct{}

func (explicitDetector) Name() string                { return "explicit" }
func (explicitDetector) Rule() string                { return "PS-EXPL" }
func (explicitDetector) Severity() string            { return "high" }
func (explicitDetector) DefaultOn(core.Options) bool { return true }

func (d explicitDetector) Detect(rc *Context) {
	for _, p := range rc.Res.Paths {
		for _, o := range p.Outs {
			d.one(rc, core.SinkOutParam, o.Display, minic.Pos{}, o.Value, p.PC)
		}
		if p.Return != nil {
			d.one(rc, core.SinkReturn, "return", p.ReturnPos, p.Return, p.PC)
		}
		for _, oc := range p.Ocalls {
			where := ocallWhere(oc)
			for _, a := range oc.Args {
				d.one(rc, core.SinkOCall, where, oc.Pos, a, oc.PC)
			}
		}
	}
}

func (d explicitDetector) one(rc *Context, sink core.SinkKind, where string, pos minic.Pos, value sym.Expr, pc *solver.PathCondition) {
	label, viaPrior := rc.effectiveTaint(value)
	tag, inversion, leak := core.SingleTagLeak(value, label, rc.symbolForTag)
	if !leak {
		return
	}
	// In-enclave entropy blocks deterministic recovery: under the paper's
	// threat model this is not an explicit violation, but the distribution
	// over repeated calls still reveals the secret — the §VIII-A
	// probabilistic channel, reported on request.
	if sym.HasEntropy(value) {
		if !rc.Opts.ProbabilisticCheck {
			return
		}
		secretName := rc.secretName(tag)
		if rc.dedupe(fmt.Sprintf("P|%s|%s", where, secretName)) {
			return
		}
		f := core.Finding{
			Kind:   core.ProbabilisticLeak,
			Sink:   sink,
			Where:  where,
			Pos:    pos,
			Secret: secretName,
			Tag:    tag,
			Value:  value,
			Path:   pc,
		}
		f.Message = fmt.Sprintf(
			"probabilistic channel: %s %s depends on secret %s masked only by in-enclave entropy",
			f.Sink, f.Where, secretName)
		f.Rule, f.Severity = "PS-PROB", "medium"
		rc.Report.Findings = append(rc.Report.Findings, f)
		return
	}
	secretName := rc.secretName(tag)
	if rc.dedupe(fmt.Sprintf("E|%s|%s|%s", where, secretName, sym.Key(value))) {
		return
	}
	f := core.Finding{
		Kind:           core.ExplicitLeak,
		Sink:           sink,
		Where:          where,
		Pos:            pos,
		Secret:         secretName,
		Tag:            tag,
		Value:          value,
		Path:           pc,
		PriorKnowledge: viaPrior,
		Inversion:      inversion,
	}
	f.Message = fmt.Sprintf("explicit leak: %s %s reveals secret %s (value %s)",
		f.Sink, f.Where, f.Secret, core.Trim(value.String()))
	if rc.Opts.ReplayWitness && f.Inversion != nil && f.Inversion.Exact &&
		(sink == core.SinkOutParam || sink == core.SinkReturn) {
		f.Witness = rc.Checker.ReplayExplicit(rc.File, rc.Res, rc.Params, &f)
	}
	rc.emit(d, f)
}

// implicitDetector applies Alg. 1's hashmap hm across paths, generalized
// to multi-branch programs: sibling paths whose conditions differ only in
// one secret's constraints but reveal different values at the same sink.
type implicitDetector struct{}

func (implicitDetector) Name() string                  { return "implicit" }
func (implicitDetector) Rule() string                  { return "PS-IMPL" }
func (implicitDetector) Severity() string              { return "high" }
func (implicitDetector) DefaultOn(o core.Options) bool { return o.ImplicitCheck }

func (d implicitDetector) Detect(rc *Context) {
	type observation struct {
		pc    *solver.PathCondition
		value sym.Expr // nil encodes ABSENT
	}
	type sinkInfo struct {
		sink core.SinkKind
		pos  minic.Pos
		obs  []observation
	}
	sinks := make(map[string]*sinkInfo)
	var order []string
	observe := func(sink core.SinkKind, where string, pos minic.Pos, value sym.Expr, pc *solver.PathCondition) {
		// Tainted values are the explicit detector's business.
		if value != nil && !sym.TaintOf(value).IsBottom() {
			return
		}
		info, ok := sinks[where]
		if !ok {
			info = &sinkInfo{sink: sink, pos: pos}
			sinks[where] = info
			order = append(order, where)
		}
		info.obs = append(info.obs, observation{pc: pc, value: value})
	}

	// First pass: register every sink any path touches, so absences are
	// recorded regardless of path exploration order.
	register := func(sink core.SinkKind, where string, pos minic.Pos) {
		if _, ok := sinks[where]; !ok {
			sinks[where] = &sinkInfo{sink: sink, pos: pos}
			order = append(order, where)
		}
	}
	for _, p := range rc.Res.Paths {
		if p.Return != nil {
			register(core.SinkReturn, "return", p.ReturnPos)
		}
		for _, o := range p.Outs {
			register(core.SinkOutParam, o.Display, minic.Pos{})
		}
		for _, oc := range p.Ocalls {
			register(core.SinkOCall, ocallWhere(oc), oc.Pos)
		}
	}
	// Second pass: record each path's observation (or absence) per sink.
	for _, p := range rc.Res.Paths {
		seenHere := make(map[string]bool)
		if p.Return != nil {
			observe(core.SinkReturn, "return", p.ReturnPos, p.Return, p.PC)
			seenHere["return"] = true
		}
		for _, o := range p.Outs {
			observe(core.SinkOutParam, o.Display, minic.Pos{}, o.Value, p.PC)
			seenHere[o.Display] = true
		}
		for _, oc := range p.Ocalls {
			where := ocallWhere(oc)
			for _, a := range oc.Args {
				observe(core.SinkOCall, where, oc.Pos, a, oc.PC)
				seenHere[where] = true
			}
		}
		// Record absences so output-presence leaks are comparable. An
		// unwritten [out] cell is observably zero (the buffer enters the
		// enclave zeroed); a missing return value or OCALL is a genuine
		// presence channel.
		for _, where := range order {
			if seenHere[where] {
				continue
			}
			info := sinks[where]
			if info.sink == core.SinkOutParam {
				info.obs = append(info.obs, observation{pc: p.PC, value: sym.IntConst{V: 0}})
			} else {
				info.obs = append(info.obs, observation{pc: p.PC, value: nil})
			}
		}
	}

	const pairBudget = 100_000
	comparisons := 0
	for _, where := range order {
		info := sinks[where]
		for i := 0; i < len(info.obs); i++ {
			for j := i + 1; j < len(info.obs); j++ {
				if comparisons++; comparisons > pairBudget {
					return
				}
				a, b := info.obs[i], info.obs[j]
				if exprEqual(a.value, b.value) {
					continue
				}
				tag, single := rc.pcDiffTaint(a.pc, b.pc)
				if !single {
					continue
				}
				values := [2]sym.Expr{a.value, b.value}
				pcA, pcB := a.pc, b.pc
				if a.value == nil {
					values = [2]sym.Expr{b.value, nil}
					pcA, pcB = b.pc, a.pc
				}
				d.one(rc, tag, info.sink, where, info.pos, values, pcA, pcB)
			}
		}
	}
}

func (d implicitDetector) one(rc *Context, tag taint.Tag, sink core.SinkKind, where string, pos minic.Pos, values [2]sym.Expr, pc, pcSibling *solver.PathCondition) {
	secretName := rc.secretName(tag)
	if rc.dedupe(fmt.Sprintf("I|%s|%s", where, secretName)) {
		return
	}
	f := core.Finding{
		Kind:   core.ImplicitLeak,
		Sink:   sink,
		Where:  where,
		Pos:    pos,
		Secret: secretName,
		Tag:    tag,
		Values: values,
		Path:   pc,
	}
	if rc.Opts.ReplayWitness && pcSibling != nil &&
		(sink == core.SinkReturn || sink == core.SinkOutParam) {
		f.Witness = rc.Checker.ReplayImplicit(rc.File, rc.Res, &f, pc, pcSibling)
	}
	if values[1] != nil {
		f.Message = fmt.Sprintf("implicit leak: %s at %s reveals %s vs %s depending on secret %s",
			f.Sink, f.Where, core.Trim(values[0].String()), core.Trim(values[1].String()), secretName)
	} else {
		f.Message = fmt.Sprintf("implicit leak: output at %s is produced only on paths branching on secret %s",
			f.Where, secretName)
	}
	rc.emit(d, f)
}

// timingDetector is the §VIII-A timing-channel extension: sibling paths
// differing only in one secret's constraints with different abstract cost.
type timingDetector struct{}

func (timingDetector) Name() string                  { return "timing" }
func (timingDetector) Rule() string                  { return "PS-TIME" }
func (timingDetector) Severity() string              { return "medium" }
func (timingDetector) DefaultOn(o core.Options) bool { return o.TimingCheck }

func (d timingDetector) Detect(rc *Context) {
	paths := rc.Res.Paths
	const pairBudget = 100_000
	comparisons := 0
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if comparisons++; comparisons > pairBudget {
				return
			}
			a, b := paths[i], paths[j]
			if a.Cost == b.Cost {
				continue
			}
			tag, single := rc.pcDiffTaint(a.PC, b.PC)
			if !single {
				continue
			}
			secretName := rc.secretName(tag)
			if rc.dedupe(fmt.Sprintf("T|%s", secretName)) {
				continue
			}
			f := core.Finding{
				Kind:   core.TimingLeak,
				Sink:   core.SinkReturn, // observed at call completion
				Where:  "execution time",
				Secret: secretName,
				Tag:    tag,
				Costs:  [2]int{a.Cost, b.Cost},
				Path:   a.PC,
			}
			f.Message = fmt.Sprintf(
				"timing channel: paths branching on secret %s execute %d vs %d statements",
				secretName, a.Cost, b.Cost)
			rc.emit(d, f)
		}
	}
}
