// Package detect is the pluggable leak-detector registry. Every detector
// consumes the one shared symbolic-execution result (the IR walk plus taint
// facts the Alg. 1 kernel produced) and emits core.Findings with its own
// rule ID and severity class, so adding a leak class never re-runs the
// engine and never perturbs another detector's output.
//
// The three built-in PrivacyScope checks (explicit, implicit, timing) are
// registry-backed ports of the pre-refactor core.Checker logic; the
// differential gate (make detect-smoke) pins their rendered reports
// byte-identical to the original. Four scenario packs cover enclave leak
// classes from the related work: ocall-pointer (STELLA's pointer leaks),
// errcode-channel (status-code covert channel), orderliness (Guardian's
// lifecycle property) and access-pattern (controlled-channel signals).
package detect

import (
	"fmt"
	"sort"
	"strings"

	"privacyscope/internal/core"
)

// Detector is one leak-class analysis over the shared engine result.
type Detector interface {
	// Name is the stable configuration name ("explicit", "ocall-pointer").
	Name() string
	// Rule is the detector's rule ID stamped on its findings ("PS-EXPL").
	Rule() string
	// Severity is the detector's severity class ("high", "medium").
	Severity() string
	// DefaultOn reports whether the detector is enabled by default under
	// the given checker options (the legacy ablation switches map here).
	DefaultOn(opts core.Options) bool
	// Detect runs the analysis, appending findings to rc.Report.
	Detect(rc *Context)
}

// registry holds all detectors in their canonical execution order. The
// legacy trio runs first, in the pre-refactor order, so the shared-prefix
// dedupe behavior and telemetry sequence match the original checker.
var registry = []Detector{
	explicitDetector{},
	implicitDetector{},
	timingDetector{},
	ocallPtrDetector{},
	errCodeDetector{},
	orderlinessDetector{},
	accessPatternDetector{},
}

// Names returns every registered detector name in execution order.
func Names() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Name()
	}
	return out
}

// Lookup resolves a configuration name to its detector.
func Lookup(name string) (Detector, bool) {
	for _, d := range registry {
		if d.Name() == name {
			return d, true
		}
	}
	return nil, false
}

// Set is a resolved selection of detectors. The zero value is empty; use
// ResolveSet to build one.
type Set struct {
	enabled map[string]bool
}

// Has reports whether the named detector is selected.
func (s Set) Has(name string) bool { return s.enabled[name] }

// Detectors returns the selected detectors in canonical execution order.
func (s Set) Detectors() []Detector {
	var out []Detector
	for _, d := range registry {
		if s.enabled[d.Name()] {
			out = append(out, d)
		}
	}
	return out
}

// Names returns the selected detector names in canonical execution order.
func (s Set) Names() []string {
	var out []string
	for _, d := range s.Detectors() {
		out = append(out, d.Name())
	}
	return out
}

// Key renders the set as a canonical comma-joined string for cache keys.
func (s Set) Key() string { return strings.Join(s.Names(), ",") }

// NeedsPtrEscapes reports whether any selected detector consumes OCALL
// pointer-escape events (symexec.Options.RecordPtrEscapes).
func (s Set) NeedsPtrEscapes() bool {
	return s.Has("ocall-pointer") || s.Has("orderliness")
}

// NeedsSecretAccess reports whether any selected detector consumes
// secret-branch / secret-index events (symexec.Options.RecordSecretAccess).
func (s Set) NeedsSecretAccess() bool { return s.Has("access-pattern") }

// NeedsInline reports whether the selection depends on per-path engine
// events that function summaries do not replay, forcing inline mode.
func (s Set) NeedsInline() bool {
	return s.NeedsPtrEscapes() || s.NeedsSecretAccess() || s.Has("orderliness")
}

// ResolveSet computes the effective detector selection:
//
//  1. the defaults implied by the checker options (explicit always;
//     implicit/timing per their ablation switches; scenario packs off),
//  2. plus the XML rule-config <detectors> enable list, minus its disable
//     list,
//  3. unless cli (the -detectors flag) is non-empty, which replaces the
//     whole selection. The keywords "default" and "all" expand inside the
//     CLI list.
//
// Unknown names are errors naming the offender and the known set.
func ResolveSet(opts core.Options, enable, disable, cli []string) (Set, error) {
	s := Set{enabled: make(map[string]bool)}
	for _, d := range registry {
		if d.DefaultOn(opts) {
			s.enabled[d.Name()] = true
		}
	}
	if len(cli) > 0 {
		s.enabled = make(map[string]bool)
		for _, name := range cli {
			name = strings.TrimSpace(name)
			switch name {
			case "":
				continue
			case "default":
				for _, d := range registry {
					if d.DefaultOn(opts) {
						s.enabled[d.Name()] = true
					}
				}
			case "all":
				for _, d := range registry {
					s.enabled[d.Name()] = true
				}
			default:
				if _, ok := Lookup(name); !ok {
					return Set{}, unknownErr(name)
				}
				s.enabled[name] = true
			}
		}
		if len(s.enabled) == 0 {
			return Set{}, fmt.Errorf("detect: -detectors selected no detectors")
		}
		return s, nil
	}
	for _, name := range enable {
		if _, ok := Lookup(name); !ok {
			return Set{}, unknownErr(name)
		}
		s.enabled[name] = true
	}
	for _, name := range disable {
		if _, ok := Lookup(name); !ok {
			return Set{}, unknownErr(name)
		}
		delete(s.enabled, name)
	}
	return s, nil
}

func unknownErr(name string) error {
	known := Names()
	sort.Strings(known)
	return fmt.Errorf("detect: unknown detector %q (known: %s)", name, strings.Join(known, ", "))
}
