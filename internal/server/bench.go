package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"privacyscope/internal/mlsuite"
)

// ServerBenchRow is one row of the daemon throughput study.
type ServerBenchRow struct {
	// Mode: "cold" (first submission, engine runs), "cached" (repeat
	// submissions served from the result cache), "concurrent-identical"
	// (parallel identical submissions, singleflight dedups to one run),
	// "concurrent-distinct" (parallel distinct submissions across the
	// worker pool).
	Mode string `json:"mode"`
	// Requests completed in the mode.
	Requests int `json:"requests"`
	// Seconds is the wall-clock for all requests in the mode.
	Seconds float64 `json:"seconds"`
	// MsPerRequest is the mean per-request latency.
	MsPerRequest float64 `json:"msPerRequest"`
	// EngineRuns counts actual engine executions the mode triggered.
	EngineRuns int64 `json:"engineRuns"`
	// CacheHits counts submissions served from the result cache.
	CacheHits int64 `json:"cacheHits"`
}

// ServerBench measures the analysis-as-a-service hot paths against a real
// HTTP round trip: one cold analysis of the paper's Recommender module,
// repeated cached submissions of the same module, concurrent identical
// submissions (deduplicated by singleflight), and concurrent distinct
// submissions spread over the worker pool.
func ServerBench() ([]ServerBenchRow, error) {
	s := New(Config{Workers: 4, QueueDepth: 64, CacheEntries: 64})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(req AnalyzeRequest) (int, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return 0, err
		}
		resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	recommender := AnalyzeRequest{Source: mlsuite.RecommenderC, EDL: mlsuite.RecommenderEDL}

	var rows []ServerBenchRow
	executed := func() int64 { return s.metrics.Counter("server.analyses.executed") }
	hits := func() int64 { return s.metrics.Counter("server.cache.hits") }

	// Cold: the first submission pays the full engine run.
	e0, h0 := executed(), hits()
	start := time.Now()
	if code, err := post(recommender); err != nil || code != http.StatusOK {
		return nil, fmt.Errorf("cold request: code=%d err=%v", code, err)
	}
	cold := time.Since(start)
	rows = append(rows, ServerBenchRow{
		Mode: "cold", Requests: 1, Seconds: cold.Seconds(),
		MsPerRequest: cold.Seconds() * 1e3,
		EngineRuns:   executed() - e0, CacheHits: hits() - h0,
	})

	// Cached: repeats are content-address lookups.
	const cachedN = 50
	e0, h0 = executed(), hits()
	start = time.Now()
	for i := 0; i < cachedN; i++ {
		if code, err := post(recommender); err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("cached request: code=%d err=%v", code, err)
		}
	}
	cachedDur := time.Since(start)
	rows = append(rows, ServerBenchRow{
		Mode: "cached", Requests: cachedN, Seconds: cachedDur.Seconds(),
		MsPerRequest: cachedDur.Seconds() / cachedN * 1e3,
		EngineRuns:   executed() - e0, CacheHits: hits() - h0,
	})

	// Concurrent identical submissions of an uncached module:
	// singleflight collapses them onto one engine run.
	ident := AnalyzeRequest{Source: mlsuite.LinRegC, EDL: mlsuite.LinRegEDL}
	const identN = 16
	e0, h0 = executed(), hits()
	start = time.Now()
	if err := postParallel(post, func(int) AnalyzeRequest { return ident }, identN); err != nil {
		return nil, err
	}
	identDur := time.Since(start)
	rows = append(rows, ServerBenchRow{
		Mode: "concurrent-identical", Requests: identN, Seconds: identDur.Seconds(),
		MsPerRequest: identDur.Seconds() / identN * 1e3,
		EngineRuns:   executed() - e0, CacheHits: hits() - h0,
	})

	// Concurrent distinct submissions: the worker pool fans out.
	const distinctN = 8
	e0, h0 = executed(), hits()
	start = time.Now()
	err := postParallel(post, func(i int) AnalyzeRequest {
		name := fmt.Sprintf("enclave_train_linreg_%d", i)
		return AnalyzeRequest{
			Source: strings.Replace(mlsuite.LinRegC, "enclave_train_linreg", name, 1),
			EDL:    strings.Replace(mlsuite.LinRegEDL, "enclave_train_linreg", name, 1),
		}
	}, distinctN)
	if err != nil {
		return nil, err
	}
	distinctDur := time.Since(start)
	rows = append(rows, ServerBenchRow{
		Mode: "concurrent-distinct", Requests: distinctN, Seconds: distinctDur.Seconds(),
		MsPerRequest: distinctDur.Seconds() / distinctN * 1e3,
		EngineRuns:   executed() - e0, CacheHits: hits() - h0,
	})
	return rows, nil
}

// postParallel fires n requests concurrently and fails on the first
// non-200.
func postParallel(post func(AnalyzeRequest) (int, error), mk func(i int) AnalyzeRequest, n int) error {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, err := post(mk(i))
			if err != nil {
				errs[i] = err
			} else if code != http.StatusOK {
				errs[i] = fmt.Errorf("request %d: status %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RenderServerBench formats the throughput study.
func RenderServerBench(rows []ServerBenchRow) string {
	var sb strings.Builder
	sb.WriteString("privacyscoped — analysis-as-a-service throughput (Recommender/LinReg over HTTP)\n")
	sb.WriteString(fmt.Sprintf("%-22s %9s %11s %13s %12s %10s\n",
		"mode", "requests", "time(s)", "ms/request", "engine runs", "cache hits"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-22s %9d %11.6f %13.4f %12d %10d\n",
			r.Mode, r.Requests, r.Seconds, r.MsPerRequest, r.EngineRuns, r.CacheHits))
	}
	sb.WriteString("cached and deduplicated submissions skip the engine entirely: the cold run\n")
	sb.WriteString("is the price of the first analysis, every identical submission after it is\n")
	sb.WriteString("a content-address lookup.\n")
	return sb.String()
}
