package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"privacyscope/internal/obs"
)

// Scheduler errors, mapped to HTTP statuses by the handlers (429 and 503).
var (
	// errQueueFull: the bounded queue is at capacity — backpressure, try
	// again later.
	errQueueFull = errors.New("server: job queue full")
	// errDraining: the daemon is shutting down and accepts no new work.
	errDraining = errors.New("server: draining, not accepting work")
)

// scheduler is the bounded job scheduler: a fixed worker pool consuming a
// bounded queue. It layers module-level concurrency control above the
// engine's own intra-function parallelism (Options.PathWorkers): the pool
// bounds how many analyses run at once, the queue bounds how many wait,
// and a full queue rejects immediately instead of accumulating unbounded
// work (the 429 backpressure contract).
type scheduler struct {
	queue chan *task
	wg    sync.WaitGroup

	// baseCtx parents every job's analysis context; Shutdown cancels it,
	// so in-flight analyses degrade fail-soft (partial coverage,
	// Inconclusive verdict) and queued ones complete instantly with a
	// cancelled-coverage result — the queue drains, nothing is dropped.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.RWMutex // guards draining and the queue close
	draining bool

	inFlight atomic.Int64
	obs      obs.Observer
}

// task is one scheduled analysis; run receives the scheduler's base
// context and done closes when it returns.
type task struct {
	run  func(ctx context.Context)
	done chan struct{}
}

// newScheduler starts workers goroutines over a queue of the given depth.
func newScheduler(workers, depth int, o obs.Observer) *scheduler {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &scheduler{
		queue:   make(chan *task, depth),
		baseCtx: ctx,
		cancel:  cancel,
		obs:     obs.Or(o),
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.inFlight.Add(1)
		s.obs.Add("server.jobs.started", 1)
		t.run(s.baseCtx)
		s.inFlight.Add(-1)
		s.obs.Add("server.jobs.completed", 1)
		close(t.done)
	}
}

// Submit enqueues run and returns a handle whose done channel closes when
// it finishes. It never blocks: a full queue returns errQueueFull and a
// draining scheduler errDraining.
func (s *scheduler) Submit(run func(ctx context.Context)) (*task, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return nil, errDraining
	}
	t := &task{run: run, done: make(chan struct{})}
	select {
	case s.queue <- t:
		return t, nil
	default:
		s.obs.Add("server.queue.rejected", 1)
		return nil, errQueueFull
	}
}

// Probe reports whether a Submit issued now would likely be accepted:
// errDraining once shutdown began, errQueueFull when the bounded queue is
// at capacity. It reserves nothing — the async path uses it to fail fast at
// POST time; the authoritative check is still the Submit inside the job.
func (s *scheduler) Probe() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return errDraining
	}
	if cap(s.queue) > 0 && len(s.queue) >= cap(s.queue) {
		return errQueueFull
	}
	return nil
}

// Draining reports whether Shutdown has begun.
func (s *scheduler) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// QueueDepth returns the number of queued (not yet running) jobs.
func (s *scheduler) QueueDepth() int { return len(s.queue) }

// InFlight returns the number of jobs currently running.
func (s *scheduler) InFlight() int64 { return s.inFlight.Load() }

// Shutdown drains gracefully: stop accepting, cancel the base context so
// running (and still-queued) analyses degrade fail-soft to partial
// results, and wait for the workers to finish delivering them — bounded by
// ctx, whose expiry abandons the wait and returns its error.
func (s *scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
