package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privacyscope/internal/obs/obstest"
)

// TestCounterRegistryMatchesDocs is the documentation drift gate: an
// end-to-end daemon analysis (engine + checker + cache + scheduler all
// emitting) must not produce a counter, gauge, or span name that
// docs/OBSERVABILITY.md does not document. New instrumentation lands with
// its registry row or this fails.
func TestCounterRegistryMatchesDocs(t *testing.T) {
	documented := obstest.DocRegistry(t, filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))

	s := New(Config{Workers: 1, CacheEntries: 16, SlowThreshold: time.Nanosecond})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Execute (slow-flagged), then repeat for a cache hit, then a distinct
	// source, so scheduler, cache, and slow-path counters all fire.
	for _, src := range []string{leakyC, leakyC, leakyC + "\n// distinct\n"} {
		resp, data := postAnalyze(t, ts, AnalyzeRequest{Source: src, EDL: leakyEDL}, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, data)
		}
	}
	// Refresh the point-in-time gauges the same way a scrape does.
	if resp, err := ts.Client().Get(ts.URL + "/metrics"); err == nil {
		resp.Body.Close()
	}

	var missing []string
	for _, n := range s.metrics.CounterNames() {
		if !documented[n] {
			missing = append(missing, "counter "+n)
		}
	}
	snap := s.metrics.Snapshot()
	for n := range snap.Gauges {
		if !documented[n] {
			missing = append(missing, "gauge "+n)
		}
	}
	for n := range snap.Spans {
		if !documented[n] {
			missing = append(missing, "span "+n)
		}
	}
	for n := range snap.Dists {
		if !documented[n] {
			missing = append(missing, "distribution "+n)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("emitted but undocumented in docs/OBSERVABILITY.md:\n  %s",
			strings.Join(missing, "\n  "))
	}
}
