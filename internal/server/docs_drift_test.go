package server

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"context"
	"net/http"
)

var backtickRe = regexp.MustCompile("`([^`]+)`")
var registryTokenRe = regexp.MustCompile(`^\.?[a-z][a-z0-9._/-]*$`)

// docRegistry extracts every registry-style name docs/OBSERVABILITY.md
// mentions in backticks: counters, gauges, span paths, events. Combined
// table rows like "`server.cache.hits` / `.misses`" expand the dotted
// suffixes against the preceding full name.
func docRegistry(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	var last string
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		// Single-word names (the bare `parse` / `check` spans) only count
		// inside registry table rows; in prose they are too ambiguous.
		tableRow := strings.HasPrefix(strings.TrimSpace(line), "|")
		for _, m := range backtickRe.FindAllStringSubmatch(line, -1) {
			tok := m[1]
			if !registryTokenRe.MatchString(tok) {
				continue
			}
			if strings.HasPrefix(tok, ".") {
				// Suffix shorthand: ".misses" after "server.cache.hits"
				// means server.cache.misses — replace as many trailing
				// segments as the suffix carries.
				if last == "" {
					continue
				}
				sfx := strings.Split(tok[1:], ".")
				base := strings.Split(last, ".")
				if len(base) > len(sfx) {
					names[strings.Join(append(base[:len(base)-len(sfx)], sfx...), ".")] = true
				}
				continue
			}
			if strings.ContainsAny(tok, "./") || tableRow {
				names[tok] = true
				last = tok
			}
		}
	}
	if len(names) < 20 {
		t.Fatalf("docs/OBSERVABILITY.md registry extraction found only %d names — parser broken?", len(names))
	}
	return names
}

// TestCounterRegistryMatchesDocs is the documentation drift gate: an
// end-to-end daemon analysis (engine + checker + cache + scheduler all
// emitting) must not produce a counter, gauge, or span name that
// docs/OBSERVABILITY.md does not document. New instrumentation lands with
// its registry row or this fails.
func TestCounterRegistryMatchesDocs(t *testing.T) {
	documented := docRegistry(t)

	s := New(Config{Workers: 1, CacheEntries: 16, SlowThreshold: time.Nanosecond})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Execute (slow-flagged), then repeat for a cache hit, then a distinct
	// source, so scheduler, cache, and slow-path counters all fire.
	for _, src := range []string{leakyC, leakyC, leakyC + "\n// distinct\n"} {
		resp, data := postAnalyze(t, ts, AnalyzeRequest{Source: src, EDL: leakyEDL}, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, data)
		}
	}
	// Refresh the point-in-time gauges the same way a scrape does.
	if resp, err := ts.Client().Get(ts.URL + "/metrics"); err == nil {
		resp.Body.Close()
	}

	var missing []string
	for _, n := range s.metrics.CounterNames() {
		if !documented[n] {
			missing = append(missing, "counter "+n)
		}
	}
	snap := s.metrics.Snapshot()
	for n := range snap.Gauges {
		if !documented[n] {
			missing = append(missing, "gauge "+n)
		}
	}
	for n := range snap.Spans {
		if !documented[n] {
			missing = append(missing, "span "+n)
		}
	}
	for n := range snap.Dists {
		if !documented[n] {
			missing = append(missing, "distribution "+n)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("emitted but undocumented in docs/OBSERVABILITY.md:\n  %s",
			strings.Join(missing, "\n  "))
	}
}
