package server

import (
	"container/list"
	"encoding/json"
	"sync"

	"privacyscope/internal/diskcache"
	"privacyscope/internal/obs"
)

// resultCache is the bounded content-addressed result cache: cache key →
// finished HTTP result (status + envelope bytes). Keys are the SHA-256 of
// everything that determines the analysis outcome — source, EDL, rule file,
// engine options, and the engine fingerprint — so a hit is by construction
// the byte-identical result a fresh analysis would produce, and an engine
// upgrade (new fingerprint) can never serve stale results.
//
// Eviction is LRU over entry count: analysis results are small (the
// envelope, not the path set), so counting entries rather than bytes keeps
// the accounting trivial while still bounding memory.
//
// Below the in-memory LRU sits an optional disk tier (internal/diskcache):
// a memory miss consults it, a hit promotes the entry back into memory, and
// every Put persists — so a daemon restarted with the same -cache-dir comes
// back warm. Disk problems of any kind degrade to misses, never to errors.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	disk    *diskcache.Cache
	obs     obs.Observer
}

type cacheEntry struct {
	key    string
	result *analysisResult
}

// persistedResult is the disk-tier serialization of an analysisResult. The
// body is the envelope (or error JSON) verbatim; status and verdict rebuild
// the HTTP framing. Only cacheable results are ever persisted, so the
// cacheable bit needs no slot.
type persistedResult struct {
	Status  int             `json:"status"`
	Verdict string          `json:"verdict,omitempty"`
	Body    json.RawMessage `json:"body"`
}

// newResultCache returns a cache bounded to max entries (≤0 disables
// caching entirely: every Get misses and Put drops), over an optional disk
// tier (nil disables persistence).
func newResultCache(max int, disk *diskcache.Cache, o obs.Observer) *resultCache {
	return &resultCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		disk:    disk,
		obs:     obs.Or(o),
	}
}

// Get returns the cached result for key, bumping its recency. A memory
// miss falls through to the disk tier; a disk hit is promoted back into
// memory. The second return is false on a miss in both tiers.
func (c *resultCache) Get(key string) (*analysisResult, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.order.MoveToFront(el)
		c.mu.Unlock()
		c.obs.Add("server.cache.hits", 1)
		return el.Value.(*cacheEntry).result, true
	}
	c.mu.Unlock()
	c.obs.Add("server.cache.misses", 1)
	payload, ok := c.disk.Get(key) // nil-safe: misses when no disk tier
	if !ok {
		return nil, false
	}
	var p persistedResult
	if err := json.Unmarshal(payload, &p); err != nil || p.Status == 0 {
		// Frame checksum passed but the wrapper does not decode — treat
		// like corruption: miss and recompute.
		c.obs.Add("server.cache.disk.undecodable", 1)
		return nil, false
	}
	res := &analysisResult{status: p.Status, body: p.Body, verdict: p.Verdict, cacheable: true}
	c.put(key, res)
	return res, true
}

// Put stores a result in both tiers, evicting the least recently used
// memory entry past the bound. Re-putting an existing key refreshes its
// value and recency.
func (c *resultCache) Put(key string, r *analysisResult) {
	c.put(key, r)
	if c.disk != nil {
		// 500s never reach Put (not cacheable); persist everything else,
		// 422 parse errors included — they are deterministic per request.
		if payload, err := json.Marshal(persistedResult{
			Status:  r.status,
			Verdict: r.verdict,
			Body:    json.RawMessage(r.body),
		}); err == nil {
			c.disk.Put(key, payload)
		}
	}
}

// put inserts into the memory tier only (also the disk-hit promotion path).
func (c *resultCache) put(key string, r *analysisResult) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).result = r
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, result: r})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.obs.Add("server.cache.evictions", 1)
	}
}

// Len returns the current memory-tier entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
