package server

import (
	"container/list"
	"sync"

	"privacyscope/internal/obs"
)

// resultCache is the bounded content-addressed result cache: cache key →
// finished HTTP result (status + envelope bytes). Keys are the SHA-256 of
// everything that determines the analysis outcome — source, EDL, rule file,
// engine options, and the engine fingerprint — so a hit is by construction
// the byte-identical result a fresh analysis would produce, and an engine
// upgrade (new fingerprint) can never serve stale results.
//
// Eviction is LRU over entry count: analysis results are small (the
// envelope, not the path set), so counting entries rather than bytes keeps
// the accounting trivial while still bounding memory.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	obs     obs.Observer
}

type cacheEntry struct {
	key    string
	result *analysisResult
}

// newResultCache returns a cache bounded to max entries (≤0 disables
// caching entirely: every Get misses and Put drops).
func newResultCache(max int, o obs.Observer) *resultCache {
	return &resultCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		obs:     obs.Or(o),
	}
}

// Get returns the cached result for key, bumping its recency. The second
// return is false on a miss.
func (c *resultCache) Get(key string) (*analysisResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.obs.Add("server.cache.misses", 1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.obs.Add("server.cache.hits", 1)
	return el.Value.(*cacheEntry).result, true
}

// Put stores a result, evicting the least recently used entry past the
// bound. Re-putting an existing key refreshes its value and recency.
func (c *resultCache) Put(key string, r *analysisResult) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).result = r
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, result: r})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.obs.Add("server.cache.evictions", 1)
	}
}

// Len returns the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
