package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"privacyscope/internal/obs"
)

// TestTraceparentIngestion: a valid traceparent pins the trace ID the
// execution records under; the response echoes it in both the traceparent
// header and the envelope, and /debug/traces/<id> serves the span tree.
func TestTraceparentIngestion(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4, CacheEntries: 16})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	clientTrace := "4bf92f3577b34da6a3ce929d0e0e4736"
	parent := "00-" + clientTrace + "-00f067aa0ba902b7-01"

	body, _ := json.Marshal(AnalyzeRequest{Source: leakyC, EDL: leakyEDL})
	hreq, _ := http.NewRequest("POST", ts.URL+"/v1/analyze", bytes.NewReader(body))
	hreq.Header.Set("traceparent", parent)
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}

	// Response header echoes the client's trace ID with a fresh span ID.
	gotT, _, ok := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || gotT != clientTrace {
		t.Fatalf("response traceparent = %q, want trace %s", resp.Header.Get("traceparent"), clientTrace)
	}
	env := decodeEnvelope(t, data)
	if env.TraceID != clientTrace {
		t.Fatalf("envelope traceId = %q, want %s", env.TraceID, clientTrace)
	}

	// The flight recorder serves the span tree under the supplied ID.
	tresp, err := ts.Client().Get(ts.URL + "/debug/traces/" + clientTrace)
	if err != nil {
		t.Fatal(err)
	}
	tdata, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s = %d, body %s", clientTrace, tresp.StatusCode, tdata)
	}
	var entry struct {
		TraceID    string  `json:"traceId"`
		Status     int     `json:"status"`
		Verdict    string  `json:"verdict"`
		DurationMs float64 `json:"durationMs"`
		Trace      struct {
			TraceID string `json:"traceId"`
			Spans   []struct {
				Name  string `json:"name"`
				Spans []struct {
					Name string `json:"name"`
				} `json:"spans"`
			} `json:"spans"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(tdata, &entry); err != nil {
		t.Fatalf("bad trace entry %s: %v", tdata, err)
	}
	if entry.TraceID != clientTrace || entry.Trace.TraceID != clientTrace {
		t.Fatalf("recorded trace IDs = %q/%q", entry.TraceID, entry.Trace.TraceID)
	}
	if entry.Verdict != "findings" || entry.Status != http.StatusOK {
		t.Fatalf("recorded verdict/status = %q/%d", entry.Verdict, entry.Status)
	}
	var names []string
	for _, sp := range entry.Trace.Spans {
		names = append(names, sp.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "server/analyze") {
		t.Fatalf("span tree roots = %v, want server/analyze present", names)
	}
	// The engine spans hang somewhere in the tree (check under
	// server/analyze or as their own roots, depending on handle flow).
	if !strings.Contains(string(tdata), `"check"`) {
		t.Fatalf("trace has no check span: %s", tdata)
	}
}

// TestTraceGeneratedWhenAbsent: no (or malformed) traceparent still traces
// the execution under a daemon-minted ID.
func TestTraceGeneratedWhenAbsent(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 0})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postAnalyze(t, ts, AnalyzeRequest{Source: leakyC, EDL: leakyEDL}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	env := decodeEnvelope(t, data)
	if len(env.TraceID) != 32 {
		t.Fatalf("envelope traceId = %q, want generated 32-hex ID", env.TraceID)
	}
	gotT, _, ok := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || gotT != env.TraceID {
		t.Fatalf("header trace %q != envelope trace %q", gotT, env.TraceID)
	}
	if _, ok := s.recorder.Get(env.TraceID); !ok {
		t.Fatalf("executed analysis not in flight recorder")
	}
}

// TestFlightRecorderListAndEviction: /debug/traces lists newest first and
// the ring evicts past FlightEntries.
func TestFlightRecorderListAndEviction(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 0, FlightEntries: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Three distinct executions (cache disabled, distinct sources).
	sources := []string{leakyC, leakyC + "\n// v2\n", leakyC + "\n// v3\n"}
	var ids []string
	for _, src := range sources {
		resp, data := postAnalyze(t, ts, AnalyzeRequest{Source: src, EDL: leakyEDL}, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, data)
		}
		ids = append(ids, decodeEnvelope(t, data).TraceID)
	}

	resp, err := ts.Client().Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var listing struct {
		Capacity int `json:"capacity"`
		Traces   []struct {
			TraceID string `json:"traceId"`
			Spans   int    `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(data, &listing); err != nil {
		t.Fatalf("bad listing %s: %v", data, err)
	}
	if listing.Capacity != 2 || len(listing.Traces) != 2 {
		t.Fatalf("capacity/len = %d/%d, want 2/2", listing.Capacity, len(listing.Traces))
	}
	// Newest first; the oldest execution was evicted.
	if listing.Traces[0].TraceID != ids[2] || listing.Traces[1].TraceID != ids[1] {
		t.Fatalf("listing order = %v, want [%s %s]", listing.Traces, ids[2], ids[1])
	}
	eresp, err := ts.Client().Get(ts.URL + "/debug/traces/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	eresp.Body.Close()
	if eresp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted trace GET = %d, want 404", eresp.StatusCode)
	}
}

// TestCacheHitNotRecorded: a request served from the cache executes no
// analysis and records nothing new; its response still names the leader's
// trace.
func TestCacheHitNotRecorded(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 16})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := AnalyzeRequest{Source: leakyC, EDL: leakyEDL}
	resp1, data1 := postAnalyze(t, ts, req, "")
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp1.StatusCode)
	}
	leader := decodeEnvelope(t, data1).TraceID
	if s.recorder.Len() != 1 {
		t.Fatalf("recorded = %d, want 1", s.recorder.Len())
	}

	resp2, _ := postAnalyze(t, ts, req, "")
	if got := resp2.Header.Get("X-Privacyscope-Cache"); got != "hit" {
		t.Fatalf("cache header = %q", got)
	}
	if s.recorder.Len() != 1 {
		t.Fatalf("cache hit grew the recorder to %d", s.recorder.Len())
	}
	gotT, _, ok := obs.ParseTraceparent(resp2.Header.Get("traceparent"))
	if !ok || gotT != leader {
		t.Fatalf("cache hit traceparent = %q, want leader trace %s", resp2.Header.Get("traceparent"), leader)
	}
}

// TestSlowAnalysisEvent: an execution exceeding SlowThreshold bumps the
// slow counter and flags the flight entry.
func TestSlowAnalysisEvent(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 0, SlowThreshold: time.Nanosecond})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postAnalyze(t, ts, AnalyzeRequest{Source: leakyC, EDL: leakyEDL}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if n := s.metrics.Counter("server.jobs.slow"); n != 1 {
		t.Fatalf("server.jobs.slow = %d, want 1", n)
	}
	id := decodeEnvelope(t, data).TraceID
	e, ok := s.recorder.Get(id)
	if !ok || !e.Slow {
		t.Fatalf("flight entry slow flag: entry=%v ok=%v", e, ok)
	}
}
