package server

import (
	"sync"
	"time"

	"privacyscope/internal/obs"
)

// flightRecorder is the daemon's black box: a ring buffer holding the trace
// of the last N *executed* analyses (cache hits and singleflight followers
// reuse a leader's result and record nothing). GET /debug/traces lists the
// ring newest-first; /debug/traces/<id> serves one recorded span tree — the
// post-hoc "why was this request slow" surface the aggregate /metrics view
// cannot answer.
type flightRecorder struct {
	mu      sync.Mutex
	cap     int
	order   []string // trace IDs, oldest first
	entries map[string]*flightEntry
}

// flightEntry is one recorded analysis.
type flightEntry struct {
	TraceID    string             `json:"traceId"`
	Lang       string             `json:"lang"`
	Verdict    string             `json:"verdict,omitempty"`
	Status     int                `json:"status"`
	DurationMs float64            `json:"durationMs"`
	Slow       bool               `json:"slow,omitempty"`
	Start      time.Time          `json:"start"`
	Trace      *obs.TraceSnapshot `json:"trace"`
}

// summary is the listing row: the entry without its span tree.
func (e *flightEntry) summary() map[string]any {
	spans := 0
	if e.Trace != nil {
		spans = len(e.Trace.Spans)
	}
	return map[string]any{
		"traceId":    e.TraceID,
		"lang":       e.Lang,
		"verdict":    e.Verdict,
		"status":     e.Status,
		"durationMs": e.DurationMs,
		"slow":       e.Slow,
		"start":      e.Start,
		"spans":      spans,
	}
}

func newFlightRecorder(capacity int) *flightRecorder {
	if capacity <= 0 {
		capacity = 64
	}
	return &flightRecorder{cap: capacity, entries: make(map[string]*flightEntry)}
}

// Record stores one executed analysis, evicting the oldest past the cap. A
// re-run under an already-recorded trace ID (a client reusing a traceparent)
// replaces the previous recording rather than duplicating the ID.
func (f *flightRecorder) Record(e *flightEntry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.entries[e.TraceID]; ok {
		f.entries[e.TraceID] = e
		return
	}
	f.entries[e.TraceID] = e
	f.order = append(f.order, e.TraceID)
	for len(f.order) > f.cap {
		delete(f.entries, f.order[0])
		f.order = f.order[1:]
	}
}

// List returns the recorded summaries, newest first.
func (f *flightRecorder) List() []map[string]any {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]map[string]any, 0, len(f.order))
	for i := len(f.order) - 1; i >= 0; i-- {
		out = append(out, f.entries[f.order[i]].summary())
	}
	return out
}

// Get returns one recorded entry by trace ID.
func (f *flightRecorder) Get(traceID string) (*flightEntry, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[traceID]
	return e, ok
}

// Len reports how many analyses are currently recorded.
func (f *flightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.order)
}
