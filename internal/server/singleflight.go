package server

import "sync"

// flightGroup deduplicates concurrent identical work: the first caller of
// Do for a key becomes the leader and runs fn; callers arriving while the
// leader is in flight wait and share the leader's result without running fn
// (or consuming a scheduler slot) themselves. A minimal reimplementation of
// golang.org/x/sync/singleflight — the repo is pure stdlib by policy.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done   chan struct{}
	result *analysisResult
	err    error
	shared int // followers that joined this call
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do runs fn once per key among concurrent callers. The bool return is
// true for followers that shared the leader's result. fn's result is
// shared as-is; callers must treat it as immutable.
func (g *flightGroup) Do(key string, fn func() (*analysisResult, error)) (*analysisResult, error, bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.shared++
		g.mu.Unlock()
		<-c.done
		return c.result, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.result, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.result, c.err, false
}

// waiting returns how many followers are currently blocked on the key's
// in-flight call (0 when the key is idle). Tests use it to deterministically
// assert dedup before releasing a gated leader.
func (g *flightGroup) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.shared
	}
	return 0
}
