package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"privacyscope/internal/diskcache"
	"privacyscope/internal/obs"
)

func openDisk(t *testing.T, dir string) *diskcache.Cache {
	t.Helper()
	c, err := diskcache.Open(diskcache.Config{Dir: dir, Observer: obs.NewMetrics()})
	if err != nil {
		t.Fatalf("diskcache.Open: %v", err)
	}
	return c
}

// TestWarmRestart is the daemon's restart story: a result computed by one
// server generation is served from the disk tier by the next — zero engine
// runs, byte-identical body — because the in-memory LRU sits over a
// persistent cache keyed on the same content address.
func TestWarmRestart(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	req := AnalyzeRequest{Source: leakyC, EDL: leakyEDL}

	// Generation 1 computes and persists.
	s1 := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 16, DiskCache: openDisk(t, cacheDir)})
	ts1 := httptest.NewServer(s1.Handler())
	resp1, body1 := postAnalyze(t, ts1, req, "")
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp1.StatusCode, body1)
	}
	if n := s1.metrics.Counter("server.analyses.executed"); n != 1 {
		t.Fatalf("gen1 executed = %d, want 1", n)
	}
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("gen1 shutdown: %v", err)
	}

	// Generation 2 — a fresh process in spirit: empty memory LRU, same
	// disk directory. The disk tier shares the server's metrics, as the
	// daemon wires it, so diskcache.* counters land beside server.cache.*.
	m2 := obs.NewMetrics()
	disk2, err := diskcache.Open(diskcache.Config{Dir: cacheDir, Observer: m2})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 16, DiskCache: disk2, Metrics: m2})
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	resp2, body2 := postAnalyze(t, ts2, req, "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Privacyscope-Cache"); got != "hit" {
		t.Errorf("restarted daemon cache header = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("restarted daemon served a different body:\n%s\nvs\n%s", body1, body2)
	}
	if n := s2.metrics.Counter("server.analyses.executed"); n != 0 {
		t.Errorf("gen2 executed = %d, want 0 (served from disk)", n)
	}

	// The disk hit was promoted into gen2's memory tier: a third request
	// hits memory, not disk.
	diskHits := m2.Counter("diskcache.hits")
	if diskHits == 0 {
		t.Error("restart hit did not come from the disk tier")
	}
	resp3, _ := postAnalyze(t, ts2, req, "")
	if got := resp3.Header.Get("X-Privacyscope-Cache"); got != "hit" {
		t.Errorf("third request cache header = %q, want hit", got)
	}
	if got := m2.Counter("diskcache.hits"); got != diskHits {
		t.Errorf("third request went back to disk (diskcache.hits %d → %d)", diskHits, got)
	}
}

// TestWarmRestartCorruptEntry: a damaged disk entry under the daemon
// degrades to a recompute, exactly like the batch driver.
func TestWarmRestartCorruptEntry(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	req := AnalyzeRequest{Source: leakyC, EDL: leakyEDL}

	s1 := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 16, DiskCache: openDisk(t, cacheDir)})
	ts1 := httptest.NewServer(s1.Handler())
	_, body1 := postAnalyze(t, ts1, req, "")
	ts1.Close()
	s1.Shutdown(context.Background())

	// Flip a byte in every persisted entry.
	des, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	damaged := 0
	for _, de := range des {
		path := filepath.Join(cacheDir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil || len(data) == 0 {
			continue
		}
		data[len(data)-1] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		damaged++
	}
	if damaged == 0 {
		t.Fatal("generation 1 persisted nothing")
	}

	s2 := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 16, DiskCache: openDisk(t, cacheDir)})
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	resp2, body2 := postAnalyze(t, ts2, req, "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("corrupt disk entry failed the request: %d %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Privacyscope-Cache"); got == "hit" {
		t.Error("corrupt disk entry served as a hit")
	}
	if n := s2.metrics.Counter("server.analyses.executed"); n != 1 {
		t.Errorf("gen2 executed = %d, want 1 (recompute)", n)
	}
	// The recompute ran for real, so only the wall clock may differ.
	env1, env2 := decodeEnvelope(t, body1), decodeEnvelope(t, body2)
	f1, _ := json.Marshal(env1.Findings)
	f2, _ := json.Marshal(env2.Findings)
	if !bytes.Equal(f1, f2) || env1.Verdict != env2.Verdict {
		t.Errorf("recomputed findings differ from original:\n%s\nvs\n%s", f1, f2)
	}
}
