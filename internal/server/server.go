// Package server implements privacyscoped, the analysis-as-a-service
// daemon: an HTTP/JSON front end over the privacyscope facade with a
// bounded job scheduler, a content-addressed result cache, and singleflight
// deduplication of identical in-flight submissions.
//
// Endpoints:
//
//	POST /v1/analyze          submit a module, wait for the result envelope
//	POST /v1/analyze?async=1  202 + job ID immediately; poll the job
//	GET  /v1/jobs/{id}        job status, or the final result when done
//	GET  /healthz             liveness + queue/cache stats (503 once draining)
//	GET  /metrics             Prometheus text exposition of internal/obs
//
// The analysis result is the same envelope the `privacyscope -json` CLI
// emits (privacyscope.Envelope). Fail-soft verdicts map onto statuses:
// secure and findings are both 200 (the analysis succeeded; the verdict is
// in the body), a degraded partial-coverage run is 206, a module whose
// every entry point failed is 500, an unparseable module 422, a full queue
// 429, and a draining daemon 503. See docs/SERVER.md.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"privacyscope"
	"privacyscope/internal/diskcache"
	"privacyscope/internal/obs"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the analysis worker-pool size (≤0: 4). Each worker runs
	// one module analysis at a time; intra-analysis parallelism is still
	// governed by the request's pathWorkers option.
	Workers int
	// QueueDepth bounds how many accepted jobs may wait for a worker
	// (<0: 0 — reject whenever all workers are busy). A full queue
	// rejects with 429.
	QueueDepth int
	// CacheEntries bounds the result cache (≤0 disables caching).
	CacheEntries int
	// DefaultDeadline is the per-job wall-clock budget applied when a
	// request does not set deadlineMs. Zero means no default. Expiry
	// degrades the analysis fail-soft (206), it does not kill the job.
	DefaultDeadline time.Duration
	// MaxDeadline caps the per-request deadlineMs (and bounds jobs even
	// when DefaultDeadline is zero, if set): a client cannot hold a
	// worker longer than this. Zero means uncapped.
	MaxDeadline time.Duration
	// MaxSourceBytes bounds the combined request source sizes (≤0: 1 MiB).
	MaxSourceBytes int
	// DiskCache, when non-nil, persists cacheable results below the
	// in-memory LRU (same content-addressed keys), so a daemon restarted
	// on the same directory serves repeats without re-running the
	// engine. Disk failures degrade to cache misses, never to errors.
	DiskCache *diskcache.Cache
	// Metrics receives the daemon's and the engine's telemetry. Nil
	// creates a private Metrics; pass one to share it with other
	// components or to stream events.
	Metrics *obs.Metrics
	// FlightEntries sizes the flight recorder: the ring of recently
	// executed analyses whose traces /debug/traces serves (≤0: 64).
	FlightEntries int
	// SlowThreshold, when positive, flags any executed analysis that takes
	// longer as slow: a server.job.slow event (with trace ID), the
	// server.jobs.slow counter, and the slow bit on its flight-recorder
	// entry.
	SlowThreshold time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	return c
}

// Server is the daemon. Create with New, mount Handler, stop with
// Shutdown.
type Server struct {
	cfg      Config
	metrics  *obs.Metrics
	cache    *resultCache
	flight   *flightGroup
	sched    *scheduler
	jobs     *jobStore
	recorder *flightRecorder
	mux      *http.ServeMux
	engine   string // fingerprint folded into every cache key

	// hookAnalyzeStart, when set (tests only), runs inside the worker
	// just before the engine is invoked — a gate for deterministic
	// concurrency tests.
	hookAnalyzeStart func(key string)
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		metrics:  cfg.Metrics,
		cache:    newResultCache(cfg.CacheEntries, cfg.DiskCache, cfg.Metrics),
		flight:   newFlightGroup(),
		sched:    newScheduler(cfg.Workers, cfg.QueueDepth, cfg.Metrics),
		jobs:     newJobStore(1024),
		recorder: newFlightRecorder(cfg.FlightEntries),
		engine:   privacyscope.Fingerprint(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the observer aggregating daemon and engine telemetry.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Shutdown drains gracefully: new submissions get 503, in-flight analyses
// are cancelled so they complete fail-soft (their clients receive 206
// partial-coverage envelopes), and queued jobs flush the same way. The wait
// is bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.sched.Shutdown(ctx)
}

// AnalyzeRequest is the POST /v1/analyze body.
type AnalyzeRequest struct {
	// Lang selects the front end: "minic" (default) or "priml".
	Lang string `json:"lang,omitempty"`
	// Source is the module source (MiniC enclave code, or a PRIML
	// program).
	Source string `json:"source"`
	// EDL is the interface file; required for minic, ignored for priml.
	EDL string `json:"edl,omitempty"`
	// ConfigXML is the optional §V-C rule file.
	ConfigXML string `json:"configXML,omitempty"`
	// Options tunes the engine for this job.
	Options RequestOptions `json:"options,omitempty"`
}

// RequestOptions mirrors the facade's functional options in JSON form:
// the shared privacyscope.AnalysisOptions, so the daemon, the batch driver
// and the cache keys all agree on what an "option" is. Every field
// participates in the cache key.
type RequestOptions = privacyscope.AnalysisOptions

// analysisResult is a finished analysis as the handler writes it: status,
// body, and whether the cache may keep it.
type analysisResult struct {
	status    int
	body      []byte
	verdict   string
	cacheable bool
	// traceID names the execution that produced this result; echoed as a
	// traceparent response header and resolvable at /debug/traces/<id>
	// while the flight recorder retains it. Empty for results that never
	// ran an engine (errors, disk-cache restores).
	traceID string
}

// errorBody renders the error JSON the daemon uses for every non-envelope
// failure.
func errorBody(msg string) []byte {
	b, _ := json.Marshal(map[string]string{"error": msg})
	return b
}

// CacheKey addresses a request by content: everything that determines the
// analysis outcome, engine fingerprint included, hashed field-by-field with
// length framing (diskcache.Key) so no two distinct requests can collide by
// concatenation. The same key addresses both cache tiers — and the
// coordinator (internal/coord) routes by it, which is what makes placement
// cache-aware: a unit always lands on the worker whose disk tier holds its
// key.
func CacheKey(engine string, req *AnalyzeRequest) string {
	return diskcache.Key(engine,
		req.Lang, req.Source, req.EDL, req.ConfigXML, req.Options.KeyJSON())
}

func (s *Server) cacheKey(req *AnalyzeRequest) string {
	return CacheKey(s.engine, req)
}

// Validate rejects malformed requests before they cost a queue slot. It
// also canonicalizes the request (defaulting Lang), so the coordinator and
// the worker compute identical cache keys from the same submission.
func (req *AnalyzeRequest) Validate(maxSource int) error {
	switch req.Lang {
	case "", "minic":
		req.Lang = "minic"
		if req.EDL == "" {
			return fmt.Errorf("minic modules require an edl interface")
		}
	case "priml":
	default:
		return fmt.Errorf("unknown lang %q (want minic or priml)", req.Lang)
	}
	if req.Source == "" {
		return fmt.Errorf("source is required")
	}
	if n := len(req.Source) + len(req.EDL) + len(req.ConfigXML); n > maxSource {
		return fmt.Errorf("request sources total %d bytes, limit %d", n, maxSource)
	}
	return nil
}

// handleAnalyze is POST /v1/analyze: resolve through cache, singleflight
// and the scheduler, synchronously or (with ?async=1) as a polled job.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add("server.requests", 1)
	var req AnalyzeRequest
	body := http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSourceBytes)+64*1024)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		// An oversized submission is a distinct, retry-with-less condition:
		// 413 with the JSON error envelope, not a generic 400 (and never a
		// hang — MaxBytesReader cuts the read at the limit).
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.metrics.Add("server.requests.toolarge", 1)
			writeResult(w, &analysisResult{
				status: http.StatusRequestEntityTooLarge,
				body:   errorBody(fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)),
			}, "")
			return
		}
		writeResult(w, &analysisResult{status: http.StatusBadRequest, body: errorBody("bad request body: " + err.Error())}, "")
		return
	}
	if err := req.Validate(s.cfg.MaxSourceBytes); err != nil {
		writeResult(w, &analysisResult{status: http.StatusBadRequest, body: errorBody(err.Error())}, "")
		return
	}
	key := s.cacheKey(&req)
	// W3C trace-context ingestion: a valid traceparent pins the trace ID
	// the execution records under (so the client can fetch
	// /debug/traces/<their id> afterwards); anything else and the daemon
	// mints its own. Either way the response echoes the ID.
	traceID, _, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		traceID = obs.NewTraceID()
	}

	if r.URL.Query().Get("async") != "" {
		id, err := s.jobs.Create()
		if err != nil {
			writeResult(w, &analysisResult{status: http.StatusInternalServerError, body: errorBody(err.Error())}, "")
			return
		}
		res, submitErr := s.submitAsync(id, key, traceID, &req)
		if submitErr != nil {
			s.jobs.Drop(id)
			writeResult(w, toResult(submitErr), "")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Location", "/v1/jobs/"+id)
		w.Header().Set("traceparent", obs.FormatTraceparent(traceID, obs.NewSpanID()))
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"jobId": id, "status": res})
		return
	}

	if res, ok := s.cache.Get(key); ok {
		writeResult(w, res, "hit")
		return
	}
	res, err, shared := s.flightDo(key, traceID, &req)
	if err != nil {
		writeResult(w, toResult(err), "")
		return
	}
	hdr := ""
	if shared {
		s.metrics.Add("server.singleflight.shared", 1)
		hdr = "shared"
	}
	writeResult(w, res, hdr)
}

// resolve serves a request from the cache, or joins the in-flight
// identical analysis, or schedules a new one. The bool reports singleflight
// sharing.
func (s *Server) resolve(key, traceID string, req *AnalyzeRequest) (*analysisResult, error, bool) {
	if res, ok := s.cache.Get(key); ok {
		return res, nil, false
	}
	return s.flightDo(key, traceID, req)
}

func (s *Server) flightDo(key, traceID string, req *AnalyzeRequest) (*analysisResult, error, bool) {
	return s.flight.Do(key, func() (*analysisResult, error) {
		// Re-check under the flight lock epoch: a previous leader may have
		// populated the cache between our miss and becoming leader.
		if res, ok := s.cache.Get(key); ok {
			return res, nil
		}
		var res *analysisResult
		t, err := s.sched.Submit(func(ctx context.Context) {
			res = s.runAnalysis(ctx, key, traceID, req)
		})
		if err != nil {
			return nil, err
		}
		<-t.done
		if res.cacheable {
			s.cache.Put(key, res)
		}
		return res, nil
	})
}

// submitAsync schedules the request as a polled job; the returned string
// is the job's immediate status ("done" on a cache hit, else "queued").
func (s *Server) submitAsync(id, key, traceID string, req *AnalyzeRequest) (string, error) {
	if res, ok := s.cache.Get(key); ok {
		s.jobs.Finish(id, res)
		return jobDone, nil
	}
	// The job closure resolves through the same singleflight path as sync
	// requests, but from a goroutine that owns no worker slot: the inner
	// Submit is the one that consumes queue capacity. To preserve the 429
	// contract, probe the scheduler state first instead of queuing a
	// goroutine that would only later discover the queue is full.
	if err := s.sched.Probe(); err != nil {
		return "", err
	}
	s.jobs.Run(id)
	go func() {
		res, err, shared := s.resolve(key, traceID, req)
		if shared {
			s.metrics.Add("server.singleflight.shared", 1)
		}
		if err != nil {
			res = toResult(err)
		}
		s.jobs.Finish(id, res)
	}()
	return jobRunning, nil
}

// runAnalysis executes one scheduled job inside a worker. Every execution
// is traced: a per-job Tracer (under the client's trace ID when a valid
// traceparent came in) runs next to the shared Metrics via obs.Multi, and
// the finished trace lands in the flight recorder.
func (s *Server) runAnalysis(ctx context.Context, key, traceID string, req *AnalyzeRequest) *analysisResult {
	if s.hookAnalyzeStart != nil {
		s.hookAnalyzeStart(key)
	}
	s.metrics.Add("server.analyses.executed", 1)
	tracer := obs.NewTracer(obs.WithTraceID(traceID))
	ob := obs.Multi(s.metrics, tracer)
	span := ob.StartSpan("server/analyze")
	span.Annotate(obs.F("lang", req.Lang))

	start := time.Now()
	var res *analysisResult
	defer func() {
		elapsed := time.Since(start)
		span.Annotate(obs.F("verdict", res.verdict))
		span.End()
		slow := s.cfg.SlowThreshold > 0 && elapsed > s.cfg.SlowThreshold
		if slow {
			s.metrics.Add("server.jobs.slow", 1)
			s.metrics.Event("server.job.slow",
				obs.F("trace", tracer.TraceID()),
				obs.F("lang", req.Lang),
				obs.F("durationMs", fmt.Sprintf("%.1f", float64(elapsed.Nanoseconds())/1e6)),
				obs.F("threshold", s.cfg.SlowThreshold.String()))
		}
		s.recorder.Record(&flightEntry{
			TraceID:    tracer.TraceID(),
			Lang:       req.Lang,
			Verdict:    res.verdict,
			Status:     res.status,
			DurationMs: float64(elapsed.Nanoseconds()) / 1e6,
			Slow:       slow,
			Start:      start,
			Trace:      tracer.Snapshot(),
		})
	}()

	if d := s.jobDeadline(req); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	if req.Lang == "priml" {
		res = s.runPRIML(req, tracer)
		return res
	}

	opts := append([]privacyscope.Option{privacyscope.WithObserver(ob)},
		req.Options.FacadeOptions()...)
	if req.ConfigXML != "" {
		opts = append(opts, privacyscope.WithConfigXML([]byte(req.ConfigXML)))
	}
	// The daemon's disk tier doubles as the summary store: a re-submitted
	// module that misses the result cache (one function edited) still
	// reuses every unchanged function's persisted summary.
	if req.Options.Summaries && s.cfg.DiskCache != nil {
		opts = append(opts, privacyscope.WithSummaryStore(s.cfg.DiskCache))
	}

	rep, err := privacyscope.AnalyzeEnclaveContext(ctx, req.Source, req.EDL, opts...)
	if err != nil {
		s.metrics.Add("server.analyses.failed", 1)
		// Module-level failures (parse error, bad rule file, no ECALLs)
		// are deterministic for a given request, so they cache too.
		res = &analysisResult{
			status:    http.StatusUnprocessableEntity,
			body:      errorBody(err.Error()),
			cacheable: true,
			traceID:   tracer.TraceID(),
		}
		return res
	}
	env := privacyscope.NewEnvelope(rep, time.Since(start), nil)
	env.TraceID = tracer.TraceID()
	res = envelopeResult(env)
	return res
}

// runPRIML analyzes a PRIML program and flattens the result into the same
// envelope shape. PRIML programs are single-procedure and tiny, so they run
// without cancellation plumbing; the scheduler still bounds concurrency.
func (s *Server) runPRIML(req *AnalyzeRequest, tracer *obs.Tracer) *analysisResult {
	start := time.Now()
	an, err := privacyscope.AnalyzePRIML(req.Source)
	if err != nil {
		s.metrics.Add("server.analyses.failed", 1)
		return &analysisResult{
			status:    http.StatusUnprocessableEntity,
			body:      errorBody(err.Error()),
			cacheable: true,
			traceID:   tracer.TraceID(),
		}
	}
	env := privacyscope.Envelope{
		Findings:   []privacyscope.EnvelopeFinding{},
		Secure:     an.Secure(),
		Engine:     privacyscope.Fingerprint(),
		DurationMs: float64(time.Since(start).Nanoseconds()) / 1e6,
		Paths:      an.Paths,
	}
	verdict := privacyscope.VerdictSecure
	if len(an.Findings) > 0 {
		verdict = privacyscope.VerdictFindings
	}
	env.Verdict = verdict.String()
	for _, f := range an.Findings {
		env.Findings = append(env.Findings, privacyscope.EnvelopeFinding{
			Function: "priml",
			Kind:     f.Kind.String(),
			Sink:     "declassify",
			Where:    fmt.Sprintf("declassify#%d @ %v", f.Site, f.Pos),
			Secret:   fmt.Sprintf("t%d", f.Secret),
			Message:  f.Message,
		})
	}
	env.Functions = []privacyscope.EnvelopeFunction{{
		Function: "priml",
		Verdict:  env.Verdict,
	}}
	env.TraceID = tracer.TraceID()
	return envelopeResult(env)
}

// jobDeadline picks the per-job wall-clock budget: the request's, else the
// server default, capped by MaxDeadline either way.
func (s *Server) jobDeadline(req *AnalyzeRequest) time.Duration {
	d := time.Duration(req.Options.DeadlineMs) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && (d <= 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	return d
}

// envelopeResult maps a finished envelope onto its HTTP status: the
// fail-soft verdict contract of docs/ROBUSTNESS.md in HTTP form.
func envelopeResult(env privacyscope.Envelope) *analysisResult {
	status := http.StatusOK
	switch env.Verdict {
	case privacyscope.VerdictInconclusive.String():
		// Partial coverage: the body is a valid envelope but the path
		// space was not exhausted.
		status = http.StatusPartialContent
	case privacyscope.VerdictError.String():
		status = http.StatusInternalServerError
	}
	body, err := json.Marshal(env)
	if err != nil {
		return &analysisResult{status: http.StatusInternalServerError, body: errorBody(err.Error())}
	}
	return &analysisResult{
		status:  status,
		body:    body,
		verdict: env.Verdict,
		traceID: env.TraceID,
		// A cancelled analysis (daemon shutdown) would re-explore further
		// on resubmission — never cache it. Budget/deadline truncation is
		// deterministic per request and caches fine.
		cacheable: !env.Cancelled() && env.Verdict != privacyscope.VerdictError.String(),
	}
}

// toResult maps scheduler errors onto backpressure statuses.
func toResult(err error) *analysisResult {
	switch err {
	case errQueueFull:
		return &analysisResult{status: http.StatusTooManyRequests, body: errorBody(err.Error())}
	case errDraining:
		return &analysisResult{status: http.StatusServiceUnavailable, body: errorBody(err.Error())}
	default:
		return &analysisResult{status: http.StatusInternalServerError, body: errorBody(err.Error())}
	}
}

// writeResult writes a finished analysisResult. cacheHdr, when non-empty,
// names how the result was obtained ("hit", "shared").
func writeResult(w http.ResponseWriter, res *analysisResult, cacheHdr string) {
	w.Header().Set("Content-Type", "application/json")
	if res.verdict != "" {
		w.Header().Set("X-Privacyscope-Verdict", res.verdict)
	}
	// Echo the executing trace's ID (a cache hit echoes the leader's — the
	// ID that actually names a recorded trace, if any is still retained).
	if res.traceID != "" {
		w.Header().Set("traceparent", obs.FormatTraceparent(res.traceID, obs.NewSpanID()))
	}
	if cacheHdr != "" {
		w.Header().Set("X-Privacyscope-Cache", cacheHdr)
	}
	if res.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
	if len(res.body) > 0 && res.body[len(res.body)-1] != '\n' {
		w.Write([]byte("\n"))
	}
}

// handleJob is GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if !ok {
		writeResult(w, &analysisResult{status: http.StatusNotFound, body: errorBody("unknown job " + id)}, "")
		return
	}
	if job.Status != jobDone {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"jobId": id, "status": job.Status})
		return
	}
	writeResult(w, job.Result, "")
}

// handleTraces is GET /debug/traces: the flight recorder's ring, newest
// first, as summaries (no span trees — fetch one by ID for the full tree).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"capacity": s.recorder.cap,
		"traces":   s.recorder.List(),
	})
}

// handleTrace is GET /debug/traces/{id}: one recorded analysis with its
// full span tree. Only *executed* analyses are recorded — a request served
// from the cache or by joining another client's in-flight analysis has no
// recording of its own (its traceparent response header names the leader's
// trace instead).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.recorder.Get(id)
	if !ok {
		writeResult(w, &analysisResult{
			status: http.StatusNotFound,
			body:   errorBody("no recorded trace " + id + " (evicted, or the request never executed an analysis)"),
		}, "")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(e)
}

// handleHealthz is GET /healthz: 200 while serving, 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.publishGauges()
	status, code := "ok", http.StatusOK
	if s.sched.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":       status,
		"engine":       s.engine,
		"version":      privacyscope.EngineVersion,
		"workers":      s.cfg.Workers,
		"jobsInFlight": s.sched.InFlight(),
		"queueDepth":   s.sched.QueueDepth(),
		"cacheEntries": s.cache.Len(),
	})
}

// handleMetrics is GET /metrics: the obs registry (daemon counters, cache
// stats, engine counters, per-phase latency spans) in Prometheus text form.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.publishGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}

// publishGauges refreshes the point-in-time gauges before a scrape.
func (s *Server) publishGauges() {
	s.metrics.SetGauge("server.queue.depth", int64(s.sched.QueueDepth()))
	s.metrics.SetGauge("server.jobs.inflight", s.sched.InFlight())
	s.metrics.SetGauge("server.cache.entries", int64(s.cache.Len()))
	if s.cfg.DiskCache != nil {
		s.metrics.SetGauge("diskcache.entries", int64(s.cfg.DiskCache.Len()))
		s.metrics.SetGauge("diskcache.size.bytes", s.cfg.DiskCache.SizeBytes())
	}
}

// jobStore tracks async jobs with bounded retention.
type jobStore struct {
	mu    sync.Mutex
	jobs  map[string]*asyncJob
	order []string
	max   int
}

// Async job states.
const (
	jobQueued  = "queued"
	jobRunning = "running"
	jobDone    = "done"
)

type asyncJob struct {
	ID     string
	Status string
	Result *analysisResult
}

func newJobStore(max int) *jobStore {
	return &jobStore{jobs: make(map[string]*asyncJob), max: max}
}

// Create registers a new job with a random ID.
func (j *jobStore) Create() (string, error) {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", err
	}
	id := hex.EncodeToString(buf[:])
	j.mu.Lock()
	defer j.mu.Unlock()
	j.jobs[id] = &asyncJob{ID: id, Status: jobQueued}
	j.order = append(j.order, id)
	// Bounded retention: drop the oldest finished jobs past the cap so a
	// client that never polls cannot grow the store without bound.
	for len(j.order) > j.max {
		dropped := false
		for i, old := range j.order {
			if jb, ok := j.jobs[old]; !ok || jb.Status == jobDone {
				delete(j.jobs, old)
				j.order = append(j.order[:i], j.order[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			break // everything is still in flight; let it finish
		}
	}
	return id, nil
}

func (j *jobStore) Run(id string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if jb, ok := j.jobs[id]; ok {
		jb.Status = jobRunning
	}
}

func (j *jobStore) Finish(id string, res *analysisResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if jb, ok := j.jobs[id]; ok {
		jb.Status = jobDone
		jb.Result = res
	}
}

func (j *jobStore) Drop(id string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.jobs, id)
}

func (j *jobStore) Get(id string) (*asyncJob, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	jb, ok := j.jobs[id]
	if !ok {
		return nil, false
	}
	cp := *jb
	return &cp, true
}
