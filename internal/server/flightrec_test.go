package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func entry(id string) *flightEntry {
	return &flightEntry{TraceID: id, Lang: "minic", Status: 200, Start: time.Now()}
}

// TestFlightRecorderWraparound: the ring holds exactly cap entries; older
// recordings evict oldest-first and their IDs stop resolving.
func TestFlightRecorderWraparound(t *testing.T) {
	f := newFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(entry(fmt.Sprintf("t%02d", i)))
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	list := f.List()
	if len(list) != 4 {
		t.Fatalf("List returned %d rows, want 4", len(list))
	}
	// Newest first: t09..t06 survive, t05 and older are gone.
	for i, want := range []string{"t09", "t08", "t07", "t06"} {
		if got := list[i]["traceId"]; got != want {
			t.Fatalf("list[%d] = %v, want %s", i, got, want)
		}
	}
	if _, ok := f.Get("t05"); ok {
		t.Fatal("evicted trace t05 still resolves")
	}
	if _, ok := f.Get("t09"); !ok {
		t.Fatal("retained trace t09 does not resolve")
	}
}

// TestFlightRecorderReplaceKeepsCap: re-recording an existing trace ID (a
// client reusing a traceparent) replaces in place without consuming a slot.
func TestFlightRecorderReplaceKeepsCap(t *testing.T) {
	f := newFlightRecorder(2)
	f.Record(entry("a"))
	f.Record(entry("b"))
	e := entry("a")
	e.Verdict = "findings"
	f.Record(e)
	if f.Len() != 2 {
		t.Fatalf("Len = %d after in-place replace, want 2", f.Len())
	}
	got, ok := f.Get("a")
	if !ok || got.Verdict != "findings" {
		t.Fatalf("replaced entry not visible: %+v (ok=%v)", got, ok)
	}
	if _, ok := f.Get("b"); !ok {
		t.Fatal("replace evicted an unrelated entry")
	}
}

// TestFlightRecorderConcurrent hammers Record/List/Get from many goroutines
// (run under -race by make check): the ring must stay within cap and every
// listed summary must be internally consistent.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := newFlightRecorder(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, row := range f.List() {
					id, _ := row["traceId"].(string)
					f.Get(id)
				}
				if n := f.Len(); n > 8 {
					t.Errorf("ring exceeded its cap: %d", n)
					return
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(entry(fmt.Sprintf("w%d-%03d", w, i)))
			}
		}(w)
	}
	// Writers finish, then readers stand down.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent flight-recorder exercise hung")
	}
	if f.Len() != 8 {
		t.Fatalf("Len = %d after concurrent churn, want 8", f.Len())
	}
}

// TestFlightRecorderEvictionOverHTTP: with FlightEntries 1, a second
// analysis evicts the first recording — its /debug/traces/{id} answers 404
// while the newest trace still resolves.
func TestFlightRecorderEvictionOverHTTP(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 16, FlightEntries: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for _, src := range []string{leakyC, leakyC + "\n// second\n"} {
		resp, data := postAnalyze(t, ts, AnalyzeRequest{Source: src, EDL: leakyEDL}, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, data)
		}
		env := decodeEnvelope(t, data)
		if env.TraceID == "" {
			t.Fatal("executed analysis has no trace ID")
		}
		ids = append(ids, env.TraceID)
	}

	get := func(id string) int {
		resp, err := ts.Client().Get(ts.URL + "/debug/traces/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(ids[0]); code != http.StatusNotFound {
		t.Fatalf("evicted trace answered %d, want 404", code)
	}
	if code := get(ids[1]); code != http.StatusOK {
		t.Fatalf("latest trace answered %d, want 200", code)
	}
	// The listing agrees: exactly one row, the survivor.
	resp, err := ts.Client().Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Traces []map[string]any `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) != 1 || listing.Traces[0]["traceId"] != ids[1] {
		t.Fatalf("listing = %+v, want exactly the surviving trace %s", listing.Traces, ids[1])
	}
}
