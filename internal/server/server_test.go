package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"privacyscope"
	"privacyscope/internal/mlsuite"
)

const leakyC = `
int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
`

const leakyEDL = `
enclave {
    trusted {
        public int enclave_process_data([in] char *secrets, [out] char *output);
    };
};
`

// slowC is a 2^12-path module: long enough that a cancellation arriving
// mid-exploration leaves genuinely partial coverage.
func slowC() string {
	var sb strings.Builder
	sb.WriteString("int slow(char *secrets, char *output)\n{\n    int acc = 0;\n")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&sb, "    if (secrets[%d] > 0) acc = acc + 1; else acc = acc - 1;\n", i)
	}
	sb.WriteString("    output[0] = 7;\n    return 0;\n}\n")
	return sb.String()
}

const slowEDL = `
enclave {
    trusted {
        public int slow([in] char *secrets, [out] char *output);
    };
};
`

func postAnalyze(t *testing.T, ts *httptest.Server, req AnalyzeRequest, query string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/analyze"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeEnvelope(t *testing.T, data []byte) privacyscope.Envelope {
	t.Helper()
	var env privacyscope.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("bad envelope %q: %v", data, err)
	}
	return env
}

// TestAnalyzeSyncAndCacheHit is acceptance criterion (a): a repeated
// identical submission is served from the cache — the hit counter
// increments and no new engine run happens.
func TestAnalyzeSyncAndCacheHit(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4, CacheEntries: 16})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := AnalyzeRequest{Source: leakyC, EDL: leakyEDL}
	resp, data := postAnalyze(t, ts, req, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Privacyscope-Cache"); got != "" {
		t.Errorf("first request cache header = %q, want empty (miss)", got)
	}
	env := decodeEnvelope(t, data)
	if env.Verdict != "findings" || len(env.Findings) != 2 {
		t.Fatalf("verdict=%q findings=%d, want findings/2", env.Verdict, len(env.Findings))
	}
	if env.Engine != privacyscope.Fingerprint() {
		t.Errorf("envelope engine = %q, want %q", env.Engine, privacyscope.Fingerprint())
	}
	if s.metrics.Counter("server.analyses.executed") != 1 {
		t.Fatalf("executed = %d, want 1", s.metrics.Counter("server.analyses.executed"))
	}

	// The identical submission again: cache hit, byte-identical body, no
	// second engine run.
	resp2, data2 := postAnalyze(t, ts, req, "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Privacyscope-Cache"); got != "hit" {
		t.Errorf("repeat cache header = %q, want hit", got)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("cached body differs from original:\n%s\nvs\n%s", data, data2)
	}
	if hits := s.metrics.Counter("server.cache.hits"); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if n := s.metrics.Counter("server.analyses.executed"); n != 1 {
		t.Errorf("executed = %d after repeat, want still 1 (no new engine run)", n)
	}

	// A different option set is a different content address: miss, new run.
	req.Options.NoImplicit = true
	resp3, data3 := postAnalyze(t, ts, req, "")
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp3.StatusCode)
	}
	env3 := decodeEnvelope(t, data3)
	if len(env3.Findings) != 1 {
		t.Errorf("no-implicit findings = %d, want 1", len(env3.Findings))
	}
	if n := s.metrics.Counter("server.analyses.executed"); n != 2 {
		t.Errorf("executed = %d, want 2 (new option set, new analysis)", n)
	}
}

// TestSingleflightDedup is acceptance criterion (b): concurrent identical
// submissions trigger exactly one analysis. The leader is gated inside the
// worker until the followers are provably waiting on its flight call, so
// the assertion cannot race.
func TestSingleflightDedup(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4, CacheEntries: 16})
	defer s.Shutdown(context.Background())
	gate := make(chan struct{})
	keyCh := make(chan string, 1)
	s.hookAnalyzeStart = func(key string) {
		keyCh <- key // the leader announces the in-flight key…
		<-gate       // …and blocks until the test has counted followers
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := AnalyzeRequest{Source: leakyC, EDL: leakyEDL}
	const followers = 3

	var wg sync.WaitGroup
	statuses := make([]int, followers+1)
	bodies := make([][]byte, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postAnalyze(t, ts, req, "")
			statuses[i] = resp.StatusCode
			bodies[i] = data
		}(i)
	}
	// Wait until every follower has joined the leader's in-flight call,
	// then release the leader.
	key := <-keyCh
	deadline := time.Now().Add(10 * time.Second)
	for s.flight.waiting(key) < followers {
		if time.Now().After(deadline) {
			t.Fatalf("followers never joined: waiting=%d", s.flight.waiting(key))
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i, code := range statuses {
		if code != http.StatusOK {
			t.Errorf("request %d status = %d", i, code)
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs", i)
		}
	}
	if n := s.metrics.Counter("server.analyses.executed"); n != 1 {
		t.Errorf("executed = %d, want exactly 1 (singleflight)", n)
	}
	if n := s.metrics.Counter("server.singleflight.shared"); n != followers {
		t.Errorf("shared = %d, want %d", n, followers)
	}
}

// TestQueueFullBackpressure is acceptance criterion (c): a submission
// arriving with all workers busy and the queue full gets 429.
func TestQueueFullBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, CacheEntries: 16})
	defer s.Shutdown(context.Background())
	gate := make(chan struct{})
	s.hookAnalyzeStart = func(string) { <-gate }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Three distinct modules so singleflight cannot merge them.
	mkReq := func(i int) AnalyzeRequest {
		src := strings.Replace(leakyC, "enclave_process_data", fmt.Sprintf("f%d", i), 1)
		iface := strings.Replace(leakyEDL, "enclave_process_data", fmt.Sprintf("f%d", i), 1)
		return AnalyzeRequest{Source: src, EDL: iface}
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); postAnalyze(t, ts, mkReq(0), "") }() // occupies the worker
	waitFor(t, func() bool { return s.sched.InFlight() == 1 })
	go func() { defer wg.Done(); postAnalyze(t, ts, mkReq(1), "") }() // occupies the queue slot
	waitFor(t, func() bool { return s.sched.QueueDepth() == 1 })

	resp, data := postAnalyze(t, ts, mkReq(2), "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429; body %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 must carry Retry-After")
	}
	if n := s.metrics.Counter("server.queue.rejected"); n != 1 {
		t.Errorf("rejected = %d, want 1", n)
	}

	close(gate)
	wg.Wait()
}

// TestGracefulShutdown is acceptance criterion (d): Shutdown cancels
// in-flight jobs, their clients receive fail-soft partial-coverage
// envelopes (206, reason "cancelled"), queued jobs drain the same way, and
// new submissions are refused with 503.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 16})
	gate := make(chan struct{})
	s.hookAnalyzeStart = func(string) { <-gate }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two distinct slow modules (distinct content addresses): one holds
	// the single worker, the other waits in the queue. Both are large
	// enough that a cancelled context truncates them mid-exploration —
	// a module small enough to finish before the engine's first
	// cancellation check legitimately completes during the drain.
	slow := AnalyzeRequest{Source: slowC(), EDL: slowEDL}
	queued := AnalyzeRequest{
		Source: strings.Replace(slowC(), "slow", "slow2", 1),
		EDL:    strings.Replace(slowEDL, "slow", "slow2", 1),
	}

	type outcome struct {
		resp *http.Response
		data []byte
	}
	results := make(chan outcome, 2)
	go func() {
		resp, data := postAnalyze(t, ts, slow, "")
		results <- outcome{resp, data}
	}()
	waitFor(t, func() bool { return s.sched.InFlight() == 1 })
	go func() {
		resp, data := postAnalyze(t, ts, queued, "")
		results <- outcome{resp, data}
	}()
	waitFor(t, func() bool { return s.sched.QueueDepth() == 1 })

	// Begin draining while both jobs are outstanding, then release the
	// gate so the worker proceeds under the now-cancelled base context.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return s.sched.Draining() })
	close(gate)

	for i := 0; i < 2; i++ {
		out := <-results
		if out.resp.StatusCode != http.StatusPartialContent {
			t.Errorf("drained job %d status = %d, want 206; body %s", i, out.resp.StatusCode, out.data)
			continue
		}
		env := decodeEnvelope(t, out.data)
		if env.Verdict != "inconclusive" {
			t.Errorf("drained job %d verdict = %q, want inconclusive", i, env.Verdict)
		}
		for _, f := range env.Functions {
			if !f.Coverage.Truncated || f.Coverage.Reason != privacyscope.TruncCancelled {
				t.Errorf("drained job %d coverage = %+v, want cancelled truncation", i, f.Coverage)
			}
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Cancelled results must not poison the cache.
	if n := s.cache.Len(); n != 0 {
		t.Errorf("cache holds %d cancelled results, want 0", n)
	}

	// The drained daemon refuses new work and reports unhealthy.
	resp, _ := postAnalyze(t, ts, AnalyzeRequest{Source: leakyC, EDL: leakyEDL}, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown status = %d, want 503", resp.StatusCode)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz = %d, want 503 while draining", hresp.StatusCode)
	}
}

// TestAsyncJobLifecycle: 202 + job ID, poll to completion, unknown jobs
// 404, and an async resubmission of a cached module completes immediately.
func TestAsyncJobLifecycle(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4, CacheEntries: 16})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := AnalyzeRequest{Source: leakyC, EDL: leakyEDL}
	resp, data := postAnalyze(t, ts, req, "?async=1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async status = %d, body %s", resp.StatusCode, data)
	}
	var ack struct{ JobId, Status string }
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.JobId == "" {
		t.Fatal("no job id")
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+ack.JobId {
		t.Errorf("Location = %q", loc)
	}

	var final []byte
	deadline := time.Now().Add(30 * time.Second)
	for {
		jr, err := ts.Client().Get(ts.URL + "/v1/jobs/" + ack.JobId)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(jr.Body)
		jr.Body.Close()
		if jr.StatusCode == http.StatusOK {
			final = body
			break
		}
		if jr.StatusCode != http.StatusAccepted {
			t.Fatalf("poll status = %d, body %s", jr.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	env := decodeEnvelope(t, final)
	if env.Verdict != "findings" || len(env.Findings) != 2 {
		t.Errorf("async verdict=%q findings=%d, want findings/2", env.Verdict, len(env.Findings))
	}

	// Async resubmission of the now-cached module: done at POST time.
	resp2, data2 := postAnalyze(t, ts, req, "?async=1")
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("async repeat status = %d", resp2.StatusCode)
	}
	var ack2 struct{ JobId, Status string }
	if err := json.Unmarshal(data2, &ack2); err != nil {
		t.Fatal(err)
	}
	if ack2.Status != jobDone {
		t.Errorf("cached async status = %q, want done", ack2.Status)
	}

	jr, err := ts.Client().Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", jr.StatusCode)
	}
}

// TestMLSuiteThroughServer drives the paper's evaluation modules through
// the daemon end to end: the Recommender's six §VI-D-1 violations arrive
// through HTTP exactly as through the library, and a clean module is 200
// secure.
func TestMLSuiteThroughServer(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, CacheEntries: 16})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postAnalyze(t, ts, AnalyzeRequest{
		Source: mlsuite.RecommenderC,
		EDL:    mlsuite.RecommenderEDL,
	}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Recommender status = %d, body %s", resp.StatusCode, data)
	}
	env := decodeEnvelope(t, data)
	if env.Verdict != "findings" || len(env.Findings) != 6 {
		t.Errorf("Recommender verdict=%q findings=%d, want findings/6", env.Verdict, len(env.Findings))
	}
	if resp.Header.Get("X-Privacyscope-Verdict") != "findings" {
		t.Errorf("verdict header = %q", resp.Header.Get("X-Privacyscope-Verdict"))
	}

	resp, data = postAnalyze(t, ts, AnalyzeRequest{
		Source: mlsuite.FixedRecommenderC,
		EDL:    mlsuite.FixedRecommenderEDL,
	}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("FixedRecommender status = %d, body %s", resp.StatusCode, data)
	}
	env = decodeEnvelope(t, data)
	if env.Verdict != "secure" || !env.Secure {
		t.Errorf("FixedRecommender verdict=%q, want secure", env.Verdict)
	}

	resp, data = postAnalyze(t, ts, AnalyzeRequest{
		Source: mlsuite.LinRegC,
		EDL:    mlsuite.LinRegEDL,
	}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("LinReg status = %d, body %s", resp.StatusCode, data)
	}
}

// TestPRIMLThroughServer: PRIML programs are first-class daemon clients.
func TestPRIMLThroughServer(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, CacheEntries: 4})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postAnalyze(t, ts, AnalyzeRequest{
		Lang:   "priml",
		Source: "h := 2 * get_secret(secret);\ndeclassify(h)",
	}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	env := decodeEnvelope(t, data)
	if env.Verdict != "findings" || len(env.Findings) != 1 || env.Findings[0].Kind != "explicit" {
		t.Errorf("priml envelope = %+v, want one explicit finding", env)
	}

	resp, data = postAnalyze(t, ts, AnalyzeRequest{
		Lang:   "priml",
		Source: "x := get_secret(a) + get_secret(b);\ndeclassify(x)",
	}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	env = decodeEnvelope(t, data)
	if env.Verdict != "secure" {
		t.Errorf("masked priml program verdict = %q, want secure", env.Verdict)
	}
}

// TestRequestValidationAndModuleErrors: 400 for malformed requests, 422
// for unparseable modules — and 422s are content-addressed too.
func TestRequestValidationAndModuleErrors(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, CacheEntries: 4})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON = %d, want 400", resp.StatusCode)
	}

	for _, req := range []AnalyzeRequest{
		{Source: leakyC},                       // minic without EDL
		{Lang: "rust", Source: "fn main() {}"}, // unknown lang
		{Lang: "minic", EDL: leakyEDL},         // no source
	} {
		resp, data := postAnalyze(t, ts, req, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("validate %+v = %d, want 400; body %s", req, resp.StatusCode, data)
		}
	}

	bad := AnalyzeRequest{Source: "int f( {", EDL: leakyEDL}
	resp2, data := postAnalyze(t, ts, bad, "")
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("parse error = %d, want 422; body %s", resp2.StatusCode, data)
	}
	resp3, _ := postAnalyze(t, ts, bad, "")
	if resp3.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("repeat parse error = %d, want 422", resp3.StatusCode)
	}
	if hits := s.metrics.Counter("server.cache.hits"); hits != 1 {
		t.Errorf("module-error cache hits = %d, want 1", hits)
	}
}

// TestHealthzAndMetrics: the health endpoint reports daemon vitals and
// /metrics exposes the obs registry — cache counters, queue gauges, and
// the engine's per-phase latency spans — in Prometheus text form.
func TestHealthzAndMetrics(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, CacheEntries: 4})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postAnalyze(t, ts, AnalyzeRequest{Source: leakyC, EDL: leakyEDL}, "")
	postAnalyze(t, ts, AnalyzeRequest{Source: leakyC, EDL: leakyEDL}, "")

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, health)
	}
	if health["engine"] != privacyscope.Fingerprint() {
		t.Errorf("healthz engine = %v", health["engine"])
	}
	if health["cacheEntries"].(float64) != 1 {
		t.Errorf("cacheEntries = %v, want 1", health["cacheEntries"])
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mbody)
	for _, want := range []string{
		"privacyscope_server_requests 2",
		"privacyscope_server_cache_hits 1",
		"privacyscope_server_cache_misses",
		"privacyscope_server_analyses_executed 1",
		"privacyscope_server_queue_depth",
		"privacyscope_server_jobs_inflight",
		"privacyscope_server_cache_entries 1",
		"privacyscope_check_symexec_count",          // engine per-phase latency
		"privacyscope_server_analyze_seconds_total", // daemon-side latency
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestCacheEviction: the LRU bound holds and evictions are counted.
func TestCacheEviction(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		src := strings.Replace(leakyC, "enclave_process_data", fmt.Sprintf("f%d", i), 1)
		iface := strings.Replace(leakyEDL, "enclave_process_data", fmt.Sprintf("f%d", i), 1)
		resp, data := postAnalyze(t, ts, AnalyzeRequest{Source: src, EDL: iface}, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, data)
		}
	}
	if n := s.cache.Len(); n != 2 {
		t.Errorf("cache len = %d, want 2", n)
	}
	if n := s.metrics.Counter("server.cache.evictions"); n != 1 {
		t.Errorf("evictions = %d, want 1", n)
	}
}

// TestDeadlineDegradesTo206: a per-job deadline produces a 206
// partial-coverage envelope, not an error — and deadline-truncated results
// (unlike cancelled ones) are cacheable.
func TestDeadlineDegradesTo206(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, CacheEntries: 4})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := AnalyzeRequest{Source: slowC(), EDL: slowEDL}
	req.Options.DeadlineMs = 1
	resp, data := postAnalyze(t, ts, req, "")
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status = %d, want 206; body %s", resp.StatusCode, data)
	}
	env := decodeEnvelope(t, data)
	if env.Verdict != "inconclusive" {
		t.Errorf("verdict = %q, want inconclusive", env.Verdict)
	}
	if s.cache.Len() != 1 {
		t.Errorf("deadline-truncated result should cache; len = %d", s.cache.Len())
	}
}

// waitFor polls cond up to 10s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOversizedBodyAnswers413: a request body past the source limit is cut
// by MaxBytesReader and answered with 413 plus a JSON error envelope (and
// the server.requests.toolarge counter) — not a generic 400, and never an
// unbounded read.
func TestOversizedBodyAnswers413(t *testing.T) {
	s := New(Config{Workers: 1, MaxSourceBytes: 1024})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := strings.Repeat("x", 256<<10)
	body := fmt.Sprintf(`{"source":%q,"edl":"e"}`, big)
	resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "exceeds") {
		t.Fatalf("413 body must be a JSON error naming the limit: %q (err %v)", e.Error, err)
	}
	if got := s.metrics.Counter("server.requests.toolarge"); got != 1 {
		t.Fatalf("server.requests.toolarge = %d, want 1", got)
	}

	// A body inside the limit still analyzes fine on the same server.
	resp2, data := postAnalyze(t, ts, AnalyzeRequest{Source: leakyC, EDL: leakyEDL}, "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("in-limit request after a 413 = %d, body %s", resp2.StatusCode, data)
	}
}
