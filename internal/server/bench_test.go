package server

import (
	"strings"
	"testing"
)

// TestServerBench pins the bench table's semantics: the cold row runs the
// engine exactly once with no cache hit, the cached row serves every repeat
// from the cache with zero engine runs, and the concurrent-identical row
// collapses onto a single engine run via singleflight. Run under -race this
// also exercises the daemon's concurrent submission paths.
func TestServerBench(t *testing.T) {
	rows, err := ServerBench()
	if err != nil {
		t.Fatalf("ServerBench: %v", err)
	}
	byMode := map[string]ServerBenchRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}

	cold, ok := byMode["cold"]
	if !ok {
		t.Fatal("missing cold row")
	}
	if cold.EngineRuns != 1 || cold.CacheHits != 0 {
		t.Errorf("cold: engineRuns=%d cacheHits=%d, want 1/0", cold.EngineRuns, cold.CacheHits)
	}

	cached, ok := byMode["cached"]
	if !ok {
		t.Fatal("missing cached row")
	}
	if cached.EngineRuns != 0 {
		t.Errorf("cached: engineRuns=%d, want 0", cached.EngineRuns)
	}
	if cached.CacheHits != int64(cached.Requests) {
		t.Errorf("cached: cacheHits=%d, want %d", cached.CacheHits, cached.Requests)
	}

	ident, ok := byMode["concurrent-identical"]
	if !ok {
		t.Fatal("missing concurrent-identical row")
	}
	// Requests that race the leader share its run via singleflight; any
	// that arrive after it completes are cache hits. Either way the engine
	// runs exactly once.
	if ident.EngineRuns != 1 {
		t.Errorf("concurrent-identical: engineRuns=%d, want 1", ident.EngineRuns)
	}

	distinct, ok := byMode["concurrent-distinct"]
	if !ok {
		t.Fatal("missing concurrent-distinct row")
	}
	if distinct.EngineRuns != int64(distinct.Requests) || distinct.CacheHits != 0 {
		t.Errorf("concurrent-distinct: engineRuns=%d cacheHits=%d, want %d/0",
			distinct.EngineRuns, distinct.CacheHits, distinct.Requests)
	}

	text := RenderServerBench(rows)
	for _, want := range []string{"cold", "cached", "concurrent-identical", "concurrent-distinct", "ms/request"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered bench missing %q:\n%s", want, text)
		}
	}
}
