package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// ocallPtrC/ocallPtrEDL mirror examples/leakpacks/ocallptr_leak: quiet under
// the default detector set (no tainted scalar crosses the boundary), flagged
// by the ocall-pointer pack (the buffer handed to the OCALL holds a
// secret-derived cell).
const ocallPtrC = `
int push_stats(int *secrets, int *output)
{
    int buf[2];
    buf[0] = secrets[0] * 2;
    buf[1] = 5;
    ocall_send(buf);
    output[0] = 0;
    return 0;
}
`

const ocallPtrEDL = `
enclave {
    trusted {
        public int push_stats([in] int *secrets, [out] int *output);
    };
    untrusted {
        void ocall_send([user_check] int *buf);
    };
};
`

// TestDetectorSetInCacheKey pins the daemon half of the cache-key
// participation contract: the detector selection is part of the request's
// content address, so the same module analyzed under two selections runs
// twice, yields different verdicts, and each selection hits only its own
// LRU entry on resubmission.
func TestDetectorSetInCacheKey(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4, CacheEntries: 16})
	defer s.Shutdown(t.Context())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	base := AnalyzeRequest{Source: ocallPtrC, EDL: ocallPtrEDL}
	resp, data := postAnalyze(t, ts, base, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	if env := decodeEnvelope(t, data); env.Verdict != "secure" {
		t.Fatalf("default-set verdict = %q, want secure (pointer escape is pack-only)", env.Verdict)
	}

	withPack := base
	withPack.Options.Detectors = []string{"default", "ocall-pointer"}
	resp2, data2 := postAnalyze(t, ts, withPack, "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp2.StatusCode, data2)
	}
	if got := resp2.Header.Get("X-Privacyscope-Cache"); got != "" {
		t.Fatalf("pack selection served from the default set's cache entry (header %q)", got)
	}
	env2 := decodeEnvelope(t, data2)
	if env2.Verdict != "findings" || len(env2.Findings) != 1 {
		t.Fatalf("pack verdict=%q findings=%d, want findings/1", env2.Verdict, len(env2.Findings))
	}
	if n := s.metrics.Counter("server.analyses.executed"); n != 2 {
		t.Fatalf("executed = %d, want 2 (one per detector selection)", n)
	}

	// Resubmitting each selection hits its own entry, never the other's.
	respB, dataB := postAnalyze(t, ts, base, "")
	respP, dataP := postAnalyze(t, ts, withPack, "")
	if got := respB.Header.Get("X-Privacyscope-Cache"); got != "hit" {
		t.Errorf("default-set resubmit cache header = %q, want hit", got)
	}
	if got := respP.Header.Get("X-Privacyscope-Cache"); got != "hit" {
		t.Errorf("pack-set resubmit cache header = %q, want hit", got)
	}
	if string(dataB) == string(dataP) {
		t.Error("both selections returned the same cached body")
	}
	if env := decodeEnvelope(t, dataB); env.Verdict != "secure" {
		t.Errorf("default-set cached verdict = %q, want secure", env.Verdict)
	}
	if n := s.metrics.Counter("server.analyses.executed"); n != 2 {
		t.Errorf("executed = %d after resubmits, want still 2", n)
	}

	// An unknown detector name is a client error, not a 500 — and is never
	// cached.
	bad := base
	bad.Options.Detectors = []string{"nonsense"}
	respBad, bodyBad := postAnalyze(t, ts, bad, "")
	if respBad.StatusCode != http.StatusUnprocessableEntity && respBad.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown detector status = %d (body %s), want 4xx", respBad.StatusCode, bodyBad)
	}
}
