package batch

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"privacyscope"
	"privacyscope/internal/diskcache"
	"privacyscope/internal/obs"
)

// surface tags batch entries in the cache key. The privacyscoped daemon
// shares the Key layout but stores HTTP results (status + body), not bare
// envelopes; the tag keeps the two entry formats from colliding when they
// share a cache directory.
const surface = "batch"

// Config configures a project run.
type Config struct {
	// Jobs bounds how many units analyze concurrently (≤0: GOMAXPROCS,
	// capped at 8 — module analyses are CPU-bound).
	Jobs int
	// Cache is the persistent result cache; nil disables caching.
	Cache *diskcache.Cache
	// Options are the engine knobs applied to every unit; they
	// participate in each unit's cache key. DeadlineMs bounds each
	// unit's wall clock (fail-soft).
	Options privacyscope.AnalysisOptions
	// DefaultRules is the §V-C rule file applied to units that have no
	// sibling rule file of their own (the CLI's -config in batch mode).
	DefaultRules string
	// Observer receives batch.* counters and the engine telemetry of
	// every non-cached unit (nil: no-op). Must be safe for concurrent
	// use when Jobs > 1 (obs.Metrics is).
	Observer obs.Observer
	// Tracer, when set, records the project timeline: each pool worker
	// gets its own lane (worker 1..N), every unit a span with cache-tier
	// and verdict annotations, and cache-hit/miss markers per unit — the
	// -trace-out view of pool occupancy and stragglers.
	Tracer *obs.Tracer
	// Exec, when non-nil, is the remote execution path: runUnit hands the
	// unit to it instead of the local engine (the coordinator's
	// fleet-dispatch hook, internal/coord). The executor owns cache
	// consultation — in a fleet, each worker's disk tier is the cache and
	// routing decides which tier is warm — while the pool, the span
	// plumbing, panic isolation and the deterministic report stay here.
	Exec ExecFunc
}

// ExecFunc resolves one unit remotely: rules is the unit's effective rule
// file, ob the pool worker's observer (lane-aware when tracing). It must
// return an explicit UnitResult for every call — an executor that cannot
// reach its backend reports the failure in UnitResult.Err, keeping the
// unit's slot in the report.
type ExecFunc func(ctx context.Context, u Unit, rules string, ob obs.Observer) UnitResult

func (c Config) jobs() int {
	if c.Jobs > 0 {
		return c.Jobs
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// UnitResult is one unit's outcome.
type UnitResult struct {
	Unit Unit
	// Envelope is the analysis result; nil when Err is set.
	Envelope *privacyscope.Envelope
	// Cached reports a disk-cache hit (Envelope restored, engine not
	// run).
	Cached bool
	// Err is the module-level failure (unparseable source or EDL, bad
	// rule file, no public ECALLs); per-function failures live inside
	// the envelope instead, per the fail-soft contract.
	Err string
}

// Verdict maps the unit onto the four-valued verdict: a module-level error
// is VerdictError; otherwise the envelope's aggregate.
func (r UnitResult) Verdict() privacyscope.Verdict {
	if r.Err != "" || r.Envelope == nil {
		return privacyscope.VerdictError
	}
	v, _ := privacyscope.ParseVerdict(r.Envelope.Verdict)
	return v
}

// ProjectReport merges the per-unit results of one batch run.
type ProjectReport struct {
	// Root is the discovery root the run was launched on.
	Root string
	// Units holds one result per discovered unit, in Unit.Name order —
	// deterministic regardless of Config.Jobs.
	Units []UnitResult
	// Elapsed is the whole-run wall clock.
	Elapsed time.Duration
}

// rules resolves the effective rule file for a unit.
func (c Config) rules(u Unit) string {
	if u.Rules != "" {
		return u.Rules
	}
	return c.DefaultRules
}

// UnitKey is the unit's disk-cache address: engine fingerprint, surface
// tag, sources, effective rules, and the canonical options JSON. Any
// change to any of them — including a bumped EngineVersion — changes the
// key, which is the cache's entire invalidation story.
func UnitKey(u Unit, rules string, opts privacyscope.AnalysisOptions) string {
	return diskcache.Key(privacyscope.Fingerprint(),
		surface, u.Source, u.EDL, rules, opts.KeyJSON())
}

// Run analyzes every unit and merges the results. The run is fail-soft at
// every level: a unit that fails to parse keeps its slot as an error
// result, a panicking unit is isolated, ctx cancellation (SIGINT, -timeout)
// degrades the remaining units to partial coverage instead of aborting, and
// cache problems of any kind degrade to recomputes. Run itself never
// returns an error — the project report is the error report.
func Run(ctx context.Context, root string, units []Unit, cfg Config) *ProjectReport {
	if ctx == nil {
		ctx = context.Background()
	}
	ob := obs.Or(cfg.Observer)
	if cfg.Tracer != nil {
		ob = obs.Multi(ob, cfg.Tracer)
	}
	start := time.Now()
	span := ob.StartSpan("batch")
	span.Annotate(obs.F("root", root), obs.F("units", fmt.Sprint(len(units))))
	defer span.End()
	ob.Add("batch.units", int64(len(units)))

	rep := &ProjectReport{Root: root, Units: make([]UnitResult, len(units))}
	// A fixed pool of workers pulling indices — rather than a
	// goroutine-per-unit semaphore — so each worker is a stable identity
	// the tracer can assign a timeline lane to.
	nw := cfg.jobs()
	if nw > len(units) && len(units) > 0 {
		nw = len(units)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wob := obs.Or(cfg.Observer)
		if cfg.Tracer != nil {
			wob = obs.Multi(wob, cfg.Tracer.Lane(w+1, fmt.Sprintf("worker %d", w+1)))
		}
		wg.Add(1)
		go func(wob obs.Observer) {
			defer wg.Done()
			for i := range idx {
				rep.Units[i] = runUnit(ctx, units[i], cfg, wob)
			}
		}(wob)
	}
	for i := range units {
		idx <- i
	}
	close(idx)
	wg.Wait()
	rep.Elapsed = time.Since(start)
	return rep
}

// runUnit resolves one unit through the cache or the engine.
func runUnit(ctx context.Context, u Unit, cfg Config, ob obs.Observer) (res UnitResult) {
	res.Unit = u
	sp := ob.StartSpan("batch/unit")
	sp.Annotate(obs.F("unit", u.Name))
	defer func() {
		v := res.Verdict().String()
		sp.Annotate(obs.F("verdict", v))
		ob.Event("batch.unit.done", obs.F("unit", u.Name), obs.F("verdict", v))
		sp.End()
	}()
	// Panic isolation mirrors the facade's per-ECALL guard one level up:
	// a crashing unit (pathological input tripping an engine bug before
	// the per-function guard arms) must not take down the project run.
	defer func() {
		if p := recover(); p != nil {
			ob.Add("batch.units.panics", 1)
			ob.Event("batch.panic",
				obs.F("unit", u.Name), obs.F("panic", fmt.Sprint(p)))
			res.Envelope = nil
			res.Err = fmt.Sprintf("panic during analysis: %v", p)
		}
	}()

	rules := cfg.rules(u)
	if cfg.Exec != nil {
		res = cfg.Exec(ctx, u, rules, ob)
		res.Unit = u
		return res
	}
	key := UnitKey(u, rules, cfg.Options)
	if payload, ok := cfg.Cache.Get(key); ok {
		var env privacyscope.Envelope
		if err := json.Unmarshal(payload, &env); err == nil && env.Engine == privacyscope.Fingerprint() {
			ob.Add("batch.units.cached", 1)
			sp.Annotate(obs.F("cache", "hit"))
			ob.Event("batch.cache.hit", obs.F("unit", u.Name))
			res.Envelope = &env
			res.Cached = true
			return res
		}
		// The frame checksum passed but the envelope does not decode (or
		// names a different engine): treat like corruption — recompute.
		ob.Add("batch.units.undecodable", 1)
		sp.Annotate(obs.F("cache", "undecodable"))
	} else if cfg.Cache != nil {
		sp.Annotate(obs.F("cache", "miss"))
	}
	if cfg.Cache != nil {
		ob.Event("batch.cache.miss", obs.F("unit", u.Name))
	}

	opts := append(cfg.Options.FacadeOptions(), privacyscope.WithObserver(ob))
	if rules != "" {
		opts = append(opts, privacyscope.WithConfigXML([]byte(rules)))
	}
	// Summary mode shares the batch disk cache as its summary tier:
	// summaries key on per-function body hashes, so a unit whose helper
	// changed recomputes only that helper's (and its callers') summaries
	// while the unit-level envelope entry invalidates as a whole.
	if cfg.Options.Summaries && cfg.Cache != nil {
		opts = append(opts, privacyscope.WithSummaryStore(cfg.Cache))
	}
	uctx := ctx
	if cfg.Options.DeadlineMs > 0 {
		var cancel context.CancelFunc
		uctx, cancel = context.WithTimeout(ctx, time.Duration(cfg.Options.DeadlineMs)*time.Millisecond)
		defer cancel()
	}
	start := time.Now()
	enclave, err := privacyscope.AnalyzeEnclaveContext(uctx, u.Source, u.EDL, opts...)
	if err != nil {
		ob.Add("batch.units.errors", 1)
		res.Err = err.Error()
		return res
	}
	ob.Add("batch.units.analyzed", 1)
	env := privacyscope.NewEnvelope(enclave, time.Since(start), nil)
	res.Envelope = &env
	// A cancelled unit would explore further on a rerun without the
	// cancellation — never persist it (the daemon's rule, applied here).
	if !env.Cancelled() {
		if payload, err := json.Marshal(env); err == nil {
			cfg.Cache.Put(key, payload)
		}
	}
	return res
}
