package batch

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacyscope"
	"privacyscope/internal/diskcache"
	"privacyscope/internal/faultinject"
	"privacyscope/internal/obs"
)

const (
	leakC = `int vault_export(int *secrets, int *output)
{
    output[0] = secrets[0] + 4;
    return 0;
}
`
	leakEDL = `enclave {
    trusted {
        public int vault_export([in] int *secrets, [out] int *output);
    };
};
`
	maskC = `int mask_sum(int *secrets, int *output)
{
    output[0] = secrets[0] + secrets[1] + secrets[2];
    return 0;
}
`
	maskEDL = `enclave {
    trusted {
        public int mask_sum([in] int *secrets, [out] int *output);
    };
};
`
	gateC = `int gate_check(int *secrets, int *output)
{
    if (secrets[0] == 7) {
        output[0] = 1;
    } else {
        output[0] = 0;
    }
    return 0;
}
`
	gateEDL = `enclave {
    trusted {
        public int gate_check([in] int *secrets, [out] int *output);
    };
};
`
)

// writeUnit lays one unit's files under dir.
func writeUnit(t *testing.T, dir, base, src, edl string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(filepath.Join(dir, base)), 0o755); err != nil {
		t.Fatal(err)
	}
	if src != "" {
		if err := os.WriteFile(filepath.Join(dir, base+".c"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if edl != "" {
		if err := os.WriteFile(filepath.Join(dir, base+".edl"), []byte(edl), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// projectTree builds the canonical three-unit fixture: one explicit leak,
// one implicit leak, one secure masked aggregate.
func projectTree(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeUnit(t, dir, "vault", leakC, leakEDL)
	writeUnit(t, dir, "gate", gateC, gateEDL)
	writeUnit(t, dir, "sub/masksum", maskC, maskEDL)
	return dir
}

func discover(t *testing.T, dir string) []Unit {
	t.Helper()
	units, err := Discover(dir)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	return units
}

func TestDiscover(t *testing.T) {
	dir := projectTree(t)
	// An unpaired .c (no .edl sibling) is harness code, not a unit.
	writeUnit(t, dir, "helper", "int helper(void) { return 0; }\n", "")
	// A unit with a sibling rule file picks it up.
	writeUnit(t, dir, "ruled", maskC, maskEDL)
	rules := `<sgx><item kind="func_arg"><name>mask_sum</name><arg>0</arg></item></sgx>`
	if err := os.WriteFile(filepath.Join(dir, "ruled.xml"), []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}

	units := discover(t, dir)
	var names []string
	for _, u := range units {
		names = append(names, u.Name)
	}
	want := []string{"gate", "ruled", "sub/masksum", "vault"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("Discover names = %v, want %v", names, want)
	}
	for _, u := range units {
		if u.Source == "" || u.EDL == "" {
			t.Fatalf("unit %s missing content", u.Name)
		}
		if u.Name == "ruled" && u.Rules != rules {
			t.Fatalf("unit ruled did not pick up its rule file: %q", u.Rules)
		}
		if u.Name != "ruled" && u.Rules != "" {
			t.Fatalf("unit %s has unexpected rules", u.Name)
		}
	}
}

// findingsJSON canonicalizes a report's findings for byte comparison:
// unit name → marshaled findings list (DurationMs and metrics excluded by
// construction).
func findingsJSON(t *testing.T, rep *ProjectReport) string {
	t.Helper()
	type unitFindings struct {
		Name     string                         `json:"name"`
		Verdict  string                         `json:"verdict"`
		Findings []privacyscope.EnvelopeFinding `json:"findings"`
	}
	var all []unitFindings
	for _, u := range rep.Units {
		uf := unitFindings{Name: u.Unit.Name, Verdict: u.Verdict().String()}
		if u.Envelope != nil {
			uf.Findings = u.Envelope.Findings
		}
		all = append(all, uf)
	}
	b, err := json.Marshal(all)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunDifferential is the cached-vs-uncached differential: the same
// project run with no cache, with a cold cache, and with a warm cache must
// produce byte-identical findings and verdicts.
func TestRunDifferential(t *testing.T) {
	dir := projectTree(t)
	units := discover(t, dir)

	uncached := Run(context.Background(), dir, units, Config{Jobs: 2})

	cache, err := diskcache.Open(diskcache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cold := Run(context.Background(), dir, units, Config{Jobs: 2, Cache: cache})
	warm := Run(context.Background(), dir, units, Config{Jobs: 2, Cache: cache})

	want := findingsJSON(t, uncached)
	if got := findingsJSON(t, cold); got != want {
		t.Errorf("cold cached run diverged from uncached run:\n got %s\nwant %s", got, want)
	}
	if got := findingsJSON(t, warm); got != want {
		t.Errorf("warm cached run diverged from uncached run:\n got %s\nwant %s", got, want)
	}

	for _, u := range cold.Units {
		if u.Cached {
			t.Errorf("cold run served %s from cache", u.Unit.Name)
		}
	}
	for _, u := range warm.Units {
		if !u.Cached {
			t.Errorf("warm run recomputed %s", u.Unit.Name)
		}
	}
	if uncached.Verdict() != privacyscope.VerdictFindings {
		t.Fatalf("fixture verdict = %s, want findings", uncached.Verdict())
	}
	if warm.Verdict() != uncached.Verdict() {
		t.Fatalf("warm verdict %s != uncached %s", warm.Verdict(), uncached.Verdict())
	}
}

// copyTree copies the checked-in examples/project tree into a writable
// temp dir.
func copyTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying %s: %v", src, err)
	}
	return dst
}

// TestIncrementalRerun is the acceptance pin: after a cold run over the
// examples/project tree, modifying ONE unit and rerunning must analyze
// only that unit — at least 5× fewer engine analyses than the cold run —
// with the savings visible on the diskcache hit counters.
func TestIncrementalRerun(t *testing.T) {
	root := copyTree(t, filepath.Join("..", "..", "examples", "project"))
	cacheDir := t.TempDir()

	run := func() (*ProjectReport, *obs.Metrics) {
		m := obs.NewMetrics()
		cache, err := diskcache.Open(diskcache.Config{Dir: cacheDir, Observer: m})
		if err != nil {
			t.Fatal(err)
		}
		units := discover(t, root)
		rep := Run(context.Background(), root, units, Config{Cache: cache, Observer: m})
		return rep, m
	}

	cold, coldM := run()
	coldAnalyses := coldM.Counter("batch.units.analyzed")
	if int(coldAnalyses) != len(cold.Units) {
		t.Fatalf("cold run analyzed %d of %d units", coldAnalyses, len(cold.Units))
	}
	if len(cold.Units) < 6 {
		t.Fatalf("examples/project has %d units; need ≥6 for the 5× bound", len(cold.Units))
	}

	// Modify one function in one unit.
	target := filepath.Join(root, "vault.c")
	src, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	modified := strings.Replace(string(src), "secrets[0] + 4", "secrets[0] + 11", 1)
	if modified == string(src) {
		t.Fatal("modification did not apply")
	}
	if err := os.WriteFile(target, []byte(modified), 0o644); err != nil {
		t.Fatal(err)
	}

	warm, warmM := run()
	warmAnalyses := warmM.Counter("batch.units.analyzed")
	if warmAnalyses != 1 {
		t.Fatalf("warm run analyzed %d units, want exactly the 1 modified", warmAnalyses)
	}
	if hits := warmM.Counter("diskcache.hits"); int(hits) != len(warm.Units)-1 {
		t.Fatalf("diskcache.hits = %d on warm run, want %d", hits, len(warm.Units)-1)
	}
	if coldAnalyses < 5*warmAnalyses {
		t.Fatalf("cold/warm analysis ratio %d/%d < 5×", coldAnalyses, warmAnalyses)
	}
	if cold.Verdict() != warm.Verdict() {
		t.Fatalf("verdict changed across rerun: %s → %s", cold.Verdict(), warm.Verdict())
	}
}

// TestFaultInjectionDegradesToRecompute arms disk-full, short-write and
// corrupt-entry faults under a batch run: the run's verdicts must be
// identical to a fault-free run (a cache problem never fails an analysis),
// and the next run must detect the damaged entries, count them corrupt,
// and recompute exactly those units.
func TestFaultInjectionDegradesToRecompute(t *testing.T) {
	dir := projectTree(t)
	units := discover(t, dir)

	clean := Run(context.Background(), dir, units, Config{Jobs: 1})
	want := findingsJSON(t, clean)

	m := obs.NewMetrics()
	ffs := faultinject.NewDiskFS(nil).FailWriteAt(1).ShortWriteAt(2).CorruptAt(3)
	cache, err := diskcache.Open(diskcache.Config{Dir: t.TempDir(), FS: ffs, Observer: m})
	if err != nil {
		t.Fatal(err)
	}
	// Jobs: 1 makes the write order deterministic (unit order), so fault
	// ordinals 1..3 land on vault→gate→sub/masksum... which is Units order.
	cfg := Config{Jobs: 1, Cache: cache, Observer: m}

	faulty := Run(context.Background(), dir, units, cfg)
	if got := findingsJSON(t, faulty); got != want {
		t.Errorf("findings diverged under disk faults:\n got %s\nwant %s", got, want)
	}
	if faulty.Verdict() != clean.Verdict() {
		t.Errorf("verdict under faults = %s, want %s", faulty.Verdict(), clean.Verdict())
	}
	if tripped := ffs.Tripped(); tripped != 3 {
		t.Fatalf("faults tripped = %d, want 3", tripped)
	}
	if errs := m.Counter("diskcache.errors"); errs != 1 {
		t.Errorf("diskcache.errors = %d after disk-full, want 1", errs)
	}

	// Second run: the disk-full unit simply missed (nothing persisted);
	// the short-write and corrupt-entry units must be detected as corrupt
	// and recomputed. No unit may fail.
	m2 := obs.NewMetrics()
	cache2, err := diskcache.Open(diskcache.Config{Dir: cache.Dir(), Observer: m2})
	if err != nil {
		t.Fatal(err)
	}
	second := Run(context.Background(), dir, units, Config{Jobs: 1, Cache: cache2, Observer: m2})
	if got := findingsJSON(t, second); got != want {
		t.Errorf("findings diverged on post-fault rerun:\n got %s\nwant %s", got, want)
	}
	if corrupt := m2.Counter("diskcache.corrupt"); corrupt != 2 {
		t.Errorf("diskcache.corrupt = %d on rerun, want 2 (short write + byte flip)", corrupt)
	}
	if analyzed := m2.Counter("batch.units.analyzed"); analyzed != 3 {
		t.Errorf("rerun analyzed %d units, want 3 (disk-full + 2 corrupt)", analyzed)
	}
	for _, u := range second.Units {
		if u.Err != "" {
			t.Errorf("unit %s failed after cache faults: %s", u.Unit.Name, u.Err)
		}
	}

	// Third run: the recomputes re-persisted clean entries, so everything
	// now hits.
	m3 := obs.NewMetrics()
	cache3, err := diskcache.Open(diskcache.Config{Dir: cache.Dir(), Observer: m3})
	if err != nil {
		t.Fatal(err)
	}
	Run(context.Background(), dir, units, Config{Jobs: 1, Cache: cache3, Observer: m3})
	if cached := m3.Counter("batch.units.cached"); int(cached) != len(units) {
		t.Errorf("third run served %d of %d units from cache", cached, len(units))
	}
}

// heavyC needs thousands of engine steps, so a cancelled context truncates
// it (the engine polls ctx every 32 steps; the trivial fixtures finish
// inside one interval and would legitimately complete — and cache).
const (
	heavyC = `int heavy(int *secrets, int *output)
{
    int i = 0;
    int acc = 0;
    while (i < 2000) { acc = acc + i; i++; }
    output[0] = 7;
    return 0;
}
`
	heavyEDL = `enclave {
    trusted {
        public int heavy([in] int *secrets, [out] int *output);
    };
};
`
)

// TestCancelledEnvelopesNotCached pins the daemon's rule at the batch
// layer: a unit truncated by ctx cancellation must not be persisted, so a
// rerun without the cancellation explores in full.
func TestCancelledEnvelopesNotCached(t *testing.T) {
	dir := t.TempDir()
	writeUnit(t, dir, "heavy", heavyC, heavyEDL)
	units := discover(t, dir)
	cache, err := diskcache.Open(diskcache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the heavy unit degrades to partial coverage
	rep := Run(ctx, dir, units, Config{Jobs: 1, Cache: cache})
	if v := rep.Units[0].Verdict(); v != privacyscope.VerdictInconclusive {
		t.Fatalf("cancelled heavy unit verdict = %s, want inconclusive", v)
	}
	if env := rep.Units[0].Envelope; env == nil || !env.Cancelled() {
		t.Fatal("cancelled heavy unit envelope does not report cancellation")
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("cancelled run persisted %d entries, want 0", n)
	}

	m := obs.NewMetrics()
	cache2, err := diskcache.Open(diskcache.Config{Dir: cache.Dir(), Observer: m})
	if err != nil {
		t.Fatal(err)
	}
	full := Run(context.Background(), dir, units, Config{Jobs: 1, Cache: cache2, Observer: m})
	if m.Counter("batch.units.cached") != 0 {
		t.Fatal("rerun hit cache entries a cancelled run should not have written")
	}
	if full.Verdict() != privacyscope.VerdictSecure {
		t.Fatalf("full rerun verdict = %s, want secure", full.Verdict())
	}
	// The full run's complete envelope DID persist.
	if cache2.Len() != 1 {
		t.Fatalf("full rerun persisted %d entries, want 1", cache2.Len())
	}
}

// TestModuleErrorKeepsSlot pins the fail-soft shape: a unit that cannot
// parse keeps its report slot as an error result and does not poison the
// aggregate beyond VerdictError dominance rules.
func TestModuleErrorKeepsSlot(t *testing.T) {
	dir := t.TempDir()
	writeUnit(t, dir, "broken", "int broken( {{{\n", leakEDL)
	writeUnit(t, dir, "masksum", maskC, maskEDL)
	units := discover(t, dir)
	if len(units) != 2 {
		t.Fatalf("discovered %d units, want 2", len(units))
	}
	m := obs.NewMetrics()
	rep := Run(context.Background(), dir, units, Config{Observer: m})
	if rep.Units[0].Err == "" {
		t.Fatal("broken unit did not surface its module error")
	}
	if rep.Units[0].Verdict() != privacyscope.VerdictError {
		t.Fatalf("broken unit verdict = %s, want error", rep.Units[0].Verdict())
	}
	if rep.Units[1].Verdict() != privacyscope.VerdictSecure {
		t.Fatalf("intact unit verdict = %s, want secure", rep.Units[1].Verdict())
	}
	if rep.Verdict() != privacyscope.VerdictError {
		t.Fatalf("aggregate = %s, want error (error dominates secure)", rep.Verdict())
	}
	if m.Counter("batch.units.errors") != 1 {
		t.Fatalf("batch.units.errors = %d, want 1", m.Counter("batch.units.errors"))
	}
	stats := rep.Stats()
	if stats.Errors != 1 || stats.Units != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}
