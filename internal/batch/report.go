package batch

import (
	"fmt"
	"strings"
	"time"

	"privacyscope"
)

// Stats summarizes how a run's units were resolved.
type Stats struct {
	// Units is the total unit count.
	Units int `json:"units"`
	// Cached units were served from the persistent cache.
	Cached int `json:"cached"`
	// Analyzed units ran the engine.
	Analyzed int `json:"analyzed"`
	// Errors counts module-level unit failures.
	Errors int `json:"errors"`
	// Findings totals violations across all units.
	Findings int `json:"findings"`
}

// Stats computes the run summary.
func (r *ProjectReport) Stats() Stats {
	s := Stats{Units: len(r.Units)}
	for _, u := range r.Units {
		switch {
		case u.Err != "":
			s.Errors++
		case u.Cached:
			s.Cached++
		default:
			s.Analyzed++
		}
		if u.Envelope != nil {
			s.Findings += len(u.Envelope.Findings)
		}
	}
	return s
}

// Verdict aggregates the per-unit verdicts with the facade's dominance
// order: findings anywhere dominate (a leak is a leak no matter how clean
// the sibling units are), then error, then inconclusive, then secure.
func (r *ProjectReport) Verdict() privacyscope.Verdict {
	agg := privacyscope.VerdictSecure
	for _, u := range r.Units {
		if v := u.Verdict(); v > agg {
			agg = v
		}
	}
	return agg
}

// Secure reports whether every unit was proved free of violations.
func (r *ProjectReport) Secure() bool {
	return r.Verdict() == privacyscope.VerdictSecure
}

// Render formats the project report: one summary line per unit (in
// deterministic Name order), each unit's findings, and the aggregate
// verdict. The rendering is stable across Config.Jobs values and contains
// no timings, so it goldens cleanly.
func (r *ProjectReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "PrivacyScope project report — %d units\n", len(r.Units))
	nameW := 4
	for _, u := range r.Units {
		if len(u.Unit.Name) > nameW {
			nameW = len(u.Unit.Name)
		}
	}
	for _, u := range r.Units {
		tag := ""
		if u.Cached {
			tag = "  [cached]"
		}
		switch {
		case u.Err != "":
			fmt.Fprintf(&sb, "  %-*s  error: %s\n", nameW, u.Unit.Name, u.Err)
		default:
			fmt.Fprintf(&sb, "  %-*s  %-12s  %d findings%s\n",
				nameW, u.Unit.Name, u.Envelope.Verdict, len(u.Envelope.Findings), tag)
		}
	}
	for _, u := range r.Units {
		if u.Envelope == nil || len(u.Envelope.Findings) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "\nunit %s:\n", u.Unit.Name)
		for _, f := range u.Envelope.Findings {
			fmt.Fprintf(&sb, "  [%s] %s\n", f.Function, f.Message)
		}
	}
	s := r.Stats()
	fmt.Fprintf(&sb, "\nverdict: %s — %d units (%d cached, %d analyzed, %d errors), %d findings\n",
		r.Verdict(), s.Units, s.Cached, s.Analyzed, s.Errors, s.Findings)
	return sb.String()
}

// ProjectUnit is one unit in the machine-readable project envelope.
type ProjectUnit struct {
	Name    string `json:"name"`
	Verdict string `json:"verdict"`
	Cached  bool   `json:"cached"`
	Error   string `json:"error,omitempty"`
	// Envelope is the unit's full per-module envelope (nil on
	// module-level error) — the identical shape `privacyscope -json`
	// emits for a single module.
	Envelope *privacyscope.Envelope `json:"envelope,omitempty"`
}

// ProjectEnvelope is the machine-readable batch result: the `-dir -json`
// CLI output.
type ProjectEnvelope struct {
	Root       string                        `json:"root"`
	Engine     string                        `json:"engine"`
	Verdict    string                        `json:"verdict"`
	Secure     bool                          `json:"secure"`
	Stats      Stats                         `json:"stats"`
	Units      []ProjectUnit                 `json:"units"`
	DurationMs float64                       `json:"durationMs"`
	Metrics    *privacyscope.MetricsSnapshot `json:"metrics,omitempty"`
	// TraceID names the project timeline recorded when the run was traced
	// (-trace-out); the trace itself is the Chrome trace-event file, not
	// an embedded tree — project timelines are too large to inline.
	TraceID string `json:"traceId,omitempty"`
}

// Envelope flattens the report. The metrics snapshot is attached when
// metrics is non-nil.
func (r *ProjectReport) Envelope(metrics *privacyscope.Metrics) ProjectEnvelope {
	env := ProjectEnvelope{
		Root:       r.Root,
		Engine:     privacyscope.Fingerprint(),
		Verdict:    r.Verdict().String(),
		Secure:     r.Secure(),
		Stats:      r.Stats(),
		Units:      []ProjectUnit{},
		DurationMs: float64(r.Elapsed.Nanoseconds()) / float64(time.Millisecond),
	}
	for _, u := range r.Units {
		env.Units = append(env.Units, ProjectUnit{
			Name:     u.Unit.Name,
			Verdict:  u.Verdict().String(),
			Cached:   u.Cached,
			Error:    u.Err,
			Envelope: u.Envelope,
		})
	}
	if metrics != nil {
		snap := metrics.Snapshot()
		env.Metrics = &snap
	}
	return env
}
