package batch

import (
	"reflect"
	"strings"
	"testing"

	"privacyscope"
	"privacyscope/internal/diskcache"
)

func baseUnit() Unit {
	return Unit{
		Name:   "u",
		Source: "int f(int *secrets, int *output) { return 0; }",
		EDL:    "enclave { trusted { public int f([in] int *secrets, [out] int *output); }; };",
	}
}

// mutateField returns a copy of opts with field i set to a non-zero value,
// or fails the test for a field kind it does not know how to set — forcing
// whoever adds a new Options field shape to teach this test about it.
func mutateField(t *testing.T, opts privacyscope.AnalysisOptions, i int) privacyscope.AnalysisOptions {
	t.Helper()
	v := reflect.ValueOf(&opts).Elem()
	f := v.Field(i)
	switch f.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		f.SetInt(f.Int() + 7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		f.SetUint(f.Uint() + 7)
	case reflect.Bool:
		f.SetBool(!f.Bool())
	case reflect.String:
		f.SetString(f.String() + "-mutated")
	case reflect.Float32, reflect.Float64:
		f.SetFloat(f.Float() + 7)
	case reflect.Slice:
		if f.Type().Elem().Kind() != reflect.String {
			t.Fatalf("field %s: slice of %s — teach mutateField how to set it",
				v.Type().Field(i).Name, f.Type().Elem().Kind())
		}
		f.Set(reflect.Append(f, reflect.ValueOf("mutated")))
	default:
		t.Fatalf("field %s has kind %s — teach mutateField (and verify KeyJSON covers it)",
			v.Type().Field(i).Name, f.Kind())
	}
	return opts
}

// TestUnitKeySoundness is the cache-key soundness property: any change to
// any AnalysisOptions field, to the sources, to the interface, or to the
// rules must change the unit's cache key. The field walk is reflective, so
// a newly added Options field that is forgotten in the key (e.g. tagged
// `json:"-"`) fails here instead of silently sharing cache entries.
func TestUnitKeySoundness(t *testing.T) {
	u := baseUnit()
	var zero privacyscope.AnalysisOptions
	keys := map[string]string{"<zero>": UnitKey(u, "", zero)}
	record := func(label, key string) {
		t.Helper()
		for prev, k := range keys {
			if k == key {
				t.Errorf("mutation %q produced the same key as %q — not in the cache key", label, prev)
			}
		}
		keys[label] = key
	}

	typ := reflect.TypeOf(zero)
	if typ.NumField() == 0 {
		t.Fatal("AnalysisOptions has no fields — reflection walk broken")
	}
	for i := 0; i < typ.NumField(); i++ {
		field := typ.Field(i)
		if !field.IsExported() {
			t.Fatalf("AnalysisOptions field %s is unexported and invisible to KeyJSON", field.Name)
		}
		if strings.HasPrefix(field.Tag.Get("json"), "-") {
			t.Fatalf("AnalysisOptions field %s is tagged json:%q and would not reach the cache key",
				field.Name, field.Tag.Get("json"))
		}
		record("Options."+field.Name, UnitKey(u, "", mutateField(t, zero, i)))
	}

	src := u
	src.Source += "\nint g(void) { return 1; }"
	record("Source", UnitKey(src, "", zero))

	edl := u
	edl.EDL = strings.Replace(edl.EDL, "public int f", "public int h", 1)
	record("EDL", UnitKey(edl, "", zero))

	record("Rules", UnitKey(u, `<sgx><item kind="func_arg"><name>f</name><arg>0</arg></item></sgx>`, zero))

	// Engine fingerprint heads every key: a different fingerprint must
	// yield a different key even with identical inputs (an upgraded engine
	// can never serve a stale result). The fingerprint is a compile-time
	// constant, so the property is asserted on the Key primitive directly.
	if diskcache.Key("engine-a", "x") == diskcache.Key("engine-b", "x") {
		t.Error("engine fingerprint does not participate in the key")
	}
}

// TestUnitKeyDeterministic pins that the key is stable across calls and
// across value copies — a nondeterministic key would make the cache useless.
func TestUnitKeyDeterministic(t *testing.T) {
	u := baseUnit()
	opts := privacyscope.AnalysisOptions{LoopBound: 5, KnownInputs: []string{"a", "b"}}
	k1 := UnitKey(u, "rules", opts)
	k2 := UnitKey(u, "rules", opts)
	if k1 != k2 {
		t.Fatalf("UnitKey not deterministic: %s != %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("UnitKey is not a sha256 hex address: %q", k1)
	}
}

// TestUnitKeyUsesEngineFingerprint pins that the current engine fingerprint
// is folded in: recomputing the key through the Key primitive with the
// documented part layout must reproduce UnitKey exactly. If UnitKey's
// layout drifts from the documentation, this fails.
func TestUnitKeyUsesEngineFingerprint(t *testing.T) {
	u := baseUnit()
	opts := privacyscope.AnalysisOptions{MaxPaths: 3}
	want := diskcache.Key(privacyscope.Fingerprint(),
		"batch", u.Source, u.EDL, "rules", opts.KeyJSON())
	if got := UnitKey(u, "rules", opts); got != want {
		t.Fatalf("UnitKey layout drifted from documented composition:\n got %s\nwant %s", got, want)
	}
}
