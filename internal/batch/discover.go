// Package batch is the project-scale analysis driver: it discovers every
// (source, EDL, rules) analysis unit under a directory tree, shards the
// units across a bounded worker pool with the fail-soft context plumbing of
// the facade, consults the persistent result cache (internal/diskcache) per
// unit, and merges the per-unit envelopes into one project report with an
// aggregate four-valued verdict.
//
// The cache makes reruns incremental: a project where one unit changed
// recomputes that unit and serves every other from disk, so rerun cost is
// proportional to the change, not the project. See docs/BATCH.md.
package batch

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one discovered analysis unit: an enclave source with its
// interface file and optional rule file.
type Unit struct {
	// Name identifies the unit in reports: the source path relative to
	// the discovery root, slash-separated, without the .c extension.
	Name string
	// Source, EDL and Rules are the file contents (Rules empty when the
	// unit has no rule file).
	Source string
	EDL    string
	Rules  string
	// SourcePath, EDLPath and RulesPath locate the files (RulesPath
	// empty when absent).
	SourcePath string
	EDLPath    string
	RulesPath  string
}

// Discover walks root and pairs every *.c file with its same-basename
// *.edl sibling (a .c without an .edl is not an analysis unit and is
// skipped — headers, harness code). An optional same-basename *.xml is the
// unit's §V-C rule file. Units come back sorted by Name so downstream
// processing is deterministic regardless of filesystem order.
func Discover(root string) ([]Unit, error) {
	var units []Unit
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".c") {
			return nil
		}
		base := strings.TrimSuffix(path, ".c")
		edlPath := base + ".edl"
		if _, err := os.Stat(edlPath); err != nil {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("batch: %w", err)
		}
		edl, err := os.ReadFile(edlPath)
		if err != nil {
			return fmt.Errorf("batch: %w", err)
		}
		u := Unit{
			Source:     string(src),
			EDL:        string(edl),
			SourcePath: path,
			EDLPath:    edlPath,
		}
		if rules, err := os.ReadFile(base + ".xml"); err == nil {
			u.Rules = string(rules)
			u.RulesPath = base + ".xml"
		}
		rel, err := filepath.Rel(root, base)
		if err != nil {
			rel = base
		}
		u.Name = filepath.ToSlash(rel)
		units = append(units, u)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	sort.Slice(units, func(i, j int) bool { return units[i].Name < units[j].Name })
	return units, nil
}
