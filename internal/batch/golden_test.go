package batch

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacyscope/internal/diskcache"
)

func openCache(t *testing.T) *diskcache.Cache {
	t.Helper()
	c, err := diskcache.Open(diskcache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("diskcache.Open: %v", err)
	}
	return c
}

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTree is the fixture for the rendering goldens: the three canonical
// units plus a broken one, so the golden freezes the error line too.
func goldenTree(t *testing.T) string {
	t.Helper()
	dir := projectTree(t)
	writeUnit(t, dir, "broken", "int broken( {{{\n", leakEDL)
	return dir
}

// scrub zeroes the nondeterministic parts of a report in place: wall
// clocks and the temp-dir root. Verdicts, findings, ordering, and cached
// tags — everything the golden is meant to freeze — are untouched.
func scrub(rep *ProjectReport) {
	rep.Root = "<root>"
	rep.Elapsed = 0
	for i := range rep.Units {
		if env := rep.Units[i].Envelope; env != nil {
			env.DurationMs = 0
		}
	}
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run: go test ./internal/batch -run TestGolden -update): %v", path, err)
	}
	if string(want) != string(got) {
		t.Errorf("output diverged from %s — if intentional, regenerate with -update\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestGoldenProjectReport freezes the batch CLI's human-readable project
// report and its machine-readable -json envelope, and pins that both are
// byte-identical regardless of worker count (deterministic unit ordering).
func TestGoldenProjectReport(t *testing.T) {
	dir := goldenTree(t)
	units := discover(t, dir)

	render := make(map[int]string)
	envJSON := make(map[int]string)
	for _, jobs := range []int{1, 8} {
		rep := Run(context.Background(), dir, units, Config{Jobs: jobs})
		scrub(rep)
		render[jobs] = rep.Render()
		b, err := json.MarshalIndent(rep.Envelope(nil), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		envJSON[jobs] = string(b) + "\n"
	}
	if render[1] != render[8] {
		t.Errorf("Render differs between -jobs 1 and -jobs 8:\n%s\n---\n%s", render[1], render[8])
	}
	if envJSON[1] != envJSON[8] {
		t.Error("JSON envelope differs between -jobs 1 and -jobs 8")
	}

	checkGolden(t, filepath.Join("testdata", "golden", "report.txt"), []byte(render[1]))
	checkGolden(t, filepath.Join("testdata", "golden", "report.json"), []byte(envJSON[1]))
}

// TestGoldenCachedRendering freezes the [cached] markers: a warm run over
// the same tree renders identically except for the cached tags and the
// cached/analyzed counts in the trailer.
func TestGoldenCachedRendering(t *testing.T) {
	dir := goldenTree(t)
	units := discover(t, dir)
	cache := openCache(t)
	Run(context.Background(), dir, units, Config{Jobs: 1, Cache: cache})
	warm := Run(context.Background(), dir, units, Config{Jobs: 1, Cache: cache})
	scrub(warm)
	checkGolden(t, filepath.Join("testdata", "golden", "report_warm.txt"), []byte(warm.Render()))

	// Sanity on the frozen shape: every non-error unit is tagged.
	out := warm.Render()
	if strings.Count(out, "[cached]") != 3 {
		t.Errorf("warm render has %d [cached] tags, want 3:\n%s", strings.Count(out, "[cached]"), out)
	}
}
