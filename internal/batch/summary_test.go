package batch

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"privacyscope"
)

// TestGoldenProjectReportSummaryMode is the batch half of the summary
// differential suite: a project run with Options.Summaries must reproduce
// the inline-mode goldens byte for byte (report text and JSON envelope),
// and stay jobs-invariant. The envelope is mode-agnostic on purpose —
// summaries change how calls are resolved, never what is reported.
func TestGoldenProjectReportSummaryMode(t *testing.T) {
	dir := goldenTree(t)
	units := discover(t, dir)

	render := make(map[int]string)
	envJSON := make(map[int]string)
	for _, jobs := range []int{1, 8} {
		rep := Run(context.Background(), dir, units, Config{
			Jobs:    jobs,
			Options: privacyscope.AnalysisOptions{Summaries: true},
		})
		scrub(rep)
		render[jobs] = rep.Render()
		b, err := json.MarshalIndent(rep.Envelope(nil), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		envJSON[jobs] = string(b) + "\n"
	}
	if render[1] != render[8] {
		t.Errorf("summary-mode Render differs between -jobs 1 and -jobs 8:\n%s\n---\n%s",
			render[1], render[8])
	}
	if envJSON[1] != envJSON[8] {
		t.Error("summary-mode JSON envelope differs between -jobs 1 and -jobs 8")
	}

	// The inline-mode goldens are the oracle: never -update from here.
	checkGolden(t, filepath.Join("testdata", "golden", "report.txt"), []byte(render[1]))
	checkGolden(t, filepath.Join("testdata", "golden", "report.json"), []byte(envJSON[1]))
}

// TestSummaryModeSharesBatchCacheTier pins that a summary-mode batch run
// wires the project disk cache in as the summary store: the second run hits
// the unit tier, and a run over an edited tree still finds the unchanged
// functions' summaries warm (summary keys are per-function, not per-unit).
func TestSummaryModeSharesBatchCacheTier(t *testing.T) {
	dir := projectTree(t)
	units := discover(t, dir)
	cache := openCache(t)
	cfg := Config{
		Jobs:    1,
		Cache:   cache,
		Options: privacyscope.AnalysisOptions{Summaries: true},
	}

	cold := Run(context.Background(), dir, units, cfg)
	for _, u := range cold.Units {
		if u.Err != "" {
			t.Fatalf("cold run unit %s failed: %s", u.Unit.Name, u.Err)
		}
	}
	warm := Run(context.Background(), dir, units, cfg)
	for _, u := range warm.Units {
		if !u.Cached {
			t.Fatalf("warm run unit %s not served from cache", u.Unit.Name)
		}
	}
}
