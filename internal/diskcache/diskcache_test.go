package diskcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacyscope/internal/obs"
)

func openTemp(t *testing.T, maxBytes int64) (*Cache, *obs.Metrics) {
	t.Helper()
	m := obs.NewMetrics()
	c, err := Open(Config{Dir: t.TempDir(), MaxBytes: maxBytes, Observer: m})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c, m
}

func TestPutGetRoundtrip(t *testing.T) {
	c, m := openTemp(t, 0)
	key := Key("engine", "src", "edl")
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	payload := []byte(`{"verdict":"secure"}`)
	c.Put(key, payload)
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
	if h, mi, p := m.Counter("diskcache.hits"), m.Counter("diskcache.misses"), m.Counter("diskcache.puts"); h != 1 || mi != 1 || p != 1 {
		t.Fatalf("counters hits=%d misses=%d puts=%d, want 1/1/1", h, mi, p)
	}
}

func TestPutReplacesEntry(t *testing.T) {
	c, _ := openTemp(t, 0)
	key := Key("engine", "unit")
	c.Put(key, []byte("first"))
	c.Put(key, []byte("second"))
	got, ok := c.Get(key)
	if !ok || string(got) != "second" {
		t.Fatalf("got %q ok=%v, want %q", got, ok, "second")
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d after re-put, want 1", n)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	c.Put("deadbeef", []byte("x")) // must not panic
	if _, ok := c.Get("deadbeef"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 || c.SizeBytes() != 0 || c.Dir() != "" {
		t.Fatal("nil cache reported non-zero stats")
	}
}

func TestKeyFraming(t *testing.T) {
	// Length framing: shifting bytes between adjacent parts must change
	// the key, so no two distinct part lists collide by concatenation.
	if Key("e", "ab", "c") == Key("e", "a", "bc") {
		t.Fatal(`Key("e","ab","c") == Key("e","a","bc")`)
	}
	if Key("e", "x") == Key("ex") {
		t.Fatal("engine/part boundary not framed")
	}
	if Key("e", "x") != Key("e", "x") {
		t.Fatal("Key not deterministic")
	}
}

func TestHostileKeyCannotEscapeDir(t *testing.T) {
	c, _ := openTemp(t, 0)
	for _, key := range []string{
		"../escape", "..", "a/b", strings.Repeat("ab", 200), "UPPER", "",
	} {
		c.Put(key, []byte("x"))
		if _, ok := c.Get(key); !ok {
			t.Fatalf("key %q did not roundtrip after rekey", key)
		}
	}
	des, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if filepath.Ext(de.Name()) != entryExt {
			t.Fatalf("unexpected file in cache dir: %q", de.Name())
		}
	}
	if parent, err := os.ReadDir(filepath.Dir(c.Dir())); err == nil {
		for _, de := range parent {
			if !de.IsDir() {
				t.Fatalf("file escaped the cache dir: %q", de.Name())
			}
		}
	}
}

// corruptions maps a scenario name to a mutation of a valid entry file.
var corruptions = map[string]func([]byte) []byte{
	"truncated":     func(b []byte) []byte { return b[:len(b)/2] },
	"bitflip":       func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b },
	"empty":         func([]byte) []byte { return nil },
	"no-newline":    func([]byte) []byte { return []byte("psdc1 deadbeef 4") },
	"bad-magic":     func(b []byte) []byte { return append([]byte("junk!"), b[5:]...) },
	"bad-length":    func(b []byte) []byte { return append([]byte("psdc1 00 99999\n"), b...) },
	"header-only":   func(b []byte) []byte { i := indexNL(b); return b[:i+1] },
	"garbage-bytes": func([]byte) []byte { return []byte{0x00, 0xFF, 0x07} },
}

func indexNL(b []byte) int {
	for i, c := range b {
		if c == '\n' {
			return i
		}
	}
	return len(b) - 1
}

func TestCorruptEntryDegradesToMiss(t *testing.T) {
	for name, mutate := range corruptions {
		t.Run(name, func(t *testing.T) {
			c, m := openTemp(t, 0)
			key := Key("engine", name)
			c.Put(key, []byte(`{"verdict":"secure"}`))
			path := c.path(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("entry not on disk: %v", err)
			}
			if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(key); ok {
				t.Fatal("corrupt entry returned a hit")
			}
			if m.Counter("diskcache.corrupt") != 1 {
				t.Fatalf("diskcache.corrupt = %d, want 1", m.Counter("diskcache.corrupt"))
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry not removed")
			}
			// The slot is reusable: a fresh Put hits again.
			c.Put(key, []byte("fresh"))
			if got, ok := c.Get(key); !ok || string(got) != "fresh" {
				t.Fatalf("slot unusable after corruption: got %q ok=%v", got, ok)
			}
		})
	}
}

func TestEvictionHonorsSizeCap(t *testing.T) {
	payload := make([]byte, 1024)
	// Cap fits ~4 encoded entries (payload + ~80-byte header each).
	c, m := openTemp(t, 4*1500)
	for i := 0; i < 10; i++ {
		c.Put(Key("engine", string(rune('a'+i))), payload)
	}
	if got, cap := c.SizeBytes(), int64(4*1500); got > cap {
		t.Fatalf("SizeBytes = %d, over cap %d after eviction", got, cap)
	}
	if c.Len() >= 10 {
		t.Fatalf("Len = %d, nothing evicted", c.Len())
	}
	if m.Counter("diskcache.evictions") == 0 {
		t.Fatal("diskcache.evictions not bumped")
	}
	// The newest entry must have survived.
	if _, ok := c.Get(Key("engine", string(rune('a'+9)))); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open with empty dir succeeded")
	}
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	c, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open did not create nested dir: %v", err)
	}
	if c.Dir() != dir {
		t.Fatalf("Dir = %q, want %q", c.Dir(), dir)
	}
}
