// Package diskcache is the disk-persistent, content-addressed result-cache
// tier below the in-memory caches: the privacyscoped daemon layers it under
// its LRU so restarts come back warm, and the batch driver (internal/batch)
// uses it to make a project rerun cost roughly one changed unit instead of
// one project.
//
// Contract:
//
//   - Keys are content addresses (see Key): the SHA-256 of everything that
//     determines the analysis outcome, engine fingerprint first, so an
//     engine upgrade can never serve stale results.
//   - Writes are atomic: payloads land in a unique temp file and are
//     renamed into place, so a concurrent reader — another goroutine or
//     another process sharing the directory — sees either the whole entry
//     or no entry, never a torn one.
//   - Loads are corruption-tolerant: every entry carries a checksum
//     header, and a truncated, bit-flipped or mis-framed entry degrades to
//     a cache miss (and is removed) instead of an error. A cache problem
//     must never change a verdict, only cost a recompute.
//   - The directory is size-capped: Put evicts the oldest entries (by
//     mtime, refreshed on hit) once the payload total passes MaxBytes.
//
// Telemetry flows through internal/obs under the diskcache.* names
// (hits, misses, puts, evictions, corrupt, errors), so the daemon's
// existing Prometheus exposition picks the tier up for free. See
// docs/BATCH.md for the on-disk layout and invalidation rules.
package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"privacyscope/internal/obs"
)

// DefaultMaxBytes caps the cache directory when Config.MaxBytes is unset:
// envelopes are a few KiB, so this holds tens of thousands of entries.
const DefaultMaxBytes = 256 << 20

// entryExt marks finished entries; temp files use tmpExt and are invisible
// to Get and to the size accounting.
const (
	entryExt = ".psc"
	tmpExt   = ".tmp"
)

// magic heads every entry: format name + version. Bump it when the framing
// changes so old entries degrade to misses instead of misparses.
const magic = "psdc1"

// FS is the filesystem seam the cache writes through. Production uses
// OSFS; internal/faultinject wraps it to inject disk-full, short-write and
// corrupt-entry faults deterministically.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Chtimes(name string, atime, mtime time.Time) error
}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return os.ReadDir(name)
}
func (osFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}

// OSFS returns the real-filesystem implementation.
func OSFS() FS { return osFS{} }

// Config sizes and instruments a cache.
type Config struct {
	// Dir is the cache directory; created if missing.
	Dir string
	// MaxBytes caps the payload total (≤0: DefaultMaxBytes).
	MaxBytes int64
	// FS overrides the filesystem (nil: OSFS). Tests inject faults here.
	FS FS
	// Observer receives the diskcache.* counters (nil: no-op).
	Observer obs.Observer
}

// Cache is a content-addressed persistent cache. A nil *Cache is a valid
// disabled cache: Get always misses and Put drops, so callers thread one
// pointer without nil checks.
type Cache struct {
	dir      string
	maxBytes int64
	fs       FS
	obs      obs.Observer

	// evictMu serializes eviction scans; Get/Put themselves need no lock —
	// atomicity comes from write-then-rename.
	evictMu sync.Mutex
	seq     atomic.Uint64
}

// Open creates (if needed) and returns the cache over cfg.Dir.
func Open(cfg Config) (*Cache, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("diskcache: empty directory")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.FS == nil {
		cfg.FS = OSFS()
	}
	if err := cfg.FS.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	return &Cache{
		dir:      cfg.Dir,
		maxBytes: cfg.MaxBytes,
		fs:       cfg.FS,
		obs:      obs.Or(cfg.Observer),
	}, nil
}

// Key builds a content-address from the engine fingerprint and the parts
// that determine an analysis outcome (sources, interface, rules, canonical
// options JSON). Each part is length-framed before hashing so no two
// distinct part lists can collide by concatenation.
func Key(engine string, parts ...string) string {
	h := sha256.New()
	write := func(s string) {
		fmt.Fprintf(h, "%d:", len(s))
		io.WriteString(h, s)
	}
	write(engine)
	for _, p := range parts {
		write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// path maps a key onto its entry file. Keys are expected to be Key-style
// hex; anything else (defensively) is re-hashed so a hostile key cannot
// escape the cache directory.
func (c *Cache) path(key string) string {
	for _, r := range key {
		ok := (r >= '0' && r <= '9') || (r >= 'a' && r <= 'f')
		if !ok {
			key = Key("rekey", key)
			break
		}
	}
	if len(key) > 128 {
		key = Key("rekey", key)
	}
	return filepath.Join(c.dir, key+entryExt)
}

// encode frames a payload: "psdc1 <sha256> <len>\n" + payload.
func encode(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	head := fmt.Sprintf("%s %x %d\n", magic, sum, len(payload))
	return append([]byte(head), payload...)
}

// decode verifies the frame and returns the payload; ok is false for any
// corruption (bad magic, bad length, checksum mismatch).
func decode(data []byte) ([]byte, bool) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, false
	}
	fields := bytes.Fields(data[:nl])
	if len(fields) != 3 || string(fields[0]) != magic {
		return nil, false
	}
	n, err := strconv.Atoi(string(fields[2]))
	if err != nil || n != len(data)-nl-1 {
		return nil, false
	}
	payload := data[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != string(fields[1]) {
		return nil, false
	}
	return payload, true
}

// Get returns the stored payload for key. Any failure — missing entry,
// unreadable file, corrupt frame — is a miss; a corrupt entry additionally
// bumps diskcache.corrupt and is removed so it cannot mis-hit forever.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	path := c.path(key)
	data, err := c.fs.ReadFile(path)
	if err != nil {
		c.obs.Add("diskcache.misses", 1)
		return nil, false
	}
	payload, ok := decode(data)
	if !ok {
		c.obs.Add("diskcache.corrupt", 1)
		c.obs.Add("diskcache.misses", 1)
		c.fs.Remove(path)
		return nil, false
	}
	// Refresh recency for the size-capped eviction; purely advisory.
	now := time.Now()
	c.fs.Chtimes(path, now, now)
	c.obs.Add("diskcache.hits", 1)
	return payload, true
}

// Put stores payload under key. It never fails the caller: a write or
// rename error bumps diskcache.errors and degrades to "not cached".
// Re-putting a key atomically replaces its entry.
func (c *Cache) Put(key string, payload []byte) {
	if c == nil {
		return
	}
	path := c.path(key)
	tmp := fmt.Sprintf("%s%s.%d.%d", path, tmpExt, os.Getpid(), c.seq.Add(1))
	if err := c.fs.WriteFile(tmp, encode(payload), 0o644); err != nil {
		c.obs.Add("diskcache.errors", 1)
		c.fs.Remove(tmp)
		return
	}
	if err := c.fs.Rename(tmp, path); err != nil {
		c.obs.Add("diskcache.errors", 1)
		c.fs.Remove(tmp)
		return
	}
	c.obs.Add("diskcache.puts", 1)
	c.evict()
}

// entryInfo is one finished entry during an eviction/accounting scan.
type entryInfo struct {
	path  string
	size  int64
	mtime time.Time
}

// scan lists finished entries with sizes and mtimes.
func (c *Cache) scan() []entryInfo {
	des, err := c.fs.ReadDir(c.dir)
	if err != nil {
		return nil
	}
	var out []entryInfo
	for _, de := range des {
		if de.IsDir() || filepath.Ext(de.Name()) != entryExt {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, entryInfo{
			path:  filepath.Join(c.dir, de.Name()),
			size:  info.Size(),
			mtime: info.ModTime(),
		})
	}
	return out
}

// evict removes the oldest entries until the directory fits MaxBytes. The
// scan is authoritative (not a cached running total) so multiple processes
// sharing the directory converge on the cap instead of drifting.
func (c *Cache) evict() {
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	entries := c.scan()
	var total int64
	for _, e := range entries {
		total += e.size
	}
	if total <= c.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	for _, e := range entries {
		if total <= c.maxBytes {
			break
		}
		if err := c.fs.Remove(e.path); err == nil {
			total -= e.size
			c.obs.Add("diskcache.evictions", 1)
		}
	}
}

// Len counts finished entries (a directory scan; intended for stats
// endpoints and tests, not hot paths).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return len(c.scan())
}

// SizeBytes totals the finished entries' on-disk sizes.
func (c *Cache) SizeBytes() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for _, e := range c.scan() {
		total += e.size
	}
	return total
}

// Dir returns the cache directory ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}
