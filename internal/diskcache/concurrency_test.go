package diskcache

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"testing"

	"privacyscope/internal/obs"
)

// canonical returns the one valid payload for slot i. Every writer stores
// exactly this, so any read that returns ok must return exactly these
// bytes — anything else is a torn or corrupted read.
func canonical(i int) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"slot":%d,"pad":"`, i)
	for j := 0; j < 256; j++ {
		fmt.Fprintf(&b, "%02x", (i+j)%251)
	}
	b.WriteString(`"}`)
	return b.Bytes()
}

func slotKey(i int) string { return Key("engine", "concurrency", fmt.Sprint(i)) }

// hammer performs rounds of interleaved Put/Get over shared slots and
// fails t on any non-canonical read.
func hammer(t *testing.T, c *Cache, worker, rounds, slots int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		i := (worker + r) % slots
		c.Put(slotKey(i), canonical(i))
		for j := 0; j < slots; j++ {
			got, ok := c.Get(slotKey(j))
			if !ok {
				continue // not yet written or evicted: a miss is always legal
			}
			if !bytes.Equal(got, canonical(j)) {
				t.Errorf("worker %d: torn read on slot %d: got %d bytes %q...",
					worker, j, len(got), truncate(got, 40))
				return
			}
		}
	}
}

func truncate(b []byte, n int) []byte {
	if len(b) > n {
		return b[:n]
	}
	return b
}

// TestConcurrentGoroutines runs N goroutines over one directory through a
// single Cache handle under the race detector: no torn reads, no races.
func TestConcurrentGoroutines(t *testing.T) {
	c, m := openTemp(t, 0)
	const workers, rounds, slots = 8, 40, 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hammer(t, c, w, rounds, slots)
		}(w)
	}
	wg.Wait()
	if m.Counter("diskcache.corrupt") != 0 {
		t.Fatalf("diskcache.corrupt = %d under concurrent use, want 0",
			m.Counter("diskcache.corrupt"))
	}
	for j := 0; j < slots; j++ {
		got, ok := c.Get(slotKey(j))
		if !ok || !bytes.Equal(got, canonical(j)) {
			t.Fatalf("slot %d not intact after hammer (ok=%v)", j, ok)
		}
	}
}

// TestConcurrentHandles runs the same hammer through two independent Cache
// handles over the same directory — the single-process analogue of two
// daemons sharing a cache dir.
func TestConcurrentHandles(t *testing.T) {
	dir := t.TempDir()
	open := func() *Cache {
		c, err := Open(Config{Dir: dir, Observer: obs.NewMetrics()})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return c
	}
	a, b := open(), open()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		c := a
		if w%2 == 1 {
			c = b
		}
		go func(w int, c *Cache) {
			defer wg.Done()
			hammer(t, c, w, 30, 5)
		}(w, c)
	}
	wg.Wait()
}

const helperEnv = "PRIVACYSCOPE_DISKCACHE_HELPER_DIR"

// TestHelperProcessHammer is not a test: it is the body of the child
// process spawned by TestCrossProcess. It hammers the directory named by
// the env gate and exits.
func TestHelperProcessHammer(t *testing.T) {
	dir := os.Getenv(helperEnv)
	if dir == "" {
		t.Skip("helper process body; only runs under TestCrossProcess")
	}
	c, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("helper Open: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hammer(t, c, w, 30, 5)
		}(w)
	}
	wg.Wait()
}

// TestCrossProcess re-execs the test binary as a second process hammering
// the same cache directory while the parent hammers it too: write-then-
// rename must keep every read whole across process boundaries, and every
// surviving entry must be byte-identical to its canonical payload.
func TestCrossProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping cross-process hammer in -short")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcessHammer", "-test.v")
	cmd.Env = append(os.Environ(), helperEnv+"="+dir)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting helper process: %v", err)
	}

	m := obs.NewMetrics()
	c, err := Open(Config{Dir: dir, Observer: m})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hammer(t, c, w, 30, 5)
		}(w)
	}
	wg.Wait()

	if err := cmd.Wait(); err != nil {
		t.Fatalf("helper process failed: %v\n%s", err, out.String())
	}
	if m.Counter("diskcache.corrupt") != 0 {
		t.Fatalf("diskcache.corrupt = %d across processes, want 0",
			m.Counter("diskcache.corrupt"))
	}
	for j := 0; j < 5; j++ {
		got, ok := c.Get(slotKey(j))
		if !ok || !bytes.Equal(got, canonical(j)) {
			t.Fatalf("slot %d not byte-identical after cross-process hammer (ok=%v)", j, ok)
		}
	}
}
