package edl

import (
	"errors"
	"testing"

	"privacyscope/internal/symexec"
)

const listing1EDL = `
enclave {
    trusted {
        /* process user private data */
        public int enclave_process_data([in] char *secrets, [out] char *output);
    };
    untrusted {
        void ocall_print([in, string] const char *str);
    };
};
`

func TestParseListing1EDL(t *testing.T) {
	iface, err := Parse(listing1EDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(iface.Trusted) != 1 || len(iface.Untrusted) != 1 {
		t.Fatalf("sections = %d/%d", len(iface.Trusted), len(iface.Untrusted))
	}
	fn, ok := iface.ECall("enclave_process_data")
	if !ok {
		t.Fatal("ECall lookup failed")
	}
	if !fn.Public || fn.Return != "int" {
		t.Errorf("sig = %+v", fn)
	}
	if len(fn.Params) != 2 {
		t.Fatalf("params = %+v", fn.Params)
	}
	sec, out := fn.Params[0], fn.Params[1]
	if sec.Name != "secrets" || !sec.In || sec.Out || !sec.Pointer || sec.Type != "char*" {
		t.Errorf("secrets = %+v", sec)
	}
	if out.Name != "output" || out.In || !out.Out {
		t.Errorf("output = %+v", out)
	}
	ocalls := iface.OCallNames()
	if len(ocalls) != 1 || ocalls[0] != "ocall_print" {
		t.Errorf("ocalls = %v", ocalls)
	}
	ostr := iface.Untrusted[0].Params[0]
	if !ostr.IsString || !ostr.In {
		t.Errorf("ocall param = %+v", ostr)
	}
}

func TestParseAttributes(t *testing.T) {
	src := `
enclave {
    trusted {
        public void train([in, size=64] float *data, [in, out, count=8] double *model, int n);
    };
};
`
	iface, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := iface.Trusted[0]
	if fn.Params[0].Size != 64 {
		t.Errorf("size = %d", fn.Params[0].Size)
	}
	p1 := fn.Params[1]
	if !p1.In || !p1.Out || p1.Size != 8 {
		t.Errorf("model = %+v", p1)
	}
	p2 := fn.Params[2]
	if p2.In || p2.Out || p2.Pointer {
		t.Errorf("n = %+v", p2)
	}
}

func TestParseStructAndQualifiedTypes(t *testing.T) {
	src := `
enclave {
    trusted {
        public int f([out] struct Model *m, [in] const unsigned char *buf, size_t len);
    };
};
`
	iface, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	params := iface.Trusted[0].Params
	if params[0].Type != "struct Model*" {
		t.Errorf("type = %q", params[0].Type)
	}
	if params[1].Type != "const unsigned char*" {
		t.Errorf("type = %q", params[1].Type)
	}
	if params[2].Type != "size_t" || params[2].Pointer {
		t.Errorf("len = %+v", params[2])
	}
}

func TestParseMultipleFunctions(t *testing.T) {
	src := `
enclave {
    trusted {
        public int a([in] int *x);
        public int b([out] int *y);
    };
    untrusted {
        void oc1(int v);
        void oc2([in, string] char *s);
    };
};
`
	iface, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(iface.Trusted) != 2 || len(iface.Untrusted) != 2 {
		t.Errorf("counts = %d/%d", len(iface.Trusted), len(iface.Untrusted))
	}
	if _, ok := iface.ECall("b"); !ok {
		t.Error("ECall b missing")
	}
	if _, ok := iface.ECall("oc1"); ok {
		t.Error("oc1 is untrusted, not an ECALL")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"trusted { };",
		"enclave { trusted { public int f([bogus] int *x); }; };",
		"enclave { trusted { public int f(int x) }; };", // missing ;
		"enclave { trusted { public f(); }; };",         // missing return type? f parses as type... missing name
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		} else if !errors.Is(err, ErrSyntax) {
			t.Errorf("error not wrapped: %v", err)
		}
	}
}

func TestParamSpecsDefaults(t *testing.T) {
	iface, err := Parse(listing1EDL)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := iface.ECall("enclave_process_data")
	specs := ParamSpecs(fn, nil)
	if len(specs) != 2 {
		t.Fatalf("specs = %+v", specs)
	}
	if specs[0].Class != symexec.ParamSecret || specs[1].Class != symexec.ParamOut {
		t.Errorf("specs = %+v", specs)
	}
}

const configXML = `
<privacyscope>
  <function name="enclave_process_data">
    <public param="secrets"/>
    <secret param="output"/>
  </function>
  <decrypt function="my_decrypt" dstArg="1"/>
  <ocall function="log_metric"/>
</privacyscope>
`

func TestParseConfig(t *testing.T) {
	c, err := ParseConfig([]byte(configXML))
	if err != nil {
		t.Fatal(err)
	}
	rule, ok := c.Rule("enclave_process_data")
	if !ok {
		t.Fatal("rule missing")
	}
	if len(rule.Publics) != 1 || rule.Publics[0].Param != "secrets" {
		t.Errorf("publics = %+v", rule.Publics)
	}
	if _, ok := c.Rule("nope"); ok {
		t.Error("unknown rule matched")
	}
	if len(c.Decrypts) != 1 || c.Decrypts[0].DstArg != 1 {
		t.Errorf("decrypts = %+v", c.Decrypts)
	}
}

func TestParseConfigError(t *testing.T) {
	if _, err := ParseConfig([]byte("<privacyscope><function")); err == nil {
		t.Error("expected XML error")
	}
}

func TestParamSpecsWithOverrides(t *testing.T) {
	iface, _ := Parse(listing1EDL)
	fn, _ := iface.ECall("enclave_process_data")
	c, err := ParseConfig([]byte(configXML))
	if err != nil {
		t.Fatal(err)
	}
	rule, _ := c.Rule("enclave_process_data")
	specs := ParamSpecs(fn, rule)
	// The XML flips the defaults: secrets→public, output→secret.
	if specs[0].Class != symexec.ParamPublic {
		t.Errorf("secrets class = %v", specs[0].Class)
	}
	if specs[1].Class != symexec.ParamSecret {
		t.Errorf("output class = %v", specs[1].Class)
	}
}

func TestParamSpecsSecretAndSink(t *testing.T) {
	sig := &FuncSig{Name: "f", Params: []Param{{Name: "buf", Pointer: true}}}
	rule := &FunctionRule{
		Name:    "f",
		Secrets: []ParamRule{{Param: "buf"}},
		Sinks:   []ParamRule{{Param: "buf"}},
	}
	specs := ParamSpecs(sig, rule)
	if specs[0].Class != symexec.ParamInOut {
		t.Errorf("class = %v, want in/out", specs[0].Class)
	}
}

func TestEngineOptionsMerge(t *testing.T) {
	c, err := ParseConfig([]byte(configXML))
	if err != nil {
		t.Fatal(err)
	}
	base := symexec.DefaultOptions()
	opts := c.EngineOptions(base)
	if opts.DecryptFuncs["my_decrypt"] != 1 {
		t.Errorf("decrypt merge failed: %v", opts.DecryptFuncs)
	}
	if opts.DecryptFuncs["sgx_rijndael128GCM_decrypt"] != 0 {
		t.Error("default decrypt lost")
	}
	if !opts.OCallFuncs["log_metric"] || !opts.OCallFuncs["printf"] {
		t.Errorf("ocall merge failed: %v", opts.OCallFuncs)
	}
	// The base maps must not be mutated.
	if _, ok := base.DecryptFuncs["my_decrypt"]; ok {
		t.Error("EngineOptions mutated the base map")
	}
}

func TestIgnoredDirectives(t *testing.T) {
	src := `
enclave {
    include "sgx_tseal.h"
    from "other.edl" import *;
    trusted {
        public int f([in] int *x);
    };
};
`
	iface, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(iface.Trusted) != 1 {
		t.Errorf("trusted = %+v", iface.Trusted)
	}
}
