package edl

import (
	"fmt"
	"sort"
	"strings"

	"privacyscope/internal/minic"
)

// This file implements EDL inference: drafting an interface file for plain
// C code by classifying each pointer parameter from its uses — the porting
// step the paper's authors performed by hand when moving the open-source ML
// code into enclaves (§VI-C). A parameter that is only read is [in]; only
// written, [out]; both, [in, out].

// ParamUsage describes how a function uses one pointer parameter.
type ParamUsage struct {
	Name    string
	Reads   bool
	Writes  bool
	Pointer bool
}

// Attr renders the inferred EDL attribute list ("[in]", "[out]",
// "[in, out]", or "" for scalars and unused pointers, which default to
// [in] for safety).
func (u ParamUsage) Attr() string {
	if !u.Pointer {
		return ""
	}
	switch {
	case u.Reads && u.Writes:
		return "[in, out] "
	case u.Writes:
		return "[out] "
	default:
		// Read or unused: marshal in (the conservative default — an
		// unused pointer is assumed to carry input).
		return "[in] "
	}
}

// InferUsage classifies every parameter of fn by walking its body. Reads
// and writes through a parameter are attributed to the parameter's base
// variable; passing the pointer to another function counts as both (the
// callee may do either).
func InferUsage(file *minic.File, fn *minic.FuncDecl) []ParamUsage {
	usage := make(map[string]*ParamUsage, len(fn.Params))
	order := make([]string, 0, len(fn.Params))
	for _, p := range fn.Params {
		_, isPtr := p.Type.(minic.Pointer)
		usage[p.Name] = &ParamUsage{Name: p.Name, Pointer: isPtr}
		order = append(order, p.Name)
	}
	if fn.Body != nil {
		walkStmtUsage(fn.Body, usage)
	}
	out := make([]ParamUsage, 0, len(order))
	for _, name := range order {
		out = append(out, *usage[name])
	}
	return out
}

func walkStmtUsage(s minic.Stmt, usage map[string]*ParamUsage) {
	switch v := s.(type) {
	case nil:
	case *minic.Block:
		for _, sub := range v.Stmts {
			walkStmtUsage(sub, usage)
		}
	case *minic.DeclStmt:
		for _, d := range v.Decls {
			walkExprUsage(d.Init, usage, false)
		}
	case *minic.ExprStmt:
		walkExprUsage(v.X, usage, false)
	case *minic.IfStmt:
		walkExprUsage(v.Cond, usage, false)
		walkStmtUsage(v.Then, usage)
		walkStmtUsage(v.Else, usage)
	case *minic.WhileStmt:
		walkExprUsage(v.Cond, usage, false)
		walkStmtUsage(v.Body, usage)
	case *minic.DoWhileStmt:
		walkStmtUsage(v.Body, usage)
		walkExprUsage(v.Cond, usage, false)
	case *minic.SwitchStmt:
		walkExprUsage(v.Tag, usage, false)
		for _, cs := range v.Cases {
			walkExprUsage(cs.Value, usage, false)
			for _, s := range cs.Body {
				walkStmtUsage(s, usage)
			}
		}
	case *minic.ForStmt:
		walkStmtUsage(v.Init, usage)
		walkExprUsage(v.Cond, usage, false)
		walkExprUsage(v.Post, usage, false)
		walkStmtUsage(v.Body, usage)
	case *minic.ReturnStmt:
		walkExprUsage(v.X, usage, false)
	}
}

// walkExprUsage records reads/writes; asWrite marks the lvalue context of
// an enclosing assignment target.
func walkExprUsage(e minic.Expr, usage map[string]*ParamUsage, asWrite bool) {
	switch v := e.(type) {
	case nil:
	case *minic.IdentExpr:
		if u, ok := usage[v.Name]; ok {
			if asWrite {
				u.Writes = true
			} else {
				u.Reads = true
			}
		}
	case *minic.AssignExpr:
		markWriteBase(v.LHS, usage)
		// Compound assignment also reads the target.
		if v.Op != 0 {
			walkExprUsage(v.LHS, usage, false)
		} else {
			// Index expressions inside the LHS still read (the
			// subscript), but the base is a write.
			walkIndexReads(v.LHS, usage)
		}
		walkExprUsage(v.RHS, usage, false)
	case *minic.IncDecExpr:
		markWriteBase(v.X, usage)
		walkExprUsage(v.X, usage, false)
	case *minic.BinExpr:
		walkExprUsage(v.L, usage, false)
		walkExprUsage(v.R, usage, false)
	case *minic.UnExpr:
		walkExprUsage(v.X, usage, false)
	case *minic.IndexExpr:
		walkExprUsage(v.X, usage, asWrite)
		walkExprUsage(v.Index, usage, false)
	case *minic.MemberExpr:
		walkExprUsage(v.X, usage, asWrite)
	case *minic.DerefExpr:
		walkExprUsage(v.X, usage, asWrite)
	case *minic.AddrExpr:
		walkExprUsage(v.X, usage, asWrite)
	case *minic.CastExpr:
		walkExprUsage(v.X, usage, asWrite)
	case *minic.CondExpr:
		walkExprUsage(v.Cond, usage, false)
		walkExprUsage(v.Then, usage, asWrite)
		walkExprUsage(v.Else, usage, asWrite)
	case *minic.SizeofExpr:
		walkExprUsage(v.X, usage, false)
	case *minic.CallExpr:
		for _, a := range v.Args {
			// A pointer escaping into a call may be read or written
			// by the callee.
			if base := callPointerBase(a, usage); base != nil {
				base.Reads = true
				base.Writes = true
				continue
			}
			walkExprUsage(a, usage, false)
		}
	}
}

// markWriteBase marks the base parameter of an lvalue as written.
func markWriteBase(e minic.Expr, usage map[string]*ParamUsage) {
	switch v := e.(type) {
	case *minic.IdentExpr:
		if u, ok := usage[v.Name]; ok {
			u.Writes = true
		}
	case *minic.IndexExpr:
		markWriteBase(v.X, usage)
	case *minic.MemberExpr:
		markWriteBase(v.X, usage)
	case *minic.DerefExpr:
		markWriteBase(v.X, usage)
	case *minic.CastExpr:
		markWriteBase(v.X, usage)
	}
}

// walkIndexReads records the subscript reads inside an assignment target.
func walkIndexReads(e minic.Expr, usage map[string]*ParamUsage) {
	switch v := e.(type) {
	case *minic.IndexExpr:
		walkExprUsage(v.Index, usage, false)
		walkIndexReads(v.X, usage)
	case *minic.MemberExpr:
		walkIndexReads(v.X, usage)
	case *minic.DerefExpr:
		walkIndexReads(v.X, usage)
	}
}

// callPointerBase returns the usage slot when the argument is a bare
// pointer parameter reference (possibly &x or a cast).
func callPointerBase(e minic.Expr, usage map[string]*ParamUsage) *ParamUsage {
	switch v := e.(type) {
	case *minic.IdentExpr:
		if u, ok := usage[v.Name]; ok && u.Pointer {
			return u
		}
	case *minic.CastExpr:
		return callPointerBase(v.X, usage)
	case *minic.AddrExpr:
		return callPointerBase(v.X, usage)
	}
	return nil
}

// GenerateEDL drafts an EDL interface file for the file's functions: each
// selected function becomes a public ECALL with inferred attributes. When
// names is empty, every defined function is exported.
func GenerateEDL(file *minic.File, names []string) (string, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var fns []*minic.FuncDecl
	for _, fn := range file.Functions {
		if fn.Body == nil {
			continue
		}
		if len(names) > 0 && !want[fn.Name] {
			continue
		}
		fns = append(fns, fn)
	}
	if len(fns) == 0 {
		return "", fmt.Errorf("edl: no matching function definitions")
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Name < fns[j].Name })

	var sb strings.Builder
	sb.WriteString("enclave {\n    trusted {\n")
	for _, fn := range fns {
		params := make([]string, len(fn.Params))
		for i, u := range InferUsage(file, fn) {
			params[i] = u.Attr() + fn.Params[i].Type.String() + " " + u.Name
		}
		fmt.Fprintf(&sb, "        public %s %s(%s);\n",
			fn.Return.String(), fn.Name, strings.Join(params, ", "))
	}
	sb.WriteString("    };\n};\n")
	return sb.String(), nil
}
