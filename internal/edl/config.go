package edl

import (
	"encoding/xml"
	"fmt"

	"privacyscope/internal/symexec"
)

// Config is PrivacyScope's XML rule file (§V-C: "PrivacyScope processes an
// XML configuration file, provided by user, containing function names that
// the user is interested in evaluating"). When a function has no explicit
// rules, the EDL default applies: [in] parameters are secrets and [out]
// parameters are leaking points.
type Config struct {
	XMLName xml.Name `xml:"privacyscope"`
	// Functions lists entry points to analyze with optional overrides.
	Functions []FunctionRule `xml:"function"`
	// Decrypts lists IPP-style decryption functions whose destination
	// buffers hold secret plaintext after the call.
	Decrypts []DecryptRule `xml:"decrypt"`
	// Ocalls lists extra sink functions whose arguments leave the
	// enclave.
	Ocalls []OcallRule `xml:"ocall"`
}

// FunctionRule selects one entry point and optionally overrides parameter
// classes.
type FunctionRule struct {
	Name    string      `xml:"name,attr"`
	Secrets []ParamRule `xml:"secret"`
	Sinks   []ParamRule `xml:"sink"`
	Publics []ParamRule `xml:"public"`
}

// ParamRule names a parameter.
type ParamRule struct {
	Param string `xml:"param,attr"`
}

// DecryptRule registers a decryption function; DstArg is the 0-based index
// of the plaintext destination argument.
type DecryptRule struct {
	Function string `xml:"function,attr"`
	DstArg   int    `xml:"dstArg,attr"`
}

// OcallRule registers an extra OCALL sink.
type OcallRule struct {
	Function string `xml:"function,attr"`
}

// ParseConfig parses the XML rule file.
func ParseConfig(data []byte) (*Config, error) {
	var c Config
	if err := xml.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("edl: parse config: %w", err)
	}
	return &c, nil
}

// Rule looks up the override rule for a function.
func (c *Config) Rule(fn string) (*FunctionRule, bool) {
	for i := range c.Functions {
		if c.Functions[i].Name == fn {
			return &c.Functions[i], true
		}
	}
	return nil, false
}

// ParamSpecs derives the engine's parameter classification for an ECALL:
// EDL attributes give the default ([in]→secret, [out]→sink, [in,out]→both,
// plain→public); an XML rule for the function overrides per parameter.
func ParamSpecs(sig *FuncSig, rule *FunctionRule) []symexec.ParamSpec {
	specs := make([]symexec.ParamSpec, 0, len(sig.Params))
	for _, p := range sig.Params {
		cls := symexec.ParamPublic
		switch {
		case p.In && p.Out:
			cls = symexec.ParamInOut
		case p.In:
			cls = symexec.ParamSecret
		case p.Out:
			cls = symexec.ParamOut
		}
		if rule != nil {
			if hasParam(rule.Publics, p.Name) {
				cls = symexec.ParamPublic
			}
			secret := hasParam(rule.Secrets, p.Name)
			sink := hasParam(rule.Sinks, p.Name)
			switch {
			case secret && sink:
				cls = symexec.ParamInOut
			case secret:
				cls = symexec.ParamSecret
			case sink:
				cls = symexec.ParamOut
			}
		}
		specs = append(specs, symexec.ParamSpec{Name: p.Name, Class: cls})
	}
	return specs
}

func hasParam(rules []ParamRule, name string) bool {
	for _, r := range rules {
		if r.Param == name {
			return true
		}
	}
	return false
}

// EngineOptions folds the config's decrypt and ocall registrations into a
// base engine configuration.
func (c *Config) EngineOptions(base symexec.Options) symexec.Options {
	if base.DecryptFuncs == nil {
		base.DecryptFuncs = map[string]int{}
	} else {
		m := make(map[string]int, len(base.DecryptFuncs))
		for k, v := range base.DecryptFuncs {
			m[k] = v
		}
		base.DecryptFuncs = m
	}
	if base.OCallFuncs == nil {
		base.OCallFuncs = map[string]bool{}
	} else {
		m := make(map[string]bool, len(base.OCallFuncs))
		for k, v := range base.OCallFuncs {
			m[k] = v
		}
		base.OCallFuncs = m
	}
	for _, d := range c.Decrypts {
		base.DecryptFuncs[d.Function] = d.DstArg
	}
	for _, o := range c.Ocalls {
		base.OCallFuncs[o.Function] = true
	}
	return base
}
