package edl

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"strings"

	"privacyscope/internal/symexec"
)

// Config is PrivacyScope's XML rule file (§V-C: "PrivacyScope processes an
// XML configuration file, provided by user, containing function names that
// the user is interested in evaluating"). When a function has no explicit
// rules, the EDL default applies: [in] parameters are secrets and [out]
// parameters are leaking points.
type Config struct {
	XMLName xml.Name `xml:"privacyscope"`
	// Functions lists entry points to analyze with optional overrides.
	Functions []FunctionRule `xml:"function"`
	// Decrypts lists IPP-style decryption functions whose destination
	// buffers hold secret plaintext after the call.
	Decrypts []DecryptRule `xml:"decrypt"`
	// Ocalls lists extra sink functions whose arguments leave the
	// enclave.
	Ocalls []OcallRule `xml:"ocall"`
	// Detectors toggles leak detectors from the internal/detect registry
	// on top of the option-implied defaults. Nil when the file has no
	// <detectors> block.
	Detectors *DetectorRule `xml:"detectors"`
	// Lifecycles names the enclave's init/declassify gate functions for
	// the orderliness detector (<lifecycle init="init_session"/>).
	Lifecycles []LifecycleRule `xml:"lifecycle"`
}

// DetectorRule is the <detectors> block: enables apply first, then
// disables.
type DetectorRule struct {
	Enables  []DetectorToggle `xml:"enable"`
	Disables []DetectorToggle `xml:"disable"`
}

// DetectorToggle names one detector to switch. Line is the 1-based source
// line of the element, captured during parsing for error reporting; it is
// not an XML attribute.
type DetectorToggle struct {
	Name string `xml:"name,attr"`
	Line int    `xml:"-"`
}

// LifecycleRule registers one lifecycle init gate. Line is captured like
// DetectorToggle.Line.
type LifecycleRule struct {
	Init string `xml:"init,attr"`
	Line int    `xml:"-"`
}

// FunctionRule selects one entry point and optionally overrides parameter
// classes.
type FunctionRule struct {
	Name    string      `xml:"name,attr"`
	Secrets []ParamRule `xml:"secret"`
	Sinks   []ParamRule `xml:"sink"`
	Publics []ParamRule `xml:"public"`
}

// ParamRule names a parameter.
type ParamRule struct {
	Param string `xml:"param,attr"`
}

// DecryptRule registers a decryption function; DstArg is the 0-based index
// of the plaintext destination argument.
type DecryptRule struct {
	Function string `xml:"function,attr"`
	DstArg   int    `xml:"dstArg,attr"`
}

// OcallRule registers an extra OCALL sink.
type OcallRule struct {
	Function string `xml:"function,attr"`
}

// ParseConfig parses the XML rule file.
func ParseConfig(data []byte) (*Config, error) {
	var c Config
	if err := xml.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("edl: parse config: %w", err)
	}
	c.captureLines(data)
	return &c, nil
}

// captureLines re-scans the document and stamps source line numbers on the
// detector toggles and lifecycle rules, matched in document order — the
// same order encoding/xml appended them. The scan is best-effort: a
// pathological document that desynchronizes it only degrades error-message
// line numbers, never the parse.
func (c *Config) captureLines(data []byte) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	var ei, di, li, depth int
	for {
		tok, err := dec.Token()
		if err != nil {
			return
		}
		switch t := tok.(type) {
		case xml.StartElement:
			line := 1 + bytes.Count(data[:min(dec.InputOffset(), int64(len(data)))], []byte("\n"))
			switch t.Name.Local {
			case "detectors":
				depth++
			case "enable":
				if depth == 1 && c.Detectors != nil && ei < len(c.Detectors.Enables) {
					c.Detectors.Enables[ei].Line = line
					ei++
				}
			case "disable":
				if depth == 1 && c.Detectors != nil && di < len(c.Detectors.Disables) {
					c.Detectors.Disables[di].Line = line
					di++
				}
			case "lifecycle":
				if depth == 0 && li < len(c.Lifecycles) {
					c.Lifecycles[li].Line = line
					li++
				}
			}
		case xml.EndElement:
			if t.Name.Local == "detectors" && depth > 0 {
				depth--
			}
		}
	}
}

// ValidateDetectors checks the <detectors> and <lifecycle> entries against
// the registry membership test `known`, reporting every problem with its
// source line so a long rule file pinpoints the offender.
func (c *Config) ValidateDetectors(known func(string) bool) error {
	var errs []string
	bad := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}
	if c.Detectors != nil {
		for _, e := range c.Detectors.Enables {
			switch {
			case e.Name == "":
				bad(e.Line, "<enable> is missing its name attribute")
			case !known(e.Name):
				bad(e.Line, "<enable> names unknown detector %q", e.Name)
			}
		}
		for _, d := range c.Detectors.Disables {
			switch {
			case d.Name == "":
				bad(d.Line, "<disable> is missing its name attribute")
			case !known(d.Name):
				bad(d.Line, "<disable> names unknown detector %q", d.Name)
			}
		}
	}
	for _, l := range c.Lifecycles {
		if l.Init == "" {
			bad(l.Line, "<lifecycle> is missing its init attribute")
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("edl: rule config: %s", strings.Join(errs, "; "))
	}
	return nil
}

// DetectorToggles flattens the <detectors> block into enable/disable name
// lists for detect.ResolveSet. Empty when the block is absent.
func (c *Config) DetectorToggles() (enable, disable []string) {
	if c.Detectors == nil {
		return nil, nil
	}
	for _, e := range c.Detectors.Enables {
		enable = append(enable, e.Name)
	}
	for _, d := range c.Detectors.Disables {
		disable = append(disable, d.Name)
	}
	return enable, disable
}

// InitFuncs collects the lifecycle gate names as the engine option map.
// Nil when no <lifecycle> rules exist.
func (c *Config) InitFuncs() map[string]bool {
	if len(c.Lifecycles) == 0 {
		return nil
	}
	m := make(map[string]bool, len(c.Lifecycles))
	for _, l := range c.Lifecycles {
		if l.Init != "" {
			m[l.Init] = true
		}
	}
	return m
}

// Rule looks up the override rule for a function.
func (c *Config) Rule(fn string) (*FunctionRule, bool) {
	for i := range c.Functions {
		if c.Functions[i].Name == fn {
			return &c.Functions[i], true
		}
	}
	return nil, false
}

// ParamSpecs derives the engine's parameter classification for an ECALL:
// EDL attributes give the default ([in]→secret, [out]→sink, [in,out]→both,
// plain→public); an XML rule for the function overrides per parameter.
func ParamSpecs(sig *FuncSig, rule *FunctionRule) []symexec.ParamSpec {
	specs := make([]symexec.ParamSpec, 0, len(sig.Params))
	for _, p := range sig.Params {
		cls := symexec.ParamPublic
		switch {
		case p.In && p.Out:
			cls = symexec.ParamInOut
		case p.In:
			cls = symexec.ParamSecret
		case p.Out:
			cls = symexec.ParamOut
		}
		if rule != nil {
			if hasParam(rule.Publics, p.Name) {
				cls = symexec.ParamPublic
			}
			secret := hasParam(rule.Secrets, p.Name)
			sink := hasParam(rule.Sinks, p.Name)
			switch {
			case secret && sink:
				cls = symexec.ParamInOut
			case secret:
				cls = symexec.ParamSecret
			case sink:
				cls = symexec.ParamOut
			}
		}
		specs = append(specs, symexec.ParamSpec{Name: p.Name, Class: cls})
	}
	return specs
}

func hasParam(rules []ParamRule, name string) bool {
	for _, r := range rules {
		if r.Param == name {
			return true
		}
	}
	return false
}

// EngineOptions folds the config's decrypt and ocall registrations into a
// base engine configuration.
func (c *Config) EngineOptions(base symexec.Options) symexec.Options {
	if base.DecryptFuncs == nil {
		base.DecryptFuncs = map[string]int{}
	} else {
		m := make(map[string]int, len(base.DecryptFuncs))
		for k, v := range base.DecryptFuncs {
			m[k] = v
		}
		base.DecryptFuncs = m
	}
	if base.OCallFuncs == nil {
		base.OCallFuncs = map[string]bool{}
	} else {
		m := make(map[string]bool, len(base.OCallFuncs))
		for k, v := range base.OCallFuncs {
			m[k] = v
		}
		base.OCallFuncs = m
	}
	for _, d := range c.Decrypts {
		base.DecryptFuncs[d.Function] = d.DstArg
	}
	for _, o := range c.Ocalls {
		base.OCallFuncs[o.Function] = true
	}
	return base
}
