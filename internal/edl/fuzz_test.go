package edl

import (
	"strings"
	"testing"
)

// FuzzEDL throws arbitrary bytes at the EDL parser: it must reject garbage
// with an error, never panic or hang. Accepted interfaces must be
// self-consistent (non-nil, lookups work). The seed corpus covers the
// attribute grammar the daemon accepts over the wire — the EDL field of
// POST /v1/analyze is attacker-reachable, so this parser is a trust
// boundary. Run via `make fuzz-smoke`.
func FuzzEDL(f *testing.F) {
	seeds := []string{
		"enclave { trusted { public int f([in] int *s, [out] int *o); }; };",
		`enclave {
    trusted {
        public int enclave_train([in, size=len] double *data, size_t len, [out] double *model);
        int helper(int x);
    };
    untrusted {
        void ocall_log([in, string] char *msg);
    };
};`,
		"enclave { trusted { public void f(void); }; untrusted { void g(void); }; };",
		"enclave { /* comment */ trusted { public int f([user_check] int *p); }; };",
		"// line comment\nenclave { trusted { public unsigned long f(size_t n); }; };",
		"enclave { trusted { public int f([in, out, count=4] int *buf); }; };",
		"enclave {",                 // truncated: must error, not crash
		"/* unterminated comment",   // ran the scanner past EOF once
		"trusted { public int f",    // no enclave wrapper
		"enclave { trusted { public int f([]); }; };", // empty attribute list
		strings.Repeat("enclave {", 64),
		"enclave { trusted { public int f([in] int *s, ); }; };",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		iface, err := Parse(src)
		if err != nil {
			return // rejecting garbage is correct; crashing is not
		}
		if iface == nil {
			t.Fatal("nil interface with nil error")
		}
		// Accepted interfaces must answer lookups without panicking.
		for _, fn := range iface.Trusted {
			if _, ok := iface.ECall(fn.Name); !ok {
				t.Fatalf("declared ECALL %q not found by lookup", fn.Name)
			}
		}
		iface.OCallNames()
	})
}
