package edl

import (
	"fmt"
	"strings"
	"testing"

	"privacyscope/internal/symexec"
)

// FuzzEDL throws arbitrary bytes at the EDL parser: it must reject garbage
// with an error, never panic or hang. Accepted interfaces must be
// self-consistent (non-nil, lookups work). The seed corpus covers the
// attribute grammar the daemon accepts over the wire — the EDL field of
// POST /v1/analyze is attacker-reachable, so this parser is a trust
// boundary. Run via `make fuzz-smoke`.
func FuzzEDL(f *testing.F) {
	seeds := []string{
		"enclave { trusted { public int f([in] int *s, [out] int *o); }; };",
		`enclave {
    trusted {
        public int enclave_train([in, size=len] double *data, size_t len, [out] double *model);
        int helper(int x);
    };
    untrusted {
        void ocall_log([in, string] char *msg);
    };
};`,
		"enclave { trusted { public void f(void); }; untrusted { void g(void); }; };",
		"enclave { /* comment */ trusted { public int f([user_check] int *p); }; };",
		"// line comment\nenclave { trusted { public unsigned long f(size_t n); }; };",
		"enclave { trusted { public int f([in, out, count=4] int *buf); }; };",
		"enclave {",                                   // truncated: must error, not crash
		"/* unterminated comment",                     // ran the scanner past EOF once
		"trusted { public int f",                      // no enclave wrapper
		"enclave { trusted { public int f([]); }; };", // empty attribute list
		strings.Repeat("enclave {", 64),
		"enclave { trusted { public int f([in] int *s, ); }; };",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		iface, err := Parse(src)
		if err != nil {
			return // rejecting garbage is correct; crashing is not
		}
		if iface == nil {
			t.Fatal("nil interface with nil error")
		}
		// Accepted interfaces must answer lookups without panicking.
		for _, fn := range iface.Trusted {
			if _, ok := iface.ECall(fn.Name); !ok {
				t.Fatalf("declared ECALL %q not found by lookup", fn.Name)
			}
		}
		iface.OCallNames()
	})
}

// FuzzRuleConfig throws arbitrary bytes at the XML rule-file parser and its
// detector validator: ConfigXML is attacker-reachable over the daemon wire
// (POST /v1/analyze), so parse, line capture and validation must reject
// garbage with an error — never panic, hang, or return a nonsensical
// structure. Accepted configs must survive every downstream accessor the
// facade calls, and every validation problem must carry a plausible
// "line N:" location. Run via `make fuzz-smoke`.
func FuzzRuleConfig(f *testing.F) {
	seeds := []string{
		`<privacyscope></privacyscope>`,
		`<privacyscope><detectors><enable name="ocall-pointer"/></detectors></privacyscope>`,
		"<privacyscope>\n<detectors>\n<enable name=\"bogus\"/>\n<disable/>\n</detectors>\n<lifecycle/>\n</privacyscope>",
		`<privacyscope><detectors><disable name="implicit"/></detectors><lifecycle init="init_session"/></privacyscope>`,
		`<privacyscope><function name="f"><secret param="x"/><sink param="y"/></function></privacyscope>`,
		`<privacyscope><decrypt function="ipp_decrypt" dstArg="2"/><ocall function="ocall_log"/></privacyscope>`,
		`<privacyscope><detectors>`,                                              // truncated block
		`<privacyscope><detectors><enable name="`,                                // truncated attribute
		`<privacyscope><lifecycle init="a"><enable/></lifecycle></privacyscope>`, // nested where flat expected
		"<privacyscope>\r\n<detectors>\r\n<enable name=\"timing\"/>\r\n</detectors>\r\n</privacyscope>",
		`<detectors><enable name="explicit"/></detectors>`, // wrong root
		strings.Repeat("<detectors>", 32),
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	known := func(n string) bool {
		switch n {
		case "explicit", "implicit", "timing",
			"ocall-pointer", "errcode-channel", "orderliness", "access-pattern":
			return true
		}
		return false
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseConfig([]byte(src))
		if err != nil {
			return // rejecting garbage is correct; crashing is not
		}
		if c == nil {
			t.Fatal("nil config with nil error")
		}
		if verr := c.ValidateDetectors(known); verr != nil {
			// Every reported problem must be line-located and in range.
			msg := strings.TrimPrefix(verr.Error(), "edl: rule config: ")
			lines := 1 + strings.Count(src, "\n")
			for _, prob := range strings.Split(msg, "; ") {
				var n int
				if _, err := fmt.Sscanf(prob, "line %d:", &n); err != nil {
					t.Fatalf("problem %q is not line-numbered", prob)
				}
				if n < 0 || n > lines+1 {
					t.Fatalf("problem %q cites line %d of a %d-line document", prob, n, lines)
				}
			}
		}
		// Accepted configs must answer the facade's accessors without
		// panicking, whatever shape the document had.
		enable, disable := c.DetectorToggles()
		if c.Detectors == nil && (enable != nil || disable != nil) {
			t.Fatal("toggles from an absent detectors block")
		}
		c.InitFuncs()
		c.Rule("f")
		c.EngineOptions(symexec.Options{})
	})
}
