package edl

import (
	"strings"
	"testing"

	"privacyscope/internal/minic"
)

func usageOf(t *testing.T, src, fn string) map[string]ParamUsage {
	t.Helper()
	file := minic.MustParse(src)
	f, ok := file.Function(fn)
	if !ok {
		t.Fatalf("no function %s", fn)
	}
	out := map[string]ParamUsage{}
	for _, u := range InferUsage(file, f) {
		out[u.Name] = u
	}
	return out
}

func TestInferUsageListing1(t *testing.T) {
	u := usageOf(t, `
int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
`, "enclave_process_data")
	if got := u["secrets"]; !got.Reads || got.Writes {
		t.Errorf("secrets = %+v, want read-only", got)
	}
	if got := u["output"]; got.Reads || !got.Writes {
		t.Errorf("output = %+v, want write-only", got)
	}
	if u["secrets"].Attr() != "[in] " || u["output"].Attr() != "[out] " {
		t.Errorf("attrs = %q / %q", u["secrets"].Attr(), u["output"].Attr())
	}
}

func TestInferUsageInOutAndScalars(t *testing.T) {
	u := usageOf(t, `
int scale(float *buf, int n, float k) {
    for (int i = 0; i < n; i++) {
        buf[i] = buf[i] * k;
    }
    return 0;
}
`, "scale")
	if got := u["buf"]; !got.Reads || !got.Writes {
		t.Errorf("buf = %+v, want read+write", got)
	}
	if u["buf"].Attr() != "[in, out] " {
		t.Errorf("attr = %q", u["buf"].Attr())
	}
	if u["n"].Attr() != "" || u["k"].Attr() != "" {
		t.Error("scalars must have no attribute")
	}
}

func TestInferUsageCompoundAndIncDec(t *testing.T) {
	u := usageOf(t, `
void f(int *a, int *b) {
    a[0] += 1;
    b[0]++;
}
`, "f")
	for _, name := range []string{"a", "b"} {
		if got := u[name]; !got.Reads || !got.Writes {
			t.Errorf("%s = %+v, want read+write", name, got)
		}
	}
}

func TestInferUsageEscapeThroughCall(t *testing.T) {
	u := usageOf(t, `
void helper(int *p) { p[0] = 1; }
void f(int *q) { helper(q); }
`, "f")
	if got := u["q"]; !got.Reads || !got.Writes {
		t.Errorf("escaped pointer = %+v, want read+write (conservative)", got)
	}
}

func TestInferUsageUnusedPointerDefaultsIn(t *testing.T) {
	u := usageOf(t, "int f(int *unused) { return 0; }", "f")
	if u["unused"].Attr() != "[in] " {
		t.Errorf("attr = %q", u["unused"].Attr())
	}
}

func TestInferUsageStructAndDeref(t *testing.T) {
	u := usageOf(t, `
struct S { int v; };
void f(struct S *s, int *p) {
    s->v = *p;
}
`, "f")
	if got := u["s"]; got.Reads || !got.Writes {
		t.Errorf("s = %+v, want write-only", got)
	}
	if got := u["p"]; !got.Reads || got.Writes {
		t.Errorf("p = %+v, want read-only", got)
	}
}

func TestGenerateEDLRoundTrips(t *testing.T) {
	src := `
int train(float *data, float *model, int n) {
    float total = 0.0;
    for (int i = 0; i < n; i++) { total += data[i]; }
    model[0] = total / n;
    return 0;
}
int helper(int x) { return x; }
`
	file := minic.MustParse(src)
	draft, err := GenerateEDL(file, []string{"train"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(draft, "public int train([in] float* data, [out] float* model, int n);") {
		t.Errorf("draft:\n%s", draft)
	}
	if strings.Contains(draft, "helper") {
		t.Error("unselected function exported")
	}
	// The draft must parse with the EDL parser and carry the attributes.
	iface, err := Parse(draft)
	if err != nil {
		t.Fatalf("draft does not re-parse: %v\n%s", err, draft)
	}
	sig, ok := iface.ECall("train")
	if !ok {
		t.Fatal("train missing from parsed draft")
	}
	if !sig.Params[0].In || sig.Params[0].Out {
		t.Errorf("data = %+v", sig.Params[0])
	}
	if sig.Params[1].In || !sig.Params[1].Out {
		t.Errorf("model = %+v", sig.Params[1])
	}
}

func TestGenerateEDLAllFunctions(t *testing.T) {
	file := minic.MustParse(`
int a(int *p) { return p[0]; }
int b(int *q) { q[0] = 1; return 0; }
`)
	draft, err := GenerateEDL(file, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(draft, "public int a(") || !strings.Contains(draft, "public int b(") {
		t.Errorf("draft:\n%s", draft)
	}
	if _, err := GenerateEDL(file, []string{"nope"}); err == nil {
		t.Error("unknown selection must error")
	}
}
