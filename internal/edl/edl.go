// Package edl parses Intel SGX Enclave Definition Language (EDL) interface
// files and PrivacyScope's XML rule configuration.
//
// An EDL file declares the enclave boundary: trusted functions (ECALLs,
// callable from the untrusted host) and untrusted functions (OCALLs, calls
// out of the enclave). Pointer parameters carry marshalling attributes in
// brackets: [in] data flows into the enclave (user private data in the
// PrivacyScope threat model), [out] data flows back to the host
// (observable). PrivacyScope's default policy marks [in] parameters as
// secrets and [out] parameters as potential leaking points (§VI-B).
package edl

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// ErrSyntax wraps EDL parse failures.
var ErrSyntax = errors.New("edl: syntax error")

// Interface is a parsed EDL file.
type Interface struct {
	// Trusted lists ECALLs.
	Trusted []*FuncSig
	// Untrusted lists OCALLs.
	Untrusted []*FuncSig
}

// ECall returns the trusted function with the given name.
func (i *Interface) ECall(name string) (*FuncSig, bool) {
	for _, f := range i.Trusted {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// OCallNames returns the names of all untrusted functions.
func (i *Interface) OCallNames() []string {
	out := make([]string, len(i.Untrusted))
	for j, f := range i.Untrusted {
		out[j] = f.Name
	}
	return out
}

// FuncSig is one declared interface function.
type FuncSig struct {
	Name   string
	Return string
	Public bool
	Params []Param
}

// Param is one declared parameter with its marshalling attributes.
type Param struct {
	Name string
	// Type is the C type text, e.g. "char*".
	Type string
	// In marks [in]: data is marshalled into the enclave.
	In bool
	// Out marks [out]: data is marshalled back to the host.
	Out bool
	// Size is the byte count from [size=N], 0 if absent.
	Size int
	// IsString marks [string].
	IsString bool
	// Pointer reports whether the declared type is a pointer.
	Pointer bool
}

// Parse parses EDL source text.
func Parse(src string) (*Interface, error) {
	p := &parser{src: src}
	return p.parse()
}

type parser struct {
	src  string
	off  int
	line int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrSyntax, p.line+1, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.off < len(p.src) {
		c := p.src[p.off]
		if c == '\n' {
			p.line++
		}
		if unicode.IsSpace(rune(c)) {
			p.off++
			continue
		}
		if c == '/' && p.off+1 < len(p.src) && p.src[p.off+1] == '/' {
			for p.off < len(p.src) && p.src[p.off] != '\n' {
				p.off++
			}
			continue
		}
		if c == '/' && p.off+1 < len(p.src) && p.src[p.off+1] == '*' {
			p.off += 2
			for p.off+1 < len(p.src) && !(p.src[p.off] == '*' && p.src[p.off+1] == '/') {
				if p.src[p.off] == '\n' {
					p.line++
				}
				p.off++
			}
			if p.off+1 < len(p.src) {
				p.off += 2 // past the closing */
			} else {
				p.off = len(p.src) // unterminated comment runs to EOF
			}
			continue
		}
		return
	}
}

func (p *parser) peekWord() string {
	p.skipSpace()
	start := p.off
	for start < len(p.src) && (isIdent(p.src[start]) || p.src[start] == '_') {
		start++
	}
	return p.src[p.off:start]
}

func isIdent(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

func (p *parser) word() string {
	w := p.peekWord()
	p.off += len(w)
	return w
}

func (p *parser) expect(tok string) error {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.off:], tok) {
		got := p.src[p.off:]
		if len(got) > 12 {
			got = got[:12]
		}
		return p.errf("expected %q, found %q", tok, got)
	}
	p.off += len(tok)
	return nil
}

func (p *parser) peekByte() byte {
	p.skipSpace()
	if p.off >= len(p.src) {
		return 0
	}
	return p.src[p.off]
}

func (p *parser) parse() (*Interface, error) {
	if err := p.expect("enclave"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	iface := &Interface{}
	for {
		p.skipSpace()
		switch w := p.peekWord(); w {
		case "trusted":
			p.word()
			fns, err := p.parseSection()
			if err != nil {
				return nil, err
			}
			iface.Trusted = append(iface.Trusted, fns...)
		case "untrusted":
			p.word()
			fns, err := p.parseSection()
			if err != nil {
				return nil, err
			}
			iface.Untrusted = append(iface.Untrusted, fns...)
		case "include", "from":
			// "from "other.edl" import *;" and "include "header.h"" are
			// tolerated and skipped to end of line.
			for p.off < len(p.src) && p.src[p.off] != ';' && p.src[p.off] != '\n' {
				p.off++
			}
			if p.off < len(p.src) {
				p.off++
			}
		default:
			if p.peekByte() == '}' {
				p.off++
				p.skipSpace()
				if p.off < len(p.src) && p.src[p.off] == ';' {
					p.off++
				}
				return iface, nil
			}
			return nil, p.errf("unexpected token %q in enclave block", w)
		}
	}
}

func (p *parser) parseSection() ([]*FuncSig, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var fns []*FuncSig
	for {
		if p.peekByte() == '}' {
			p.off++
			p.skipSpace()
			if p.off < len(p.src) && p.src[p.off] == ';' {
				p.off++
			}
			return fns, nil
		}
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		fns = append(fns, fn)
	}
}

func (p *parser) parseFunc() (*FuncSig, error) {
	fn := &FuncSig{}
	w := p.peekWord()
	if w == "public" {
		p.word()
		fn.Public = true
	}
	retType, err := p.parseCType()
	if err != nil {
		return nil, err
	}
	fn.Return = retType
	fn.Name = p.word()
	if fn.Name == "" {
		return nil, p.errf("expected function name")
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peekByte() != ')' {
		if p.peekByte() == 0 {
			return nil, p.errf("unterminated parameter list for %s", fn.Name)
		}
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, param)
		if p.peekByte() == ',' {
			p.off++
		}
	}
	p.off++ // )
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return fn, nil
}

func (p *parser) parseParam() (Param, error) {
	var param Param
	if p.peekByte() == '[' {
		p.off++
		for {
			attr := p.word()
			switch attr {
			case "in":
				param.In = true
			case "out":
				param.Out = true
			case "string":
				param.IsString = true
			case "user_check", "isptr", "readonly":
				// Recognized, no analysis effect.
			case "size", "count":
				if err := p.expect("="); err != nil {
					return param, err
				}
				n := 0
				p.skipSpace()
				for p.off < len(p.src) && p.src[p.off] >= '0' && p.src[p.off] <= '9' {
					n = n*10 + int(p.src[p.off]-'0')
					p.off++
				}
				param.Size = n
			default:
				return param, p.errf("unknown EDL attribute %q", attr)
			}
			if p.peekByte() == ',' {
				p.off++
				continue
			}
			break
		}
		if err := p.expect("]"); err != nil {
			return param, err
		}
	}
	ty, err := p.parseCType()
	if err != nil {
		return param, err
	}
	param.Type = ty
	param.Pointer = strings.HasSuffix(ty, "*")
	param.Name = p.word()
	if param.Name == "" {
		return param, p.errf("expected parameter name after type %q", ty)
	}
	return param, nil
}

// parseCType consumes a C type: qualifiers, a base type, and stars.
func (p *parser) parseCType() (string, error) {
	var parts []string
	for {
		w := p.peekWord()
		switch w {
		case "const", "unsigned", "signed", "long", "short", "struct":
			p.word()
			parts = append(parts, w)
			continue
		case "void", "int", "char", "float", "double", "size_t", "uint8_t",
			"uint32_t", "int32_t", "uint64_t", "int64_t":
			p.word()
			parts = append(parts, w)
		default:
			if len(parts) > 0 && parts[len(parts)-1] == "struct" {
				p.word()
				parts = append(parts, w)
			} else if len(parts) == 0 {
				return "", p.errf("expected type, found %q", w)
			}
		}
		break
	}
	ty := strings.Join(parts, " ")
	for p.peekByte() == '*' {
		p.off++
		ty += "*"
	}
	return ty, nil
}
