package edl

import (
	"strings"
	"testing"
)

// knownSet mirrors the detect registry membership for these tests without
// importing internal/detect (which would cycle through core).
func knownSet(name string) bool {
	switch name {
	case "explicit", "implicit", "timing",
		"ocall-pointer", "errcode-channel", "orderliness", "access-pattern":
		return true
	}
	return false
}

// TestDetectorConfigToggles pins the <detectors>/<lifecycle> surface: the
// block parses into ordered enable/disable lists, the lifecycle gates
// collect into the engine's init map, and a file without the block yields
// nils so the defaults apply untouched.
func TestDetectorConfigToggles(t *testing.T) {
	c, err := ParseConfig([]byte(`
<privacyscope>
    <detectors>
        <enable name="ocall-pointer"/>
        <enable name="orderliness"/>
        <disable name="implicit"/>
    </detectors>
    <lifecycle init="init_session"/>
    <lifecycle init="seal_ready"/>
</privacyscope>`))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ValidateDetectors(knownSet); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	enable, disable := c.DetectorToggles()
	if got, want := strings.Join(enable, ","), "ocall-pointer,orderliness"; got != want {
		t.Errorf("enables %q, want %q", got, want)
	}
	if got, want := strings.Join(disable, ","), "implicit"; got != want {
		t.Errorf("disables %q, want %q", got, want)
	}
	inits := c.InitFuncs()
	if !inits["init_session"] || !inits["seal_ready"] || len(inits) != 2 {
		t.Errorf("init funcs %v, want init_session+seal_ready", inits)
	}

	empty, err := ParseConfig([]byte(`<privacyscope></privacyscope>`))
	if err != nil {
		t.Fatal(err)
	}
	if e, d := empty.DetectorToggles(); e != nil || d != nil {
		t.Errorf("absent block produced toggles %v/%v", e, d)
	}
	if empty.InitFuncs() != nil {
		t.Error("absent lifecycle rules produced an init map")
	}
}

// TestDetectorConfigErrorsAreLineNumbered is the error-reporting regression
// suite: unknown detector names and malformed enable/disable/lifecycle
// entries must each be reported with the 1-based source line of the
// offending element, and a file with several problems must report all of
// them in one error.
func TestDetectorConfigErrorsAreLineNumbered(t *testing.T) {
	cases := []struct {
		name, xml string
		wants     []string
	}{
		{
			name: "unknown-enable",
			xml: "<privacyscope>\n" + // line 1
				"  <detectors>\n" + // line 2
				"    <enable name=\"sidechannel\"/>\n" + // line 3
				"  </detectors>\n" +
				"</privacyscope>",
			wants: []string{`line 3: <enable> names unknown detector "sidechannel"`},
		},
		{
			name:  "unknown-disable",
			xml:   "<privacyscope>\n<detectors>\n\n\n<disable name=\"exp\"/>\n</detectors>\n</privacyscope>",
			wants: []string{`line 5: <disable> names unknown detector "exp"`},
		},
		{
			name:  "enable-missing-name",
			xml:   "<privacyscope>\n<detectors>\n<enable/>\n</detectors>\n</privacyscope>",
			wants: []string{"line 3: <enable> is missing its name attribute"},
		},
		{
			name:  "lifecycle-missing-init",
			xml:   "<privacyscope>\n<lifecycle/>\n</privacyscope>",
			wants: []string{"line 2: <lifecycle> is missing its init attribute"},
		},
		{
			name: "multiple-problems-all-reported",
			xml: "<privacyscope>\n" +
				"  <detectors>\n" +
				"    <enable name=\"timing\"/>\n" +
				"    <enable name=\"bogus\"/>\n" + // line 4
				"    <disable/>\n" + // line 5
				"  </detectors>\n" +
				"  <lifecycle/>\n" + // line 7
				"</privacyscope>",
			wants: []string{
				`line 4: <enable> names unknown detector "bogus"`,
				"line 5: <disable> is missing its name attribute",
				"line 7: <lifecycle> is missing its init attribute",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := ParseConfig([]byte(tc.xml))
			if err != nil {
				t.Fatal(err)
			}
			verr := c.ValidateDetectors(knownSet)
			if verr == nil {
				t.Fatal("malformed config validated cleanly")
			}
			if !strings.HasPrefix(verr.Error(), "edl: rule config: ") {
				t.Errorf("error %q lacks the rule-config prefix", verr)
			}
			for _, want := range tc.wants {
				if !strings.Contains(verr.Error(), want) {
					t.Errorf("error %q does not contain %q", verr, want)
				}
			}
		})
	}
}

// TestDetectorConfigValidClean pins that a fully valid detectors block —
// every registry name, enabled and disabled — validates without error, so
// the validator can never reject a legitimate selection.
func TestDetectorConfigValidClean(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<privacyscope>\n<detectors>\n")
	for _, n := range []string{"explicit", "implicit", "timing",
		"ocall-pointer", "errcode-channel", "orderliness", "access-pattern"} {
		sb.WriteString("<enable name=\"" + n + "\"/>\n")
		sb.WriteString("<disable name=\"" + n + "\"/>\n")
	}
	sb.WriteString("</detectors>\n</privacyscope>")
	c, err := ParseConfig([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ValidateDetectors(knownSet); err != nil {
		t.Fatalf("all-names config rejected: %v", err)
	}
}
