package priml

import (
	"fmt"
	"strconv"
	"unicode"
)

// SyntaxError reports a lexical or parse error with its source position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("priml: %s: %s", e.Pos, e.Msg)
}

type lexer struct {
	src  []rune
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() rune {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() rune {
	r := l.src[l.off]
	l.off++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// next lexes one token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		var text []rune
		for l.off < len(l.src) {
			c := l.peek()
			if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
				break
			}
			text = append(text, l.advance())
		}
		s := string(text)
		if kw, ok := keywords[s]; ok {
			return Token{Kind: kw, Text: s, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: s, Pos: start}, nil
	case unicode.IsDigit(r):
		var text []rune
		for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
			text = append(text, l.advance())
		}
		v, err := strconv.ParseInt(string(text), 10, 64)
		if err != nil {
			return Token{}, &SyntaxError{Pos: start, Msg: "bad integer literal"}
		}
		return Token{Kind: TokInt, Text: string(text), Int: int32(v), Pos: start}, nil
	}
	two := func(kind TokKind, text string) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: kind, Text: text, Pos: start}, nil
	}
	one := func(kind TokKind, text string) (Token, error) {
		l.advance()
		return Token{Kind: kind, Text: text, Pos: start}, nil
	}
	switch r {
	case ':':
		if l.peek2() == '=' {
			return two(TokAssign, ":=")
		}
	case ';':
		return one(TokSemi, ";")
	case '(':
		return one(TokLParen, "(")
	case ')':
		return one(TokRParen, ")")
	case '+':
		return one(TokPlus, "+")
	case '-':
		return one(TokMinus, "-")
	case '*':
		return one(TokStar, "*")
	case '/':
		return one(TokSlash, "/")
	case '%':
		return one(TokPercent, "%")
	case '^':
		return one(TokCaret, "^")
	case '~':
		return one(TokTilde, "~")
	case '&':
		if l.peek2() == '&' {
			return two(TokAndAnd, "&&")
		}
		return one(TokAmp, "&")
	case '|':
		if l.peek2() == '|' {
			return two(TokOrOr, "||")
		}
		return one(TokPipe, "|")
	case '<':
		switch l.peek2() {
		case '<':
			return two(TokShl, "<<")
		case '=':
			return two(TokLe, "<=")
		}
		return one(TokLt, "<")
	case '>':
		switch l.peek2() {
		case '>':
			return two(TokShr, ">>")
		case '=':
			return two(TokGe, ">=")
		}
		return one(TokGt, ">")
	case '=':
		if l.peek2() == '=' {
			return two(TokEq, "==")
		}
	case '!':
		if l.peek2() == '=' {
			return two(TokNe, "!=")
		}
		return one(TokBang, "!")
	}
	return Token{}, &SyntaxError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", r)}
}

// Lex tokenizes an entire PRIML source.
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
