// Package priml implements PRIML, the PrivacyScope InterMediate Language of
// §V of the paper: a small side-effect-free imperative language over 32-bit
// integers with get_secret and declassify primitives.
//
// The package provides the concrete interpreter implementing the base
// operational semantics (ASSIGN/TCOND/FCOND/COMP/DECLASS rules), and the
// PrivacyScope analyzer implementing the PS-* instrumented semantics:
// symbolic values, the τΔ taint map, the path condition π and the
// declassify_check policy of Alg. 1. The analyzer reproduces the trace
// tables of Table II (explicit leakage) and Table III (implicit leakage).
package priml

import "fmt"

// TokKind enumerates PRIML token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota + 1
	TokIdent
	TokInt
	TokAssign // :=
	TokSemi   // ;
	TokLParen
	TokRParen

	TokSkip
	TokIf
	TokThen
	TokElse
	TokGetSecret
	TokDeclassify

	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokShl
	TokShr
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
	TokBang
	TokTilde
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "integer",
	TokAssign: ":=", TokSemi: ";", TokLParen: "(", TokRParen: ")",
	TokSkip: "skip", TokIf: "if", TokThen: "then", TokElse: "else",
	TokGetSecret: "get_secret", TokDeclassify: "declassify",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokAmp: "&", TokPipe: "|", TokCaret: "^", TokShl: "<<", TokShr: ">>",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokAndAnd: "&&", TokOrOr: "||", TokBang: "!", TokTilde: "~",
}

// String names the token kind.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

// Token is a lexed PRIML token.
type Token struct {
	Kind TokKind
	Text string
	Int  int32 // valid when Kind == TokInt
	Pos  Pos
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

var keywords = map[string]TokKind{
	"skip":       TokSkip,
	"if":         TokIf,
	"then":       TokThen,
	"else":       TokElse,
	"get_secret": TokGetSecret,
	"declassify": TokDeclassify,
}
