package priml

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestInterpStraightLine(t *testing.T) {
	p := MustParse(`h1 := 2 * get_secret(secret);
h2 := 3 * get_secret(secret);
x := h1 + h2;
declassify(x);
declassify(h1)`)
	res, err := NewInterp().Run(p, []int32{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Declassified) != 2 {
		t.Fatalf("declassified = %v", res.Declassified)
	}
	if res.Declassified[0] != 80 || res.Declassified[1] != 20 {
		t.Errorf("declassified = %v, want [80 20]", res.Declassified)
	}
	if res.Delta["x"] != 80 || res.Delta["h1"] != 20 || res.Delta["h2"] != 60 {
		t.Errorf("delta = %v", res.Delta)
	}
	if res.DeclassifySites[0] != 1 || res.DeclassifySites[1] != 2 {
		t.Errorf("sites = %v", res.DeclassifySites)
	}
}

func TestInterpBranches(t *testing.T) {
	p := MustParse(`h := 2 * get_secret(secret);
if h - 5 == 14 then declassify(0) else declassify(1)`)
	in := NewInterp()

	// 2*s - 5 == 14 has no integer solution, so with any integer secret
	// the else branch runs. Secret 12 → h=24, 24-5=19 != 14 → 1.
	res, err := in.Run(p, []int32{12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Declassified) != 1 || res.Declassified[0] != 1 {
		t.Errorf("declassified = %v, want [1]", res.Declassified)
	}

	// A satisfiable variant: if h == 14.
	p2 := MustParse(`h := 2 * get_secret(secret);
if h == 14 then declassify(0) else declassify(1)`)
	res, err = in.Run(p2, []int32{7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Declassified[0] != 0 {
		t.Errorf("then-branch value = %v", res.Declassified[0])
	}
}

func TestInterpSecretsExhausted(t *testing.T) {
	p := MustParse("x := get_secret(secret) + get_secret(secret)")
	_, err := NewInterp().Run(p, []int32{1})
	if !errors.Is(err, ErrSecretsExhausted) {
		t.Errorf("err = %v, want ErrSecretsExhausted", err)
	}
}

func TestInterpRunWithInputs(t *testing.T) {
	p := MustParse(`a := get_secret(secret);
b := get_secret(secret);
declassify(a - b)`)
	res, err := NewInterp().RunWithInputs(p, map[int]int32{1: 50, 2: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Declassified[0] != 42 {
		t.Errorf("declassified = %v, want [42]", res.Declassified)
	}
	// Missing occurrences read zero.
	res, err = NewInterp().RunWithInputs(p, map[int]int32{1: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Declassified[0] != 5 {
		t.Errorf("declassified = %v, want [5]", res.Declassified)
	}
}

func TestInterpSkipAndUnknownVar(t *testing.T) {
	p := MustParse("skip; declassify(nosuch)")
	res, err := NewInterp().Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Declassified[0] != 0 {
		t.Error("unknown variable must read 0")
	}
}

func TestInterpOperators(t *testing.T) {
	tests := []struct {
		src     string
		secrets []int32
		want    int32
	}{
		{"declassify(7 % 3)", nil, 1},
		{"declassify(6 / 2)", nil, 3},
		{"declassify(1 << 4)", nil, 16},
		{"declassify(5 & 3)", nil, 1},
		{"declassify(5 | 2)", nil, 7},
		{"declassify(5 ^ 1)", nil, 4},
		{"declassify(3 < 4)", nil, 1},
		{"declassify(4 <= 3)", nil, 0},
		{"declassify(!0)", nil, 1},
		{"declassify(~0)", nil, -1},
		{"declassify(-5)", nil, -5},
		{"declassify(1 && 2)", nil, 1},
		{"declassify(0 || 0)", nil, 0},
	}
	in := NewInterp()
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			res, err := in.Run(MustParse(tt.src), tt.secrets)
			if err != nil {
				t.Fatal(err)
			}
			if res.Declassified[0] != tt.want {
				t.Errorf("got %d, want %d", res.Declassified[0], tt.want)
			}
		})
	}
}

func TestInterpShortCircuitSkipsGetSecret(t *testing.T) {
	// 0 && get_secret() must not consume a secret.
	p := MustParse("x := 0 && get_secret(secret); declassify(x)")
	res, err := NewInterp().Run(p, nil) // empty stream: would fail if consumed
	if err != nil {
		t.Fatal(err)
	}
	if res.Declassified[0] != 0 {
		t.Errorf("got %d", res.Declassified[0])
	}
}

func TestInterpDivideByZero(t *testing.T) {
	p := MustParse("x := 1 / 0")
	if _, err := NewInterp().Run(p, nil); err == nil {
		t.Error("expected divide-by-zero error")
	}
}

// Property (§IV): for l := h1 + 4, the attacker function l-4 recovers h1
// for every input — the program is reversible, hence insecure.
func TestReversibilityOfSection4Example(t *testing.T) {
	p := MustParse("l := get_secret(secret) + 4; declassify(l)")
	in := NewInterp()
	f := func(h1 int32) bool {
		res, err := in.Run(p, []int32{h1})
		if err != nil {
			return false
		}
		return res.Declassified[0]-4 == h1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (§IV): for l := h1 + 4 + h2, two runs with the same h1 but
// different h2 produce different outputs, so h1 cannot be recovered from l
// alone — the program is nonreversible-secure.
func TestNonreversibilityOfSection4Example(t *testing.T) {
	p := MustParse("l := get_secret(secret) + 4 + get_secret(secret); declassify(l)")
	in := NewInterp()
	f := func(h1, h2a, h2b int32) bool {
		if h2a == h2b {
			return true
		}
		r1, err1 := in.Run(p, []int32{h1, h2a})
		r2, err2 := in.Run(p, []int32{h1, h2b})
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Declassified[0] != r2.Declassified[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
