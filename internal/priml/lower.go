package priml

import (
	"fmt"
	"sort"

	"privacyscope/internal/ir"
	"privacyscope/internal/minic"
)

// This file lowers PRIML (§V-A) into the shared analysis IR, so the PS-*
// instrumented semantics run on the same symbolic engine as MiniC enclave
// code. The lowering is 1:1 and effect-preserving:
//
//   - skip lowers to nothing (the PS rules emit no trace row for it);
//   - assignments and expression statements lower to an ExprOp followed by a
//     NoteOp carrying the source statement, which the adapter's NoteHook
//     turns into a Tables II/III simulation row;
//   - conditionals lower to an IfOp whose arms each *start* with the NoteOp,
//     so a row is emitted per feasible branch after π is extended — exactly
//     the PS-TCOND/PS-FCOND row placement (and none for a pruned branch);
//   - get_secret and declassify lower to intrinsic calls the adapter
//     registers with the engine, keeping Alg. 1 outside the engine core.
//
// PRIML variables become module globals with no initializer; the engine's
// ZeroDefaultVars option supplies the default-zero store semantics without
// binding zeros into Δ (unassigned variables must stay out of the trace).

// Intrinsic names the adapter registers with the engine.
const (
	// GetSecretIntrinsic models get_secret(secret, i): the adapter memoizes
	// one fresh secret symbol per syntactic occurrence index.
	GetSecretIntrinsic = "__priml_get_secret"
	// DeclassifyIntrinsic models declassify(e) at a site: the adapter runs
	// the Alg. 1 kernel and returns the declassified value unchanged.
	DeclassifyIntrinsic = "__priml_declassify"
	// EntryFunc is the synthetic IR function holding the program body.
	EntryFunc = "__priml_main"
)

// Lowered is a PRIML program lowered to the shared analysis IR.
type Lowered struct {
	Prog *ir.Program
	// Vars lists every program variable (read or written), sorted.
	Vars []string
	// SitePos maps declassify site IDs to their source positions.
	SitePos map[int]Pos
}

// LowerPRIML lowers a PRIML program into the shared analysis IR.
func LowerPRIML(p *Program) (*Lowered, error) {
	l := &lowerer{
		vars:    make(map[string]bool),
		sitePos: make(map[int]Pos),
		calls:   make(map[string]bool),
	}
	ops, err := l.stmt(p.Body)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(l.vars))
	for name := range l.vars {
		names = append(names, name)
	}
	sort.Strings(names)
	globals := make([]*minic.VarDecl, 0, len(names))
	for _, name := range names {
		globals = append(globals, &minic.VarDecl{
			Name: name,
			Type: minic.Basic{Kind: minic.Int},
		})
	}
	calls := make([]string, 0, len(l.calls))
	for name := range l.calls {
		calls = append(calls, name)
	}
	sort.Strings(calls)
	fn := &ir.Func{
		Name:   EntryFunc,
		Return: minic.Basic{Kind: minic.Void},
		Body:   &ir.BlockOp{Ops: ops},
		Calls:  calls,
	}
	return &Lowered{
		Prog: &ir.Program{
			Module: &minic.File{Globals: globals},
			Funcs:  map[string]*ir.Func{EntryFunc: fn},
		},
		Vars:    names,
		SitePos: l.sitePos,
	}, nil
}

type lowerer struct {
	vars    map[string]bool
	sitePos map[int]Pos
	calls   map[string]bool
}

func mpos(p Pos) minic.Pos { return minic.Pos{Line: p.Line, Col: p.Col} }

func meta(src string, p Pos) ir.Meta { return ir.Meta{Src: src, Pos: mpos(p)} }

func (l *lowerer) stmt(s Stmt) ([]ir.Op, error) {
	switch v := s.(type) {
	case *Skip:
		return nil, nil
	case *Seq:
		var ops []ir.Op
		for _, sub := range v.Stmts {
			subOps, err := l.stmt(sub)
			if err != nil {
				return nil, err
			}
			ops = append(ops, subOps...)
		}
		return ops, nil
	case *Assign:
		rhs, err := l.exp(v.Exp)
		if err != nil {
			return nil, err
		}
		l.vars[v.Var] = true
		src := v.String()
		return []ir.Op{
			&ir.ExprOp{Meta: meta(src, v.Pos), X: &minic.AssignExpr{
				LHS: &minic.IdentExpr{Name: v.Var, Pos: mpos(v.Pos)},
				RHS: rhs,
				Pos: mpos(v.Pos),
			}},
			&ir.NoteOp{Meta: meta(src, v.Pos), Data: src},
		}, nil
	case *ExprStmt:
		x, err := l.exp(v.Exp)
		if err != nil {
			return nil, err
		}
		src := v.String()
		return []ir.Op{
			&ir.ExprOp{Meta: meta(src, v.Pos), X: x},
			&ir.NoteOp{Meta: meta(src, v.Pos), Data: src},
		}, nil
	case *If:
		cond, err := l.exp(v.Cond)
		if err != nil {
			return nil, err
		}
		src := v.String()
		thenOps, err := l.stmt(v.Then)
		if err != nil {
			return nil, err
		}
		elseOps, err := l.stmt(v.Else)
		if err != nil {
			return nil, err
		}
		note := func() ir.Op { return &ir.NoteOp{Meta: meta(src, v.Pos), Data: src} }
		return []ir.Op{&ir.IfOp{
			Meta: meta(src, v.Pos),
			Cond: cond,
			Then: &ir.BlockOp{Meta: meta(src, v.Pos), Ops: append([]ir.Op{note()}, thenOps...)},
			Else: &ir.BlockOp{Meta: meta(src, v.Pos), Ops: append([]ir.Op{note()}, elseOps...)},
		}}, nil
	default:
		return nil, fmt.Errorf("priml: analyzer: unknown statement %T", s)
	}
}

func (l *lowerer) exp(e Exp) (minic.Expr, error) {
	switch v := e.(type) {
	case *IntLit:
		return &minic.IntLitExpr{V: int64(v.V), Pos: mpos(v.Pos)}, nil
	case *Var:
		l.vars[v.Name] = true
		return &minic.IdentExpr{Name: v.Name, Pos: mpos(v.Pos)}, nil
	case *Paren:
		return l.exp(v.X)
	case *GetSecret:
		l.calls[GetSecretIntrinsic] = true
		return &minic.CallExpr{
			Fun:  GetSecretIntrinsic,
			Args: []minic.Expr{&minic.IntLitExpr{V: int64(v.Index), Pos: mpos(v.Pos)}},
			Pos:  mpos(v.Pos),
		}, nil
	case *Unop:
		x, err := l.exp(v.X)
		if err != nil {
			return nil, err
		}
		return &minic.UnExpr{Op: v.Op, X: x, Pos: mpos(v.Pos)}, nil
	case *Binop:
		lhs, err := l.exp(v.L)
		if err != nil {
			return nil, err
		}
		rhs, err := l.exp(v.R)
		if err != nil {
			return nil, err
		}
		return &minic.BinExpr{Op: v.Op, L: lhs, R: rhs, Pos: mpos(v.Pos)}, nil
	case *Declassify:
		x, err := l.exp(v.X)
		if err != nil {
			return nil, err
		}
		l.sitePos[v.Site] = v.Pos
		l.calls[DeclassifyIntrinsic] = true
		return &minic.CallExpr{
			Fun: DeclassifyIntrinsic,
			Args: []minic.Expr{
				x,
				&minic.IntLitExpr{V: int64(v.Site), Pos: mpos(v.Pos)},
			},
			Pos: mpos(v.Pos),
		}, nil
	default:
		return nil, fmt.Errorf("priml: analyzer: unknown expression %T", e)
	}
}
