package priml

import (
	"errors"
	"fmt"

	"privacyscope/internal/sym"
)

// This file implements the base operational semantics of PRIML (the
// un-instrumented rules of §V-A): a concrete interpreter over 32-bit
// integers. The checker uses it to replay leak witnesses, and the
// differential tests use it to validate the symbolic analyzer.

// ErrSecretsExhausted is returned when get_secret is evaluated but the
// secret input stream is empty.
var ErrSecretsExhausted = errors.New("priml: secret input stream exhausted")

// RunResult is the observable outcome of a concrete PRIML execution: the
// sequence of declassified values (what a low observer sees) and the final
// variable context Δ.
type RunResult struct {
	// Declassified lists the values revealed by declassify, in order.
	Declassified []int32
	// DeclassifySites lists, in parallel with Declassified, the site ID
	// of each reveal.
	DeclassifySites []int
	// Delta is the final variable context.
	Delta map[string]int32
}

// Interp is a concrete PRIML interpreter. Each call to Run is independent.
type Interp struct{}

// NewInterp returns a concrete interpreter.
func NewInterp() *Interp { return &Interp{} }

// Run executes the program with the given secret input stream; each
// get_secret consumes the next value.
func (in *Interp) Run(p *Program, secrets []int32) (*RunResult, error) {
	st := &concreteState{
		delta:   make(map[string]int32),
		secrets: secrets,
	}
	if err := st.exec(p.Body); err != nil {
		return nil, err
	}
	return &RunResult{
		Declassified:    st.revealed,
		DeclassifySites: st.revealSites,
		Delta:           st.delta,
	}, nil
}

// RunWithInputs executes the program with secrets addressed by syntactic
// get_secret occurrence index (GetSecret.Index) rather than stream order.
// The checker uses it to replay witnesses produced by the analyzer, whose
// symbols are per-occurrence. Missing occurrences read 0.
func (in *Interp) RunWithInputs(p *Program, inputs map[int]int32) (*RunResult, error) {
	st := &concreteState{
		delta:    make(map[string]int32),
		byOccur:  inputs,
		useOccur: true,
	}
	if err := st.exec(p.Body); err != nil {
		return nil, err
	}
	return &RunResult{
		Declassified:    st.revealed,
		DeclassifySites: st.revealSites,
		Delta:           st.delta,
	}, nil
}

type concreteState struct {
	delta       map[string]int32
	secrets     []int32
	secretIdx   int
	byOccur     map[int]int32
	useOccur    bool
	revealed    []int32
	revealSites []int
}

func (st *concreteState) exec(s Stmt) error {
	switch v := s.(type) {
	case *Skip:
		return nil
	case *Seq:
		for _, sub := range v.Stmts {
			if err := st.exec(sub); err != nil {
				return err
			}
		}
		return nil
	case *Assign:
		val, err := st.eval(v.Exp)
		if err != nil {
			return err
		}
		st.delta[v.Var] = val
		return nil
	case *If:
		cond, err := st.eval(v.Cond)
		if err != nil {
			return err
		}
		if cond != 0 {
			return st.exec(v.Then) // TCOND
		}
		return st.exec(v.Else) // FCOND
	case *ExprStmt:
		_, err := st.eval(v.Exp)
		return err
	default:
		return fmt.Errorf("priml: unknown statement %T", s)
	}
}

func (st *concreteState) eval(e Exp) (int32, error) {
	switch v := e.(type) {
	case *IntLit:
		return v.V, nil
	case *Var:
		// Unknown variables evaluate to 0, matching Δ's total-map
		// reading; PRIML programs under analysis are assumed
		// well-formed (§V-A omits typing).
		return st.delta[v.Name], nil
	case *Paren:
		return st.eval(v.X)
	case *GetSecret:
		if st.useOccur {
			return st.byOccur[v.Index], nil
		}
		if st.secretIdx >= len(st.secrets) {
			return 0, ErrSecretsExhausted
		}
		val := st.secrets[st.secretIdx]
		st.secretIdx++
		return val, nil
	case *Declassify:
		val, err := st.eval(v.X)
		if err != nil {
			return 0, err
		}
		st.revealed = append(st.revealed, val)
		st.revealSites = append(st.revealSites, v.Site)
		return val, nil
	case *Unop:
		x, err := st.eval(v.X)
		if err != nil {
			return 0, err
		}
		res, err := sym.Eval(sym.NewUnary(v.Op, sym.IntConst{V: x}), nil)
		if err != nil {
			return 0, err
		}
		return res.AsInt(), nil
	case *Binop:
		l, err := st.eval(v.L)
		if err != nil {
			return 0, err
		}
		// Short-circuit to match C-like semantics (expressions are
		// side-effect free except declassify/get_secret, which do
		// occur in practice).
		if v.Op == sym.OpLAnd && l == 0 {
			return 0, nil
		}
		if v.Op == sym.OpLOr && l != 0 {
			return 1, nil
		}
		r, err := st.eval(v.R)
		if err != nil {
			return 0, err
		}
		res, err := sym.Eval(sym.NewBinary(v.Op, sym.IntConst{V: l}, sym.IntConst{V: r}), nil)
		if err != nil {
			return 0, err
		}
		return res.AsInt(), nil
	default:
		return 0, fmt.Errorf("priml: unknown expression %T", e)
	}
}
