package priml

import (
	"fmt"
	"sort"

	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
	"privacyscope/internal/taint"
)

// This file implements the PrivacyScope program analysis for PRIML (§V-B):
// the PS-* instrumented operational semantics. Values are pairs <v, τ> of a
// symbolic expression and a taint label; the state carries the variable
// context Δ, the taint map τΔ, and the path condition π. declassify_check
// (Alg. 1) fires on every declassify: a single-tag value is an explicit
// leak; under a single-tag π, values revealed on sibling paths are compared
// through the hashmap hm and a mismatch is an implicit leak. At the end of
// the last path, unmatched hm entries are reported as implicit violations
// (one branch revealed, the sibling did not — observing *whether* output
// happened leaks the secret).

// LeakKind distinguishes explicit and implicit nonreversibility violations.
type LeakKind int

// Leak kinds.
const (
	ExplicitLeak LeakKind = iota + 1
	ImplicitLeak
	// CustomLeak is reported by a user-supplied Options.CustomPolicy.
	CustomLeak
)

// String names the leak kind.
func (k LeakKind) String() string {
	switch k {
	case ExplicitLeak:
		return "explicit"
	case ImplicitLeak:
		return "implicit"
	case CustomLeak:
		return "custom-policy"
	}
	return fmt.Sprintf("leak(%d)", int(k))
}

// Finding is one detected nonreversibility violation.
type Finding struct {
	Kind LeakKind
	// Site is the declassify site ID where the leak is observable.
	Site int
	// Pos is the source position of the declassify.
	Pos Pos
	// Secret is the taint tag of the leaked secret.
	Secret taint.Tag
	// Value is the symbolic expression revealed (explicit leaks).
	Value sym.Expr
	// Values holds the two differing revealed values (implicit leaks).
	Values [2]sym.Expr
	// Path is the path condition under which the leak manifests.
	Path *solver.PathCondition
	// Inversion is the affine recovery formula, when one exists.
	Inversion *sym.Inversion
	// Message is a human-readable description, Box-1 style.
	Message string
}

// Analysis is the result of analyzing a PRIML program.
type Analysis struct {
	Findings []Finding
	// Trace is the row-by-row simulation table (Tables II and III).
	Trace *Trace
	// Paths is the number of completed execution paths.
	Paths int
	// Builder owns the secret symbols minted during the analysis.
	Builder *sym.Builder
	// SecretSymbols maps get_secret occurrence index to its symbol.
	SecretSymbols map[int]*sym.Symbol
}

// HasExplicit reports whether any explicit leak was found.
func (a *Analysis) HasExplicit() bool { return a.count(ExplicitLeak) > 0 }

// HasImplicit reports whether any implicit leak was found.
func (a *Analysis) HasImplicit() bool { return a.count(ImplicitLeak) > 0 }

// Secure reports whether the program satisfies nonreversibility.
func (a *Analysis) Secure() bool { return len(a.Findings) == 0 }

func (a *Analysis) count(k LeakKind) int {
	n := 0
	for _, f := range a.Findings {
		if f.Kind == k {
			n++
		}
	}
	return n
}

// Options configures the analyzer.
type Options struct {
	// PruneInfeasible uses the solver to skip branches whose symbolic
	// path condition is unsatisfiable. Off by default: the paper's
	// PS-TCOND/PS-FCOND rules fork unconditionally (Table III explores
	// the integer-infeasible then-branch of h-5==14). Branches whose
	// condition folds to a constant are never forked, matching the
	// concrete TCOND/FCOND rules.
	PruneInfeasible bool
	// MaxPaths bounds path explosion; 0 means DefaultMaxPaths.
	MaxPaths int
	// RecordTrace enables the Tables II/III simulation trace.
	RecordTrace bool
	// ImplicitCheck enables Alg. 1's hashmap-based implicit detection
	// (ablation switch; on by default).
	ImplicitCheck bool
	// CustomPolicy, when set, is invoked at every declassify *in
	// addition to* the built-in nonreversibility policy — the user
	// extension hook the paper describes ("PRIML's formal semantics can
	// be extended by users who wish to introduce their own specialized
	// notion of nonreversibility", §IX). Return a non-empty message to
	// report a custom violation.
	CustomPolicy func(value sym.Expr, label taint.Label, pi *solver.PathCondition) string
}

// DefaultMaxPaths bounds exploration for pathological inputs.
const DefaultMaxPaths = 4096

// DefaultOptions returns the standard analyzer configuration.
func DefaultOptions() Options {
	return Options{RecordTrace: true, ImplicitCheck: true}
}

// Analyzer detects nonreversibility violations in PRIML programs.
type Analyzer struct {
	opts   Options
	solver *solver.Solver
}

// NewAnalyzer returns an analyzer with the given options.
func NewAnalyzer(opts Options) *Analyzer {
	if opts.MaxPaths <= 0 {
		opts.MaxPaths = DefaultMaxPaths
	}
	return &Analyzer{opts: opts, solver: solver.New()}
}

// Analyze symbolically explores the program and returns all findings.
func (an *Analyzer) Analyze(p *Program) (*Analysis, error) {
	var alloc taint.Allocator
	run := &analysisRun{
		an:      an,
		builder: sym.NewBuilder(&alloc),
		secrets: make(map[int]*sym.Symbol),
		hm:      make(map[taint.Tag]*hmEntry),
		res: &Analysis{
			Trace:         NewTrace(),
			SecretSymbols: make(map[int]*sym.Symbol),
		},
	}
	init := &psState{
		delta: make(map[string]sym.Expr),
		tau:   taint.NewMap(),
		pi:    solver.True(),
	}
	if err := run.exec(p.Body, init, func(st *psState) error {
		run.res.Paths++
		return nil
	}); err != nil {
		return nil, err
	}
	run.finish()
	run.res.Builder = run.builder
	for idx, s := range run.secrets {
		run.res.SecretSymbols[idx] = s
	}
	sortFindings(run.res.Findings)
	return run.res, nil
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Site != fs[j].Site {
			return fs[i].Site < fs[j].Site
		}
		return fs[i].Kind < fs[j].Kind
	})
}

// psState is the per-path analysis state (Δ, τΔ, π).
type psState struct {
	delta map[string]sym.Expr
	tau   *taint.Map
	pi    *solver.PathCondition
}

func (st *psState) clone() *psState {
	d := make(map[string]sym.Expr, len(st.delta))
	for k, v := range st.delta {
		d[k] = v
	}
	return &psState{delta: d, tau: st.tau.Clone(), pi: st.pi}
}

// hmEntry is one slot of Alg. 1's hashmap hm, keyed by the secret tag the
// path condition is tainted with.
type hmEntry struct {
	value    sym.Expr
	site     int
	pos      Pos
	pi       *solver.PathCondition
	reported bool
}

type analysisRun struct {
	an         *Analyzer
	builder    *sym.Builder
	secrets    map[int]*sym.Symbol // get_secret occurrence → symbol
	hm         map[taint.Tag]*hmEntry
	res        *Analysis
	aborted    bool // abort flag for the current trace row
	customSeen map[string]bool
}

// dedupeCustom reports whether the (site, message) custom finding was
// already emitted on a sibling path.
func (r *analysisRun) dedupeCustom(site int, msg string) bool {
	if r.customSeen == nil {
		r.customSeen = make(map[string]bool)
	}
	key := fmt.Sprintf("%d|%s", site, msg)
	if r.customSeen[key] {
		return true
	}
	r.customSeen[key] = true
	return false
}

// exec walks stmt under state st and invokes k on every completed path.
// Forking at conditionals duplicates the continuation.
func (r *analysisRun) exec(s Stmt, st *psState, k func(*psState) error) error {
	switch v := s.(type) {
	case *Skip:
		return k(st)
	case *Seq:
		return r.execSeq(v.Stmts, st, k)
	case *Assign:
		val, err := r.eval(v.Exp, st)
		if err != nil {
			return err
		}
		st.delta[v.Var] = val
		st.tau.Set(v.Var, sym.TaintOf(val)) // PS-ASSIGN with P_assign
		r.traceRow(v.String(), st, nil)
		return k(st)
	case *ExprStmt:
		if _, err := r.eval(v.Exp, st); err != nil {
			return err
		}
		r.traceRow(v.String(), st, nil)
		return k(st)
	case *If:
		return r.execIf(v, st, k)
	default:
		return fmt.Errorf("priml: analyzer: unknown statement %T", s)
	}
}

func (r *analysisRun) execSeq(stmts []Stmt, st *psState, k func(*psState) error) error {
	if len(stmts) == 0 {
		return k(st)
	}
	return r.exec(stmts[0], st, func(next *psState) error {
		return r.execSeq(stmts[1:], next, k)
	})
}

// execIf implements PS-TCOND and PS-FCOND: fork, extend π, and update
// τΔ[π] with P_cond on each side.
func (r *analysisRun) execIf(v *If, st *psState, k func(*psState) error) error {
	if r.res.Paths >= r.an.opts.MaxPaths {
		return fmt.Errorf("priml: analyzer: path budget exhausted (%d)", r.an.opts.MaxPaths)
	}
	cond, err := r.eval(v.Cond, st)
	if err != nil {
		return err
	}
	condTruth := sym.Truth(cond)
	condTaint := sym.TaintOf(cond)

	// A condition that folded to a constant takes exactly one branch,
	// per the concrete TCOND/FCOND rules.
	if c, ok := condTruth.(sym.IntConst); ok {
		body := v.Then
		if c.V == 0 {
			body = v.Else
		}
		r.traceRow(v.String(), st, nil)
		return r.exec(body, st, k)
	}

	takeBranch := func(base *psState, formula sym.Expr, body Stmt) error {
		branch := base.clone()
		branch.pi = branch.pi.And(formula)
		branch.tau.SetPi(condTaint.Join(base.tau.Pi())) // P_cond(t', τΔ[π])
		if r.an.opts.PruneInfeasible && !r.an.solver.Feasible(branch.pi) {
			return nil // infeasible side: no path
		}
		r.traceRow(v.String(), branch, nil)
		return r.exec(body, branch, k)
	}

	if err := takeBranch(st, condTruth, v.Then); err != nil {
		return err
	}
	return takeBranch(st, sym.Negate(condTruth), v.Else)
}

// eval implements the PS expression rules, returning the symbolic value.
// Taint is derived from the expression's free secret symbols.
func (r *analysisRun) eval(e Exp, st *psState) (sym.Expr, error) {
	switch v := e.(type) {
	case *IntLit:
		return sym.IntConst{V: v.V}, nil // PS-CONST
	case *Var:
		if val, ok := st.delta[v.Name]; ok {
			return val, nil // PS-VAR
		}
		return sym.IntConst{V: 0}, nil
	case *Paren:
		return r.eval(v.X, st)
	case *GetSecret:
		// PS-INPUT: one fresh symbol per syntactic occurrence so all
		// paths agree on identity.
		s, ok := r.secrets[v.Index]
		if !ok {
			s = r.builder.FreshSecret("")
			r.secrets[v.Index] = s
		}
		return s, nil
	case *Unop:
		x, err := r.eval(v.X, st)
		if err != nil {
			return nil, err
		}
		return sym.NewUnary(v.Op, x), nil // PS-UNOP
	case *Binop:
		l, err := r.eval(v.L, st)
		if err != nil {
			return nil, err
		}
		rhs, err := r.eval(v.R, st)
		if err != nil {
			return nil, err
		}
		return sym.NewBinary(v.Op, l, rhs), nil // PS-BINOP
	case *Declassify:
		val, err := r.eval(v.X, st)
		if err != nil {
			return nil, err
		}
		r.declassifyCheck(v, val, st) // PS-DECLASS
		return val, nil
	default:
		return nil, fmt.Errorf("priml: analyzer: unknown expression %T", e)
	}
}

// declassifyCheck is Alg. 1.
func (r *analysisRun) declassifyCheck(d *Declassify, val sym.Expr, st *psState) {
	label := sym.TaintOf(val)
	if policy := r.an.opts.CustomPolicy; policy != nil {
		if msg := policy(val, label, st.pi); msg != "" {
			if !r.dedupeCustom(d.Site, msg) {
				r.res.Findings = append(r.res.Findings, Finding{
					Kind:    CustomLeak,
					Site:    d.Site,
					Pos:     d.Pos,
					Value:   val,
					Path:    st.pi,
					Message: msg,
				})
				r.aborted = true
			}
		}
	}
	if tag, single := label.Tag(); single {
		f := Finding{
			Kind:   ExplicitLeak,
			Site:   d.Site,
			Pos:    d.Pos,
			Secret: tag,
			Value:  val,
			Path:   st.pi,
		}
		if secretSym := r.symbolForTag(tag); secretSym != nil {
			if inv, ok := sym.InvertFor(val, secretSym.ID); ok {
				f.Inversion = inv
			}
		}
		f.Message = explicitMessage(f)
		r.res.Findings = append(r.res.Findings, f)
		r.aborted = true
		return
	}
	if !r.an.opts.ImplicitCheck {
		return
	}
	piTag, single := st.pi.Taint().Tag()
	if !single {
		return
	}
	entry, ok := r.hm[piTag]
	switch {
	case !ok:
		r.hm[piTag] = &hmEntry{value: val, site: d.Site, pos: d.Pos, pi: st.pi}
	case !sym.Equal(entry.value, val):
		if !entry.reported {
			f := Finding{
				Kind:   ImplicitLeak,
				Site:   d.Site,
				Pos:    d.Pos,
				Secret: piTag,
				Values: [2]sym.Expr{entry.value, val},
				Path:   st.pi,
			}
			f.Message = implicitMessage(f)
			r.res.Findings = append(r.res.Findings, f)
			entry.reported = true
			r.aborted = true
		}
	default:
		// Sibling path revealed the same value: the pair carries no
		// information about the secret; consume the entry.
		delete(r.hm, piTag)
	}
}

// finish performs the end-of-last-path check of Alg. 1: any unmatched,
// unreported hm entry is an implicit violation (output presence itself
// depends on the secret).
func (r *analysisRun) finish() {
	tags := make([]taint.Tag, 0, len(r.hm))
	for tag := range r.hm {
		tags = append(tags, tag)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	for _, tag := range tags {
		entry := r.hm[tag]
		if entry.reported || r.res.Paths < 2 {
			continue
		}
		f := Finding{
			Kind:   ImplicitLeak,
			Site:   entry.site,
			Pos:    entry.pos,
			Secret: tag,
			Values: [2]sym.Expr{entry.value, nil},
			Path:   entry.pi,
		}
		f.Message = fmt.Sprintf(
			"implicit nonreversibility violation: declassify at site %d executes only on paths where π depends on secret %v; observing output presence reveals the secret",
			entry.site, tag)
		r.res.Findings = append(r.res.Findings, f)
	}
}

func (r *analysisRun) symbolForTag(tag taint.Tag) *sym.Symbol {
	for _, s := range r.secrets {
		if s.Tag == tag {
			return s
		}
	}
	return nil
}

func explicitMessage(f Finding) string {
	msg := fmt.Sprintf(
		"explicit nonreversibility violation at site %d: declassified value %s is tainted only by secret %v",
		f.Site, f.Value, f.Secret)
	if f.Inversion != nil && f.Inversion.Exact {
		msg += "; attacker recovers it via " + f.Inversion.Formula()
	}
	return msg
}

func implicitMessage(f Finding) string {
	return fmt.Sprintf(
		"implicit nonreversibility violation at site %d: paths branching on secret %v declassify different values (%s vs %s)",
		f.Site, f.Secret, f.Values[0], f.Values[1])
}

// traceRow records one simulation-table row if tracing is enabled.
func (r *analysisRun) traceRow(stmt string, st *psState, _ error) {
	if !r.an.opts.RecordTrace {
		r.aborted = false
		return
	}
	row := Row{
		Statement: stmt,
		Delta:     snapshotDelta(st.delta),
		Pi:        st.pi.String(),
		Tau:       snapshotTau(st.tau),
		Hm:        r.snapshotHm(),
		Abort:     r.aborted,
	}
	r.res.Trace.Append(row)
	r.aborted = false
}

func snapshotDelta(delta map[string]sym.Expr) map[string]string {
	out := make(map[string]string, len(delta))
	for k, v := range delta {
		out[k] = trimOuterParens(v.String())
	}
	return out
}

func snapshotTau(tau *taint.Map) map[string]string {
	out := make(map[string]string)
	for k, v := range tau.Entries() {
		out[k] = v.String()
	}
	return out
}

func (r *analysisRun) snapshotHm() map[string]string {
	out := make(map[string]string, len(r.hm))
	for tag, e := range r.hm {
		out[tag.String()] = e.value.String()
	}
	return out
}

func trimOuterParens(s string) string {
	for len(s) >= 2 && s[0] == '(' && s[len(s)-1] == ')' {
		depth := 0
		balanced := true
		for i := 0; i < len(s)-1; i++ {
			switch s[i] {
			case '(':
				depth++
			case ')':
				depth--
			}
			if depth == 0 {
				balanced = false
				break
			}
		}
		if !balanced {
			return s
		}
		s = s[1 : len(s)-1]
	}
	return s
}
