package priml

import (
	"context"
	"fmt"
	"sort"

	"privacyscope/internal/core"
	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
	"privacyscope/internal/symexec"
	"privacyscope/internal/taint"
)

// This file implements the PrivacyScope program analysis for PRIML (§V-B) as
// a thin adapter over the shared analysis stack: the program is lowered to
// the analysis IR (lower.go), explored by the shared symbolic engine
// (internal/symexec), and checked by the Alg. 1 kernel (internal/core). The
// PS-* instrumented semantics fall out of the composition — values are pairs
// <v, τ> because the engine's expressions carry their taint, Δ/τΔ/π are the
// engine's store and path condition, and declassify_check fires from the
// declassify intrinsic. The adapter owns only the PRIML-facing surface:
// lowering, secret-symbol minting per get_secret occurrence, rendering the
// Tables II/III simulation rows from NoteOp hooks, and phrasing findings.

// LeakKind distinguishes explicit and implicit nonreversibility violations.
type LeakKind int

// Leak kinds.
const (
	ExplicitLeak LeakKind = iota + 1
	ImplicitLeak
	// CustomLeak is reported by a user-supplied Options.CustomPolicy.
	CustomLeak
)

// String names the leak kind.
func (k LeakKind) String() string {
	switch k {
	case ExplicitLeak:
		return "explicit"
	case ImplicitLeak:
		return "implicit"
	case CustomLeak:
		return "custom-policy"
	}
	return fmt.Sprintf("leak(%d)", int(k))
}

// Finding is one detected nonreversibility violation.
type Finding struct {
	Kind LeakKind
	// Site is the declassify site ID where the leak is observable.
	Site int
	// Pos is the source position of the declassify.
	Pos Pos
	// Secret is the taint tag of the leaked secret.
	Secret taint.Tag
	// Value is the symbolic expression revealed (explicit leaks).
	Value sym.Expr
	// Values holds the two differing revealed values (implicit leaks).
	Values [2]sym.Expr
	// Path is the path condition under which the leak manifests.
	Path *solver.PathCondition
	// Inversion is the affine recovery formula, when one exists.
	Inversion *sym.Inversion
	// Message is a human-readable description, Box-1 style.
	Message string
}

// Analysis is the result of analyzing a PRIML program.
type Analysis struct {
	Findings []Finding
	// Trace is the row-by-row simulation table (Tables II and III).
	Trace *Trace
	// Paths is the number of completed execution paths.
	Paths int
	// Builder owns the secret symbols minted during the analysis.
	Builder *sym.Builder
	// SecretSymbols maps get_secret occurrence index to its symbol.
	SecretSymbols map[int]*sym.Symbol
}

// HasExplicit reports whether any explicit leak was found.
func (a *Analysis) HasExplicit() bool { return a.count(ExplicitLeak) > 0 }

// HasImplicit reports whether any implicit leak was found.
func (a *Analysis) HasImplicit() bool { return a.count(ImplicitLeak) > 0 }

// Secure reports whether the program satisfies nonreversibility.
func (a *Analysis) Secure() bool { return len(a.Findings) == 0 }

func (a *Analysis) count(k LeakKind) int {
	n := 0
	for _, f := range a.Findings {
		if f.Kind == k {
			n++
		}
	}
	return n
}

// Options configures the analyzer.
type Options struct {
	// PruneInfeasible uses the solver to skip branches whose symbolic
	// path condition is unsatisfiable. Off by default: the paper's
	// PS-TCOND/PS-FCOND rules fork unconditionally (Table III explores
	// the integer-infeasible then-branch of h-5==14). Branches whose
	// condition folds to a constant are never forked, matching the
	// concrete TCOND/FCOND rules.
	PruneInfeasible bool
	// MaxPaths bounds path explosion; 0 means DefaultMaxPaths.
	MaxPaths int
	// RecordTrace enables the Tables II/III simulation trace.
	RecordTrace bool
	// ImplicitCheck enables Alg. 1's hashmap-based implicit detection
	// (ablation switch; on by default).
	ImplicitCheck bool
	// CustomPolicy, when set, is invoked at every declassify *in
	// addition to* the built-in nonreversibility policy — the user
	// extension hook the paper describes ("PRIML's formal semantics can
	// be extended by users who wish to introduce their own specialized
	// notion of nonreversibility", §IX). Return a non-empty message to
	// report a custom violation.
	CustomPolicy func(value sym.Expr, label taint.Label, pi *solver.PathCondition) string
}

// DefaultMaxPaths bounds exploration for pathological inputs.
const DefaultMaxPaths = 4096

// DefaultOptions returns the standard analyzer configuration.
func DefaultOptions() Options {
	return Options{RecordTrace: true, ImplicitCheck: true}
}

// Analyzer detects nonreversibility violations in PRIML programs.
type Analyzer struct {
	opts Options
}

// NewAnalyzer returns an analyzer with the given options.
func NewAnalyzer(opts Options) *Analyzer {
	if opts.MaxPaths <= 0 {
		opts.MaxPaths = DefaultMaxPaths
	}
	return &Analyzer{opts: opts}
}

// Analyze lowers the program to the shared analysis IR, symbolically
// explores it with the shared engine, and returns all findings.
func (an *Analyzer) Analyze(p *Program) (*Analysis, error) {
	low, err := LowerPRIML(p)
	if err != nil {
		return nil, err
	}
	var alloc taint.Allocator
	run := &adapterRun{
		builder: sym.NewBuilder(&alloc),
		secrets: make(map[int]*sym.Symbol),
		low:     low,
		res: &Analysis{
			Trace:         NewTrace(),
			SecretSymbols: make(map[int]*sym.Symbol),
		},
	}
	run.alg1 = core.NewAlg1()
	run.alg1.ImplicitCheck = an.opts.ImplicitCheck
	run.alg1.CustomPolicy = an.opts.CustomPolicy
	run.alg1.SymbolForTag = run.symbolForTag
	run.alg1.OnViolation = run.onViolation

	engOpts := symexec.Options{
		PruneInfeasible: an.opts.PruneInfeasible,
		MaxPaths:        an.opts.MaxPaths,
		// PRIML reads of never-assigned variables evaluate to 0 without
		// entering Δ.
		ZeroDefaultVars: true,
		Intrinsics: map[string]symexec.IntrinsicFunc{
			GetSecretIntrinsic:  run.getSecret,
			DeclassifyIntrinsic: run.declassify,
		},
	}
	if an.opts.RecordTrace {
		engOpts.NoteHook = run.note
	}
	eng := symexec.NewIR(low.Prog, engOpts)
	res, err := eng.AnalyzeFunction(context.Background(), EntryFunc, nil)
	if err != nil {
		return nil, err
	}
	if res.Coverage.Truncated {
		// PRIML analyses are exhaustive or failed: a truncated exploration
		// would make the end-of-last-path hm check unsound, so surface it
		// as an error instead of a partial verdict.
		if res.Coverage.Reason == symexec.TruncPathBudget {
			return nil, fmt.Errorf("priml: analyzer: path budget exhausted (%d)", an.opts.MaxPaths)
		}
		return nil, fmt.Errorf("priml: analyzer: exploration truncated (%s)", res.Coverage.Reason)
	}
	run.res.Paths = len(res.Paths)
	run.alg1.Finish(run.res.Paths)
	run.res.Builder = run.builder
	for idx, s := range run.secrets {
		run.res.SecretSymbols[idx] = s
	}
	sortFindings(run.res.Findings)
	return run.res, nil
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Site != fs[j].Site {
			return fs[i].Site < fs[j].Site
		}
		return fs[i].Kind < fs[j].Kind
	})
}

// adapterRun is the per-analysis state bridging the engine to the PRIML
// surface: the secret-symbol table, the Alg. 1 kernel, and the trace
// renderer. The engine explores PRIML programs sequentially (the NoteHook
// and the hm protocol both require depth-first path order), so no locking
// is needed here.
type adapterRun struct {
	builder *sym.Builder
	secrets map[int]*sym.Symbol // get_secret occurrence → symbol
	low     *Lowered
	alg1    *core.Alg1
	res     *Analysis
	aborted bool // abort flag for the current trace row
}

// getSecret implements PS-INPUT: one fresh symbol per syntactic occurrence
// so all paths agree on identity.
func (r *adapterRun) getSecret(c symexec.IntrinsicCall) (sym.Expr, error) {
	idx := intrinsicIndex(c.Args[0])
	s, ok := r.secrets[idx]
	if !ok {
		s = r.builder.FreshSecret("")
		r.secrets[idx] = s
	}
	return s, nil
}

// declassify implements PS-DECLASS: run Alg. 1 and return the value.
func (r *adapterRun) declassify(c symexec.IntrinsicCall) (sym.Expr, error) {
	val := c.Args[0]
	site := intrinsicIndex(c.Args[1])
	r.alg1.Declassify(site, c.Pos, val, c.PC)
	return val, nil
}

// intrinsicIndex extracts the concrete site / occurrence index the lowering
// embedded as an integer-literal argument.
func intrinsicIndex(e sym.Expr) int {
	if c, ok := e.(sym.IntConst); ok {
		return int(c.V)
	}
	return 0
}

// onViolation phrases one kernel violation as a PRIML finding.
func (r *adapterRun) onViolation(v core.Alg1Violation) {
	pos := Pos{Line: v.Pos.Line, Col: v.Pos.Col}
	switch v.Kind {
	case core.Alg1Custom:
		r.res.Findings = append(r.res.Findings, Finding{
			Kind:    CustomLeak,
			Site:    v.Site,
			Pos:     pos,
			Value:   v.Value,
			Path:    v.Pi,
			Message: v.CustomMessage,
		})
		r.aborted = true
	case core.Alg1Explicit:
		f := Finding{
			Kind:      ExplicitLeak,
			Site:      v.Site,
			Pos:       pos,
			Secret:    v.Tag,
			Value:     v.Value,
			Path:      v.Pi,
			Inversion: v.Inversion,
		}
		f.Message = explicitMessage(f)
		r.res.Findings = append(r.res.Findings, f)
		r.aborted = true
	case core.Alg1Implicit:
		f := Finding{
			Kind:   ImplicitLeak,
			Site:   v.Site,
			Pos:    pos,
			Secret: v.Tag,
			Values: v.Values,
			Path:   v.Pi,
		}
		f.Message = implicitMessage(f)
		r.res.Findings = append(r.res.Findings, f)
		r.aborted = true
	case core.Alg1Presence:
		f := Finding{
			Kind:   ImplicitLeak,
			Site:   v.Site,
			Pos:    pos,
			Secret: v.Tag,
			Values: v.Values,
			Path:   v.Pi,
		}
		f.Message = fmt.Sprintf(
			"implicit nonreversibility violation: declassify at site %d executes only on paths where π depends on secret %v; observing output presence reveals the secret",
			v.Site, v.Tag)
		r.res.Findings = append(r.res.Findings, f)
	}
}

func (r *adapterRun) symbolForTag(tag taint.Tag) *sym.Symbol {
	for _, s := range r.secrets {
		if s.Tag == tag {
			return s
		}
	}
	return nil
}

// note renders one simulation-table row from the engine state at a NoteOp.
// Δ and τΔ are recomputed from the store: a variable is in Δ exactly when
// the path assigned it (ZeroDefaultVars never binds defaults), its label is
// derivable from its value, and π's label is the join over the branch
// conditions taken — the same values PS-ASSIGN/P_cond maintain
// incrementally.
func (r *adapterRun) note(view symexec.StateView, data any) {
	stmt, _ := data.(string)
	delta := make(map[string]string)
	tau := make(map[string]string)
	for _, name := range r.low.Vars {
		if val, ok := view.Value(name); ok {
			delta[name] = trimOuterParens(val.String())
			tau[name] = sym.TaintOf(val).String()
		}
	}
	pc := view.PC()
	if pc.Len() > 0 {
		tau[taint.PiVar] = pc.Taint().String()
	}
	r.res.Trace.Append(Row{
		Statement: stmt,
		Delta:     delta,
		Pi:        pc.String(),
		Tau:       tau,
		Hm:        r.alg1.HmSnapshot(),
		Abort:     r.aborted,
	})
	r.aborted = false
}

func explicitMessage(f Finding) string {
	msg := fmt.Sprintf(
		"explicit nonreversibility violation at site %d: declassified value %s is tainted only by secret %v",
		f.Site, f.Value, f.Secret)
	if f.Inversion != nil && f.Inversion.Exact {
		msg += "; attacker recovers it via " + f.Inversion.Formula()
	}
	return msg
}

func implicitMessage(f Finding) string {
	return fmt.Sprintf(
		"implicit nonreversibility violation at site %d: paths branching on secret %v declassify different values (%s vs %s)",
		f.Site, f.Secret, f.Values[0], f.Values[1])
}

func trimOuterParens(s string) string {
	for len(s) >= 2 && s[0] == '(' && s[len(s)-1] == ')' {
		depth := 0
		balanced := true
		for i := 0; i < len(s)-1; i++ {
			switch s[i] {
			case '(':
				depth++
			case ')':
				depth--
			}
			if depth == 0 {
				balanced = false
				break
			}
		}
		if !balanced {
			return s
		}
		s = s[1 : len(s)-1]
	}
	return s
}
