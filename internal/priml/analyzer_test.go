package priml

import (
	"strings"
	"testing"

	"privacyscope/internal/solver"
	"privacyscope/internal/sym"
	"privacyscope/internal/taint"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewAnalyzer(DefaultOptions()).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const example1 = `h1 := 2 * get_secret(secret);
h2 := 3 * get_secret(secret);
x := h1 + h2;
declassify(x);
declassify(h1)`

// TestTableIIExplicitTrace reproduces Table II: the simulation of
// PrivacyScope detecting the explicit leak in Example 1.
func TestTableIIExplicitTrace(t *testing.T) {
	res := analyze(t, example1)

	if res.Paths != 1 {
		t.Errorf("paths = %d, want 1", res.Paths)
	}
	rows := res.Trace.Rows()
	if len(rows) != 5 {
		t.Fatalf("trace rows = %d, want 5", len(rows))
	}

	// Row 1: Δ = {h1 → 2*s1}.
	if got := rows[0].Delta["h1"]; got != "2 * s1" {
		t.Errorf("row 1 Δ[h1] = %q, want \"2 * s1\"", got)
	}
	if rows[0].Tau["h1"] != "t1" {
		t.Errorf("row 1 τΔ[h1] = %q, want t1", rows[0].Tau["h1"])
	}
	// Row 2: Δ adds h2 → 3*s2.
	if got := rows[1].Delta["h2"]; got != "3 * s2" {
		t.Errorf("row 2 Δ[h2] = %q", got)
	}
	if rows[1].Tau["h2"] != "t2" {
		t.Errorf("row 2 τΔ[h2] = %q, want t2", rows[1].Tau["h2"])
	}
	// Row 3: x → 2*s1 + 3*s2 with τΔ[x] = ⊤.
	if got := rows[2].Delta["x"]; got != "(2 * s1) + (3 * s2)" {
		t.Errorf("row 3 Δ[x] = %q", got)
	}
	if rows[2].Tau["x"] != "⊤" {
		t.Errorf("row 3 τΔ[x] = %q, want ⊤", rows[2].Tau["x"])
	}
	// Row 4: declassify(x) does not abort (x is ⊤).
	if rows[3].Abort {
		t.Error("row 4 must not abort: x is masked by two secrets")
	}
	// Row 5: declassify(h1) aborts (h1 is t1).
	if !rows[4].Abort {
		t.Error("row 5 must abort: h1 is single-tagged")
	}

	// Exactly one finding: explicit leak of s1 at site 2.
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %+v", res.Findings)
	}
	f := res.Findings[0]
	if f.Kind != ExplicitLeak || f.Site != 2 || f.Secret != 1 {
		t.Errorf("finding = %+v", f)
	}
	// The inversion is the paper's "divide the observed value by 2".
	if f.Inversion == nil || !f.Inversion.Exact || f.Inversion.Scale != 2 {
		t.Errorf("inversion = %+v", f.Inversion)
	}
	if !strings.Contains(f.Message, "explicit") {
		t.Errorf("message = %q", f.Message)
	}
}

const example2 = `h := 2 * get_secret(secret);
if h - 5 == 14 then declassify(0) else declassify(1)`

// TestTableIIIImplicitTrace reproduces Table III: the simulation of
// PrivacyScope detecting the implicit leak in Example 2.
func TestTableIIIImplicitTrace(t *testing.T) {
	res := analyze(t, example2)

	if res.Paths != 2 {
		t.Errorf("paths = %d, want 2 (both branches explored)", res.Paths)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %+v", res.Findings)
	}
	f := res.Findings[0]
	if f.Kind != ImplicitLeak {
		t.Errorf("kind = %v, want implicit", f.Kind)
	}
	if f.Secret != 1 {
		t.Errorf("secret = %v, want t1", f.Secret)
	}
	// The two differing declassified values, 0 then 1 (Table III row 3:
	// "the value retrieved from the hashmap hm is 0 which is different
	// from what declassify is outputting (1)").
	if f.Values[0].String() != "0" || f.Values[1].String() != "1" {
		t.Errorf("values = %v, %v; want 0, 1", f.Values[0], f.Values[1])
	}

	rows := res.Trace.Rows()
	// Rows: assign, if(then), declassify(0), if(else), declassify(1).
	if len(rows) != 5 {
		t.Fatalf("trace rows = %d, want 5:\n%s", len(rows), res.Trace.Render())
	}
	if rows[0].Tau["h"] != "t1" {
		t.Errorf("τΔ[h] = %q", rows[0].Tau["h"])
	}
	// Row for then-branch entry: π records the branch condition and
	// τΔ[π] becomes t1.
	if !strings.Contains(rows[1].Pi, "==") {
		t.Errorf("then π = %q", rows[1].Pi)
	}
	if rows[1].Tau[taint.PiVar] != "t1" {
		t.Errorf("τΔ[π] = %q, want t1", rows[1].Tau[taint.PiVar])
	}
	// declassify(0) on the first path stores into hm and does not abort
	// (Table III row 2: "does not report a leakage ... because nothing
	// is stored in the hashmap hm before").
	if rows[2].Abort {
		t.Error("first declassify must not abort")
	}
	if rows[2].Hm["t1"] != "0" {
		t.Errorf("hm after first declassify = %v", rows[2].Hm)
	}
	// π of the second path is the negation.
	if !strings.Contains(rows[3].Pi, "!=") {
		t.Errorf("else π = %q", rows[3].Pi)
	}
	// declassify(1) on the second path aborts.
	if !rows[4].Abort {
		t.Error("second declassify must abort (implicit leak)")
	}
}

// TestNonreversibilityDefinition pins the two §IV examples: l := h1 + 4 is
// insecure; l := h1 + 4 + h2 is secure.
func TestNonreversibilityDefinition(t *testing.T) {
	insecure := analyze(t, "l := get_secret(secret) + 4; declassify(l)")
	if insecure.Secure() || !insecure.HasExplicit() {
		t.Errorf("h1+4 must be insecure: %+v", insecure.Findings)
	}
	f := insecure.Findings[0]
	if f.Inversion == nil || f.Inversion.Offset != 4 || f.Inversion.Scale != 1 {
		t.Errorf("inversion = %+v", f.Inversion)
	}

	secure := analyze(t, "l := get_secret(secret) + 4 + get_secret(secret); declassify(l)")
	if !secure.Secure() {
		t.Errorf("h1+4+h2 must be secure: %+v", secure.Findings)
	}
}

func TestImplicitSameValueBothBranchesIsSecure(t *testing.T) {
	// Both branches reveal the same constant: observing it tells the
	// attacker nothing.
	res := analyze(t, `h := get_secret(secret);
if h == 0 then declassify(5) else declassify(5)`)
	if !res.Secure() {
		t.Errorf("same-value branches must be secure: %+v", res.Findings)
	}
}

func TestImplicitOutputPresenceLeak(t *testing.T) {
	// declassify only on one side: output *presence* leaks the secret.
	// This is the end-of-last-path hm check of Alg. 1.
	res := analyze(t, `h := get_secret(secret);
if h == 0 then declassify(7) else skip`)
	if res.Secure() {
		t.Fatal("one-sided declassify must be insecure")
	}
	if !res.HasImplicit() || res.HasExplicit() {
		t.Errorf("findings = %+v", res.Findings)
	}
}

func TestImplicitMultiSecretBranchIsSecure(t *testing.T) {
	// π tainted by ⊤ (two secrets): revealing branch outcome does not
	// violate nonreversibility.
	res := analyze(t, `a := get_secret(secret);
b := get_secret(secret);
if a + b == 0 then declassify(0) else declassify(1)`)
	if !res.Secure() {
		t.Errorf("⊤-tainted branch must be secure: %+v", res.Findings)
	}
}

func TestImplicitNestedConditions(t *testing.T) {
	// Branching on a public value does not trigger the implicit check.
	res := analyze(t, `p := 3;
if p == 3 then declassify(0) else declassify(1)`)
	if !res.Secure() {
		t.Errorf("public branch must be secure: %+v", res.Findings)
	}
}

func TestExplicitLeakInsideBranch(t *testing.T) {
	res := analyze(t, `h := get_secret(secret);
if h > 0 then declassify(h) else skip`)
	if !res.HasExplicit() {
		t.Fatalf("findings = %+v", res.Findings)
	}
}

func TestXorSelfMaskIsSecureByConstruction(t *testing.T) {
	// h ^ h folds to 0 — no taint reaches the sink.
	res := analyze(t, `h := get_secret(secret);
declassify(h ^ h)`)
	if !res.Secure() {
		t.Errorf("h^h must be secure: %+v", res.Findings)
	}
}

func TestSameSecretTwiceStaysSingleTag(t *testing.T) {
	// h + h is still recoverable (2h): single tag, explicit leak.
	res := analyze(t, `h := get_secret(secret);
declassify(h + h)`)
	if !res.HasExplicit() {
		t.Fatalf("h+h must leak: %+v", res.Findings)
	}
	if inv := res.Findings[0].Inversion; inv == nil || inv.Scale != 2 {
		t.Errorf("inversion = %+v", inv)
	}
}

func TestConcreteConditionTakesOneBranch(t *testing.T) {
	res := analyze(t, `h := get_secret(secret);
if 1 == 1 then declassify(0) else declassify(h)`)
	// The else branch is dead: no leak.
	if !res.Secure() {
		t.Errorf("dead branch must not leak: %+v", res.Findings)
	}
	if res.Paths != 1 {
		t.Errorf("paths = %d, want 1", res.Paths)
	}
}

func TestImplicitCheckAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.ImplicitCheck = false
	p := MustParse(example2)
	res, err := NewAnalyzer(opts).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Secure() {
		t.Errorf("with ImplicitCheck off there must be no findings: %+v", res.Findings)
	}
}

func TestPruneInfeasibleAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.PruneInfeasible = true
	// Example 2's then branch (2s-5==14) is integer-infeasible; with
	// pruning on, only one path completes and no implicit leak fires.
	p := MustParse(example2)
	res, err := NewAnalyzer(opts).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths != 1 {
		t.Errorf("paths = %d, want 1 with pruning", res.Paths)
	}
	// A feasible variant still leaks under pruning.
	p2 := MustParse(`h := get_secret(secret);
if h == 14 then declassify(0) else declassify(1)`)
	res2, err := NewAnalyzer(opts).Analyze(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.HasImplicit() {
		t.Errorf("feasible branches must still leak: %+v", res2.Findings)
	}
}

func TestMaxPathsBudget(t *testing.T) {
	// 2^13 paths from 13 independent secret branches exceeds a budget
	// of 16.
	var sb strings.Builder
	sb.WriteString("h := get_secret(secret);\n")
	for i := 0; i < 13; i++ {
		sb.WriteString("if h > " + string(rune('0')) + " then skip else skip;\n")
	}
	sb.WriteString("skip")
	opts := DefaultOptions()
	opts.MaxPaths = 16
	p := MustParse(sb.String())
	if _, err := NewAnalyzer(opts).Analyze(p); err == nil {
		t.Error("expected path-budget error")
	}
}

func TestFindingsSortedBySite(t *testing.T) {
	res := analyze(t, `a := get_secret(secret);
b := get_secret(secret);
declassify(b);
declassify(a)`)
	if len(res.Findings) != 2 {
		t.Fatalf("findings = %+v", res.Findings)
	}
	if res.Findings[0].Site != 1 || res.Findings[1].Site != 2 {
		t.Errorf("sites = %d, %d", res.Findings[0].Site, res.Findings[1].Site)
	}
}

func TestAnalysisAccessors(t *testing.T) {
	res := analyze(t, example1)
	if res.Secure() {
		t.Error("example1 is insecure")
	}
	if !res.HasExplicit() || res.HasImplicit() {
		t.Error("example1 has exactly an explicit leak")
	}
	if len(res.SecretSymbols) != 2 {
		t.Errorf("SecretSymbols = %v", res.SecretSymbols)
	}
	if res.SecretSymbols[1].Name != "s1" {
		t.Errorf("first secret = %q", res.SecretSymbols[1].Name)
	}
}

func TestTraceRender(t *testing.T) {
	res := analyze(t, example2)
	out := res.Trace.Render()
	for _, want := range []string{"Statement", "Δ", "π", "τΔ", "hm", "abort", "2 * s1", "t1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, out)
		}
	}
	if res.Trace.Len() != len(res.Trace.Rows()) {
		t.Error("Len/Rows mismatch")
	}
}

// TestWitnessReplay closes the loop: the analyzer's explicit finding on
// Example 1 must be confirmed by two concrete runs that differ only in s1,
// with the inversion recovering the secret — the manual verification the
// paper's authors performed, automated.
func TestWitnessReplay(t *testing.T) {
	p := MustParse(example1)
	res, err := NewAnalyzer(DefaultOptions()).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Findings[0]
	if f.Inversion == nil {
		t.Fatal("no inversion")
	}
	in := NewInterp()
	// occurrence 1 = s1, occurrence 2 = s2.
	run1, err := in.RunWithInputs(p, map[int]int32{1: 21, 2: 99})
	if err != nil {
		t.Fatal(err)
	}
	// The leaking site is site 2 → second declassified value.
	observed := run1.Declassified[1]
	recovered := (float64(observed) - f.Inversion.Offset) / f.Inversion.Scale
	if recovered != 21 {
		t.Errorf("recovered = %g, want 21", recovered)
	}
	// Same s1, different s2: the leaking output must not change.
	run2, err := in.RunWithInputs(p, map[int]int32{1: 21, 2: 5})
	if err != nil {
		t.Fatal(err)
	}
	if run2.Declassified[1] != observed {
		t.Error("leaked output must depend only on s1")
	}
}

func TestTaintOfValuesMatchesTauMap(t *testing.T) {
	// The derived-taint representation must agree with the τΔ the trace
	// records, for every row of Example 1.
	res := analyze(t, example1)
	for _, row := range res.Trace.Rows() {
		for v, lbl := range row.Tau {
			if v == taint.PiVar {
				continue
			}
			valStr, ok := row.Delta[v]
			if !ok {
				t.Errorf("τΔ tracks %q but Δ does not", v)
				continue
			}
			_ = valStr
			if lbl != "⊥" && lbl != "⊤" && !strings.HasPrefix(lbl, "t") {
				t.Errorf("bad label %q", lbl)
			}
		}
	}
	_ = sym.IntConst{}
}

// TestCustomPolicyHook exercises the §IX extension point: a user-supplied
// policy enforcing classical noninterference (any taint at all is a
// violation) on top of the built-in nonreversibility check.
func TestCustomPolicyHook(t *testing.T) {
	opts := DefaultOptions()
	opts.CustomPolicy = func(value sym.Expr, label taint.Label, pi *solver.PathCondition) string {
		if !label.IsBottom() || !pi.Taint().IsBottom() {
			return "noninterference: declassified value depends on high input"
		}
		return ""
	}
	// The masked sum satisfies nonreversibility but violates the custom
	// noninterference policy.
	p := MustParse("l := get_secret(secret) + get_secret(secret); declassify(l)")
	res, err := NewAnalyzer(opts).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	var custom, builtin int
	for _, f := range res.Findings {
		switch f.Kind {
		case CustomLeak:
			custom++
			if !strings.Contains(f.Message, "noninterference") {
				t.Errorf("message = %q", f.Message)
			}
		default:
			builtin++
		}
	}
	if custom != 1 {
		t.Errorf("custom findings = %d, want 1", custom)
	}
	if builtin != 0 {
		t.Errorf("builtin findings = %d, want 0 (masked sum is nonreversibility-secure)", builtin)
	}
	if CustomLeak.String() != "custom-policy" {
		t.Error("kind string wrong")
	}
	// Custom findings on sibling paths dedupe.
	p2 := MustParse(`h := get_secret(secret);
if h > 0 then declassify(h) else declassify(h)`)
	res2, err := NewAnalyzer(opts).Analyze(p2)
	if err != nil {
		t.Fatal(err)
	}
	custom = 0
	for _, f := range res2.Findings {
		if f.Kind == CustomLeak {
			custom++
		}
	}
	if custom != 2 { // two distinct sites, one finding each
		t.Errorf("custom findings = %d, want 2", custom)
	}
}
