package priml

import (
	"strings"

	"privacyscope/internal/sym"
)

// Stmt is a PRIML statement per the grammar of §V-A:
//
//	stmt s ::= skip | var := exp | s1 ; s2 | if exp then s1 else s2
//
// Sequencing is flattened into Seq for convenience; a bare declassify(exp)
// in statement position parses to ExprStmt.
type Stmt interface {
	isStmt()
	// String renders the statement in PRIML concrete syntax.
	String() string
}

// Skip is the no-op statement.
type Skip struct {
	Pos Pos
}

func (*Skip) isStmt() {}

// String implements Stmt.
func (*Skip) String() string { return "skip" }

// Assign is var := exp.
type Assign struct {
	Var string
	Exp Exp
	Pos Pos
}

func (*Assign) isStmt() {}

// String implements Stmt.
func (a *Assign) String() string { return a.Var + " := " + a.Exp.String() }

// Seq is a sequence of statements (s1 ; s2 ; …).
type Seq struct {
	Stmts []Stmt
}

func (*Seq) isStmt() {}

// String implements Stmt.
func (s *Seq) String() string {
	parts := make([]string, len(s.Stmts))
	for i, st := range s.Stmts {
		parts[i] = st.String()
	}
	return strings.Join(parts, ";\n")
}

// If is if exp then s1 else s2.
type If struct {
	Cond Exp
	Then Stmt
	Else Stmt
	Pos  Pos
}

func (*If) isStmt() {}

// String implements Stmt.
func (i *If) String() string {
	return "if " + i.Cond.String() + " then " + i.Then.String() + " else " + i.Else.String()
}

// ExprStmt is an expression evaluated for its declassify effect, e.g. a bare
// declassify(x) in statement position.
type ExprStmt struct {
	Exp Exp
	Pos Pos
}

func (*ExprStmt) isStmt() {}

// String implements Stmt.
func (e *ExprStmt) String() string { return e.Exp.String() }

// Exp is a PRIML expression:
//
//	exp e ::= exp ⊙b exp | ⊙u exp | var | get_secret(secret) | v | declassify(exp)
type Exp interface {
	isExp()
	String() string
}

// Var references a variable.
type Var struct {
	Name string
	Pos  Pos
}

func (*Var) isExp() {}

// String implements Exp.
func (v *Var) String() string { return v.Name }

// IntLit is a 32-bit integer literal.
type IntLit struct {
	V   int32
	Pos Pos
}

func (*IntLit) isExp() {}

// String implements Exp.
func (l *IntLit) String() string { return sym.IntConst{V: l.V}.String() }

// Binop applies a binary operator.
type Binop struct {
	Op   sym.Op
	L, R Exp
	Pos  Pos
}

func (*Binop) isExp() {}

// String implements Exp.
func (b *Binop) String() string {
	return b.L.String() + " " + b.Op.String() + " " + b.R.String()
}

// Unop applies a unary operator.
type Unop struct {
	Op  sym.Op
	X   Exp
	Pos Pos
}

func (*Unop) isExp() {}

// String implements Exp.
func (u *Unop) String() string { return u.Op.String() + u.X.String() }

// GetSecret is get_secret(source): reads the next high input from the named
// source. Index numbers the syntactic occurrence (1-based); the analyzer
// mints exactly one secret symbol per occurrence so forked paths agree on
// symbol identity.
type GetSecret struct {
	Source string
	Index  int
	Pos    Pos
}

func (*GetSecret) isExp() {}

// String implements Exp.
func (g *GetSecret) String() string { return "get_secret(" + g.Source + ")" }

// Declassify is declassify(exp): reveals a value to the outside world.
// Site identifies the syntactic occurrence; the analyzer keys the implicit
// leak hashmap hm on it.
type Declassify struct {
	X    Exp
	Site int
	Pos  Pos
}

func (*Declassify) isExp() {}

// String implements Exp.
func (d *Declassify) String() string { return "declassify(" + d.X.String() + ")" }

// Paren preserves explicit parentheses for faithful re-rendering.
type Paren struct {
	X   Exp
	Pos Pos
}

func (*Paren) isExp() {}

// String implements Exp.
func (p *Paren) String() string { return "(" + p.X.String() + ")" }

// Program is a parsed PRIML program.
type Program struct {
	Body Stmt
	// DeclassifySites is the number of syntactic declassify occurrences.
	DeclassifySites int
	// SecretInputs is the number of syntactic get_secret occurrences.
	SecretInputs int
}

// String renders the program.
func (p *Program) String() string { return p.Body.String() }

// Statements flattens the body into a statement list.
func (p *Program) Statements() []Stmt {
	if s, ok := p.Body.(*Seq); ok {
		return s.Stmts
	}
	return []Stmt{p.Body}
}
