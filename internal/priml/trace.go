package priml

import (
	"fmt"
	"sort"
	"strings"
)

// Trace is the simulation table produced by the analyzer: one Row per
// interpreted statement, mirroring Tables II and III of the paper.
type Trace struct {
	rows []Row
}

// Row is one line of a simulation table.
type Row struct {
	// Statement is the PRIML statement interpreted at this step.
	Statement string
	// Delta is the variable context snapshot (variable → symbolic value).
	Delta map[string]string
	// Pi is the rendered path condition.
	Pi string
	// Tau is the τΔ snapshot (variable or π → taint label).
	Tau map[string]string
	// Hm is the hashmap hm snapshot (secret tag → stored value).
	Hm map[string]string
	// Abort reports whether declassify_check fired at this step.
	Abort bool
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Append adds a row.
func (t *Trace) Append(r Row) { t.rows = append(t.rows, r) }

// Rows returns the recorded rows in order.
func (t *Trace) Rows() []Row {
	out := make([]Row, len(t.rows))
	copy(out, t.rows)
	return out
}

// Len returns the number of rows.
func (t *Trace) Len() int { return len(t.rows) }

// Render pretty-prints the trace in the paper's tabular style, with
// deterministic column content (map entries sorted by key).
func (t *Trace) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-45s | %-40s | %-25s | %-25s | %-15s | %s\n",
		"Statement", "Δ", "π", "τΔ", "hm", "abort")
	sb.WriteString(strings.Repeat("-", 165))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&sb, "%-45s | %-40s | %-25s | %-25s | %-15s | %v\n",
			r.Statement, renderMap(r.Delta), r.Pi, renderMap(r.Tau), renderMap(r.Hm), r.Abort)
	}
	return sb.String()
}

func renderMap(m map[string]string) string {
	if len(m) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "→" + m[k]
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
