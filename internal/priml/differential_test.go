package priml

// Differential testing of the PRIML symbolic analyzer against the concrete
// interpreter over randomized programs: along any concrete execution, the
// declassified values must equal the analyzer's symbolic expressions
// evaluated under the same inputs, on the path whose condition the inputs
// satisfy.

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"privacyscope/internal/sym"
)

// progGen builds a random PRIML program from a byte stream (deterministic
// per seed slice, so failures shrink well under testing/quick).
type progGen struct {
	bytes []byte
	off   int
	vars  []string
	nSec  int
}

func (g *progGen) next() byte {
	if g.off >= len(g.bytes) {
		return 0
	}
	b := g.bytes[g.off]
	g.off++
	return b
}

var genOps = []string{"+", "-", "*", "^", "&", "|"}

// expr emits a random side-effect-free expression over existing vars,
// constants and get_secret.
func (g *progGen) expr(depth int) string {
	switch {
	case depth <= 0 || g.next()%3 == 0:
		switch g.next() % 3 {
		case 0:
			return fmt.Sprintf("%d", int8(g.next()))
		case 1:
			if len(g.vars) == 0 {
				g.nSec++
				return "get_secret(secret)"
			}
			return g.vars[int(g.next())%len(g.vars)]
		default:
			g.nSec++
			return "get_secret(secret)"
		}
	default:
		op := genOps[int(g.next())%len(genOps)]
		return "(" + g.expr(depth-1) + " " + op + " " + g.expr(depth-1) + ")"
	}
}

// build emits a straight-line prefix, one optional branch, and a trailing
// declassify of every variable.
func (g *progGen) build() string {
	var lines []string
	nAssign := int(g.next()%4) + 2
	for i := 0; i < nAssign; i++ {
		name := fmt.Sprintf("v%d", i)
		lines = append(lines, fmt.Sprintf("%s := %s", name, g.expr(2)))
		g.vars = append(g.vars, name)
	}
	if g.next()%2 == 0 && len(g.vars) > 0 {
		v := g.vars[int(g.next())%len(g.vars)]
		c := int8(g.next())
		lines = append(lines, fmt.Sprintf(
			"if %s > %d then declassify(%d) else declassify(%d)",
			v, c, int8(g.next()), int8(g.next())))
	}
	for _, v := range g.vars {
		lines = append(lines, "declassify("+v+")")
	}
	return strings.Join(lines, ";\n")
}

// TestDifferentialRandomPrograms: run the analyzer, then for random secret
// inputs run the interpreter and check the concrete declassified values
// match the symbolic values of the matching path.
func TestDifferentialRandomPrograms(t *testing.T) {
	prop := func(seed []byte, s1, s2, s3, s4, s5, s6 int16) bool {
		if len(seed) == 0 {
			return true
		}
		gen := &progGen{bytes: seed}
		src := gen.build()
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, src)
		}
		opts := DefaultOptions()
		opts.RecordTrace = false
		res, err := NewAnalyzer(opts).Analyze(prog)
		if err != nil {
			return true // path budget etc.: not a correctness failure
		}

		inputs := map[int]int32{}
		raw := []int16{s1, s2, s3, s4, s5, s6}
		for i := 1; i <= prog.SecretInputs; i++ {
			inputs[i] = int32(raw[(i-1)%len(raw)])
		}
		run, err := NewInterp().RunWithInputs(prog, inputs)
		if err != nil {
			// Division by zero etc. — symbolic side does not model
			// trapping, skip.
			return true
		}

		// Bind analyzer symbols (keyed by occurrence) to the inputs.
		binding := sym.Binding{}
		for occ, symref := range res.SecretSymbols {
			binding[symref.ID] = sym.IntVal(inputs[occ])
		}
		// The analyzer records declassify events via findings only; to
		// compare outputs, replay the analysis semantics: evaluate the
		// program symbolically once more per concrete path is overkill —
		// instead check the concrete declassified count matches the
		// syntactic expectation and that any explicit finding's value
		// expression reproduces a concrete observation.
		for _, f := range res.Findings {
			if f.Kind != ExplicitLeak || f.Value == nil {
				continue
			}
			want, err := sym.Eval(f.Value, binding)
			if err != nil {
				continue
			}
			found := false
			for i, site := range run.DeclassifySites {
				if site == f.Site && run.Declassified[i] == want.AsInt() {
					found = true
				}
			}
			// The finding's path may not be the concrete one; only
			// check when the path condition holds under the binding.
			holds := true
			for _, c := range f.Path.Conjuncts() {
				v, err := sym.Eval(c, binding)
				if err != nil || v.IsZero() {
					holds = false
				}
			}
			if holds && !found {
				t.Logf("program:\n%s", src)
				t.Logf("finding: %+v, expected value %v, run %v @ %v",
					f, want, run.Declassified, run.DeclassifySites)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestDifferentialBranchAgreement: for programs with a secret branch, the
// concrete run's declassified constants must equal the symbolic path whose
// condition the inputs satisfy.
func TestDifferentialBranchAgreement(t *testing.T) {
	prop := func(secret int16, threshold int8, a, b int8) bool {
		src := fmt.Sprintf(`h := get_secret(secret);
if h > %d then declassify(%d) else declassify(%d)`, threshold, a, b)
		prog := MustParse(src)
		run, err := NewInterp().Run(prog, []int32{int32(secret)})
		if err != nil {
			return false
		}
		want := int32(b)
		if int32(secret) > int32(threshold) {
			want = int32(a)
		}
		return run.Declassified[0] == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
