package priml

import (
	"fmt"

	"privacyscope/internal/sym"
)

// Parse parses a PRIML program. Statements are separated by semicolons;
// a trailing semicolon is allowed.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	body, err := p.parseSeq(func(k TokKind) bool { return k == TokEOF })
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokEOF); err != nil {
		return nil, err
	}
	return &Program{Body: body, DeclassifySites: p.sites, SecretInputs: p.secretInputs}, nil
}

// MustParse parses src and panics on error; for tests and fixed fixtures.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks         []Token
	off          int
	sites        int
	secretInputs int
}

func (p *parser) cur() Token { return p.toks[p.off] }
func (p *parser) advance()   { p.off++ }
func (p *parser) at(k TokKind) bool {
	return p.cur().Kind == k
}

func (p *parser) expect(k TokKind) error {
	if !p.at(k) {
		return &SyntaxError{Pos: p.cur().Pos, Msg: fmt.Sprintf("expected %v, found %v", k, p.cur().Kind)}
	}
	p.advance()
	return nil
}

// parseSeq parses statements until the terminator predicate matches.
func (p *parser) parseSeq(end func(TokKind) bool) (Stmt, error) {
	var stmts []Stmt
	for !end(p.cur().Kind) {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if p.at(TokSemi) {
			p.advance()
			continue
		}
		break
	}
	switch len(stmts) {
	case 0:
		return &Skip{}, nil
	case 1:
		return stmts[0], nil
	default:
		return &Seq{Stmts: stmts}, nil
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokSkip:
		p.advance()
		return &Skip{Pos: tok.Pos}, nil
	case TokIf:
		return p.parseIf()
	case TokIdent:
		// var := exp
		name := tok.Text
		p.advance()
		if err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		e, err := p.parseExp()
		if err != nil {
			return nil, err
		}
		return &Assign{Var: name, Exp: e, Pos: tok.Pos}, nil
	case TokDeclassify:
		e, err := p.parseExp()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{Exp: e, Pos: tok.Pos}, nil
	default:
		return nil, &SyntaxError{Pos: tok.Pos, Msg: fmt.Sprintf("expected statement, found %v", tok.Kind)}
	}
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.cur().Pos
	p.advance() // if
	cond, err := p.parseExp()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokThen); err != nil {
		return nil, err
	}
	thenStmt, err := p.parseBranch()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokElse); err != nil {
		return nil, err
	}
	elseStmt, err := p.parseBranch()
	if err != nil {
		return nil, err
	}
	return &If{Cond: cond, Then: thenStmt, Else: elseStmt, Pos: pos}, nil
}

// parseBranch parses a branch body: either a parenthesized sequence
// "( s1; s2 )" or a single statement.
func (p *parser) parseBranch() (Stmt, error) {
	if p.at(TokLParen) {
		p.advance()
		s, err := p.parseSeq(func(k TokKind) bool { return k == TokRParen })
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return s, nil
	}
	return p.parseStmt()
}

// Operator precedence, loosest to tightest: || ; && ; | ; ^ ; & ;
// == != ; < <= > >= ; << >> ; + - ; * / % ; unary.
var binPrec = map[TokKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokPipe:   3,
	TokCaret:  4,
	TokAmp:    5,
	TokEq:     6, TokNe: 6,
	TokLt: 7, TokLe: 7, TokGt: 7, TokGe: 7,
	TokShl: 8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

var binOps = map[TokKind]sym.Op{
	TokOrOr: sym.OpLOr, TokAndAnd: sym.OpLAnd,
	TokPipe: sym.OpOr, TokCaret: sym.OpXor, TokAmp: sym.OpAnd,
	TokEq: sym.OpEq, TokNe: sym.OpNe,
	TokLt: sym.OpLt, TokLe: sym.OpLe, TokGt: sym.OpGt, TokGe: sym.OpGe,
	TokShl: sym.OpShl, TokShr: sym.OpShr,
	TokPlus: sym.OpAdd, TokMinus: sym.OpSub,
	TokStar: sym.OpMul, TokSlash: sym.OpDiv, TokPercent: sym.OpRem,
}

func (p *parser) parseExp() (Exp, error) {
	return p.parseBin(1)
}

func (p *parser) parseBin(minPrec int) (Exp, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.cur()
		prec, ok := binPrec[tok.Kind]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.advance()
		right, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &Binop{Op: binOps[tok.Kind], L: left, R: right, Pos: tok.Pos}
	}
}

func (p *parser) parseUnary() (Exp, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokMinus:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unop{Op: sym.OpNeg, X: x, Pos: tok.Pos}, nil
	case TokBang:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unop{Op: sym.OpLNot, X: x, Pos: tok.Pos}, nil
	case TokTilde:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unop{Op: sym.OpNot, X: x, Pos: tok.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Exp, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokInt:
		p.advance()
		return &IntLit{V: tok.Int, Pos: tok.Pos}, nil
	case TokIdent:
		p.advance()
		return &Var{Name: tok.Text, Pos: tok.Pos}, nil
	case TokGetSecret:
		p.advance()
		if err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		src := "secret"
		if p.at(TokIdent) {
			src = p.cur().Text
			p.advance()
		}
		if err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		p.secretInputs++
		return &GetSecret{Source: src, Index: p.secretInputs, Pos: tok.Pos}, nil
	case TokDeclassify:
		p.advance()
		if err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		x, err := p.parseExp()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		p.sites++
		return &Declassify{X: x, Site: p.sites, Pos: tok.Pos}, nil
	case TokLParen:
		p.advance()
		x, err := p.parseExp()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &Paren{X: x, Pos: tok.Pos}, nil
	default:
		return nil, &SyntaxError{Pos: tok.Pos, Msg: fmt.Sprintf("expected expression, found %v", tok.Kind)}
	}
}
