package priml

import (
	"errors"
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("h1 := 2 * get_secret(secret); // comment\nif h1 == 4 then skip else declassify(h1)")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokKind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.Kind
	}
	want := []TokKind{
		TokIdent, TokAssign, TokInt, TokStar, TokGetSecret, TokLParen, TokIdent, TokRParen, TokSemi,
		TokIf, TokIdent, TokEq, TokInt, TokThen, TokSkip, TokElse,
		TokDeclassify, TokLParen, TokIdent, TokRParen, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "+ - * / % & | ^ << >> == != < <= > >= && || ! ~ := ; ( )"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF")
	}
	if len(toks) != 25 { // 24 operator tokens + EOF
		t.Errorf("token count = %d, want 25", len(toks))
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("x @ y"); err == nil {
		t.Error("expected error for @")
	}
	var serr *SyntaxError
	_, err := Lex("x @")
	if !errors.As(err, &serr) {
		t.Fatalf("error type = %T", err)
	}
	if serr.Pos.Line != 1 || serr.Pos.Col != 3 {
		t.Errorf("error pos = %v", serr.Pos)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("x\ny")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[1].Pos.Line != 2 {
		t.Errorf("positions = %v, %v", toks[0].Pos, toks[1].Pos)
	}
}

func TestParseExample1(t *testing.T) {
	src := `h1 := 2 * get_secret(secret);
h2 := 3 * get_secret(secret);
x := h1 + h2;
declassify(x);
declassify(h1)`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmts := p.Statements()
	if len(stmts) != 5 {
		t.Fatalf("statement count = %d, want 5", len(stmts))
	}
	if p.DeclassifySites != 2 {
		t.Errorf("DeclassifySites = %d, want 2", p.DeclassifySites)
	}
	if p.SecretInputs != 2 {
		t.Errorf("SecretInputs = %d, want 2", p.SecretInputs)
	}
	if _, ok := stmts[0].(*Assign); !ok {
		t.Errorf("stmt 0 = %T, want *Assign", stmts[0])
	}
	if _, ok := stmts[3].(*ExprStmt); !ok {
		t.Errorf("stmt 3 = %T, want *ExprStmt", stmts[3])
	}
}

func TestParseExample2(t *testing.T) {
	src := `h := 2 * get_secret(secret);
if h - 5 == 14 then declassify(0) else declassify(1)`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmts := p.Statements()
	if len(stmts) != 2 {
		t.Fatalf("statement count = %d", len(stmts))
	}
	ifStmt, ok := stmts[1].(*If)
	if !ok {
		t.Fatalf("stmt 1 = %T, want *If", stmts[1])
	}
	if got := ifStmt.Cond.String(); got != "h - 5 == 14" {
		t.Errorf("cond = %q", got)
	}
}

func TestParsePrecedence(t *testing.T) {
	p := MustParse("x := 1 + 2 * 3")
	a := p.Body.(*Assign)
	bin := a.Exp.(*Binop)
	if bin.Op.String() != "+" {
		t.Fatalf("top op = %v", bin.Op)
	}
	if _, ok := bin.R.(*Binop); !ok {
		t.Error("2*3 must bind tighter than +")
	}
}

func TestParseParenBranch(t *testing.T) {
	p := MustParse("if x == 0 then (a := 1; b := 2) else skip")
	ifStmt := p.Body.(*If)
	seq, ok := ifStmt.Then.(*Seq)
	if !ok || len(seq.Stmts) != 2 {
		t.Errorf("then branch = %T", ifStmt.Then)
	}
}

func TestParseUnary(t *testing.T) {
	p := MustParse("x := -y; z := !w; q := ~v")
	seq := p.Body.(*Seq)
	ops := []string{"-", "!", "~"}
	for i, want := range ops {
		u := seq.Stmts[i].(*Assign).Exp.(*Unop)
		if u.Op.String() != want {
			t.Errorf("unary %d = %v, want %s", i, u.Op, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"x :=",
		"if x then skip",     // missing else
		"x = 3",              // = not :=
		"declassify x",       // missing parens
		"get_secret(secret)", // expression alone is not a statement
		"x := (1 + 2",        // unclosed paren
		"if then skip else skip",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestRoundTripString(t *testing.T) {
	src := "h1 := 2 * get_secret(secret);\nif h1 - 5 == 14 then declassify(0) else declassify(1)"
	p := MustParse(src)
	rendered := p.String()
	// The rendering must itself re-parse to the same shape.
	p2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", rendered, err)
	}
	if p2.String() != rendered {
		t.Errorf("round-trip unstable:\n%s\nvs\n%s", rendered, p2.String())
	}
	if !strings.Contains(rendered, "get_secret(secret)") {
		t.Error("rendering lost get_secret")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic on bad input")
		}
	}()
	MustParse("x :=")
}
