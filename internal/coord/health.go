package coord

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"privacyscope/internal/obs"
)

// WorkerState is the prober-driven availability state machine. Transitions:
//
//	up ──(FailThreshold consecutive failed probes)──▶ down
//	up ──(/healthz answers 503 status=draining)─────▶ draining
//	down/draining ──(one successful probe)──────────▶ up
//
// Routing skips draining and down workers (their ring arcs re-home to the
// next worker clockwise); a recovered probe restores the worker and its
// arc. Workers start up — optimistically routable until evidence arrives —
// so a coordinator can boot before its fleet.
type WorkerState int

const (
	// StateUp: the worker answers probes (or has not yet been probed) and
	// receives its share of the ring.
	StateUp WorkerState = iota
	// StateDraining: the worker announced a graceful shutdown; it still
	// finishes in-flight work but gets no new units.
	StateDraining
	// StateDown: probes fail; the worker's arc is re-homed until it
	// recovers.
	StateDown
)

func (s WorkerState) String() string {
	switch s {
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	default:
		return "up"
	}
}

// worker is one fleet member: stable routing identity, base URL, the
// prober-driven state, and the dispatch-driven circuit breaker.
type worker struct {
	name    string // ring identity (stable across restarts)
	baseURL string
	host    string // URL host, for fault matching and reporting
	breaker *breaker

	mu         sync.Mutex
	state      WorkerState
	consecFail int
	lastErr    string
	lastProbe  time.Time
}

func (w *worker) State() WorkerState {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

// routable reports whether new units may be sent to the worker right now:
// the prober considers it up AND its breaker admits traffic.
func (w *worker) routable(now time.Time) bool {
	return w.State() == StateUp && w.breaker.Allow(now)
}

// setState applies a probe outcome and returns the previous state so the
// caller can emit transition telemetry exactly once per flip.
func (w *worker) setState(s WorkerState, probeErr string, at time.Time) WorkerState {
	w.mu.Lock()
	defer w.mu.Unlock()
	prev := w.state
	w.state = s
	w.lastErr = probeErr
	w.lastProbe = at
	if s == StateUp {
		w.consecFail = 0
	}
	return prev
}

// WorkerHealth is one worker's row in the coordinator's /healthz fleet
// view.
type WorkerHealth struct {
	Name       string    `json:"name"`
	URL        string    `json:"url"`
	State      string    `json:"state"`
	Breaker    string    `json:"breaker"`
	LastProbe  time.Time `json:"lastProbe,omitempty"`
	LastError  string    `json:"lastError,omitempty"`
	ConsecFail int       `json:"consecFailedProbes,omitempty"`
}

func (w *worker) health() WorkerHealth {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerHealth{
		Name:       w.name,
		URL:        w.baseURL,
		State:      w.state.String(),
		Breaker:    w.breaker.State().String(),
		LastProbe:  w.lastProbe,
		LastError:  w.lastErr,
		ConsecFail: w.consecFail,
	}
}

// probe checks one worker's /healthz and advances its state machine. All
// transitions are counted; the down transition carries the probe error.
func (c *Coordinator) probe(ctx context.Context, w *worker) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.HealthTimeout)
	defer cancel()
	now := c.now()

	state, errMsg := c.probeOnce(pctx, w)
	if state != StateUp {
		w.mu.Lock()
		if state == StateDown {
			w.consecFail++
			// Below the failure threshold a blip is forgiven: the worker
			// keeps its current state until the evidence accumulates.
			if w.consecFail < c.cfg.FailThreshold && w.state == StateUp {
				w.lastErr = errMsg
				w.lastProbe = now
				w.mu.Unlock()
				return
			}
		}
		w.mu.Unlock()
	}
	prev := w.setState(state, errMsg, now)
	if prev == state {
		return
	}
	c.obs.Event("coord.worker.state",
		obs.F("worker", w.name), obs.F("from", prev.String()), obs.F("to", state.String()),
		obs.F("error", errMsg))
	switch {
	case state == StateDown:
		c.obs.Add("coord.worker.down", 1)
	case state == StateUp && prev != StateUp:
		c.obs.Add("coord.worker.up", 1)
	}
}

// probeOnce issues the GET /healthz and classifies the answer.
func (c *Coordinator) probeOnce(ctx context.Context, w *worker) (WorkerState, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.baseURL+"/healthz", nil)
	if err != nil {
		return StateDown, err.Error()
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return StateDown, err.Error()
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(nil, resp.Body, 1<<20))
	_ = dec.Decode(&body)
	switch {
	case resp.StatusCode == http.StatusOK:
		return StateUp, ""
	case body.Status == "draining":
		return StateDraining, ""
	default:
		return StateDown, resp.Status
	}
}

// CheckNow probes every worker once, concurrently, and returns when all
// probes have settled. The background prober calls it on each tick; tests
// and the fleet /healthz handler call it directly for a fresh view.
func (c *Coordinator) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			c.probe(ctx, w)
		}(w)
	}
	wg.Wait()
	c.publishGauges()
}

// healthLoop is the background prober: CheckNow every HealthInterval until
// Close.
func (c *Coordinator) healthLoop() {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.CheckNow(context.Background())
		}
	}
}

// parseWorkerSpec splits a "name=url" fleet entry; a bare URL uses its host
// as the ring identity. Stable names matter: the ring hashes the name, so a
// worker that restarts on a new port keeps its arc (and its warm disk
// cache) only if its name survives the restart.
func parseWorkerSpec(spec string) (name, baseURL string, err error) {
	spec = strings.TrimSpace(spec)
	if i := strings.Index(spec, "="); i > 0 && !strings.HasPrefix(spec[i+1:], "=") && !strings.Contains(spec[:i], "/") {
		name, spec = spec[:i], spec[i+1:]
	}
	u, err := url.Parse(spec)
	if err != nil {
		return "", "", err
	}
	if name == "" {
		name = u.Host
	}
	return name, strings.TrimSuffix(spec, "/"), nil
}
