package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"privacyscope/internal/faultinject"
	"privacyscope/internal/obs"
	"privacyscope/internal/server"
)

func TestParseWorkerSpec(t *testing.T) {
	cases := []struct {
		spec, name, url string
	}{
		{"w1=http://10.0.0.1:8321", "w1", "http://10.0.0.1:8321"},
		{"http://10.0.0.1:8321", "10.0.0.1:8321", "http://10.0.0.1:8321"},
		{"w2=http://10.0.0.2:8321/", "w2", "http://10.0.0.2:8321"},
		{" w3=http://h:1 ", "w3", "http://h:1"},
	}
	for _, c := range cases {
		name, url, err := parseWorkerSpec(c.spec)
		if err != nil {
			t.Fatalf("parseWorkerSpec(%q): %v", c.spec, err)
		}
		if name != c.name || url != c.url {
			t.Fatalf("parseWorkerSpec(%q) = (%q, %q), want (%q, %q)", c.spec, name, url, c.name, c.url)
		}
	}
}

func TestNewRejectsDuplicateNames(t *testing.T) {
	_, err := New(Config{Workers: []string{"w=http://a:1", "w=http://b:1"}})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate worker names accepted: %v", err)
	}
}

// TestRingPlacementIsStable: placement is a pure function of worker *names*,
// so it survives URL (port) changes, and removing a worker re-homes only its
// own keys — everyone else's primary is untouched.
func TestRingPlacementIsStable(t *testing.T) {
	mk := func(specs ...string) *Coordinator {
		c, err := New(Config{Workers: specs})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	c1 := mk("w1=http://a:1", "w2=http://a:2", "w3=http://a:3")
	c2 := mk("w1=http://b:9001", "w2=http://b:9002", "w3=http://b:9003")

	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("unit-key-%d", i)
	}
	owned := map[string]int{}
	for _, k := range keys {
		p1, p2 := c1.Primary(k), c2.Primary(k)
		if p1 != p2 {
			t.Fatalf("key %q moved when worker URLs changed: %s vs %s", k, p1, p2)
		}
		owned[p1]++
		// The failover order must list every worker exactly once.
		if got := len(c1.ring.order(k)); got != 3 {
			t.Fatalf("order(%q) visited %d workers, want 3", k, got)
		}
	}
	if len(owned) != 3 {
		t.Fatalf("40 keys landed on %d of 3 workers — ring badly unbalanced: %v", len(owned), owned)
	}

	// Drop w3: only w3's keys may move, and only to surviving workers.
	c3 := mk("w1=http://a:1", "w2=http://a:2")
	for _, k := range keys {
		before, after := c1.Primary(k), c3.Primary(k)
		if before != "w3" && after != before {
			t.Fatalf("key %q re-homed from %s to %s although its owner survived", k, before, after)
		}
		if before == "w3" && after == "w3" {
			t.Fatalf("key %q still routed to removed worker", k)
		}
	}
}

func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(2, time.Second)

	if !b.Allow(now) {
		t.Fatal("fresh breaker must be closed")
	}
	if b.Failure(now) {
		t.Fatal("first failure must not open a threshold-2 breaker")
	}
	if !b.Failure(now) {
		t.Fatal("second consecutive failure must open")
	}
	if b.State() != breakerOpen || b.Allow(now.Add(500*time.Millisecond)) {
		t.Fatal("open breaker admitted traffic inside cooldown")
	}
	// Cooldown elapsed: exactly one half-open trial is admitted.
	trial := now.Add(time.Second)
	if !b.Allow(trial) {
		t.Fatal("cooldown elapsed but no half-open trial admitted")
	}
	if b.Allow(trial) {
		t.Fatal("second concurrent trial admitted in half-open state")
	}
	// Trial fails: re-open immediately, full new cooldown.
	if !b.Failure(trial) {
		t.Fatal("half-open trial failure must re-open")
	}
	if b.Allow(trial.Add(500 * time.Millisecond)) {
		t.Fatal("re-opened breaker admitted traffic inside its new cooldown")
	}
	// Next trial succeeds: closed again.
	if !b.Allow(trial.Add(time.Second)) {
		t.Fatal("second cooldown elapsed but no trial admitted")
	}
	if !b.Success() {
		t.Fatal("Success after half-open must report the close transition")
	}
	if b.State() != breakerClosed || !b.Allow(trial) {
		t.Fatal("breaker not closed after successful trial")
	}
}

// stubWorker is a scripted /v1/analyze endpoint: each call shifts the next
// status off the script (the last entry repeats).
func stubWorker(t *testing.T, script ...int) (*httptest.Server, string, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		n := int(calls.Add(1))
		status := script[len(script)-1]
		if n <= len(script) {
			status = script[n-1]
		}
		w.Header().Set("Content-Type", "application/json")
		if status == http.StatusOK {
			w.Header().Set("X-Privacyscope-Verdict", "findings")
			w.WriteHeader(status)
			w.Write([]byte(`{"engine":"stub","verdict":"findings","findings":[]}`))
			return
		}
		w.WriteHeader(status)
		w.Write([]byte(`{"error":"scripted"}`))
	}))
	t.Cleanup(ts.Close)
	return ts, strings.TrimPrefix(ts.URL, "http://"), &calls
}

// fastCfg returns a dispatch config tuned for tests: microscopic backoffs,
// no background prober.
func fastCfg(m *obs.Metrics, specs ...string) Config {
	return Config{
		Workers:     specs,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Observer:    m,
	}
}

func dispatch(t *testing.T, c *Coordinator, key string) (*Result, error) {
	t.Helper()
	return c.Dispatch(context.Background(), key,
		&server.AnalyzeRequest{Lang: "minic", Source: "x", EDL: "y"}, "")
}

// TestDispatchRetriesBackpressure: 503s are transient by contract — the
// dispatcher backs off and retries the same worker until the script yields.
func TestDispatchRetriesBackpressure(t *testing.T) {
	ts, _, calls := stubWorker(t, 503, 503, 200)
	m := obs.NewMetrics()
	cfg := fastCfg(m, "w1="+ts.URL)
	cfg.RetriesPerWorker = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := dispatch(t, c, "k")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || res.Attempts != 3 || res.Rerouted || res.Worker != "w1" {
		t.Fatalf("res = %+v, want status 200 after 3 attempts on w1", res)
	}
	if got := m.Counter("coord.retry"); got != 2 {
		t.Fatalf("coord.retry = %d, want 2", got)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("worker saw %d calls, want 3", got)
	}
}

// TestDispatchFailsOverFromDeadPrimary: the key's primary is dead from its
// first request; the unit must land on the failover worker, flagged
// rerouted.
func TestDispatchFailsOverFromDeadPrimary(t *testing.T) {
	tsA, hostA, _ := stubWorker(t, 200)
	tsB, hostB, _ := stubWorker(t, 200)
	m := obs.NewMetrics()
	ft := faultinject.NewTransport(nil)
	cfg := fastCfg(m, "w1="+tsA.URL, "w2="+tsB.URL)
	cfg.Client = &http.Client{Transport: ft}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	primary := c.Primary("k")
	deadHost, survivor := hostA, "w2"
	if primary == "w2" {
		deadHost, survivor = hostB, "w1"
	}
	ft.KillAfter(deadHost, 1)

	res, err := dispatch(t, c, "k")
	if err != nil {
		t.Fatal(err)
	}
	if res.Worker != survivor || !res.Rerouted {
		t.Fatalf("res = %+v, want rerouted to %s", res, survivor)
	}
	if got := m.Counter("coord.rerouted"); got != 1 {
		t.Fatalf("coord.rerouted = %d, want 1", got)
	}
}

// TestDispatchRetriesSeveredResponse: a response cut mid-body is transient —
// the attempt is retried, and the retry's whole envelope is the result.
func TestDispatchRetriesSeveredResponse(t *testing.T) {
	ts, host, _ := stubWorker(t, 200)
	ft := faultinject.NewTransport(nil).CutOn(host, 1)
	cfg := fastCfg(obs.NewMetrics(), "w1="+ts.URL)
	cfg.Client = &http.Client{Transport: ft}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := dispatch(t, c, "k")
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (cut, then whole)", res.Attempts)
	}
	var body map[string]any
	if err := json.Unmarshal(res.Body, &body); err != nil {
		t.Fatalf("retried body does not decode: %v (%q)", err, res.Body)
	}
}

// TestDispatchExhaustion: a fleet that refuses everything exhausts the
// attempt budget and fails with an explicit errExhausted — the caller turns
// this into an Error slot, never a silent drop.
func TestDispatchExhaustion(t *testing.T) {
	ts, host, _ := stubWorker(t, 200)
	ft := faultinject.NewTransport(nil).KillAfter(host, 1)
	m := obs.NewMetrics()
	cfg := fastCfg(m, "w1="+ts.URL)
	cfg.Client = &http.Client{Transport: ft}
	cfg.MaxAttempts = 3
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := dispatch(t, c, "k")
	if res != nil || err == nil {
		t.Fatalf("dispatch to a dead fleet returned (%v, %v)", res, err)
	}
	var ex *errExhausted
	if !errors.As(err, &ex) {
		t.Fatalf("error = %v, want *errExhausted", err)
	}
	if !errors.Is(err, faultinject.ErrRefused) {
		t.Fatalf("exhaustion must preserve the last transient cause, got %v", err)
	}
	if got := m.Counter("coord.exhausted"); got != 1 {
		t.Fatalf("coord.exhausted = %d, want 1", got)
	}
}

// TestDispatchBreakerOpensAndFailsOver: enough consecutive transient
// failures open the primary's breaker mid-dispatch; the unit fails over and
// the breaker counter fires.
func TestDispatchBreakerOpensAndFailsOver(t *testing.T) {
	tsA, hostA, _ := stubWorker(t, 200)
	tsB, hostB, _ := stubWorker(t, 200)
	m := obs.NewMetrics()
	ft := faultinject.NewTransport(nil)
	cfg := fastCfg(m, "w1="+tsA.URL, "w2="+tsB.URL)
	cfg.Client = &http.Client{Transport: ft}
	cfg.RetriesPerWorker = 4
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour // no half-open during the test
	cfg.MaxAttempts = 8
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadHost := hostA
	if c.Primary("k") == "w2" {
		deadHost = hostB
	}
	ft.KillAfter(deadHost, 1)

	res, err := dispatch(t, c, "k")
	if err != nil {
		t.Fatal(err)
	}
	// The breaker (threshold 2) must have cut the primary off before its
	// retry allowance (4) was spent.
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (2 on the primary until the breaker opened, 1 on the survivor)", res.Attempts)
	}
	if got := m.Counter("coord.breaker.opened"); got != 1 {
		t.Fatalf("coord.breaker.opened = %d, want 1", got)
	}
	// A second dispatch of the same key skips the broken primary in pass 1
	// and is served by the survivor without burning retries on the corpse...
	res2, err := dispatch(t, c, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Rerouted {
		t.Fatalf("res2 = %+v, want rerouted (primary circuit open)", res2)
	}
}

// TestProbeStateMachine drives a worker through draining, down and
// recovery, asserting the forgiveness threshold and transition counters.
func TestProbeStateMachine(t *testing.T) {
	var mode atomic.Value // "ok" | "draining" | "dead"
	mode.Store("ok")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load() {
		case "draining":
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"status":"draining"}`))
		case "dead":
			w.WriteHeader(http.StatusInternalServerError)
		default:
			w.Write([]byte(`{"status":"ok"}`))
		}
	}))
	defer ts.Close()

	m := obs.NewMetrics()
	cfg := fastCfg(m, "w1="+ts.URL)
	cfg.FailThreshold = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := c.workers[0]
	ctx := context.Background()

	c.CheckNow(ctx)
	if w.State() != StateUp || !w.routable(c.now()) {
		t.Fatalf("healthy worker state = %v", w.State())
	}

	mode.Store("draining")
	c.CheckNow(ctx)
	if w.State() != StateDraining || w.routable(c.now()) {
		t.Fatalf("draining worker state = %v, routable = %v", w.State(), w.routable(c.now()))
	}

	mode.Store("ok")
	c.CheckNow(ctx)
	if w.State() != StateUp {
		t.Fatalf("recovered worker state = %v", w.State())
	}
	if got := m.Counter("coord.worker.up"); got != 1 {
		t.Fatalf("coord.worker.up after draining recovery = %d, want 1", got)
	}

	// One failed probe is forgiven (below FailThreshold)…
	mode.Store("dead")
	c.CheckNow(ctx)
	if w.State() != StateUp {
		t.Fatalf("single probe blip ejected the worker: %v", w.State())
	}
	// …the second is not.
	c.CheckNow(ctx)
	if w.State() != StateDown || w.routable(c.now()) {
		t.Fatalf("worker not down after %d failed probes: %v", 2, w.State())
	}
	if got := m.Counter("coord.worker.down"); got != 1 {
		t.Fatalf("coord.worker.down = %d, want 1", got)
	}

	mode.Store("ok")
	c.CheckNow(ctx)
	if w.State() != StateUp {
		t.Fatalf("worker did not recover: %v", w.State())
	}
	if got := m.Counter("coord.worker.up"); got != 2 {
		t.Fatalf("coord.worker.up = %d, want 2 (draining recovery + down recovery)", got)
	}
	if got := m.Gauge("coord.workers.up"); got != 1 {
		t.Fatalf("coord.workers.up gauge = %d, want 1", got)
	}
}

// TestHandlerRejectsOversizedBody: the coordinator's own HTTP surface cuts
// oversized bodies with 413 and a JSON error envelope — same hardening
// contract as a worker daemon.
func TestHandlerRejectsOversizedBody(t *testing.T) {
	ts, _, _ := stubWorker(t, 200)
	c, err := New(fastCfg(obs.NewMetrics(), "w1="+ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ch := httptest.NewServer(c.Handler(HandlerConfig{MaxSourceBytes: 1024}))
	defer ch.Close()

	big := strings.Repeat("x", 256<<10)
	body := fmt.Sprintf(`{"source":%q,"edl":"e"}`, big)
	resp, err := http.Post(ch.URL+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("413 must carry a JSON error envelope: %v (%q)", err, e.Error)
	}
}

// TestHandlerHealthz: the fleet view lists every worker with state and
// breaker, and the coordinator is 200 while any worker is routable.
func TestHandlerHealthz(t *testing.T) {
	tsA, _, _ := stubWorker(t, 200)
	tsB, hostB, _ := stubWorker(t, 200)
	ft := faultinject.NewTransport(nil).KillAfter(hostB, 1)
	m := obs.NewMetrics()
	cfg := fastCfg(m, "w1="+tsA.URL, "w2="+tsB.URL)
	cfg.Client = &http.Client{Transport: ft}
	cfg.FailThreshold = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ch := httptest.NewServer(c.Handler(HandlerConfig{}))
	defer ch.Close()

	resp, err := http.Get(ch.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 while one worker is live", resp.StatusCode)
	}
	var view struct {
		Role     string         `json:"role"`
		Routable int            `json:"routable"`
		Workers  []WorkerHealth `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Role != "coordinator" || view.Routable != 1 || len(view.Workers) != 2 {
		t.Fatalf("fleet view = %+v", view)
	}
	states := map[string]string{}
	for _, w := range view.Workers {
		states[w.Name] = w.State
	}
	if states["w1"] != "up" || states["w2"] != "down" {
		t.Fatalf("states = %v, want w1 up / w2 down", states)
	}
}
