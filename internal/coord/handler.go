package coord

// The coordinator's HTTP front end: the same /v1/analyze surface a worker
// daemon exposes (so clients need no new protocol — point them at the
// coordinator instead of a worker), plus a project endpoint that fans a
// whole unit set across the fleet, a /healthz that reports per-worker
// state, and /metrics for the coord.* registry. See docs/SERVER.md.

import (
	"encoding/json"
	"errors"
	"net/http"

	"privacyscope"
	"privacyscope/internal/batch"
	"privacyscope/internal/obs"
	"privacyscope/internal/server"
)

// HandlerConfig sizes the coordinator's HTTP surface.
type HandlerConfig struct {
	// MaxSourceBytes bounds the combined sources of one analyze request
	// (≤0: 1 MiB); the project endpoint allows 16× for its unit list.
	// Oversized bodies get 413 with a JSON error envelope.
	MaxSourceBytes int
	// Jobs bounds how many units of one project submission dispatch
	// concurrently (≤0: 4× the fleet size).
	Jobs int
}

type handler struct {
	c   *Coordinator
	cfg HandlerConfig
	mux *http.ServeMux
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler(cfg HandlerConfig) http.Handler {
	if cfg.MaxSourceBytes <= 0 {
		cfg.MaxSourceBytes = 1 << 20
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 4 * len(c.workers)
	}
	h := &handler{c: c, cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", h.handleAnalyze)
	mux.HandleFunc("POST /v1/project", h.handleProject)
	mux.HandleFunc("GET /healthz", h.handleHealthz)
	mux.HandleFunc("GET /metrics", h.handleMetrics)
	h.mux = mux
	return h
}

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// decodeBody decodes a JSON request bounded at limit bytes, mapping an
// overrun onto 413 (with its JSON envelope) instead of a generic 400.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, into any) bool {
	body := http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(body).Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSONError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the configured limit")
			return false
		}
		writeJSONError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// handleAnalyze proxies one module analysis to the worker that owns its
// cache key, with the full retry/re-route pipeline behind it. The response
// is the worker's envelope verbatim; routing facts ride in headers
// (X-Privacyscope-Worker, X-Privacyscope-Rerouted) and the traceparent
// echoes the trace the worker recorded under.
func (h *handler) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req server.AnalyzeRequest
	if !decodeBody(w, r, int64(h.cfg.MaxSourceBytes)+64*1024, &req) {
		return
	}
	if err := req.Validate(h.cfg.MaxSourceBytes); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	traceID, _, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		traceID = obs.NewTraceID()
	}
	key := server.CacheKey(h.c.engine, &req)
	res, err := h.c.Dispatch(r.Context(), key, &req, traceID)
	if err != nil {
		var ex *errExhausted
		if errors.As(err, &ex) {
			// Every retry spent: the unit is lost to this submission, but
			// the loss is explicit — 503 with the cause, and the client may
			// resubmit (the fleet may have healed).
			writeJSONError(w, http.StatusServiceUnavailable, ex.Error())
			return
		}
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	hdr := w.Header()
	hdr.Set("Content-Type", "application/json")
	hdr.Set("traceparent", obs.FormatTraceparent(traceID, obs.NewSpanID()))
	hdr.Set("X-Privacyscope-Worker", res.Worker)
	if res.Rerouted {
		hdr.Set("X-Privacyscope-Rerouted", "true")
	}
	if res.Verdict != "" {
		hdr.Set("X-Privacyscope-Verdict", res.Verdict)
	}
	if res.Cache != "" {
		hdr.Set("X-Privacyscope-Cache", res.Cache)
	}
	w.WriteHeader(res.Status)
	w.Write(res.Body)
}

// ProjectRequest is the POST /v1/project body: a unit set (what
// batch.Discover finds on disk, shipped inline) plus the shared engine
// options.
type ProjectRequest struct {
	// Root labels the report (informational).
	Root string `json:"root,omitempty"`
	// Units are the analysis units to fan across the fleet.
	Units []ProjectUnitRequest `json:"units"`
	// Options tunes the engine for every unit.
	Options privacyscope.AnalysisOptions `json:"options,omitempty"`
	// DefaultRules is the rule file for units without their own.
	DefaultRules string `json:"defaultRules,omitempty"`
}

// ProjectUnitRequest is one unit of a project submission.
type ProjectUnitRequest struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	EDL    string `json:"edl"`
	Rules  string `json:"rules,omitempty"`
}

// handleProject fans a unit set across the fleet and answers with the
// batch ProjectEnvelope. Status maps the aggregate verdict onto the
// fail-soft contract: 200 for secure/findings (the analysis ran to
// completion everywhere), 206 when any unit degraded or was lost — partial
// coverage made visible, never a silent drop.
func (h *handler) handleProject(w http.ResponseWriter, r *http.Request) {
	var req ProjectRequest
	if !decodeBody(w, r, int64(h.cfg.MaxSourceBytes)*16, &req) {
		return
	}
	if len(req.Units) == 0 {
		writeJSONError(w, http.StatusBadRequest, "project submission has no units")
		return
	}
	units := make([]batch.Unit, 0, len(req.Units))
	for _, u := range req.Units {
		if u.Name == "" || u.Source == "" || u.EDL == "" {
			writeJSONError(w, http.StatusBadRequest,
				"unit "+u.Name+" missing name, source or edl")
			return
		}
		units = append(units, batch.Unit{Name: u.Name, Source: u.Source, EDL: u.EDL, Rules: u.Rules})
	}
	traceID, _, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		traceID = obs.NewTraceID()
	}
	rep := h.c.RunProject(r.Context(), req.Root, units, req.Options, req.DefaultRules, h.cfg.Jobs, traceID)
	env := rep.Envelope(nil)
	env.TraceID = traceID
	status := http.StatusOK
	switch rep.Verdict() {
	case privacyscope.VerdictInconclusive, privacyscope.VerdictError:
		status = http.StatusPartialContent
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("traceparent", obs.FormatTraceparent(traceID, obs.NewSpanID()))
	w.Header().Set("X-Privacyscope-Verdict", rep.Verdict().String())
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(env)
}

// handleHealthz reports the coordinator's own liveness plus the fleet
// view: per-worker state/breaker rows, refreshed by an on-demand probe
// round so the answer is current, not last-tick. 503 only when no worker
// is routable — a coordinator with any live worker is serving.
func (h *handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h.c.CheckNow(r.Context())
	routable := h.c.RoutableWorkers()
	status, code := "ok", http.StatusOK
	if routable == 0 {
		status, code = "no routable workers", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":   status,
		"role":     "coordinator",
		"engine":   h.c.engine,
		"version":  privacyscope.EngineVersion,
		"routable": routable,
		"workers":  h.c.FleetHealth(),
	})
}

// handleMetrics serves the coord.* registry in Prometheus exposition form
// (when the coordinator was built over an obs.Metrics).
func (h *handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	h.c.publishGauges()
	m, ok := h.c.obs.(*obs.Metrics)
	if !ok {
		writeJSONError(w, http.StatusNotImplemented, "coordinator has no metrics observer")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m.WritePrometheus(w)
}
