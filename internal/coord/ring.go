package coord

import (
	"hash/fnv"
	"sort"
)

// vnodes is how many virtual points each worker claims on the ring. More
// points smooth the key distribution; 64 keeps the per-fleet ring tiny
// (a few KiB) while bounding the largest worker share within a few percent
// of fair for realistic fleet sizes.
const vnodes = 64

// ring is the consistent-hash routing table: each worker claims vnodes
// points on a 64-bit circle (hashed from its stable name, not its URL, so
// the placement survives restarts and port changes), and a unit's cache key
// routes to the first worker clockwise from its own hash. Consistent
// hashing is what makes placement cache-aware: the same key always lands on
// the same worker — where its disk-cache entry is warm — and a worker
// leaving re-homes only its own arc to the next worker instead of
// reshuffling the whole fleet.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	w    *worker
}

func newRing(workers []*worker) *ring {
	r := &ring{points: make([]ringPoint, 0, len(workers)*vnodes)}
	for _, w := range workers {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(w.name, byte(i)), w: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// order returns every distinct worker in ring-walk order starting clockwise
// from key's hash: index 0 is the unit's primary (warm-cache home), the rest
// is the failover sequence its arc re-homes along.
func (r *ring) order(key string) []*worker {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key, 0xff)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[*worker]bool)
	var out []*worker
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.w] {
			seen[p.w] = true
			out = append(out, p.w)
		}
	}
	return out
}

func hash64(s string, salt byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	h.Write([]byte{salt})
	return fmix64(h.Sum64())
}

// fmix64 is the murmur3 finalizer. Raw FNV-1a barely avalanches on short
// inputs — a fleet of "w1".."w3" names with sequential vnode salts hashes
// into one narrow band of the circle, collapsing the whole ring onto a
// single worker. The finalizer spreads those clustered values uniformly.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
