package coord

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-worker circuit breaker over dispatch outcomes. The
// health prober watches /healthz on a timer; the breaker watches the
// requests themselves, so a worker that answers probes but fails real work
// (flapping, overloaded, half-partitioned) still gets ejected: threshold
// consecutive transient failures open the circuit, Allow refuses routing to
// it until cooldown has passed, then one half-open trial request decides —
// success re-closes the circuit, failure re-opens it for another cooldown.
// While a worker's circuit is open its ring arc re-homes to the next worker
// exactly as if the prober had marked it down.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	consec   int
	openedAt time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may be routed to the worker now. In the
// open state it flips to half-open once cooldown has elapsed and admits
// exactly one trial; further requests are refused until Success or Failure
// settles the trial.
func (b *breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: one trial is already in flight
		return false
	}
}

// Success records a completed request; it closes the circuit from any
// state. Returns true when this call transitioned the breaker back to
// closed from open/half-open (for telemetry).
func (b *breaker) Success() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	reopened := b.state != breakerClosed
	b.state = breakerClosed
	b.consec = 0
	return reopened
}

// Failure records a transient dispatch failure. A half-open trial failure
// re-opens immediately; in the closed state the threshold-th consecutive
// failure opens. Returns true when this call opened the circuit.
func (b *breaker) Failure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	if b.state == breakerOpen {
		return false
	}
	if b.state == breakerHalfOpen || b.consec >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
		return true
	}
	return false
}

// State returns the current state for health reporting.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
