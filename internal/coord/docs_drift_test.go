package coord

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privacyscope/internal/faultinject"
	"privacyscope/internal/obs"
	"privacyscope/internal/obs/obstest"
	"privacyscope/internal/server"
)

// keyOwnedBy searches for a key whose ring primary is the named worker.
func keyOwnedBy(t *testing.T, c *Coordinator, name string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("drift-key-%d", i)
		if c.Primary(k) == name {
			return k
		}
	}
	t.Fatalf("no key routes to %s", name)
	return ""
}

// TestCoordRegistryMatchesDocs is the coordinator's documentation drift
// gate (the same contract internal/server enforces for server.*): exercise
// routing, retries, re-routing, breaker open/close, exhaustion and health
// probing on one shared Metrics, then require every emitted counter, gauge,
// span and distribution to have a docs/OBSERVABILITY.md registry row.
func TestCoordRegistryMatchesDocs(t *testing.T) {
	documented := obstest.DocRegistry(t, filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))

	m := obs.NewMetrics()
	url, host := startWorker(t)
	req := &server.AnalyzeRequest{Lang: "minic", Source: "x", EDL: "y"}
	ctx := context.Background()

	// Healthy dispatch: coord.route + the coord/dispatch span.
	live, err := New(fastCfg(m, "w1="+url))
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	if _, err := live.Dispatch(ctx, "k", req, obs.NewTraceID()); err != nil {
		t.Fatal(err)
	}

	// Dead primary beside a live survivor: retries, breaker open, re-route.
	cfg := fastCfg(m, "w1="+url, "w2=http://127.0.0.1:1")
	cfg.BreakerThreshold = 2
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Dispatch(ctx, keyOwnedBy(t, c2, "w2"), req, ""); err != nil {
		t.Fatal(err)
	}

	// A flaky-then-healed single worker: exhaustion while refused, then the
	// half-open trial success that closes the breaker.
	ft := faultinject.NewTransport(nil).RefuseOn(host, 1).RefuseOn(host, 2)
	cfg = fastCfg(m, "w1="+url)
	cfg.Client = &http.Client{Transport: ft}
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Millisecond
	c3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if res, err := c3.Dispatch(ctx, "k", req, ""); err == nil {
		t.Fatalf("refused fleet dispatch succeeded: %+v", res)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := c3.Dispatch(ctx, "k", req, ""); err != nil {
		t.Fatalf("healed worker dispatch failed: %v", err)
	}

	// Probe transitions both ways: down on a refused probe, up on recovery.
	ft4 := faultinject.NewTransport(nil).RefuseOn(host, 1)
	cfg = fastCfg(m, "w1="+url)
	cfg.Client = &http.Client{Transport: ft4}
	cfg.FailThreshold = 1
	c4, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c4.Close()
	c4.CheckNow(ctx)
	if c4.workers[0].State() != StateDown {
		t.Fatal("refused probe did not mark the worker down")
	}
	c4.CheckNow(ctx)
	if c4.workers[0].State() != StateUp {
		t.Fatal("worker did not recover")
	}

	var missing []string
	for _, n := range m.CounterNames() {
		if !documented[n] {
			missing = append(missing, "counter "+n)
		}
	}
	snap := m.Snapshot()
	for n := range snap.Gauges {
		if !documented[n] {
			missing = append(missing, "gauge "+n)
		}
	}
	for n := range snap.Spans {
		if !documented[n] {
			missing = append(missing, "span "+n)
		}
	}
	for n := range snap.Dists {
		if !documented[n] {
			missing = append(missing, "distribution "+n)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("emitted but undocumented in docs/OBSERVABILITY.md:\n  %s",
			strings.Join(missing, "\n  "))
	}

	// The exercise above must have hit every coord counter the docs
	// promise, so the gate cannot silently weaken.
	for _, n := range []string{"coord.route", "coord.retry", "coord.rerouted",
		"coord.exhausted", "coord.breaker.opened", "coord.breaker.closed",
		"coord.worker.down", "coord.worker.up"} {
		if m.Counter(n) == 0 {
			t.Errorf("drift exercise never emitted %s", n)
		}
	}
}
