package coord

// The chaos gate: deterministic fault injection against a real in-process
// fleet. TestChaosSmoke is what `make chaos-smoke` runs under -race — a
// coordinator over three live worker daemons analyzing examples/project
// while the network kills the busiest worker mid-batch. The assertions are
// the distributed fail-soft contract itself: every unit keeps its slot, the
// rerouted units' envelopes are byte-identical to a single-daemon run, and
// the verdict never improves because a worker died.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"net/http"

	"privacyscope"
	"privacyscope/internal/batch"
	"privacyscope/internal/faultinject"
	"privacyscope/internal/obs"
	"privacyscope/internal/server"
)

// normalize strips an envelope's volatile fields (wall clock, trace
// identity) so two runs of the same unit can be compared byte for byte.
func normalize(t *testing.T, env *privacyscope.Envelope) []byte {
	t.Helper()
	n := *env
	n.DurationMs = 0
	n.TraceID = ""
	n.Trace = nil
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// startWorker boots one real privacyscoped worker (engine, scheduler, cache)
// behind httptest and returns its base URL and host.
func startWorker(t *testing.T) (string, string) {
	t.Helper()
	s := server.New(server.Config{Workers: 2, QueueDepth: 32, CacheEntries: 64})
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, strings.TrimPrefix(ts.URL, "http://")
}

func discoverProject(t *testing.T) (string, []batch.Unit) {
	t.Helper()
	root := filepath.Join("..", "..", "examples", "project")
	units, err := batch.Discover(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) < 5 {
		t.Fatalf("examples/project discovery found only %d units", len(units))
	}
	return root, units
}

// unitKey computes the cache key the coordinator routes a unit by —
// identical to UnitExec's computation.
func unitKey(u batch.Unit, opts privacyscope.AnalysisOptions) string {
	return server.CacheKey(privacyscope.Fingerprint(), &server.AnalyzeRequest{
		Lang: "minic", Source: u.Source, EDL: u.EDL, ConfigXML: u.Rules, Options: opts,
	})
}

// TestChaosSmoke kills the worker that owns the most units after it has
// served exactly one request, mid-batch. The coordinator must re-route every
// pending unit of the dead worker to the survivors, and the distributed
// report must be indistinguishable (modulo timing and trace IDs) from a
// single-daemon run.
func TestChaosSmoke(t *testing.T) {
	root, units := discoverProject(t)
	var opts privacyscope.AnalysisOptions

	// Baseline: the same unit set analyzed by the local engine, no fleet.
	baseline := map[string][]byte{}
	baseRep := batch.Run(context.Background(), root, units, batch.Config{Jobs: 2})
	for _, r := range baseRep.Units {
		if r.Err != "" || r.Envelope == nil {
			t.Fatalf("baseline unit %s failed: %s", r.Unit.Name, r.Err)
		}
		baseline[r.Unit.Name] = normalize(t, r.Envelope)
	}

	// A three-worker fleet with a fault-injecting network in front of it.
	urls := make([]string, 3)
	hosts := make([]string, 3)
	specs := make([]string, 3)
	names := []string{"w1", "w2", "w3"}
	for i := range urls {
		urls[i], hosts[i] = startWorker(t)
		specs[i] = names[i] + "=" + urls[i]
	}
	ft := faultinject.NewTransport(nil)
	m := obs.NewMetrics()
	c, err := New(Config{
		Workers:     specs,
		Client:      &http.Client{Transport: ft},
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Observer:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Victim: the worker owning the most units (≥ 3 of 7 by pigeonhole), so
	// after its first served request at least two pending units must be
	// re-routed.
	owned := map[string]int{}
	for _, u := range units {
		owned[c.Primary(unitKey(u, opts))]++
	}
	victim, max := "", 0
	for name, n := range owned {
		if n > max {
			victim, max = name, n
		}
	}
	var victimHost string
	for i, n := range names {
		if n == victim {
			victimHost = hosts[i]
		}
	}
	if max < 2 {
		t.Fatalf("busiest worker %s owns only %d units — cannot kill mid-batch meaningfully", victim, max)
	}
	// The kill: the victim serves its first analyze request, then its host
	// refuses everything — dead mid-batch.
	ft.KillAfter(victimHost, 2)

	rep := c.RunProject(context.Background(), root, units, opts, "", 2, obs.NewTraceID())

	if len(rep.Units) != len(units) {
		t.Fatalf("report has %d units, want %d — units were dropped", len(rep.Units), len(units))
	}
	for _, r := range rep.Units {
		if r.Err != "" || r.Envelope == nil {
			t.Fatalf("unit %s lost despite %d live workers: %q", r.Unit.Name, len(names)-1, r.Err)
		}
		got := normalize(t, r.Envelope)
		want := baseline[r.Unit.Name]
		if string(got) != string(want) {
			t.Fatalf("unit %s: distributed envelope differs from single-daemon run\n got: %s\nwant: %s",
				r.Unit.Name, got, want)
		}
	}
	if got := m.Counter("coord.rerouted"); got < int64(max-1) {
		t.Fatalf("coord.rerouted = %d, want ≥ %d (victim %s owned %d units and served 1)",
			got, max-1, victim, max)
	}
	if v := rep.Verdict(); v == privacyscope.VerdictSecure {
		t.Fatal("chaos run reported Secure — a degraded run must never improve the verdict")
	}
	if v := rep.Verdict(); v != baseRep.Verdict() {
		t.Fatalf("chaos verdict %v differs from baseline %v", v, baseRep.Verdict())
	}
}

// TestChaosAllWorkersDead: with the whole fleet refusing connections, every
// unit must come back as an explicit Error slot — retries exhaust quickly,
// nothing hangs, nothing is silently dropped, and the verdict is Error.
func TestChaosAllWorkersDead(t *testing.T) {
	root, units := discoverProject(t)

	ft := faultinject.NewTransport(nil).KillAfter("", 1)
	m := obs.NewMetrics()
	c, err := New(Config{
		Workers:         []string{"w1=http://127.0.0.1:1", "w2=http://127.0.0.1:2"},
		Client:          &http.Client{Transport: ft},
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      2 * time.Millisecond,
		MaxAttempts:     3,
		BreakerCooldown: time.Hour, // no half-open revival mid-test
		Observer:        m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan *batch.ProjectReport, 1)
	go func() {
		done <- c.RunProject(context.Background(), root, units, privacyscope.AnalysisOptions{}, "", 2, "")
	}()
	var rep *batch.ProjectReport
	select {
	case rep = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("dead-fleet project run hung")
	}

	if len(rep.Units) != len(units) {
		t.Fatalf("report has %d units, want %d", len(rep.Units), len(units))
	}
	for _, r := range rep.Units {
		if r.Err == "" || r.Envelope != nil {
			t.Fatalf("unit %s did not degrade to an explicit Error slot: %+v", r.Unit.Name, r)
		}
		if !strings.Contains(r.Err, "exhausted") {
			t.Fatalf("unit %s error %q does not name exhaustion", r.Unit.Name, r.Err)
		}
	}
	if v := rep.Verdict(); v != privacyscope.VerdictError {
		t.Fatalf("dead-fleet verdict = %v, want error", v)
	}
	if got := m.Counter("coord.exhausted"); got != int64(len(units)) {
		t.Fatalf("coord.exhausted = %d, want %d (one per unit)", got, len(units))
	}
}
