// Package coord is the fault-tolerant distribution layer over a fleet of
// privacyscoped workers: a coordinator that consistent-hash-routes analysis
// units across N worker daemons so each unit lands where its disk-cache key
// is warm, watches every worker's /healthz to gate routing (up / draining /
// down), retries transient failures (connection refused, 429/503
// backpressure, deadlines, severed responses) with bounded exponential
// backoff plus jitter, ejects flapping workers behind per-worker circuit
// breakers, and — when a worker dies mid-batch — re-routes its pending
// units to the survivors along the ring. Units that exhaust every retry
// keep their slot in the project report as explicit Error results, so a
// distributed run degrades to the same partial-coverage vocabulary the
// fail-soft pipeline defines (206, never-Secure-on-loss, no unit silently
// dropped). See docs/ROBUSTNESS.md ("Distributed fail-soft") and
// docs/SERVER.md for the coordinator API.
package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"privacyscope"
	"privacyscope/internal/batch"
	"privacyscope/internal/obs"
	"privacyscope/internal/server"
)

// Config sizes the coordinator and names its fleet.
type Config struct {
	// Workers lists the fleet, one "name=baseURL" spec per worker (a bare
	// URL uses its host as the name). Names are the ring identity: keep
	// them stable across worker restarts so placement — and each worker's
	// warm disk cache — survives.
	Workers []string
	// Client issues all fleet traffic (probes and dispatches). Nil uses a
	// default client; tests inject a faultinject.Transport here.
	Client *http.Client
	// RequestTimeout bounds one dispatch attempt (≤0: 2m). An attempt that
	// times out while the parent context is still live counts as transient
	// and retries.
	RequestTimeout time.Duration
	// MaxAttempts bounds the total dispatch attempts per unit across all
	// workers (≤0: 2 per worker + 2, capped at 8). Exhaustion turns the
	// unit into an explicit Error slot.
	MaxAttempts int
	// RetriesPerWorker is how many attempts land on one worker before the
	// unit fails over to the next ring worker (≤0: 2).
	RetriesPerWorker int
	// BaseBackoff is the first retry delay; each further attempt doubles
	// it up to MaxBackoff, with ±25% deterministic jitter (seeded from
	// Seed) to decorrelate a fleet of retries. ≤0: 50ms base, 2s max.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed seeds the jitter PRNG (0: 1) — fixed so failure schedules are
	// replayable in tests.
	Seed int64
	// HealthInterval is the background probe period (≤0 disables the
	// background prober; CheckNow still probes on demand).
	HealthInterval time.Duration
	// HealthTimeout bounds one /healthz probe (≤0: 2s).
	HealthTimeout time.Duration
	// FailThreshold is how many consecutive failed probes mark a worker
	// down (≤0: 2; the first probe of a fresh coordinator is forgiven
	// once so a single blip does not eject a healthy worker).
	FailThreshold int
	// BreakerThreshold consecutive transient dispatch failures open a
	// worker's circuit breaker (≤0: 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses traffic before
	// admitting one half-open trial (≤0: 5s).
	BreakerCooldown time.Duration
	// Observer receives coord.* telemetry (nil: no-op). Pass an
	// obs.Metrics to serve it at /metrics.
	Observer obs.Observer

	// now is the clock (tests); nil is time.Now.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.RetriesPerWorker <= 0 {
		c.RetriesPerWorker = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = c.RetriesPerWorker*len(c.Workers) + 2
		if c.MaxAttempts > 8 {
			c.MaxAttempts = 8
		}
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Coordinator routes analysis requests across the fleet. Create with New,
// stop the background prober with Close.
type Coordinator struct {
	cfg     Config
	obs     obs.Observer
	client  *http.Client
	workers []*worker
	ring    *ring
	engine  string

	rngMu sync.Mutex
	rng   *rand.Rand

	closeOnce sync.Once
	closed    chan struct{}
	probeWG   sync.WaitGroup
}

// New builds a Coordinator over the configured fleet and starts the
// background health prober (when HealthInterval > 0).
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("coord: no workers configured")
	}
	c := &Coordinator{
		cfg:    cfg,
		obs:    obs.Or(cfg.Observer),
		client: cfg.Client,
		engine: privacyscope.Fingerprint(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		closed: make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	seen := make(map[string]bool)
	for _, spec := range cfg.Workers {
		name, baseURL, err := parseWorkerSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("coord: worker spec %q: %w", spec, err)
		}
		if seen[name] {
			return nil, fmt.Errorf("coord: duplicate worker name %q", name)
		}
		seen[name] = true
		c.workers = append(c.workers, &worker{
			name:    name,
			baseURL: baseURL,
			host:    hostOf(baseURL),
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		})
	}
	c.ring = newRing(c.workers)
	if cfg.HealthInterval > 0 {
		c.probeWG.Add(1)
		go c.healthLoop()
	}
	return c, nil
}

func hostOf(baseURL string) string {
	s := baseURL
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// Close stops the background prober. In-flight dispatches finish on their
// own contexts.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.closed) })
	c.probeWG.Wait()
}

func (c *Coordinator) now() time.Time { return c.cfg.now() }

// FleetHealth returns the per-worker state rows for the /healthz view.
func (c *Coordinator) FleetHealth() []WorkerHealth {
	out := make([]WorkerHealth, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, w.health())
	}
	return out
}

// RoutableWorkers counts workers currently eligible for new units.
func (c *Coordinator) RoutableWorkers() int {
	now := c.now()
	n := 0
	for _, w := range c.workers {
		if w.routable(now) {
			n++
		}
	}
	return n
}

// Primary names the worker that owns key's ring arc — its warm-cache home.
func (c *Coordinator) Primary(key string) string {
	order := c.ring.order(key)
	if len(order) == 0 {
		return ""
	}
	return order[0].name
}

// publishGauges refreshes the fleet gauges (scrape- and probe-driven):
// workers the prober considers up, and breakers currently not closed.
func (c *Coordinator) publishGauges() {
	m, ok := c.obs.(*obs.Metrics)
	if !ok {
		return
	}
	up, open := 0, 0
	for _, w := range c.workers {
		if w.State() == StateUp {
			up++
		}
		if w.breaker.State() != breakerClosed {
			open++
		}
	}
	m.SetGauge("coord.workers.up", int64(up))
	m.SetGauge("coord.breaker.open", int64(open))
}

// Result is one routed request's outcome: the worker daemon's HTTP status
// and body, plus routing facts for telemetry and response headers.
type Result struct {
	Status int
	Body   []byte
	// Worker is the fleet member that served the request; Attempts how
	// many dispatch attempts it took; Rerouted whether a non-primary
	// worker served it (its home was down, draining, or broken).
	Worker   string
	Attempts int
	Rerouted bool
	// Verdict and Cache echo the worker's response headers.
	Verdict string
	Cache   string
}

// errExhausted wraps the last transient error once every retry budget is
// spent.
type errExhausted struct {
	attempts int
	last     error
}

func (e *errExhausted) Error() string {
	return fmt.Sprintf("coord: unit exhausted %d dispatch attempts, last error: %v", e.attempts, e.last)
}
func (e *errExhausted) Unwrap() error { return e.last }

// Dispatch routes one analysis request: try the key's ring order —
// primary first, then the failover sequence — skipping workers that are
// down, draining or circuit-broken; retry transient failures on the same
// worker (bounded, backed off) before failing over; and, when every
// routable worker has been tried, make one last-ditch pass over the
// skipped ones (health info may be stale — degrade, don't die). A
// non-transient response (any real HTTP answer, including 422 and
// envelope-carrying 500s) is the result. Exhaustion returns *errExhausted.
func (c *Coordinator) Dispatch(ctx context.Context, key string, req *server.AnalyzeRequest, traceID string) (*Result, error) {
	c.obs.Add("coord.route", 1)
	sp := c.obs.StartSpan("coord/dispatch")
	defer sp.End()

	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	order := c.ring.order(key)
	attempts := 0
	var lastErr error

	try := func(w *worker, primary bool) (*Result, error, bool) {
		for r := 0; r < c.cfg.RetriesPerWorker && attempts < c.cfg.MaxAttempts; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err, false
			}
			attempts++
			if attempts > 1 {
				c.obs.Add("coord.retry", 1)
				if err := c.backoff(ctx, attempts-1); err != nil {
					return nil, err, false
				}
			}
			res, terr := c.tryWorker(ctx, w, body, traceID)
			if terr == nil {
				if opened := w.breaker.Success(); opened {
					c.obs.Add("coord.breaker.closed", 1)
				}
				res.Attempts = attempts
				res.Rerouted = !primary
				if res.Rerouted {
					c.obs.Add("coord.rerouted", 1)
				}
				sp.Annotate(obs.F("worker", w.name),
					obs.F("attempts", strconv.Itoa(attempts)),
					obs.F("status", strconv.Itoa(res.Status)))
				return res, nil, false
			}
			lastErr = terr
			if w.breaker.Failure(c.now()) {
				c.obs.Add("coord.breaker.opened", 1)
				c.obs.Event("coord.breaker.state",
					obs.F("worker", w.name), obs.F("state", "open"))
				// The circuit just opened: stop hammering this worker and
				// fail over now.
				return nil, nil, true
			}
		}
		return nil, nil, false
	}

	// Pass 1: routable workers in ring order (health- and breaker-gated).
	var skipped []*worker
	for i, w := range order {
		if attempts >= c.cfg.MaxAttempts {
			break
		}
		if !w.routable(c.now()) {
			skipped = append(skipped, w)
			continue
		}
		res, err, _ := try(w, i == 0)
		if res != nil || err != nil {
			return res, err
		}
	}
	// Pass 2: the fail-soft last ditch. Health info can be stale and a
	// breaker can be wrong — before declaring the unit lost, offer it once
	// to each skipped worker (single attempt each, no per-worker retries).
	for _, w := range skipped {
		if attempts >= c.cfg.MaxAttempts {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		attempts++
		c.obs.Add("coord.retry", 1)
		if err := c.backoff(ctx, attempts-1); err != nil {
			return nil, err
		}
		res, terr := c.tryWorker(ctx, w, body, traceID)
		if terr == nil {
			w.breaker.Success()
			res.Attempts = attempts
			res.Rerouted = w != order[0]
			if res.Rerouted {
				c.obs.Add("coord.rerouted", 1)
			}
			return res, nil
		}
		lastErr = terr
		w.breaker.Failure(c.now())
	}
	c.obs.Add("coord.exhausted", 1)
	sp.Annotate(obs.F("exhausted", "true"), obs.F("attempts", strconv.Itoa(attempts)))
	if lastErr == nil {
		lastErr = errors.New("no workers available")
	}
	return nil, &errExhausted{attempts: attempts, last: lastErr}
}

// tryWorker issues one POST /v1/analyze attempt against one worker and
// classifies the outcome: (result, nil) for any real answer the caller
// should surface, (nil, err) for a transient failure worth retrying.
func (c *Coordinator) tryWorker(ctx context.Context, w *worker, body []byte, traceID string) (*Result, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, w.baseURL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// W3C trace propagation: every hop to a worker carries the
	// coordinator's trace ID with a fresh span ID, so the worker's flight
	// recorder files its execution under the same trace the client can
	// query end to end.
	if traceID != "" {
		req.Header.Set("traceparent", obs.FormatTraceparent(traceID, obs.NewSpanID()))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		// Connection refused, reset, attempt deadline — all transient
		// (the parent ctx gate in Dispatch stops us when the caller gave
		// up for real).
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(http.MaxBytesReader(nil, resp.Body, 64<<20))
	if err != nil {
		// Mid-response cut: the worker (or the network) died while
		// streaming the envelope.
		return nil, fmt.Errorf("reading response from %s: %w", w.name, err)
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// Backpressure and draining are transient by contract: the worker
		// is alive but not accepting — back off and retry (likely
		// elsewhere once the prober notices a drain).
		return nil, fmt.Errorf("%s: %s", w.name, resp.Status)
	}
	return &Result{
		Status:  resp.StatusCode,
		Body:    data,
		Worker:  w.name,
		Verdict: resp.Header.Get("X-Privacyscope-Verdict"),
		Cache:   resp.Header.Get("X-Privacyscope-Cache"),
	}, nil
}

// backoff sleeps the bounded exponential delay for the given retry ordinal
// (1-based): base·2^(n−1) capped at MaxBackoff, jittered ±25% from the
// seeded PRNG. Returns early (with the context error) if the caller gives
// up mid-sleep.
func (c *Coordinator) backoff(ctx context.Context, n int) error {
	d := c.cfg.BaseBackoff << uint(n-1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.rngMu.Unlock()
	d = d*3/4 + j
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// UnitExec returns the batch remote-execution hook: a closure that resolves
// one discovered unit through the fleet instead of the local engine. The
// unit's cache key — identical to the key the chosen worker caches under —
// picks its ring home, so repeat runs of an unchanged project hit each
// worker's warm disk tier. traceID (optional) threads one project-wide
// trace through every hop.
func (c *Coordinator) UnitExec(opts privacyscope.AnalysisOptions, traceID string) batch.ExecFunc {
	return func(ctx context.Context, u batch.Unit, rules string, ob obs.Observer) batch.UnitResult {
		req := &server.AnalyzeRequest{
			Lang:      "minic",
			Source:    u.Source,
			EDL:       u.EDL,
			ConfigXML: rules,
			Options:   opts,
		}
		key := server.CacheKey(c.engine, req)
		res, err := c.Dispatch(ctx, key, req, traceID)
		if err != nil {
			return batch.UnitResult{Unit: u, Err: err.Error()}
		}
		return unitResultFromHTTP(u, res)
	}
}

// unitResultFromHTTP maps a worker's HTTP answer back onto the batch
// result vocabulary: 200/206/500 envelopes decode as the unit's envelope
// (the fail-soft verdict inside speaks for itself), anything else is a
// module-level error slot.
func unitResultFromHTTP(u batch.Unit, res *Result) batch.UnitResult {
	out := batch.UnitResult{Unit: u, Cached: res.Cache == "hit"}
	var env privacyscope.Envelope
	if err := json.Unmarshal(res.Body, &env); err == nil && env.Engine != "" {
		out.Envelope = &env
		return out
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(res.Body, &e); err == nil && e.Error != "" {
		out.Err = e.Error
		return out
	}
	out.Err = fmt.Sprintf("worker %s answered %d with an unintelligible body", res.Worker, res.Status)
	return out
}

// RunProject analyzes a discovered unit set through the fleet: batch.Run's
// pool provides the per-unit concurrency and the deterministic report, the
// coordinator provides placement, retries and re-routing per unit. The
// report is the error report — a dead worker degrades units to explicit
// Error slots, never drops them.
func (c *Coordinator) RunProject(ctx context.Context, root string, units []batch.Unit, opts privacyscope.AnalysisOptions, defaultRules string, jobs int, traceID string) *batch.ProjectReport {
	return batch.Run(ctx, root, units, batch.Config{
		Jobs:         jobs,
		Options:      opts,
		DefaultRules: defaultRules,
		Observer:     c.cfg.Observer,
		Exec:         c.UnitExec(opts, traceID),
	})
}
