package taint

import (
	"testing"

	"privacyscope/internal/obs"
)

func TestPolicyInstrumentCountsJoins(t *testing.T) {
	var alloc Allocator
	m := obs.NewMetrics()
	p := NewPolicy(&alloc).Instrument(m)
	t1 := p.GetSecret()
	t2 := p.GetSecret()

	if out := p.Binop(t1, Bottom()); !out.Equal(t1) {
		t.Errorf("Binop(t1,⊥) = %s", out)
	}
	if out := p.Binop(t1, t2); !out.IsTop() {
		t.Errorf("Binop(t1,t2) = %s", out)
	}
	if out := p.Cond(Top(), t1); !out.IsTop() {
		t.Errorf("Cond(⊤,t1) = %s", out)
	}

	if joins := m.Counter("taint.joins"); joins != 3 {
		t.Errorf("taint.joins = %d, want 3", joins)
	}
	// Only t1 ⊔ t2 newly saturated; ⊤ ⊔ t1 was already at top.
	if sat := m.Counter("taint.top_saturations"); sat != 1 {
		t.Errorf("taint.top_saturations = %d, want 1", sat)
	}
}

func TestUninstrumentedPolicyIsNop(t *testing.T) {
	var alloc Allocator
	p := NewPolicy(&alloc)
	t1 := p.GetSecret()
	// Must not panic and must preserve semantics.
	if out := p.Binop(t1, t1); !out.Equal(t1) {
		t.Errorf("Binop(t1,t1) = %s", out)
	}
}

func TestFromTagsObserved(t *testing.T) {
	m := obs.NewMetrics()
	if l := FromTagsObserved(m, nil); !l.IsBottom() {
		t.Errorf("no tags = %s", l)
	}
	if l := FromTagsObserved(m, []Tag{1}); !l.IsSingle() {
		t.Errorf("one tag = %s", l)
	}
	if l := FromTagsObserved(m, []Tag{1, 2, 3}); !l.IsTop() {
		t.Errorf("three tags = %s", l)
	}
	if joins := m.Counter("taint.joins"); joins != 2 {
		t.Errorf("taint.joins = %d, want 2", joins)
	}
	if sat := m.Counter("taint.top_saturations"); sat != 1 {
		t.Errorf("taint.top_saturations = %d, want 1", sat)
	}
}
