// Package taint implements the security semi-lattice and the taint
// propagation policy of PrivacyScope (Fig. 1, Fig. 2 and Table I of the
// paper).
//
// The lattice has a bottom element ⊥ (not sensitive), one incomparable
// element tᵢ per secret source, and a top element ⊤ (tainted by two or more
// independent secret sources). Only the join operation is defined; there is
// no meet, which is why the paper calls it a semi-lattice.
//
// The central intuition of nonreversibility is encoded in the lattice:
// revealing a value labelled tᵢ lets an attacker deterministically recover
// the single secret i, while revealing a value labelled ⊤ does not, because
// each secret masks the others.
package taint

import (
	"fmt"
	"strconv"
	"sync"

	"privacyscope/internal/obs"
)

// Tag identifies one secret source (t1, t2, … in the paper). Tags are
// allocated by a Allocator; the zero value is never a valid tag.
type Tag int

// String renders the tag in the paper's notation, e.g. "t1".
func (t Tag) String() string { return "t" + strconv.Itoa(int(t)) }

type labelKind uint8

const (
	kindBottom labelKind = iota
	kindSingle
	kindTop
)

// Label is an element of the security semi-lattice: ⊥, a single source tag
// tᵢ, or ⊤. The zero value is ⊥, so an unannotated value is untainted.
type Label struct {
	kind labelKind
	tag  Tag
}

// Bottom is the ⊥ label: the value does not depend on any secret.
func Bottom() Label { return Label{} }

// Top is the ⊤ label: the value depends on two or more distinct secrets.
func Top() Label { return Label{kind: kindTop} }

// Single returns the label tᵢ for the given source tag.
func Single(tag Tag) Label { return Label{kind: kindSingle, tag: tag} }

// IsBottom reports whether the label is ⊥.
func (l Label) IsBottom() bool { return l.kind == kindBottom }

// IsTop reports whether the label is ⊤.
func (l Label) IsTop() bool { return l.kind == kindTop }

// IsSingle reports whether the label is a single source tag tᵢ, the only
// labelling that violates nonreversibility when it reaches a sink.
func (l Label) IsSingle() bool { return l.kind == kindSingle }

// Tag returns the source tag and true when the label is a single tᵢ.
func (l Label) Tag() (Tag, bool) {
	if l.kind != kindSingle {
		return 0, false
	}
	return l.tag, true
}

// Join computes the least upper bound of two labels (Fig. 1):
//
//	⊥ ⊔ x = x
//	tᵢ ⊔ tᵢ = tᵢ
//	tᵢ ⊔ tⱼ = ⊤   (i ≠ j)
//	⊤ ⊔ x = ⊤
func (l Label) Join(other Label) Label {
	switch {
	case l.kind == kindBottom:
		return other
	case other.kind == kindBottom:
		return l
	case l.kind == kindTop || other.kind == kindTop:
		return Top()
	case l.tag == other.tag:
		return l
	default:
		return Top()
	}
}

// LessOrEqual reports whether l ⊑ other in the lattice order.
func (l Label) LessOrEqual(other Label) bool {
	switch {
	case l.kind == kindBottom:
		return true
	case other.kind == kindTop:
		return true
	case l.kind == kindSingle && other.kind == kindSingle:
		return l.tag == other.tag
	default:
		return false
	}
}

// Equal reports whether two labels are the same lattice element.
func (l Label) Equal(other Label) bool {
	if l.kind != other.kind {
		return false
	}
	return l.kind != kindSingle || l.tag == other.tag
}

// String renders the label in the paper's notation: "⊥", "t3" or "⊤".
func (l Label) String() string {
	switch l.kind {
	case kindBottom:
		return "⊥"
	case kindTop:
		return "⊤"
	default:
		return l.tag.String()
	}
}

// FromTagsObserved is FromTags with lattice telemetry: it counts one
// taint.joins per tag folded beyond the first and a taint.top_saturations
// when the fold reaches ⊤ — the engine-side equivalents of the Policy
// counters.
func FromTagsObserved(o obs.Observer, tags []Tag) Label {
	if len(tags) > 1 {
		o.Add("taint.joins", int64(len(tags)-1))
	}
	l := FromTags(tags)
	if l.IsTop() {
		o.Add("taint.top_saturations", 1)
	}
	return l
}

// FromTags builds the label describing a value that depends on exactly the
// given set of secret sources: ⊥ for none, tᵢ for one, ⊤ for several. This
// is the bridge used by the symbolic engine, where taint is derived from the
// free secret symbols of an expression (Design decision 1 in DESIGN.md).
func FromTags(tags []Tag) Label {
	switch len(tags) {
	case 0:
		return Bottom()
	case 1:
		return Single(tags[0])
	}
	first := tags[0]
	for _, t := range tags[1:] {
		if t != first {
			return Top()
		}
	}
	return Single(first)
}

// Allocator hands out fresh source tags, one per get_secret / [in]
// parameter / decrypt-intrinsic result. The zero value is ready to use,
// and allocation is safe for concurrent use by parallel path workers.
type Allocator struct {
	mu   sync.Mutex
	next Tag
}

// Fresh returns the next unused tag (t1, t2, …).
func (a *Allocator) Fresh() Tag {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.next++
	return a.next
}

// Count returns how many tags have been allocated so far.
func (a *Allocator) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int(a.next)
}

// Policy implements Table I of the paper: the PrivacyScope propagation
// policy for nonreversibility violation. Methods are named after the policy
// components (P_const, P_unop, …).
type Policy struct {
	alloc *Allocator
	obs   obs.Observer
}

// NewPolicy returns a policy drawing fresh tags from alloc.
func NewPolicy(alloc *Allocator) *Policy {
	return &Policy{alloc: alloc, obs: obs.Nop()}
}

// Instrument routes lattice telemetry (taint.joins, taint.top_saturations)
// to o and returns the policy for chaining.
func (p *Policy) Instrument(o obs.Observer) *Policy {
	p.obs = obs.Or(o)
	return p
}

// countJoin records one join and its ⊤-saturation (a join whose inputs were
// both below ⊤ but whose output is ⊤ — the moment a value stops being
// reversible to any single secret).
func (p *Policy) countJoin(a, b, out Label) Label {
	p.obs.Add("taint.joins", 1)
	if out.IsTop() && !a.IsTop() && !b.IsTop() {
		p.obs.Add("taint.top_saturations", 1)
	}
	return out
}

// Const labels a literal constant: always ⊥.
func (p *Policy) Const() Label { return Bottom() }

// GetSecret labels a value returned by get_secret(secret) with a fresh
// single-source tag.
func (p *Policy) GetSecret() Label { return Single(p.alloc.Fresh()) }

// Unop propagates taint through a unary operator: the label is preserved.
func (p *Policy) Unop(t Label) Label { return t }

// Assign propagates taint through an assignment: the label is preserved.
func (p *Policy) Assign(t Label) Label { return t }

// Binop propagates taint through a binary operator (Fig. 2): the join of the
// operand labels.
func (p *Policy) Binop(t1, t2 Label) Label { return p.countJoin(t1, t2, t1.Join(t2)) }

// Cond propagates taint into the path-condition variable π when a branch is
// taken (Fig. 2): the join of the condition's label and the current π label.
func (p *Policy) Cond(cond, pi Label) Label { return p.countJoin(cond, pi, cond.Join(pi)) }

// Map tracks the taint status of named program variables, i.e. the τΔ
// mapping of the paper's PS-* semantics. The special name PiVar holds the
// taint of the path condition π.
type Map struct {
	labels map[string]Label
}

// PiVar is the reserved variable name under which a Map stores the taint of
// the path condition π.
const PiVar = "π"

// NewMap returns an empty τΔ.
func NewMap() *Map {
	return &Map{labels: make(map[string]Label)}
}

// Get returns the label of a variable; unknown variables are ⊥.
func (m *Map) Get(name string) Label { return m.labels[name] }

// Set records the label of a variable.
func (m *Map) Set(name string, l Label) { m.labels[name] = l }

// Pi returns the taint of the path condition π.
func (m *Map) Pi() Label { return m.labels[PiVar] }

// SetPi records the taint of the path condition π.
func (m *Map) SetPi(l Label) { m.labels[PiVar] = l }

// Clone returns an independent copy, used when the symbolic engine forks at
// a conditional branch.
func (m *Map) Clone() *Map {
	c := &Map{labels: make(map[string]Label, len(m.labels))}
	for k, v := range m.labels {
		c.labels[k] = v
	}
	return c
}

// Len returns the number of tracked variables (including π if set).
func (m *Map) Len() int { return len(m.labels) }

// String renders the map in the paper's trace-table notation, e.g.
// "{h→t1, π→⊥}". Iteration order is not specified; use Entries for stable
// output.
func (m *Map) String() string {
	return fmt.Sprintf("τΔ(%d vars)", len(m.labels))
}

// Entries returns a copy of the underlying mapping for callers that need to
// render or compare the whole τΔ.
func (m *Map) Entries() map[string]Label {
	out := make(map[string]Label, len(m.labels))
	for k, v := range m.labels {
		out[k] = v
	}
	return out
}
